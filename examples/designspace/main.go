// Designspace sweeps the power-performance tradeoff of Figure 13: DRL
// designs for an 8x8 NoC across node-overlapping caps, reporting average
// hop count, simulated latency and modelled power per design point.
package main

import (
	"fmt"
	"log"

	"routerless"
)

func main() {
	fmt.Println("8x8 routerless design space: wiring budget vs performance vs power")
	fmt.Printf("%-6s %-10s %-10s %-12s %-10s\n", "cap", "loops", "avg hops", "latency", "power(mW)")

	params := routerless.DefaultPowerParams()
	for _, cap := range []int{10, 12, 14, 16} {
		design, err := routerless.Explore(routerless.ExploreOptions{
			N: 8, OverlapCap: cap, Episodes: 8, Seed: 11,
		})
		if err != nil {
			log.Printf("cap %d: %v", cap, err)
			continue
		}
		res := routerless.Simulate(design.Topology, routerless.SimulateOptions{
			Pattern: routerless.UniformRandom, Rate: 0.05,
			MeasureCycles: 5000, Seed: 2,
		})
		pow := params.Routerless(cap, routerless.ActivityOf(res))
		fmt.Printf("%-6d %-10d %-10.3f %-12.2f %-10.3f\n",
			cap, design.Loops, design.AvgHops, res.AvgLatency, pow.Total())
	}

	recT, err := routerless.GenerateREC(8)
	if err != nil {
		log.Fatal(err)
	}
	recHops, _ := recT.AverageHops()
	res := routerless.Simulate(recT, routerless.SimulateOptions{
		Pattern: routerless.UniformRandom, Rate: 0.05, MeasureCycles: 5000, Seed: 2,
	})
	pow := params.Routerless(14, routerless.ActivityOf(res))
	fmt.Printf("%-6s %-10d %-10.3f %-12.2f %-10.3f   <- REC (only possible at cap 14)\n",
		"REC", recT.NumLoops(), recHops, res.AvgLatency, pow.Total())
}

// Chiplet demonstrates the framework's second broad-applicability target
// (§6.8): exploring interposer link placement for a multi-chiplet package
// so that inter-chiplet traffic takes few hops, under µbump-port and
// link-budget constraints.
package main

import (
	"fmt"

	"routerless/internal/chiplet"
	"routerless/internal/search"
)

func main() {
	sys := chiplet.System{
		ChipletsX: 2, ChipletsY: 2, M: 3,
		BumpPorts: 2, LinkBudget: 8,
	}

	cfg := search.DefaultConfig()
	cfg.Episodes = 20
	cfg.Epsilon = 0.35
	cfg.MaxSteps = 48
	cfg.Seed = 5

	best, res := chiplet.Explore(sys, cfg)
	fmt.Printf("package: %dx%d chiplets of %dx%d cores, %d interposer links allowed\n",
		sys.ChipletsX, sys.ChipletsY, sys.M, sys.M, sys.LinkBudget)
	if best == nil {
		fmt.Println("no design found")
		return
	}
	fmt.Printf("connected: %v; avg inter-chiplet hops: %.3f (%d episodes, %d tree states)\n",
		best.Connected(), best.AvgInterChipletHops(1000), len(res.Outcomes), res.TreeSize)
	fmt.Println("interposer links:")
	for _, l := range best.Links() {
		a, b := sys.CoreFromID(l[0]), sys.CoreFromID(l[1])
		fmt.Printf("  chiplet(%d,%d) core(%d,%d) <-> chiplet(%d,%d) core(%d,%d)\n",
			a.CX, a.CY, a.X, a.Y, b.CX, b.CY, b.X, b.Y)
	}
}

// Noc3d demonstrates the framework's broad applicability (§6.8): the same
// exploration machinery that places routerless loops inserts long-range
// links and vias into a 3-D mesh NoC under port, length and budget
// constraints — the paper's first suggested follow-on application.
package main

import (
	"fmt"

	"routerless/internal/noc3d"
	"routerless/internal/search"
)

func main() {
	const (
		n      = 4
		layers = 2
	)
	cons := noc3d.Constraints{ExtraPorts: 2, MaxLen: 4, Budget: 8}

	cfg := search.DefaultConfig()
	cfg.Episodes = 16
	cfg.Epsilon = 0.3
	cfg.MaxSteps = 64
	cfg.Seed = 3

	best, base, res := noc3d.Explore(n, layers, cons, cfg)
	fmt.Printf("3-D NoC %dx%dx%d, budget %d links (len<=%d, <=%d extra ports/node)\n",
		n, n, layers, cons.Budget, cons.MaxLen, cons.ExtraPorts)
	fmt.Printf("base 3-D mesh avg hops: %.3f\n", base)
	if best == nil {
		fmt.Println("no improving design found; increase episodes")
		return
	}
	fmt.Printf("explored design avg hops: %.3f (%.1f%% better, %d episodes, %d tree states)\n",
		best.AvgHops(), 100*(base-best.AvgHops())/base, len(res.Outcomes), res.TreeSize)
	fmt.Println("inserted links:")
	for _, l := range best.Links() {
		a := noc3d.CoordFromID(l[0], n)
		b := noc3d.CoordFromID(l[1], n)
		kind := "intra-layer"
		if a.Z != b.Z {
			kind = "inter-layer (via)"
		}
		fmt.Printf("  (%d,%d,%d) <-> (%d,%d,%d)  len=%d  %s\n",
			a.X, a.Y, a.Z, b.X, b.Y, b.Z, noc3d.Dist3D(a, b), kind)
	}
}

// Scaling reproduces the Figure 16 study as a library example: uniform
// random load-latency curves for REC vs DRL vs mesh as the NoC grows,
// with saturation throughput per size and the 4x4 -> 10x10 drop.
package main

import (
	"fmt"
	"log"

	"routerless"
)

func main() {
	rates := []float64{0.005, 0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.35}
	sizes := []int{4, 6, 8}

	fmt.Printf("%-6s %-12s %-12s %-12s\n", "size", "mesh-2 sat", "REC sat", "DRL sat")
	var recSat, drlSat []float64
	for _, n := range sizes {
		recT, err := routerless.GenerateREC(n)
		if err != nil {
			log.Fatal(err)
		}
		design, err := routerless.Explore(routerless.ExploreOptions{
			N: n, OverlapCap: 2 * (n - 1), Episodes: 8, Seed: 5,
		})
		if err != nil {
			log.Fatal(err)
		}
		sweep := routerless.SweepOptions{
			Pattern: routerless.UniformRandom, Rates: rates,
			MeasureCycles: 4000, Seed: 3,
		}
		recSatN := routerless.SaturationThroughput(routerless.SweepLatency(recT, sweep))
		drlSatN := routerless.SaturationThroughput(routerless.SweepLatency(design.Topology, sweep))

		var meshPts []routerless.CurvePoint
		for _, r := range rates {
			res := routerless.SimulateMesh(n, 2, routerless.SimulateOptions{
				Pattern: routerless.UniformRandom, Rate: r, MeasureCycles: 4000, Seed: 3,
			})
			meshPts = append(meshPts, routerless.CurvePoint{
				InjectionRate: r, Latency: res.AvgLatency, Throughput: res.Throughput,
			})
			if res.Saturated {
				break
			}
		}
		meshSat := routerless.SaturationThroughput(meshPts)

		fmt.Printf("%-6d %-12.3f %-12.3f %-12.3f\n", n, meshSat, recSatN, drlSatN)
		recSat = append(recSat, recSatN)
		drlSat = append(drlSat, drlSatN)
	}

	last := len(sizes) - 1
	fmt.Printf("\nthroughput drop %dx%d -> %dx%d: REC %.1f%%, DRL %.1f%%\n",
		sizes[0], sizes[0], sizes[last], sizes[last],
		100*(recSat[0]-recSat[last])/recSat[0],
		100*(drlSat[0]-drlSat[last])/drlSat[0])
	fmt.Println("(paper, 4x4 -> 10x10: REC -31.6%, DRL -4.7%)")
}

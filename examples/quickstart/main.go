// Quickstart: explore a 4x4 routerless NoC with the DRL framework,
// compare it against the REC baseline and a conventional mesh, and run
// all three through the cycle-accurate simulator.
package main

import (
	"fmt"
	"log"

	"routerless"
)

func main() {
	// 1. Search: learn a loop placement for a 4x4 NoC under REC's wiring
	// budget (node overlapping 6).
	design, err := routerless.Explore(routerless.ExploreOptions{
		N: 4, OverlapCap: 6, Episodes: 20, Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("DRL design: %d loops, avg hops %.3f (found %d valid designs)\n",
		design.Loops, design.AvgHops, design.ValidDesigns)
	for i, l := range design.Topology.Loops() {
		fmt.Printf("  loop %d: %v\n", i, l)
	}

	// 2. Baselines.
	recT, err := routerless.GenerateREC(4)
	if err != nil {
		log.Fatal(err)
	}
	recHops, _ := recT.AverageHops()
	fmt.Printf("REC baseline: %d loops, avg hops %.3f\n", recT.NumLoops(), recHops)
	fmt.Printf("Mesh reference: avg hops %.3f\n", routerless.MeshAverageHops(4))

	// 3. Simulate: one light-load point under uniform random traffic.
	opt := routerless.SimulateOptions{
		Pattern: routerless.UniformRandom, Rate: 0.05, Seed: 1,
	}
	drlRes := routerless.Simulate(design.Topology, opt)
	recRes := routerless.Simulate(recT, opt)
	meshRes := routerless.SimulateMesh(4, 2, opt)
	fmt.Printf("\npacket latency @ 0.05 flits/node/cycle:\n")
	fmt.Printf("  DRL    %.2f cycles\n", drlRes.AvgLatency)
	fmt.Printf("  REC    %.2f cycles\n", recRes.AvgLatency)
	fmt.Printf("  Mesh-2 %.2f cycles\n", meshRes.AvgLatency)

	// 4. Power: convert measured activity into the calibrated 15nm model.
	p := routerless.DefaultPowerParams()
	fmt.Printf("\nper-node power @ this load:\n")
	fmt.Printf("  DRL    %.2f mW\n", p.Routerless(6, routerless.ActivityOf(drlRes)).Total())
	fmt.Printf("  Mesh-2 %.2f mW\n", p.Mesh(routerless.ActivityOf(meshRes)).Total())
}

// Parsec runs the Synfull-style PARSEC application models on an 8x8 NoC
// across Mesh-2, REC and DRL, reporting per-benchmark packet latency, hop
// count and modelled execution time — the library-level version of the
// paper's Figures 11-12 and Table 5.
package main

import (
	"fmt"
	"log"

	"routerless"
	"routerless/internal/sim"
	"routerless/internal/traffic"
)

func main() {
	const n = 8
	recT, err := routerless.GenerateREC(n)
	if err != nil {
		log.Fatal(err)
	}
	design, err := routerless.Explore(routerless.ExploreOptions{
		N: n, OverlapCap: 14, Episodes: 10, Seed: 3,
	})
	if err != nil {
		log.Fatal(err)
	}

	cfg := sim.RunConfig{WarmupCycles: 1000, MeasureCycles: 8000, DrainCycles: 16000}
	fmt.Printf("%-14s %-22s %-22s %-22s\n", "workload", "Mesh-2 lat/hops/ms", "REC lat/hops/ms", "DRL lat/hops/ms")
	for _, prof := range traffic.Parsec() {
		mesh := sim.Run(sim.NewMesh(n, n, sim.MeshN(2)),
			traffic.NewAppInjector(prof, n, n, 256, 1), cfg)
		rec := sim.Run(sim.NewRing(recT, sim.DefaultRingConfig()),
			traffic.NewAppInjector(prof, n, n, 128, 1), cfg)
		drl := sim.Run(sim.NewRing(design.Topology, sim.DefaultRingConfig()),
			traffic.NewAppInjector(prof, n, n, 128, 1), cfg)
		ideal := drl.AvgLatency
		if rec.AvgLatency < ideal {
			ideal = rec.AvgLatency
		}
		cell := func(r sim.Result) string {
			return fmt.Sprintf("%.1f/%.2f/%.1f", r.AvgLatency, r.AvgHops,
				prof.ExecutionTimeMS(r.AvgLatency, ideal))
		}
		fmt.Printf("%-14s %-22s %-22s %-22s\n", prof.Name, cell(mesh), cell(rec), cell(drl))
	}
}

# Tier-1 verification gate (see ROADMAP.md): every PR must leave `make ci`
# green. `make race` additionally race-tests the concurrent packages; `make
# bench` is the quick no-regression smoke for the sim hot path.

GO ?= go

.PHONY: ci vet build test race bench bench-nn

ci: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/drl/... ./internal/sim/... ./internal/obs/... ./internal/mcts/...

bench:
	$(GO) test -bench . -benchmem -benchtime 1x -run '^$$' .

# Quick kernel-iteration loop for the DNN hot path (im2col/GEMM convs,
# scratch arenas): just the DNN/GEMM micro-benchmarks, with allocation
# counts. Before/after numbers for PR 2 live in BENCH_PR2.json.
bench-nn:
	$(GO) test -bench 'BenchmarkDNN|BenchmarkGemm|BenchmarkIm2col' -benchmem -run '^$$' .

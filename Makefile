# Tier-1 verification gate (see ROADMAP.md): every PR must leave `make ci`
# green. `make race` additionally race-tests the concurrent packages; `make
# bench` is the quick no-regression smoke for the sim hot path.

GO ?= go

.PHONY: ci vet build test race bench

ci: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/drl/... ./internal/sim/... ./internal/obs/... ./internal/mcts/...

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

# Tier-1 verification gate (see ROADMAP.md): every PR must leave `make ci`
# green. `make race` additionally race-tests the concurrent packages; `make
# bench` is the quick no-regression smoke for the sim hot path.

GO ?= go

.PHONY: ci vet build test race bench bench-nn bench-sim bench-drl bench-infer

ci: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/drl/... ./internal/sim/... ./internal/obs/... ./internal/mcts/... ./internal/exp/... ./internal/rl/... ./internal/infer/...

bench:
	$(GO) test -bench . -benchmem -benchtime 1x -run '^$$' .

# Quick kernel-iteration loop for the DNN hot path (im2col/GEMM convs,
# scratch arenas): just the DNN/GEMM micro-benchmarks, with allocation
# counts. Before/after numbers for PR 2 live in BENCH_PR2.json.
bench-nn:
	$(GO) test -bench 'BenchmarkDNN|BenchmarkGemm|BenchmarkIm2col' -benchmem -run '^$$' .

# Quick iteration loop for the simulator hot path (zero-alloc Step/Run:
# flit pools, head-index queues, routing caches). Allocation counts are
# the regression signal — internal/sim's AllocsPerRun tests pin them at
# zero per steady-state cycle. Before/after numbers for PR 3 live in
# BENCH_PR3.json.
bench-sim:
	$(GO) test -bench 'BenchmarkRingStep|BenchmarkMeshStep|BenchmarkSimRun' -benchmem -run '^$$' .

# Quick iteration loop for the DRL episode hot path (incremental greedy
# score cache, episode arenas, cached fingerprints). Allocation counts are
# the regression signal — internal/rl's and internal/drl's AllocsPerRun
# tests pin the greedy step, state encoding, and fingerprint at zero.
# Before/after numbers for PR 4 live in BENCH_PR4.json.
bench-drl:
	$(GO) test -bench 'BenchmarkGreedyComplete|BenchmarkFingerprint' -benchmem -run '^$$' .
	$(GO) test -bench 'BenchmarkDRLEpisode' -benchmem -run '^$$' ./internal/drl/

# Quick iteration loop for the batched-inference service (internal/infer
# broker, nn.ForwardBatch, fingerprint-keyed evaluation cache): batched vs
# single-sample forwards, and broker-routed episodes vs the per-worker
# baseline. Before/after numbers for PR 5 live in BENCH_PR5.json.
bench-infer:
	$(GO) test -bench 'BenchmarkDNNForwardBatch|BenchmarkDNNForward$$' -benchmem -run '^$$' .
	$(GO) test -bench 'BenchmarkDRLEpisode' -benchmem -run '^$$' ./internal/drl/

# Tier-1 verification gate (see ROADMAP.md): every PR must leave `make ci`
# green. `make race` additionally race-tests the concurrent packages; `make
# bench` is the quick no-regression smoke for the sim hot path.

GO ?= go

.PHONY: ci vet build test race bench bench-nn bench-sim bench-drl bench-infer bench-obs bench-train bench-search trace-smoke profile-smoke

ci: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/drl/... ./internal/sim/... ./internal/obs/... ./internal/mcts/... ./internal/exp/... ./internal/rl/... ./internal/infer/...

bench:
	$(GO) test -bench . -benchmem -benchtime 1x -run '^$$' .

# Quick kernel-iteration loop for the DNN hot path (im2col/GEMM convs,
# scratch arenas): just the DNN/GEMM micro-benchmarks, with allocation
# counts. Before/after numbers for PR 2 live in BENCH_PR2.json.
bench-nn:
	$(GO) test -bench 'BenchmarkDNN|BenchmarkGemm|BenchmarkIm2col' -benchmem -run '^$$' .

# Quick iteration loop for the simulator hot path (zero-alloc Step/Run:
# flit pools, head-index queues, routing caches, active-set sparse
# stepping). Allocation counts are the regression signal — internal/sim's
# AllocsPerRun tests pin them at zero per steady-state cycle — and the
# SimRun matrix covers low rates (-r0.01/-r0.02, where sparse stepping
# pays) plus near saturation (bare ring8x8/mesh8x8, where it must not
# regress); BenchmarkSimRunDense is the dense-oracle "before" column.
# PR 3 numbers live in BENCH_PR3.json, the sparse-vs-dense rows in
# BENCH_PR8.json.
bench-sim:
	$(GO) test -bench 'BenchmarkRingStep|BenchmarkMeshStep|BenchmarkSimRun' -benchmem -run '^$$' .

# Quick iteration loop for the DRL episode hot path (incremental greedy
# score cache, episode arenas, cached fingerprints). Allocation counts are
# the regression signal — internal/rl's and internal/drl's AllocsPerRun
# tests pin the greedy step, state encoding, and fingerprint at zero.
# Before/after numbers for PR 4 live in BENCH_PR4.json.
bench-drl:
	$(GO) test -bench 'BenchmarkGreedyComplete|BenchmarkFingerprint' -benchmem -run '^$$' .
	$(GO) test -bench 'BenchmarkDRLEpisode' -benchmem -run '^$$' ./internal/drl/

# Quick iteration loop for the batched-inference service (internal/infer
# broker, nn.ForwardBatch + the f32 InferNet, fingerprint-keyed evaluation
# cache). Runs both precisions side by side: BenchmarkDNNForwardBatch (f64)
# vs BenchmarkDNNForwardBatchF32 per-sample at B=1/8/32, and broker-routed
# episodes under f64 vs f32. The PR 7 gate is f32 B=8/32 ns/sample strictly
# below single-sample f64 Forward on the 8×8 and 10×10 nets. Before/after
# numbers: BENCH_PR5.json (f64 baseline), BENCH_PR7.json (f64 vs f32).
bench-infer:
	$(GO) test -bench 'BenchmarkDNNForwardBatch|BenchmarkDNNForward$$' -benchmem -run '^$$' .
	$(GO) test -bench 'BenchmarkDRLEpisode' -benchmem -run '^$$' ./internal/drl/

# Quick iteration loop for the batched trajectory trainer (rl.A2C tiles
# driving nn.ForwardBatchTrain/BackwardBatch over the fused padded-plane
# conv kernels): sequential-vs-batched A2CAccumulate at H ∈ {8,16,32} on the
# 8×8 and 10×10 nets, plus the end-to-end episode benchmark. The regression
# signals are allocs/op = 0 on the warmed trainer and the seq/batched
# ns/step ratio. Before/after numbers for PR 9 live in BENCH_PR9.json.
bench-train:
	$(GO) test -bench 'BenchmarkA2CAccumulate' -benchmem -run '^$$' ./internal/rl/
	$(GO) test -bench 'BenchmarkDRLEpisode$$' -benchmem -run '^$$' ./internal/drl/

# Quick iteration loop for the multi-threaded search stack (PR 10): the
# lock-striped MCTS tree and chunked parameter server under concurrent
# learner traffic, the fused applyAndFetch round-trip vs the old
# apply+snapshot pair, and the end-to-end thread-scaling rows (Threads ∈
# {1,2,4,8}). The regression signals are the fused/pair ns/update ratio,
# contended_frac on the striped structures vs their whole-lock before
# columns, and flat single-thread episode cost. On a 1-CPU host the
# thread-scaling wall-clock is honestly flat — contended_frac carries the
# story (ROADMAP policy, as PR 3/5). Numbers live in BENCH_PR10.json.
bench-search:
	$(GO) test -bench 'BenchmarkTreeContention' -benchmem -run '^$$' ./internal/mcts/
	$(GO) test -bench 'BenchmarkParamServer' -benchmem -run '^$$' ./internal/drl/
	$(GO) test -bench 'BenchmarkDRLSearchThreads' -benchmem -benchtime 5x -run '^$$' ./internal/drl/

# Tracing-overhead gate (PR 6): traced vs untraced episode and sim-run
# pairs, plus the span/histogram micro-benchmarks. The disabled path must
# stay allocation-free (internal/{sim,rl,drl} alloc tests pin it) and the
# enabled path within a few percent. Before/after numbers live in
# BENCH_PR6.json.
bench-obs:
	$(GO) test -bench 'BenchmarkSimRun$$|BenchmarkSimRunTraced' -benchmem -run '^$$' .
	$(GO) test -bench 'BenchmarkDRLEpisode$$|BenchmarkDRLEpisodeTraced' -benchmem -run '^$$' ./internal/drl/
	$(GO) test -bench 'BenchmarkTraceSpan|BenchmarkHistogram' -benchmem -run '^$$' ./internal/obs/

# End-to-end tracing smoke: run a tiny traced search and a tiny traced
# sweep, then validate the Chrome trace JSON (well-formed, strictly nested
# per track, all expected span kinds present) with cmd/tracecheck.
trace-smoke:
	$(GO) run ./cmd/nocexplore -n 4 -episodes 6 -threads 2 -infer-batch 4 -progress 0 \
		-trace /tmp/routerless-trace-explore.json -manifest /tmp/routerless-manifest.jsonl > /dev/null
	$(GO) run ./cmd/tracecheck -require \
		drl.run,drl.episode,mcts.select,mcts.expand,mcts.backup,infer.submit,infer.queue_wait,infer.batch_assemble,infer.forward_batch \
		/tmp/routerless-trace-explore.json
	$(GO) run ./cmd/nocsim -mesh 4 -rates 0.01,0.02 -warmup 200 -measure 500 \
		-trace /tmp/routerless-trace-sim.json -manifest /tmp/routerless-manifest.jsonl > /dev/null
	$(GO) run ./cmd/tracecheck -require sim.run,sim.warmup,sim.measure,sim.drain,exp.point \
		/tmp/routerless-trace-sim.json

# End-to-end contention-profiling smoke (PR 10): run a threaded search with
# -mutexprofile/-blockprofile and assert both profiles are non-empty and
# parseable (pprof -top symbolizes runtime profiles without the binary).
profile-smoke:
	$(GO) run ./cmd/nocexplore -n 4 -episodes 8 -threads 4 -progress 0 \
		-mutexprofile /tmp/routerless-mutex.pprof -blockprofile /tmp/routerless-block.pprof > /dev/null
	test -s /tmp/routerless-mutex.pprof
	test -s /tmp/routerless-block.pprof
	$(GO) tool pprof -top /tmp/routerless-mutex.pprof > /dev/null
	$(GO) tool pprof -top /tmp/routerless-block.pprof > /dev/null

package infer

import (
	"sync"
	"sync/atomic"
)

// cacheShards is the fixed shard count of the evaluation cache; fingerprint
// keys hash uniformly (they are canonical loop-list renderings), so 16
// shards keep lock hold times short without a resizable table.
const cacheShards = 16

// evalCache is a sharded fingerprint-keyed LRU of immutable *Eval values.
// A nil *evalCache is a valid disabled cache: every method no-ops.
type evalCache struct {
	shards [cacheShards]cacheShard
}

type cacheShard struct {
	mu      sync.Mutex
	cap     int
	entries map[string]*cacheEntry
	head    *cacheEntry // most recently used
	tail    *cacheEntry // next eviction victim
}

type cacheEntry struct {
	fp         string
	ev         *Eval
	prev, next *cacheEntry
}

func newEvalCache(total int) *evalCache {
	per := max(1, total/cacheShards)
	c := &evalCache{}
	for i := range c.shards {
		c.shards[i].cap = per
		c.shards[i].entries = make(map[string]*cacheEntry, per)
	}
	return c
}

func (c *evalCache) shard(fp string) *cacheShard {
	// FNV-1a over the fingerprint bytes; only shard selection needs to be
	// stable within the process.
	h := uint32(2166136261)
	for i := 0; i < len(fp); i++ {
		h = (h ^ uint32(fp[i])) * 16777619
	}
	return &c.shards[h&(cacheShards-1)]
}

// get returns the cached evaluation for fp (promoting it to most recently
// used) or nil.
func (c *evalCache) get(fp string) *Eval {
	if c == nil {
		return nil
	}
	s := c.shard(fp)
	s.mu.Lock()
	e := s.entries[fp]
	if e == nil {
		s.mu.Unlock()
		return nil
	}
	s.moveToFront(e)
	ev := e.ev
	s.mu.Unlock()
	return ev
}

// put inserts an evaluation computed under generation gen, evicting the
// shard's LRU entry when over capacity. The generation check happens under
// the shard lock against the live counter, so an evaluation that raced
// with an invalidation can never land in the post-invalidation cache.
// Returns whether an entry was evicted.
func (c *evalCache) put(fp string, ev *Eval, gen uint64, cur *atomic.Uint64) (evicted bool) {
	if c == nil {
		return false
	}
	s := c.shard(fp)
	s.mu.Lock()
	defer s.mu.Unlock()
	if cur.Load() != gen {
		return false // stale result: weights changed since it was computed
	}
	if e := s.entries[fp]; e != nil {
		e.ev = ev
		s.moveToFront(e)
		return false
	}
	e := &cacheEntry{fp: fp, ev: ev}
	s.entries[fp] = e
	s.pushFront(e)
	if len(s.entries) > s.cap {
		victim := s.tail
		s.unlink(victim)
		delete(s.entries, victim.fp)
		return true
	}
	return false
}

// clear drops every entry, returning how many were removed.
func (c *evalCache) clear() int {
	if c == nil {
		return 0
	}
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += len(s.entries)
		clear(s.entries)
		s.head, s.tail = nil, nil
		s.mu.Unlock()
	}
	return n
}

func (s *cacheShard) pushFront(e *cacheEntry) {
	e.prev = nil
	e.next = s.head
	if s.head != nil {
		s.head.prev = e
	}
	s.head = e
	if s.tail == nil {
		s.tail = e
	}
}

func (s *cacheShard) unlink(e *cacheEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		s.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		s.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (s *cacheShard) moveToFront(e *cacheEntry) {
	if s.head == e {
		return
	}
	s.unlink(e)
	s.pushFront(e)
}

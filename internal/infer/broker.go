// Package infer is the shared batched-inference service for the DRL
// learners (§4.5–4.6). Worker goroutines submit (fingerprint, state)
// evaluation requests to a Broker; the broker coalesces duplicate in-flight
// fingerprints, gathers concurrent requests into batches of up to B, runs
// one batch-N nn.ForwardBatch on a dedicated evaluator network, and
// scatters per-sample results back to the waiting workers. A sharded
// fingerprint-keyed LRU cache fronts the evaluator — the canonical topology
// fingerprint is an O(1) cached read, so it doubles as a transposition-
// style cache key (the AlphaGo Zero lineage's second throughput lever next
// to batching).
//
// Correctness protocol: every parameter-server weight sync (Sync) stages
// the new weights, bumps the broker's generation, and invalidates the
// cache in one critical section; the evaluation loop applies staged
// weights and reads the generation under the same mutex, and cache inserts
// re-check the generation under the shard lock. A policy/value evaluation
// therefore never outlives the weights that produced it, and in-flight
// requests created before a sync are never joined by post-sync submitters.
package infer

import (
	"sync"
	"sync/atomic"
	"time"

	"routerless/internal/nn"
	"routerless/internal/obs"
)

// Eval is one cached/delivered evaluation. It is immutable after creation
// and may be shared by many readers; CoordProbs are the four coordinate
// softmax groups, Dir is tanh(DirPre), Value the predicted return.
type Eval struct {
	CoordProbs  [4][]float64
	DirPre, Dir float64
	Value       float64
}

// Precision selects the broker's inference arithmetic.
type Precision int

const (
	// F64 (the default) evaluates on the f64 net; brokered results are
	// byte-identical to direct Forward calls — the oracle path.
	F64 Precision = iota
	// F32 evaluates on a float32 shadow (nn.InferNet) quantized from the
	// f64 net on every weight sync. Half the working set, depth-blocked
	// batch scheduling, tolerance parity (≤1e-4 rel) instead of byte
	// identity. Inference-only: the f64 net still holds the authoritative
	// weights and is what Sync updates.
	F32
)

// Config parameterizes a Broker.
type Config struct {
	// Net is the dedicated evaluator network. The broker owns it (and its
	// scratch arena) exclusively after New; nobody else may call into it.
	Net *nn.PolicyValueNet
	// Precision selects the evaluation arithmetic (default F64). Under F32
	// the broker builds a float32 inference shadow of Net; every staged
	// weight sync is re-quantized into it before the next forward, so f32
	// evaluations obey the same never-outlive-the-weights protocol.
	Precision Precision
	// Batch caps how many requests one forward evaluates (clamped to ≥ 1).
	Batch int
	// FlushWait, when > 0, tops up partial batches: after the first request
	// is picked up the collector waits up to this long for more before
	// flushing. Zero (the default) flushes on quiescence — the collector
	// drains whatever is already queued and evaluates immediately, so a
	// lone worker never stalls and batching emerges exactly when several
	// workers are simultaneously waiting.
	FlushWait time.Duration
	// CacheSize is the LRU capacity in evaluations across all shards
	// (0 = default 4096, negative = caching disabled).
	CacheSize int
	// Metrics receives broker telemetry (batch-occupancy and queue-wait
	// histograms, cache hit/miss/evict/invalidation counters). When nil the
	// broker keeps a private registry so Stats() still works.
	Metrics *obs.Registry
	// Trace, when non-nil, records broker spans: infer.batch_assemble and
	// infer.forward_batch on the evaluation-goroutine track, plus
	// retroactive infer.queue_wait spans (one per request, measured from
	// enqueue to batch pickup) on a dedicated "infer.queue" track.
	Trace *obs.Tracer
}

// defaultCacheSize bounds the default cache at a few hundred KiB of Evals.
const defaultCacheSize = 4096

type request struct {
	fl    *flight
	state []float64
	enq   time.Time
}

// flight is one in-progress evaluation of a fingerprint. Duplicate submits
// of the same fingerprint within the same generation join the existing
// flight instead of enqueueing a second request.
type flight struct {
	fp   string
	gen  uint64
	done chan struct{}
	ev   *Eval // written before done is closed
}

// Broker is the shared inference service. All methods are safe for
// concurrent use, except that Close must not race with Submit.
type Broker struct {
	net *nn.PolicyValueNet
	// inferNet is the f32 shadow under Precision: F32 (nil under F64). Only
	// the evaluation goroutine touches it after New.
	inferNet  *nn.InferNet
	bmax      int
	flushWait time.Duration
	reqCh     chan *request
	cache     *evalCache
	wg        sync.WaitGroup

	mu       sync.Mutex
	pending  map[string]*flight
	pendingW []float64 // staged weight snapshot (valid when haveSync)
	pendingS []float64 // staged BatchNorm running stats
	haveSync bool
	gen      atomic.Uint64

	requests, hits, misses, coalesced *obs.Counter
	evaluated, batches                *obs.Counter
	evictions, invalidations          *obs.Counter
	occupancy, queueWait              *obs.Histogram

	// tracer is kept for Now(); the two shards are owned by the evaluation
	// goroutine exclusively once run starts (per-goroutine ownership rule).
	tracer  *obs.Tracer
	trace   *obs.TraceShard // "infer.broker": batch assemble + forward spans
	queueTr *obs.TraceShard // "infer.queue": retroactive queue-wait spans
}

// New starts a broker and its evaluation goroutine. The evaluator's arena
// is pre-sized for full batches, so steady-state evaluation allocates only
// the delivered Eval values.
func New(cfg Config) *Broker {
	if cfg.Net == nil {
		panic("infer: Config.Net is required")
	}
	if cfg.Batch < 1 {
		cfg.Batch = 1
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	var cache *evalCache
	if cfg.CacheSize >= 0 {
		size := cfg.CacheSize
		if size == 0 {
			size = defaultCacheSize
		}
		cache = newEvalCache(size)
	}
	b := &Broker{
		net:       cfg.Net,
		bmax:      cfg.Batch,
		flushWait: cfg.FlushWait,
		reqCh:     make(chan *request, max(64, 4*cfg.Batch)),
		cache:     cache,
		pending:   make(map[string]*flight),

		requests:      reg.Counter("infer.requests"),
		hits:          reg.Counter("infer.cache_hits"),
		misses:        reg.Counter("infer.cache_misses"),
		coalesced:     reg.Counter("infer.coalesced"),
		evaluated:     reg.Counter("infer.evaluated"),
		batches:       reg.Counter("infer.batches"),
		evictions:     reg.Counter("infer.cache_evictions"),
		invalidations: reg.Counter("infer.cache_invalidations"),
		occupancy:     reg.Histogram("infer.batch_occupancy"),
		queueWait:     reg.Histogram("infer.queue_wait_us"),

		tracer:  cfg.Trace,
		trace:   cfg.Trace.Shard("infer.broker"),
		queueTr: cfg.Trace.Shard("infer.queue"),
	}
	// Warm the f64 scratch in every mode (a later precision fallback or
	// debug path must not pay first-batch allocation), and under F32 build
	// and warm the quantized shadow so the first brokered batch is 0-alloc
	// on the hot path too.
	b.net.WarmBatch(b.bmax)
	if cfg.Precision == F32 {
		b.inferNet = nn.NewInferNet(b.net)
		b.inferNet.Warm(b.bmax)
	}
	b.wg.Add(1)
	go b.run()
	return b
}

// Submit evaluates (fp, state) and blocks until the result is available:
// from the cache, by joining an in-flight evaluation of the same
// fingerprint, or by queueing for the next batch. state must stay valid
// (and unmutated) until Submit returns; the returned Eval is immutable and
// shared.
func (b *Broker) Submit(fp string, state []float64) *Eval {
	b.requests.Inc()
	if ev := b.cache.get(fp); ev != nil {
		b.hits.Inc()
		return ev
	}
	b.misses.Inc()
	b.mu.Lock()
	gen := b.gen.Load()
	if fl := b.pending[fp]; fl != nil && fl.gen == gen {
		b.mu.Unlock()
		b.coalesced.Inc()
		<-fl.done
		return fl.ev
	}
	// First submitter for this fingerprint in this generation: create the
	// flight (replacing any stale-generation one — its submitters still get
	// their pre-sync result, but nobody new joins it).
	fl := &flight{fp: fp, gen: gen, done: make(chan struct{})}
	b.pending[fp] = fl
	b.mu.Unlock()
	b.reqCh <- &request{fl: fl, state: state, enq: time.Now()}
	<-fl.done
	return fl.ev
}

// Sync stages a new weight snapshot (and optionally the BatchNorm running
// statistics that eval-mode inference reads), bumps the generation, and
// invalidates the cache. The weights are applied by the evaluation loop
// before its next forward. params/stats are copied; callers may reuse
// their buffers immediately.
func (b *Broker) Sync(params, stats []float64) {
	b.mu.Lock()
	b.pendingW = append(b.pendingW[:0], params...)
	b.pendingS = append(b.pendingS[:0], stats...)
	b.haveSync = true
	b.gen.Add(1)
	b.cache.clear()
	b.mu.Unlock()
	b.invalidations.Inc()
}

// Generation returns the current weight generation (starts at 0, +1 per
// Sync).
func (b *Broker) Generation() uint64 { return b.gen.Load() }

// Close drains the request queue and stops the evaluation goroutine. No
// Submit may be started after (or concurrently with) Close.
func (b *Broker) Close() {
	close(b.reqCh)
	b.wg.Wait()
}

// Stats is a point-in-time snapshot of the broker counters.
type Stats struct {
	Requests, Hits, Misses, Coalesced int64
	Evaluated, Batches                int64
	Evictions, Invalidations          int64
}

// Stats reads the broker counters (also exported through Config.Metrics
// under the "infer." prefix).
func (b *Broker) Stats() Stats {
	return Stats{
		Requests:      b.requests.Value(),
		Hits:          b.hits.Value(),
		Misses:        b.misses.Value(),
		Coalesced:     b.coalesced.Value(),
		Evaluated:     b.evaluated.Value(),
		Batches:       b.batches.Value(),
		Evictions:     b.evictions.Value(),
		Invalidations: b.invalidations.Value(),
	}
}

// run is the evaluation loop: block for one request, top up the batch
// (quiescence drain, or FlushWait timer when configured), evaluate, and
// deliver. A closed request channel drains remaining requests and exits.
func (b *Broker) run() {
	defer b.wg.Done()
	batch := make([]*request, 0, b.bmax)
	states := make([][]float64, b.bmax)
	outs := make([]nn.Output, b.bmax)
	var timer *time.Timer
	for {
		r, ok := <-b.reqCh
		if !ok {
			return
		}
		asm := b.trace.Start(obs.SpanInferBatchAssemble)
		batch = append(batch[:0], r)
		if b.flushWait > 0 && len(batch) < b.bmax {
			if timer == nil {
				timer = time.NewTimer(b.flushWait)
			} else {
				timer.Reset(b.flushWait)
			}
		topup:
			for len(batch) < b.bmax {
				select {
				case r2, ok2 := <-b.reqCh:
					if !ok2 {
						break topup
					}
					batch = append(batch, r2)
				case <-timer.C:
					break topup
				}
			}
			if !timer.Stop() {
				select {
				case <-timer.C:
				default:
				}
			}
		} else {
		drain:
			for len(batch) < b.bmax {
				select {
				case r2, ok2 := <-b.reqCh:
					if !ok2 {
						break drain
					}
					batch = append(batch, r2)
				default:
					break drain
				}
			}
		}
		asm.End()
		b.evaluate(batch, states, outs)
	}
}

// evaluate runs one batch forward and delivers/caches per-sample results.
func (b *Broker) evaluate(batch []*request, states [][]float64, outs []nn.Output) {
	// Apply any staged sync and pin the generation under the same lock, so
	// the (weights, generation) pair this batch computes under is
	// consistent even when Sync races with it.
	b.mu.Lock()
	applied := false
	if b.haveSync {
		b.net.SetWeights(b.pendingW)
		if len(b.pendingS) > 0 {
			b.net.SetStats(b.pendingS)
		}
		b.haveSync = false
		applied = true
	}
	gen := b.gen.Load()
	b.mu.Unlock()
	// Re-quantize the f32 shadow from the freshly-applied f64 weights. Safe
	// outside the mutex: only this goroutine mutates the net, Sync() only
	// stages into pendingW/pendingS.
	if applied && b.inferNet != nil {
		b.inferNet.Sync()
	}

	n := len(batch)
	now := time.Now()
	traceNow := b.tracer.Now()
	for i, r := range batch {
		states[i] = r.state
		wait := now.Sub(r.enq)
		b.queueWait.Observe(float64(wait.Microseconds()))
		// The wait started on the submitting goroutine, so it is recorded
		// retroactively on the queue track rather than as a nested span.
		b.queueTr.Record(obs.SpanInferQueueWait, traceNow-wait.Nanoseconds(), traceNow)
	}
	fw := b.trace.Start(obs.SpanInferForward)
	if b.inferNet != nil {
		b.inferNet.ForwardBatch(states[:n], outs[:n])
	} else {
		b.net.ForwardBatch(states[:n], outs[:n])
	}
	fw.End()
	b.batches.Inc()
	b.evaluated.Add(int64(n))
	b.occupancy.Observe(float64(n))

	for i, r := range batch {
		fl := r.fl
		fl.ev = newEval(&outs[i])
		close(fl.done)
		b.mu.Lock()
		if b.pending[fl.fp] == fl {
			delete(b.pending, fl.fp)
		}
		b.mu.Unlock()
		if b.cache.put(fl.fp, fl.ev, gen, &b.gen) {
			b.evictions.Inc()
		}
	}
}

// newEval deep-copies one sample's output into an immutable Eval (one
// backing array for all four probability groups).
func newEval(out *nn.Output) *Eval {
	n := len(out.CoordProbs[0])
	backing := make([]float64, 4*n)
	ev := &Eval{DirPre: out.DirPre, Dir: out.Dir, Value: out.Value}
	for g := 0; g < 4; g++ {
		dst := backing[g*n : (g+1)*n]
		copy(dst, out.CoordProbs[g])
		ev.CoordProbs[g] = dst
	}
	return ev
}

package infer

import (
	"math"
	"math/rand"
	"strconv"
	"sync"
	"testing"
	"time"

	"routerless/internal/obs"
)

// Broker evaluations under Precision: F32 must track a f64 reference net
// within the quantization tolerance — before and after a weight/stats
// sync, proving the shadow re-quantizes from every staged snapshot.
func TestBrokerF32MatchesDirectForwardTolerance(t *testing.T) {
	const tol = 1e-4
	br := New(Config{Net: testNet(21), Batch: 4, Precision: F32})
	defer br.Close()
	ref := testNet(21)
	rng := rand.New(rand.NewSource(22))
	states := make([][]float64, 6)
	for i := range states {
		states[i] = randState(rng, 4)
	}
	close := func(tag, name string, g, w float64) {
		t.Helper()
		if diff := math.Abs(g - w); diff > tol*math.Max(1, math.Abs(w)) {
			t.Fatalf("%s: %s: got %v want %v (diff %v)", tag, name, g, w, diff)
		}
	}
	check := func(phase string) {
		for i, s := range states {
			ev := br.Submit("fp-"+phase+"-"+strconv.Itoa(i), s)
			want := ref.Forward(s, false)
			tag := phase + " sample " + strconv.Itoa(i)
			for g := 0; g < 4; g++ {
				for j := range want.CoordProbs[g] {
					close(tag, "prob["+strconv.Itoa(g)+"]["+strconv.Itoa(j)+"]",
						ev.CoordProbs[g][j], want.CoordProbs[g][j])
				}
			}
			close(tag, "dirPre", ev.DirPre, want.DirPre)
			close(tag, "dir", ev.Dir, want.Dir)
			close(tag, "value", ev.Value, want.Value)
		}
	}
	check("init")

	// Sync new weights and perturbed BatchNorm stats; the f32 shadow must
	// re-quantize and keep tracking the updated f64 reference.
	w := ref.GetWeights()
	for i := range w {
		w[i] += 0.01 * math.Sin(float64(i))
	}
	ref.SetWeights(w)
	st := make([]float64, ref.NumStats())
	ref.CopyStatsInto(st)
	for i := range st {
		st[i] += 0.1 * float64(i%3)
	}
	ref.SetStats(st)
	br.Sync(w, st)
	check("synced")
}

// The -race satellite under F32: concurrent submitters against periodic
// weight syncs, exercising the quantize-on-apply handoff between Sync's
// staging and the evaluation goroutine's InferNet.Sync. Every delivered
// evaluation must be internally consistent (probabilities normalized) and
// every request accounted for.
func TestBrokerConcurrentSubmitSyncRaceF32(t *testing.T) {
	reg := obs.NewRegistry()
	br := New(Config{Net: testNet(23), Batch: 4, CacheSize: 32, Metrics: reg, Precision: F32})
	defer br.Close()
	ref := testNet(23)
	baseW := ref.GetWeights()

	const workers = 8
	const perWorker = 150
	pool := make([][]float64, 10)
	rng := rand.New(rand.NewSource(24))
	for i := range pool {
		pool[i] = randState(rng, 4)
	}
	stop := make(chan struct{})
	var syncs sync.WaitGroup
	syncs.Add(1)
	go func() {
		defer syncs.Done()
		w := append([]float64(nil), baseW...)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			for j := range w {
				w[j] = baseW[j] * (1 + 0.001*float64(i%7))
			}
			br.Sync(w, nil)
			time.Sleep(time.Millisecond)
		}
	}()
	var wg sync.WaitGroup
	for t2 := 0; t2 < workers; t2++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for i := 0; i < perWorker; i++ {
				idx := r.Intn(len(pool))
				ev := br.Submit("fp-"+strconv.Itoa(idx), pool[idx])
				if ev == nil {
					panic("nil eval")
				}
				sum := 0.0
				for _, p := range ev.CoordProbs[0] {
					sum += p
				}
				if math.Abs(sum-1) > 1e-9 {
					panic("coordinate probabilities do not sum to 1")
				}
			}
		}(int64(200 + t2))
	}
	wg.Wait()
	close(stop)
	syncs.Wait()

	st := br.Stats()
	if st.Requests != workers*perWorker {
		t.Fatalf("requests = %d, want %d", st.Requests, workers*perWorker)
	}
	if st.Hits+st.Misses != st.Requests {
		t.Fatalf("hits %d + misses %d != requests %d", st.Hits, st.Misses, st.Requests)
	}
	if st.Evaluated >= st.Requests {
		t.Fatalf("no deduplication: %d evaluated for %d requests", st.Evaluated, st.Requests)
	}
}

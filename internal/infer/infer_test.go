package infer

import (
	"math"
	"math/rand"
	"strconv"
	"sync"
	"testing"
	"time"

	"routerless/internal/nn"
	"routerless/internal/obs"
)

func testNet(seed int64) *nn.PolicyValueNet {
	return nn.NewPolicyValueNet(nn.TestConfig(4), seed)
}

func randState(rng *rand.Rand, n int) []float64 {
	s := make([]float64, n*n*n*n)
	for i := range s {
		s[i] = float64(rng.Intn(5 * n))
	}
	return s
}

func assertEvalMatches(t *testing.T, tag string, ev *Eval, want *nn.Output) {
	t.Helper()
	for g := 0; g < 4; g++ {
		for i := range want.CoordProbs[g] {
			if ev.CoordProbs[g][i] != want.CoordProbs[g][i] {
				t.Fatalf("%s: prob group %d idx %d: got %v want %v",
					tag, g, i, ev.CoordProbs[g][i], want.CoordProbs[g][i])
			}
		}
	}
	if ev.DirPre != want.DirPre || ev.Dir != want.Dir || ev.Value != want.Value {
		t.Fatalf("%s: (dirpre,dir,value) got (%v,%v,%v) want (%v,%v,%v)",
			tag, ev.DirPre, ev.Dir, ev.Value, want.DirPre, want.Dir, want.Value)
	}
}

// Broker-delivered evaluations must be bit-identical to direct Forward
// calls on an identically-parameterized reference net — before and after a
// weight sync, and on cache hits.
func TestBrokerMatchesDirectForward(t *testing.T) {
	br := New(Config{Net: testNet(1), Batch: 4})
	defer br.Close()
	ref := testNet(1)
	rng := rand.New(rand.NewSource(2))
	states := make([][]float64, 6)
	for i := range states {
		states[i] = randState(rng, 4)
	}
	check := func(phase string) {
		for i, s := range states {
			ev := br.Submit("fp-"+phase+"-"+strconv.Itoa(i), s)
			assertEvalMatches(t, phase+" sample "+strconv.Itoa(i), ev, ref.Forward(s, false))
		}
	}
	check("init")

	// Sync new weights and perturbed BatchNorm stats; both nets must track.
	w := ref.GetWeights()
	for i := range w {
		w[i] += 0.01 * math.Sin(float64(i))
	}
	ref.SetWeights(w)
	st := make([]float64, ref.NumStats())
	ref.CopyStatsInto(st)
	for i := range st {
		st[i] += 0.1 * float64(i%3)
	}
	ref.SetStats(st)
	br.Sync(w, st)
	check("synced")

	// Resubmitting an already-cached fingerprint returns the same values.
	ev1 := br.Submit("dup", states[0])
	ev2 := br.Submit("dup", states[0])
	if ev1 != ev2 {
		t.Fatal("cache hit did not return the cached Eval")
	}
	if hitStats := br.Stats(); hitStats.Hits < 1 {
		t.Fatalf("expected at least one cache hit, stats %+v", hitStats)
	}
}

// The stale-cache satellite: a parameter-server sync bumps the generation
// and a post-sync lookup of a pre-sync fingerprint misses (and re-evaluates
// under the new weights).
func TestSyncBumpsGenerationAndInvalidatesCache(t *testing.T) {
	br := New(Config{Net: testNet(3), Batch: 2})
	defer br.Close()
	ref := testNet(3)
	rng := rand.New(rand.NewSource(4))
	state := randState(rng, 4)

	br.Submit("fp", state)
	br.Submit("fp", state)
	s0 := br.Stats()
	if s0.Hits != 1 || s0.Misses != 1 {
		t.Fatalf("pre-sync stats: %+v, want 1 hit / 1 miss", s0)
	}
	if br.Generation() != 0 {
		t.Fatalf("generation before sync = %d", br.Generation())
	}

	w := ref.GetWeights()
	for i := range w {
		w[i] *= 1.01
	}
	ref.SetWeights(w)
	br.Sync(w, nil)
	if br.Generation() != 1 {
		t.Fatalf("generation after sync = %d, want 1", br.Generation())
	}

	ev := br.Submit("fp", state)
	s1 := br.Stats()
	if s1.Misses != s0.Misses+1 {
		t.Fatalf("post-sync lookup hit a stale cache: stats %+v", s1)
	}
	if s1.Invalidations != 1 {
		t.Fatalf("invalidations = %d, want 1", s1.Invalidations)
	}
	assertEvalMatches(t, "post-sync", ev, ref.Forward(state, false))
}

// LRU eviction: with a tiny capacity, distinct fingerprints must evict.
func TestCacheEvictsLRU(t *testing.T) {
	br := New(Config{Net: testNet(5), Batch: 1, CacheSize: 16}) // 1 entry/shard
	defer br.Close()
	rng := rand.New(rand.NewSource(6))
	state := randState(rng, 4)
	for i := 0; i < 64; i++ {
		br.Submit("fp-"+strconv.Itoa(i), state)
	}
	if st := br.Stats(); st.Evictions == 0 {
		t.Fatalf("no evictions across 64 distinct fingerprints at capacity 16: %+v", st)
	}
}

// CacheSize < 0 disables caching entirely: identical resubmits re-evaluate.
func TestCacheDisabled(t *testing.T) {
	br := New(Config{Net: testNet(7), Batch: 1, CacheSize: -1})
	defer br.Close()
	rng := rand.New(rand.NewSource(8))
	state := randState(rng, 4)
	br.Submit("fp", state)
	br.Submit("fp", state)
	if st := br.Stats(); st.Hits != 0 || st.Evaluated != 2 {
		t.Fatalf("disabled cache stats: %+v, want 0 hits / 2 evaluated", st)
	}
}

// The FlushWait path batches requests that arrive while the collector
// waits: four concurrent submitters of distinct fingerprints should land
// in far fewer than four batches.
func TestFlushWaitBatchesConcurrentRequests(t *testing.T) {
	br := New(Config{Net: testNet(9), Batch: 8, FlushWait: 100 * time.Millisecond})
	defer br.Close()
	rng := rand.New(rand.NewSource(10))
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		state := randState(rng, 4)
		fp := "fp-" + strconv.Itoa(i)
		wg.Add(1)
		go func() {
			defer wg.Done()
			br.Submit(fp, state)
		}()
	}
	wg.Wait()
	st := br.Stats()
	if st.Evaluated != 4 {
		t.Fatalf("evaluated %d samples, want 4", st.Evaluated)
	}
	if st.Batches >= 4 {
		t.Fatalf("no batching happened: %d batches for 4 requests", st.Batches)
	}
}

// The -race satellite: concurrent submitters (mixing repeated and fresh
// fingerprints) against periodic weight syncs. Every delivered evaluation
// must be internally consistent and every request accounted for.
func TestBrokerConcurrentSubmitSyncRace(t *testing.T) {
	reg := obs.NewRegistry()
	br := New(Config{Net: testNet(11), Batch: 4, CacheSize: 32, Metrics: reg})
	defer br.Close()
	ref := testNet(11)
	baseW := ref.GetWeights()

	const workers = 8
	const perWorker = 150
	pool := make([][]float64, 10)
	rng := rand.New(rand.NewSource(12))
	for i := range pool {
		pool[i] = randState(rng, 4)
	}
	stop := make(chan struct{})
	var syncs sync.WaitGroup
	syncs.Add(1)
	go func() {
		defer syncs.Done()
		w := append([]float64(nil), baseW...)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			for j := range w {
				w[j] = baseW[j] * (1 + 0.001*float64(i%7))
			}
			br.Sync(w, nil)
			time.Sleep(time.Millisecond)
		}
	}()
	var wg sync.WaitGroup
	for t2 := 0; t2 < workers; t2++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for i := 0; i < perWorker; i++ {
				idx := r.Intn(len(pool))
				ev := br.Submit("fp-"+strconv.Itoa(idx), pool[idx])
				if ev == nil {
					panic("nil eval")
				}
				sum := 0.0
				for _, p := range ev.CoordProbs[0] {
					sum += p
				}
				if math.Abs(sum-1) > 1e-9 {
					panic("coordinate probabilities do not sum to 1")
				}
			}
		}(int64(100 + t2))
	}
	wg.Wait()
	close(stop)
	syncs.Wait()

	st := br.Stats()
	if st.Requests != workers*perWorker {
		t.Fatalf("requests = %d, want %d", st.Requests, workers*perWorker)
	}
	if st.Hits+st.Misses != st.Requests {
		t.Fatalf("hits %d + misses %d != requests %d", st.Hits, st.Misses, st.Requests)
	}
	// The dedup layers (cache + coalescing) must have removed work: with 10
	// distinct states and 1200 requests, evaluations should be well below
	// the request count.
	if st.Evaluated >= st.Requests {
		t.Fatalf("no deduplication: %d evaluated for %d requests", st.Evaluated, st.Requests)
	}
}

package rec

import (
	"testing"

	"routerless/internal/topo"
)

func TestGenerateRejectsTooSmall(t *testing.T) {
	if _, err := Generate(1); err == nil {
		t.Fatal("Generate(1) should fail")
	}
	if _, err := Generate(0); err == nil {
		t.Fatal("Generate(0) should fail")
	}
}

func TestGenerateBase2x2(t *testing.T) {
	tp := MustGenerate(2)
	if tp.NumLoops() != 1 {
		t.Fatalf("2x2 loops = %d, want 1", tp.NumLoops())
	}
	if !tp.FullyConnected() {
		t.Fatal("2x2 not connected")
	}
}

// The central published contract: REC is fully connected with maximum node
// overlapping exactly 2(N-1) for every size.
func TestGenerateInvariants(t *testing.T) {
	for n := 2; n <= 12; n++ {
		tp := MustGenerate(n)
		if !tp.FullyConnected() {
			t.Errorf("n=%d: not fully connected (%d missing pairs)",
				n, len(tp.UnconnectedPairs(0)))
			continue
		}
		want := 2 * (n - 1)
		if n == 2 {
			want = 1 // single-loop base
		}
		if got := tp.MaxOverlap(); got != want {
			t.Errorf("n=%d: max overlap = %d, want %d", n, got, want)
		}
		if got := tp.NumLoops(); got != LoopCount(n) {
			t.Errorf("n=%d: loops = %d, LoopCount = %d", n, got, LoopCount(n))
		}
	}
}

func TestGenerateOddSizes(t *testing.T) {
	for _, n := range []int{3, 5, 7, 9} {
		tp := MustGenerate(n)
		if !tp.FullyConnected() {
			t.Errorf("n=%d: odd grid not fully connected", n)
		}
		if tp.MaxOverlap() > 2*(n-1) {
			t.Errorf("n=%d: overlap %d exceeds 2(n-1)", n, tp.MaxOverlap())
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := MustGenerate(6)
	b := MustGenerate(6)
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("REC generation is not deterministic")
	}
}

// Hop counts should land in the neighbourhood of the published REC values
// (8x8 ≈ 7.3–8.3, 10x10 ≈ 9.6; §3.1 and Tables 3–4 of the DRL paper). The
// reconstruction is not loop-for-loop identical, so allow a band.
func TestGenerateHopCounts(t *testing.T) {
	cases := []struct {
		n        int
		min, max float64
	}{
		{4, 2.5, 5.0},
		{8, 6.0, 9.5},
		{10, 7.5, 11.5},
	}
	for _, c := range cases {
		tp := MustGenerate(c.n)
		mean, un := tp.AverageHops()
		if un != 0 {
			t.Fatalf("n=%d: %d unconnected pairs", c.n, un)
		}
		if mean < c.min || mean > c.max {
			t.Errorf("n=%d: average hops = %.2f, want within [%.1f, %.1f]",
				c.n, mean, c.min, c.max)
		}
		t.Logf("n=%d: loops=%d avgHops=%.3f maxOverlap=%d",
			c.n, tp.NumLoops(), mean, tp.MaxOverlap())
	}
}

// The wiring cap is hit on the grid boundary (REC's outermost layer
// carries the most loops).
func TestMaxOverlapOnBoundary(t *testing.T) {
	tp := MustGenerate(8)
	max := tp.MaxOverlap()
	onBoundary := false
	for r := 0; r < 8; r++ {
		for c := 0; c < 8; c++ {
			if tp.Overlap(topo.Node{Row: r, Col: c}) == max {
				if r == 0 || c == 0 || r == 7 || c == 7 {
					onBoundary = true
				}
			}
		}
	}
	if !onBoundary {
		t.Fatalf("max overlap %d not reached on the boundary", max)
	}
}

func TestGenerateLiteInvariants(t *testing.T) {
	for n := 2; n <= 12; n++ {
		tp := MustGenerateLite(n)
		if !tp.FullyConnected() {
			t.Errorf("lite n=%d: not fully connected", n)
			continue
		}
		// The lite variant's whole point: it fits under wiring caps REC
		// proper cannot satisfy.
		if n > 2 && tp.MaxOverlap() >= MaxOverlap(n) {
			t.Errorf("lite n=%d: overlap %d not below REC requirement %d",
				n, tp.MaxOverlap(), MaxOverlap(n))
		}
		full := MustGenerate(n)
		if tp.NumLoops() >= full.NumLoops() && n > 2 {
			t.Errorf("lite n=%d: %d loops not below full REC's %d",
				n, tp.NumLoops(), full.NumLoops())
		}
	}
}

func TestGenerateLiteHopsWorseThanFull(t *testing.T) {
	// Fewer loops cost hops: lite trades performance for wiring.
	for _, n := range []int{6, 8} {
		lite, _ := MustGenerateLite(n).AverageHops()
		full, _ := MustGenerate(n).AverageHops()
		if lite <= full {
			t.Errorf("n=%d: lite hops %.3f not above full %.3f", n, lite, full)
		}
	}
}

func TestGenerateLiteRejectsTooSmall(t *testing.T) {
	if _, err := GenerateLite(1); err == nil {
		t.Fatal("GenerateLite(1) accepted")
	}
}

// Both circulation directions must appear, or zero-load latency suffers.
func TestDirectionsBalanced(t *testing.T) {
	tp := MustGenerate(8)
	cw, ccw := 0, 0
	for _, l := range tp.Loops() {
		if l.Dir == topo.Clockwise {
			cw++
		} else {
			ccw++
		}
	}
	if cw == 0 || ccw == 0 {
		t.Fatalf("unbalanced directions: cw=%d ccw=%d", cw, ccw)
	}
	if cw < ccw/3 || ccw < cw/3 {
		t.Fatalf("strongly unbalanced directions: cw=%d ccw=%d", cw, ccw)
	}
}

// Package rec implements the recursive-layering (REC) routerless NoC
// generator of Alazemi et al. (HPCA 2018), the state-of-the-art baseline
// the DRL framework is compared against.
//
// The generator is deterministic and entirely size-driven: for a given
// N×N grid it emits exactly one loop configuration. The published contract
// reproduced here (see DESIGN.md, "REC reconstruction") is:
//
//   - built recursively from a 2×2 single-loop base, adding loops layer by
//     layer from the innermost square outward;
//   - fully connected: every ordered pair of nodes shares at least one loop;
//   - maximum node overlapping exactly 2(N−1), reached at the grid corners,
//     which is why REC cannot be generated under any tighter wiring cap
//     (§6.2 of the DRL paper).
package rec

import (
	"fmt"

	"routerless/internal/topo"
)

// Generate returns the REC topology for an n×n NoC, n >= 2. The result has
// its overlap cap set to 2(n-1), the REC wiring requirement.
func Generate(n int) (*topo.Topology, error) {
	if n < 2 {
		return nil, fmt.Errorf("rec: NoC size %d too small (need n >= 2)", n)
	}
	t := topo.NewSquare(n, 0)
	// Layers from the innermost square outward, mirroring the recursive
	// construction: the level with offset o spans rows/cols [o, n-1-o]
	// and has dimension d = n - 2o. Levels with d < 2 contribute nothing
	// (the center node of an odd grid is covered by outer levels).
	for o := (n - 1) / 2; o >= 0; o-- {
		d := n - 2*o
		if d < 2 {
			continue
		}
		addLevel(t, o, d)
	}
	t.SetOverlapCap(2 * (n - 1))
	return t, nil
}

// MustGenerate is Generate that panics on error.
func MustGenerate(n int) *topo.Topology {
	t, err := Generate(n)
	if err != nil {
		panic(err)
	}
	return t
}

// addLevel emits the loop groups for the level square with top-left corner
// (o,o) and dimension d >= 2. Directions alternate within each group so
// both circulations are represented roughly equally.
func addLevel(t *topo.Topology, o, d int) {
	lo, hi := o, o+d-1
	dir := func(i int) topo.Direction {
		if i%2 == 0 {
			return topo.Clockwise
		}
		return topo.Counterclockwise
	}
	i := 0
	add := func(r1, c1, r2, c2 int) {
		l := topo.MustLoop(r1, c1, r2, c2, dir(i))
		i++
		// The construction never produces duplicates or cap violations;
		// an error here indicates a bug, so fail loudly.
		if err := t.AddLoop(l); err != nil {
			panic(fmt.Sprintf("rec: addLevel(%d,%d): %v", o, d, err))
		}
	}
	// Group TL-FH: full-height rectangles anchored at the top-left,
	// widths 2..d (includes the level's full square).
	for j := lo + 1; j <= hi; j++ {
		add(lo, lo, hi, j)
	}
	if d == 2 {
		// The 2×2 base level is a single loop; the remaining groups
		// would duplicate it.
		return
	}
	// Group TL-FW: full-width rectangles anchored at the top-left,
	// heights 2..d-1 (excludes the full square, already added).
	for r := lo + 1; r <= hi-1; r++ {
		add(lo, lo, r, hi)
	}
	// Group BR-FH: full-height rectangles anchored at the bottom-right,
	// widths 2..d-1.
	for j := lo + 1; j <= hi-1; j++ {
		add(lo, j, hi, hi)
	}
	// Group BR-FW: full-width rectangles anchored at the bottom-right,
	// heights 2..d-1.
	for r := lo + 1; r <= hi-1; r++ {
		add(r, lo, hi, hi)
	}
}

// GenerateLite builds the low-wiring variant of the recursive layering:
// per level only the two full-height groups (left-anchored widths 2..d,
// right-anchored widths 2..d-1) are emitted, 2d-3 loops per level. The
// result is fully connected like Generate but reaches a maximum node
// overlapping of roughly N instead of 2(N-1), so it remains buildable
// under wiring caps that REC proper cannot satisfy — the constructive
// fallback the DRL experiments use for tight caps (§6.2's "generate
// feasible designs" capability).
func GenerateLite(n int) (*topo.Topology, error) {
	if n < 2 {
		return nil, fmt.Errorf("rec: NoC size %d too small (need n >= 2)", n)
	}
	t := topo.NewSquare(n, 0)
	for o := (n - 1) / 2; o >= 0; o-- {
		d := n - 2*o
		if d < 2 {
			continue
		}
		lo, hi := o, o+d-1
		i := 0
		dir := func() topo.Direction {
			i++
			if i%2 == 1 {
				return topo.Clockwise
			}
			return topo.Counterclockwise
		}
		// Full-height, left-anchored: cols [lo..j].
		for j := lo + 1; j <= hi; j++ {
			if err := t.AddLoop(topo.MustLoop(lo, lo, hi, j, dir())); err != nil {
				panic(fmt.Sprintf("rec: GenerateLite: %v", err))
			}
		}
		// Full-height, right-anchored: cols [j..hi] (excluding the full
		// square, already present).
		for j := lo + 1; j <= hi-1; j++ {
			if err := t.AddLoop(topo.MustLoop(lo, j, hi, hi, dir())); err != nil {
				panic(fmt.Sprintf("rec: GenerateLite: %v", err))
			}
		}
	}
	t.SetOverlapCap(t.MaxOverlap())
	return t, nil
}

// MustGenerateLite is GenerateLite that panics on error.
func MustGenerateLite(n int) *topo.Topology {
	t, err := GenerateLite(n)
	if err != nil {
		panic(err)
	}
	return t
}

// LoopCount returns the number of loops REC generates for an n×n NoC
// without building the topology: sum over levels of (4d-7) for d >= 3,
// plus 1 for a d=2 level.
func LoopCount(n int) int {
	total := 0
	for o := (n - 1) / 2; o >= 0; o-- {
		d := n - 2*o
		switch {
		case d < 2:
		case d == 2:
			total++
		default:
			total += 4*d - 7
		}
	}
	return total
}

// MaxOverlap returns REC's wiring requirement for an n×n NoC: 2(n-1).
// REC cannot be generated under any smaller node-overlapping cap.
func MaxOverlap(n int) int { return 2 * (n - 1) }

package traffic

import (
	"math"
	"math/rand"
	"testing"
)

func TestPatternStringRoundTrip(t *testing.T) {
	for _, p := range Patterns {
		got, err := ParsePattern(p.String())
		if err != nil || got != p {
			t.Errorf("round trip %v: got %v err %v", p, got, err)
		}
	}
	if _, err := ParsePattern("nonsense"); err == nil {
		t.Fatal("ParsePattern accepted junk")
	}
}

func TestDestInRange(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, p := range Patterns {
		for _, dims := range [][2]int{{4, 4}, {8, 8}, {10, 10}, {3, 5}} {
			n := dims[0] * dims[1]
			for src := 0; src < n; src++ {
				for k := 0; k < 3; k++ {
					d := Dest(p, src, dims[0], dims[1], rng)
					if d < 0 || d >= n {
						t.Fatalf("%v %dx%d src %d: dest %d out of range", p, dims[0], dims[1], src, d)
					}
				}
			}
		}
	}
}

func TestDestDeterministicPatterns(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, p := range Patterns {
		if p == UniformRandom {
			continue
		}
		for src := 0; src < 64; src++ {
			a := Dest(p, src, 8, 8, rng)
			b := Dest(p, src, 8, 8, rng)
			if a != b {
				t.Fatalf("%v not deterministic for src %d", p, src)
			}
		}
	}
}

func TestTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	// Node (1,3) on 4x4 grid = id 7 -> (3,1) = id 13.
	if d := Dest(Transpose, 7, 4, 4, rng); d != 13 {
		t.Fatalf("transpose(7) = %d, want 13", d)
	}
	// Diagonal maps to itself.
	if d := Dest(Transpose, 5, 4, 4, rng); d != 5 {
		t.Fatalf("transpose(5) = %d, want 5", d)
	}
}

func TestBitComplement(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	// 16 nodes -> 4 bits. complement(0b0001) = 0b1110 = 14.
	if d := Dest(BitComplement, 1, 4, 4, rng); d != 14 {
		t.Fatalf("bitcomp(1) = %d, want 14", d)
	}
	if d := Dest(BitComplement, 15, 4, 4, rng); d != 0 {
		t.Fatalf("bitcomp(15) = %d, want 0", d)
	}
}

func TestBitRotationAndShuffleInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	// On a power-of-two network, shuffle(rotate(x)) == x.
	for src := 0; src < 64; src++ {
		r := Dest(BitRotation, src, 8, 8, rng)
		s := Dest(Shuffle, r, 8, 8, rng)
		if s != src {
			t.Fatalf("shuffle(rotate(%d)) = %d", src, s)
		}
	}
}

func TestTornadoOffset(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	// 8x8: offset (8-1)/2 = 3 in each dimension. Node (0,0) -> (3,3).
	if d := Dest(Tornado, 0, 8, 8, rng); d != 3*8+3 {
		t.Fatalf("tornado(0) = %d, want 27", d)
	}
}

func TestFlits(t *testing.T) {
	// Paper: 128-bit links -> control 1 flit, data 5 flits.
	if Flits(Control, 128) != 1 || Flits(Data, 128) != 5 {
		t.Fatalf("128-bit: %d/%d", Flits(Control, 128), Flits(Data, 128))
	}
	// 256-bit links -> control 1 flit, data 3 flits.
	if Flits(Control, 256) != 1 || Flits(Data, 256) != 3 {
		t.Fatalf("256-bit: %d/%d", Flits(Control, 256), Flits(Data, 256))
	}
}

func TestInjectorRateMatchesOffered(t *testing.T) {
	rate := 0.2
	in := NewInjector(8, 8, UniformRandom, rate, 128, 42)
	cycles := 20000
	flits := 0
	for i := 0; i < cycles; i++ {
		for _, r := range in.Tick() {
			flits += r.NumFlits
		}
	}
	got := float64(flits) / float64(cycles) / 64
	// Self-addressed packets are skipped (1/64 of uniform), so expect
	// slightly under the offered rate.
	want := rate * 63 / 64
	if math.Abs(got-want)/want > 0.05 {
		t.Fatalf("offered %v, measured %v (want ≈%v)", rate, got, want)
	}
}

func TestInjectorDeterministicPerSeed(t *testing.T) {
	a := NewInjector(4, 4, UniformRandom, 0.1, 128, 7)
	b := NewInjector(4, 4, UniformRandom, 0.1, 128, 7)
	for i := 0; i < 100; i++ {
		ra, rb := a.Tick(), b.Tick()
		if len(ra) != len(rb) {
			t.Fatalf("cycle %d: %d vs %d requests", i, len(ra), len(rb))
		}
		for j := range ra {
			if ra[j] != rb[j] {
				t.Fatalf("cycle %d request %d differs", i, j)
			}
		}
	}
}

func TestInjectorSkipsSelf(t *testing.T) {
	in := NewInjector(8, 8, Transpose, 0.5, 128, 3)
	for i := 0; i < 2000; i++ {
		for _, r := range in.Tick() {
			if r.Src == r.Dst {
				t.Fatal("self-addressed packet emitted")
			}
		}
	}
}

package traffic

import (
	"fmt"
	"math/rand"

	"routerless/internal/topo"
)

// AppProfile is a Synfull-style statistical model of one application's NoC
// traffic, standing in for full-system PARSEC simulation (see DESIGN.md).
// Rates are light, matching the paper's observation that PARSEC NoC
// traffic is known to be light (§6.4).
type AppProfile struct {
	Name string
	// Rate is offered load in flits/node/cycle at steady state.
	Rate float64
	// Locality in [0,1]: probability a packet targets a node within the
	// LocalRadius Manhattan ball instead of a uniform destination.
	// Models cache-bank affinity.
	Locality    float64
	LocalRadius int
	// Burstiness in [0,1): probability that a node that injected in the
	// previous cycle injects again (Markov-modulated injection).
	Burstiness float64
	// DataFraction of packets that are long data packets.
	DataFraction float64
	// BaseTimeMS is the benchmark's compute-bound execution time in
	// milliseconds on an ideal (zero-latency) network; Sensitivity
	// scales how strongly packet latency stretches execution time.
	BaseTimeMS  float64
	Sensitivity float64
	// Messages is the relative communication volume (messages per unit
	// work), used with Sensitivity by the execution-time model.
	Messages float64
}

// Parsec returns the modelled PARSEC benchmark suite used throughout the
// paper's Figures 11, 12, 14 and Table 5. BaseTimeMS/Sensitivity are
// calibrated so the Table 5 Mesh-2 column lands near the published
// magnitudes; relative intensity across benchmarks follows the published
// per-benchmark orderings (facesim and fluidanimate heavy, streamcluster
// insensitive).
func Parsec() []AppProfile {
	return []AppProfile{
		{Name: "blackscholes", Rate: 0.010, Locality: 0.4, LocalRadius: 2, Burstiness: 0.10, DataFraction: 0.5, BaseTimeMS: 3.9, Sensitivity: 0.035, Messages: 1.0},
		{Name: "bodytrack", Rate: 0.015, Locality: 0.3, LocalRadius: 2, Burstiness: 0.15, DataFraction: 0.5, BaseTimeMS: 4.9, Sensitivity: 0.030, Messages: 1.2},
		{Name: "canneal", Rate: 0.030, Locality: 0.1, LocalRadius: 3, Burstiness: 0.25, DataFraction: 0.6, BaseTimeMS: 5.6, Sensitivity: 0.070, Messages: 2.0},
		{Name: "facesim", Rate: 0.025, Locality: 0.3, LocalRadius: 2, Burstiness: 0.30, DataFraction: 0.6, BaseTimeMS: 470.0, Sensitivity: 0.085, Messages: 2.4},
		{Name: "fluidanimate", Rate: 0.040, Locality: 0.2, LocalRadius: 2, Burstiness: 0.35, DataFraction: 0.6, BaseTimeMS: 20.5, Sensitivity: 0.210, Messages: 3.0},
		{Name: "streamcluster", Rate: 0.008, Locality: 0.5, LocalRadius: 1, Burstiness: 0.05, DataFraction: 0.4, BaseTimeMS: 11.0, Sensitivity: 0.000, Messages: 0.4},
		{Name: "swaptions", Rate: 0.012, Locality: 0.4, LocalRadius: 2, Burstiness: 0.10, DataFraction: 0.5, BaseTimeMS: 5.2, Sensitivity: 0.025, Messages: 0.9},
	}
}

// ParsecProfile returns the profile with the given name.
func ParsecProfile(name string) (AppProfile, error) {
	for _, p := range Parsec() {
		if p.Name == name {
			return p, nil
		}
	}
	return AppProfile{}, fmt.Errorf("traffic: unknown PARSEC profile %q", name)
}

// AppInjector generates traffic from an AppProfile on a rows×cols grid.
type AppInjector struct {
	Profile    AppProfile
	Rows, Cols int
	LinkBits   int

	rng    *rand.Rand
	active []bool    // per node: injected last cycle (burst state)
	buf    []Request // reused across Tick calls
}

// NewAppInjector constructs a deterministic injector for the profile.
func NewAppInjector(p AppProfile, rows, cols, linkBits int, seed int64) *AppInjector {
	return &AppInjector{
		Profile: p,
		Rows:    rows, Cols: cols,
		LinkBits: linkBits,
		rng:      rand.New(rand.NewSource(seed)),
		active:   make([]bool, rows*cols),
	}
}

func (a *AppInjector) avgFlitsPerPacket() float64 {
	fc := float64(Flits(Control, a.LinkBits))
	fd := float64(Flits(Data, a.LinkBits))
	return (1-a.Profile.DataFraction)*fc + a.Profile.DataFraction*fd
}

// destFor picks a destination honouring the profile's locality.
func (a *AppInjector) destFor(src int) int {
	n := a.Rows * a.Cols
	if a.rng.Float64() >= a.Profile.Locality {
		return a.rng.Intn(n)
	}
	s := topo.NodeFromID(src, a.Cols)
	// Rejection-sample a node within the Manhattan radius.
	for tries := 0; tries < 16; tries++ {
		dr := a.rng.Intn(2*a.Profile.LocalRadius+1) - a.Profile.LocalRadius
		dc := a.rng.Intn(2*a.Profile.LocalRadius+1) - a.Profile.LocalRadius
		r, c := s.Row+dr, s.Col+dc
		if r < 0 || r >= a.Rows || c < 0 || c >= a.Cols {
			continue
		}
		if abs(dr)+abs(dc) > a.Profile.LocalRadius {
			continue
		}
		return topo.Node{Row: r, Col: c}.ID(a.Cols)
	}
	return a.rng.Intn(n)
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// Tick returns this cycle's injection requests. Injection follows a
// two-state Markov process per node whose stationary rate matches
// Profile.Rate, producing the bursty arrivals real applications exhibit.
// The returned slice is reused by the next Tick call; callers must consume
// it before ticking again.
func (a *AppInjector) Tick() []Request {
	out := a.buf[:0]
	n := a.Rows * a.Cols
	pPacket := a.Profile.Rate / a.avgFlitsPerPacket()
	// Markov modulation: P(inject | active) = burst; solve
	// P(inject | idle) so the stationary injection probability is pPacket.
	// pi = p_idle*(1-pi_active_frac)... A simple and adequate closed form:
	// with q = Burstiness, stationary activity x satisfies
	// x = x*q + (1-x)*p0  =>  p0 = x(1-q)/(1-x); x = pPacket.
	q := a.Profile.Burstiness
	p0 := pPacket
	if pPacket < 1 && q > 0 {
		p0 = pPacket * (1 - q) / (1 - pPacket)
		if p0 > 1 {
			p0 = 1
		}
	}
	for src := 0; src < n; src++ {
		p := p0
		if a.active[src] {
			p = q
			if p < p0 {
				p = p0
			}
		}
		if a.rng.Float64() >= p {
			a.active[src] = false
			continue
		}
		a.active[src] = true
		dst := a.destFor(src)
		if dst == src {
			continue
		}
		class := Control
		if a.rng.Float64() < a.Profile.DataFraction {
			class = Data
		}
		out = append(out, Request{Src: src, Dst: dst, Class: class, NumFlits: Flits(class, a.LinkBits)})
	}
	a.buf = out
	return out
}

// ExecutionTimeMS models benchmark completion time from measured network
// performance: T = BaseTime * (1 + Sensitivity * Messages * (L/L0 - 1)),
// where L is the measured average packet latency and L0 a reference
// zero-load latency (the minimum achievable on an ideal network). NoC
// insensitive applications (Sensitivity 0) return BaseTime regardless of L.
func (p AppProfile) ExecutionTimeMS(avgLatency, idealLatency float64) float64 {
	if idealLatency <= 0 {
		idealLatency = 1
	}
	stretch := avgLatency/idealLatency - 1
	if stretch < 0 {
		stretch = 0
	}
	return p.BaseTimeMS * (1 + p.Sensitivity*p.Messages*stretch)
}

package traffic

import (
	"math"
	"testing"

	"routerless/internal/topo"
)

func TestParsecProfilesComplete(t *testing.T) {
	want := []string{"blackscholes", "bodytrack", "canneal", "facesim",
		"fluidanimate", "streamcluster", "swaptions"}
	ps := Parsec()
	if len(ps) != len(want) {
		t.Fatalf("profiles = %d, want %d", len(ps), len(want))
	}
	for i, name := range want {
		if ps[i].Name != name {
			t.Errorf("profile[%d] = %q, want %q", i, ps[i].Name, name)
		}
		p, err := ParsecProfile(name)
		if err != nil || p.Name != name {
			t.Errorf("ParsecProfile(%q): %v", name, err)
		}
	}
	if _, err := ParsecProfile("doom"); err == nil {
		t.Fatal("unknown profile accepted")
	}
}

func TestParsecProfilesSane(t *testing.T) {
	for _, p := range Parsec() {
		if p.Rate <= 0 || p.Rate > 0.1 {
			t.Errorf("%s: rate %v not light traffic", p.Name, p.Rate)
		}
		if p.Locality < 0 || p.Locality > 1 || p.Burstiness < 0 || p.Burstiness >= 1 {
			t.Errorf("%s: bad locality/burstiness", p.Name)
		}
		if p.BaseTimeMS <= 0 {
			t.Errorf("%s: base time %v", p.Name, p.BaseTimeMS)
		}
	}
}

func TestAppInjectorStationaryRate(t *testing.T) {
	p, _ := ParsecProfile("fluidanimate")
	in := NewAppInjector(p, 8, 8, 128, 11)
	cycles := 40000
	flits := 0
	for i := 0; i < cycles; i++ {
		for _, r := range in.Tick() {
			flits += r.NumFlits
		}
	}
	got := float64(flits) / float64(cycles) / 64
	if math.Abs(got-p.Rate)/p.Rate > 0.15 {
		t.Fatalf("stationary rate %v, want ≈%v", got, p.Rate)
	}
}

func TestAppInjectorLocality(t *testing.T) {
	p := AppProfile{Name: "local", Rate: 0.05, Locality: 1.0, LocalRadius: 1,
		DataFraction: 0.5, BaseTimeMS: 1}
	in := NewAppInjector(p, 8, 8, 128, 5)
	near, far := 0, 0
	for i := 0; i < 5000; i++ {
		for _, r := range in.Tick() {
			s := topo.NodeFromID(r.Src, 8)
			d := topo.NodeFromID(r.Dst, 8)
			dist := abs(s.Row-d.Row) + abs(s.Col-d.Col)
			if dist <= 1 {
				near++
			} else {
				far++
			}
		}
	}
	if near == 0 {
		t.Fatal("no packets generated")
	}
	// Rejection sampling can fall back to uniform, but local traffic
	// should dominate strongly.
	if float64(far) > 0.1*float64(near+far) {
		t.Fatalf("locality 1.0 but %d/%d packets went far", far, near+far)
	}
}

func TestAppInjectorValidRequests(t *testing.T) {
	for _, p := range Parsec() {
		in := NewAppInjector(p, 4, 4, 128, 1)
		for i := 0; i < 1000; i++ {
			for _, r := range in.Tick() {
				if r.Src == r.Dst {
					t.Fatalf("%s: self packet", p.Name)
				}
				if r.Src < 0 || r.Src >= 16 || r.Dst < 0 || r.Dst >= 16 {
					t.Fatalf("%s: out of range %v", p.Name, r)
				}
				if r.NumFlits != Flits(r.Class, 128) {
					t.Fatalf("%s: flit count mismatch", p.Name)
				}
			}
		}
	}
}

func TestExecutionTimeModel(t *testing.T) {
	p := AppProfile{BaseTimeMS: 10, Sensitivity: 0.1, Messages: 2}
	// Ideal network: no stretch.
	if got := p.ExecutionTimeMS(8, 8); got != 10 {
		t.Fatalf("ideal: %v", got)
	}
	// Double latency: stretch = 1 -> T = 10 * (1 + 0.2) = 12.
	if got := p.ExecutionTimeMS(16, 8); math.Abs(got-12) > 1e-9 {
		t.Fatalf("2x latency: %v, want 12", got)
	}
	// Latency below ideal clamps to no stretch.
	if got := p.ExecutionTimeMS(4, 8); got != 10 {
		t.Fatalf("below ideal: %v", got)
	}
	// Insensitive app ignores latency entirely.
	ins := AppProfile{BaseTimeMS: 11, Sensitivity: 0, Messages: 5}
	if got := ins.ExecutionTimeMS(100, 8); got != 11 {
		t.Fatalf("insensitive: %v", got)
	}
}

func TestExecutionTimeGuardsZeroIdeal(t *testing.T) {
	p := AppProfile{BaseTimeMS: 10, Sensitivity: 0.1, Messages: 1}
	got := p.ExecutionTimeMS(2, 0)
	if math.IsNaN(got) || math.IsInf(got, 0) {
		t.Fatalf("zero ideal latency produced %v", got)
	}
}

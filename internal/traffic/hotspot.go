package traffic

import (
	"math/rand"

	"routerless/internal/topo"
)

// HotspotInjector superimposes hotspot traffic on a uniform background:
// with probability HotFraction a packet targets one of the hotspot nodes
// (e.g. memory controllers), otherwise a uniform destination. It extends
// the synthetic suite beyond the paper's six patterns for stress testing
// ejection-port contention and extension buffers.
type HotspotInjector struct {
	Rows, Cols   int
	Rate         float64
	HotFraction  float64
	Hotspots     []int
	DataFraction float64
	LinkBits     int

	rng *rand.Rand
	buf []Request // reused across Tick calls
}

// NewHotspotInjector builds the injector; hotspots default to the four
// grid corners when none are given.
func NewHotspotInjector(rows, cols int, rate, hotFraction float64, hotspots []int, linkBits int, seed int64) *HotspotInjector {
	if len(hotspots) == 0 {
		hotspots = []int{
			topo.Node{Row: 0, Col: 0}.ID(cols),
			topo.Node{Row: 0, Col: cols - 1}.ID(cols),
			topo.Node{Row: rows - 1, Col: 0}.ID(cols),
			topo.Node{Row: rows - 1, Col: cols - 1}.ID(cols),
		}
	}
	return &HotspotInjector{
		Rows: rows, Cols: cols,
		Rate: rate, HotFraction: hotFraction,
		Hotspots:     hotspots,
		DataFraction: 0.5,
		LinkBits:     linkBits,
		rng:          rand.New(rand.NewSource(seed)),
	}
}

// Tick implements the sim.Source contract. The returned slice is reused
// by the next Tick call.
func (h *HotspotInjector) Tick() []Request {
	out := h.buf[:0]
	n := h.Rows * h.Cols
	fc := float64(Flits(Control, h.LinkBits))
	fd := float64(Flits(Data, h.LinkBits))
	avg := (1-h.DataFraction)*fc + h.DataFraction*fd
	pPacket := h.Rate / avg
	for src := 0; src < n; src++ {
		if h.rng.Float64() >= pPacket {
			continue
		}
		var dst int
		if h.rng.Float64() < h.HotFraction {
			dst = h.Hotspots[h.rng.Intn(len(h.Hotspots))]
		} else {
			dst = h.rng.Intn(n)
		}
		if dst == src {
			continue
		}
		class := Control
		if h.rng.Float64() < h.DataFraction {
			class = Data
		}
		out = append(out, Request{Src: src, Dst: dst, Class: class, NumFlits: Flits(class, h.LinkBits)})
	}
	h.buf = out
	return out
}

// NeighborInjector sends each packet to a uniformly chosen grid neighbor,
// the best case for low-diameter NoCs; useful as the opposite extreme to
// bit complement.
type NeighborInjector struct {
	Rows, Cols   int
	Rate         float64
	DataFraction float64
	LinkBits     int

	rng *rand.Rand
	buf []Request // reused across Tick calls
}

// NewNeighborInjector builds the injector.
func NewNeighborInjector(rows, cols int, rate float64, linkBits int, seed int64) *NeighborInjector {
	return &NeighborInjector{
		Rows: rows, Cols: cols, Rate: rate,
		DataFraction: 0.5, LinkBits: linkBits,
		rng: rand.New(rand.NewSource(seed)),
	}
}

// Tick implements the sim.Source contract. The returned slice is reused
// by the next Tick call.
func (ni *NeighborInjector) Tick() []Request {
	out := ni.buf[:0]
	n := ni.Rows * ni.Cols
	fc := float64(Flits(Control, ni.LinkBits))
	fd := float64(Flits(Data, ni.LinkBits))
	avg := (1-ni.DataFraction)*fc + ni.DataFraction*fd
	pPacket := ni.Rate / avg
	for src := 0; src < n; src++ {
		if ni.rng.Float64() >= pPacket {
			continue
		}
		node := topo.NodeFromID(src, ni.Cols)
		var nbs [4]int
		cnt := 0
		for _, d := range [4][2]int{{0, 1}, {0, -1}, {1, 0}, {-1, 0}} {
			r, c := node.Row+d[0], node.Col+d[1]
			if r < 0 || r >= ni.Rows || c < 0 || c >= ni.Cols {
				continue
			}
			nbs[cnt] = topo.Node{Row: r, Col: c}.ID(ni.Cols)
			cnt++
		}
		dst := nbs[ni.rng.Intn(cnt)]
		class := Control
		if ni.rng.Float64() < ni.DataFraction {
			class = Data
		}
		out = append(out, Request{Src: src, Dst: dst, Class: class, NumFlits: Flits(class, ni.LinkBits)})
	}
	ni.buf = out
	return out
}

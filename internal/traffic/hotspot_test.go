package traffic

import (
	"testing"

	"routerless/internal/topo"
)

func TestHotspotConcentratesTraffic(t *testing.T) {
	hs := []int{27} // single hotspot
	in := NewHotspotInjector(8, 8, 0.2, 0.8, hs, 128, 4)
	hot, total := 0, 0
	for i := 0; i < 5000; i++ {
		for _, r := range in.Tick() {
			total++
			if r.Dst == 27 {
				hot++
			}
		}
	}
	if total == 0 {
		t.Fatal("no packets")
	}
	frac := float64(hot) / float64(total)
	if frac < 0.6 || frac > 0.95 {
		t.Fatalf("hotspot fraction = %v, want ≈0.8", frac)
	}
}

func TestHotspotDefaultsToCorners(t *testing.T) {
	in := NewHotspotInjector(4, 4, 0.3, 1.0, nil, 128, 2)
	corners := map[int]bool{0: true, 3: true, 12: true, 15: true}
	for i := 0; i < 500; i++ {
		for _, r := range in.Tick() {
			if !corners[r.Dst] {
				t.Fatalf("non-corner destination %d with hotFraction 1", r.Dst)
			}
		}
	}
}

func TestNeighborInjectorAdjacencyOnly(t *testing.T) {
	in := NewNeighborInjector(6, 6, 0.3, 128, 9)
	for i := 0; i < 2000; i++ {
		for _, r := range in.Tick() {
			s := topo.NodeFromID(r.Src, 6)
			d := topo.NodeFromID(r.Dst, 6)
			dr, dc := s.Row-d.Row, s.Col-d.Col
			if dr*dr+dc*dc != 1 {
				t.Fatalf("non-neighbor packet %v -> %v", s, d)
			}
		}
	}
}

func TestNeighborInjectorCornerStaysInGrid(t *testing.T) {
	in := NewNeighborInjector(2, 2, 0.9, 128, 1)
	for i := 0; i < 500; i++ {
		for _, r := range in.Tick() {
			if r.Dst < 0 || r.Dst >= 4 || r.Dst == r.Src {
				t.Fatalf("bad destination %d from %d", r.Dst, r.Src)
			}
		}
	}
}

// Package traffic supplies the workloads driving the cycle-accurate
// simulator: the six synthetic patterns of §5 of the paper (uniform random,
// tornado, bit complement, bit rotation, shuffle, transpose) and
// Synfull-style statistical application models standing in for the PARSEC
// benchmarks (see DESIGN.md, substitutions).
package traffic

import (
	"fmt"
	"math/bits"
	"math/rand"

	"routerless/internal/topo"
)

// Pattern names a synthetic destination mapping.
type Pattern int

// The synthetic patterns evaluated in the paper.
const (
	UniformRandom Pattern = iota
	Tornado
	BitComplement
	BitRotation
	Shuffle
	Transpose
)

// Patterns lists every synthetic pattern in evaluation order.
var Patterns = []Pattern{UniformRandom, Tornado, BitComplement, BitRotation, Shuffle, Transpose}

// String returns the conventional pattern name.
func (p Pattern) String() string {
	switch p {
	case UniformRandom:
		return "uniform_random"
	case Tornado:
		return "tornado"
	case BitComplement:
		return "bit_complement"
	case BitRotation:
		return "bit_rotation"
	case Shuffle:
		return "shuffle"
	case Transpose:
		return "transpose"
	}
	return fmt.Sprintf("pattern(%d)", int(p))
}

// ParsePattern resolves a pattern name as printed by String.
func ParsePattern(s string) (Pattern, error) {
	for _, p := range Patterns {
		if p.String() == s {
			return p, nil
		}
	}
	return 0, fmt.Errorf("traffic: unknown pattern %q", s)
}

// Dest returns the destination node ID for a packet injected at src under
// the pattern, on a rows×cols grid. The permutation patterns use the
// standard definitions over the log2(n)-bit node index (bit complement,
// rotation, shuffle) and over (row, col) coordinates (tornado, transpose).
// rng is consulted only by UniformRandom. Dest may return src for
// self-addressed permutation results; callers typically skip those packets
// (standard practice, matching Garnet).
func Dest(p Pattern, src, rows, cols int, rng *rand.Rand) int {
	n := rows * cols
	switch p {
	case UniformRandom:
		return rng.Intn(n)
	case Tornado:
		// Half-ring offset in each dimension.
		node := topo.NodeFromID(src, cols)
		r := (node.Row + (rows-1)/2) % rows
		c := (node.Col + (cols-1)/2) % cols
		return topo.Node{Row: r, Col: c}.ID(cols)
	case BitComplement:
		b := bits.Len(uint(n - 1))
		return ((^src) & (1<<b - 1)) % n
	case BitRotation:
		b := bits.Len(uint(n - 1))
		rot := ((src >> 1) | (src << (b - 1))) & (1<<b - 1)
		return rot % n
	case Shuffle:
		b := bits.Len(uint(n - 1))
		sh := ((src << 1) | (src >> (b - 1))) & (1<<b - 1)
		return sh % n
	case Transpose:
		node := topo.NodeFromID(src, cols)
		// Transpose needs a square grid; for rectangles, mirror within
		// bounds by swapping scaled coordinates.
		if rows == cols {
			return topo.Node{Row: node.Col, Col: node.Row}.ID(cols)
		}
		r := node.Col % rows
		c := node.Row % cols
		return topo.Node{Row: r, Col: c}.ID(cols)
	}
	panic(fmt.Sprintf("traffic: invalid pattern %d", int(p)))
}

// PacketClass distinguishes the paper's control and data packets.
type PacketClass int

// Packet classes (§5: control 8 B, data 72 B).
const (
	Control PacketClass = iota
	Data
)

// Flits returns the flit count of a packet class given the link width in
// bits (paper: 128-bit routerless links → 1/5 flits; 256-bit mesh links →
// 1/3 flits).
func Flits(c PacketClass, linkBits int) int {
	bytes := 8
	if c == Data {
		bytes = 72
	}
	per := linkBits / 8
	f := (bytes + per - 1) / per
	if f < 1 {
		f = 1
	}
	return f
}

// Injector generates packet injections for one simulated cycle. It
// implements the paper's Bernoulli process in flits/node/cycle, mixing
// control and data packets.
type Injector struct {
	Rows, Cols int
	Pattern    Pattern
	// Rate is the offered load in flits/node/cycle.
	Rate float64
	// DataFraction is the fraction of packets that are data packets
	// (default 0.5 when constructed by NewInjector).
	DataFraction float64
	// LinkBits sets flit sizing (e.g. 128 for routerless, 256 for mesh).
	LinkBits int

	rng *rand.Rand
	buf []Request // reused across Tick calls
}

// NewInjector builds an injector with the paper's defaults: 50/50
// control/data mix over the given link width.
func NewInjector(rows, cols int, p Pattern, rate float64, linkBits int, seed int64) *Injector {
	return &Injector{
		Rows: rows, Cols: cols,
		Pattern:      p,
		Rate:         rate,
		DataFraction: 0.5,
		LinkBits:     linkBits,
		rng:          rand.New(rand.NewSource(seed)),
	}
}

// avgFlitsPerPacket returns the expected packet size under the mix.
func (in *Injector) avgFlitsPerPacket() float64 {
	fc := float64(Flits(Control, in.LinkBits))
	fd := float64(Flits(Data, in.LinkBits))
	return (1-in.DataFraction)*fc + in.DataFraction*fd
}

// Request is one packet injection request.
type Request struct {
	Src, Dst int
	Class    PacketClass
	NumFlits int
}

// Tick returns the injection requests for one cycle across all nodes.
// Packets whose pattern maps a node to itself are skipped. The returned
// slice is reused by the next Tick call; callers must consume it before
// ticking again (the simulator's per-cycle loop does).
func (in *Injector) Tick() []Request {
	out := in.buf[:0]
	n := in.Rows * in.Cols
	pPacket := in.Rate / in.avgFlitsPerPacket()
	for src := 0; src < n; src++ {
		if in.rng.Float64() >= pPacket {
			continue
		}
		dst := Dest(in.Pattern, src, in.Rows, in.Cols, in.rng)
		if dst == src {
			continue
		}
		class := Control
		if in.rng.Float64() < in.DataFraction {
			class = Data
		}
		out = append(out, Request{
			Src: src, Dst: dst,
			Class:    class,
			NumFlits: Flits(class, in.LinkBits),
		})
	}
	in.buf = out
	return out
}

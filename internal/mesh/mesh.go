// Package mesh provides the conventional router-based 2-D mesh baseline:
// hop-count analytics and topology metadata consumed by the cycle-accurate
// simulator (internal/sim) and the reward function of the DRL environment,
// which compares candidate routerless designs against mesh hop counts.
package mesh

import "routerless/internal/topo"

// Hops returns the minimal (XY-routing) hop count between two nodes in a
// mesh: the Manhattan distance.
func Hops(a, b topo.Node) int {
	dr := a.Row - b.Row
	if dr < 0 {
		dr = -dr
	}
	dc := a.Col - b.Col
	if dc < 0 {
		dc = -dc
	}
	return dr + dc
}

// AverageHops returns the mean Manhattan distance over all ordered pairs of
// distinct nodes in a rows×cols mesh. For an N×N mesh this approaches 2N/3
// for large N (the paper quotes 5.33 for 8×8 and uses this as the reward
// reference).
func AverageHops(rows, cols int) float64 {
	n := rows * cols
	if n < 2 {
		return 0
	}
	total := 0
	for s := 0; s < n; s++ {
		a := topo.NodeFromID(s, cols)
		for d := 0; d < n; d++ {
			if s == d {
				continue
			}
			total += Hops(a, topo.NodeFromID(d, cols))
		}
	}
	return float64(total) / float64(n*(n-1))
}

// AverageHopsClosed returns the closed-form mean Manhattan distance
// (rows+cols)/3 * (n/(n-1))-corrected; provided for cross-checking
// AverageHops in tests. For a P×Q mesh the exact mean over ordered pairs is
// (P²−1)/(3P) + (Q²−1)/(3Q), scaled by n/(n−1)... the direct closed form
// below sums per-dimension expectations over all pairs including self and
// rescales to exclude self-pairs.
func AverageHopsClosed(rows, cols int) float64 {
	n := float64(rows * cols)
	if n < 2 {
		return 0
	}
	// E[|r1-r2|] over all ordered pairs (including equal) of a dimension
	// of size k is (k²-1)/(3k).
	er := float64(rows*rows-1) / (3 * float64(rows))
	ec := float64(cols*cols-1) / (3 * float64(cols))
	// Total over n² ordered pairs, self-pairs contribute 0.
	return (er + ec) * n * n / (n * (n - 1))
}

// XYNextHop returns the next node on the dimension-ordered (X-first, i.e.
// column-first) route from cur to dst. It panics when cur == dst.
func XYNextHop(cur, dst topo.Node) topo.Node {
	switch {
	case cur.Col < dst.Col:
		return topo.Node{Row: cur.Row, Col: cur.Col + 1}
	case cur.Col > dst.Col:
		return topo.Node{Row: cur.Row, Col: cur.Col - 1}
	case cur.Row < dst.Row:
		return topo.Node{Row: cur.Row + 1, Col: cur.Col}
	case cur.Row > dst.Row:
		return topo.Node{Row: cur.Row - 1, Col: cur.Col}
	}
	panic("mesh: XYNextHop called with cur == dst")
}

// Port identifies a mesh router port.
type Port int

// Router ports in fixed order; Local is the NI (injection/ejection) port.
const (
	Local Port = iota
	North      // toward row-1
	South      // toward row+1
	West       // toward col-1
	East       // toward col+1
	NumPorts
)

// String names the port.
func (p Port) String() string {
	switch p {
	case Local:
		return "local"
	case North:
		return "north"
	case South:
		return "south"
	case West:
		return "west"
	case East:
		return "east"
	}
	return "invalid"
}

// OutputPort returns the router output port used by XY routing at node cur
// for a packet destined to dst.
func OutputPort(cur, dst topo.Node) Port {
	if cur == dst {
		return Local
	}
	next := XYNextHop(cur, dst)
	switch {
	case next.Col > cur.Col:
		return East
	case next.Col < cur.Col:
		return West
	case next.Row > cur.Row:
		return South
	default:
		return North
	}
}

// Neighbor returns the adjacent node through port p, and false when the
// port exits the rows×cols grid.
func Neighbor(n topo.Node, p Port, rows, cols int) (topo.Node, bool) {
	switch p {
	case North:
		n.Row--
	case South:
		n.Row++
	case West:
		n.Col--
	case East:
		n.Col++
	default:
		return n, false
	}
	if n.Row < 0 || n.Row >= rows || n.Col < 0 || n.Col >= cols {
		return n, false
	}
	return n, true
}

// Opposite returns the port on the neighbouring router that faces p.
func Opposite(p Port) Port {
	switch p {
	case North:
		return South
	case South:
		return North
	case East:
		return West
	case West:
		return East
	}
	return Local
}

package mesh

import (
	"math"
	"testing"
	"testing/quick"

	"routerless/internal/topo"
)

func TestHops(t *testing.T) {
	cases := []struct {
		a, b topo.Node
		want int
	}{
		{topo.Node{Row: 0, Col: 0}, topo.Node{Row: 0, Col: 0}, 0},
		{topo.Node{Row: 0, Col: 0}, topo.Node{Row: 3, Col: 4}, 7},
		{topo.Node{Row: 2, Col: 5}, topo.Node{Row: 1, Col: 1}, 5},
	}
	for _, c := range cases {
		if got := Hops(c.a, c.b); got != c.want {
			t.Errorf("Hops(%v,%v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestAverageHopsMatchesClosedForm(t *testing.T) {
	for _, d := range [][2]int{{2, 2}, {4, 4}, {8, 8}, {3, 5}, {10, 10}} {
		got := AverageHops(d[0], d[1])
		want := AverageHopsClosed(d[0], d[1])
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("%dx%d: brute %v vs closed %v", d[0], d[1], got, want)
		}
	}
}

func TestAverageHops8x8NearPaper(t *testing.T) {
	// The paper quotes 5.33 (≈16/3) as the 8x8 mesh average hop count.
	got := AverageHops(8, 8)
	if math.Abs(got-5.333) > 0.1 {
		t.Fatalf("8x8 mesh average hops = %v, want ≈5.33", got)
	}
}

func TestXYNextHopColumnFirst(t *testing.T) {
	cur := topo.Node{Row: 2, Col: 1}
	dst := topo.Node{Row: 0, Col: 3}
	if next := XYNextHop(cur, dst); next != (topo.Node{Row: 2, Col: 2}) {
		t.Fatalf("next = %v, want column move first", next)
	}
	cur = topo.Node{Row: 2, Col: 3}
	if next := XYNextHop(cur, dst); next != (topo.Node{Row: 1, Col: 3}) {
		t.Fatalf("next = %v, want row move after columns align", next)
	}
}

// Property: repeatedly applying XYNextHop reaches dst in exactly Hops steps.
func TestXYRouteLengthQuick(t *testing.T) {
	f := func(a, b, c, d uint8) bool {
		src := topo.Node{Row: int(a % 8), Col: int(b % 8)}
		dst := topo.Node{Row: int(c % 8), Col: int(d % 8)}
		cur := src
		steps := 0
		for cur != dst {
			cur = XYNextHop(cur, dst)
			steps++
			if steps > 64 {
				return false
			}
		}
		return steps == Hops(src, dst)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestOutputPortAndNeighborAgree(t *testing.T) {
	rows, cols := 4, 4
	for s := 0; s < rows*cols; s++ {
		for d := 0; d < rows*cols; d++ {
			if s == d {
				continue
			}
			src := topo.NodeFromID(s, cols)
			dst := topo.NodeFromID(d, cols)
			p := OutputPort(src, dst)
			nb, ok := Neighbor(src, p, rows, cols)
			if !ok {
				t.Fatalf("port %v from %v exits grid", p, src)
			}
			if nb != XYNextHop(src, dst) {
				t.Fatalf("Neighbor(%v,%v)=%v != XYNextHop=%v", src, p, nb, XYNextHop(src, dst))
			}
		}
	}
}

func TestNeighborEdges(t *testing.T) {
	if _, ok := Neighbor(topo.Node{Row: 0, Col: 0}, North, 4, 4); ok {
		t.Fatal("north of (0,0) should not exist")
	}
	if _, ok := Neighbor(topo.Node{Row: 3, Col: 3}, East, 4, 4); ok {
		t.Fatal("east of (3,3) should not exist")
	}
	if nb, ok := Neighbor(topo.Node{Row: 1, Col: 1}, West, 4, 4); !ok || nb != (topo.Node{Row: 1, Col: 0}) {
		t.Fatalf("west neighbor = %v, %v", nb, ok)
	}
}

func TestOpposite(t *testing.T) {
	for _, p := range []Port{North, South, East, West} {
		if Opposite(Opposite(p)) != p {
			t.Fatalf("Opposite not involutive for %v", p)
		}
	}
}

func TestPortString(t *testing.T) {
	names := map[Port]string{Local: "local", North: "north", South: "south", West: "west", East: "east"}
	for p, want := range names {
		if p.String() != want {
			t.Errorf("%d.String() = %q, want %q", p, p.String(), want)
		}
	}
}

package viz

import (
	"strings"
	"testing"

	"routerless/internal/rec"
	"routerless/internal/topo"
)

func TestTopologySummary(t *testing.T) {
	tp := rec.MustGenerate(4)
	s := TopologySummary(tp)
	if !strings.Contains(s, "4x4 routerless NoC") {
		t.Fatalf("missing header: %q", s)
	}
	if strings.Count(s, "loop") < tp.NumLoops() {
		t.Fatal("not all loops listed")
	}
}

func TestOverlapGrid(t *testing.T) {
	tp := topo.NewSquare(2, 0)
	if err := tp.AddLoop(topo.MustLoop(0, 0, 1, 1, topo.Clockwise)); err != nil {
		t.Fatal(err)
	}
	g := OverlapGrid(tp)
	lines := strings.Split(strings.TrimRight(g, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d", len(lines))
	}
	if !strings.Contains(lines[0], "1") {
		t.Fatalf("grid = %q", g)
	}
}

func TestLoopDrawingMarksPerimeter(t *testing.T) {
	tp := topo.NewSquare(4, 0)
	if err := tp.AddLoop(topo.MustLoop(0, 0, 2, 2, topo.Clockwise)); err != nil {
		t.Fatal(err)
	}
	d := LoopDrawing(tp, 0)
	if !strings.Contains(d, ">") || !strings.Contains(d, "<") {
		t.Fatalf("drawing lacks direction arrows:\n%s", d)
	}
	if !strings.Contains(d, ".") {
		t.Fatal("off-loop nodes not drawn")
	}
}

func TestTableAlignsColumns(t *testing.T) {
	s := Table([][]string{
		{"name", "hops"},
		{"REC", "7.33"},
		{"DRL", "6.22"},
	})
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 4 { // header + separator + 2 rows
		t.Fatalf("lines = %d:\n%s", len(lines), s)
	}
	if Table(nil) != "" {
		t.Fatal("empty table should render empty")
	}
}

func TestCurve(t *testing.T) {
	s := Curve("rate", []float64{0.01, 0.02},
		map[string][]float64{"mesh": {10, 12}, "drl": {5}},
		[]string{"mesh", "drl"})
	if !strings.Contains(s, "mesh") || !strings.Contains(s, "drl") {
		t.Fatal("missing series names")
	}
	if !strings.Contains(s, "-") {
		t.Fatal("missing placeholder for short series")
	}
}

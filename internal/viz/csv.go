package viz

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// CSV writes rows as RFC-4180-ish comma-separated values; cells containing
// commas or quotes are quoted. The cmd tools use it to export sweep
// results for external plotting.
func CSV(w io.Writer, rows [][]string) error {
	for _, row := range rows {
		cells := make([]string, len(row))
		for i, c := range row {
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			cells[i] = c
		}
		if _, err := fmt.Fprintln(w, strings.Join(cells, ",")); err != nil {
			return err
		}
	}
	return nil
}

// CurveCSV renders a load-latency sweep as CSV rows with a header.
func CurveCSV(w io.Writer, rates, latencies, throughputs []float64) error {
	rows := [][]string{{"injection_rate", "avg_latency_cycles", "throughput_flits_node_cycle"}}
	for i := range rates {
		row := []string{fmtF(rates[i]), "", ""}
		if i < len(latencies) {
			row[1] = fmtF(latencies[i])
		}
		if i < len(throughputs) {
			row[2] = fmtF(throughputs[i])
		}
		rows = append(rows, row)
	}
	return CSV(w, rows)
}

func fmtF(v float64) string { return strconv.FormatFloat(v, 'g', 8, 64) }

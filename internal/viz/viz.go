// Package viz renders topologies and result tables as ASCII for the cmd
// tools, examples and EXPERIMENTS.md (e.g. the Figure 9 style loop
// drawing).
package viz

import (
	"fmt"
	"strings"

	"routerless/internal/topo"
)

// TopologySummary renders a one-loop-per-line listing with headline
// metrics, the textual equivalent of the paper's topology figures.
func TopologySummary(t *topo.Topology) string {
	var b strings.Builder
	mean, un := t.AverageHops()
	fmt.Fprintf(&b, "%dx%d routerless NoC: %d loops, max overlap %d, avg hops %.3f",
		t.Rows(), t.Cols(), t.NumLoops(), t.MaxOverlap(), mean)
	if un > 0 {
		fmt.Fprintf(&b, " (%d unconnected pairs)", un)
	}
	b.WriteByte('\n')
	for i, l := range t.Loops() {
		fmt.Fprintf(&b, "  loop %2d: %s len=%d\n", i, l, l.Len())
	}
	return b.String()
}

// OverlapGrid draws the per-node loop counts as a grid, showing where the
// wiring budget is spent.
func OverlapGrid(t *topo.Topology) string {
	var b strings.Builder
	for r := 0; r < t.Rows(); r++ {
		for c := 0; c < t.Cols(); c++ {
			fmt.Fprintf(&b, "%3d", t.Overlap(topo.Node{Row: r, Col: c}))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// LoopDrawing draws a single loop on the grid: corner/edge glyphs trace the
// rectangle, with arrows indicating circulation direction on the top edge.
func LoopDrawing(t *topo.Topology, loopIdx int) string {
	l := t.Loops()[loopIdx]
	var b strings.Builder
	for r := 0; r < t.Rows(); r++ {
		for c := 0; c < t.Cols(); c++ {
			n := topo.Node{Row: r, Col: c}
			ch := " . "
			if l.Contains(n) {
				switch {
				case r == l.R1 && l.Dir == topo.Clockwise:
					ch = " > "
				case r == l.R1:
					ch = " < "
				case r == l.R2 && l.Dir == topo.Clockwise:
					ch = " < "
				case r == l.R2:
					ch = " > "
				case c == l.C1:
					ch = " | "
				default:
					ch = " | "
				}
			}
			b.WriteString(ch)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Table renders rows with aligned columns; the first row is the header.
func Table(rows [][]string) string {
	if len(rows) == 0 {
		return ""
	}
	widths := make([]int, 0)
	for _, row := range rows {
		for i, cell := range row {
			if i >= len(widths) {
				widths = append(widths, 0)
			}
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	for ri, row := range rows {
		for i, cell := range row {
			fmt.Fprintf(&b, "%-*s", widths[i]+2, cell)
		}
		b.WriteByte('\n')
		if ri == 0 {
			for i := range row {
				b.WriteString(strings.Repeat("-", widths[i]))
				b.WriteString("  ")
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// Curve renders (x, y) series as aligned columns for latency-vs-injection
// plots in text form.
func Curve(header string, xs []float64, series map[string][]float64, names []string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s", header)
	for _, n := range names {
		fmt.Fprintf(&b, "%12s", n)
	}
	b.WriteByte('\n')
	for i, x := range xs {
		fmt.Fprintf(&b, "%-10.3f", x)
		for _, n := range names {
			ys := series[n]
			if i < len(ys) {
				fmt.Fprintf(&b, "%12.2f", ys[i])
			} else {
				fmt.Fprintf(&b, "%12s", "-")
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

package viz

import (
	"strings"
	"testing"
)

func TestCSVQuoting(t *testing.T) {
	var b strings.Builder
	err := CSV(&b, [][]string{
		{"a", "b,c", `d"e`},
		{"1", "2", "3"},
	})
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(b.String(), "\n"), "\n")
	if lines[0] != `a,"b,c","d""e"` {
		t.Fatalf("header = %q", lines[0])
	}
	if lines[1] != "1,2,3" {
		t.Fatalf("row = %q", lines[1])
	}
}

func TestCurveCSV(t *testing.T) {
	var b strings.Builder
	err := CurveCSV(&b, []float64{0.01, 0.02}, []float64{9.5, 10.25}, []float64{0.01})
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.HasPrefix(out, "injection_rate,") {
		t.Fatalf("missing header: %q", out)
	}
	if !strings.Contains(out, "0.01,9.5,0.01") {
		t.Fatalf("missing first row: %q", out)
	}
	// Short throughput series leaves the cell empty rather than panicking.
	if !strings.Contains(out, "0.02,10.25,\n") {
		t.Fatalf("missing padded row: %q", out)
	}
}

package search

import (
	"fmt"
	"strconv"
	"testing"
)

// counterEnv is a toy problem: pick digits; final reward is the sum, but
// any digit above Limit is penalized. The optimum is to always pick Limit.
type counterEnv struct {
	picks []int
	limit int
	steps int
}

func (e *counterEnv) Fingerprint() string { return fmt.Sprint(e.picks) }

func (e *counterEnv) Actions() []string {
	out := make([]string, 10)
	for i := range out {
		out[i] = strconv.Itoa(i)
	}
	return out
}

func (e *counterEnv) Step(a string) float64 {
	v, _ := strconv.Atoi(a)
	e.picks = append(e.picks, v)
	if v > e.limit {
		return -5
	}
	return 0
}

func (e *counterEnv) Done() bool { return len(e.picks) >= e.steps }

func (e *counterEnv) FinalReward() float64 {
	s := 0.0
	for _, v := range e.picks {
		if v <= e.limit {
			s += float64(v)
		}
	}
	return s
}

type counterProblem struct{ limit, steps int }

func (p counterProblem) NewEpisode() Environment {
	return &counterEnv{limit: p.limit, steps: p.steps}
}

func (p counterProblem) Greedy(env Environment) (string, bool) {
	return strconv.Itoa(p.limit), true
}

func (p counterProblem) Priors(env Environment, actions []string) []float64 {
	return nil // uniform
}

func TestSearcherFindsGoodEpisodes(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Episodes = 60
	cfg.Epsilon = 0.2
	cfg.MaxSteps = 8
	prob := counterProblem{limit: 6, steps: 3}
	res := New(cfg, prob).Run()
	if len(res.Outcomes) != 60 {
		t.Fatalf("episodes = %d", len(res.Outcomes))
	}
	// Optimal final is 18 (three sixes); the search should get close.
	if res.Best.Final < 14 {
		t.Fatalf("best final = %v, want >= 14", res.Best.Final)
	}
	if res.TreeSize == 0 {
		t.Fatal("tree never expanded")
	}
}

func TestSearcherLearningImproves(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Episodes = 200
	cfg.Epsilon = 0 // pure tree/prior guidance
	// The exploration constant must be scaled to the reward magnitude
	// (final rewards reach 18 here) or UCB exploits a single branch.
	cfg.CPuct = 25
	cfg.MaxSteps = 4
	res := New(cfg, counterProblem{limit: 9, steps: 2}).Run()
	// Mean of the last quarter should beat the first quarter: the tree
	// steers toward high-return branches.
	q := len(res.Outcomes) / 4
	first, last := 0.0, 0.0
	for i := 0; i < q; i++ {
		first += res.Outcomes[i].Final
		last += res.Outcomes[len(res.Outcomes)-1-i].Final
	}
	if last <= first {
		t.Fatalf("no improvement: first quarter %v vs last %v", first/float64(q), last/float64(q))
	}
}

func TestSearcherOnBestMonotone(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Episodes = 30
	cfg.MaxSteps = 3
	s := New(cfg, counterProblem{limit: 5, steps: 2})
	var bests []float64
	s.OnBest(func(env Environment, out Outcome) {
		bests = append(bests, out.Final)
	})
	s.Run()
	if len(bests) == 0 {
		t.Fatal("OnBest never fired")
	}
	for i := 1; i < len(bests); i++ {
		if bests[i] <= bests[i-1] {
			t.Fatalf("OnBest not strictly improving: %v", bests)
		}
	}
}

func TestSearcherMultiThreaded(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Episodes = 16
	cfg.Threads = 4
	cfg.MaxSteps = 3
	res := New(cfg, counterProblem{limit: 4, steps: 2}).Run()
	if len(res.Outcomes) != 16 {
		t.Fatalf("episodes = %d under threads", len(res.Outcomes))
	}
}

func TestSearcherDeterministicSingleThread(t *testing.T) {
	mk := func() *Result {
		cfg := DefaultConfig()
		cfg.Episodes = 12
		cfg.MaxSteps = 3
		return New(cfg, counterProblem{limit: 7, steps: 2}).Run()
	}
	a, b := mk(), mk()
	if a.Best.Final != b.Best.Final || len(a.Outcomes) != len(b.Outcomes) {
		t.Fatal("single-threaded search not deterministic")
	}
}

// Package search generalizes the paper's exploration framework beyond
// routerless NoCs (§6.8, "Broad Applicability"): any design problem that
// can present states, candidate actions, rewards, and a final score can be
// driven by the same DNN-prior Monte Carlo tree search with ε-greedy
// heuristic overrides. The routerless case study (internal/drl) is the
// paper's instantiation; internal/noc3d demonstrates a second one (3-D
// NoC link placement, the paper's first suggested application).
package search

import (
	"math"
	"math/rand"
	"sort"
	"sync"
)

// Environment is one design episode's mutable state.
type Environment interface {
	// Fingerprint canonically identifies the current design state.
	Fingerprint() string
	// Actions enumerates the currently legal actions as opaque keys.
	Actions() []string
	// Step applies an action, returning its immediate reward. Illegal or
	// wasted actions should return negative rewards (§4.3's shaping).
	Step(action string) float64
	// Done reports whether the episode must end.
	Done() bool
	// FinalReward scores the finished design (higher is better).
	FinalReward() float64
}

// Problem creates fresh episodes and supplies domain heuristics.
type Problem interface {
	// NewEpisode returns a blank design environment.
	NewEpisode() Environment
	// Greedy proposes the domain's heuristic action (Algorithm 1's role);
	// ok is false when no action remains.
	Greedy(env Environment) (action string, ok bool)
	// Priors weights the legal actions for tree expansion; a nil return
	// means uniform. This is where a learned policy plugs in.
	Priors(env Environment, actions []string) []float64
}

// Config tunes the generic searcher.
type Config struct {
	Episodes int
	Threads  int
	Epsilon  float64
	CPuct    float64
	Gamma    float64
	// MaxSteps bounds one episode's actions.
	MaxSteps int
	Seed     int64
}

// DefaultConfig returns reasonable generic defaults.
func DefaultConfig() Config {
	return Config{Episodes: 30, Threads: 1, Epsilon: 0.2, CPuct: 1.5, Gamma: 0.99, MaxSteps: 256, Seed: 1}
}

// Outcome records one finished episode.
type Outcome struct {
	Final   float64
	Steps   int
	Episode int
}

// Result summarizes a search run.
type Result struct {
	// Best is the highest final reward observed.
	Best Outcome
	// Outcomes lists every episode in completion order.
	Outcomes []Outcome
	// TreeSize counts distinct expanded states.
	TreeSize int
}

// edge mirrors the MCTS statistics of Eqs. 21–22 over string actions.
type edge struct {
	p float64
	n int
	w float64
}

type node struct {
	edges map[string]*edge
	sumN  int
}

// Searcher runs the generic framework.
type Searcher struct {
	cfg  Config
	prob Problem

	mu    sync.Mutex
	nodes map[string]*node

	resMu   sync.Mutex
	result  Result
	episode int
	// onBest, when set, observes strictly improving episodes (under
	// resMu); domains use it to snapshot the best design.
	onBest func(env Environment, out Outcome)
}

// New builds a searcher for the problem.
func New(cfg Config, prob Problem) *Searcher {
	if cfg.Threads < 1 {
		cfg.Threads = 1
	}
	if cfg.Episodes < 1 {
		cfg.Episodes = 1
	}
	if cfg.MaxSteps < 1 {
		cfg.MaxSteps = 256
	}
	return &Searcher{cfg: cfg, prob: prob, nodes: make(map[string]*node)}
}

// OnBest registers a callback fired (serialized) whenever an episode
// strictly improves on the best final reward; the environment passed is
// the finished episode's.
func (s *Searcher) OnBest(fn func(env Environment, out Outcome)) { s.onBest = fn }

// Run executes the configured episodes.
func (s *Searcher) Run() *Result {
	var wg sync.WaitGroup
	per := s.cfg.Episodes / s.cfg.Threads
	extra := s.cfg.Episodes % s.cfg.Threads
	for t := 0; t < s.cfg.Threads; t++ {
		n := per
		if t < extra {
			n++
		}
		if n == 0 {
			continue
		}
		wg.Add(1)
		go func(tid, episodes int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(s.cfg.Seed + int64(tid)*104729))
			for e := 0; e < episodes; e++ {
				s.runEpisode(rng)
			}
		}(t, n)
	}
	wg.Wait()
	s.mu.Lock()
	size := len(s.nodes)
	s.mu.Unlock()
	s.resMu.Lock()
	defer s.resMu.Unlock()
	s.result.TreeSize = size
	out := s.result
	return &out
}

type pathStep struct {
	fp     string
	action string
	reward float64
}

func (s *Searcher) runEpisode(rng *rand.Rand) {
	env := s.prob.NewEpisode()
	var path []pathStep
	for steps := 0; steps < s.cfg.MaxSteps && !env.Done(); steps++ {
		fp := env.Fingerprint()
		action, ok := s.choose(env, fp, rng)
		if !ok {
			break
		}
		r := env.Step(action)
		path = append(path, pathStep{fp: fp, action: action, reward: r})
	}
	final := env.FinalReward()

	// Backup discounted returns-to-go.
	g := final
	returns := make([]float64, len(path))
	for i := len(path) - 1; i >= 0; i-- {
		g = path[i].reward + s.cfg.Gamma*g
		returns[i] = g
	}
	s.mu.Lock()
	for i, st := range path {
		nd, ok := s.nodes[st.fp]
		if !ok {
			continue
		}
		e, ok := nd.edges[st.action]
		if !ok {
			e = &edge{}
			nd.edges[st.action] = e
		}
		e.n++
		nd.sumN++
		e.w += returns[i]
	}
	s.mu.Unlock()

	s.resMu.Lock()
	s.episode++
	out := Outcome{Final: final, Steps: len(path), Episode: s.episode}
	s.result.Outcomes = append(s.result.Outcomes, out)
	improved := len(s.result.Outcomes) == 1 || final > s.result.Best.Final
	if improved {
		s.result.Best = out
		if s.onBest != nil {
			s.onBest(env, out)
		}
	}
	s.resMu.Unlock()
}

// choose mirrors the routerless action policy: ε-greedy heuristic, tree
// selection at known states, expansion with priors at leaves.
func (s *Searcher) choose(env Environment, fp string, rng *rand.Rand) (string, bool) {
	if rng.Float64() < s.cfg.Epsilon {
		if a, ok := s.prob.Greedy(env); ok {
			return a, true
		}
		return "", false
	}
	s.mu.Lock()
	nd, known := s.nodes[fp]
	if known && len(nd.edges) > 0 {
		a := s.selectLocked(nd)
		s.mu.Unlock()
		// Verify the edge is still playable.
		for _, legal := range env.Actions() {
			if legal == a {
				return a, true
			}
		}
		// Stale edge: fall through to expansion below.
		s.mu.Lock()
	}
	s.mu.Unlock()

	actions := env.Actions()
	if len(actions) == 0 {
		return "", false
	}
	sort.Strings(actions)
	priors := s.prob.Priors(env, actions)
	if priors == nil {
		priors = make([]float64, len(actions))
		for i := range priors {
			priors[i] = 1
		}
	}
	sum := 0.0
	for _, p := range priors {
		sum += p
	}
	s.mu.Lock()
	if _, ok := s.nodes[fp]; !ok {
		nd := &node{edges: make(map[string]*edge, len(actions))}
		for i, a := range actions {
			p := 1 / float64(len(actions))
			if sum > 0 {
				p = priors[i] / sum
			}
			nd.edges[a] = &edge{p: p}
		}
		s.nodes[fp] = nd
	}
	s.mu.Unlock()

	// Sample proportionally to priors.
	if sum <= 0 {
		return actions[rng.Intn(len(actions))], true
	}
	r := rng.Float64() * sum
	acc := 0.0
	for i, a := range actions {
		acc += priors[i]
		if r < acc {
			return a, true
		}
	}
	return actions[len(actions)-1], true
}

// selectLocked applies Eq. 21 on a node (caller holds s.mu).
func (s *Searcher) selectLocked(nd *node) string {
	sqrtSum := math.Sqrt(float64(nd.sumN) + 1)
	best := ""
	bestScore := math.Inf(-1)
	// Deterministic iteration order for reproducibility.
	keys := make([]string, 0, len(nd.edges))
	for a := range nd.edges {
		keys = append(keys, a)
	}
	sort.Strings(keys)
	for _, a := range keys {
		e := nd.edges[a]
		v := 0.0
		if e.n > 0 {
			v = e.w / float64(e.n)
		}
		score := s.cfg.CPuct*e.p*sqrtSum/(1+float64(e.n)) + v
		if score > bestScore {
			bestScore = score
			best = a
		}
	}
	return best
}

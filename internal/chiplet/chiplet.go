// Package chiplet is the second broad-applicability instantiation (§6.8):
// the paper suggests using the framework to "improve the latency and
// throughput of chiplet networks by exploring novel interconnect
// structures" over silicon interposers. The model here: several chiplets,
// each an internal mesh, sit on an interposer; every node can reach its
// chiplet's boundary bumps, and the exploration places a budget of
// interposer links between boundary bumps of different chiplets to
// minimize the average inter-chiplet hop count.
package chiplet

import (
	"fmt"
	"sort"
	"strings"

	"routerless/internal/search"
)

// System describes the package geometry: a ChipletsX×ChipletsY grid of
// chiplets, each an M×M mesh of cores.
type System struct {
	ChipletsX, ChipletsY int
	M                    int // cores per chiplet side
	// BumpPorts caps interposer links per boundary core; LinkBudget caps
	// total interposer links.
	BumpPorts  int
	LinkBudget int
}

// DefaultSystem returns a 2×2 four-chiplet package of 3×3 meshes.
func DefaultSystem() System {
	return System{ChipletsX: 2, ChipletsY: 2, M: 3, BumpPorts: 2, LinkBudget: 6}
}

// Cores returns the total core count.
func (s System) Cores() int { return s.ChipletsX * s.ChipletsY * s.M * s.M }

// Core identifies one core by chiplet and local position.
type Core struct {
	CX, CY int // chiplet coordinates
	X, Y   int // local mesh coordinates
}

// ID linearizes a core.
func (s System) ID(c Core) int {
	chip := c.CY*s.ChipletsX + c.CX
	return chip*s.M*s.M + c.Y*s.M + c.X
}

// CoreFromID inverts ID.
func (s System) CoreFromID(id int) Core {
	per := s.M * s.M
	chip := id / per
	local := id % per
	return Core{
		CX: chip % s.ChipletsX, CY: chip / s.ChipletsX,
		X: local % s.M, Y: local / s.M,
	}
}

// Boundary reports whether the core sits on its chiplet's edge (and can
// host a µbump to the interposer).
func (s System) Boundary(c Core) bool {
	return c.X == 0 || c.Y == 0 || c.X == s.M-1 || c.Y == s.M-1
}

// Design is a chiplet system plus placed interposer links.
type Design struct {
	Sys   System
	adj   [][]int
	bumps []int
	links [][2]int
	dirty bool
	dist  [][]int16
}

// NewDesign builds the base system: chiplet-internal meshes only, so
// inter-chiplet pairs start unreachable until interposer links exist.
func NewDesign(sys System) *Design {
	v := sys.Cores()
	d := &Design{
		Sys:   sys,
		adj:   make([][]int, v),
		bumps: make([]int, v),
		dirty: true,
	}
	for id := 0; id < v; id++ {
		c := sys.CoreFromID(id)
		for _, nb := range []Core{
			{c.CX, c.CY, c.X + 1, c.Y}, {c.CX, c.CY, c.X - 1, c.Y},
			{c.CX, c.CY, c.X, c.Y + 1}, {c.CX, c.CY, c.X, c.Y - 1},
		} {
			if nb.X < 0 || nb.X >= sys.M || nb.Y < 0 || nb.Y >= sys.M {
				continue
			}
			d.adj[id] = append(d.adj[id], sys.ID(nb))
		}
	}
	return d
}

// Links returns the placed interposer links.
func (d *Design) Links() [][2]int { return d.links }

// Clone deep-copies the design.
func (d *Design) Clone() *Design {
	c := &Design{
		Sys:   d.Sys,
		adj:   make([][]int, len(d.adj)),
		bumps: append([]int(nil), d.bumps...),
		links: append([][2]int(nil), d.links...),
		dirty: true,
	}
	for i, a := range d.adj {
		c.adj[i] = append([]int(nil), a...)
	}
	return c
}

// CanAdd validates an interposer link between two cores.
func (d *Design) CanAdd(a, b int) error {
	if a == b {
		return fmt.Errorf("chiplet: self link")
	}
	if len(d.links) >= d.Sys.LinkBudget {
		return fmt.Errorf("chiplet: link budget exhausted")
	}
	ca, cb := d.Sys.CoreFromID(a), d.Sys.CoreFromID(b)
	if ca.CX == cb.CX && ca.CY == cb.CY {
		return fmt.Errorf("chiplet: interposer links join different chiplets")
	}
	if !d.Sys.Boundary(ca) || !d.Sys.Boundary(cb) {
		return fmt.Errorf("chiplet: links attach at boundary bumps only")
	}
	if d.bumps[a] >= d.Sys.BumpPorts || d.bumps[b] >= d.Sys.BumpPorts {
		return fmt.Errorf("chiplet: bump port cap reached")
	}
	for _, nb := range d.adj[a] {
		if nb == b {
			return fmt.Errorf("chiplet: link exists")
		}
	}
	return nil
}

// AddLink places an interposer link.
func (d *Design) AddLink(a, b int) error {
	if err := d.CanAdd(a, b); err != nil {
		return err
	}
	d.adj[a] = append(d.adj[a], b)
	d.adj[b] = append(d.adj[b], a)
	d.bumps[a]++
	d.bumps[b]++
	if a > b {
		a, b = b, a
	}
	d.links = append(d.links, [2]int{a, b})
	d.dirty = true
	return nil
}

func (d *Design) distances() [][]int16 {
	if !d.dirty {
		return d.dist
	}
	v := d.Sys.Cores()
	dist := make([][]int16, v)
	queue := make([]int, 0, v)
	for s := 0; s < v; s++ {
		row := make([]int16, v)
		for i := range row {
			row[i] = -1
		}
		row[s] = 0
		queue = append(queue[:0], s)
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, nb := range d.adj[u] {
				if row[nb] < 0 {
					row[nb] = row[u] + 1
					queue = append(queue, nb)
				}
			}
		}
		dist[s] = row
	}
	d.dist = dist
	d.dirty = false
	return dist
}

// Connected reports whether every core pair is reachable.
func (d *Design) Connected() bool {
	dist := d.distances()
	for s := range dist {
		for _, h := range dist[s] {
			if h < 0 {
				return false
			}
		}
	}
	return true
}

// AvgInterChipletHops returns the mean hop count over reachable
// inter-chiplet core pairs; unreachable pairs are charged penalty hops.
func (d *Design) AvgInterChipletHops(penalty float64) float64 {
	dist := d.distances()
	total := 0.0
	pairs := 0
	for s := range dist {
		cs := d.Sys.CoreFromID(s)
		for t, h := range dist[s] {
			if s == t {
				continue
			}
			ct := d.Sys.CoreFromID(t)
			if cs.CX == ct.CX && cs.CY == ct.CY {
				continue
			}
			pairs++
			if h < 0 {
				total += penalty
			} else {
				total += float64(h)
			}
		}
	}
	if pairs == 0 {
		return 0
	}
	return total / float64(pairs)
}

// ---------------------------------------------------------------------------
// search.Problem instantiation

type env struct{ d *Design }

func (e *env) Fingerprint() string {
	keys := make([]string, len(e.d.links))
	for i, l := range e.d.links {
		keys[i] = fmt.Sprintf("%d-%d", l[0], l[1])
	}
	sort.Strings(keys)
	return strings.Join(keys, ";")
}

func (e *env) Actions() []string {
	var out []string
	v := e.d.Sys.Cores()
	for a := 0; a < v; a++ {
		for b := a + 1; b < v; b++ {
			if e.d.CanAdd(a, b) == nil {
				out = append(out, fmt.Sprintf("%d-%d", a, b))
			}
		}
	}
	return out
}

func (e *env) Step(action string) float64 {
	var a, b int
	fmt.Sscanf(action, "%d-%d", &a, &b)
	if err := e.d.AddLink(a, b); err != nil {
		return -1
	}
	return 0
}

func (e *env) Done() bool { return len(e.d.links) >= e.d.Sys.LinkBudget }

func (e *env) FinalReward() float64 {
	penalty := float64(4 * e.d.Sys.Cores())
	return -e.d.AvgInterChipletHops(penalty)
}

// Problem adapts the system to the generic searcher.
type Problem struct{ Sys System }

// NewEpisode implements search.Problem.
func (p Problem) NewEpisode() search.Environment { return &env{d: NewDesign(p.Sys)} }

// Greedy implements search.Problem: join the chiplet pair whose cores are
// currently farthest apart (or disconnected).
func (p Problem) Greedy(se search.Environment) (string, bool) {
	e := se.(*env)
	dist := e.d.distances()
	v := e.d.Sys.Cores()
	bestA, bestB := -1, -1
	bestScore := -1
	for a := 0; a < v; a++ {
		for b := a + 1; b < v; b++ {
			if e.d.CanAdd(a, b) != nil {
				continue
			}
			score := int(dist[a][b])
			if score < 0 {
				score = 4 * v // disconnected: highest priority
			}
			if score > bestScore {
				bestScore = score
				bestA, bestB = a, b
			}
		}
	}
	if bestA < 0 {
		return "", false
	}
	return fmt.Sprintf("%d-%d", bestA, bestB), true
}

// Priors implements search.Problem: weight candidate links by current
// separation, favouring links that bridge disconnected or distant pairs.
func (p Problem) Priors(se search.Environment, actions []string) []float64 {
	e := se.(*env)
	dist := e.d.distances()
	out := make([]float64, len(actions))
	for i, s := range actions {
		var a, b int
		fmt.Sscanf(s, "%d-%d", &a, &b)
		h := float64(dist[a][b])
		if h < 0 {
			h = float64(4 * e.d.Sys.Cores())
		}
		out[i] = h
	}
	return out
}

// Explore runs the searcher and returns the best design.
func Explore(sys System, cfg search.Config) (*Design, *search.Result) {
	prob := Problem{Sys: sys}
	s := search.New(cfg, prob)
	var best *Design
	s.OnBest(func(se search.Environment, _ search.Outcome) {
		best = se.(*env).d.Clone()
	})
	res := s.Run()
	return best, res
}

package chiplet

import (
	"testing"

	"routerless/internal/search"
)

func TestCoreIDRoundTrip(t *testing.T) {
	sys := DefaultSystem()
	for id := 0; id < sys.Cores(); id++ {
		if got := sys.ID(sys.CoreFromID(id)); got != id {
			t.Fatalf("id %d round-trips to %d", id, got)
		}
	}
}

func TestBaseSystemDisconnected(t *testing.T) {
	d := NewDesign(DefaultSystem())
	if d.Connected() {
		t.Fatal("chiplets connected without interposer links")
	}
	// Intra-chiplet routing works.
	sys := d.Sys
	a := sys.ID(Core{CX: 0, CY: 0, X: 0, Y: 0})
	b := sys.ID(Core{CX: 0, CY: 0, X: 2, Y: 2})
	if d.distances()[a][b] != 4 {
		t.Fatalf("intra-chiplet distance = %d, want 4", d.distances()[a][b])
	}
}

func TestCanAddRules(t *testing.T) {
	sys := DefaultSystem()
	d := NewDesign(sys)
	interior := sys.ID(Core{CX: 0, CY: 0, X: 1, Y: 1})
	edgeA := sys.ID(Core{CX: 0, CY: 0, X: 2, Y: 1})
	edgeB := sys.ID(Core{CX: 1, CY: 0, X: 0, Y: 1})
	sameChip := sys.ID(Core{CX: 0, CY: 0, X: 0, Y: 1})

	if err := d.AddLink(interior, edgeB); err == nil {
		t.Fatal("interior core accepted as bump")
	}
	if err := d.AddLink(edgeA, sameChip); err == nil {
		t.Fatal("same-chiplet interposer link accepted")
	}
	if err := d.AddLink(edgeA, edgeB); err != nil {
		t.Fatal(err)
	}
	if err := d.AddLink(edgeA, edgeB); err == nil {
		t.Fatal("duplicate link accepted")
	}
}

func TestBumpPortCap(t *testing.T) {
	sys := DefaultSystem()
	sys.BumpPorts = 1
	d := NewDesign(sys)
	a := sys.ID(Core{CX: 0, CY: 0, X: 2, Y: 1})
	b := sys.ID(Core{CX: 1, CY: 0, X: 0, Y: 1})
	c := sys.ID(Core{CX: 1, CY: 0, X: 0, Y: 2})
	if err := d.AddLink(a, b); err != nil {
		t.Fatal(err)
	}
	if err := d.AddLink(a, c); err == nil {
		t.Fatal("bump cap not enforced")
	}
}

func TestLinkBudget(t *testing.T) {
	sys := DefaultSystem()
	sys.LinkBudget = 1
	d := NewDesign(sys)
	a := sys.ID(Core{CX: 0, CY: 0, X: 2, Y: 1})
	b := sys.ID(Core{CX: 1, CY: 0, X: 0, Y: 1})
	if err := d.AddLink(a, b); err != nil {
		t.Fatal(err)
	}
	c := sys.ID(Core{CX: 0, CY: 0, X: 2, Y: 2})
	e := sys.ID(Core{CX: 1, CY: 0, X: 0, Y: 2})
	if err := d.AddLink(c, e); err == nil {
		t.Fatal("budget not enforced")
	}
}

func TestExploreConnectsPackage(t *testing.T) {
	cfg := search.DefaultConfig()
	cfg.Episodes = 10
	cfg.Epsilon = 0.4
	cfg.MaxSteps = 32
	cfg.Seed = 2
	best, res := Explore(DefaultSystem(), cfg)
	if best == nil {
		t.Fatal("no design found")
	}
	if !best.Connected() {
		t.Fatal("best design leaves chiplets unreachable")
	}
	if len(best.Links()) > DefaultSystem().LinkBudget {
		t.Fatalf("budget exceeded: %d links", len(best.Links()))
	}
	if res.Best.Final >= 0 {
		t.Fatalf("reward should be negative avg hops, got %v", res.Best.Final)
	}
	avg := best.AvgInterChipletHops(1000)
	if avg <= 0 || avg > 12 {
		t.Fatalf("implausible inter-chiplet hops %v", avg)
	}
}

func TestGreedyBridgesDisconnectedFirst(t *testing.T) {
	prob := Problem{Sys: DefaultSystem()}
	e := prob.NewEpisode()
	a, ok := prob.Greedy(e)
	if !ok {
		t.Fatal("no greedy action on blank package")
	}
	if e.Step(a) != 0 {
		t.Fatal("greedy proposed an illegal link")
	}
}

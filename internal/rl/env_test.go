package rl

import (
	"math"
	"testing"

	"routerless/internal/mesh"
	"routerless/internal/topo"
)

func TestActionLoopConversion(t *testing.T) {
	a := Action{X1: 0, Y1: 0, X2: 2, Y2: 3, Dir: topo.Clockwise}
	l, ok := a.Loop()
	if !ok || l.R2 != 2 || l.C2 != 3 {
		t.Fatalf("loop = %v ok=%v", l, ok)
	}
	// Degenerate rectangle -> invalid.
	if _, ok := (Action{X1: 1, Y1: 0, X2: 1, Y2: 3}).Loop(); ok {
		t.Fatal("degenerate action converted")
	}
}

func TestStepRewards(t *testing.T) {
	e := NewEnv(4, 2)
	// Valid.
	r, kind := e.Step(Action{0, 0, 3, 3, topo.Clockwise})
	if r != 0 || kind != Valid {
		t.Fatalf("valid: r=%v kind=%v", r, kind)
	}
	// Repetitive.
	r, kind = e.Step(Action{0, 0, 3, 3, topo.Clockwise})
	if r != -1 || kind != Repetitive {
		t.Fatalf("repetitive: r=%v kind=%v", r, kind)
	}
	// Invalid (degenerate).
	r, kind = e.Step(Action{0, 0, 0, 3, topo.Clockwise})
	if r != -1 || kind != Invalid {
		t.Fatalf("invalid: r=%v kind=%v", r, kind)
	}
	// Fill the cap at the perimeter, then go illegal.
	if _, kind = e.Step(Action{0, 0, 3, 3, topo.Counterclockwise}); kind != Valid {
		t.Fatal("second direction should be valid")
	}
	r, kind = e.Step(Action{0, 0, 2, 2, topo.Clockwise})
	if kind != Illegal || r != -5*4 {
		t.Fatalf("illegal: r=%v kind=%v, want -20/Illegal", r, kind)
	}
	// Out-of-bounds rectangles are invalid specifications.
	_, kind = e.Step(Action{0, 0, 4, 4, topo.Clockwise})
	if kind != Invalid {
		t.Fatalf("out of bounds kind = %v", kind)
	}
}

func TestStepOnlyValidMutates(t *testing.T) {
	e := NewEnv(4, 2)
	e.Step(Action{0, 0, 3, 3, topo.Clockwise})
	before := e.Topology().NumLoops()
	e.Step(Action{0, 0, 3, 3, topo.Clockwise}) // repetitive
	e.Step(Action{0, 0, 0, 3, topo.Clockwise}) // invalid
	if e.Topology().NumLoops() != before {
		t.Fatal("penalized action mutated the design")
	}
}

func TestFinalRewardMatchesMeshReference(t *testing.T) {
	e := NewEnv(2, 0)
	e.Step(Action{0, 0, 1, 1, topo.Clockwise})
	// 2x2 single CW loop: avg hops 2; mesh avg = AverageHops(2,2) = 4/3.
	want := mesh.AverageHops(2, 2) - 2
	if math.Abs(e.FinalReward()-want) > 1e-12 {
		t.Fatalf("final = %v, want %v", e.FinalReward(), want)
	}
}

func TestAverageHopsChargesSentinel(t *testing.T) {
	e := NewEnv(4, 0)
	// Empty design: all 240 ordered pairs unconnected -> sentinel 20.
	if got := e.AverageHops(); got != 20 {
		t.Fatalf("blank avg hops = %v, want 20", got)
	}
	if e.FinalReward() >= 0 {
		t.Fatal("blank design should have strongly negative final reward")
	}
}

func TestLegalActionsShrinkWithCap(t *testing.T) {
	e := NewEnv(4, 1)
	all := len(e.LegalActions())
	// 4x4: C(4,2)^2 rectangles = 36, both directions = 72.
	if all != 72 {
		t.Fatalf("blank legal actions = %d, want 72", all)
	}
	e.Step(Action{0, 0, 3, 3, topo.Clockwise})
	after := len(e.LegalActions())
	if after >= all {
		t.Fatalf("legal actions did not shrink: %d -> %d", all, after)
	}
	if !e.HasLegalAction() {
		t.Fatal("interior rectangles should remain legal")
	}
}

func TestHasLegalActionExhaustion(t *testing.T) {
	e := NewEnv(2, 1)
	e.Step(Action{0, 0, 1, 1, topo.Clockwise})
	if e.HasLegalAction() {
		t.Fatal("cap 1 on 2x2 should be exhausted after one loop")
	}
	if len(e.LegalActions()) != 0 {
		t.Fatal("LegalActions disagrees with HasLegalAction")
	}
}

func TestCloneIndependence(t *testing.T) {
	e := NewEnv(4, 6)
	e.Step(Action{0, 0, 3, 3, topo.Clockwise})
	c := e.Clone()
	c.Step(Action{0, 0, 1, 1, topo.Clockwise})
	if e.Topology().NumLoops() != 1 || c.Topology().NumLoops() != 2 {
		t.Fatal("clone shares topology")
	}
}

func TestStateMatchesTopologyHopMatrix(t *testing.T) {
	e := NewEnv(3, 0)
	e.Step(Action{0, 0, 2, 2, topo.Clockwise})
	s := e.State()
	m := e.Topology().HopMatrix()
	if len(s) != len(m) {
		t.Fatal("length mismatch")
	}
	for i := range s {
		if s[i] != m[i] {
			t.Fatal("state differs from hop matrix")
		}
	}
}

func TestActionKindString(t *testing.T) {
	for k, want := range map[ActionKind]string{Valid: "valid", Repetitive: "repetitive", Invalid: "invalid", Illegal: "illegal"} {
		if k.String() != want {
			t.Errorf("%d -> %q", k, k.String())
		}
	}
}

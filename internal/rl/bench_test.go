package rl

import (
	"math/rand"
	"strconv"
	"testing"

	"routerless/internal/nn"
	"routerless/internal/topo"
)

// benchTraj synthesizes an H-step trajectory of random states and actions
// on an N×N grid — the trainer's workload without the episode machinery,
// so the benchmark isolates Accumulate itself.
func benchTraj(nc, h int, rng *rand.Rand) Trajectory {
	side := nc * nc
	traj := Trajectory{Final: 3.5}
	for t := 0; t < h; t++ {
		st := make([]float64, side*side)
		for i := range st {
			st[i] = float64(rng.Intn(5 * nc))
		}
		traj.Steps = append(traj.Steps, StepRecord{
			State: st,
			Action: Action{X1: rng.Intn(nc), Y1: rng.Intn(nc),
				X2: rng.Intn(nc), Y2: rng.Intn(nc), Dir: topo.Clockwise},
			Reward: rng.Float64(),
		})
	}
	return traj
}

// BenchmarkA2CAccumulate is the PR 9 gate benchmark: the full trajectory
// update (forward + head gradients + backward for every step) on the
// paper-scale nets, sequential per-step loop versus the batched path at
// its default tile, over trajectory lengths H ∈ {8, 16, 32}. Report
// ns/step to compare across H. The gate: batched ≥ 2× sequential at
// H ≥ 16 on both grids. Before/after numbers live in BENCH_PR9.json.
func BenchmarkA2CAccumulate(b *testing.B) {
	for _, mode := range []struct {
		name string
		tile int
	}{{"seq", 0}, {"batched", 16}} {
		for _, nc := range []int{8, 10} {
			for _, h := range []int{8, 16, 32} {
				b.Run(mode.name+"/"+strconv.Itoa(nc)+"x"+strconv.Itoa(nc)+"/H"+strconv.Itoa(h), func(b *testing.B) {
					net := nn.NewPolicyValueNet(nn.Config{N: nc, BaseChannels: 2, Pools: 2}, 1)
					rng := rand.New(rand.NewSource(7))
					traj := benchTraj(nc, h, rng)
					a2c := DefaultA2C()
					a2c.TrainBatch = mode.tile
					net.ZeroGrads()
					a2c.Accumulate(net, traj) // warm scratch and arenas
					b.ReportAllocs()
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						a2c.Accumulate(net, traj)
					}
					b.StopTimer()
					b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*h), "ns/step")
				})
			}
		}
	}
}

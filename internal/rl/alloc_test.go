package rl

import (
	"sync"
	"testing"

	"routerless/internal/obs"
)

// These tests pin the PR's zero-allocation contract for the episode hot
// path: once an environment's buffers are warm, the greedy search loop,
// the state encoding, and the fingerprint are allocation-free. Any
// regression (a lost buffer reuse, a reintroduced per-scan make, an
// accidental sort closure) fails here before it shows up as an experiment
// slowdown. Same methodology as the PR 2 DNN arena tests and the PR 3
// simulator tests.

// TestGreedyCompleteZeroAllocSteadyState drives a recycled environment
// through an entire design construction — every GreedySearch scan and
// every Step — and requires zero heap allocations once warm. This covers
// the score table's dirty set, the topology's incremental aggregates, the
// canonical fingerprint order, and the legality buffers all at once.
func TestGreedyCompleteZeroAllocSteadyState(t *testing.T) {
	e := NewEnv(6, 10)
	episode := func() {
		e.Reset()
		if GreedyComplete(e) == 0 {
			t.Fatal("greedy added no loops")
		}
	}
	episode() // warm: topology, score table, fingerprint order, buffers
	allocs := testing.AllocsPerRun(20, episode)
	if allocs != 0 {
		t.Fatalf("warmed-up greedy completion allocates %.1f times, want 0", allocs)
	}
}

// TestGreedyStepZeroAllocSteadyState pins the finer unit: one
// GreedySearch scan plus the Step applying its action, mid-construction.
func TestGreedyStepZeroAllocSteadyState(t *testing.T) {
	e := NewEnv(6, 10)
	GreedyComplete(e) // warm all buffers at full occupancy
	e.Reset()
	allocs := testing.AllocsPerRun(20, func() {
		r := GreedySearch(e)
		if !r.OK {
			e.Reset()
			return
		}
		if _, kind := e.Step(r.Action); kind != Valid {
			t.Fatal("greedy proposed an unplayable action")
		}
	})
	if allocs != 0 {
		t.Fatalf("warmed-up greedy step allocates %.1f times, want 0", allocs)
	}
}

// TestGreedyStepZeroAllocWithNilTraceSpan pins the disabled-tracing
// invariant for the search hot path: a greedy scan + step wrapped in a
// span on a nil shard (exactly what the DRL worker does when no -trace
// flag is given) keeps the zero-allocation pin. If the obs span machinery
// ever allocates on its disabled path, the episode loop regresses here
// first.
func TestGreedyStepZeroAllocWithNilTraceSpan(t *testing.T) {
	e := NewEnv(6, 10)
	GreedyComplete(e) // warm all buffers at full occupancy
	e.Reset()
	var sh *obs.TraceShard // nil: tracing disabled
	allocs := testing.AllocsPerRun(20, func() {
		sp := sh.Start(obs.SpanMCTSSelect)
		r := GreedySearch(e)
		if !r.OK {
			e.Reset()
			sp.End()
			return
		}
		if _, kind := e.Step(r.Action); kind != Valid {
			t.Fatal("greedy proposed an unplayable action")
		}
		sp.End()
	})
	if allocs != 0 {
		t.Fatalf("warmed-up greedy step under a nil trace span allocates %.1f times, want 0", allocs)
	}
}

// TestStateIntoZeroAlloc pins the copy-free state encoding: after the
// first materialization, StateInto into a capacity-sufficient buffer never
// touches the heap, even as steps keep mutating the design.
func TestStateIntoZeroAlloc(t *testing.T) {
	e := NewEnv(6, 10)
	GreedyComplete(e) // warm buffers at full design occupancy
	e.Reset()
	buf := e.StateInto(nil) // materialize the incremental matrix
	allocs := testing.AllocsPerRun(50, func() {
		if r := GreedySearch(e); r.OK {
			e.Step(r.Action)
		} else {
			e.Reset()
		}
		buf = e.StateInto(buf)
	})
	if allocs != 0 {
		t.Fatalf("warmed-up StateInto allocates %.1f times, want 0", allocs)
	}
}

// TestFingerprintZeroAllocWhenClean pins the cached canonical fingerprint:
// repeated reads of an unchanged design cost nothing.
func TestFingerprintZeroAllocWhenClean(t *testing.T) {
	e := NewEnv(6, 10)
	GreedyComplete(e)
	e.Fingerprint() // render once
	allocs := testing.AllocsPerRun(100, func() {
		_ = e.Fingerprint()
	})
	if allocs != 0 {
		t.Fatalf("clean fingerprint read allocates %.1f times, want 0", allocs)
	}
}

// TestLegalActionsZeroAllocSteadyState pins the reused enumeration buffer.
func TestLegalActionsZeroAllocSteadyState(t *testing.T) {
	e := NewEnv(6, 10)
	e.LegalActions() // size the buffer at the blank design's maximum
	allocs := testing.AllocsPerRun(50, func() {
		_ = e.LegalActions()
	})
	if allocs != 0 {
		t.Fatalf("warmed-up LegalActions allocates %.1f times, want 0", allocs)
	}
}

// TestConcurrentEnvsSharedTables exercises the immutability contract the
// score cache relies on: many environments on the same grid share one
// precomputed GridTables instance and nothing else, so fully independent
// searches may run concurrently. Run under -race (make ci covers this
// package) it proves the shared tables are read-only in the hot path.
func TestConcurrentEnvsSharedTables(t *testing.T) {
	const workers = 8
	var wg sync.WaitGroup
	fps := make([]string, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			e := NewEnv(5, 8)
			for round := 0; round < 3; round++ {
				e.Reset()
				GreedyComplete(e)
			}
			fps[w] = e.Fingerprint()
		}(w)
	}
	wg.Wait()
	for w := 1; w < workers; w++ {
		if fps[w] != fps[0] {
			t.Fatalf("worker %d produced a different design than worker 0", w)
		}
	}
	if tab0, tab1 := NewEnv(5, 8).Topology().Tables(), NewEnv(5, 8).Topology().Tables(); tab0 != tab1 {
		t.Fatal("environments on the same grid did not share one GridTables")
	}
}

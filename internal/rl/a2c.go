package rl

import (
	"routerless/internal/nn"
	"routerless/internal/topo"
)

// StepRecord is one trajectory element: the state observed, the action
// taken, the immediate reward, and the network outputs at decision time.
type StepRecord struct {
	State  []float64
	Action Action
	Reward float64
	// Out is the network evaluation used to choose the action (nil when
	// the action came from greedy search or the tree; the trainer
	// re-evaluates in that case).
	Out *nn.Output
}

// Trajectory is an episode's step sequence plus its final return.
type Trajectory struct {
	Steps []StepRecord
	// Final is the episode-final return (mesh hops − design hops).
	Final float64
}

// A2C computes advantage actor-critic gradients (Eqs. 15–18) for a
// trajectory and accumulates them into net's parameter gradients. The
// struct carries reusable scratch buffers, so one A2C value per worker
// makes repeated Accumulate calls allocation-free; it is not safe for
// concurrent use.
type A2C struct {
	// Gamma is the discount factor γ.
	Gamma float64
	// ValueCoeff scales the value-head loss (the paper's constant c in
	// Eq. 20).
	ValueCoeff float64
	// TrainBatch is the tile size for the batched trajectory update: steps
	// are processed in t-ordered tiles of up to TrainBatch samples, each
	// tile one ForwardBatchTrain + BackwardBatch pass. Values ≤ 1 select
	// the per-step sequential path, which is the batched path's
	// byte-identity oracle: both orders of evaluation produce bit-equal
	// gradients, running statistics, and MSE.
	TrainBatch int

	// Scratch reused across Accumulate calls: discounted returns-to-go,
	// the per-head policy-gradient logits (sequential path), and the
	// batched-tile views and head-gradient rows (batched path).
	returns []float64
	dLogits [4][]float64
	states  [][]float64
	outs    []nn.Output
	flat    []float64
	dDir    []float64
	dVal    []float64
}

// DefaultA2C mirrors the paper's formulation with γ close to one. The
// batched trajectory update is on by default; zero-value A2C literals keep
// the sequential path.
func DefaultA2C() A2C { return A2C{Gamma: 0.99, ValueCoeff: 0.5, TrainBatch: 16} }

// Accumulate back-propagates the trajectory through net. Gradients are
// summed into net's parameter gradient buffers; callers then apply them
// locally (SGD.Step) or ship them to the parameter server (§4.6).
// It returns the mean squared value error, a training-progress signal.
func (a *A2C) Accumulate(net *nn.PolicyValueNet, traj Trajectory) float64 {
	n := len(traj.Steps)
	if n == 0 {
		return 0
	}
	// Discounted returns-to-go, seeding with the final return after the
	// last step: G_t = r_t + γ G_{t+1}, G_n = Final.
	if cap(a.returns) < n {
		a.returns = make([]float64, n)
	}
	returns := a.returns[:n]
	g := traj.Final
	for t := n - 1; t >= 0; t-- {
		g = traj.Steps[t].Reward + a.Gamma*g
		returns[t] = g
	}
	if a.TrainBatch > 1 {
		return a.accumulateBatched(net, traj, returns)
	}
	return a.accumulateSequential(net, traj, returns)
}

// accumulateSequential is the original per-step update: one Forward and one
// Backward per trajectory step, in trajectory order. It is retained as the
// parity oracle for the batched path.
func (a *A2C) accumulateSequential(net *nn.PolicyValueNet, traj Trajectory, returns []float64) float64 {
	mse := 0.0
	for t, s := range traj.Steps {
		out := net.Forward(s.State, true)
		adv := returns[t] - out.Value // A_t (Eq. 16)

		// Policy gradient for the coordinate heads: for loss
		// -A log π(a), d/dlogit_i = A (p_i - 1{i==a_g}).
		chosen := [4]int{s.Action.X1, s.Action.Y1, s.Action.X2, s.Action.Y2}
		for gi := 0; gi < 4; gi++ {
			if cap(a.dLogits[gi]) < len(out.CoordProbs[gi]) {
				a.dLogits[gi] = make([]float64, len(out.CoordProbs[gi]))
			}
			dl := a.dLogits[gi][:len(out.CoordProbs[gi])]
			for i, p := range out.CoordProbs[gi] {
				dl[i] = adv * p
			}
			dl[chosen[gi]] -= adv
			a.dLogits[gi] = dl
		}
		dLogits := a.dLogits
		// Direction head: the tanh output maps to P(clockwise) =
		// (1+Dir)/2. For loss -A log P(chosen):
		//   clockwise:        d/dz = -A (1 - Dir)
		//   counterclockwise: d/dz = +A (1 + Dir)
		var dDir float64
		if s.Action.Dir == topo.Clockwise {
			dDir = -adv * (1 - out.Dir)
		} else {
			dDir = adv * (1 + out.Dir)
		}
		// Value head: loss c·(G - V)², d/dV = 2c(V - G) (Eq. 18).
		dValue := 2 * a.ValueCoeff * (out.Value - returns[t])
		mse += (out.Value - returns[t]) * (out.Value - returns[t])

		net.Backward(dLogits, dDir, dValue)
	}
	return mse / float64(len(traj.Steps))
}

// accumulateBatched fuses the per-step update into tile-sized batched
// passes: each tile of up to TrainBatch consecutive steps runs one
// ForwardBatchTrain (per-layer activations cached for every sample) and one
// BackwardBatch. Head gradients for the whole tile are computed in a single
// vectorized sweep between the two network calls. Because the batched
// network passes reduce in ascending sample (= trajectory) order with the
// same kernels as the sequential path, the accumulated gradients, BatchNorm
// running statistics, and returned MSE are byte-identical to
// accumulateSequential.
func (a *A2C) accumulateBatched(net *nn.PolicyValueNet, traj Trajectory, returns []float64) float64 {
	n := len(traj.Steps)
	nc := net.Cfg.N
	tile := a.TrainBatch
	if tile > n {
		tile = n
	}
	if cap(a.states) < tile {
		a.states = make([][]float64, tile)
	}
	if cap(a.outs) < tile {
		a.outs = make([]nn.Output, tile)
	}
	if cap(a.flat) < tile*4*nc {
		a.flat = make([]float64, tile*4*nc)
	}
	if cap(a.dDir) < tile {
		a.dDir = make([]float64, tile)
	}
	if cap(a.dVal) < tile {
		a.dVal = make([]float64, tile)
	}

	mse := 0.0
	for t0 := 0; t0 < n; t0 += tile {
		nb := tile
		if t0+nb > n {
			nb = n - t0
		}
		states := a.states[:nb]
		outs := a.outs[:nb]
		for bi := 0; bi < nb; bi++ {
			states[bi] = traj.Steps[t0+bi].State
		}
		net.ForwardBatchTrain(states, outs)

		flat := a.flat[:nb*4*nc]
		dDir := a.dDir[:nb]
		dVal := a.dVal[:nb]
		for bi := 0; bi < nb; bi++ {
			s := &traj.Steps[t0+bi]
			out := &outs[bi]
			adv := returns[t0+bi] - out.Value // A_t (Eq. 16)

			chosen := [4]int{s.Action.X1, s.Action.Y1, s.Action.X2, s.Action.Y2}
			row := flat[bi*4*nc : (bi+1)*4*nc]
			for gi := 0; gi < 4; gi++ {
				dl := row[gi*nc : (gi+1)*nc]
				for i, p := range out.CoordProbs[gi] {
					dl[i] = adv * p
				}
				dl[chosen[gi]] -= adv
			}
			if s.Action.Dir == topo.Clockwise {
				dDir[bi] = -adv * (1 - out.Dir)
			} else {
				dDir[bi] = adv * (1 + out.Dir)
			}
			dVal[bi] = 2 * a.ValueCoeff * (out.Value - returns[t0+bi])
			mse += (out.Value - returns[t0+bi]) * (out.Value - returns[t0+bi])
		}
		net.BackwardBatch(flat, dDir, dVal)
	}
	return mse / float64(n)
}

package rl

import (
	"routerless/internal/nn"
	"routerless/internal/topo"
)

// StepRecord is one trajectory element: the state observed, the action
// taken, the immediate reward, and the network outputs at decision time.
type StepRecord struct {
	State  []float64
	Action Action
	Reward float64
	// Out is the network evaluation used to choose the action (nil when
	// the action came from greedy search or the tree; the trainer
	// re-evaluates in that case).
	Out *nn.Output
}

// Trajectory is an episode's step sequence plus its final return.
type Trajectory struct {
	Steps []StepRecord
	// Final is the episode-final return (mesh hops − design hops).
	Final float64
}

// A2C computes advantage actor-critic gradients (Eqs. 15–18) for a
// trajectory and accumulates them into net's parameter gradients. The
// struct carries reusable scratch buffers, so one A2C value per worker
// makes repeated Accumulate calls allocation-free; it is not safe for
// concurrent use.
type A2C struct {
	// Gamma is the discount factor γ.
	Gamma float64
	// ValueCoeff scales the value-head loss (the paper's constant c in
	// Eq. 20).
	ValueCoeff float64

	// Scratch reused across Accumulate calls: discounted returns-to-go and
	// the per-head policy-gradient logits.
	returns []float64
	dLogits [4][]float64
}

// DefaultA2C mirrors the paper's formulation with γ close to one.
func DefaultA2C() A2C { return A2C{Gamma: 0.99, ValueCoeff: 0.5} }

// Accumulate back-propagates the trajectory through net. Gradients are
// summed into net's parameter gradient buffers; callers then apply them
// locally (SGD.Step) or ship them to the parameter server (§4.6).
// It returns the mean squared value error, a training-progress signal.
func (a *A2C) Accumulate(net *nn.PolicyValueNet, traj Trajectory) float64 {
	n := len(traj.Steps)
	if n == 0 {
		return 0
	}
	// Discounted returns-to-go, seeding with the final return after the
	// last step: G_t = r_t + γ G_{t+1}, G_n = Final.
	if cap(a.returns) < n {
		a.returns = make([]float64, n)
	}
	returns := a.returns[:n]
	g := traj.Final
	for t := n - 1; t >= 0; t-- {
		g = traj.Steps[t].Reward + a.Gamma*g
		returns[t] = g
	}

	mse := 0.0
	for t, s := range traj.Steps {
		out := net.Forward(s.State, true)
		adv := returns[t] - out.Value // A_t (Eq. 16)

		// Policy gradient for the coordinate heads: for loss
		// -A log π(a), d/dlogit_i = A (p_i - 1{i==a_g}).
		chosen := [4]int{s.Action.X1, s.Action.Y1, s.Action.X2, s.Action.Y2}
		for gi := 0; gi < 4; gi++ {
			if cap(a.dLogits[gi]) < len(out.CoordProbs[gi]) {
				a.dLogits[gi] = make([]float64, len(out.CoordProbs[gi]))
			}
			dl := a.dLogits[gi][:len(out.CoordProbs[gi])]
			for i, p := range out.CoordProbs[gi] {
				dl[i] = adv * p
			}
			dl[chosen[gi]] -= adv
			a.dLogits[gi] = dl
		}
		dLogits := a.dLogits
		// Direction head: the tanh output maps to P(clockwise) =
		// (1+Dir)/2. For loss -A log P(chosen):
		//   clockwise:        d/dz = -A (1 - Dir)
		//   counterclockwise: d/dz = +A (1 + Dir)
		var dDir float64
		if s.Action.Dir == topo.Clockwise {
			dDir = -adv * (1 - out.Dir)
		} else {
			dDir = adv * (1 + out.Dir)
		}
		// Value head: loss c·(G - V)², d/dV = 2c(V - G) (Eq. 18).
		dValue := 2 * a.ValueCoeff * (out.Value - returns[t])
		mse += (out.Value - returns[t]) * (out.Value - returns[t])

		net.Backward(dLogits, dDir, dValue)
	}
	return mse / float64(n)
}

package rl

import (
	"testing"

	"routerless/internal/rec"
	"routerless/internal/topo"
)

func TestCheckCountOnBlankDesign(t *testing.T) {
	e := NewEnv(4, 0)
	// A 2x2 loop newly connects 4*3 = 12 ordered pairs.
	l := topo.MustLoop(0, 0, 1, 1, topo.Clockwise)
	if got := CheckCount(e.Topology(), l); got != 12 {
		t.Fatalf("CheckCount = %d, want 12", got)
	}
	// The full perimeter connects 12*11 = 132 pairs.
	big := topo.MustLoop(0, 0, 3, 3, topo.Clockwise)
	if got := CheckCount(e.Topology(), big); got != 132 {
		t.Fatalf("CheckCount(big) = %d, want 132", got)
	}
}

func TestCheckCountIgnoresAlreadyConnected(t *testing.T) {
	e := NewEnv(4, 0)
	e.Step(Action{0, 0, 3, 3, topo.Clockwise})
	big := topo.MustLoop(0, 0, 3, 3, topo.Counterclockwise)
	if got := CheckCount(e.Topology(), big); got != 0 {
		t.Fatalf("CheckCount = %d, want 0 (already connected)", got)
	}
}

func TestGreedyFirstMoveMaximizesConnectivity(t *testing.T) {
	e := NewEnv(4, 6)
	a, ok := Greedy(e)
	if !ok {
		t.Fatal("no greedy action on blank design")
	}
	// The perimeter loop connects the most pairs on a blank design.
	if a.X1 != 0 || a.Y1 != 0 || a.X2 != 3 || a.Y2 != 3 {
		t.Fatalf("greedy first move = %v, want full perimeter", a)
	}
}

func TestImprvPrefersOppositeDirection(t *testing.T) {
	e := NewEnv(4, 0)
	e.Step(Action{0, 0, 3, 3, topo.Clockwise})
	l := topo.MustLoop(0, 0, 3, 3, topo.Clockwise)
	gain, dir := Imprv(e.Topology(), l, true, true)
	// With a clockwise perimeter in place, the counterclockwise copy
	// halves the long way around.
	if dir != topo.Counterclockwise {
		t.Fatalf("dir = %v, want CCW", dir)
	}
	if gain <= 0 {
		t.Fatalf("gain = %v", gain)
	}
}

func TestGreedyRespectsCap(t *testing.T) {
	e := NewEnv(4, 1)
	e.Step(Action{0, 0, 3, 3, topo.Clockwise})
	a, ok := Greedy(e)
	if !ok {
		t.Fatal("interior loops should remain")
	}
	l, _ := a.Loop()
	if e.Topology().CheckAdd(l) != nil {
		t.Fatalf("greedy proposed illegal loop %v", l)
	}
}

func TestGreedyCompleteConnectsDesign(t *testing.T) {
	for _, n := range []int{4, 6} {
		e := NewEnv(n, 2*(n-1))
		added := GreedyComplete(e)
		if added == 0 {
			t.Fatalf("n=%d: nothing added", n)
		}
		if !e.FullyConnected() {
			t.Fatalf("n=%d: greedy completion left design unconnected", n)
		}
		rt := rec.MustGenerate(n)
		recHops, _ := rt.AverageHops()
		if e.AverageHops() > recHops*1.15 {
			t.Fatalf("n=%d: greedy hops %.3f much worse than REC %.3f",
				n, e.AverageHops(), recHops)
		}
	}
}

func TestGreedySearchMetrics(t *testing.T) {
	e := NewEnv(4, 6)
	r := GreedySearch(e)
	if !r.OK {
		t.Fatal("no action")
	}
	if r.NewPairs != 132 {
		t.Fatalf("NewPairs = %d, want 132 for the perimeter", r.NewPairs)
	}
	if r.Gain <= 0 {
		t.Fatalf("Gain = %v", r.Gain)
	}
}

func TestGreedyExhaustedReturnsFalse(t *testing.T) {
	e := NewEnv(2, 1)
	e.Step(Action{0, 0, 1, 1, topo.Clockwise})
	if _, ok := Greedy(e); ok {
		t.Fatal("greedy found action on exhausted design")
	}
}

package rl

import (
	"routerless/internal/topo"
)

// GreedyResult reports the outcome of one Algorithm 1 scan.
type GreedyResult struct {
	Action Action
	// NewPairs is CheckCount for the chosen loop: ordered pairs newly
	// connected.
	NewPairs int
	// Gain is the hop-count improvement metric of Imprv.
	Gain float64
	// OK is false when no legal loop exists.
	OK bool
}

// Greedy implements Algorithm 1 of the paper: scan every rectangle, prefer
// the loop that newly connects the most node pairs (CheckCount); break
// ties by the average-hop-count improvement (Imprv), which also selects
// the loop direction. It returns false when no legal loop exists.
func Greedy(e *Env) (Action, bool) {
	r := GreedySearch(e)
	return r.Action, r.OK
}

// GreedySearch is Greedy with the winning loop's metrics exposed, letting
// callers trim exploration branches whose best remaining addition is
// useless (§3.2, "Guided Design Space Search").
//
// It runs over the environment's cached per-rectangle score table: a step
// perturbs only the rectangles whose legality, pair count, or memoized
// hop-improvement actually depend on what changed (see scoreTable), and
// the argmax walks the cached rows in brute-force enumeration order,
// filling in missing improvement values only for rectangles whose count
// ties or beats the running best — the same rectangles whose Imprv the
// brute scan evaluates. The selection is byte-identical to
// bruteGreedySearch, which the property tests enforce.
func GreedySearch(e *Env) GreedyResult {
	s := e.scoresSynced()
	rects := s.tab.Rects()
	bestRect := -1
	bestCount := -1
	bestImprv := 0.0
	for ri := range s.sc {
		sc := &s.sc[ri]
		if !sc.cwOK && !sc.ccwOK {
			continue
		}
		count := int(sc.count)
		if count < bestCount {
			continue
		}
		if !sc.impOK {
			s.ensureImprv(e, int32(ri))
		}
		if count > bestCount || sc.imprv > bestImprv {
			bestCount = count
			bestImprv = sc.imprv
			bestRect = ri
		}
	}
	if bestRect < 0 {
		return GreedyResult{NewPairs: -1}
	}
	r := &rects[bestRect]
	return GreedyResult{
		Action:   Action{r.R1, r.C1, r.R2, r.C2, s.sc[bestRect].dir},
		NewPairs: bestCount,
		Gain:     bestImprv,
		OK:       true,
	}
}

// bruteGreedySearch is the original full O(N⁴) rescan, kept as the parity
// oracle for the incremental GreedySearch: the property tests assert both
// return identical results on arbitrary partial designs.
func bruteGreedySearch(e *Env) GreedyResult {
	bestLoop := Action{}
	bestCount := -1
	bestImprv := 0.0
	found := false
	for x1 := 0; x1 < e.N-1; x1++ {
		for y1 := 0; y1 < e.N-1; y1++ {
			for x2 := x1 + 1; x2 < e.N; x2++ {
				for y2 := y1 + 1; y2 < e.N; y2++ {
					cw := topo.MustLoop(x1, y1, x2, y2, topo.Clockwise)
					ccw := topo.MustLoop(x1, y1, x2, y2, topo.Counterclockwise)
					if !e.allowed(cw) {
						continue
					}
					cwOK := e.topo.CheckAdd(cw) == nil
					ccwOK := e.topo.CheckAdd(ccw) == nil
					if !cwOK && !ccwOK {
						continue
					}
					count := CheckCount(e.topo, cw)
					if count < bestCount {
						continue
					}
					imprv, dir := Imprv(e.topo, cw, cwOK, ccwOK)
					if count > bestCount || imprv > bestImprv {
						bestCount = count
						bestImprv = imprv
						bestLoop = Action{x1, y1, x2, y2, dir}
						found = true
					}
				}
			}
		}
	}
	return GreedyResult{Action: bestLoop, NewPairs: bestCount, Gain: bestImprv, OK: found}
}

// CheckCount returns the number of ordered node pairs newly connected by
// adding the rectangle of loop l (direction-independent: a loop connects
// the same pairs either way).
func CheckCount(t *topo.Topology, l topo.Loop) int {
	nodes := l.Nodes()
	count := 0
	for _, u := range nodes {
		for _, v := range nodes {
			if u == v {
				continue
			}
			if t.Dist(u, v) < 0 {
				count++
			}
		}
	}
	return count
}

// Imprv evaluates the average-hop-count benefit of adding loop l in each
// permitted direction and returns the larger improvement with its
// direction. Improvement sums, over the loop's perimeter pairs, the
// distance reduction relative to the current design (unconnected pairs
// count as the 5N sentinel).
func Imprv(t *topo.Topology, l topo.Loop, cwOK, ccwOK bool) (float64, topo.Direction) {
	nodes := l.Nodes()
	sentinel := topo.UnconnectedHops(t.Rows(), t.Cols())
	evaluate := func(dir topo.Direction) float64 {
		ld := l
		ld.Dir = dir
		sum := 0.0
		for _, u := range nodes {
			for _, v := range nodes {
				if u == v {
					continue
				}
				cur := float64(t.Dist(u, v))
				if cur < 0 {
					cur = sentinel
				}
				nd := float64(ld.Dist(u, v))
				if nd < cur {
					sum += cur - nd
				}
			}
		}
		return sum
	}
	switch {
	case cwOK && ccwOK:
		icw := evaluate(topo.Clockwise)
		iccw := evaluate(topo.Counterclockwise)
		if iccw > icw {
			return iccw, topo.Counterclockwise
		}
		return icw, topo.Clockwise
	case cwOK:
		return evaluate(topo.Clockwise), topo.Clockwise
	default:
		return evaluate(topo.Counterclockwise), topo.Counterclockwise
	}
}

// GreedyComplete drives Greedy until no legal loop remains, returning the
// number of loops added. It is the pure-heuristic baseline (and the
// fallback used when DRL exploration exhausts its penalty budget).
func GreedyComplete(e *Env) int {
	return GreedyImprove(e, -1, 0)
}

// GreedyImprove drives Greedy until the design stops improving: while not
// fully connected every addition helps; once connected, additions continue
// only while they reduce average hops by at least minGain, ending after
// patience consecutive no-gain additions. minGain < 0 disables the early
// stop (run to wiring exhaustion). It returns the number of loops added.
func GreedyImprove(e *Env, minGain float64, patience int) int {
	added := 0
	noGain := 0
	prev := e.AverageHops()
	for {
		a, ok := Greedy(e)
		if !ok {
			return added
		}
		if _, kind := e.Step(a); kind != Valid {
			// Greedy only proposes checked loops; a non-valid outcome
			// indicates an internal inconsistency.
			panic("rl: greedy proposed an unplayable action")
		}
		added++
		if minGain < 0 {
			continue
		}
		h := e.AverageHops()
		if e.FullyConnected() && prev-h < minGain {
			noGain++
		} else {
			noGain = 0
		}
		prev = h
		if patience > 0 && noGain >= patience {
			return added
		}
	}
}

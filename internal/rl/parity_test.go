package rl

import (
	"math/rand"
	"testing"

	"routerless/internal/topo"
)

// bruteLegalActions is the original O(N⁴) enumeration, kept in tests as
// the oracle for the score-table-backed LegalActions.
func bruteLegalActions(e *Env) []Action {
	var out []Action
	for x1 := 0; x1 < e.N-1; x1++ {
		for y1 := 0; y1 < e.N-1; y1++ {
			for x2 := x1 + 1; x2 < e.N; x2++ {
				for y2 := y1 + 1; y2 < e.N; y2++ {
					for _, dir := range []topo.Direction{topo.Clockwise, topo.Counterclockwise} {
						l := topo.MustLoop(x1, y1, x2, y2, dir)
						if e.allowed(l) && e.topo.CheckAdd(l) == nil {
							out = append(out, Action{x1, y1, x2, y2, dir})
						}
					}
				}
			}
		}
	}
	return out
}

// seedRandomDesign plays random (frequently illegal) actions; only the
// valid ones mutate, yielding an arbitrary reachable partial topology.
func seedRandomDesign(e *Env, rng *rand.Rand, steps int) {
	for i := 0; i < steps; i++ {
		a := Action{
			X1: rng.Intn(e.N), Y1: rng.Intn(e.N),
			X2: rng.Intn(e.N), Y2: rng.Intn(e.N),
			Dir: topo.Direction(rng.Intn(2)),
		}
		e.Step(a)
	}
}

// TestGreedySearchMatchesBruteRandomized pins the tentpole parity claim:
// on randomized partial topologies (varying N, cap, MaxLoopLen, seeded
// loop sets) the incremental GreedySearch returns the identical
// GreedyResult — action, pair count, bit-identical gain — to the brute
// rescan, both on the first (all-dirty) scan and across subsequent
// incremental re-scores.
func TestGreedySearchMatchesBruteRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	for trial := 0; trial < 60; trial++ {
		n := 3 + rng.Intn(5) // 3..7
		cap := rng.Intn(2 * n)
		e := NewEnv(n, cap)
		if rng.Intn(3) == 0 {
			e.MaxLoopLen = 6 + 2*rng.Intn(n)
		}
		seedRandomDesign(e, rng, rng.Intn(20))
		for round := 0; round < 5; round++ {
			inc := GreedySearch(e)
			brute := bruteGreedySearch(e)
			if inc != brute {
				t.Fatalf("trial %d round %d (n=%d cap=%d maxlen=%d): incremental %+v != brute %+v",
					trial, round, n, cap, e.MaxLoopLen, inc, brute)
			}
			if !inc.OK {
				break
			}
			if _, kind := e.Step(inc.Action); kind != Valid {
				t.Fatalf("trial %d: greedy action unplayable", trial)
			}
		}
	}
}

// TestLegalActionsMatchBruteRandomized pins LegalActions / HasLegalAction
// against the original enumeration on the same kind of randomized designs.
func TestLegalActionsMatchBruteRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(5)
		e := NewEnv(n, 1+rng.Intn(2*n))
		if rng.Intn(4) == 0 {
			e.MaxLoopLen = 4 + 2*rng.Intn(n)
		}
		seedRandomDesign(e, rng, rng.Intn(16))
		got := e.LegalActions()
		want := bruteLegalActions(e)
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d legal actions, want %d", trial, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: action %d = %v, want %v", trial, i, got[i], want[i])
			}
		}
		if e.HasLegalAction() != (len(want) > 0) {
			t.Fatalf("trial %d: HasLegalAction disagrees with enumeration", trial)
		}
	}
}

// TestGreedyCompleteTraceMatchesBrute drives two environments to wiring
// exhaustion — one through the incremental search, one through the brute
// oracle — and asserts the full added-loop sequences are identical.
func TestGreedyCompleteTraceMatchesBrute(t *testing.T) {
	for _, cfg := range []struct{ n, cap, maxLen int }{
		{4, 6, 0}, {5, 8, 0}, {6, 10, 12},
	} {
		inc := NewEnv(cfg.n, cfg.cap)
		brute := NewEnv(cfg.n, cfg.cap)
		inc.MaxLoopLen = cfg.maxLen
		brute.MaxLoopLen = cfg.maxLen
		var incTrace, bruteTrace []Action
		for {
			r := GreedySearch(inc)
			if !r.OK {
				break
			}
			inc.Step(r.Action)
			incTrace = append(incTrace, r.Action)
		}
		for {
			r := bruteGreedySearch(brute)
			if !r.OK {
				break
			}
			brute.Step(r.Action)
			bruteTrace = append(bruteTrace, r.Action)
		}
		if len(incTrace) != len(bruteTrace) {
			t.Fatalf("n=%d cap=%d: %d loops vs brute %d", cfg.n, cfg.cap, len(incTrace), len(bruteTrace))
		}
		for i := range incTrace {
			if incTrace[i] != bruteTrace[i] {
				t.Fatalf("n=%d cap=%d: loop %d = %v, brute chose %v",
					cfg.n, cfg.cap, i, incTrace[i], bruteTrace[i])
			}
		}
		if inc.Fingerprint() != brute.Fingerprint() {
			t.Fatalf("n=%d cap=%d: completed designs differ", cfg.n, cfg.cap)
		}
	}
}

// TestGreedySearchAfterReset verifies the score cache survives environment
// recycling: a Reset must invalidate everything and reproduce the blank-
// design scan.
func TestGreedySearchAfterReset(t *testing.T) {
	e := NewEnv(4, 6)
	first := GreedySearch(e)
	GreedyComplete(e)
	e.Reset()
	again := GreedySearch(e)
	if first != again {
		t.Fatalf("post-reset scan %+v != fresh scan %+v", again, first)
	}
	fresh := NewEnv(4, 6)
	if got, want := GreedyComplete(e), GreedyComplete(fresh); got != want {
		t.Fatalf("post-reset completion added %d loops, fresh env %d", got, want)
	}
	if e.Fingerprint() != fresh.Fingerprint() {
		t.Fatal("recycled env produced a different design than a fresh env")
	}
}

package rl

import (
	"math/rand"
	"strconv"
	"testing"

	"routerless/internal/nn"
)

// randomTraj plays up to maxSteps uniformly random legal actions and
// packages the episode as a trajectory, the same shape the DRL worker
// feeds Accumulate.
func randomTraj(e *Env, rng *rand.Rand, maxSteps int) Trajectory {
	var traj Trajectory
	e.Reset()
	for len(traj.Steps) < maxSteps {
		acts := e.LegalActions()
		if len(acts) == 0 {
			break
		}
		a := acts[rng.Intn(len(acts))]
		st := e.State()
		r, _ := e.Step(a)
		traj.Steps = append(traj.Steps, StepRecord{State: st, Action: a, Reward: r})
	}
	traj.Final = e.FinalReward()
	return traj
}

// The PR 9 parity gate at the trainer level: the batched trajectory update
// must produce gradients, BatchNorm running statistics, and value MSE
// bit-identical to the retained sequential oracle — across tile sizes that
// exercise single-tile, multi-tile, and partial-final-tile shapes, and
// across repeated trajectories accumulating into live gradient buffers.
func TestA2CBatchedMatchesSequentialByteIdentical(t *testing.T) {
	for _, tile := range []int{2, 5, 16, 64} {
		t.Run("tile"+strconv.Itoa(tile), func(t *testing.T) {
			e := NewEnv(5, 8)
			rng := rand.New(rand.NewSource(int64(97 + tile)))
			seqNet := nn.NewPolicyValueNet(nn.TestConfig(5), 11)
			batNet := nn.NewPolicyValueNet(nn.TestConfig(5), 11)
			seq := DefaultA2C()
			seq.TrainBatch = 0 // sequential oracle
			bat := DefaultA2C()
			bat.TrainBatch = tile
			for round := 0; round < 3; round++ {
				traj := randomTraj(e, rng, 37)
				if len(traj.Steps) < 2 {
					t.Fatalf("round %d: degenerate trajectory (%d steps)", round, len(traj.Steps))
				}
				mseSeq := seq.Accumulate(seqNet, traj)
				mseBat := bat.Accumulate(batNet, traj)
				if mseSeq != mseBat {
					t.Fatalf("round %d: mse diverged: sequential %v, batched %v", round, mseSeq, mseBat)
				}
				gs, gb := seqNet.GetGrads(), batNet.GetGrads()
				for i := range gs {
					if gs[i] != gb[i] {
						t.Fatalf("round %d: grad %d diverged: sequential %v, batched %v", round, i, gs[i], gb[i])
					}
				}
				ss := make([]float64, seqNet.NumStats())
				sb := make([]float64, batNet.NumStats())
				seqNet.CopyStatsInto(ss)
				batNet.CopyStatsInto(sb)
				for i := range ss {
					if ss[i] != sb[i] {
						t.Fatalf("round %d: running stat %d diverged: %v vs %v", round, i, ss[i], sb[i])
					}
				}
				// Step both nets so later rounds run on evolved weights.
				nn.SGD{LR: 1e-3, Clip: 1}.Step(seqNet)
				nn.SGD{LR: 1e-3, Clip: 1}.Step(batNet)
			}
		})
	}
}

// Full training-loop drift check: many episodes of accumulate + SGD on the
// batched path versus the sequential path, same seed, must keep the weight
// vectors bit-equal the whole way. A single ULP of divergence anywhere in
// the batched stack compounds here and fails fast.
func TestA2CBatchedNoSearchDrift(t *testing.T) {
	e := NewEnv(4, 6)
	rng := rand.New(rand.NewSource(131))
	seqNet := nn.NewPolicyValueNet(nn.TestConfig(4), 13)
	batNet := nn.NewPolicyValueNet(nn.TestConfig(4), 13)
	seq := A2C{Gamma: 0.99, ValueCoeff: 0.5}
	bat := DefaultA2C() // TrainBatch = 16
	sgdS := nn.SGD{LR: 5e-3, Clip: 1}
	sgdB := nn.SGD{LR: 5e-3, Clip: 1}
	for ep := 0; ep < 10; ep++ {
		traj := randomTraj(e, rng, 24)
		seqNet.ZeroGrads()
		batNet.ZeroGrads()
		seq.Accumulate(seqNet, traj)
		bat.Accumulate(batNet, traj)
		sgdS.Step(seqNet)
		sgdB.Step(batNet)
		ws, wb := seqNet.GetWeights(), batNet.GetWeights()
		for i := range ws {
			if ws[i] != wb[i] {
				t.Fatalf("episode %d: weight %d drifted: sequential %v, batched %v", ep, i, ws[i], wb[i])
			}
		}
	}
}

// The batched Accumulate keeps the worker's zero-allocation contract: once
// the A2C scratch and the net's batched-training arena are warm, a full
// trajectory update never touches the heap.
func TestA2CBatchedZeroAllocWarm(t *testing.T) {
	e := NewEnv(4, 6)
	rng := rand.New(rand.NewSource(151))
	net := nn.NewPolicyValueNet(nn.TestConfig(4), 17)
	a2c := DefaultA2C()
	traj := randomTraj(e, rng, 20)
	a2c.Accumulate(net, traj) // warm scratch and arena
	allocs := testing.AllocsPerRun(10, func() {
		a2c.Accumulate(net, traj)
	})
	if allocs != 0 {
		t.Fatalf("warmed batched Accumulate allocates %.1f times, want 0", allocs)
	}
	// A shorter trajectory (partial tile) must reuse the same scratch.
	short := randomTraj(e, rng, 7)
	a2c.Accumulate(net, short)
	allocs = testing.AllocsPerRun(10, func() {
		a2c.Accumulate(net, short)
	})
	if allocs != 0 {
		t.Fatalf("warmed batched Accumulate (short trajectory) allocates %.1f times, want 0", allocs)
	}
}

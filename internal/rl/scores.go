package rl

import (
	"routerless/internal/topo"
)

// scoreTable caches one Algorithm 1 evaluation per grid rectangle: the
// legality of each direction, CheckCount, and the best Imprv with its
// direction. A full greedy scan then reduces to an argmax over the cached
// rows.
//
// The cache stays valid through the add's exact perturbation: a
// rectangle's score reads only the dist entries between its own perimeter
// nodes, its nodes' overlap counts relative to the cap, and its own
// membership in the loop set. After AddLoop, therefore:
//
//   - count is adjusted in place: a dist entry going from unconnected to
//     connected decrements CheckCount of exactly the rectangles containing
//     both endpoints (found through the precomputed pair→rectangles
//     index). Integer and order-independent, so the maintained value is
//     exactly what a recount would produce.
//   - imprv is invalidated (impOK cleared) for rectangles containing both
//     endpoints of any improved dist entry, and recomputed lazily — only
//     when the argmax reaches a rectangle whose count ties or beats the
//     running best, mirroring the brute scan's own skip of Imprv for
//     uncompetitive rectangles.
//   - legality is re-checked only for rectangles through a node whose
//     overlap just reached the cap (overlap only grows, so legality flips
//     nowhere else) and for the added rectangle itself, whose duplicate
//     status flipped.
//
// This makes the per-step cost proportional to the perturbed region
// instead of the whole O(N⁴) design space. On grids too large for the
// pair index the marking falls back to fully re-scoring every rectangle
// sharing a node with the added loop — a strict superset, still sound.
//
// Re-scoring runs the same arithmetic in the same order as the brute-force
// scan, so cached results are bit-identical to bruteGreedySearch — the
// parity the property tests pin.
type scoreTable struct {
	tab      *topo.GridTables
	sc       []rectScore
	dirty    []int32
	inDirty  []bool
	allDirty bool
	// Constraint snapshot the scores were computed under; sync invalidates
	// everything when a caller moves either knob between scans.
	maxLoopLen int
	overlapCap int
}

// rectScore is one cached evaluation. cwOK/ccwOK record per-direction
// legality (length constraint, duplication, overlap cap); count is
// CheckCount, maintained incrementally; imprv/dir memoize the winning
// Imprv, valid only while impOK is set.
type rectScore struct {
	imprv float64
	count int32
	dir   topo.Direction
	cwOK  bool
	ccwOK bool
	impOK bool
}

// scores returns the environment's score table, fully synchronized with
// the current topology; it is built (all-dirty) on first use.
func (e *Env) scoresSynced() *scoreTable {
	s := e.scores
	if s == nil {
		tab := e.topo.Tables()
		s = &scoreTable{
			tab:        tab,
			sc:         make([]rectScore, tab.NumRects()),
			inDirty:    make([]bool, tab.NumRects()),
			allDirty:   true,
			maxLoopLen: e.MaxLoopLen,
			overlapCap: e.topo.OverlapCap(),
		}
		e.scores = s
	}
	if s.maxLoopLen != e.MaxLoopLen || s.overlapCap != e.topo.OverlapCap() {
		s.maxLoopLen = e.MaxLoopLen
		s.overlapCap = e.topo.OverlapCap()
		s.allDirty = true
	}
	s.sync(e)
	return s
}

// sync re-establishes every eager invariant (legality and count); imprv
// stays lazy behind impOK.
func (s *scoreTable) sync(e *Env) {
	if s.allDirty {
		for ri := range s.sc {
			s.rescore(e, int32(ri))
		}
		for i := range s.inDirty {
			s.inDirty[i] = false
		}
		s.dirty = s.dirty[:0]
		s.allDirty = false
		return
	}
	legalityOnly := s.tab.HasPairIndex()
	for _, ri := range s.dirty {
		if legalityOnly {
			s.rescoreLegality(e, ri)
		} else {
			s.rescore(e, ri)
		}
		s.inDirty[ri] = false
	}
	s.dirty = s.dirty[:0]
}

// noteAdded applies the new loop's exact perturbation to the cache,
// reading the changed dist entries and saturated nodes off the topology
// (see the type comment for why this set is complete).
func (s *scoreTable) noteAdded(t *topo.Topology, l topo.Loop) {
	if s.allDirty {
		return
	}
	if !s.tab.HasPairIndex() {
		// Coarse superset fallback for grids without the pair index:
		// fully re-score everything sharing a node with the loop.
		for _, id := range s.tab.NodesOf(l) {
			for _, ri := range s.tab.RectsAt(int(id)) {
				s.mark(ri)
			}
		}
		return
	}
	for _, pk := range t.LastAddChangedPairs() {
		for _, ri := range s.tab.RectsAtPair(pk) {
			s.sc[ri].impOK = false
		}
	}
	for _, pk := range t.LastAddNewPairs() {
		for _, ri := range s.tab.RectsAtPair(pk) {
			s.sc[ri].count--
		}
	}
	for _, id := range t.LastAddSaturatedNodes() {
		for _, ri := range s.tab.RectsAt(int(id)) {
			s.mark(ri)
		}
	}
	if ri := s.tab.RectIndex(l); ri >= 0 {
		s.mark(int32(ri))
	}
}

func (s *scoreTable) mark(ri int32) {
	if !s.inDirty[ri] {
		s.inDirty[ri] = true
		s.dirty = append(s.dirty, ri)
	}
}

// markAllDirty invalidates the whole table (topology reset or replaced).
func (s *scoreTable) markAllDirty() {
	s.allDirty = true
	for i := range s.inDirty {
		s.inDirty[i] = false
	}
	s.dirty = s.dirty[:0]
}

// rescore recomputes one rectangle's legality and count from scratch and
// invalidates its memoized imprv. Together with ensureImprv this mirrors
// the brute-force scan's per-rectangle logic (and arithmetic order)
// exactly.
func (s *scoreTable) rescore(e *Env, ri int32) {
	r := &s.tab.Rects()[ri]
	sc := &s.sc[ri]
	*sc = rectScore{}
	cw := r.Loop(topo.Clockwise)
	if !e.allowed(cw) {
		return
	}
	cwOK := e.topo.CheckAdd(cw) == nil
	ccwOK := e.topo.CheckAdd(r.Loop(topo.Counterclockwise)) == nil
	if !cwOK && !ccwOK {
		return
	}
	sc.cwOK, sc.ccwOK = cwOK, ccwOK
	ids := r.Nodes
	n := e.topo.N()
	dist := e.topo.DistData()
	count := 0
	for i, u := range ids {
		row := int(u) * n
		for j, v := range ids {
			if i == j {
				continue
			}
			if dist[row+int(v)] < 0 {
				count++
			}
		}
	}
	sc.count = int32(count)
}

// rescoreLegality refreshes only the legality flags; the maintained count
// stays valid, and the memoized imprv survives unless a flag flipped —
// imprv's stored value depends on which directions were evaluated, so a
// flip forces a lazy recompute. Used on the precise-dirty path, where a
// rectangle lands in the dirty set only because a node saturated or its
// duplicate status flipped.
func (s *scoreTable) rescoreLegality(e *Env, ri int32) {
	r := &s.tab.Rects()[ri]
	sc := &s.sc[ri]
	cw := r.Loop(topo.Clockwise)
	cwOK, ccwOK := false, false
	if e.allowed(cw) {
		cwOK = e.topo.CheckAdd(cw) == nil
		ccwOK = e.topo.CheckAdd(r.Loop(topo.Counterclockwise)) == nil
	}
	if cwOK != sc.cwOK || ccwOK != sc.ccwOK {
		sc.impOK = false
	}
	sc.cwOK, sc.ccwOK = cwOK, ccwOK
}

// ensureImprv fills in the rectangle's memoized Imprv on demand. One fused
// pass over the perimeter pairs computes both directions' sums: hop
// distances along the candidate loop come from index gaps in the
// precomputed clockwise ID list (the counterclockwise gap is the
// complement); current distances come from the raw incremental cache. Each
// accumulator sees the same pair order and summation order as the
// brute-force scan, keeping results bit-identical.
func (s *scoreTable) ensureImprv(e *Env, ri int32) {
	sc := &s.sc[ri]
	if sc.impOK {
		return
	}
	ids := s.tab.Rects()[ri].Nodes
	ll := len(ids)
	n := e.topo.N()
	dist := e.topo.DistData()
	sentinel := topo.UnconnectedHops(e.topo.Rows(), e.topo.Cols())
	icw, iccw := 0.0, 0.0
	for i, u := range ids {
		row := int(u) * n
		for j, v := range ids {
			if i == j {
				continue
			}
			cd := int(dist[row+int(v)])
			cur := float64(cd)
			if cd < 0 {
				cur = sentinel
			}
			d := j - i
			if d < 0 {
				d += ll
			}
			if nd := float64(d); nd < cur {
				icw += cur - nd
			}
			if nd := float64(ll - d); nd < cur {
				iccw += cur - nd
			}
		}
	}
	switch {
	case sc.cwOK && sc.ccwOK:
		if iccw > icw {
			sc.imprv, sc.dir = iccw, topo.Counterclockwise
		} else {
			sc.imprv, sc.dir = icw, topo.Clockwise
		}
	case sc.cwOK:
		sc.imprv, sc.dir = icw, topo.Clockwise
	default:
		sc.imprv, sc.dir = iccw, topo.Counterclockwise
	}
	sc.impOK = true
}

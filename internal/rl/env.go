// Package rl defines the reinforcement-learning formulation of routerless
// NoC design from §4.2–§4.4 of the paper: states are hop-count matrices,
// actions add rectangular loops, rewards penalize repetitive, invalid and
// illegal additions, and the final return compares the finished design's
// average hop count against mesh. It also provides the advantage
// actor-critic gradient computation (Eqs. 15–20) and the greedy loop
// search of Algorithm 1.
package rl

import (
	"fmt"

	"routerless/internal/mesh"
	"routerless/internal/topo"
)

// Action encodes a loop addition (x1, y1, x2, y2, dir) per §4.2. x selects
// a row and y a column; Dir = 1 (clockwise) or 0 (counterclockwise),
// matching the paper's action tuple.
type Action struct {
	X1, Y1, X2, Y2 int
	Dir            topo.Direction
}

// Loop converts the action to a normalized loop. The boolean is false when
// the rectangle is degenerate (an invalid action).
func (a Action) Loop() (topo.Loop, bool) {
	l, err := topo.NewLoop(a.X1, a.Y1, a.X2, a.Y2, a.Dir)
	if err != nil {
		return topo.Loop{}, false
	}
	return l, true
}

// String renders the tuple.
func (a Action) String() string {
	return fmt.Sprintf("(%d,%d,%d,%d,%s)", a.X1, a.Y1, a.X2, a.Y2, a.Dir)
}

// ActionLess is the canonical lexicographic order on actions — coordinates
// first, then direction (clockwise before counterclockwise). LegalActions
// enumerates in exactly this order, and deterministic consumers (MCTS
// tie-breaking, prior sampling) rely on it.
func ActionLess(a, b Action) bool {
	if a.X1 != b.X1 {
		return a.X1 < b.X1
	}
	if a.Y1 != b.Y1 {
		return a.Y1 < b.Y1
	}
	if a.X2 != b.X2 {
		return a.X2 < b.X2
	}
	if a.Y2 != b.Y2 {
		return a.Y2 < b.Y2
	}
	return a.Dir < b.Dir
}

// ActionKind classifies the outcome of Env.Step per §4.3.
type ActionKind int

// Step outcomes.
const (
	Valid      ActionKind = iota // loop added, reward 0
	Repetitive                   // duplicate loop, reward -1
	Invalid                      // non-rectangular loop, reward -1
	Illegal                      // node-overlap violation, reward -5N
)

// String names the outcome.
func (k ActionKind) String() string {
	switch k {
	case Valid:
		return "valid"
	case Repetitive:
		return "repetitive"
	case Invalid:
		return "invalid"
	case Illegal:
		return "illegal"
	}
	return "unknown"
}

// Env is the routerless NoC design environment.
type Env struct {
	N          int
	OverlapCap int
	// IllegalPenalty is the reward for overlap-violating actions
	// (default −5N per §4.3). The reward-shaping ablation weakens it.
	IllegalPenalty float64
	// MaxLoopLen, when > 0, forbids loops whose perimeter exceeds it —
	// one of the additional constraints §6.2 proposes integrating into
	// the framework ("such as maximum loop length"). Violations are
	// illegal actions.
	MaxLoopLen int

	topo     *topo.Topology
	meshHops float64
	// scores is the lazily built per-rectangle greedy score cache (see
	// scores.go); Step keeps it consistent through the dirty set.
	scores *scoreTable
	// legalBuf backs LegalActions so steady-state enumeration is
	// allocation-free.
	legalBuf []Action
}

// NewEnv creates a blank N×N design environment under the given node
// overlapping cap (0 = unconstrained).
func NewEnv(n, overlapCap int) *Env {
	e := &Env{
		N: n, OverlapCap: overlapCap,
		IllegalPenalty: -5 * float64(n),
		meshHops:       mesh.AverageHops(n, n),
	}
	e.Reset()
	return e
}

// NewEnvFrom builds an environment seeded with an existing design (e.g. a
// constructive baseline that further exploration should improve). The
// topology is cloned; the cap applies to future additions only.
func NewEnvFrom(t *topo.Topology, overlapCap int) *Env {
	if t.Rows() != t.Cols() {
		panic("rl: NewEnvFrom requires a square topology")
	}
	e := NewEnv(t.Rows(), overlapCap)
	e.topo = t.Clone()
	e.topo.SetOverlapCap(overlapCap)
	e.scores = nil
	return e
}

// Reset clears the design back to a fully disconnected NoC. The topology
// and score-cache buffers are reused, so a recycled environment runs its
// next episode without fresh heap allocation.
func (e *Env) Reset() {
	if e.topo == nil {
		e.topo = topo.NewSquare(e.N, e.OverlapCap)
	} else {
		e.topo.Reset()
		e.topo.SetOverlapCap(e.OverlapCap)
	}
	if e.scores != nil {
		e.scores.markAllDirty()
	}
}

// Topology exposes the design under construction (callers must not
// mutate it directly).
func (e *Env) Topology() *topo.Topology { return e.topo }

// Clone deep-copies the environment. The greedy score cache is not
// carried over; the clone rebuilds it lazily on first search.
func (e *Env) Clone() *Env {
	return &Env{
		N: e.N, OverlapCap: e.OverlapCap,
		IllegalPenalty: e.IllegalPenalty,
		MaxLoopLen:     e.MaxLoopLen,
		topo:           e.topo.Clone(), meshHops: e.meshHops,
	}
}

// State returns the hop-count matrix encoding (§4.2).
func (e *Env) State() []float64 { return e.topo.HopMatrix() }

// StateInto writes the hop-count matrix encoding into dst, reallocating
// only when dst lacks capacity, and returns the destination slice. Reusing
// one buffer per decision point keeps the episode hot path allocation-free.
func (e *Env) StateInto(dst []float64) []float64 { return e.topo.HopMatrixInto(dst) }

// Fingerprint keys the current design for MCTS node lookup.
func (e *Env) Fingerprint() string { return e.topo.Fingerprint() }

// MeshHops returns the reward reference: the mesh average hop count.
func (e *Env) MeshHops() float64 { return e.meshHops }

// allowed reports whether l obeys the environment's extra constraints
// beyond what the topology enforces (currently MaxLoopLen).
func (e *Env) allowed(l topo.Loop) bool {
	return e.MaxLoopLen <= 0 || l.Len() <= e.MaxLoopLen
}

// Legal reports whether the action would be a Valid step right now.
func (e *Env) Legal(a Action) bool {
	l, ok := a.Loop()
	return ok && e.allowed(l) && e.topo.CheckAdd(l) == nil
}

// Step applies an action and returns the immediate reward and its
// classification. Only Valid actions mutate the design.
func (e *Env) Step(a Action) (reward float64, kind ActionKind) {
	l, ok := a.Loop()
	if !ok {
		return -1, Invalid
	}
	if !e.allowed(l) {
		return e.IllegalPenalty, Illegal
	}
	switch err := e.topo.AddLoop(l); err {
	case nil:
		if e.scores != nil {
			e.scores.noteAdded(e.topo, l)
		}
		return 0, Valid
	case topo.ErrRepetitive:
		return -1, Repetitive
	case topo.ErrIllegal:
		return e.IllegalPenalty, Illegal
	default: // out of bounds is an invalid rectangle specification
		return -1, Invalid
	}
}

// LegalActions enumerates every loop addition currently allowed. Both
// directions of each placeable rectangle are included; rectangles already
// present in one direction remain legal in the other. The enumeration
// reads the cached per-rectangle legality, and the returned slice is an
// internal buffer reused (and overwritten) by the next call — copy it to
// retain across steps.
func (e *Env) LegalActions() []Action {
	s := e.scoresSynced()
	rects := s.tab.Rects()
	out := e.legalBuf[:0]
	for ri := range s.sc {
		sc := &s.sc[ri]
		if !sc.cwOK && !sc.ccwOK {
			continue
		}
		r := &rects[ri]
		if sc.cwOK {
			out = append(out, Action{r.R1, r.C1, r.R2, r.C2, topo.Clockwise})
		}
		if sc.ccwOK {
			out = append(out, Action{r.R1, r.C1, r.R2, r.C2, topo.Counterclockwise})
		}
	}
	e.legalBuf = out
	return out
}

// HasLegalAction reports whether any loop can still be added. It is the
// episode-termination predicate: "loops are added until no more can be
// added without violating constraints".
func (e *Env) HasLegalAction() bool {
	s := e.scoresSynced()
	for ri := range s.sc {
		if s.sc[ri].cwOK || s.sc[ri].ccwOK {
			return true
		}
	}
	return false
}

// AverageHops returns the design's average hop count with unconnected
// pairs charged the 5N sentinel, so connectivity gaps dominate the metric
// exactly as they dominate the state encoding.
func (e *Env) AverageHops() float64 {
	mean, un := e.topo.AverageHops()
	n := e.topo.N()
	pairs := n * (n - 1)
	if pairs == 0 {
		return 0
	}
	connected := pairs - un
	total := mean*float64(connected) + topo.UnconnectedHops(e.N, e.N)*float64(un)
	return total / float64(pairs)
}

// FinalReward is the episode-final return (§4.3): mesh average hop count
// minus the design's average hop count. Maximizing it minimizes hop count;
// a fully connected design near mesh performance approaches zero.
func (e *Env) FinalReward() float64 {
	return e.meshHops - e.AverageHops()
}

// FullyConnected reports whether the current design is complete.
func (e *Env) FullyConnected() bool { return e.topo.FullyConnected() }

// Package rl defines the reinforcement-learning formulation of routerless
// NoC design from §4.2–§4.4 of the paper: states are hop-count matrices,
// actions add rectangular loops, rewards penalize repetitive, invalid and
// illegal additions, and the final return compares the finished design's
// average hop count against mesh. It also provides the advantage
// actor-critic gradient computation (Eqs. 15–20) and the greedy loop
// search of Algorithm 1.
package rl

import (
	"fmt"

	"routerless/internal/mesh"
	"routerless/internal/topo"
)

// Action encodes a loop addition (x1, y1, x2, y2, dir) per §4.2. x selects
// a row and y a column; Dir = 1 (clockwise) or 0 (counterclockwise),
// matching the paper's action tuple.
type Action struct {
	X1, Y1, X2, Y2 int
	Dir            topo.Direction
}

// Loop converts the action to a normalized loop. The boolean is false when
// the rectangle is degenerate (an invalid action).
func (a Action) Loop() (topo.Loop, bool) {
	l, err := topo.NewLoop(a.X1, a.Y1, a.X2, a.Y2, a.Dir)
	if err != nil {
		return topo.Loop{}, false
	}
	return l, true
}

// String renders the tuple.
func (a Action) String() string {
	return fmt.Sprintf("(%d,%d,%d,%d,%s)", a.X1, a.Y1, a.X2, a.Y2, a.Dir)
}

// ActionKind classifies the outcome of Env.Step per §4.3.
type ActionKind int

// Step outcomes.
const (
	Valid      ActionKind = iota // loop added, reward 0
	Repetitive                   // duplicate loop, reward -1
	Invalid                      // non-rectangular loop, reward -1
	Illegal                      // node-overlap violation, reward -5N
)

// String names the outcome.
func (k ActionKind) String() string {
	switch k {
	case Valid:
		return "valid"
	case Repetitive:
		return "repetitive"
	case Invalid:
		return "invalid"
	case Illegal:
		return "illegal"
	}
	return "unknown"
}

// Env is the routerless NoC design environment.
type Env struct {
	N          int
	OverlapCap int
	// IllegalPenalty is the reward for overlap-violating actions
	// (default −5N per §4.3). The reward-shaping ablation weakens it.
	IllegalPenalty float64
	// MaxLoopLen, when > 0, forbids loops whose perimeter exceeds it —
	// one of the additional constraints §6.2 proposes integrating into
	// the framework ("such as maximum loop length"). Violations are
	// illegal actions.
	MaxLoopLen int

	topo     *topo.Topology
	meshHops float64
}

// NewEnv creates a blank N×N design environment under the given node
// overlapping cap (0 = unconstrained).
func NewEnv(n, overlapCap int) *Env {
	e := &Env{
		N: n, OverlapCap: overlapCap,
		IllegalPenalty: -5 * float64(n),
		meshHops:       mesh.AverageHops(n, n),
	}
	e.Reset()
	return e
}

// NewEnvFrom builds an environment seeded with an existing design (e.g. a
// constructive baseline that further exploration should improve). The
// topology is cloned; the cap applies to future additions only.
func NewEnvFrom(t *topo.Topology, overlapCap int) *Env {
	if t.Rows() != t.Cols() {
		panic("rl: NewEnvFrom requires a square topology")
	}
	e := NewEnv(t.Rows(), overlapCap)
	e.topo = t.Clone()
	e.topo.SetOverlapCap(overlapCap)
	return e
}

// Reset clears the design back to a fully disconnected NoC.
func (e *Env) Reset() {
	e.topo = topo.NewSquare(e.N, e.OverlapCap)
}

// Topology exposes the design under construction (callers must not
// mutate it directly).
func (e *Env) Topology() *topo.Topology { return e.topo }

// Clone deep-copies the environment.
func (e *Env) Clone() *Env {
	return &Env{
		N: e.N, OverlapCap: e.OverlapCap,
		IllegalPenalty: e.IllegalPenalty,
		topo:           e.topo.Clone(), meshHops: e.meshHops,
	}
}

// State returns the hop-count matrix encoding (§4.2).
func (e *Env) State() []float64 { return e.topo.HopMatrix() }

// Fingerprint keys the current design for MCTS node lookup.
func (e *Env) Fingerprint() string { return e.topo.Fingerprint() }

// MeshHops returns the reward reference: the mesh average hop count.
func (e *Env) MeshHops() float64 { return e.meshHops }

// allowed reports whether l obeys the environment's extra constraints
// beyond what the topology enforces (currently MaxLoopLen).
func (e *Env) allowed(l topo.Loop) bool {
	return e.MaxLoopLen <= 0 || l.Len() <= e.MaxLoopLen
}

// Legal reports whether the action would be a Valid step right now.
func (e *Env) Legal(a Action) bool {
	l, ok := a.Loop()
	return ok && e.allowed(l) && e.topo.CheckAdd(l) == nil
}

// Step applies an action and returns the immediate reward and its
// classification. Only Valid actions mutate the design.
func (e *Env) Step(a Action) (reward float64, kind ActionKind) {
	l, ok := a.Loop()
	if !ok {
		return -1, Invalid
	}
	if !e.allowed(l) {
		return e.IllegalPenalty, Illegal
	}
	switch err := e.topo.AddLoop(l); err {
	case nil:
		return 0, Valid
	case topo.ErrRepetitive:
		return -1, Repetitive
	case topo.ErrIllegal:
		return e.IllegalPenalty, Illegal
	default: // out of bounds is an invalid rectangle specification
		return -1, Invalid
	}
}

// LegalActions enumerates every loop addition currently allowed. Both
// directions of each placeable rectangle are included; rectangles already
// present in one direction remain legal in the other.
func (e *Env) LegalActions() []Action {
	var out []Action
	for x1 := 0; x1 < e.N-1; x1++ {
		for y1 := 0; y1 < e.N-1; y1++ {
			for x2 := x1 + 1; x2 < e.N; x2++ {
				for y2 := y1 + 1; y2 < e.N; y2++ {
					for _, dir := range []topo.Direction{topo.Clockwise, topo.Counterclockwise} {
						l := topo.MustLoop(x1, y1, x2, y2, dir)
						if e.allowed(l) && e.topo.CheckAdd(l) == nil {
							out = append(out, Action{x1, y1, x2, y2, dir})
						}
					}
				}
			}
		}
	}
	return out
}

// HasLegalAction reports whether any loop can still be added. It is the
// episode-termination predicate: "loops are added until no more can be
// added without violating constraints".
func (e *Env) HasLegalAction() bool {
	for x1 := 0; x1 < e.N-1; x1++ {
		for y1 := 0; y1 < e.N-1; y1++ {
			for x2 := x1 + 1; x2 < e.N; x2++ {
				for y2 := y1 + 1; y2 < e.N; y2++ {
					for _, dir := range []topo.Direction{topo.Clockwise, topo.Counterclockwise} {
						l := topo.MustLoop(x1, y1, x2, y2, dir)
						if e.allowed(l) && e.topo.CheckAdd(l) == nil {
							return true
						}
					}
				}
			}
		}
	}
	return false
}

// AverageHops returns the design's average hop count with unconnected
// pairs charged the 5N sentinel, so connectivity gaps dominate the metric
// exactly as they dominate the state encoding.
func (e *Env) AverageHops() float64 {
	mean, un := e.topo.AverageHops()
	n := e.topo.N()
	pairs := n * (n - 1)
	if pairs == 0 {
		return 0
	}
	connected := pairs - un
	total := mean*float64(connected) + topo.UnconnectedHops(e.N, e.N)*float64(un)
	return total / float64(pairs)
}

// FinalReward is the episode-final return (§4.3): mesh average hop count
// minus the design's average hop count. Maximizing it minimizes hop count;
// a fully connected design near mesh performance approaches zero.
func (e *Env) FinalReward() float64 {
	return e.meshHops - e.AverageHops()
}

// FullyConnected reports whether the current design is complete.
func (e *Env) FullyConnected() bool { return e.topo.FullyConnected() }

package rl

import (
	"testing"

	"routerless/internal/topo"
)

func TestMaxLoopLenRejectsLongLoops(t *testing.T) {
	e := NewEnv(4, 6)
	e.MaxLoopLen = 8
	// The full perimeter has length 12 > 8: illegal.
	r, kind := e.Step(Action{0, 0, 3, 3, topo.Clockwise})
	if kind != Illegal || r != e.IllegalPenalty {
		t.Fatalf("long loop: r=%v kind=%v", r, kind)
	}
	// A 2x3 rectangle has perimeter 6 <= 8: fine.
	if _, kind := e.Step(Action{0, 0, 1, 2, topo.Clockwise}); kind != Valid {
		t.Fatalf("short loop rejected: %v", kind)
	}
}

func TestMaxLoopLenFiltersLegalActions(t *testing.T) {
	e := NewEnv(4, 0)
	all := len(e.LegalActions())
	e.MaxLoopLen = 8
	filtered := len(e.LegalActions())
	if filtered >= all {
		t.Fatalf("constraint did not shrink action space: %d -> %d", all, filtered)
	}
	for _, a := range e.LegalActions() {
		l, _ := a.Loop()
		if l.Len() > 8 {
			t.Fatalf("legal action %v has length %d", a, l.Len())
		}
	}
	if !e.HasLegalAction() {
		t.Fatal("short loops should remain")
	}
}

func TestMaxLoopLenGreedyRespects(t *testing.T) {
	e := NewEnv(6, 10)
	e.MaxLoopLen = 12
	added := GreedyComplete(e)
	if added == 0 {
		t.Fatal("greedy added nothing under length constraint")
	}
	for _, l := range e.Topology().Loops() {
		if l.Len() > 12 {
			t.Fatalf("greedy placed loop of length %d", l.Len())
		}
	}
	// With loops capped at 12 on a 6x6, full connectivity needs corner-to-
	// corner pairs to share a loop of perimeter >= 2*(5+5) = 20 — it is
	// impossible; the design must remain partially connected.
	if e.FullyConnected() {
		t.Fatal("6x6 cannot be fully connected with loops of length <= 12")
	}
}

func TestLegalChecksConstraints(t *testing.T) {
	e := NewEnv(4, 6)
	e.MaxLoopLen = 8
	if e.Legal(Action{0, 0, 3, 3, topo.Clockwise}) {
		t.Fatal("Legal accepted an over-length loop")
	}
	if !e.Legal(Action{0, 0, 1, 1, topo.Clockwise}) {
		t.Fatal("Legal rejected a valid loop")
	}
	if e.Legal(Action{0, 0, 0, 3, topo.Clockwise}) {
		t.Fatal("Legal accepted a degenerate rectangle")
	}
}

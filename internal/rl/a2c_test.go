package rl

import (
	"math"
	"testing"

	"routerless/internal/nn"
	"routerless/internal/topo"
)

func smallTraj(e *Env) Trajectory {
	var traj Trajectory
	actions := []Action{
		{0, 0, 3, 3, topo.Clockwise},
		{0, 0, 3, 3, topo.Clockwise}, // repetitive, reward -1
		{0, 0, 1, 1, topo.Counterclockwise},
	}
	for _, a := range actions {
		st := e.State()
		r, _ := e.Step(a)
		traj.Steps = append(traj.Steps, StepRecord{State: st, Action: a, Reward: r})
	}
	traj.Final = e.FinalReward()
	return traj
}

func TestA2CAccumulatesGradients(t *testing.T) {
	e := NewEnv(4, 6)
	traj := smallTraj(e)
	net := nn.NewPolicyValueNet(nn.TestConfig(4), 3)
	net.ZeroGrads()
	a2c := DefaultA2C()
	mse := a2c.Accumulate(net, traj)
	if mse <= 0 {
		t.Fatalf("mse = %v, want > 0 for an untrained net", mse)
	}
	nonzero := 0
	for _, g := range net.GetGrads() {
		if g != 0 {
			nonzero++
		}
	}
	if nonzero == 0 {
		t.Fatal("no gradients accumulated")
	}
}

func TestA2CEmptyTrajectory(t *testing.T) {
	net := nn.NewPolicyValueNet(nn.TestConfig(4), 3)
	a2c := DefaultA2C()
	if got := a2c.Accumulate(net, Trajectory{}); got != 0 {
		t.Fatalf("empty trajectory mse = %v", got)
	}
}

// Training on the same trajectory repeatedly must reduce the value error:
// the critic learns the returns.
func TestA2CValueLearning(t *testing.T) {
	e := NewEnv(4, 6)
	traj := smallTraj(e)
	net := nn.NewPolicyValueNet(nn.TestConfig(4), 5)
	a2c := DefaultA2C()
	sgd := nn.SGD{LR: 5e-3, Clip: 1}
	first := -1.0
	var last float64
	for i := 0; i < 40; i++ {
		net.ZeroGrads()
		last = a2c.Accumulate(net, traj)
		if first < 0 {
			first = last
		}
		sgd.Step(net)
	}
	if last >= first {
		t.Fatalf("value MSE did not decrease: %v -> %v", first, last)
	}
}

// The advantage sign must steer the policy: positive advantage increases
// the chosen action's probability.
func TestA2CPolicyDirection(t *testing.T) {
	e := NewEnv(4, 6)
	st := e.State()
	act := Action{1, 1, 2, 2, topo.Clockwise}
	net := nn.NewPolicyValueNet(nn.TestConfig(4), 7)
	prob := func() float64 {
		o := net.Forward(st, false)
		return o.CoordProbs[0][act.X1] * o.CoordProbs[1][act.Y1] *
			o.CoordProbs[2][act.X2] * o.CoordProbs[3][act.Y2] * (1 + o.Dir) / 2
	}
	before := prob()
	// A trajectory with a large positive final reward for this action.
	traj := Trajectory{
		Steps: []StepRecord{{State: st, Action: act, Reward: 0}},
		Final: 50, // >> value estimate -> positive advantage
	}
	a2c := DefaultA2C()
	sgd := nn.SGD{LR: 2e-3, Clip: 1}
	for i := 0; i < 30; i++ {
		net.ZeroGrads()
		a2c.Accumulate(net, traj)
		sgd.Step(net)
	}
	after := prob()
	if after <= before {
		t.Fatalf("positive advantage decreased action probability: %v -> %v", before, after)
	}
}

func TestA2CDiscounting(t *testing.T) {
	// With gamma = 0 only the immediate reward matters; the value target
	// for the last step is r + 0*Final = r.
	e := NewEnv(4, 6)
	traj := smallTraj(e)
	net := nn.NewPolicyValueNet(nn.TestConfig(4), 9)
	a := A2C{Gamma: 0, ValueCoeff: 0.5}
	sgd := nn.SGD{LR: 5e-3, Clip: 1}
	for i := 0; i < 80; i++ {
		net.ZeroGrads()
		a.Accumulate(net, traj)
		sgd.Step(net)
	}
	// After training, V(s_last) should approach r_last + 0 = -1? The last
	// step was valid (reward 0)... verify against computed target.
	want := traj.Steps[len(traj.Steps)-1].Reward
	got := net.Forward(traj.Steps[len(traj.Steps)-1].State, false).Value
	if math.Abs(got-want) > 1.0 {
		t.Fatalf("gamma=0 value = %v, want near %v", got, want)
	}
}

package sim

import (
	"fmt"

	"routerless/internal/topo"
)

// FailLoop marks a loop as failed: a broken link anywhere on a
// unidirectional ring disables the whole ring, so routing is rebuilt to
// avoid it (§6.7's reliability discussion). Flits circulating on the
// failed loop are dropped (counted in DroppedFlits) and their packets can
// never complete; queued packets are re-routed onto surviving loops when
// possible and dropped otherwise. Whether the degraded network remains
// fully connected can be checked via Degraded().
func (r *Ring) FailLoop(idx int) {
	if idx < 0 || idx >= len(r.loops) {
		panic(fmt.Sprintf("sim: FailLoop index %d out of range", idx))
	}
	if r.failed == nil {
		r.failed = make([]bool, len(r.loops))
	}
	if r.failed[idx] {
		return
	}
	r.failed[idx] = true
	// Invalidate the sparse-stepping active sets: occupancy counters and
	// the live-slot total change under this function's feet, so the next
	// sparse Step rebuilds them from ground truth (O(topology), once per
	// failure).
	r.dirtyEpoch++

	// Drop in-flight flits on the failed loop; their packets are lost.
	ls := r.loops[idx]
	for i, f := range ls.slot {
		if f == nil {
			continue
		}
		r.droppedFlits++
		if f.pkt.remaining > 0 {
			r.inFlight--
			f.pkt.remaining = -1 // failed marker; Done stays -1
		}
		ls.slot[i] = nil
		r.flits.put(f)
	}

	// Rebuild routing around the failure and refresh the injection cache.
	r.rt = topo.BuildRoutingTableExcluding(r.topo, r.failed)
	r.cacheRoutes()

	// Re-route or drop packets still queued at source NIs. Cycling each
	// queue through exactly its current length preserves FIFO order.
	for n := range r.srcQueue {
		q := &r.srcQueue[n]
		for cnt := q.len(); cnt > 0; cnt-- {
			inj := q.pop()
			if !r.failed[inj.loopIdx] {
				q.push(inj)
				continue
			}
			if inj.sent > 0 || inj.pkt.remaining <= 0 {
				// Partially on the failed loop: lost.
				r.droppedFlits += int64(inj.pkt.NumFlits - inj.sent)
				if inj.pkt.remaining > 0 {
					r.inFlight--
					inj.pkt.remaining = -1
				}
				r.injs.put(inj)
				continue
			}
			li := int(r.routeLoop[inj.pkt.Src*r.topo.N()+inj.pkt.Dst])
			if li < 0 {
				r.droppedFlits += int64(inj.pkt.NumFlits)
				r.inFlight--
				inj.pkt.remaining = -1
				r.injs.put(inj)
				continue
			}
			inj.loopIdx = li
			inj.distance = int(r.routeDist[inj.pkt.Src*r.topo.N()+inj.pkt.Dst])
			q.push(inj)
		}
	}
}

// Degraded returns the routing table currently in effect (reflecting any
// failed loops).
func (r *Ring) Degraded() *topo.RoutingTable { return r.rt }

// DroppedFlits returns the number of flits lost to loop failures.
func (r *Ring) DroppedFlits() int64 { return r.droppedFlits }

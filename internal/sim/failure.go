package sim

import (
	"fmt"

	"routerless/internal/topo"
)

// FailLoop marks a loop as failed: a broken link anywhere on a
// unidirectional ring disables the whole ring, so routing is rebuilt to
// avoid it (§6.7's reliability discussion). Flits circulating on the
// failed loop are dropped (counted in DroppedFlits) and their packets can
// never complete; queued packets are re-routed onto surviving loops when
// possible and dropped otherwise. Whether the degraded network remains
// fully connected can be checked via Degraded().
func (r *Ring) FailLoop(idx int) {
	if idx < 0 || idx >= len(r.loops) {
		panic(fmt.Sprintf("sim: FailLoop index %d out of range", idx))
	}
	if r.failed == nil {
		r.failed = make(map[int]bool)
	}
	if r.failed[idx] {
		return
	}
	r.failed[idx] = true

	// Drop in-flight flits on the failed loop; their packets are lost.
	ls := r.loops[idx]
	for i, f := range ls.slot {
		if f == nil {
			continue
		}
		r.droppedFlits++
		if f.pkt.remaining > 0 {
			r.inFlight--
			f.pkt.remaining = -1 // failed marker; Done stays -1
		}
		ls.slot[i] = nil
	}

	// Rebuild routing around the failure.
	r.rt = topo.BuildRoutingTableExcluding(r.topo, r.failed)

	// Re-route or drop packets still queued at source NIs.
	for n := range r.srcQueue {
		var keep []*injecting
		for _, inj := range r.srcQueue[n] {
			if !r.failed[inj.loopIdx] {
				keep = append(keep, inj)
				continue
			}
			if inj.sent > 0 || inj.pkt.remaining <= 0 {
				// Partially on the failed loop: lost.
				r.droppedFlits += int64(inj.pkt.NumFlits - inj.sent)
				if inj.pkt.remaining > 0 {
					r.inFlight--
					inj.pkt.remaining = -1
				}
				continue
			}
			src := topo.NodeFromID(inj.pkt.Src, r.topo.Cols())
			dst := topo.NodeFromID(inj.pkt.Dst, r.topo.Cols())
			li := r.rt.Loop(src, dst)
			if li < 0 {
				r.droppedFlits += int64(inj.pkt.NumFlits)
				r.inFlight--
				inj.pkt.remaining = -1
				continue
			}
			inj.loopIdx = li
			inj.distance = r.rt.Dist(src, dst)
			keep = append(keep, inj)
		}
		r.srcQueue[n] = keep
	}
}

// Degraded returns the routing table currently in effect (reflecting any
// failed loops).
func (r *Ring) Degraded() *topo.RoutingTable { return r.rt }

// DroppedFlits returns the number of flits lost to loop failures.
func (r *Ring) DroppedFlits() int64 { return r.droppedFlits }

package sim

// Zero-allocation building blocks for the simulator hot path. The steady
// state of a measurement run cycles the same bounded population of
// packets, flits and queue slots; these types keep that population on a
// handful of reusable backing arrays instead of churning the heap every
// cycle. Ownership rule: each pool/queue belongs to exactly one network
// (and each network to one goroutine), so none of this needs locking.

// queue is an amortized-zero-alloc FIFO. pop advances a head index instead
// of re-slicing (q = q[1:] strands capacity and forces append to
// reallocate); push rewinds to the buffer start whenever the queue drains
// and compacts when the dead prefix dominates, so steady-state traffic
// reuses one backing array forever.
type queue[T any] struct {
	buf  []T
	head int
}

func (q *queue[T]) len() int { return len(q.buf) - q.head }

func (q *queue[T]) push(x T) {
	if q.head == len(q.buf) {
		q.buf = q.buf[:0]
		q.head = 0
	} else if q.head >= 32 && q.head*2 >= len(q.buf) {
		n := copy(q.buf, q.buf[q.head:])
		var zero T
		for i := n; i < len(q.buf); i++ {
			q.buf[i] = zero
		}
		q.buf = q.buf[:n]
		q.head = 0
	}
	q.buf = append(q.buf, x)
}

func (q *queue[T]) front() T { return q.buf[q.head] }

func (q *queue[T]) pop() T {
	var zero T
	x := q.buf[q.head]
	q.buf[q.head] = zero
	q.head++
	if q.head == len(q.buf) {
		q.buf = q.buf[:0]
		q.head = 0
	}
	return x
}

// ringBuf is a fixed-capacity FIFO for buffers whose occupancy is bounded
// by construction (extension buffers, credit-backed input-VC FIFOs). push
// panics on overflow, surfacing flow-control bugs instead of hiding them.
type ringBuf[T any] struct {
	buf     []T
	head, n int
}

func newRingBuf[T any](capacity int) ringBuf[T] {
	return ringBuf[T]{buf: make([]T, capacity)}
}

func (r *ringBuf[T]) len() int { return r.n }

func (r *ringBuf[T]) push(x T) {
	if r.n == len(r.buf) {
		panic("sim: fixed FIFO overflow")
	}
	i := r.head + r.n
	if i >= len(r.buf) {
		i -= len(r.buf)
	}
	r.buf[i] = x
	r.n++
}

func (r *ringBuf[T]) front() T { return r.buf[r.head] }

func (r *ringBuf[T]) pop() T {
	var zero T
	x := r.buf[r.head]
	r.buf[r.head] = zero
	r.head++
	if r.head == len(r.buf) {
		r.head = 0
	}
	r.n--
	return x
}

// pool hands out recycled values, carving fresh ones from 256-element
// blocks when the freelist is empty. Once the run's peak population has
// been carved, every get is served from the freelist and the heap is never
// touched again. put zeroes the value so pooled objects don't pin packets.
type pool[T any] struct {
	free  []*T
	block []T
}

func (p *pool[T]) get() *T {
	if n := len(p.free); n > 0 {
		x := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		return x
	}
	if len(p.block) == 0 {
		p.block = make([]T, 256)
	}
	x := &p.block[0]
	p.block = p.block[1:]
	return x
}

func (p *pool[T]) put(x *T) {
	var zero T
	*x = zero
	p.free = append(p.free, x)
}

package sim

import (
	"routerless/internal/mesh"
	"routerless/internal/topo"
)

// MeshConfig parameterizes the router-based mesh model, matching the
// paper's setup (§5): 2 VCs per link, 4-flit input buffers, and a router
// pipeline depth of 2 (Mesh-2), 1 (Mesh-1) or 0 (Mesh-0, the "ideal"
// router with only link/contention delays).
type MeshConfig struct {
	VCs         int
	BufferFlits int
	RouterDelay int // pipeline cycles per router
	// DenseStep disables active-set sparse stepping: every router runs
	// its ejection/switch/injection phases every cycle, the pre-sparse
	// behavior. Kept as the byte-identity oracle for the sparse path
	// (see RingConfig.DenseStep).
	DenseStep bool
}

// MeshN returns the paper's Mesh-N configuration (N = router delay).
func MeshN(delay int) MeshConfig {
	return MeshConfig{VCs: 2, BufferFlits: 4, RouterDelay: delay}
}

// meshFlit is a flit inside the mesh network.
type meshFlit struct {
	pkt  *Packet
	head bool
	tail bool
	hops int
	dst  topo.Node
}

// vcState is one virtual channel at one input port. The FIFO is a fixed
// ring buffer: credit flow control bounds its occupancy at BufferFlits, so
// it never allocates after construction.
type vcState struct {
	fifo ringBuf[*meshFlit]
	// allocated output for the packet currently using this VC
	// (wormhole: decided at the head flit, held until the tail leaves).
	active  bool
	outPort mesh.Port
	outVC   int
}

// inputPort groups the VCs of one router input.
type inputPort struct {
	vcs []*vcState
}

// router is one mesh router.
type router struct {
	node   topo.Node
	inputs [mesh.NumPorts]*inputPort
	// credits[port][vc] = free buffer slots at the downstream input.
	credits [mesh.NumPorts][]int
	// downVCBusy[port][vc] = downstream VC currently owned by a packet.
	downVCBusy [mesh.NumPorts][]bool
}

// delivery is a flit in transit through the router pipeline + link.
type delivery struct {
	at     int // arrival cycle
	flit   *meshFlit
	toNode int // destination router node ID
	toPort mesh.Port
	toVC   int
}

// cand is one (input port, VC) switch-arbitration candidate.
type cand struct {
	p  mesh.Port
	vc int
}

// Mesh is the cycle-accurate router-based mesh simulator.
type Mesh struct {
	rows, cols int
	cfg        MeshConfig
	routers    []*router
	// pipe holds flits traversing pipeline+link, ordered FIFO per edge by
	// construction (arrival times are monotone per VC). pipeScratch is the
	// retained filter buffer Step swaps with pipe each cycle.
	pipe        []delivery
	pipeScratch []delivery

	// cands enumerates every (port, VC) pair once; the shape is identical
	// for all routers, so switch arbitration shares this read-only slice.
	cands []cand

	// flits recycles meshFlit records; steady-state injection and
	// delivery never allocate.
	flits pool[meshFlit]
	// recycle, when set, reclaims a completed packet (the Run freelist).
	recycle func(*Packet)

	srcQueue []queue[*Packet]
	srcSent  []int // flits of head packet already injected
	srcVC    []int // local VC chosen for the head packet mid-injection

	// Active-set state for sparse stepping: bufCount[id] counts the flits
	// across all of router id's input VCs (maintained at every fifo
	// push/pop site, in dense mode too so either mode can audit it), and
	// active is exactly the routers with buffered flits or queued source
	// packets — the only routers whose ejection/switch/injection phases
	// are not provably no-ops. Neighbors activate when a pipe delivery
	// lands a flit in their input VC.
	bufCount []int32
	active   activeSet
	dense    bool

	cycle     int
	inFlight  int
	util      int64
	utilSamps int64

	injectedFlits  int64
	deliveredFlits int64
}

// NewMesh builds a rows×cols mesh of VC wormhole routers.
func NewMesh(rows, cols int, cfg MeshConfig) *Mesh {
	if cfg.VCs < 1 || cfg.BufferFlits < 1 || cfg.RouterDelay < 0 {
		panic("sim: invalid MeshConfig")
	}
	m := &Mesh{
		rows: rows, cols: cols, cfg: cfg,
		srcQueue: make([]queue[*Packet], rows*cols),
		srcSent:  make([]int, rows*cols),
		srcVC:    make([]int, rows*cols),
		bufCount: make([]int32, rows*cols),
		active:   newActiveSet(rows * cols),
		dense:    cfg.DenseStep,
	}
	for id := 0; id < rows*cols; id++ {
		r := &router{node: topo.NodeFromID(id, cols)}
		for p := mesh.Port(0); p < mesh.NumPorts; p++ {
			ip := &inputPort{}
			for v := 0; v < cfg.VCs; v++ {
				ip.vcs = append(ip.vcs, &vcState{fifo: newRingBuf[*meshFlit](cfg.BufferFlits)})
			}
			r.inputs[p] = ip
			r.credits[p] = make([]int, cfg.VCs)
			r.downVCBusy[p] = make([]bool, cfg.VCs)
			for v := 0; v < cfg.VCs; v++ {
				r.credits[p][v] = cfg.BufferFlits
			}
		}
		m.routers = append(m.routers, r)
	}
	for p := mesh.Port(0); p < mesh.NumPorts; p++ {
		for v := 0; v < cfg.VCs; v++ {
			m.cands = append(m.cands, cand{p, v})
		}
	}
	return m
}

// Nodes implements Network.
func (m *Mesh) Nodes() int { return m.rows * m.cols }

// Cycle implements Network.
func (m *Mesh) Cycle() int { return m.cycle }

// InFlight implements Network.
func (m *Mesh) InFlight() int { return m.inFlight }

// Inject implements Network.
func (m *Mesh) Inject(p *Packet) {
	p.remaining = p.NumFlits
	m.srcQueue[p.Src].push(p)
	if !m.dense {
		m.active.add(p.Src)
	}
	m.inFlight++
}

// Step implements Network. Phases: deliver pipelined flits into downstream
// buffers; switch allocation + traversal at every router; NI injection and
// ejection.
//
// By default the router phases are *sparse*: only routers with a
// non-empty input VC or a queued source packet are visited (ejection,
// switch allocation, and injection at an empty router are all provably
// no-ops), in ascending router order — switch traversal returns credits
// upstream and appends to the shared pipe, so visit order is observable
// and must match the dense walk. The pipe-landing phase is already
// proportional to in-flight flits. Switch arbitration's rotating offset
// is derived from the cycle counter: the old per-router rrIn counter was
// incremented unconditionally once per cycle and therefore always equaled
// the cycle number, so the derivation is bit-identical while letting
// quiescent routers skip the increment. The dense walk survives as
// denseStep behind MeshConfig.DenseStep, the sparse path's oracle.
func (m *Mesh) Step() {
	if m.dense {
		m.denseStep()
		return
	}
	// Phase 1: land flits whose pipeline+link delay elapsed, activating
	// the receiving router. Survivors are compacted into the retained
	// scratch buffer, then the buffers swap — no per-cycle allocation.
	keep := m.pipeScratch[:0]
	for _, d := range m.pipe {
		if d.at > m.cycle {
			keep = append(keep, d)
			continue
		}
		rt := m.routers[d.toNode]
		rt.inputs[d.toPort].vcs[d.toVC].fifo.push(d.flit)
		m.bufCount[d.toNode]++
		m.active.add(d.toNode)
	}
	m.pipeScratch = m.pipe[:0]
	m.pipe = keep

	// Phases 2-4 visit only active routers. No additions can occur
	// mid-sweep: landing happened above, traversal schedules arrivals at
	// least one cycle out, and injection only touches the router's own
	// buffers — so the list is stable and removals wait for compaction.
	list := m.active.list
	off := m.cycle % len(m.cands)
	for _, v := range list {
		m.ejectOne(int(v), m.routers[v])
	}
	for _, v := range list {
		m.switchAlloc(int(v), m.routers[v], off)
	}
	for _, v := range list {
		m.injectOne(int(v))
	}

	// Compact (order-preserving): drop routers that went fully quiescent.
	w := 0
	for _, v := range list {
		if m.bufCount[v] > 0 || m.srcQueue[v].len() > 0 {
			list[w] = v
			w++
		} else {
			m.active.mark[v] = false
		}
	}
	m.active.list = list[:w]

	m.utilSamps += int64(2 * m.Nodes()) // rough per-node link pair sample
	m.util += int64(len(m.pipe))
	m.cycle++
}

// denseStep is the pre-sparse cycle: every router runs every phase every
// cycle. Retained as the byte-identity oracle for sparse stepping
// (MeshConfig.DenseStep).
func (m *Mesh) denseStep() {
	keep := m.pipeScratch[:0]
	for _, d := range m.pipe {
		if d.at > m.cycle {
			keep = append(keep, d)
			continue
		}
		rt := m.routers[d.toNode]
		rt.inputs[d.toPort].vcs[d.toVC].fifo.push(d.flit)
		m.bufCount[d.toNode]++
	}
	m.pipeScratch = m.pipe[:0]
	m.pipe = keep

	// Phase 2: ejection — each router sinks up to one flit per cycle from
	// input VCs holding flits destined here.
	for id, rt := range m.routers {
		m.ejectOne(id, rt)
	}

	// Phase 3: route computation + VC allocation + switch allocation +
	// traversal, one flit per output port, one per input VC.
	off := m.cycle % len(m.cands)
	for id, rt := range m.routers {
		m.switchAlloc(id, rt, off)
	}

	// Phase 4: NI injection into the Local input port.
	for id := range m.routers {
		m.injectOne(id)
	}

	m.utilSamps += int64(2 * m.Nodes()) // rough per-node link pair sample
	m.util += int64(len(m.pipe))
	m.cycle++
}

// ejectOne sinks one destination flit at router id, preferring the VC
// whose head has waited longest (round-robin over ports for fairness).
func (m *Mesh) ejectOne(id int, rt *router) {
	for p := mesh.Port(0); p < mesh.NumPorts; p++ {
		for v, vc := range rt.inputs[p].vcs {
			if vc.fifo.len() == 0 {
				continue
			}
			f := vc.fifo.front()
			if f.dst.ID(m.cols) != id {
				continue
			}
			// Wormhole ordering: the whole packet drains through this VC
			// one flit per cycle.
			vc.fifo.pop()
			m.bufCount[id]--
			if p != mesh.Local {
				m.creditReturnVC(id, p, v)
			}
			m.finish(f)
			return
		}
	}
}

// finish retires a delivered flit and recycles it.
func (m *Mesh) finish(f *meshFlit) {
	p, hops := f.pkt, f.hops
	m.flits.put(f)
	p.remaining--
	m.deliveredFlits++
	if hops > p.Hops {
		p.Hops = hops
	}
	if p.remaining == 0 {
		p.Done = m.cycle
		m.inFlight--
		if m.recycle != nil {
			m.recycle(p)
		}
	}
}

// switchAlloc performs routing, VC allocation and switch traversal for
// router id: at most one flit leaves per output port per cycle. off is
// the cycle-derived rotating arbitration offset shared by all routers.
func (m *Mesh) switchAlloc(id int, rt *router, off int) {
	usedOut := [mesh.NumPorts]bool{}
	// Iterate all (port, vc) pairs starting from the rotating offset for
	// fairness; the candidate list is shared and read-only.
	cands := m.cands
	for k := 0; k < len(cands); k++ {
		c := cands[(k+off)%len(cands)]
		vc := rt.inputs[c.p].vcs[c.vc]
		if vc.fifo.len() == 0 {
			continue
		}
		f := vc.fifo.front()
		if f.dst.ID(m.cols) == id {
			continue // ejection handled separately
		}
		outPort := mesh.OutputPort(rt.node, f.dst)
		if usedOut[outPort] {
			continue
		}
		// VC allocation for head flits.
		if f.head && !vc.active {
			ov := m.allocVC(rt, outPort)
			if ov < 0 {
				continue // no downstream VC free
			}
			vc.active = true
			vc.outPort = outPort
			vc.outVC = ov
		}
		if !vc.active {
			continue // body flit before its head allocated (shouldn't happen)
		}
		if vc.outPort != outPort {
			outPort = vc.outPort // wormhole: follow the head's route
			if usedOut[outPort] {
				continue
			}
		}
		if rt.credits[outPort][vc.outVC] == 0 {
			continue // downstream buffer full
		}
		// Traverse: consume credit, schedule arrival after pipeline+link.
		rt.credits[outPort][vc.outVC]--
		vc.fifo.pop()
		m.bufCount[id]--
		if c.p != mesh.Local {
			m.creditReturnVC(id, c.p, c.vc)
		}
		next, ok := mesh.Neighbor(rt.node, outPort, m.rows, m.cols)
		if !ok {
			panic("sim: mesh route exits grid")
		}
		f.hops++
		m.pipe = append(m.pipe, delivery{
			at:     m.cycle + m.cfg.RouterDelay + 1,
			flit:   f,
			toNode: next.ID(m.cols),
			toPort: mesh.Opposite(outPort),
			toVC:   vc.outVC,
		})
		usedOut[outPort] = true
		if f.tail {
			// Release the downstream VC for reallocation once the tail
			// has left this router.
			rt.downVCBusy[outPort][vc.outVC] = false
			vc.active = false
		}
	}
}

// allocVC finds a free downstream VC on outPort.
func (m *Mesh) allocVC(rt *router, outPort mesh.Port) int {
	for v := 0; v < m.cfg.VCs; v++ {
		if !rt.downVCBusy[outPort][v] {
			rt.downVCBusy[outPort][v] = true
			return v
		}
	}
	return -1
}

// creditReturnVC returns a credit for a specific (input port, VC) of
// router id to its upstream neighbour.
func (m *Mesh) creditReturnVC(id int, p mesh.Port, vcIdx int) {
	up, ok := mesh.Neighbor(m.routers[id].node, p, m.rows, m.cols)
	if !ok {
		return
	}
	upRt := m.routers[up.ID(m.cols)]
	op := mesh.Opposite(p)
	if upRt.credits[op][vcIdx] < m.cfg.BufferFlits {
		upRt.credits[op][vcIdx]++
	}
}

// injectOne moves flits of the head packet at node id's NI into the Local
// input port, one flit per cycle, respecting local buffer capacity.
func (m *Mesh) injectOne(id int) {
	q := &m.srcQueue[id]
	if q.len() == 0 {
		return
	}
	rt := m.routers[id]
	p := q.front()
	// Pick a local VC: head flits need a VC whose fifo can take the whole
	// packet progressively; use the emptiest.
	best, bestFree := -1, 0
	if m.srcSent[id] > 0 {
		// Keep packets on a single local VC: body flits must follow the
		// head, so while mid-injection stick to the chosen VC.
		v := m.srcVC[id]
		best = v
		bestFree = m.cfg.BufferFlits - rt.inputs[mesh.Local].vcs[v].fifo.len()
	} else {
		for v, vc := range rt.inputs[mesh.Local].vcs {
			free := m.cfg.BufferFlits - vc.fifo.len()
			if free > bestFree {
				best, bestFree = v, free
			}
		}
	}
	if best < 0 || bestFree == 0 {
		return
	}
	f := m.flits.get()
	f.pkt = p
	f.head = m.srcSent[id] == 0
	f.tail = m.srcSent[id] == p.NumFlits-1
	f.dst = topo.NodeFromID(p.Dst, m.cols)
	if f.head {
		m.srcVC[id] = best
	}
	rt.inputs[mesh.Local].vcs[best].fifo.push(f)
	m.bufCount[id]++
	m.injectedFlits++
	m.srcSent[id]++
	if m.srcSent[id] == p.NumFlits {
		q.pop()
		m.srcSent[id] = 0
	}
}

// InjectedFlits returns the number of flits placed into local input VCs.
func (m *Mesh) InjectedFlits() int64 { return m.injectedFlits }

// DeliveredFlits returns the number of flits ejected at destinations.
func (m *Mesh) DeliveredFlits() int64 { return m.deliveredFlits }

// BufferOccupancy returns the number of flits currently held in input-VC
// FIFOs across all routers (flits in the pipeline registers excluded), the
// per-interval congestion probe for the telemetry layer.
func (m *Mesh) BufferOccupancy() int {
	n := 0
	for _, rt := range m.routers {
		for _, ip := range rt.inputs {
			for _, vc := range ip.vcs {
				n += vc.fifo.len()
			}
		}
	}
	return n
}

// ActiveRouters returns the number of routers with buffered flits or
// queued source packets as of the last completed cycle — the units a
// sparse cycle actually steps. Dense mode computes it from the
// ground-truth FIFO/queue state, so comparing the two modes' interval
// streams doubles as a bufCount-bookkeeping oracle.
func (m *Mesh) ActiveRouters() int {
	if !m.dense {
		return m.active.len()
	}
	n := 0
	for id, rt := range m.routers {
		if m.srcQueue[id].len() > 0 {
			n++
			continue
		}
	scan:
		for _, ip := range rt.inputs {
			for _, vc := range ip.vcs {
				if vc.fifo.len() > 0 {
					n++
					break scan
				}
			}
		}
	}
	return n
}

// LinkUtilization implements Network: mean in-transit flits per link
// sample; a coarse activity factor for the power model.
func (m *Mesh) LinkUtilization() float64 {
	if m.utilSamps == 0 {
		return 0
	}
	return float64(m.util) / float64(m.utilSamps)
}

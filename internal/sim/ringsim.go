package sim

import (
	"fmt"

	"routerless/internal/topo"
)

// RingConfig parameterizes the routerless network model.
type RingConfig struct {
	// EjectPorts is the number of flits a node can sink per cycle across
	// all loops (the ejection link width).
	EjectPorts int
	// ExtensionBuffers is the number of shared extension-buffer slots per
	// node (REC's mechanism guaranteeing ejection, §2.1). A flit arriving
	// at its destination while the ejection ports are busy parks in an
	// extension buffer; when those are full it circulates the loop again.
	ExtensionBuffers int
	// InjectPerCycle is the number of flits a node can source per cycle
	// (the injection link width; the paper's single-cycle injection).
	InjectPerCycle int
	// DenseStep disables active-set sparse stepping: every loop and node
	// is walked every cycle, the pre-sparse behavior. Sparse stepping is
	// byte-identical (a skipped step is provably a no-op), so this knob
	// exists as the oracle for the dense-vs-sparse parity tests and for
	// before/after benchmarking, mirroring bruteGreedySearch/NaiveForward.
	DenseStep bool
}

// DefaultRingConfig matches the paper's REC/DRL setup: single-flit
// injection/ejection links plus a small pool of extension buffers.
func DefaultRingConfig() RingConfig {
	return RingConfig{EjectPorts: 1, ExtensionBuffers: 4, InjectPerCycle: 1}
}

// flit is one in-flight flit on a loop.
type flit struct {
	pkt  *Packet
	tail bool
	hops int
}

// loopState is the conveyor of per-node flit buffers for one loop. slot[i]
// holds the flit currently latched at perimeter position i; every cycle all
// flits advance one position (single-cycle per hop — the defining
// routerless property: no stalls on the ring).
type loopState struct {
	loop  topo.Loop
	nodes []int // node IDs along traversal order
	// posOf[nodeID] = perimeter index, or -1.
	slot []*flit
	next []*flit
}

// Ring is the cycle-accurate routerless network simulator.
type Ring struct {
	topo  *topo.Topology
	rt    *topo.RoutingTable
	cfg   RingConfig
	loops []*loopState
	// posOf[loopIdx][nodeID] = perimeter index or -1.
	posOf [][]int

	// routeLoop/routeDist flatten the routing table by src*N+dst so the
	// injection path is two array reads (rebuilt by FailLoop).
	routeLoop []int32
	routeDist []int32

	// srcQueue[node] holds packets awaiting injection, each tracked by
	// flits remaining to inject.
	srcQueue []queue[*injecting]
	// extension[node] holds flits parked awaiting an ejection port.
	extension []ringBuf[*flit]

	// flits/injs recycle the per-flit and per-packet-in-queue records; in
	// steady state injection and delivery never allocate.
	flits pool[flit]
	injs  pool[injecting]

	// ejected is Step's per-cycle ejection-port scratch, hoisted here so
	// the forwarding path allocates nothing. Sparse stepping resets only
	// the entries dirtied last cycle (ejDirty); dense stepping zeroes the
	// whole array.
	ejected []int
	ejDirty []int32

	// Active-set state for sparse stepping (see Step). occ[i] counts the
	// occupied slots of loop i, maintained at every inject/eject/park/drop
	// site; loopActive is exactly the loops with occ > 0, extActive the
	// nodes with parked extension flits, injActive the nodes with queued
	// source packets. liveSlots caches the summed slot count of all
	// non-failed loops (the per-cycle slotSamples increment). FailLoop
	// bumps dirtyEpoch; the next Step rebuilds everything from scratch
	// when cleanEpoch lags, so mid-run failures keep the sets exact.
	occ        []int32
	loopActive activeSet
	extActive  activeSet
	injActive  activeSet
	liveSlots  int64
	dirtyEpoch uint64
	cleanEpoch uint64
	dense      bool

	cycle    int
	inFlight int

	// failed[i] marks loop i disabled by FailLoop (reliability studies);
	// nil until the first failure.
	failed []bool
	// onDeliver, when set, observes each completed packet (tracing).
	onDeliver func(*Packet)
	// recycle, when set, reclaims a completed packet (the Run packet
	// freelist); invoked after onDeliver.
	recycle func(*Packet)

	slotSamples    int64
	slotOccupied   int64
	loopOccupied   []int64
	circulations   int64 // ejection-miss re-circulations (diagnostics)
	injectedFlits  int64
	deliveredFlits int64
	droppedFlits   int64
}

// NewRing builds a simulator for a routerless topology. The topology must
// be fully connected for arbitrary traffic; unreachable packets cause
// Inject to panic, surfacing design bugs early.
func NewRing(t *topo.Topology, cfg RingConfig) *Ring {
	if cfg.EjectPorts < 1 || cfg.InjectPerCycle < 1 {
		panic("sim: RingConfig needs at least one inject and eject port")
	}
	r := &Ring{
		topo:      t,
		rt:        topo.BuildRoutingTable(t),
		cfg:       cfg,
		srcQueue:  make([]queue[*injecting], t.N()),
		extension: make([]ringBuf[*flit], t.N()),
		ejected:   make([]int, t.N()),
		ejDirty:   make([]int32, 0, t.N()),
		dense:     cfg.DenseStep,
	}
	for i := range r.extension {
		r.extension[i] = newRingBuf[*flit](cfg.ExtensionBuffers)
	}
	for _, l := range t.Loops() {
		ls := &loopState{
			loop: l,
			slot: make([]*flit, l.Len()),
			next: make([]*flit, l.Len()),
		}
		for _, n := range l.Nodes() {
			ls.nodes = append(ls.nodes, n.ID(t.Cols()))
		}
		r.loops = append(r.loops, ls)
		pos := make([]int, t.N())
		for i := range pos {
			pos[i] = -1
		}
		for i, id := range ls.nodes {
			pos[id] = i
		}
		r.posOf = append(r.posOf, pos)
	}
	r.loopOccupied = make([]int64, len(r.loops))
	r.occ = make([]int32, len(r.loops))
	r.loopActive = newActiveSet(len(r.loops))
	r.extActive = newActiveSet(t.N())
	r.injActive = newActiveSet(t.N())
	r.rebuildActiveSets()
	r.cacheRoutes()
	return r
}

// cacheRoutes flattens the routing table into the injection-path arrays.
func (r *Ring) cacheRoutes() {
	n := r.topo.N()
	if r.routeLoop == nil {
		r.routeLoop = make([]int32, n*n)
		r.routeDist = make([]int32, n*n)
	}
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			r.routeLoop[s*n+d] = int32(r.rt.LoopID(s, d))
			r.routeDist[s*n+d] = int32(r.rt.DistID(s, d))
		}
	}
}

// rebuildActiveSets recomputes the occupancy counters and active sets
// from the ground-truth slot/buffer/queue state. Called at construction
// and whenever FailLoop has dirtied the epoch: a failure drops flits,
// re-routes queued packets, and shrinks the live slot population, so one
// O(topology) rebuild is simpler to prove correct than patching every
// failure path incrementally.
func (r *Ring) rebuildActiveSets() {
	r.loopActive.clear()
	r.extActive.clear()
	r.injActive.clear()
	r.liveSlots = 0
	for li, ls := range r.loops {
		if li < len(r.failed) && r.failed[li] {
			r.occ[li] = 0
			continue
		}
		r.liveSlots += int64(len(ls.slot))
		n := int32(0)
		for _, f := range ls.slot {
			if f != nil {
				n++
			}
		}
		r.occ[li] = n
		if n > 0 {
			r.loopActive.add(li)
		}
	}
	for n := range r.extension {
		if r.extension[n].len() > 0 {
			r.extActive.add(n)
		}
	}
	for n := range r.srcQueue {
		if r.srcQueue[n].len() > 0 {
			r.injActive.add(n)
		}
	}
	r.cleanEpoch = r.dirtyEpoch
}

// injecting tracks a packet mid-injection at its source NI.
type injecting struct {
	pkt      *Packet
	loopIdx  int
	sent     int // flits already placed on the ring
	distance int // hops to destination on the chosen loop
}

// Nodes implements Network.
func (r *Ring) Nodes() int { return r.topo.N() }

// Cycle implements Network.
func (r *Ring) Cycle() int { return r.cycle }

// InFlight implements Network.
func (r *Ring) InFlight() int { return r.inFlight }

// Inject implements Network: the packet joins its source queue and is
// placed onto its loop as slots pass by.
func (r *Ring) Inject(p *Packet) {
	n := r.topo.N()
	li := int(r.routeLoop[p.Src*n+p.Dst])
	if li < 0 {
		panic(fmt.Sprintf("sim: no loop connects %d -> %d", p.Src, p.Dst))
	}
	p.remaining = p.NumFlits
	inj := r.injs.get()
	inj.pkt, inj.loopIdx, inj.distance = p, li, int(r.routeDist[p.Src*n+p.Dst])
	r.srcQueue[p.Src].push(inj)
	if !r.dense {
		r.injActive.add(p.Src)
	}
	r.inFlight++
}

// Step implements Network. Per-cycle phases:
//  1. ejection — flits latched at their destination leave the ring,
//     bounded by EjectPorts; overflow parks in extension buffers, and
//     when those are full the flit re-circulates;
//  2. advance — every remaining flit moves one hop (never stalls);
//  3. injection — source NIs place queued flits into empty slots.
//
// By default the cycle is *sparse*: only loops with occupied slots, nodes
// with parked extension flits, and nodes with pending injections are
// visited, so the per-cycle cost is proportional to activity rather than
// topology size. The invariant making this safe is that every skipped
// unit's step is provably a no-op (an empty loop ejects nothing, advances
// nothing, and swaps two all-nil arrays; an empty buffer or queue drains
// nothing), so sparse stepping is byte-identical to the dense walk —
// Results, events, interval stats, and latency histograms all match. The
// dense walk survives as denseStep behind RingConfig.DenseStep, the
// oracle the parity tests hold sparse stepping to.
func (r *Ring) Step() {
	if r.dense {
		r.denseStep()
		return
	}
	if r.cleanEpoch != r.dirtyEpoch {
		r.rebuildActiveSets()
	}
	// Reset the ejection-port counters dirtied last cycle.
	for _, n := range r.ejDirty {
		r.ejected[n] = 0
	}
	r.ejDirty = r.ejDirty[:0]

	// Phase 0: drain extension buffers into ejection ports first (they
	// arrived earliest). Only nodes with parked flits, in ascending node
	// order — the same order the dense walk visits them.
	for _, v := range r.extActive.list {
		n := int(v)
		ext := &r.extension[n]
		for ext.len() > 0 && r.ejected[n] < r.cfg.EjectPorts {
			r.finishFlit(ext.pop())
			r.bumpEject(n)
		}
	}

	// Phase 1+2: ejection decision and advance, only for loops carrying
	// flits, in ascending loop order (ejection ports are shared across
	// loops, so visit order is observable and must match the dense walk).
	// Slots are nilled as they are read, so after the walk the old slot
	// array is all-nil and becomes the next cycle's scratch — the all-nil
	// `next` invariant that lets empty loops skip clearing entirely.
	for _, v := range r.loopActive.list {
		li := int(v)
		ls := r.loops[li]
		for i, todo := 0, r.occ[li]; todo > 0; i++ {
			f := ls.slot[i]
			if f == nil {
				continue
			}
			todo--
			ls.slot[i] = nil
			node := ls.nodes[i]
			if f.pkt.Dst == node {
				if r.ejected[node] < r.cfg.EjectPorts {
					r.bumpEject(node)
					r.finishFlit(f)
					r.occ[li]--
					continue
				}
				if r.extension[node].len() < r.cfg.ExtensionBuffers {
					r.extension[node].push(f)
					r.extActive.add(node)
					r.occ[li]--
					continue
				}
				// No room: circulate the loop again.
				r.circulations++
			}
			j := i + 1
			if j == len(ls.slot) {
				j = 0
			}
			f.hops++
			ls.next[j] = f
		}
		ls.slot, ls.next = ls.next, ls.slot
	}

	// Phase 3: injection, only at nodes with queued packets.
	for _, v := range r.injActive.list {
		n := int(v)
		budget := r.cfg.InjectPerCycle
		q := &r.srcQueue[n]
		for budget > 0 && q.len() > 0 {
			inj := q.front()
			ls := r.loops[inj.loopIdx]
			pos := r.posOf[inj.loopIdx][n]
			if ls.slot[pos] != nil {
				break // ring traffic has priority; wait for a gap
			}
			f := r.flits.get()
			f.pkt, f.tail = inj.pkt, inj.sent == inj.pkt.NumFlits-1
			ls.slot[pos] = f
			r.occ[inj.loopIdx]++
			r.loopActive.add(inj.loopIdx)
			r.injectedFlits++
			inj.sent++
			budget--
			if inj.sent == inj.pkt.NumFlits {
				q.pop()
				r.injs.put(inj)
			}
		}
	}

	// Utilization sampling from the occupancy counters: liveSlots is the
	// summed length of all non-failed loops, and occ[li] the flits loop li
	// carries after injection — integer sums identical to the dense
	// per-slot walk.
	r.slotSamples += r.liveSlots
	for _, v := range r.loopActive.list {
		occ := int64(r.occ[v])
		r.slotOccupied += occ
		r.loopOccupied[v] += occ
	}

	// Compact the active sets in place (order-preserving): drop loops
	// that drained, nodes whose extension buffers emptied, and nodes
	// whose source queues ran dry.
	w := 0
	for _, v := range r.loopActive.list {
		if r.occ[v] > 0 {
			r.loopActive.list[w] = v
			w++
		} else {
			r.loopActive.mark[v] = false
		}
	}
	r.loopActive.list = r.loopActive.list[:w]
	w = 0
	for _, v := range r.extActive.list {
		if r.extension[v].len() > 0 {
			r.extActive.list[w] = v
			w++
		} else {
			r.extActive.mark[v] = false
		}
	}
	r.extActive.list = r.extActive.list[:w]
	w = 0
	for _, v := range r.injActive.list {
		if r.srcQueue[v].len() > 0 {
			r.injActive.list[w] = v
			w++
		} else {
			r.injActive.mark[v] = false
		}
	}
	r.injActive.list = r.injActive.list[:w]

	r.cycle++
}

// bumpEject counts one ejection at node n this cycle, remembering the
// node so the next sparse cycle resets only the counters actually used.
func (r *Ring) bumpEject(n int) {
	if r.ejected[n] == 0 {
		r.ejDirty = append(r.ejDirty, int32(n))
	}
	r.ejected[n]++
}

// denseStep is the pre-sparse cycle: every loop slot and every node is
// walked unconditionally. Retained as the byte-identity oracle for
// sparse stepping (RingConfig.DenseStep) — TestSparseMatchesDense* hold
// the two paths to identical Results and interval streams.
func (r *Ring) denseStep() {
	ejected := r.ejected
	for i := range ejected {
		ejected[i] = 0
	}

	// Phase 0: drain extension buffers into ejection ports first (they
	// arrived earliest).
	for n := 0; n < r.topo.N(); n++ {
		ext := &r.extension[n]
		for ext.len() > 0 && ejected[n] < r.cfg.EjectPorts {
			r.finishFlit(ext.pop())
			ejected[n]++
		}
	}

	// Phase 1+2: ejection decision and advance, per loop.
	for li, ls := range r.loops {
		if li < len(r.failed) && r.failed[li] {
			continue
		}
		for i := range ls.next {
			ls.next[i] = nil
		}
		for i, f := range ls.slot {
			if f == nil {
				continue
			}
			node := ls.nodes[i]
			if f.pkt.Dst == node {
				if ejected[node] < r.cfg.EjectPorts {
					ejected[node]++
					r.finishFlit(f)
					continue
				}
				if r.extension[node].len() < r.cfg.ExtensionBuffers {
					r.extension[node].push(f)
					continue
				}
				// No room: circulate the loop again.
				r.circulations++
			}
			j := i + 1
			if j == len(ls.slot) {
				j = 0
			}
			f.hops++
			ls.next[j] = f
		}
		ls.slot, ls.next = ls.next, ls.slot
	}

	// Phase 3: injection.
	for n := 0; n < r.topo.N(); n++ {
		budget := r.cfg.InjectPerCycle
		q := &r.srcQueue[n]
		for budget > 0 && q.len() > 0 {
			inj := q.front()
			ls := r.loops[inj.loopIdx]
			pos := r.posOf[inj.loopIdx][n]
			if ls.slot[pos] != nil {
				break // ring traffic has priority; wait for a gap
			}
			f := r.flits.get()
			f.pkt, f.tail = inj.pkt, inj.sent == inj.pkt.NumFlits-1
			ls.slot[pos] = f
			r.injectedFlits++
			inj.sent++
			budget--
			if inj.sent == inj.pkt.NumFlits {
				q.pop()
				r.injs.put(inj)
			}
		}
	}

	// Utilization sampling (global and per loop).
	for li, ls := range r.loops {
		if li < len(r.failed) && r.failed[li] {
			continue
		}
		r.slotSamples += int64(len(ls.slot))
		for _, f := range ls.slot {
			if f != nil {
				r.slotOccupied++
				r.loopOccupied[li]++
			}
		}
	}
	r.cycle++
}

// finishFlit retires one flit at its destination and recycles it.
func (r *Ring) finishFlit(f *flit) {
	p, hops := f.pkt, f.hops
	r.flits.put(f)
	if p.remaining <= 0 {
		return // packet already lost to a loop failure
	}
	p.remaining--
	r.deliveredFlits++
	if hops > p.Hops {
		p.Hops = hops
	}
	if p.remaining == 0 {
		p.Done = r.cycle
		r.inFlight--
		if r.onDeliver != nil {
			r.onDeliver(p)
		}
		if r.recycle != nil {
			r.recycle(p)
		}
	}
}

// OnDeliver registers an observer invoked once per completed packet, for
// tracing and custom statistics. Pass nil to clear.
func (r *Ring) OnDeliver(fn func(*Packet)) { r.onDeliver = fn }

// LinkUtilization implements Network.
func (r *Ring) LinkUtilization() float64 {
	if r.slotSamples == 0 {
		return 0
	}
	return float64(r.slotOccupied) / float64(r.slotSamples)
}

// Circulations returns the count of ejection-miss re-circulations, a
// diagnostic for undersized ejection resources.
func (r *Ring) Circulations() int64 { return r.circulations }

// InjectedFlits returns the number of flits placed onto rings so far.
func (r *Ring) InjectedFlits() int64 { return r.injectedFlits }

// DeliveredFlits returns the number of flits ejected at destinations.
func (r *Ring) DeliveredFlits() int64 { return r.deliveredFlits }

// BufferOccupancy returns the number of flits currently parked in
// extension buffers across all nodes, the ring model's only buffering
// beyond the loop slots themselves.
func (r *Ring) BufferOccupancy() int {
	n := 0
	for i := range r.extension {
		n += r.extension[i].len()
	}
	return n
}

// ActiveLoops returns the number of loops carrying at least one flit as
// of the last completed cycle — the units a sparse cycle actually steps.
// Dense mode computes it from the ground-truth slot state, so comparing
// the two modes' interval streams doubles as an occupancy-bookkeeping
// oracle.
func (r *Ring) ActiveLoops() int {
	if !r.dense {
		return r.loopActive.len()
	}
	n := 0
	for li, ls := range r.loops {
		if li < len(r.failed) && r.failed[li] {
			continue
		}
		for _, f := range ls.slot {
			if f != nil {
				n++
				break
			}
		}
	}
	return n
}

// LoopUtilization returns the mean slot occupancy per loop, identifying
// hot rings for power analysis and placement diagnostics.
func (r *Ring) LoopUtilization() []float64 {
	out := make([]float64, len(r.loops))
	if r.cycle == 0 {
		return out
	}
	for li, occ := range r.loopOccupied {
		out[li] = float64(occ) / float64(int64(r.loops[li].loop.Len())*int64(r.cycle))
	}
	return out
}

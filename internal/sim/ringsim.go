package sim

import (
	"fmt"

	"routerless/internal/topo"
)

// RingConfig parameterizes the routerless network model.
type RingConfig struct {
	// EjectPorts is the number of flits a node can sink per cycle across
	// all loops (the ejection link width).
	EjectPorts int
	// ExtensionBuffers is the number of shared extension-buffer slots per
	// node (REC's mechanism guaranteeing ejection, §2.1). A flit arriving
	// at its destination while the ejection ports are busy parks in an
	// extension buffer; when those are full it circulates the loop again.
	ExtensionBuffers int
	// InjectPerCycle is the number of flits a node can source per cycle
	// (the injection link width; the paper's single-cycle injection).
	InjectPerCycle int
}

// DefaultRingConfig matches the paper's REC/DRL setup: single-flit
// injection/ejection links plus a small pool of extension buffers.
func DefaultRingConfig() RingConfig {
	return RingConfig{EjectPorts: 1, ExtensionBuffers: 4, InjectPerCycle: 1}
}

// flit is one in-flight flit on a loop.
type flit struct {
	pkt  *Packet
	tail bool
	hops int
}

// loopState is the conveyor of per-node flit buffers for one loop. slot[i]
// holds the flit currently latched at perimeter position i; every cycle all
// flits advance one position (single-cycle per hop — the defining
// routerless property: no stalls on the ring).
type loopState struct {
	loop  topo.Loop
	nodes []int // node IDs along traversal order
	// posOf[nodeID] = perimeter index, or -1.
	slot []*flit
	next []*flit
}

// Ring is the cycle-accurate routerless network simulator.
type Ring struct {
	topo  *topo.Topology
	rt    *topo.RoutingTable
	cfg   RingConfig
	loops []*loopState
	// posOf[loopIdx][nodeID] = perimeter index or -1.
	posOf [][]int

	// srcQueue[node] holds packets awaiting injection, each tracked by
	// flits remaining to inject.
	srcQueue [][]*injecting
	// extension[node] holds flits parked awaiting an ejection port.
	extension [][]*flit

	cycle    int
	inFlight int

	// failed marks loops disabled by FailLoop (reliability studies).
	failed map[int]bool
	// onDeliver, when set, observes each completed packet (tracing).
	onDeliver func(*Packet)

	slotSamples    int64
	slotOccupied   int64
	loopOccupied   []int64
	circulations   int64 // ejection-miss re-circulations (diagnostics)
	injectedFlits  int64
	deliveredFlits int64
	droppedFlits   int64
}

// NewRing builds a simulator for a routerless topology. The topology must
// be fully connected for arbitrary traffic; unreachable packets cause
// Inject to panic, surfacing design bugs early.
func NewRing(t *topo.Topology, cfg RingConfig) *Ring {
	if cfg.EjectPorts < 1 || cfg.InjectPerCycle < 1 {
		panic("sim: RingConfig needs at least one inject and eject port")
	}
	r := &Ring{
		topo:      t,
		rt:        topo.BuildRoutingTable(t),
		cfg:       cfg,
		srcQueue:  make([][]*injecting, t.N()),
		extension: make([][]*flit, t.N()),
	}
	for li, l := range t.Loops() {
		ls := &loopState{
			loop: l,
			slot: make([]*flit, l.Len()),
			next: make([]*flit, l.Len()),
		}
		for _, n := range l.Nodes() {
			ls.nodes = append(ls.nodes, n.ID(t.Cols()))
		}
		r.loops = append(r.loops, ls)
		pos := make([]int, t.N())
		for i := range pos {
			pos[i] = -1
		}
		for i, id := range ls.nodes {
			pos[id] = i
		}
		r.posOf = append(r.posOf, pos)
		_ = li
	}
	return r
}

// injecting tracks a packet mid-injection at its source NI.
type injecting struct {
	pkt      *Packet
	loopIdx  int
	sent     int // flits already placed on the ring
	distance int // hops to destination on the chosen loop
}

// Nodes implements Network.
func (r *Ring) Nodes() int { return r.topo.N() }

// Cycle implements Network.
func (r *Ring) Cycle() int { return r.cycle }

// InFlight implements Network.
func (r *Ring) InFlight() int { return r.inFlight }

// Inject implements Network: the packet joins its source queue and is
// placed onto its loop as slots pass by.
func (r *Ring) Inject(p *Packet) {
	li := r.rt.Loop(topo.NodeFromID(p.Src, r.topo.Cols()), topo.NodeFromID(p.Dst, r.topo.Cols()))
	if li < 0 {
		panic(fmt.Sprintf("sim: no loop connects %d -> %d", p.Src, p.Dst))
	}
	p.remaining = p.NumFlits
	d := r.rt.Dist(topo.NodeFromID(p.Src, r.topo.Cols()), topo.NodeFromID(p.Dst, r.topo.Cols()))
	r.srcQueue[p.Src] = append(r.srcQueue[p.Src], &injecting{pkt: p, loopIdx: li, distance: d})
	r.inFlight++
}

// Step implements Network. Per-cycle phases:
//  1. ejection — flits latched at their destination leave the ring,
//     bounded by EjectPorts; overflow parks in extension buffers, and
//     when those are full the flit re-circulates;
//  2. advance — every remaining flit moves one hop (never stalls);
//  3. injection — source NIs place queued flits into empty slots.
func (r *Ring) Step() {
	ejected := make([]int, r.topo.N())

	// Phase 0: drain extension buffers into ejection ports first (they
	// arrived earliest).
	for n := 0; n < r.topo.N(); n++ {
		for len(r.extension[n]) > 0 && ejected[n] < r.cfg.EjectPorts {
			f := r.extension[n][0]
			r.extension[n] = r.extension[n][1:]
			r.finishFlit(f)
			ejected[n]++
		}
	}

	// Phase 1+2: ejection decision and advance, per loop.
	for li, ls := range r.loops {
		for i := range ls.next {
			ls.next[i] = nil
		}
		for i, f := range ls.slot {
			if f == nil {
				continue
			}
			node := ls.nodes[i]
			if f.pkt.Dst == node {
				if ejected[node] < r.cfg.EjectPorts {
					ejected[node]++
					r.finishFlit(f)
					continue
				}
				if len(r.extension[node]) < r.cfg.ExtensionBuffers {
					r.extension[node] = append(r.extension[node], f)
					continue
				}
				// No room: circulate the loop again.
				r.circulations++
			}
			j := i + 1
			if j == len(ls.slot) {
				j = 0
			}
			f.hops++
			ls.next[j] = f
		}
		ls.slot, ls.next = ls.next, ls.slot
		_ = li
	}

	// Phase 3: injection.
	for n := 0; n < r.topo.N(); n++ {
		budget := r.cfg.InjectPerCycle
		q := r.srcQueue[n]
		for budget > 0 && len(q) > 0 {
			inj := q[0]
			ls := r.loops[inj.loopIdx]
			pos := r.posOf[inj.loopIdx][n]
			if ls.slot[pos] != nil {
				break // ring traffic has priority; wait for a gap
			}
			f := &flit{pkt: inj.pkt, tail: inj.sent == inj.pkt.NumFlits-1}
			ls.slot[pos] = f
			r.injectedFlits++
			inj.sent++
			budget--
			if inj.sent == inj.pkt.NumFlits {
				q = q[1:]
			}
		}
		r.srcQueue[n] = q
	}

	// Utilization sampling (global and per loop).
	if r.loopOccupied == nil {
		r.loopOccupied = make([]int64, len(r.loops))
	}
	for li, ls := range r.loops {
		r.slotSamples += int64(len(ls.slot))
		for _, f := range ls.slot {
			if f != nil {
				r.slotOccupied++
				r.loopOccupied[li]++
			}
		}
	}
	r.cycle++
}

// finishFlit retires one flit at its destination.
func (r *Ring) finishFlit(f *flit) {
	p := f.pkt
	if p.remaining <= 0 {
		return // packet already lost to a loop failure
	}
	p.remaining--
	r.deliveredFlits++
	if f.hops > p.Hops {
		p.Hops = f.hops
	}
	if p.remaining == 0 {
		p.Done = r.cycle
		r.inFlight--
		if r.onDeliver != nil {
			r.onDeliver(p)
		}
	}
}

// OnDeliver registers an observer invoked once per completed packet, for
// tracing and custom statistics. Pass nil to clear.
func (r *Ring) OnDeliver(fn func(*Packet)) { r.onDeliver = fn }

// LinkUtilization implements Network.
func (r *Ring) LinkUtilization() float64 {
	if r.slotSamples == 0 {
		return 0
	}
	return float64(r.slotOccupied) / float64(r.slotSamples)
}

// Circulations returns the count of ejection-miss re-circulations, a
// diagnostic for undersized ejection resources.
func (r *Ring) Circulations() int64 { return r.circulations }

// InjectedFlits returns the number of flits placed onto rings so far.
func (r *Ring) InjectedFlits() int64 { return r.injectedFlits }

// DeliveredFlits returns the number of flits ejected at destinations.
func (r *Ring) DeliveredFlits() int64 { return r.deliveredFlits }

// BufferOccupancy returns the number of flits currently parked in
// extension buffers across all nodes, the ring model's only buffering
// beyond the loop slots themselves.
func (r *Ring) BufferOccupancy() int {
	n := 0
	for _, ext := range r.extension {
		n += len(ext)
	}
	return n
}

// LoopUtilization returns the mean slot occupancy per loop, identifying
// hot rings for power analysis and placement diagnostics.
func (r *Ring) LoopUtilization() []float64 {
	out := make([]float64, len(r.loops))
	if r.cycle == 0 {
		return out
	}
	for li, occ := range r.loopOccupied {
		out[li] = float64(occ) / float64(int64(r.loops[li].loop.Len())*int64(r.cycle))
	}
	return out
}

package sim

import (
	"math/rand"
	"testing"

	"routerless/internal/mesh"
	"routerless/internal/topo"
	"routerless/internal/traffic"
)

// Property: every delivered mesh packet obeys the latency lower bound
// 1 (inject) + hops*(routerDelay+1) + (flits-1) serialization, and its
// hop count is exactly the Manhattan distance (XY routing is minimal).
func TestMeshLatencyLowerBoundProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	for _, delay := range []int{0, 1, 2} {
		net := NewMesh(5, 5, MeshN(delay))
		var pkts []*Packet
		for i := 0; i < 300; i++ {
			src, dst := rng.Intn(25), rng.Intn(25)
			if src == dst {
				continue
			}
			p := &Packet{
				Src: src, Dst: dst,
				NumFlits: 1 + rng.Intn(3)*2, // 1, 3 or 5 flits
				Injected: net.Cycle(), Done: -1,
			}
			net.Inject(p)
			pkts = append(pkts, p)
			// Space injections out to stay below saturation.
			for k := 0; k < 4; k++ {
				net.Step()
			}
		}
		for i := 0; i < 20000 && net.InFlight() > 0; i++ {
			net.Step()
		}
		for _, p := range pkts {
			if p.Done < 0 {
				t.Fatalf("delay %d: packet %d->%d lost", delay, p.Src, p.Dst)
			}
			want := mesh.Hops(topo.NodeFromID(p.Src, 5), topo.NodeFromID(p.Dst, 5))
			if p.Hops != want {
				t.Fatalf("delay %d: %d->%d hops %d, want Manhattan %d",
					delay, p.Src, p.Dst, p.Hops, want)
			}
			min := 1 + p.Hops*(delay+1) + (p.NumFlits - 1)
			if lat := p.Done - p.Injected; lat < min {
				t.Fatalf("delay %d: %d->%d latency %d below bound %d",
					delay, p.Src, p.Dst, lat, min)
			}
		}
	}
}

// Property: mesh latency is monotone in router pipeline depth for the
// same traffic.
func TestMeshLatencyMonotoneInDelay(t *testing.T) {
	var prev float64
	for i, delay := range []int{0, 1, 2} {
		net := NewMesh(4, 4, MeshN(delay))
		src := traffic.NewInjector(4, 4, traffic.UniformRandom, 0.05, 256, 77)
		res := Run(net, src, RunConfig{WarmupCycles: 300, MeasureCycles: 3000, DrainCycles: 8000})
		if i > 0 && res.AvgLatency <= prev {
			t.Fatalf("latency not increasing with router delay: %v then %v", prev, res.AvgLatency)
		}
		prev = res.AvgLatency
	}
}

// Single-VC wormhole must still deliver everything (head-of-line blocking
// slows but never wedges XY routing).
func TestMeshSingleVCNoWedge(t *testing.T) {
	net := NewMesh(4, 4, MeshConfig{VCs: 1, BufferFlits: 2, RouterDelay: 1})
	src := traffic.NewInjector(4, 4, traffic.Transpose, 0.08, 256, 5)
	res := Run(net, src, RunConfig{WarmupCycles: 300, MeasureCycles: 2000, DrainCycles: 15000})
	if res.PacketsDone != res.PacketsSent {
		t.Fatalf("single VC wedged: sent %d done %d", res.PacketsSent, res.PacketsDone)
	}
}

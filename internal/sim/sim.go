// Package sim is the cycle-accurate NoC simulator used for all
// performance evaluation, standing in for Gem5/Garnet2.0 (see DESIGN.md).
//
// Two network models are provided:
//
//   - Ring: routerless ring interfaces (REC/DRL/IMR topologies) with
//     single-cycle per-hop forwarding, per-loop flit-sized buffers,
//     shared extension buffers and source routing via loop-selection
//     tables;
//   - Mesh: input-buffered virtual-channel wormhole routers with XY
//     routing, credit flow control and a configurable router pipeline
//     depth (2, 1, or 0 cycles, the paper's Mesh-2/Mesh-1/Mesh-0).
//
// Both expose the same Network interface, driven by a Runner that injects
// traffic, advances cycles, and collects statistics.
package sim

import (
	"fmt"

	"routerless/internal/stats"
	"routerless/internal/traffic"
)

// Packet is an in-flight packet; flits reference their parent packet.
type Packet struct {
	ID       int
	Src, Dst int
	Class    traffic.PacketClass
	NumFlits int
	// Injected is the cycle the packet entered the source queue;
	// Done is the cycle its last flit was ejected (-1 while in flight).
	Injected int
	Done     int
	// Hops records the path length experienced by the head flit.
	Hops int
	// remaining counts flits not yet ejected.
	remaining int
}

// Network is a cycle-accurate NoC model.
type Network interface {
	// Nodes returns the number of network endpoints.
	Nodes() int
	// Inject queues a packet at its source NI at the current cycle.
	Inject(p *Packet)
	// Step advances the network by one cycle.
	Step()
	// Cycle returns the current cycle number.
	Cycle() int
	// InFlight returns the number of packets injected but not delivered.
	InFlight() int
	// LinkUtilization returns the mean fraction of link slots occupied
	// since construction (for the dynamic-power model).
	LinkUtilization() float64
}

// Result aggregates a simulation run's measurements.
type Result struct {
	Cycles          int
	PacketsSent     int
	PacketsDone     int
	FlitsDone       int
	AvgLatency      float64 // cycles, injection -> tail ejection
	AvgHops         float64
	Throughput      float64 // accepted flits/node/cycle
	LinkUtilization float64
	LatencyP99      float64
	Saturated       bool
}

func (r Result) String() string {
	return fmt.Sprintf("cycles=%d sent=%d done=%d lat=%.2f hops=%.2f thr=%.4f util=%.3f",
		r.Cycles, r.PacketsSent, r.PacketsDone, r.AvgLatency, r.AvgHops, r.Throughput, r.LinkUtilization)
}

// Source produces injection requests per cycle; both traffic.Injector and
// traffic.AppInjector satisfy it.
type Source interface {
	Tick() []traffic.Request
}

// RunConfig controls a measurement run.
type RunConfig struct {
	// WarmupCycles are simulated before measurement starts.
	WarmupCycles int
	// MeasureCycles is the measured window (injection continues).
	MeasureCycles int
	// DrainCycles bounds the post-measurement drain phase; measurement
	// packets still in flight after the bound are abandoned (the run is
	// then flagged Saturated).
	DrainCycles int
}

// DefaultRunConfig mirrors the paper's synthetic methodology scaled for
// test budgets: statistics over a fixed window after warm-up.
func DefaultRunConfig() RunConfig {
	return RunConfig{WarmupCycles: 2000, MeasureCycles: 10000, DrainCycles: 20000}
}

// Run drives src over net per cfg and returns measurements for packets
// injected during the measurement window.
func Run(net Network, src Source, cfg RunConfig) Result {
	nextID := 0
	injectTick := func(measured bool) (sent int, packets []*Packet) {
		for _, r := range src.Tick() {
			p := &Packet{
				ID:  nextID,
				Src: r.Src, Dst: r.Dst,
				Class:    r.Class,
				NumFlits: r.NumFlits,
				Injected: net.Cycle(),
				Done:     -1,
			}
			nextID++
			net.Inject(p)
			if measured {
				packets = append(packets, p)
				sent++
			}
		}
		return sent, packets
	}

	for i := 0; i < cfg.WarmupCycles; i++ {
		injectTick(false)
		net.Step()
	}

	var measured []*Packet
	res := Result{}
	for i := 0; i < cfg.MeasureCycles; i++ {
		sent, ps := injectTick(true)
		res.PacketsSent += sent
		measured = append(measured, ps...)
		net.Step()
	}
	// Drain: no further injection.
	for i := 0; i < cfg.DrainCycles && pending(measured) > 0; i++ {
		net.Step()
	}

	var lat, hops []float64
	for _, p := range measured {
		if p.Done < 0 {
			res.Saturated = true
			continue
		}
		res.PacketsDone++
		res.FlitsDone += p.NumFlits
		lat = append(lat, float64(p.Done-p.Injected))
		hops = append(hops, float64(p.Hops))
	}
	res.Cycles = cfg.MeasureCycles
	res.AvgLatency = stats.Mean(lat)
	res.AvgHops = stats.Mean(hops)
	if len(lat) > 0 {
		res.LatencyP99 = stats.Percentile(lat, 99)
	}
	res.Throughput = float64(res.FlitsDone) / float64(cfg.MeasureCycles) / float64(net.Nodes())
	res.LinkUtilization = net.LinkUtilization()
	return res
}

func pending(ps []*Packet) int {
	n := 0
	for _, p := range ps {
		if p.Done < 0 {
			n++
		}
	}
	return n
}

// SweepPoint couples an injection rate with its Result.
type SweepPoint struct {
	Rate   float64
	Result Result
}

// Curve converts sweep points into a stats load-latency curve.
func Curve(points []SweepPoint) []stats.CurvePoint {
	out := make([]stats.CurvePoint, len(points))
	for i, p := range points {
		out[i] = stats.CurvePoint{
			InjectionRate: p.Rate,
			Latency:       p.Result.AvgLatency,
			Throughput:    p.Result.Throughput,
		}
	}
	return out
}

// Package sim is the cycle-accurate NoC simulator used for all
// performance evaluation, standing in for Gem5/Garnet2.0 (see DESIGN.md).
//
// Two network models are provided:
//
//   - Ring: routerless ring interfaces (REC/DRL/IMR topologies) with
//     single-cycle per-hop forwarding, per-loop flit-sized buffers,
//     shared extension buffers and source routing via loop-selection
//     tables;
//   - Mesh: input-buffered virtual-channel wormhole routers with XY
//     routing, credit flow control and a configurable router pipeline
//     depth (2, 1, or 0 cycles, the paper's Mesh-2/Mesh-1/Mesh-0).
//
// Both expose the same Network interface, driven by a Runner that injects
// traffic, advances cycles, and collects statistics.
package sim

import (
	"fmt"

	"routerless/internal/obs"
	"routerless/internal/stats"
	"routerless/internal/traffic"
)

// Packet is an in-flight packet; flits reference their parent packet.
type Packet struct {
	ID       int
	Src, Dst int
	Class    traffic.PacketClass
	NumFlits int
	// Injected is the cycle the packet entered the source queue;
	// Done is the cycle its last flit was ejected (-1 while in flight).
	Injected int
	Done     int
	// Hops records the path length experienced by the head flit.
	Hops int
	// remaining counts flits not yet ejected.
	remaining int
	// measured marks packets injected during the measurement window; the
	// run freelist reclaims unmeasured (warmup) packets on delivery.
	measured bool
}

// Network is a cycle-accurate NoC model.
type Network interface {
	// Nodes returns the number of network endpoints.
	Nodes() int
	// Inject queues a packet at its source NI at the current cycle.
	Inject(p *Packet)
	// Step advances the network by one cycle.
	Step()
	// Cycle returns the current cycle number.
	Cycle() int
	// InFlight returns the number of packets injected but not delivered.
	InFlight() int
	// LinkUtilization returns the mean fraction of link slots occupied
	// since construction (for the dynamic-power model).
	LinkUtilization() float64
}

// Result aggregates a simulation run's measurements. The latency
// percentiles are derived from a log-scaled histogram of per-packet
// latencies (relative error ≤ ~3%), not from a sorted sample slice.
type Result struct {
	Cycles          int
	PacketsSent     int
	PacketsDone     int
	FlitsDone       int
	AvgLatency      float64 // cycles, injection -> tail ejection
	AvgHops         float64
	Throughput      float64 // accepted flits/node/cycle
	LinkUtilization float64
	LatencyP50      float64
	LatencyP95      float64
	LatencyP99      float64
	Saturated       bool
}

func (r Result) String() string {
	s := fmt.Sprintf("cycles=%d sent=%d done=%d lat=%.2f p50=%.2f p95=%.2f p99=%.2f hops=%.2f thr=%.4f util=%.3f",
		r.Cycles, r.PacketsSent, r.PacketsDone, r.AvgLatency, r.LatencyP50, r.LatencyP95, r.LatencyP99, r.AvgHops, r.Throughput, r.LinkUtilization)
	if r.Saturated {
		s += " SATURATED"
	}
	return s
}

// Source produces injection requests per cycle; both traffic.Injector and
// traffic.AppInjector satisfy it.
type Source interface {
	Tick() []traffic.Request
}

// RunConfig controls a measurement run.
type RunConfig struct {
	// WarmupCycles are simulated before measurement starts.
	WarmupCycles int
	// MeasureCycles is the measured window (injection continues).
	MeasureCycles int
	// DrainCycles bounds the post-measurement drain phase; measurement
	// packets still in flight after the bound are abandoned (the run is
	// then flagged Saturated).
	DrainCycles int

	// Metrics, when non-nil, receives run telemetry: the packet latency
	// histogram (sim.latency_cycles), injected/ejected flit counters, and
	// in-flight / buffer-occupancy / interval-throughput gauges.
	Metrics *obs.Registry
	// Events, when non-nil, receives structured run events: run_start and
	// run_stop at info level, one interval event per probe sample at debug
	// level.
	Events *obs.Logger
	// ProbeEvery is the cycle interval between telemetry samples in the
	// measurement and drain phases. Zero picks MeasureCycles/20 when any
	// of Metrics, Events, or OnInterval is set, and disables interval
	// probes otherwise. The probe costs one branch per cycle when idle.
	ProbeEvery int
	// OnInterval, when set, observes every probe sample (e.g. to print
	// progress lines to stderr).
	OnInterval func(IntervalStats)

	// Trace, when non-nil, records phase spans (sim.run wrapping
	// sim.warmup / sim.measure / sim.drain) on the given shard. The shard
	// must be owned by the goroutine calling Run. Nil tracing costs one
	// nil check per phase, not per cycle.
	Trace *obs.TraceShard
}

// DefaultRunConfig mirrors the paper's synthetic methodology scaled for
// test budgets: statistics over a fixed window after warm-up.
func DefaultRunConfig() RunConfig {
	return RunConfig{WarmupCycles: 2000, MeasureCycles: 10000, DrainCycles: 20000}
}

// Run drives src over net per cfg and returns measurements for packets
// injected during the measurement window.
//
// Run owns a packet freelist for the duration of the run: warmup packets
// are reclaimed as they deliver (via the in-package recycle hook on Ring
// and Mesh) and reused for measurement traffic, so the steady-state
// injection path performs no heap allocation. Measured packets are held
// until statistics are computed and released with the run.
func Run(net Network, src Source, cfg RunConfig) Result {
	probe := newRunProbe(net, cfg)

	// One pool per run, one network per run: attach the reclaim hook for
	// the network models this package owns. Unknown Network implementations
	// simply skip recycling (packets fall to the GC as before).
	//
	// The hook fires for every completed packet, so it doubles as an O(1)
	// in-flight counter for the drain phase: measuredLeft counts measured
	// packets not yet delivered, replacing the per-drain-cycle rescan of
	// the whole measured ledger. Packets lost to loop failures never
	// complete and so never decrement it — exactly the packets the rescan
	// also counted as pending for the full drain bound.
	pkts := pool[Packet]{}
	measuredLeft := 0
	hooked := false
	recycle := func(p *Packet) {
		if p.measured {
			measuredLeft--
		} else {
			pkts.put(p)
		}
	}
	switch n := net.(type) {
	case *Ring:
		prev := n.recycle
		n.recycle = recycle
		hooked = true
		defer func() { n.recycle = prev }()
	case *Mesh:
		prev := n.recycle
		n.recycle = recycle
		hooked = true
		defer func() { n.recycle = prev }()
	}

	run := cfg.Trace.Start(obs.SpanSimRun)
	defer run.End()

	nextID := 0
	warmSent := 0
	warm := cfg.Trace.Start(obs.SpanSimWarmup)
	for i := 0; i < cfg.WarmupCycles; i++ {
		for _, r := range src.Tick() {
			p := pkts.get()
			*p = Packet{
				ID:  nextID,
				Src: r.Src, Dst: r.Dst,
				Class:    r.Class,
				NumFlits: r.NumFlits,
				Injected: net.Cycle(),
				Done:     -1,
			}
			nextID++
			warmSent++
			net.Inject(p)
		}
		net.Step()
	}
	warm.End()

	// Size the measurement ledger from the warmup injection rate so
	// appends stay within capacity in steady state.
	expected := 64
	if cfg.WarmupCycles > 0 {
		expected += warmSent * cfg.MeasureCycles / cfg.WarmupCycles
		expected += expected / 8
	}
	measured := make([]*Packet, 0, expected)
	res := Result{}
	meas := cfg.Trace.Start(obs.SpanSimMeasure)
	for i := 0; i < cfg.MeasureCycles; i++ {
		for _, r := range src.Tick() {
			p := pkts.get()
			*p = Packet{
				ID:  nextID,
				Src: r.Src, Dst: r.Dst,
				Class:    r.Class,
				NumFlits: r.NumFlits,
				Injected: net.Cycle(),
				Done:     -1,
				measured: true,
			}
			nextID++
			net.Inject(p)
			measured = append(measured, p)
			measuredLeft++
			res.PacketsSent++
		}
		net.Step()
		probe.tick("measure")
	}
	meas.End()
	// Drain: no further injection. With the recycle hook installed the
	// stop condition is the O(1) counter; unknown Network implementations
	// fall back to rescanning the ledger.
	drain := cfg.Trace.Start(obs.SpanSimDrain)
	for i := 0; i < cfg.DrainCycles; i++ {
		if hooked {
			if measuredLeft == 0 {
				break
			}
		} else if pending(measured) == 0 {
			break
		}
		net.Step()
		probe.tick("drain")
	}
	drain.End()

	// One pass over the ledger: running sums for the means (same
	// accumulation order the old sample slices produced) and a run-local
	// log-scaled histogram for the percentiles.
	latHist := obs.NewHistogram()
	var latSum, hopSum float64
	for _, p := range measured {
		if p.Done < 0 {
			res.Saturated = true
			continue
		}
		res.PacketsDone++
		res.FlitsDone += p.NumFlits
		l := float64(p.Done - p.Injected)
		latSum += l
		hopSum += float64(p.Hops)
		latHist.Observe(l)
	}
	res.Cycles = cfg.MeasureCycles
	if res.PacketsDone > 0 {
		res.AvgLatency = latSum / float64(res.PacketsDone)
		res.AvgHops = hopSum / float64(res.PacketsDone)
		hs := latHist.SnapshotHist()
		res.LatencyP50 = hs.Quantile(0.50)
		res.LatencyP95 = hs.Quantile(0.95)
		res.LatencyP99 = hs.Quantile(0.99)
	}
	res.Throughput = float64(res.FlitsDone) / float64(cfg.MeasureCycles) / float64(net.Nodes())
	res.LinkUtilization = net.LinkUtilization()
	probe.finish(res, latHist)
	return res
}

// IntervalStats is one periodic telemetry sample of a running simulation.
type IntervalStats struct {
	// Cycle is the network cycle at the sample; Phase is "measure" or
	// "drain".
	Cycle int
	Phase string
	// InjectedFlits/EjectedFlits are deltas over the interval; zero when
	// the network does not expose flit counters.
	InjectedFlits, EjectedFlits int64
	// InFlight is the number of packets injected but not delivered.
	InFlight int
	// BufferOccupancy counts flits parked in extension buffers (ring) or
	// input-VC FIFOs (mesh); -1 when the network does not report it.
	BufferOccupancy int
	// ActiveLoops/ActiveRouters count the units a sparse cycle actually
	// steps (occupied loops for the ring, busy routers for the mesh); -1
	// when the network does not report the gauge. Dense-stepping networks
	// report the same counts from ground-truth state, so the fields also
	// serve the dense-vs-sparse oracle.
	ActiveLoops, ActiveRouters int
	// Throughput is the accepted flits/node/cycle over the interval.
	Throughput float64
}

// flitCounts is implemented by networks that count flits on and off the
// fabric (Ring and Mesh both do).
type flitCounts interface {
	InjectedFlits() int64
	DeliveredFlits() int64
}

// bufferOccupancy is implemented by networks that can report how many
// flits are currently parked in buffers.
type bufferOccupancy interface {
	BufferOccupancy() int
}

// activeLoops / activeRouters are implemented by networks with a sparse
// stepping active set (Ring and Mesh respectively).
type activeLoops interface {
	ActiveLoops() int
}

type activeRouters interface {
	ActiveRouters() int
}

// runProbe samples the network every ProbeEvery cycles and fans the sample
// out to the metrics registry, the event logger, and the OnInterval
// callback. A nil probe (telemetry disabled) costs one branch per cycle.
type runProbe struct {
	net   Network
	cfg   RunConfig
	every int
	since int // cycles since the last sample

	fc  flitCounts      // nil when the network has no flit counters
	occ bufferOccupancy // nil when the network has no occupancy probe
	al  activeLoops     // nil when the network has no loop active set
	ar  activeRouters   // nil when the network has no router active set

	lastInj, lastEject int64

	injected, ejected    *obs.Counter
	inFlight, bufOcc     *obs.Gauge
	actLoops, actRouters *obs.Gauge
	intervalThr          *obs.Gauge
	intervalThrHist      *obs.Histogram
	latency              *obs.Histogram
}

func newRunProbe(net Network, cfg RunConfig) *runProbe {
	if cfg.Metrics == nil && cfg.Events == nil && cfg.OnInterval == nil {
		return nil
	}
	every := cfg.ProbeEvery
	if every <= 0 {
		every = cfg.MeasureCycles / 20
		if every < 1 {
			every = 1
		}
	}
	p := &runProbe{net: net, cfg: cfg, every: every}
	p.fc, _ = net.(flitCounts)
	p.occ, _ = net.(bufferOccupancy)
	p.al, _ = net.(activeLoops)
	p.ar, _ = net.(activeRouters)
	if p.fc != nil {
		p.lastInj, p.lastEject = p.fc.InjectedFlits(), p.fc.DeliveredFlits()
	}
	reg := cfg.Metrics
	p.injected = reg.Counter("sim.flits_injected")
	p.ejected = reg.Counter("sim.flits_ejected")
	p.inFlight = reg.Gauge("sim.inflight_packets")
	p.bufOcc = reg.Gauge("sim.buffer_occupancy")
	// Register only the gauge the network actually reports, so ring
	// snapshots don't carry a dead mesh gauge and vice versa (Set on a
	// nil gauge is a no-op).
	if p.al != nil {
		p.actLoops = reg.Gauge("sim.active_loops")
	}
	if p.ar != nil {
		p.actRouters = reg.Gauge("sim.active_routers")
	}
	p.intervalThr = reg.Gauge("sim.interval_throughput")
	p.intervalThrHist = reg.Histogram("sim.interval_throughput_hist")
	p.latency = reg.Histogram("sim.latency_cycles")
	cfg.Events.Info(obs.EventRunStart, map[string]any{
		"nodes":   net.Nodes(),
		"warmup":  cfg.WarmupCycles,
		"measure": cfg.MeasureCycles,
		"drain":   cfg.DrainCycles,
	})
	return p
}

// tick advances the probe by one cycle and samples when the interval
// elapses.
func (p *runProbe) tick(phase string) {
	if p == nil {
		return
	}
	p.since++
	if p.since < p.every {
		return
	}
	p.since = 0

	s := IntervalStats{
		Cycle:           p.net.Cycle(),
		Phase:           phase,
		InFlight:        p.net.InFlight(),
		BufferOccupancy: -1,
		ActiveLoops:     -1,
		ActiveRouters:   -1,
	}
	if p.fc != nil {
		inj, eject := p.fc.InjectedFlits(), p.fc.DeliveredFlits()
		s.InjectedFlits, s.EjectedFlits = inj-p.lastInj, eject-p.lastEject
		p.lastInj, p.lastEject = inj, eject
		s.Throughput = float64(s.EjectedFlits) / float64(p.every) / float64(p.net.Nodes())
	}
	if p.occ != nil {
		s.BufferOccupancy = p.occ.BufferOccupancy()
	}
	if p.al != nil {
		s.ActiveLoops = p.al.ActiveLoops()
	}
	if p.ar != nil {
		s.ActiveRouters = p.ar.ActiveRouters()
	}

	p.injected.Add(s.InjectedFlits)
	p.ejected.Add(s.EjectedFlits)
	p.inFlight.Set(float64(s.InFlight))
	if s.BufferOccupancy >= 0 {
		p.bufOcc.Set(float64(s.BufferOccupancy))
	}
	if s.ActiveLoops >= 0 {
		p.actLoops.Set(float64(s.ActiveLoops))
	}
	if s.ActiveRouters >= 0 {
		p.actRouters.Set(float64(s.ActiveRouters))
	}
	p.intervalThr.Set(s.Throughput)
	p.intervalThrHist.Observe(s.Throughput)

	if p.cfg.Events.Enabled(obs.LevelDebug) {
		kv := map[string]any{
			"cycle":      s.Cycle,
			"phase":      s.Phase,
			"injected":   s.InjectedFlits,
			"ejected":    s.EjectedFlits,
			"inflight":   s.InFlight,
			"buffer_occ": s.BufferOccupancy,
			"throughput": s.Throughput,
		}
		if s.ActiveLoops >= 0 {
			kv["active_loops"] = s.ActiveLoops
		}
		if s.ActiveRouters >= 0 {
			kv["active_routers"] = s.ActiveRouters
		}
		p.cfg.Events.Debug(obs.EventInterval, kv)
	}
	if p.cfg.OnInterval != nil {
		p.cfg.OnInterval(s)
	}
}

// finish records the end-of-run measurements and emits the run_stop event.
// The run-local latency histogram is merged into the registry's in one
// bucket-wise pass instead of re-observing every packet.
func (p *runProbe) finish(res Result, latHist *obs.Histogram) {
	if p == nil {
		return
	}
	p.latency.Merge(latHist)
	reg := p.cfg.Metrics
	reg.Counter("sim.packets_sent").Add(int64(res.PacketsSent))
	reg.Counter("sim.packets_done").Add(int64(res.PacketsDone))
	reg.Counter("sim.flits_done").Add(int64(res.FlitsDone))
	p.cfg.Events.Info(obs.EventRunStop, map[string]any{
		"cycles":      res.Cycles,
		"sent":        res.PacketsSent,
		"done":        res.PacketsDone,
		"avg_latency": res.AvgLatency,
		"p50_latency": res.LatencyP50,
		"p95_latency": res.LatencyP95,
		"p99_latency": res.LatencyP99,
		"avg_hops":    res.AvgHops,
		"throughput":  res.Throughput,
		"link_util":   res.LinkUtilization,
		"saturated":   res.Saturated,
	})
}

func pending(ps []*Packet) int {
	n := 0
	for _, p := range ps {
		if p.Done < 0 {
			n++
		}
	}
	return n
}

// SweepPoint couples an injection rate with its Result.
type SweepPoint struct {
	Rate   float64
	Result Result
}

// Curve converts sweep points into a stats load-latency curve.
func Curve(points []SweepPoint) []stats.CurvePoint {
	out := make([]stats.CurvePoint, len(points))
	for i, p := range points {
		out[i] = stats.CurvePoint{
			InjectionRate: p.Rate,
			Latency:       p.Result.AvgLatency,
			Throughput:    p.Result.Throughput,
		}
	}
	return out
}

package sim

import (
	"testing"

	"routerless/internal/rec"
	"routerless/internal/traffic"
)

func TestLoopUtilizationBounds(t *testing.T) {
	tp := rec.MustGenerate(4)
	r := NewRing(tp, DefaultRingConfig())
	src := traffic.NewInjector(4, 4, traffic.UniformRandom, 0.3, 128, 6)
	for i := 0; i < 2000; i++ {
		for _, req := range src.Tick() {
			r.Inject(&Packet{Src: req.Src, Dst: req.Dst, NumFlits: req.NumFlits, Done: -1})
		}
		r.Step()
	}
	util := r.LoopUtilization()
	if len(util) != tp.NumLoops() {
		t.Fatalf("len = %d, want %d", len(util), tp.NumLoops())
	}
	any := false
	for li, u := range util {
		if u < 0 || u > 1 {
			t.Fatalf("loop %d utilization %v out of [0,1]", li, u)
		}
		if u > 0 {
			any = true
		}
	}
	if !any {
		t.Fatal("no loop carried traffic at 0.3 flits/node/cycle")
	}
}

func TestOnDeliverObservesEveryPacket(t *testing.T) {
	tp := rec.MustGenerate(4)
	r := NewRing(tp, DefaultRingConfig())
	seen := 0
	r.OnDeliver(func(p *Packet) {
		if p.Done < 0 || p.Hops < 1 {
			t.Errorf("observer saw incomplete packet %+v", p)
		}
		seen++
	})
	src := traffic.NewInjector(4, 4, traffic.UniformRandom, 0.05, 128, 12)
	res := Run(r, src, RunConfig{WarmupCycles: 100, MeasureCycles: 1000, DrainCycles: 4000})
	// Observer counts warm-up packets too; it must see at least the
	// measured ones.
	if seen < res.PacketsDone {
		t.Fatalf("observer saw %d, measured %d", seen, res.PacketsDone)
	}
}

func TestLoopUtilizationIdleNetwork(t *testing.T) {
	tp := rec.MustGenerate(4)
	r := NewRing(tp, DefaultRingConfig())
	for i := 0; i < 100; i++ {
		r.Step()
	}
	for li, u := range r.LoopUtilization() {
		if u != 0 {
			t.Fatalf("idle loop %d utilization %v", li, u)
		}
	}
}

func TestHotspotTrafficStressesEjection(t *testing.T) {
	tp := rec.MustGenerate(4)
	r := NewRing(tp, RingConfig{EjectPorts: 1, ExtensionBuffers: 2, InjectPerCycle: 1})
	src := traffic.NewHotspotInjector(4, 4, 0.4, 0.9, []int{5}, 128, 8)
	res := Run(r, src, RunConfig{WarmupCycles: 200, MeasureCycles: 2000, DrainCycles: 6000})
	if res.PacketsDone == 0 {
		t.Fatal("hotspot run delivered nothing")
	}
	// Heavy single-target traffic must trigger either extension-buffer
	// parking or re-circulation — the ejection-contention machinery.
	if r.Circulations() == 0 && res.AvgLatency < 5 {
		t.Log("no circulations observed (extension buffers absorbed everything)")
	}
}

func TestFlitCountersConsistent(t *testing.T) {
	tp := rec.MustGenerate(4)
	r := NewRing(tp, DefaultRingConfig())
	src := traffic.NewInjector(4, 4, traffic.UniformRandom, 0.05, 128, 14)
	Run(r, src, RunConfig{WarmupCycles: 100, MeasureCycles: 1000, DrainCycles: 4000})
	if r.DeliveredFlits() != r.InjectedFlits() {
		t.Fatalf("injected %d flits, delivered %d after drain",
			r.InjectedFlits(), r.DeliveredFlits())
	}
	if r.DroppedFlits() != 0 {
		t.Fatalf("dropped %d flits without failures", r.DroppedFlits())
	}
}

func TestNeighborTrafficLowLatency(t *testing.T) {
	tp := rec.MustGenerate(4)
	near := NewRing(tp, DefaultRingConfig())
	res := Run(near, traffic.NewNeighborInjector(4, 4, 0.1, 128, 3),
		RunConfig{WarmupCycles: 200, MeasureCycles: 2000, DrainCycles: 4000})
	far := NewRing(tp, DefaultRingConfig())
	resFar := Run(far, traffic.NewInjector(4, 4, traffic.BitComplement, 0.1, 128, 3),
		RunConfig{WarmupCycles: 200, MeasureCycles: 2000, DrainCycles: 4000})
	if res.AvgLatency >= resFar.AvgLatency {
		t.Fatalf("neighbor latency %.2f not below bit-complement %.2f",
			res.AvgLatency, resFar.AvgLatency)
	}
}

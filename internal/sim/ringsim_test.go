package sim

import (
	"testing"

	"routerless/internal/rec"
	"routerless/internal/topo"
	"routerless/internal/traffic"
)

// singlePacket runs one packet through an otherwise idle network and
// returns its latency and hop count.
func singlePacket(t *testing.T, net Network, src, dst, flits int) (latency, hops int) {
	t.Helper()
	p := &Packet{Src: src, Dst: dst, Class: traffic.Data, NumFlits: flits, Injected: net.Cycle(), Done: -1}
	net.Inject(p)
	for i := 0; i < 10000 && p.Done < 0; i++ {
		net.Step()
	}
	if p.Done < 0 {
		t.Fatalf("packet %d->%d never delivered", src, dst)
	}
	return p.Done - p.Injected, p.Hops
}

func TestRingZeroLoadLatency(t *testing.T) {
	tp := topo.NewSquare(2, 0)
	if err := tp.AddLoop(topo.MustLoop(0, 0, 1, 1, topo.Clockwise)); err != nil {
		t.Fatal(err)
	}
	r := NewRing(tp, DefaultRingConfig())
	// (0,0) -> (0,1): 1 hop on the clockwise loop. Single flit: 1 cycle
	// injection + 1 hop + ejection on arrival cycle = 2 cycles.
	lat, hops := singlePacket(t, r, 0, 1, 1)
	if hops != 1 {
		t.Fatalf("hops = %d, want 1", hops)
	}
	if lat != 2 {
		t.Fatalf("latency = %d, want 2", lat)
	}
}

func TestRingSerializationLatency(t *testing.T) {
	tp := topo.NewSquare(2, 0)
	if err := tp.AddLoop(topo.MustLoop(0, 0, 1, 1, topo.Clockwise)); err != nil {
		t.Fatal(err)
	}
	r := NewRing(tp, DefaultRingConfig())
	// 5-flit packet over 1 hop: tail injected 4 cycles after head.
	lat, _ := singlePacket(t, r, 0, 1, 5)
	if lat != 6 {
		t.Fatalf("latency = %d, want 6 (1 inject + 1 hop + 4 serialization)", lat)
	}
}

func TestRingHopsMatchRoutingDistance(t *testing.T) {
	tp := rec.MustGenerate(4)
	rt := topo.BuildRoutingTable(tp)
	r := NewRing(tp, DefaultRingConfig())
	for src := 0; src < 16; src++ {
		for dst := 0; dst < 16; dst++ {
			if src == dst {
				continue
			}
			want := rt.Dist(topo.NodeFromID(src, 4), topo.NodeFromID(dst, 4))
			r := NewRing(tp, DefaultRingConfig())
			_, hops := singlePacket(t, r, src, dst, 1)
			if hops != want {
				t.Fatalf("%d->%d: hops %d, want %d", src, dst, hops, want)
			}
		}
	}
	_ = r
}

func TestRingPanicsOnUnreachable(t *testing.T) {
	tp := topo.NewSquare(4, 0)
	if err := tp.AddLoop(topo.MustLoop(0, 0, 1, 1, topo.Clockwise)); err != nil {
		t.Fatal(err)
	}
	r := NewRing(tp, DefaultRingConfig())
	defer func() {
		if recover() == nil {
			t.Fatal("Inject of unreachable packet did not panic")
		}
	}()
	r.Inject(&Packet{Src: 0, Dst: 15, NumFlits: 1, Done: -1})
}

func TestRingConservation(t *testing.T) {
	tp := rec.MustGenerate(4)
	r := NewRing(tp, DefaultRingConfig())
	src := traffic.NewInjector(4, 4, traffic.UniformRandom, 0.05, 128, 9)
	res := Run(r, src, RunConfig{WarmupCycles: 200, MeasureCycles: 2000, DrainCycles: 5000})
	if res.Saturated {
		t.Fatal("light load should not saturate")
	}
	if res.PacketsDone != res.PacketsSent {
		t.Fatalf("sent %d, done %d", res.PacketsSent, res.PacketsDone)
	}
	if res.AvgLatency <= 0 || res.AvgHops <= 0 {
		t.Fatalf("bad stats: %+v", res)
	}
}

func TestRingLatencyMonotonicInLoad(t *testing.T) {
	tp := rec.MustGenerate(6)
	var prev float64
	for i, rate := range []float64{0.02, 0.30} {
		r := NewRing(tp, DefaultRingConfig())
		src := traffic.NewInjector(6, 6, traffic.UniformRandom, rate, 128, 3)
		res := Run(r, src, RunConfig{WarmupCycles: 500, MeasureCycles: 3000, DrainCycles: 8000})
		if i > 0 && res.AvgLatency < prev {
			t.Fatalf("latency decreased with load: %v -> %v", prev, res.AvgLatency)
		}
		prev = res.AvgLatency
	}
}

func TestRingEjectionContentionUsesExtensionBuffers(t *testing.T) {
	// Two loops delivering to the same node in the same cycle with a
	// single eject port: the second flit parks in an extension buffer
	// rather than circulating.
	tp := topo.NewSquare(3, 0)
	if err := tp.AddLoop(topo.MustLoop(0, 0, 1, 1, topo.Clockwise)); err != nil {
		t.Fatal(err)
	}
	if err := tp.AddLoop(topo.MustLoop(0, 0, 2, 2, topo.Counterclockwise)); err != nil {
		t.Fatal(err)
	}
	r := NewRing(tp, RingConfig{EjectPorts: 1, ExtensionBuffers: 4, InjectPerCycle: 2})
	// Both packets arrive at (1,1)... choose destinations so they collide
	// at node (0,1): loop1 CW (0,0)->(0,1) 1 hop; loop2 CCW (0,0)->(0,1)
	// is 7 hops, so instead inject from different sources.
	pa := &Packet{Src: 0, Dst: 1, NumFlits: 1, Done: -1} // via loop 1, 1 hop
	pb := &Packet{Src: 4, Dst: 3, NumFlits: 1, Done: -1} // (1,1)->(1,0)? not on loops...
	_ = pb
	r.Inject(pa)
	for i := 0; i < 100 && pa.Done < 0; i++ {
		r.Step()
	}
	if pa.Done < 0 {
		t.Fatal("packet not delivered")
	}
	if r.Circulations() != 0 {
		t.Fatalf("unexpected circulations: %d", r.Circulations())
	}
}

func TestRingThroughputUnderHeavyLoad(t *testing.T) {
	tp := rec.MustGenerate(4)
	r := NewRing(tp, DefaultRingConfig())
	src := traffic.NewInjector(4, 4, traffic.UniformRandom, 0.9, 128, 5)
	res := Run(r, src, RunConfig{WarmupCycles: 500, MeasureCycles: 2000, DrainCycles: 1000})
	// Saturated, but throughput must remain positive and below offered.
	if res.Throughput <= 0 {
		t.Fatalf("throughput = %v", res.Throughput)
	}
	if res.Throughput > 0.9 {
		t.Fatalf("accepted %v exceeds offered", res.Throughput)
	}
	if res.LinkUtilization <= 0 || res.LinkUtilization > 1 {
		t.Fatalf("utilization = %v", res.LinkUtilization)
	}
}

func TestRingDeterminism(t *testing.T) {
	tp := rec.MustGenerate(4)
	run := func() Result {
		r := NewRing(tp, DefaultRingConfig())
		src := traffic.NewInjector(4, 4, traffic.Transpose, 0.1, 128, 77)
		return Run(r, src, RunConfig{WarmupCycles: 100, MeasureCycles: 1000, DrainCycles: 2000})
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("nondeterministic results:\n%v\n%v", a, b)
	}
}

package sim

import (
	"math/rand"
	"sort"
	"testing"
)

// TestActiveSetSortedAndDeduped pins the two properties byte-identity
// rests on: membership is exact (duplicates collapse) and the list is
// always in ascending order, whatever the insertion order.
func TestActiveSetSortedAndDeduped(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(64)
		s := newActiveSet(n)
		want := map[int32]bool{}
		for k := 0; k < 3*n; k++ {
			v := rng.Intn(n)
			s.add(v)
			want[int32(v)] = true
		}
		if s.len() != len(want) {
			t.Fatalf("trial %d: len %d, want %d", trial, s.len(), len(want))
		}
		if !sort.SliceIsSorted(s.list, func(i, j int) bool { return s.list[i] < s.list[j] }) {
			t.Fatalf("trial %d: list not sorted: %v", trial, s.list)
		}
		for _, v := range s.list {
			if !want[v] {
				t.Fatalf("trial %d: phantom member %d", trial, v)
			}
			if !s.mark[v] {
				t.Fatalf("trial %d: member %d not marked", trial, v)
			}
		}
	}
}

// TestActiveSetClear checks clear resets both the list and every mark so
// the set is reusable without reallocation.
func TestActiveSetClear(t *testing.T) {
	s := newActiveSet(8)
	for _, v := range []int{5, 1, 7, 1, 3} {
		s.add(v)
	}
	base := &s.list[:1][0]
	s.clear()
	if s.len() != 0 {
		t.Fatalf("len %d after clear, want 0", s.len())
	}
	for i, m := range s.mark {
		if m {
			t.Fatalf("mark[%d] still set after clear", i)
		}
	}
	s.add(2)
	if &s.list[0] != base {
		t.Fatal("clear lost the preallocated backing array")
	}
}

// TestActiveSetAddNoAlloc pins the steady-state contract: adds into a
// preallocated set never touch the heap.
func TestActiveSetAddNoAlloc(t *testing.T) {
	s := newActiveSet(128)
	allocs := testing.AllocsPerRun(100, func() {
		s.clear()
		for v := 127; v >= 0; v-- {
			s.add(v)
		}
	})
	if allocs != 0 {
		t.Fatalf("add/clear allocates %.1f times, want 0", allocs)
	}
}

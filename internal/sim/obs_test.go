package sim

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"routerless/internal/obs"
	"routerless/internal/rec"
	"routerless/internal/traffic"
)

// runInstrumented drives a small REC ring with full telemetry enabled.
func runInstrumented(t *testing.T, reg *obs.Registry, events *obs.Logger, onInterval func(IntervalStats)) Result {
	t.Helper()
	topo := rec.MustGenerate(4)
	src := traffic.NewInjector(4, 4, traffic.UniformRandom, 0.02, 128, 1)
	cfg := RunConfig{
		WarmupCycles: 100, MeasureCycles: 400, DrainCycles: 800,
		Metrics: reg, Events: events, ProbeEvery: 50, OnInterval: onInterval,
	}
	return Run(NewRing(topo, DefaultRingConfig()), src, cfg)
}

func TestRunPopulatesMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	res := runInstrumented(t, reg, nil, nil)
	if res.PacketsDone == 0 {
		t.Fatal("no packets delivered")
	}
	s := reg.Snapshot()
	lat := s.Histograms["sim.latency_cycles"]
	if lat.Count != int64(res.PacketsDone) {
		t.Fatalf("latency histogram count = %d, want %d", lat.Count, res.PacketsDone)
	}
	if len(lat.Buckets) == 0 {
		t.Fatal("latency histogram has no buckets")
	}
	if s.Counters["sim.packets_sent"] != int64(res.PacketsSent) {
		t.Fatalf("packets_sent = %d, want %d", s.Counters["sim.packets_sent"], res.PacketsSent)
	}
	if s.Counters["sim.flits_ejected"] == 0 {
		t.Fatal("no ejected flits counted")
	}
	if s.Histograms["sim.interval_throughput_hist"].Count == 0 {
		t.Fatal("no interval throughput samples")
	}
	if _, ok := s.Gauges["sim.buffer_occupancy"]; !ok {
		t.Fatal("ring buffer occupancy gauge missing")
	}
}

func TestRunEmitsEventsAndIntervals(t *testing.T) {
	var buf bytes.Buffer
	var intervals []IntervalStats
	runInstrumented(t, nil, obs.NewLogger(&buf, obs.LevelDebug), func(s IntervalStats) {
		intervals = append(intervals, s)
	})
	if len(intervals) < 400/50 {
		t.Fatalf("got %d interval callbacks, want >= %d", len(intervals), 400/50)
	}
	for _, s := range intervals {
		if s.Phase != "measure" && s.Phase != "drain" {
			t.Fatalf("bad phase %q", s.Phase)
		}
		if s.BufferOccupancy < 0 {
			t.Fatal("ring must report buffer occupancy")
		}
	}

	kinds := map[string]int{}
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var e struct {
			Event string `json:"event"`
		}
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("bad event line: %v", err)
		}
		kinds[e.Event]++
	}
	if kinds[obs.EventRunStart] != 1 || kinds[obs.EventRunStop] != 1 {
		t.Fatalf("run_start/run_stop = %d/%d, want 1/1", kinds[obs.EventRunStart], kinds[obs.EventRunStop])
	}
	if kinds[obs.EventInterval] != len(intervals) {
		t.Fatalf("interval events = %d, callbacks = %d", kinds[obs.EventInterval], len(intervals))
	}
}

func TestMeshReportsProbes(t *testing.T) {
	m := NewMesh(4, 4, MeshN(1))
	src := traffic.NewInjector(4, 4, traffic.UniformRandom, 0.02, 256, 1)
	reg := obs.NewRegistry()
	res := Run(m, src, RunConfig{
		WarmupCycles: 100, MeasureCycles: 400, DrainCycles: 800,
		Metrics: reg, ProbeEvery: 50,
	})
	if res.PacketsDone == 0 {
		t.Fatal("no packets delivered")
	}
	if m.InjectedFlits() == 0 || m.DeliveredFlits() == 0 {
		t.Fatal("mesh flit counters did not advance")
	}
	if m.BufferOccupancy() < 0 {
		t.Fatal("negative buffer occupancy")
	}
	if reg.Snapshot().Counters["sim.flits_ejected"] == 0 {
		t.Fatal("mesh ejected flits not counted")
	}
}

func TestRunRecordsPhaseSpans(t *testing.T) {
	tr := obs.NewTracer(256)
	topo := rec.MustGenerate(4)
	src := traffic.NewInjector(4, 4, traffic.UniformRandom, 0.02, 128, 1)
	Run(NewRing(topo, DefaultRingConfig()), src, RunConfig{
		WarmupCycles: 50, MeasureCycles: 200, DrainCycles: 400,
		Trace: tr.Shard("sim.test"),
	})
	byKind := map[string]obs.SpanStat{}
	for _, s := range tr.Aggregate() {
		byKind[s.Kind] = s
	}
	for _, kind := range []string{"sim.run", "sim.warmup", "sim.measure", "sim.drain"} {
		if byKind[kind].Count != 1 {
			t.Fatalf("span %s count = %d, want 1 (stats: %+v)", kind, byKind[kind].Count, byKind)
		}
	}
	run := byKind["sim.run"]
	phases := byKind["sim.warmup"].TotalNS + byKind["sim.measure"].TotalNS + byKind["sim.drain"].TotalNS
	if run.TotalNS < phases {
		t.Fatalf("sim.run total %d < sum of phases %d", run.TotalNS, phases)
	}
}

func TestResultStringIncludesP99AndSaturated(t *testing.T) {
	r := Result{Cycles: 10, AvgLatency: 5, LatencyP50: 4.5, LatencyP95: 8, LatencyP99: 9.5}
	s := r.String()
	for _, want := range []string{"p50=4.50", "p95=8.00", "p99=9.50"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() = %q, missing %q", s, want)
		}
	}
	if strings.Contains(s, "SATURATED") {
		t.Fatalf("String() = %q", s)
	}
	r.Saturated = true
	if s := r.String(); !strings.Contains(s, "SATURATED") {
		t.Fatalf("String() = %q", s)
	}
}

// TestRunLatencyPercentilesFromHistogram pins the satellite contract: the
// reported percentiles come from the log-scaled histogram, so they are
// ordered, bracket the mean sensibly, and match the registry histogram's
// own quantiles.
func TestRunLatencyPercentilesFromHistogram(t *testing.T) {
	reg := obs.NewRegistry()
	res := runInstrumented(t, reg, nil, nil)
	if res.LatencyP50 <= 0 || res.LatencyP50 > res.LatencyP95 || res.LatencyP95 > res.LatencyP99 {
		t.Fatalf("percentiles not ordered: p50=%v p95=%v p99=%v", res.LatencyP50, res.LatencyP95, res.LatencyP99)
	}
	hs := reg.Snapshot().Histograms["sim.latency_cycles"]
	if got, want := hs.Quantile(0.99), res.LatencyP99; got != want {
		t.Fatalf("registry q99 = %v, result p99 = %v (should both come from the same histogram)", got, want)
	}
	if rel := (res.LatencyP99 - res.AvgLatency) / res.AvgLatency; rel < -1 {
		t.Fatalf("p99 %v implausible vs mean %v", res.LatencyP99, res.AvgLatency)
	}
}

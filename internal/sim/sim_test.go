package sim

import (
	"testing"

	"routerless/internal/rec"
	"routerless/internal/stats"
	"routerless/internal/topo"
	"routerless/internal/traffic"
)

func nodeOf(id, cols int) topo.Node { return topo.NodeFromID(id, cols) }

func mustRec(t *testing.T, n int) *topo.Topology {
	t.Helper()
	return rec.MustGenerate(n)
}

func TestRunCountsOnlyMeasurementWindow(t *testing.T) {
	tp := mustRec(t, 4)
	r := NewRing(tp, DefaultRingConfig())
	src := traffic.NewInjector(4, 4, traffic.UniformRandom, 0.1, 128, 2)
	cfg := RunConfig{WarmupCycles: 500, MeasureCycles: 1000, DrainCycles: 4000}
	res := Run(r, src, cfg)
	if res.Cycles != 1000 {
		t.Fatalf("cycles = %d", res.Cycles)
	}
	// Rough expectation: ~0.1 flits/node/cycle offered over 16 nodes,
	// ~3 flits/packet => ~530 packets in 1000 cycles. Allow wide band.
	if res.PacketsSent < 300 || res.PacketsSent > 800 {
		t.Fatalf("sent = %d, outside plausible band", res.PacketsSent)
	}
}

func TestCurveConversion(t *testing.T) {
	pts := []SweepPoint{
		{Rate: 0.01, Result: Result{AvgLatency: 8, Throughput: 0.01}},
		{Rate: 0.2, Result: Result{AvgLatency: 50, Throughput: 0.15}},
	}
	c := Curve(pts)
	if len(c) != 2 || c[0].InjectionRate != 0.01 || c[1].Latency != 50 {
		t.Fatalf("curve = %+v", c)
	}
	if got := stats.ZeroLoadLatency(c); got != 8 {
		t.Fatalf("zero load = %v", got)
	}
}

func TestPacketStringer(t *testing.T) {
	r := Result{Cycles: 10, PacketsSent: 5, PacketsDone: 5, AvgLatency: 7.5}
	if r.String() == "" {
		t.Fatal("empty Result string")
	}
}

package sim

// activeSet tracks which stepping units (loops, routers, source nodes) a
// sparse simulator cycle must visit. Membership is O(1) via the mark
// array; the member list is kept in ascending index order because the
// dense reference loops iterate units in index order and byte-identity
// requires the sparse walk to observe shared state (ejection-port
// budgets, credits, the mesh pipe) in exactly the same order.
//
// Mutation discipline (what makes iteration safe without snapshots):
// add() is only called at points where the set is not being iterated —
// Inject, pipe landing, extension parking, post-advance injection — and
// removals happen only in compaction sweeps at controlled points (end of
// Step, or a full rebuild after FailLoop dirties the epoch). Both list
// and mark are preallocated to the unit count, so steady-state
// maintenance never touches the heap.
type activeSet struct {
	list []int32
	mark []bool
}

func newActiveSet(n int) activeSet {
	return activeSet{list: make([]int32, 0, n), mark: make([]bool, n)}
}

func (s *activeSet) len() int { return len(s.list) }

// add inserts i keeping the list sorted; a no-op when already a member.
// Units tend to activate in ascending sweep order, so the insertion scan
// is usually a plain append.
func (s *activeSet) add(i int) {
	if s.mark[i] {
		return
	}
	s.mark[i] = true
	j := len(s.list)
	s.list = append(s.list, 0)
	for j > 0 && s.list[j-1] > int32(i) {
		s.list[j] = s.list[j-1]
		j--
	}
	s.list[j] = int32(i)
}

// clear empties the set.
func (s *activeSet) clear() {
	for _, v := range s.list {
		s.mark[v] = false
	}
	s.list = s.list[:0]
}

package sim

import (
	"math/rand"
	"testing"

	"routerless/internal/rec"
	"routerless/internal/traffic"
)

// Property: below saturation, every injected packet is delivered exactly
// once, with hop count equal to its routing distance, across random ring
// configurations, patterns and loads.
func TestRingConservationProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for trial := 0; trial < 8; trial++ {
		n := 3 + rng.Intn(3)
		tp := rec.MustGenerate(n)
		cfg := RingConfig{
			EjectPorts:       1 + rng.Intn(2),
			ExtensionBuffers: 1 + rng.Intn(6),
			InjectPerCycle:   1 + rng.Intn(2),
		}
		pattern := traffic.Patterns[rng.Intn(len(traffic.Patterns))]
		rate := 0.02 + rng.Float64()*0.05 // light load
		net := NewRing(tp, cfg)
		src := traffic.NewInjector(n, n, pattern, rate, 128, rng.Int63())
		res := Run(net, src, RunConfig{WarmupCycles: 200, MeasureCycles: 1500, DrainCycles: 8000})
		if res.PacketsDone != res.PacketsSent {
			t.Fatalf("trial %d (n=%d %v cfg=%+v): sent %d done %d",
				trial, n, pattern, cfg, res.PacketsSent, res.PacketsDone)
		}
		if res.PacketsDone > 0 && res.AvgLatency < 1 {
			t.Fatalf("trial %d: impossible latency %v", trial, res.AvgLatency)
		}
	}
}

// Property: the mesh delivers everything under light load for any pipeline
// depth, VC count and buffer size.
func TestMeshConservationProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 6; trial++ {
		n := 3 + rng.Intn(3)
		cfg := MeshConfig{
			VCs:         1 + rng.Intn(3),
			BufferFlits: 2 + rng.Intn(5),
			RouterDelay: rng.Intn(3),
		}
		pattern := traffic.Patterns[rng.Intn(len(traffic.Patterns))]
		net := NewMesh(n, n, cfg)
		src := traffic.NewInjector(n, n, pattern, 0.03, 256, rng.Int63())
		res := Run(net, src, RunConfig{WarmupCycles: 200, MeasureCycles: 1500, DrainCycles: 10000})
		if res.PacketsDone != res.PacketsSent {
			t.Fatalf("trial %d (n=%d %v cfg=%+v): sent %d done %d",
				trial, n, pattern, cfg, res.PacketsSent, res.PacketsDone)
		}
	}
}

// Property: ring latency is bounded below by routing distance + 2 and the
// simulator never reports fewer hops than the routing table's minimum.
func TestRingLatencyLowerBound(t *testing.T) {
	tp := rec.MustGenerate(4)
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 40; trial++ {
		src := rng.Intn(16)
		dst := rng.Intn(16)
		if src == dst {
			continue
		}
		net := NewRing(tp, DefaultRingConfig())
		flits := 1 + rng.Intn(5)
		p := &Packet{Src: src, Dst: dst, NumFlits: flits, Done: -1}
		net.Inject(p)
		for i := 0; i < 1000 && p.Done < 0; i++ {
			net.Step()
		}
		if p.Done < 0 {
			t.Fatalf("packet %d->%d undelivered", src, dst)
		}
		lat := p.Done - p.Injected
		min := p.Hops + flits // inject + hops + serialization
		if lat < min {
			t.Fatalf("%d->%d (%d flits): latency %d below bound %d", src, dst, flits, lat, min)
		}
	}
}

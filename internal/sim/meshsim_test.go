package sim

import (
	"testing"

	"routerless/internal/mesh"
	"routerless/internal/traffic"
)

func TestMeshZeroLoadLatencyScalesWithRouterDelay(t *testing.T) {
	// 1 hop, single flit. Latency = 1 (inject) + (D+1) per hop + eject
	// on the landing cycle.
	for _, d := range []int{0, 1, 2} {
		m := NewMesh(4, 4, MeshN(d))
		lat, hops := singlePacket(t, m, 0, 1, 1)
		if hops != 1 {
			t.Fatalf("delay %d: hops = %d", d, hops)
		}
		want := 1 + (d + 1)
		if lat != want {
			t.Fatalf("delay %d: latency = %d, want %d", d, lat, want)
		}
	}
}

func TestMeshMultiHopLatency(t *testing.T) {
	m := NewMesh(4, 4, MeshN(2))
	// (0,0) -> (3,3): 6 hops. 1 + 6*3 = 19.
	lat, hops := singlePacket(t, m, 0, 15, 1)
	if hops != 6 {
		t.Fatalf("hops = %d, want 6", hops)
	}
	if lat != 19 {
		t.Fatalf("latency = %d, want 19", lat)
	}
}

func TestMeshSerialization(t *testing.T) {
	m := NewMesh(4, 4, MeshN(1))
	// 3-flit packet, 1 hop: head 1+2=3, tail follows 2 cycles later.
	lat, _ := singlePacket(t, m, 0, 1, 3)
	if lat != 5 {
		t.Fatalf("latency = %d, want 5", lat)
	}
}

func TestMeshHopsAreManhattan(t *testing.T) {
	m := NewMesh(4, 4, MeshN(1))
	for src := 0; src < 16; src++ {
		for dst := 0; dst < 16; dst++ {
			if src == dst {
				continue
			}
			mm := NewMesh(4, 4, MeshN(1))
			_, hops := singlePacket(t, mm, src, dst, 1)
			want := mesh.Hops(nodeOf(src, 4), nodeOf(dst, 4))
			if hops != want {
				t.Fatalf("%d->%d: hops %d, want %d", src, dst, hops, want)
			}
		}
	}
	_ = m
}

func TestMeshConservation(t *testing.T) {
	m := NewMesh(4, 4, MeshN(2))
	src := traffic.NewInjector(4, 4, traffic.UniformRandom, 0.05, 256, 1)
	res := Run(m, src, RunConfig{WarmupCycles: 300, MeasureCycles: 3000, DrainCycles: 8000})
	if res.Saturated {
		t.Fatal("light load saturated mesh")
	}
	if res.PacketsDone != res.PacketsSent {
		t.Fatalf("sent %d done %d", res.PacketsSent, res.PacketsDone)
	}
}

func TestMeshBackpressureDoesNotLoseFlits(t *testing.T) {
	// Hammer a single destination (hotspot) and verify every injected
	// packet is eventually delivered once injection stops.
	m := NewMesh(4, 4, MeshN(2))
	var pkts []*Packet
	for i := 0; i < 60; i++ {
		p := &Packet{Src: i % 8, Dst: 15, NumFlits: 3, Injected: m.Cycle(), Done: -1}
		if p.Src == p.Dst {
			continue
		}
		m.Inject(p)
		pkts = append(pkts, p)
		m.Step()
	}
	for i := 0; i < 5000 && m.InFlight() > 0; i++ {
		m.Step()
	}
	for _, p := range pkts {
		if p.Done < 0 {
			t.Fatalf("packet %d->%d lost under backpressure", p.Src, p.Dst)
		}
	}
}

func TestMeshDeterminism(t *testing.T) {
	run := func() Result {
		m := NewMesh(4, 4, MeshN(2))
		src := traffic.NewInjector(4, 4, traffic.BitComplement, 0.08, 256, 21)
		return Run(m, src, RunConfig{WarmupCycles: 200, MeasureCycles: 1500, DrainCycles: 4000})
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("nondeterministic mesh:\n%v\n%v", a, b)
	}
}

// The paper's headline shape: routerless (REC) beats mesh on zero-load
// latency because each hop costs one cycle instead of three.
func TestRingBeatsMeshZeroLoad(t *testing.T) {
	ringLat := avgZeroLoad(t, func() Network {
		return NewRing(mustRec(t, 4), DefaultRingConfig())
	}, 128)
	meshLat := avgZeroLoad(t, func() Network { return NewMesh(4, 4, MeshN(2)) }, 256)
	if ringLat >= meshLat {
		t.Fatalf("ring zero-load %.2f not below mesh-2 %.2f", ringLat, meshLat)
	}
}

func avgZeroLoad(t *testing.T, mk func() Network, linkBits int) float64 {
	t.Helper()
	net := mk()
	src := traffic.NewInjector(4, 4, traffic.UniformRandom, 0.005, linkBits, 4)
	res := Run(net, src, RunConfig{WarmupCycles: 200, MeasureCycles: 4000, DrainCycles: 4000})
	if res.PacketsDone == 0 {
		t.Fatal("no packets measured")
	}
	return res.AvgLatency
}

package sim

import (
	"math/rand"
	"testing"

	"routerless/internal/rec"
	"routerless/internal/topo"
	"routerless/internal/traffic"
)

// These tests pin the PR's tentpole invariant: active-set sparse stepping
// is byte-identical to the dense reference walk. A skipped loop or router
// step must be provably a no-op, so two runs differing only in
// RingConfig/MeshConfig.DenseStep — same topology, same injector seed —
// must produce identical Result structs and identical interval-stat
// streams (the latter includes ActiveLoops/ActiveRouters, where the dense
// side reports ground truth and the sparse side its bookkeeping, so the
// comparison doubles as an occupancy-counter oracle).

// runPair runs the same (network factory, source factory, run config) in
// dense and sparse mode and fails the test on any divergence.
func runPair(t *testing.T, label string, mkNet func(dense bool) Network, mkSrc func() Source, cfg RunConfig) {
	t.Helper()
	var denseIv, sparseIv []IntervalStats
	dcfg := cfg
	dcfg.OnInterval = func(s IntervalStats) { denseIv = append(denseIv, s) }
	if dcfg.ProbeEvery == 0 {
		dcfg.ProbeEvery = 50
	}
	scfg := dcfg
	scfg.OnInterval = func(s IntervalStats) { sparseIv = append(sparseIv, s) }

	dres := Run(mkNet(true), mkSrc(), dcfg)
	sres := Run(mkNet(false), mkSrc(), scfg)

	if dres != sres {
		t.Fatalf("%s: sparse Result diverges from dense\n dense:  %+v\n sparse: %+v", label, dres, sres)
	}
	if len(denseIv) != len(sparseIv) {
		t.Fatalf("%s: interval count %d (dense) vs %d (sparse)", label, len(denseIv), len(sparseIv))
	}
	for i := range denseIv {
		if denseIv[i] != sparseIv[i] {
			t.Fatalf("%s: interval %d diverges\n dense:  %+v\n sparse: %+v", label, i, denseIv[i], sparseIv[i])
		}
	}
	if dres.PacketsSent == 0 {
		t.Fatalf("%s: degenerate trial, no packets sent", label)
	}
}

// TestRingSparseMatchesDenseRandomized sweeps grid sizes, traffic
// patterns, seeds and rates from near-idle to past ring saturation. Some
// trials fail a random loop at the first measurement interval, exercising
// the dirty-epoch rebuild mid-run on both sides.
func TestRingSparseMatchesDenseRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	for trial := 0; trial < 12; trial++ {
		n := 3 + rng.Intn(3)
		tp := rec.MustGenerate(n)
		cfg := RingConfig{
			EjectPorts:       1 + rng.Intn(2),
			ExtensionBuffers: 1 + rng.Intn(6),
			InjectPerCycle:   1 + rng.Intn(2),
		}
		pattern := traffic.Patterns[rng.Intn(len(traffic.Patterns))]
		rate := []float64{0.005, 0.02, 0.08, 0.3}[rng.Intn(4)]
		seed := rng.Int63()
		// Some trials fail a loop mid-run. Run injects without a
		// reachability check, so pick a loop whose failure keeps the
		// network connected (skip the failure if none exists).
		failAt := -1
		if trial%3 == 0 {
			for _, cand := range rng.Perm(len(tp.Loops())) {
				probe := NewRing(tp, cfg)
				probe.FailLoop(cand)
				if fullyConnected(probe, n) {
					failAt = cand
					break
				}
			}
		}
		mkNet := func(dense bool) Network {
			c := cfg
			c.DenseStep = dense
			r := NewRing(tp, c)
			return r
		}
		mkSrc := func() Source {
			return traffic.NewInjector(n, n, pattern, rate, 128, seed)
		}
		rcfg := RunConfig{WarmupCycles: 300, MeasureCycles: 1200, DrainCycles: 6000, ProbeEvery: 37}
		if failAt >= 0 {
			// Fail the same loop at the same interval in both runs: the
			// probe cadence is identical, so the failure lands on the
			// same cycle.
			mk := mkNet
			var cur *Ring
			mkNet = func(dense bool) Network {
				cur = mk(dense).(*Ring)
				return cur
			}
			fired := false
			rcfg.OnInterval = func(IntervalStats) {
				if !fired {
					fired = true
					cur.FailLoop(failAt)
				}
			}
			// runPair overrides OnInterval for its own capture; chain it
			// by wrapping below instead.
			inner := rcfg.OnInterval
			rcfg.OnInterval = nil
			runPairWithHook(t, "ring randomized+fail", mkNet, mkSrc, rcfg, func() func(IntervalStats) {
				fired = false
				return inner
			})
			continue
		}
		runPair(t, "ring randomized", mkNet, mkSrc, rcfg)
	}
}

// fullyConnected reports whether every src->dst pair routes on the ring's
// current (possibly degraded) routing table.
func fullyConnected(r *Ring, grid int) bool {
	n := grid * grid
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			if s == d {
				continue
			}
			if !r.Degraded().Reachable(topo.NodeFromID(s, grid), topo.NodeFromID(d, grid)) {
				return false
			}
		}
	}
	return true
}

// runPairWithHook is runPair with a per-run OnInterval hook (rebuilt per
// run so trigger state resets) chained before the capture callback.
func runPairWithHook(t *testing.T, label string, mkNet func(dense bool) Network, mkSrc func() Source, cfg RunConfig, mkHook func() func(IntervalStats)) {
	t.Helper()
	var denseIv, sparseIv []IntervalStats
	runOne := func(dense bool, sink *[]IntervalStats) Result {
		c := cfg
		hook := mkHook()
		net := mkNet(dense)
		c.OnInterval = func(s IntervalStats) {
			if hook != nil {
				hook(s)
			}
			*sink = append(*sink, s)
		}
		return Run(net, mkSrc(), c)
	}
	dres := runOne(true, &denseIv)
	sres := runOne(false, &sparseIv)
	if dres != sres {
		t.Fatalf("%s: sparse Result diverges from dense\n dense:  %+v\n sparse: %+v", label, dres, sres)
	}
	if len(denseIv) != len(sparseIv) {
		t.Fatalf("%s: interval count %d (dense) vs %d (sparse)", label, len(denseIv), len(sparseIv))
	}
	for i := range denseIv {
		if denseIv[i] != sparseIv[i] {
			t.Fatalf("%s: interval %d diverges\n dense:  %+v\n sparse: %+v", label, i, denseIv[i], sparseIv[i])
		}
	}
}

// TestMeshSparseMatchesDenseRandomized is the mesh-side oracle: random VC
// counts, buffer depths, pipeline delays, patterns and rates, including
// past-saturation loads where wormhole backpressure and VC arbitration
// are fully exercised.
func TestMeshSparseMatchesDenseRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	for trial := 0; trial < 10; trial++ {
		n := 3 + rng.Intn(3)
		cfg := MeshConfig{
			VCs:         1 + rng.Intn(3),
			BufferFlits: 2 + rng.Intn(5),
			RouterDelay: rng.Intn(3),
		}
		pattern := traffic.Patterns[rng.Intn(len(traffic.Patterns))]
		rate := []float64{0.005, 0.02, 0.1, 0.4}[rng.Intn(4)]
		seed := rng.Int63()
		mkNet := func(dense bool) Network {
			c := cfg
			c.DenseStep = dense
			return NewMesh(n, n, c)
		}
		mkSrc := func() Source {
			return traffic.NewInjector(n, n, pattern, rate, 256, seed)
		}
		runPair(t, "mesh randomized", mkNet, mkSrc,
			RunConfig{WarmupCycles: 300, MeasureCycles: 1200, DrainCycles: 8000, ProbeEvery: 41})
	}
}

// TestSparseMatchesDenseHotspot pins the oracle under hotspot traffic,
// where ejection-port contention parks flits in extension buffers (ring)
// and concentrates active routers (mesh).
func TestSparseMatchesDenseHotspot(t *testing.T) {
	tp := rec.MustGenerate(4)
	runPair(t, "ring hotspot",
		func(dense bool) Network {
			c := DefaultRingConfig()
			c.DenseStep = dense
			return NewRing(tp, c)
		},
		func() Source { return traffic.NewHotspotInjector(4, 4, 0.05, 0.6, []int{5}, 128, 7) },
		RunConfig{WarmupCycles: 300, MeasureCycles: 1500, DrainCycles: 8000})
	runPair(t, "mesh hotspot",
		func(dense bool) Network {
			c := MeshN(2)
			c.DenseStep = dense
			return NewMesh(4, 4, c)
		},
		func() Source { return traffic.NewHotspotInjector(4, 4, 0.05, 0.6, []int{5}, 256, 7) },
		RunConfig{WarmupCycles: 300, MeasureCycles: 1500, DrainCycles: 8000})
}

// TestSparseMatchesDenseAppModel pins the oracle under the PARSEC app
// models, whose bursty multi-class traffic is the least uniform source in
// the tree.
func TestSparseMatchesDenseAppModel(t *testing.T) {
	prof, err := traffic.ParsecProfile("fluidanimate")
	if err != nil {
		t.Fatal(err)
	}
	tp := rec.MustGenerate(4)
	runPair(t, "ring parsec",
		func(dense bool) Network {
			c := DefaultRingConfig()
			c.DenseStep = dense
			return NewRing(tp, c)
		},
		func() Source { return traffic.NewAppInjector(prof, 4, 4, 128, 11) },
		RunConfig{WarmupCycles: 300, MeasureCycles: 1500, DrainCycles: 8000})
	runPair(t, "mesh parsec",
		func(dense bool) Network {
			c := MeshN(1)
			c.DenseStep = dense
			return NewMesh(4, 4, c)
		},
		func() Source { return traffic.NewAppInjector(prof, 4, 4, 256, 11) },
		RunConfig{WarmupCycles: 300, MeasureCycles: 1500, DrainCycles: 8000})
}

// TestRingSparseMatchesDenseFailLoopManual drives dense and sparse rings
// cycle by cycle with identical injections and a mid-run FailLoop,
// checking every per-packet outcome and every counter — a finer-grained
// comparison than Run's aggregates, covering the dropped-packet paths the
// Result struct folds away.
func TestRingSparseMatchesDenseFailLoopManual(t *testing.T) {
	rng := rand.New(rand.NewSource(89))
	for trial := 0; trial < 6; trial++ {
		n := 4
		tp := rec.MustGenerate(n)
		mk := func(dense bool) *Ring {
			c := DefaultRingConfig()
			c.DenseStep = dense
			return NewRing(tp, c)
		}
		dnet, snet := mk(true), mk(false)
		src := traffic.NewInjector(n, n, traffic.UniformRandom, 0.08, 128, rng.Int63())
		failCycle := 100 + rng.Intn(200)
		failIdx := rng.Intn(len(tp.Loops()))
		var dpkts, spkts []*Packet
		for cyc := 0; cyc < 800; cyc++ {
			if cyc == failCycle {
				dnet.FailLoop(failIdx)
				snet.FailLoop(failIdx)
			}
			for _, r := range src.Tick() {
				// A failed loop can disconnect pairs; Inject panics on
				// unroutable packets, so skip them (identically on both
				// sides — Degraded reflects the same failure).
				if !dnet.Degraded().Reachable(topo.NodeFromID(r.Src, n), topo.NodeFromID(r.Dst, n)) {
					continue
				}
				dp := &Packet{Src: r.Src, Dst: r.Dst, NumFlits: r.NumFlits, Injected: dnet.Cycle(), Done: -1}
				sp := &Packet{Src: r.Src, Dst: r.Dst, NumFlits: r.NumFlits, Injected: snet.Cycle(), Done: -1}
				dnet.Inject(dp)
				snet.Inject(sp)
				dpkts = append(dpkts, dp)
				spkts = append(spkts, sp)
			}
			dnet.Step()
			snet.Step()
			if da, sa := dnet.ActiveLoops(), snet.ActiveLoops(); da != sa {
				t.Fatalf("trial %d cycle %d: ActiveLoops dense %d sparse %d", trial, cyc, da, sa)
			}
		}
		for i := range dpkts {
			if dpkts[i].Done != spkts[i].Done || dpkts[i].Hops != spkts[i].Hops {
				t.Fatalf("trial %d packet %d: dense done=%d hops=%d, sparse done=%d hops=%d",
					trial, i, dpkts[i].Done, dpkts[i].Hops, spkts[i].Done, spkts[i].Hops)
			}
		}
		if dnet.InjectedFlits() != snet.InjectedFlits() ||
			dnet.DeliveredFlits() != snet.DeliveredFlits() ||
			dnet.DroppedFlits() != snet.DroppedFlits() ||
			dnet.Circulations() != snet.Circulations() ||
			dnet.InFlight() != snet.InFlight() ||
			dnet.BufferOccupancy() != snet.BufferOccupancy() ||
			dnet.LinkUtilization() != snet.LinkUtilization() {
			t.Fatalf("trial %d: counters diverge: dense inj=%d del=%d drop=%d circ=%d inflight=%d buf=%d util=%v, sparse inj=%d del=%d drop=%d circ=%d inflight=%d buf=%d util=%v",
				trial,
				dnet.InjectedFlits(), dnet.DeliveredFlits(), dnet.DroppedFlits(), dnet.Circulations(), dnet.InFlight(), dnet.BufferOccupancy(), dnet.LinkUtilization(),
				snet.InjectedFlits(), snet.DeliveredFlits(), snet.DroppedFlits(), snet.Circulations(), snet.InFlight(), snet.BufferOccupancy(), snet.LinkUtilization())
		}
		du, su := dnet.LoopUtilization(), snet.LoopUtilization()
		for li := range du {
			if du[li] != su[li] {
				t.Fatalf("trial %d loop %d: utilization dense %v sparse %v", trial, li, du[li], su[li])
			}
		}
	}
}

// opaqueNet hides the concrete network type from Run's recycle/counter
// type switch, forcing the drain loop onto its pending() rescan fallback.
type opaqueNet struct{ Network }

// TestDrainCounterMatchesRescan pins the drain-phase satellite: the O(1)
// measured-in-flight counter must stop the drain on exactly the cycle the
// old full-ledger rescan did. The opaque wrapper runs the rescan path;
// the bare network runs the counter path; Results must match, including
// a saturated case where the drain bound is what ends the run.
func TestDrainCounterMatchesRescan(t *testing.T) {
	tp := rec.MustGenerate(4)
	for _, rate := range []float64{0.03, 0.4} {
		mkSrc := func() Source { return traffic.NewInjector(4, 4, traffic.UniformRandom, rate, 128, 3) }
		cfg := RunConfig{WarmupCycles: 200, MeasureCycles: 1000, DrainCycles: 3000}
		hooked := Run(NewRing(tp, DefaultRingConfig()), mkSrc(), cfg)
		fallback := Run(opaqueNet{NewRing(tp, DefaultRingConfig())}, mkSrc(), cfg)
		if hooked != fallback {
			t.Fatalf("rate %v: counter drain diverges from rescan drain\n counter: %+v\n rescan:  %+v", rate, hooked, fallback)
		}
	}
}

// TestActiveGaugesInIntervalStats checks the observability satellite: a
// ring run reports ActiveLoops (and no ActiveRouters), a mesh run the
// reverse, and the sparse counts stay within [0, topology size].
func TestActiveGaugesInIntervalStats(t *testing.T) {
	tp := rec.MustGenerate(4)
	var ringIv, meshIv []IntervalStats
	Run(NewRing(tp, DefaultRingConfig()),
		traffic.NewInjector(4, 4, traffic.UniformRandom, 0.05, 128, 5),
		RunConfig{WarmupCycles: 200, MeasureCycles: 1000, DrainCycles: 3000,
			ProbeEvery: 50, OnInterval: func(s IntervalStats) { ringIv = append(ringIv, s) }})
	Run(NewMesh(4, 4, MeshN(2)),
		traffic.NewInjector(4, 4, traffic.UniformRandom, 0.05, 256, 5),
		RunConfig{WarmupCycles: 200, MeasureCycles: 1000, DrainCycles: 3000,
			ProbeEvery: 50, OnInterval: func(s IntervalStats) { meshIv = append(meshIv, s) }})
	if len(ringIv) == 0 || len(meshIv) == 0 {
		t.Fatal("no interval samples captured")
	}
	sawRingActive, sawMeshActive := false, false
	for _, s := range ringIv {
		if s.ActiveRouters != -1 {
			t.Fatalf("ring interval reports ActiveRouters=%d, want -1", s.ActiveRouters)
		}
		if s.ActiveLoops < 0 || s.ActiveLoops > len(tp.Loops()) {
			t.Fatalf("ring ActiveLoops=%d out of range [0,%d]", s.ActiveLoops, len(tp.Loops()))
		}
		if s.ActiveLoops > 0 {
			sawRingActive = true
		}
	}
	for _, s := range meshIv {
		if s.ActiveLoops != -1 {
			t.Fatalf("mesh interval reports ActiveLoops=%d, want -1", s.ActiveLoops)
		}
		if s.ActiveRouters < 0 || s.ActiveRouters > 16 {
			t.Fatalf("mesh ActiveRouters=%d out of range [0,16]", s.ActiveRouters)
		}
		if s.ActiveRouters > 0 {
			sawMeshActive = true
		}
	}
	if !sawRingActive || !sawMeshActive {
		t.Fatalf("gauges never went positive under load (ring %v, mesh %v)", sawRingActive, sawMeshActive)
	}
}

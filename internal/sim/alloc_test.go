package sim

import (
	"testing"

	"routerless/internal/obs"
	"routerless/internal/rec"
	"routerless/internal/traffic"
)

// These tests pin the PR's zero-allocation contract for the simulator hot
// path: once a network has reached steady state, one full cycle —
// injector Tick, packet Inject, network Step — touches the heap zero
// times. Any regression (a new per-cycle make/append, a reintroduced
// container/list, a lost buffer reuse) fails here before it shows up as a
// sweep slowdown. Same methodology as the PR 2 DNN arena tests.

func testZeroAllocCycle(t *testing.T, net Network, src Source) {
	t.Helper()
	// One packet pool shared by warmup and the measured phase, recycled by
	// the network on delivery — the same ownership structure Run sets up.
	pkts := pool[Packet]{}
	recycle := func(p *Packet) { pkts.put(p) }
	switch n := net.(type) {
	case *Ring:
		n.recycle = recycle
	case *Mesh:
		n.recycle = recycle
	}
	oneCycle := func(id int) {
		for _, r := range src.Tick() {
			p := pkts.get()
			*p = Packet{ID: id, Src: r.Src, Dst: r.Dst, NumFlits: r.NumFlits, Done: -1}
			net.Inject(p)
		}
		net.Step()
	}
	// Generous warmup: pools carve their blocks, queues reach peak
	// occupancy, the pipeline buffer reaches steady capacity.
	for i := 0; i < 3000; i++ {
		oneCycle(i)
	}
	allocs := testing.AllocsPerRun(500, func() { oneCycle(1 << 20) })
	if allocs != 0 {
		t.Fatalf("steady-state cycle allocates %.1f times, want 0", allocs)
	}
}

func TestRingStepZeroAllocSteadyState(t *testing.T) {
	tp := rec.MustGenerate(8)
	net := NewRing(tp, DefaultRingConfig())
	src := traffic.NewInjector(8, 8, traffic.UniformRandom, 0.1, 128, 1)
	testZeroAllocCycle(t, net, src)
}

func TestMeshStepZeroAllocSteadyState(t *testing.T) {
	net := NewMesh(8, 8, MeshN(2))
	src := traffic.NewInjector(8, 8, traffic.UniformRandom, 0.1, 256, 1)
	testZeroAllocCycle(t, net, src)
}

func TestAppInjectorZeroAllocSteadyState(t *testing.T) {
	prof, err := traffic.ParsecProfile("fluidanimate")
	if err != nil {
		t.Fatal(err)
	}
	tp := rec.MustGenerate(8)
	net := NewRing(tp, DefaultRingConfig())
	src := traffic.NewAppInjector(prof, 8, 8, 128, 1)
	testZeroAllocCycle(t, net, src)
}

// TestStepZeroAllocWithNilTraceSpan pins the disabled-tracing invariant at
// per-cycle granularity: wrapping every steady-state cycle in a span on a
// nil shard (the state every un-traced run is in — RunConfig.Trace nil)
// must leave the zero-allocation pin untouched. Start/End on a nil shard
// are one pointer check each; if span recording ever grows state that
// escapes to the heap on the disabled path, this fails before any sweep
// slows down.
func TestStepZeroAllocWithNilTraceSpan(t *testing.T) {
	tp := rec.MustGenerate(8)
	net := NewRing(tp, DefaultRingConfig())
	src := traffic.NewInjector(8, 8, traffic.UniformRandom, 0.1, 128, 1)
	pkts := pool[Packet]{}
	net.recycle = func(p *Packet) { pkts.put(p) }
	var sh *obs.TraceShard // nil: tracing disabled
	oneCycle := func(id int) {
		sp := sh.Start(obs.SpanSimMeasure)
		for _, r := range src.Tick() {
			p := pkts.get()
			*p = Packet{ID: id, Src: r.Src, Dst: r.Dst, NumFlits: r.NumFlits, Done: -1}
			net.Inject(p)
		}
		net.Step()
		sp.End()
	}
	for i := 0; i < 3000; i++ {
		oneCycle(i)
	}
	allocs := testing.AllocsPerRun(500, func() { oneCycle(1 << 20) })
	if allocs != 0 {
		t.Fatalf("steady-state cycle under a nil trace span allocates %.1f times, want 0", allocs)
	}
}

// The low-rate pins repeat the steady-state contract in the regime the
// active-set work targets: a near-idle network where sparse stepping
// skips almost every loop/router must still run whole cycles — set
// compaction, ejDirty resets, bufCount updates included — without
// touching the heap. The dense variants pin the oracle path too, since
// parity tests run it at scale.

func TestRingSparseLowRateZeroAlloc(t *testing.T) {
	tp := rec.MustGenerate(8)
	net := NewRing(tp, DefaultRingConfig())
	src := traffic.NewInjector(8, 8, traffic.UniformRandom, 0.01, 128, 1)
	testZeroAllocCycle(t, net, src)
}

func TestMeshSparseLowRateZeroAlloc(t *testing.T) {
	net := NewMesh(8, 8, MeshN(2))
	src := traffic.NewInjector(8, 8, traffic.UniformRandom, 0.01, 256, 1)
	testZeroAllocCycle(t, net, src)
}

func TestRingDenseStepZeroAlloc(t *testing.T) {
	tp := rec.MustGenerate(8)
	cfg := DefaultRingConfig()
	cfg.DenseStep = true
	net := NewRing(tp, cfg)
	src := traffic.NewInjector(8, 8, traffic.UniformRandom, 0.1, 128, 1)
	testZeroAllocCycle(t, net, src)
}

func TestMeshDenseStepZeroAlloc(t *testing.T) {
	cfg := MeshN(2)
	cfg.DenseStep = true
	net := NewMesh(8, 8, cfg)
	src := traffic.NewInjector(8, 8, traffic.UniformRandom, 0.1, 256, 1)
	testZeroAllocCycle(t, net, src)
}

// TestRunAllocsConstantPerRun pins the other half of the contract: total
// allocations of a full sim.Run grow with the setup (pool blocks, ledger,
// stats), not with the cycle count. Doubling the measured window must not
// come close to doubling allocations.
func TestRunAllocsConstantPerRun(t *testing.T) {
	tp := rec.MustGenerate(8)
	allocsFor := func(measure int) float64 {
		return testing.AllocsPerRun(3, func() {
			net := NewRing(tp, DefaultRingConfig())
			src := traffic.NewInjector(8, 8, traffic.UniformRandom, 0.1, 128, 1)
			Run(net, src, RunConfig{WarmupCycles: 500, MeasureCycles: measure, DrainCycles: 2 * measure})
		})
	}
	short, long := allocsFor(1000), allocsFor(4000)
	// 4x the cycles should cost well under 2x the allocations; the slack
	// absorbs pool-block carving for the larger in-flight population.
	if long > 2*short {
		t.Fatalf("Run allocations scale with cycles: %0.f @1000 cycles vs %0.f @4000", short, long)
	}
}

// TestQueueReusesBacking exercises the queue compaction paths directly.
func TestQueueReusesBacking(t *testing.T) {
	var q queue[int]
	// Steady push/pop with backlog must not grow the buffer unboundedly.
	for i := 0; i < 10; i++ {
		q.push(i)
	}
	for i := 0; i < 100000; i++ {
		q.push(i)
		q.pop()
	}
	if cap(q.buf) > 1024 {
		t.Fatalf("queue backing grew to %d with steady backlog 10", cap(q.buf))
	}
	if q.len() != 10 {
		t.Fatalf("len = %d, want 10", q.len())
	}
}

func TestRingBufWrapsAndPanicsOnOverflow(t *testing.T) {
	r := newRingBuf[int](3)
	for round := 0; round < 5; round++ {
		r.push(1)
		r.push(2)
		r.push(3)
		if r.len() != 3 {
			t.Fatalf("len = %d", r.len())
		}
		for want := 1; want <= 3; want++ {
			if got := r.pop(); got != want {
				t.Fatalf("pop = %d, want %d", got, want)
			}
		}
	}
	r.push(1)
	r.push(2)
	r.push(3)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on fixed-FIFO overflow")
		}
	}()
	r.push(4)
}

package sim

import (
	"testing"

	"routerless/internal/rec"
	"routerless/internal/topo"
	"routerless/internal/traffic"
)

func TestFailLoopDropsInFlight(t *testing.T) {
	tp := topo.NewSquare(2, 0)
	if err := tp.AddLoop(topo.MustLoop(0, 0, 1, 1, topo.Clockwise)); err != nil {
		t.Fatal(err)
	}
	if err := tp.AddLoop(topo.MustLoop(0, 0, 1, 1, topo.Counterclockwise)); err != nil {
		t.Fatal(err)
	}
	r := NewRing(tp, DefaultRingConfig())
	p := &Packet{Src: 0, Dst: 3, NumFlits: 1, Done: -1}
	r.Inject(p)
	r.Step() // flit now on its loop
	// Fail whichever loop the packet took (routing picked the min-dist
	// one: CW dist 2 vs CCW dist 2 — index 0 wins ties).
	r.FailLoop(0)
	if r.DroppedFlits() != 1 {
		t.Fatalf("dropped = %d, want 1", r.DroppedFlits())
	}
	if r.InFlight() != 0 {
		t.Fatalf("inflight = %d after drop", r.InFlight())
	}
	for i := 0; i < 50; i++ {
		r.Step()
	}
	if p.Done >= 0 {
		t.Fatal("dropped packet reported delivered")
	}
}

func TestFailLoopReroutesQueuedPackets(t *testing.T) {
	tp := topo.NewSquare(2, 0)
	if err := tp.AddLoop(topo.MustLoop(0, 0, 1, 1, topo.Clockwise)); err != nil {
		t.Fatal(err)
	}
	if err := tp.AddLoop(topo.MustLoop(0, 0, 1, 1, topo.Counterclockwise)); err != nil {
		t.Fatal(err)
	}
	r := NewRing(tp, DefaultRingConfig())
	p := &Packet{Src: 0, Dst: 1, NumFlits: 1, Done: -1}
	r.Inject(p) // queued, not yet on a ring
	r.FailLoop(0)
	for i := 0; i < 50 && p.Done < 0; i++ {
		r.Step()
	}
	if p.Done < 0 {
		t.Fatal("packet not delivered via surviving loop")
	}
	// CCW loop: (0,0)->(0,1) is 3 hops instead of 1.
	if p.Hops != 3 {
		t.Fatalf("hops = %d, want 3 via surviving loop", p.Hops)
	}
}

func TestFailLoopDisconnects(t *testing.T) {
	tp := topo.NewSquare(2, 0)
	if err := tp.AddLoop(topo.MustLoop(0, 0, 1, 1, topo.Clockwise)); err != nil {
		t.Fatal(err)
	}
	r := NewRing(tp, DefaultRingConfig())
	r.FailLoop(0)
	if r.Degraded().Reachable(topo.Node{Row: 0, Col: 0}, topo.Node{Row: 0, Col: 1}) {
		t.Fatal("pair reachable after its only loop failed")
	}
	// Queued packet on the failed loop is dropped, not stuck.
	r2 := NewRing(tp, DefaultRingConfig())
	p := &Packet{Src: 0, Dst: 1, NumFlits: 2, Done: -1}
	r2.Inject(p)
	r2.FailLoop(0)
	if r2.InFlight() != 0 {
		t.Fatalf("inflight = %d, want 0 after dropping unroutable packet", r2.InFlight())
	}
}

// REC/DRL designs keep most traffic flowing after a single loop failure —
// the §6.7 claim that path diversity provides fault tolerance.
func TestSingleLoopFailureMostlySurvives(t *testing.T) {
	tp := rec.MustGenerate(6)
	r := NewRing(tp, DefaultRingConfig())
	r.FailLoop(3)
	reach := 0
	total := 0
	for s := 0; s < tp.N(); s++ {
		for d := 0; d < tp.N(); d++ {
			if s == d {
				continue
			}
			total++
			if r.Degraded().Reachable(topo.NodeFromID(s, 6), topo.NodeFromID(d, 6)) {
				reach++
			}
		}
	}
	if float64(reach) < 0.9*float64(total) {
		t.Fatalf("only %d/%d pairs survive one loop failure", reach, total)
	}
	// Traffic between surviving pairs still flows.
	src := traffic.NewInjector(6, 6, traffic.UniformRandom, 0.02, 128, 5)
	delivered := 0
	for i := 0; i < 2000; i++ {
		for _, req := range src.Tick() {
			if !r.Degraded().Reachable(topo.NodeFromID(req.Src, 6), topo.NodeFromID(req.Dst, 6)) {
				continue
			}
			r.Inject(&Packet{Src: req.Src, Dst: req.Dst, NumFlits: req.NumFlits, Done: -1})
			delivered++
		}
		r.Step()
	}
	for i := 0; i < 2000 && r.InFlight() > 0; i++ {
		r.Step()
	}
	if delivered == 0 || r.InFlight() != 0 {
		t.Fatalf("degraded network stalled: delivered=%d inflight=%d", delivered, r.InFlight())
	}
}

func TestFailLoopIdempotentAndBounds(t *testing.T) {
	tp := rec.MustGenerate(4)
	r := NewRing(tp, DefaultRingConfig())
	r.FailLoop(0)
	r.FailLoop(0) // no-op
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for out-of-range index")
		}
	}()
	r.FailLoop(999)
}

// Package power models post-place-&-route power and area for routerless
// and mesh NoC nodes. It stands in for the paper's Synopsys Design
// Compiler + Cadence Encounter flow under the 15nm NanGate FreePDK15
// library (see DESIGN.md, substitutions): the model is analytical, with
// constants anchored to the published numbers —
//
//   - mesh router node area 45,278 µm², REC/DRL node area 7,981 µm² at
//     node overlapping 14 and 5,860 µm² at overlapping 10 (Fig. 15);
//   - routerless source lookup table 443 µm² and 0.028 mW (§6.6);
//   - repeater area 0.159 mm² total for an 8×8 DRL(14) (§6.6);
//   - static power 1.23 mW (mesh) vs 0.23 mW (REC/DRL at 14) and the
//     static/dynamic split of Fig. 14, at 2.0 GHz.
//
// Dynamic power scales with measured activity (flit-hops per node per
// cycle) produced by the cycle-accurate simulator, mirroring the paper's
// use of Gem5 link-utilization statistics as activity factors.
package power

// Params holds the calibrated model constants. The zero value is unusable;
// start from DefaultParams.
type Params struct {
	// Area model (µm² per node).
	RouterlessAreaBase    float64 // interface logic independent of wiring
	RouterlessAreaPerLoop float64 // buffer+mux per unit node overlapping
	LookupTableArea       float64 // per-node source routing table
	RepeaterAreaPerLoop   float64 // repeaters per unit overlapping
	MeshRouterArea        float64 // 5-port 2-VC router + NI

	// Static power (mW per node) at 2.0 GHz, 15nm.
	RouterlessStaticBase    float64
	RouterlessStaticPerLoop float64
	LookupTablePower        float64
	MeshStatic              float64

	// Dynamic energy coefficients (mW per flit-hop/node/cycle).
	RouterlessDynPerFlitHop float64
	MeshDynPerFlitHop       float64 // includes crossbar+VC+link per hop
	// Injection/ejection cost per flit (mW per flit/node/cycle).
	RouterlessDynPerFlit float64
	MeshDynPerFlit       float64
}

// DefaultParams returns constants fitted to the published measurements.
func DefaultParams() Params {
	return Params{
		// Fig. 15: area(cap) = 557.5 + 530.25·cap fits (10, 5860) and
		// (14, 7981) exactly; the lookup table is already included in
		// those published node areas, so it is carried as a component.
		RouterlessAreaBase:    557.5,
		RouterlessAreaPerLoop: 530.25,
		LookupTableArea:       443,
		// §6.6: 0.159 mm² of repeaters across 64 nodes at cap 14:
		// 159000/64/14 ≈ 177 µm² per node per overlapping unit.
		RepeaterAreaPerLoop: 177.5,
		MeshRouterArea:      45278,

		// Fig. 14: static 0.23 mW at cap 14 → 0.0164 per loop with no
		// base; keep a tiny base for clock distribution.
		RouterlessStaticBase:    0.006,
		RouterlessStaticPerLoop: 0.016,
		LookupTablePower:        0.028,
		MeshStatic:              1.23,

		// Fitted so PARSEC-class loads (~0.02–0.2 flit-hops/node/cycle)
		// land near Fig. 14's dynamic bars: mesh ≈ 5× routerless per
		// flit-hop (crossbar + VC allocation + deeper buffers).
		RouterlessDynPerFlitHop: 1.1,
		MeshDynPerFlitHop:       5.6,
		RouterlessDynPerFlit:    0.25,
		MeshDynPerFlit:          0.9,
	}
}

// RouterlessNodeArea returns the per-node area (µm²) of a routerless NoC
// built for the given node overlapping cap, including the lookup table
// (matching how Fig. 15 reports node area).
func (p Params) RouterlessNodeArea(overlapCap int) float64 {
	return p.RouterlessAreaBase + p.RouterlessAreaPerLoop*float64(overlapCap)
}

// RouterlessRepeaterArea returns the per-node repeater overhead (µm²).
func (p Params) RouterlessRepeaterArea(overlapCap int) float64 {
	return p.RepeaterAreaPerLoop * float64(overlapCap)
}

// MeshNodeArea returns the mesh router+NI area (µm²).
func (p Params) MeshNodeArea() float64 { return p.MeshRouterArea }

// RouterlessStatic returns per-node static power (mW) for a cap.
func (p Params) RouterlessStatic(overlapCap int) float64 {
	return p.RouterlessStaticBase + p.RouterlessStaticPerLoop*float64(overlapCap) + p.LookupTablePower
}

// MeshStaticPower returns per-node mesh static power (mW).
func (p Params) MeshStaticPower() float64 { return p.MeshStatic }

// Activity summarizes a simulation's traffic intensity for the dynamic
// model. FlitHopsPerNodeCycle = delivered flits × hops / cycles / nodes;
// FlitsPerNodeCycle is the accepted throughput.
type Activity struct {
	FlitHopsPerNodeCycle float64
	FlitsPerNodeCycle    float64
}

// RouterlessDynamic returns per-node dynamic power (mW) for the activity.
func (p Params) RouterlessDynamic(a Activity) float64 {
	return p.RouterlessDynPerFlitHop*a.FlitHopsPerNodeCycle + p.RouterlessDynPerFlit*a.FlitsPerNodeCycle
}

// MeshDynamic returns per-node dynamic power (mW) for the activity.
func (p Params) MeshDynamic(a Activity) float64 {
	return p.MeshDynPerFlitHop*a.FlitHopsPerNodeCycle + p.MeshDynPerFlit*a.FlitsPerNodeCycle
}

// Report is a per-node power breakdown (mW).
type Report struct {
	Static  float64
	Dynamic float64
}

// Total returns static+dynamic.
func (r Report) Total() float64 { return r.Static + r.Dynamic }

// Routerless builds a full report for a routerless node.
func (p Params) Routerless(overlapCap int, a Activity) Report {
	return Report{Static: p.RouterlessStatic(overlapCap), Dynamic: p.RouterlessDynamic(a)}
}

// Mesh builds a full report for a mesh node.
func (p Params) Mesh(a Activity) Report {
	return Report{Static: p.MeshStaticPower(), Dynamic: p.MeshDynamic(a)}
}

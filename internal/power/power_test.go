package power

import (
	"math"
	"testing"
)

func TestAreaMatchesPublishedPoints(t *testing.T) {
	p := DefaultParams()
	// Fig. 15 anchors.
	if got := p.RouterlessNodeArea(14); math.Abs(got-7981) > 1 {
		t.Fatalf("area(14) = %v, want ≈7981", got)
	}
	if got := p.RouterlessNodeArea(10); math.Abs(got-5860) > 1 {
		t.Fatalf("area(10) = %v, want ≈5860", got)
	}
	if p.MeshNodeArea() != 45278 {
		t.Fatalf("mesh area = %v", p.MeshNodeArea())
	}
	// Paper: ~7.2x area reduction REC vs mesh.
	ratio := p.MeshNodeArea() / p.RouterlessNodeArea(14)
	if ratio < 4 || ratio > 8 {
		t.Fatalf("area ratio = %v, want 4–8x", ratio)
	}
}

func TestRepeaterAreaMatchesPublished(t *testing.T) {
	p := DefaultParams()
	// §6.6: 0.159 mm² across an 8x8 at cap 14.
	total := p.RouterlessRepeaterArea(14) * 64
	if math.Abs(total-159000) > 1000 {
		t.Fatalf("repeater total = %v µm², want ≈159000", total)
	}
}

func TestStaticMatchesPublished(t *testing.T) {
	p := DefaultParams()
	// Fig. 14: routerless static 0.23 mW (at cap 14, excluding the LUT
	// which the paper reports separately at 0.028 mW); mesh 1.23 mW.
	rl := p.RouterlessStatic(14)
	if rl < 0.2 || rl > 0.3 {
		t.Fatalf("routerless static = %v, want ≈0.23–0.26", rl)
	}
	if p.MeshStaticPower() != 1.23 {
		t.Fatalf("mesh static = %v", p.MeshStaticPower())
	}
	// Static shrinks with tighter caps (Fig. 13's tradeoff).
	if p.RouterlessStatic(10) >= p.RouterlessStatic(14) {
		t.Fatal("static not monotone in cap")
	}
}

func TestDynamicScalesWithActivity(t *testing.T) {
	p := DefaultParams()
	lo := Activity{FlitHopsPerNodeCycle: 0.05, FlitsPerNodeCycle: 0.01}
	hi := Activity{FlitHopsPerNodeCycle: 0.5, FlitsPerNodeCycle: 0.1}
	if p.RouterlessDynamic(lo) >= p.RouterlessDynamic(hi) {
		t.Fatal("routerless dynamic not monotone")
	}
	if p.MeshDynamic(lo) >= p.MeshDynamic(hi) {
		t.Fatal("mesh dynamic not monotone")
	}
	// Zero activity -> zero dynamic power.
	if p.RouterlessDynamic(Activity{}) != 0 || p.MeshDynamic(Activity{}) != 0 {
		t.Fatal("dynamic power nonzero at zero activity")
	}
}

func TestMeshDynamicDominatesAtEqualActivity(t *testing.T) {
	p := DefaultParams()
	a := Activity{FlitHopsPerNodeCycle: 0.2, FlitsPerNodeCycle: 0.04}
	ratio := p.MeshDynamic(a) / p.RouterlessDynamic(a)
	// Fig. 14: dynamic for DRL is ~80% below mesh, i.e. mesh ≈ 5x.
	if ratio < 3 || ratio > 8 {
		t.Fatalf("mesh/routerless dynamic ratio = %v, want 3–8x", ratio)
	}
}

func TestReportTotal(t *testing.T) {
	p := DefaultParams()
	r := p.Routerless(14, Activity{FlitHopsPerNodeCycle: 0.1, FlitsPerNodeCycle: 0.02})
	if r.Total() != r.Static+r.Dynamic {
		t.Fatal("Total broken")
	}
	m := p.Mesh(Activity{FlitHopsPerNodeCycle: 0.1, FlitsPerNodeCycle: 0.02})
	if m.Total() <= r.Total() {
		t.Fatalf("mesh total %v not above routerless %v at equal activity", m.Total(), r.Total())
	}
}

package drl

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"routerless/internal/obs"
)

// TestSearchPopulatesTelemetry runs a small instrumented search and checks
// the per-worker counters, gradient gauges, tree size, and event stream.
func TestSearchPopulatesTelemetry(t *testing.T) {
	reg := obs.NewRegistry()
	var buf bytes.Buffer
	cfg := quickCfg(4, 6, 6)
	cfg.Threads = 2
	cfg.Metrics = reg
	cfg.Events = obs.NewLogger(&buf, obs.LevelDebug)
	res := MustNew(cfg).Run()

	s := reg.Snapshot()
	perWorker := int64(0)
	for name, v := range s.Counters {
		if strings.HasPrefix(name, "drl.worker.") {
			perWorker += v
		}
	}
	if perWorker != int64(res.Episodes) {
		t.Fatalf("per-worker episode counters sum to %d, want %d", perWorker, res.Episodes)
	}
	if s.Counters["drl.valid_designs"] != int64(len(res.Valid)) {
		t.Fatalf("valid_designs = %d, want %d", s.Counters["drl.valid_designs"], len(res.Valid))
	}
	if s.Counters["drl.updates"] != int64(res.Episodes) {
		t.Fatalf("updates = %d, want %d", s.Counters["drl.updates"], res.Episodes)
	}
	if _, ok := s.Gauges["drl.grad_norm_preclip"]; !ok {
		t.Fatal("grad_norm_preclip gauge missing")
	}
	if _, ok := s.Gauges["drl.grad_norm_postclip"]; !ok {
		t.Fatal("grad_norm_postclip gauge missing")
	}
	if got := s.Gauges["drl.tree_size"]; got <= 0 {
		t.Fatalf("tree_size gauge = %v, want > 0", got)
	}
	if s.Histograms["drl.episode_reward_hist"].Count != int64(res.Episodes) {
		t.Fatalf("reward histogram count = %d, want %d",
			s.Histograms["drl.episode_reward_hist"].Count, res.Episodes)
	}

	kinds := map[string]int{}
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var e struct {
			Event string `json:"event"`
		}
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("bad event line: %v", err)
		}
		kinds[e.Event]++
	}
	if kinds[obs.EventRunStart] != 1 || kinds[obs.EventRunStop] != 1 {
		t.Fatalf("run_start/run_stop = %d/%d", kinds[obs.EventRunStart], kinds[obs.EventRunStop])
	}
	if kinds[obs.EventEpisode] != res.Episodes {
		t.Fatalf("episode events = %d, want %d", kinds[obs.EventEpisode], res.Episodes)
	}
}

// TestProgressDuringRun checks the Progress probe ends at the final tally.
func TestProgressDuringRun(t *testing.T) {
	s := MustNew(quickCfg(4, 6, 4))
	res := s.Run()
	ep, valid := s.Progress()
	if ep != res.Episodes || valid != len(res.Valid) {
		t.Fatalf("Progress() = (%d, %d), want (%d, %d)", ep, valid, res.Episodes, len(res.Valid))
	}
}

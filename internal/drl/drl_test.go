package drl

import (
	"math/rand"
	"testing"

	"routerless/internal/mcts"
	"routerless/internal/nn"
	"routerless/internal/rec"
	"routerless/internal/rl"
	"routerless/internal/topo"
)

func quickCfg(n, cap, episodes int) Config {
	cfg := DefaultConfig(n, cap)
	cfg.Episodes = episodes
	cfg.NN = nn.Config{N: n, BaseChannels: 2, Pools: 2}
	return cfg
}

func TestNewValidatesConfig(t *testing.T) {
	if _, err := New(Config{N: 1, OverlapCap: 4}); err == nil {
		t.Fatal("accepted N=1")
	}
	if _, err := New(Config{N: 4, OverlapCap: 0}); err == nil {
		t.Fatal("accepted missing overlap cap")
	}
	if _, err := New(Config{N: 4, OverlapCap: 6, NN: nn.Config{N: 8}}); err == nil {
		t.Fatal("accepted mismatched NN size")
	}
}

// TestChooseActionPrunesStaleEdges is the regression test for the stale-edge
// leak: penalized (never-legal) actions enter the tree through Backup, and a
// high backed-up return can make such an edge the selection argmax forever.
// chooseAction must prune the unplayable edge and re-select among the
// survivors — not abandon the node for prior sampling while the dead edge
// keeps shadowing its siblings.
func TestChooseActionPrunesStaleEdges(t *testing.T) {
	cfg := quickCfg(4, 6, 1)
	cfg.UseDNN = false
	cfg.Epsilon = 0 // never defer to the greedy override
	s := MustNew(cfg)
	ar := s.newArena()
	env := ar.env
	env.Reset()
	fp := env.Fingerprint()
	state := env.StateInto(ar.stateBuf(0))
	ar.states[0] = state

	legal := env.LegalActions()
	priors := make([]float64, len(legal))
	for i := range priors {
		priors[i] = 1
	}
	s.tree.Expand(fp, legal, priors)
	// A degenerate rectangle is never legal, but Backup happily records it
	// (episodes back up their full path, penalized steps included). The huge
	// return makes it the argmax by a wide margin.
	stale := rl.Action{X1: 1, Y1: 1, X2: 1, Y2: 1, Dir: topo.Clockwise}
	if env.Legal(stale) {
		t.Fatal("degenerate action unexpectedly legal")
	}
	s.tree.Backup([]mcts.PathStep{{Fingerprint: fp, Action: stale}}, []float64{1e6})
	if a, ok := s.tree.Select(fp); !ok || a != stale {
		t.Fatalf("setup: Select returned %v, want the stale edge %v", a, stale)
	}

	rng := rand.New(rand.NewSource(3))
	a, ok := s.chooseAction(nil, env, fp, state, rng, ar)
	if !ok {
		t.Fatal("chooseAction found no action")
	}
	if !env.Legal(a) {
		t.Fatalf("chooseAction returned illegal action %v", a)
	}
	if _, exists := s.tree.EdgeStats(fp)[stale]; exists {
		t.Fatal("stale edge survived chooseAction")
	}
	if next, ok := s.tree.Select(fp); !ok || !env.Legal(next) {
		t.Fatalf("post-prune Select returned %v (ok=%v), want a legal action", next, ok)
	}
}

func TestSearchFindsValidDesigns4x4(t *testing.T) {
	res := MustNew(quickCfg(4, 6, 8)).Run()
	if res.Episodes != 8 {
		t.Fatalf("episodes = %d", res.Episodes)
	}
	if len(res.Valid) == 0 {
		t.Fatal("no valid designs found")
	}
	best := res.Best
	if best.Topo == nil || !best.Topo.FullyConnected() {
		t.Fatal("best design not fully connected")
	}
	if best.Topo.MaxOverlap() > 6 {
		t.Fatalf("best design violates cap: overlap %d", best.Topo.MaxOverlap())
	}
	if best.AvgHops <= 0 {
		t.Fatalf("avg hops = %v", best.AvgHops)
	}
}

// The headline property: DRL search matches or beats the REC baseline at
// equal node overlapping (§6.1, Tables 3–4).
func TestSearchBeatsRECAt4x4(t *testing.T) {
	res := MustNew(quickCfg(4, 6, 12)).Run()
	recHops, _ := rec.MustGenerate(4).AverageHops()
	if res.Best.Topo == nil {
		t.Fatal("no design")
	}
	if res.Best.AvgHops > recHops {
		t.Fatalf("DRL %.3f worse than REC %.3f", res.Best.AvgHops, recHops)
	}
}

// TestSearchDeterministicSingleThread pins full single-thread determinism:
// two runs with the same seed must agree on every observable output —
// episode count, per-episode value error, every valid design (discovery
// episode, loop count, hops, and the exact topology), the best design, and
// the tree size. This is the regression guard for map-iteration-order
// nondeterminism in MCTS selection: Tree.Select breaks exact score ties by
// the lexicographically smallest action, so two identical runs traverse
// identical paths.
func TestSearchDeterministicSingleThread(t *testing.T) {
	a := MustNew(quickCfg(4, 6, 5)).Run()
	b := MustNew(quickCfg(4, 6, 5)).Run()
	assertSameResult(t, "rerun", a, b)
}

// assertSameResult fails unless the two search results agree on every
// observable output — episode count, per-episode value error to the bit,
// every valid design (discovery episode, loop count, hops, exact topology),
// the best design, and the tree size.
func assertSameResult(t *testing.T, label string, a, b *Result) {
	t.Helper()
	if a.Episodes != b.Episodes || a.TreeSize != b.TreeSize {
		t.Fatalf("%s: run shape differs: %d episodes/%d nodes vs %d/%d",
			label, a.Episodes, a.TreeSize, b.Episodes, b.TreeSize)
	}
	if len(a.ValueMSE) != len(b.ValueMSE) {
		t.Fatalf("%s: value-MSE series lengths differ: %d vs %d", label, len(a.ValueMSE), len(b.ValueMSE))
	}
	for i := range a.ValueMSE {
		if a.ValueMSE[i] != b.ValueMSE[i] {
			t.Fatalf("%s: episode %d value MSE differs: %v vs %v", label, i, a.ValueMSE[i], b.ValueMSE[i])
		}
	}
	if len(a.Valid) != len(b.Valid) {
		t.Fatalf("%s: valid-design counts differ: %d vs %d", label, len(a.Valid), len(b.Valid))
	}
	for i := range a.Valid {
		da, db := a.Valid[i], b.Valid[i]
		if da.Episode != db.Episode || da.Loops != db.Loops || da.AvgHops != db.AvgHops ||
			da.Topo.Fingerprint() != db.Topo.Fingerprint() {
			t.Fatalf("%s: valid design %d differs: ep %d/%d loops %d/%d hops %v/%v",
				label, i, da.Episode, db.Episode, da.Loops, db.Loops, da.AvgHops, db.AvgHops)
		}
	}
	if (a.Best.Topo == nil) != (b.Best.Topo == nil) {
		t.Fatalf("%s: one run found a best design, the other none", label)
	}
	if a.Best.Topo != nil &&
		(a.Best.AvgHops != b.Best.AvgHops || a.Best.Topo.Fingerprint() != b.Best.Topo.Fingerprint()) {
		t.Fatalf("%s: best designs differ: %.3f vs %.3f", label, a.Best.AvgHops, b.Best.AvgHops)
	}
}

// TestSearchDeterministicAcrossLockShapes pins the PR 10 byte-identity
// contract: at Threads == 1 the tree stripe count and the parameter-server
// chunk length are pure locking decompositions — every combination of
// whole-lock oracle, small, and default shapes must reproduce the identical
// Result, because per-node edge logic and the per-element SGD sequence are
// independent of which mutex guards them.
func TestSearchDeterministicAcrossLockShapes(t *testing.T) {
	base := MustNew(quickCfg(4, 6, 5)).Run()
	shapes := []struct {
		name    string
		stripes int
		chunk   int
	}{
		{"whole-lock oracles", 1, -1},
		{"tiny stripes+chunks", 2, 5},
		{"stripes only", 4, -1},
		{"chunks only", 1, 64},
	}
	for _, sh := range shapes {
		cfg := quickCfg(4, 6, 5)
		cfg.TreeStripes = sh.stripes
		cfg.ParamChunk = sh.chunk
		assertSameResult(t, sh.name, base, MustNew(cfg).Run())
	}
}

func TestSearchMultiThreaded(t *testing.T) {
	cfg := quickCfg(4, 6, 8)
	cfg.Threads = 4
	res := MustNew(cfg).Run()
	if res.Episodes != 8 {
		t.Fatalf("episodes = %d", res.Episodes)
	}
	if len(res.Valid) == 0 {
		t.Fatal("multithreaded search found nothing")
	}
	for _, d := range res.Valid {
		if !d.Topo.FullyConnected() || d.Topo.MaxOverlap() > 6 {
			t.Fatal("invalid design recorded as valid")
		}
	}
}

// TestSearchMultiThreadedStriped drives concurrent learners through
// deliberately tiny tree stripes and parameter chunks, so the quick-config
// net actually spans many chunks and stripe collisions happen (this file
// runs under -race in make ci): the hogwild-over-stripes path must still
// produce only valid designs and exact episode accounting.
func TestSearchMultiThreadedStriped(t *testing.T) {
	cfg := quickCfg(4, 6, 8)
	cfg.Threads = 4
	cfg.TreeStripes = 4
	cfg.ParamChunk = 97
	res := MustNew(cfg).Run()
	if res.Episodes != 8 {
		t.Fatalf("episodes = %d", res.Episodes)
	}
	for _, d := range res.Valid {
		if !d.Topo.FullyConnected() || d.Topo.MaxOverlap() > 6 {
			t.Fatal("invalid design recorded as valid")
		}
	}
}

// TestSearchBatchedTrainingNoDrift is the same-seed search-drift gate for
// the batched trajectory update: a single-threaded search trained through
// the fused ForwardBatchTrain/BackwardBatch tiles must reproduce the
// sequential per-step trainer's run exactly — same episode outcomes, same
// per-episode value MSE to the bit, same designs — because the two paths
// accumulate bit-identical gradients and BatchNorm statistics.
func TestSearchBatchedTrainingNoDrift(t *testing.T) {
	run := func(trainBatch int) *Result {
		cfg := quickCfg(4, 6, 6)
		cfg.TrainBatch = trainBatch
		return MustNew(cfg).Run()
	}
	seq := run(-1) // the sequential per-step oracle
	for _, tile := range []int{2, 16} {
		bat := run(tile)
		if seq.Episodes != bat.Episodes || seq.TreeSize != bat.TreeSize {
			t.Fatalf("tile %d: run shape drifted: %d episodes/%d nodes vs %d/%d",
				tile, seq.Episodes, seq.TreeSize, bat.Episodes, bat.TreeSize)
		}
		if len(seq.ValueMSE) != len(bat.ValueMSE) {
			t.Fatalf("tile %d: value-MSE series lengths differ", tile)
		}
		for i := range seq.ValueMSE {
			if seq.ValueMSE[i] != bat.ValueMSE[i] {
				t.Fatalf("tile %d: episode %d value MSE drifted: %v vs %v",
					tile, i, seq.ValueMSE[i], bat.ValueMSE[i])
			}
		}
		if len(seq.Valid) != len(bat.Valid) {
			t.Fatalf("tile %d: valid-design counts differ: %d vs %d",
				tile, len(seq.Valid), len(bat.Valid))
		}
		for i := range seq.Valid {
			if seq.Valid[i].Topo.Fingerprint() != bat.Valid[i].Topo.Fingerprint() {
				t.Fatalf("tile %d: valid design %d drifted", tile, i)
			}
		}
	}
}

// TestSearchBatchedTrainingMultiThread exercises the batched trainer on
// concurrent learner goroutines (this file runs under -race in make ci):
// each worker owns its network's batched-train scratch, so only the
// parameter-server exchange is shared.
func TestSearchBatchedTrainingMultiThread(t *testing.T) {
	cfg := quickCfg(4, 6, 8)
	cfg.Threads = 4
	cfg.TrainBatch = 8
	res := MustNew(cfg).Run()
	if res.Episodes != 8 {
		t.Fatalf("episodes = %d", res.Episodes)
	}
	for _, d := range res.Valid {
		if !d.Topo.FullyConnected() || d.Topo.MaxOverlap() > 6 {
			t.Fatal("invalid design recorded as valid")
		}
	}
}

func TestSearchAblationNoDNN(t *testing.T) {
	cfg := quickCfg(4, 6, 6)
	cfg.UseDNN = false
	res := MustNew(cfg).Run()
	if len(res.Valid) == 0 {
		t.Fatal("pure-MCTS ablation found nothing")
	}
	if len(res.ValueMSE) != 0 {
		t.Fatal("ValueMSE recorded without a DNN")
	}
}

func TestSearchAblationNoMCTS(t *testing.T) {
	cfg := quickCfg(4, 6, 6)
	cfg.UseMCTS = false
	res := MustNew(cfg).Run()
	if res.TreeSize != 0 {
		t.Fatalf("tree grew (%d nodes) with MCTS disabled", res.TreeSize)
	}
	if len(res.Valid) == 0 {
		t.Fatal("DNN-only ablation found nothing")
	}
}

func TestSearchTracksTrainingSignal(t *testing.T) {
	res := MustNew(quickCfg(4, 6, 6)).Run()
	if len(res.ValueMSE) != 6 {
		t.Fatalf("value MSE entries = %d, want 6", len(res.ValueMSE))
	}
	if res.TreeSize == 0 {
		t.Fatal("tree empty after MCTS search")
	}
}

func TestTighterCapStillSearchable(t *testing.T) {
	// Cap 4 < REC's required 6 on 4x4: REC cannot exist here, DRL can
	// still try (§6.2 "generate feasible designs for larger NoCs").
	cfg := quickCfg(4, 4, 10)
	res := MustNew(cfg).Run()
	for _, d := range res.Valid {
		if d.Topo.MaxOverlap() > 4 {
			t.Fatalf("design exceeds cap 4: %d", d.Topo.MaxOverlap())
		}
	}
	// Finding any valid design under the tight cap is a bonus; the search
	// must at least complete without violating constraints.
	if res.Episodes != 10 {
		t.Fatalf("episodes = %d", res.Episodes)
	}
}

func TestMaxLoopLenConstraintHonored(t *testing.T) {
	cfg := quickCfg(4, 6, 8)
	cfg.MaxLoopLen = 8 // forbids the 12-node perimeter
	res := MustNew(cfg).Run()
	for _, d := range res.Valid {
		for _, l := range d.Topo.Loops() {
			if l.Len() > 8 {
				t.Fatalf("design contains loop of length %d under cap 8", l.Len())
			}
		}
	}
	// The 4x4 corner pair needs a perimeter-12 loop, so no design can be
	// fully connected under this constraint: searches must respect that
	// rather than violating the cap.
	if len(res.Valid) != 0 {
		t.Fatalf("impossible constraint produced %d 'valid' designs", len(res.Valid))
	}
}

func TestWarmStartWeights(t *testing.T) {
	cfg := quickCfg(4, 6, 3)
	s := MustNew(cfg)
	s.Run()
	w := s.ModelWeights()
	if w == nil {
		t.Fatal("no weights")
	}
	cfg2 := quickCfg(4, 6, 2)
	cfg2.InitWeights = w
	s2, err := New(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if res := s2.Run(); res.Episodes != 2 {
		t.Fatalf("episodes = %d", res.Episodes)
	}
	// Wrong size rejected.
	cfg3 := quickCfg(4, 6, 2)
	cfg3.InitWeights = []float64{1}
	if _, err := New(cfg3); err == nil {
		t.Fatal("accepted bad InitWeights")
	}
	// No-DNN searches have no weights.
	cfg4 := quickCfg(4, 6, 1)
	cfg4.UseDNN = false
	s4 := MustNew(cfg4)
	s4.Run()
	if s4.ModelWeights() != nil {
		t.Fatal("weights present without DNN")
	}
}

func TestParamServer(t *testing.T) {
	ps := newParamServer([]float64{1, 2}, 0.5, 1, 0, nil)
	ps.apply([]float64{2, -4}) // clipped to [1, -1]
	w := ps.snapshot()
	if w[0] != 0.5 || w[1] != 2.5 {
		t.Fatalf("weights = %v", w)
	}
	if ps.updateCount() != 1 {
		t.Fatalf("updates = %d", ps.updateCount())
	}
	// Snapshot is a copy.
	w[0] = 99
	if ps.snapshot()[0] == 99 {
		t.Fatal("snapshot aliases internal weights")
	}
}

func TestParamServerLengthMismatchPanics(t *testing.T) {
	ps := newParamServer([]float64{1}, 0.1, 0, 0, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	ps.apply([]float64{1, 2})
}

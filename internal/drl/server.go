package drl

import (
	"math"
	"sync"
	"sync/atomic"

	"routerless/internal/obs"
)

// defaultParamChunk is the lock-chunk length (in weights) newParamServer
// selects: long enough that the per-chunk lock cost is noise against the
// O(chunk) float work it guards, short enough that the multi-megabyte nets
// split into several chunks concurrent workers can pipeline through.
const defaultParamChunk = 16384

// paramChunk is the lock guarding one fixed-length chunk of the weight
// vector, with the same TryLock-first contention telemetry as the MCTS tree
// stripes: acquires counts every acquisition, contended the subset that
// found the chunk held and had to queue.
type paramChunk struct {
	mu        sync.Mutex
	acquires  atomic.Int64
	contended atomic.Int64
}

// lock acquires the chunk mutex, counting the acquisition and whether it
// contended. The uncontended path is one CAS (TryLock) plus one atomic add.
func (c *paramChunk) lock() {
	if !c.mu.TryLock() {
		c.contended.Add(1)
		c.mu.Lock()
	}
	c.acquires.Add(1)
}

// paramServer is the parent thread's shared parameter store (§4.6, Fig. 8):
// child learners pull weight snapshots and push gradients; the server
// applies clipped SGD updates under per-chunk locks.
//
// The weight vector is striped into fixed chunks, each with its own mutex,
// so concurrent workers pipeline through the vector chunk by chunk instead
// of serializing on one whole-vector lock. Within a chunk every update is
// atomic; across chunks concurrent readers can observe some chunks before
// and some after an in-flight update ("hogwild over stripes" — the §4.6
// relaxation, where asynchronous learners effectively average through the
// shared parameters anyway). Single-threaded runs are bit-identical at any
// chunk length: chunks are walked in index order, the per-element update
// sequence is unchanged, and the norm accumulators are threaded through the
// chunk walk in that same element order. Config.ParamChunk < 0 keeps the
// whole vector in one chunk — the pre-striping whole-lock regime, retained
// as the tested oracle.
type paramServer struct {
	weights []float64
	lr      float64
	clip    float64
	// chunk is the stride in weights; chunks[i] guards
	// weights[i*chunk : min((i+1)*chunk, len)].
	chunk   int
	chunks  []paramChunk
	updates atomic.Int64

	// Telemetry (nil-safe no-ops when the search runs without a registry):
	// L2 gradient norms before and after element-wise clipping, and the
	// applied-update counter.
	gradPre  *obs.Gauge
	gradPost *obs.Gauge
	updateC  *obs.Counter
}

// newParamServer builds a server over a copy of init. chunk is the
// lock-chunk length in weights: 0 selects defaultParamChunk, negative keeps
// the whole vector under one lock (the oracle regime).
func newParamServer(init []float64, lr, clip float64, chunk int, reg *obs.Registry) *paramServer {
	w := append([]float64(nil), init...)
	switch {
	case chunk == 0:
		chunk = defaultParamChunk
	case chunk < 0:
		chunk = len(w)
	}
	if chunk < 1 {
		chunk = 1
	}
	n := (len(w) + chunk - 1) / chunk
	if n < 1 {
		n = 1
	}
	return &paramServer{
		weights:  w,
		lr:       lr,
		clip:     clip,
		chunk:    chunk,
		chunks:   make([]paramChunk, n),
		gradPre:  reg.Gauge("drl.grad_norm_preclip"),
		gradPost: reg.Gauge("drl.grad_norm_postclip"),
		updateC:  reg.Counter("drl.updates"),
	}
}

// rangeOf returns the weight range [lo, hi) guarded by chunks[c].
func (ps *paramServer) rangeOf(c int) (lo, hi int) {
	lo = c * ps.chunk
	hi = lo + ps.chunk
	if hi > len(ps.weights) {
		hi = len(ps.weights)
	}
	return lo, hi
}

// snapshot copies the current weights.
func (ps *paramServer) snapshot() []float64 {
	dst := make([]float64, len(ps.weights))
	ps.snapshotInto(dst)
	return dst
}

// snapshotInto copies the current weights into dst, the allocation-free
// variant workers use (dst is each worker's private buffer). Chunks are
// copied under their own locks, so with multiple chunks a concurrent update
// can be visible in some chunks and not others (never within a chunk).
func (ps *paramServer) snapshotInto(dst []float64) {
	if len(dst) != len(ps.weights) {
		panic("drl: snapshot buffer/weight length mismatch")
	}
	for c := range ps.chunks {
		lo, hi := ps.rangeOf(c)
		ck := &ps.chunks[c]
		ck.lock()
		copy(dst[lo:hi], ps.weights[lo:hi])
		ck.mu.Unlock()
	}
}

// apply performs one SGD step with the child's gradients (Eqs. 19–20).
func (ps *paramServer) apply(grads []float64) {
	ps.update(grads, nil)
}

// applyAndFetch is the fused per-episode round-trip: it clips, applies the
// SGD step, and copies each updated weight into dst in one pass under one
// lock acquisition per chunk — replacing the worker's former apply +
// snapshotInto pair (two acquisitions and three O(P) sweeps). The fetched
// weights are exactly the post-update values this call produced for each
// chunk, which single-threaded equals apply-then-snapshot bit for bit.
func (ps *paramServer) applyAndFetch(grads, dst []float64) {
	if len(dst) != len(ps.weights) {
		panic("drl: snapshot buffer/weight length mismatch")
	}
	ps.update(grads, dst)
}

// update walks the chunks in index order applying the clipped SGD step,
// mirroring updated weights into dst when non-nil. The norm accumulators
// thread through the walk, so telemetry sums in strict element order —
// bit-identical at every chunk length.
func (ps *paramServer) update(grads, dst []float64) {
	if len(grads) != len(ps.weights) {
		panic("drl: gradient/weight length mismatch")
	}
	// Norms are only accumulated when a registry was attached, keeping the
	// un-instrumented path free of the extra multiplies.
	track := ps.gradPre != nil
	preSq, postSq := 0.0, 0.0
	for c := range ps.chunks {
		lo, hi := ps.rangeOf(c)
		var d []float64
		if dst != nil {
			d = dst[lo:hi]
		}
		ck := &ps.chunks[c]
		ck.lock()
		preSq, postSq = applyRange(ps.weights[lo:hi], grads[lo:hi], d,
			ps.lr, ps.clip, track, preSq, postSq)
		ck.mu.Unlock()
	}
	ps.updates.Add(1)
	if track {
		ps.gradPre.Set(math.Sqrt(preSq))
		ps.gradPost.Set(math.Sqrt(postSq))
		ps.updateC.Inc()
	}
}

// applyRange performs the element-wise clipped SGD update
// w[i] -= lr*clip(g[i]) for one locked chunk, mirroring every updated
// weight into dst (when non-nil) in the same pass, and extends the running
// pre/post-clip squared-norm accumulators. The clip and telemetry branches
// are hoisted out of the per-element loop into four specialized loops; each
// performs the identical per-element arithmetic in the identical order, so
// which loop runs is bit-invisible. When clip <= 0 the post-clip additions
// equal the pre-clip additions and the accumulators start equal (both sum
// the same prefix), so one running sum serves both.
func applyRange(w, g, dst []float64, lr, clip float64, track bool, preSq, postSq float64) (float64, float64) {
	switch {
	case track && clip > 0:
		if dst != nil {
			for i, gi := range g {
				preSq += gi * gi
				if gi > clip {
					gi = clip
				} else if gi < -clip {
					gi = -clip
				}
				postSq += gi * gi
				nw := w[i] - lr*gi
				w[i] = nw
				dst[i] = nw
			}
		} else {
			for i, gi := range g {
				preSq += gi * gi
				if gi > clip {
					gi = clip
				} else if gi < -clip {
					gi = -clip
				}
				postSq += gi * gi
				w[i] -= lr * gi
			}
		}
	case track:
		for i, gi := range g {
			preSq += gi * gi
			nw := w[i] - lr*gi
			w[i] = nw
			if dst != nil {
				dst[i] = nw
			}
		}
		postSq = preSq
	case clip > 0:
		if dst != nil {
			for i, gi := range g {
				if gi > clip {
					gi = clip
				} else if gi < -clip {
					gi = -clip
				}
				nw := w[i] - lr*gi
				w[i] = nw
				dst[i] = nw
			}
		} else {
			for i, gi := range g {
				if gi > clip {
					gi = clip
				} else if gi < -clip {
					gi = -clip
				}
				w[i] -= lr * gi
			}
		}
	default:
		for i, gi := range g {
			nw := w[i] - lr*gi
			w[i] = nw
			if dst != nil {
				dst[i] = nw
			}
		}
	}
	return preSq, postSq
}

// updateCount returns how many gradient pushes have been applied.
func (ps *paramServer) updateCount() int {
	return int(ps.updates.Load())
}

// serverLockStats aggregates the per-chunk lock telemetry, mirroring
// mcts.LockStats: total acquisitions and how many of them contended.
// Lock-free reads.
type serverLockStats struct {
	Chunks    int
	Acquires  int64
	Contended int64
}

// lockStats returns the server's lock-contention telemetry.
func (ps *paramServer) lockStats() serverLockStats {
	ls := serverLockStats{Chunks: len(ps.chunks)}
	for c := range ps.chunks {
		ls.Acquires += ps.chunks[c].acquires.Load()
		ls.Contended += ps.chunks[c].contended.Load()
	}
	return ls
}

package drl

import "sync"

// paramServer is the parent thread's shared parameter store (§4.6, Fig. 8):
// child learners pull weight snapshots and push gradients; the server
// applies clipped SGD updates under a lock, which both serializes updates
// and effectively averages concurrent large and small gradients into the
// shared parameters.
type paramServer struct {
	mu      sync.Mutex
	weights []float64
	lr      float64
	clip    float64
	updates int
}

func newParamServer(init []float64, lr, clip float64) *paramServer {
	w := append([]float64(nil), init...)
	return &paramServer{weights: w, lr: lr, clip: clip}
}

// snapshot copies the current weights.
func (ps *paramServer) snapshot() []float64 {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	return append([]float64(nil), ps.weights...)
}

// apply performs one SGD step with the child's gradients (Eqs. 19–20).
func (ps *paramServer) apply(grads []float64) {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	if len(grads) != len(ps.weights) {
		panic("drl: gradient/weight length mismatch")
	}
	for i, g := range grads {
		if ps.clip > 0 {
			if g > ps.clip {
				g = ps.clip
			} else if g < -ps.clip {
				g = -ps.clip
			}
		}
		ps.weights[i] -= ps.lr * g
	}
	ps.updates++
}

// updateCount returns how many gradient pushes have been applied.
func (ps *paramServer) updateCount() int {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	return ps.updates
}

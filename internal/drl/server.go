package drl

import (
	"math"
	"sync"

	"routerless/internal/obs"
)

// paramServer is the parent thread's shared parameter store (§4.6, Fig. 8):
// child learners pull weight snapshots and push gradients; the server
// applies clipped SGD updates under a lock, which both serializes updates
// and effectively averages concurrent large and small gradients into the
// shared parameters.
type paramServer struct {
	mu      sync.Mutex
	weights []float64
	lr      float64
	clip    float64
	updates int

	// Telemetry (nil-safe no-ops when the search runs without a registry):
	// L2 gradient norms before and after element-wise clipping, and the
	// applied-update counter.
	gradPre  *obs.Gauge
	gradPost *obs.Gauge
	updateC  *obs.Counter
}

func newParamServer(init []float64, lr, clip float64, reg *obs.Registry) *paramServer {
	w := append([]float64(nil), init...)
	return &paramServer{
		weights:  w,
		lr:       lr,
		clip:     clip,
		gradPre:  reg.Gauge("drl.grad_norm_preclip"),
		gradPost: reg.Gauge("drl.grad_norm_postclip"),
		updateC:  reg.Counter("drl.updates"),
	}
}

// snapshot copies the current weights.
func (ps *paramServer) snapshot() []float64 {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	return append([]float64(nil), ps.weights...)
}

// snapshotInto copies the current weights into dst, the allocation-free
// variant workers use every episode (dst is each worker's private buffer).
func (ps *paramServer) snapshotInto(dst []float64) {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	if len(dst) != len(ps.weights) {
		panic("drl: snapshot buffer/weight length mismatch")
	}
	copy(dst, ps.weights)
}

// apply performs one SGD step with the child's gradients (Eqs. 19–20).
func (ps *paramServer) apply(grads []float64) {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	if len(grads) != len(ps.weights) {
		panic("drl: gradient/weight length mismatch")
	}
	// Norms are only accumulated when a registry was attached, keeping the
	// un-instrumented path free of the extra multiplies.
	track := ps.gradPre != nil
	preSq, postSq := 0.0, 0.0
	for i, g := range grads {
		if track {
			preSq += g * g
		}
		if ps.clip > 0 {
			if g > ps.clip {
				g = ps.clip
			} else if g < -ps.clip {
				g = -ps.clip
			}
		}
		if track {
			postSq += g * g
		}
		ps.weights[i] -= ps.lr * g
	}
	ps.updates++
	if track {
		ps.gradPre.Set(math.Sqrt(preSq))
		ps.gradPost.Set(math.Sqrt(postSq))
		ps.updateC.Inc()
	}
}

// updateCount returns how many gradient pushes have been applied.
func (ps *paramServer) updateCount() int {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	return ps.updates
}

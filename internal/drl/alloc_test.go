package drl

import (
	"math/rand"
	"testing"

	"routerless/internal/obs"
)

// TestEpisodeAllocBudget pins the episode arena contract: a warmed-up
// worker runs a full exploration cycle — fingerprints, state encodings,
// legality enumeration, prior sampling, greedy completion, final reward —
// inside a small fixed allocation budget. What remains is genuinely
// retained output: the cloned design of a valid episode and the canonical
// fingerprint strings rendered for states the episode visits. Before the
// arena refactor one episode at this size cost tens of thousands of
// allocations; a regression toward that shows up here long before it
// shows up in a training run.
//
// The DNN and MCTS halves are disabled so the budget measures the episode
// machinery itself; the network owns its own arena (PR 2 tests) and tree
// growth is retained state, both separately benchmarked.
func TestEpisodeAllocBudget(t *testing.T) {
	cfg := DefaultConfig(6, 10)
	cfg.UseDNN = false
	cfg.UseMCTS = false
	s := MustNew(cfg)
	rng := rand.New(rand.NewSource(5))
	ar := s.newArena()
	for i := 0; i < 5; i++ {
		s.runEpisode(nil, rng, cfg.GuidedActions, ar)
	}
	allocs := testing.AllocsPerRun(20, func() {
		s.runEpisode(nil, rng, cfg.GuidedActions, ar)
	})
	const budget = 60
	if allocs > budget {
		t.Fatalf("warmed-up episode allocates %.1f times, budget %d", allocs, budget)
	}
}

// TestEpisodeAllocBudgetWithTracing pins the tracing side of the episode
// contract, both halves of obs's zero-cost invariant:
//
//   - disabled (the default above): the arena's trace shard is nil, every
//     Start/End in the episode path is a single pointer check, and the
//     budget is identical to the uninstrumented one — the alloc count must
//     not move at all when the span calls are reached with a nil shard;
//   - enabled: a live shard records episode/MCTS spans into its ring, and
//     because Span is a value type and the ring is preallocated, the same
//     budget still holds.
func TestEpisodeAllocBudgetWithTracing(t *testing.T) {
	const budget = 60
	run := func(t *testing.T, tr *obs.Tracer) float64 {
		t.Helper()
		cfg := DefaultConfig(6, 10)
		cfg.UseDNN = false
		cfg.UseMCTS = false
		cfg.Trace = tr
		s := MustNew(cfg)
		rng := rand.New(rand.NewSource(5))
		ar := s.newArena()
		ar.trace = tr.Shard("drl.worker.00") // nil tracer -> nil shard
		for i := 0; i < 5; i++ {
			s.runEpisode(nil, rng, cfg.GuidedActions, ar)
		}
		return testing.AllocsPerRun(20, func() {
			s.runEpisode(nil, rng, cfg.GuidedActions, ar)
		})
	}
	t.Run("disabled", func(t *testing.T) {
		if allocs := run(t, nil); allocs > budget {
			t.Fatalf("episode with nil tracer allocates %.1f times, budget %d", allocs, budget)
		}
	})
	t.Run("enabled", func(t *testing.T) {
		if allocs := run(t, obs.NewTracer(1<<14)); allocs > budget {
			t.Fatalf("episode with live tracer allocates %.1f times, budget %d", allocs, budget)
		}
	})
}

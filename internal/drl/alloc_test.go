package drl

import (
	"math/rand"
	"testing"
)

// TestEpisodeAllocBudget pins the episode arena contract: a warmed-up
// worker runs a full exploration cycle — fingerprints, state encodings,
// legality enumeration, prior sampling, greedy completion, final reward —
// inside a small fixed allocation budget. What remains is genuinely
// retained output: the cloned design of a valid episode and the canonical
// fingerprint strings rendered for states the episode visits. Before the
// arena refactor one episode at this size cost tens of thousands of
// allocations; a regression toward that shows up here long before it
// shows up in a training run.
//
// The DNN and MCTS halves are disabled so the budget measures the episode
// machinery itself; the network owns its own arena (PR 2 tests) and tree
// growth is retained state, both separately benchmarked.
func TestEpisodeAllocBudget(t *testing.T) {
	cfg := DefaultConfig(6, 10)
	cfg.UseDNN = false
	cfg.UseMCTS = false
	s := MustNew(cfg)
	rng := rand.New(rand.NewSource(5))
	ar := s.newArena()
	for i := 0; i < 5; i++ {
		s.runEpisode(nil, rng, cfg.GuidedActions, ar)
	}
	allocs := testing.AllocsPerRun(20, func() {
		s.runEpisode(nil, rng, cfg.GuidedActions, ar)
	})
	const budget = 60
	if allocs > budget {
		t.Fatalf("warmed-up episode allocates %.1f times, budget %d", allocs, budget)
	}
}

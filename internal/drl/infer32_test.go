package drl

import (
	"math"
	"testing"
)

// The accuracy-drift gate for the f32 inference engine: a deterministic
// single-threaded search with brokered f32 priors must stay a working
// search. Byte identity is impossible by design — quantized priors differ
// from the f64 ones around the 7th decimal, and a sampled action can flip
// on any such difference, after which trajectories legitimately diverge —
// so this asserts on search quality instead: the f32 run completes the
// same number of episodes, still finds valid fully-connected designs, and
// its best average hop count lands within 15% of the f64 run's. (On these
// seeds the two runs land within a few percent; 15% leaves headroom for
// legitimate trajectory divergence without letting a broken engine pass.)
func TestSearchF32AccuracyDrift(t *testing.T) {
	legacy := MustNew(quickCfg(4, 6, 6)).Run()

	cfg := quickCfg(4, 6, 6)
	cfg.InferBatch = 8
	cfg.InferF32 = true
	f32 := MustNew(cfg).Run()

	if f32.Episodes != legacy.Episodes {
		t.Fatalf("episodes: f32 %d vs f64 %d", f32.Episodes, legacy.Episodes)
	}
	if len(legacy.Valid) == 0 {
		t.Fatal("f64 reference run found no valid designs")
	}
	if len(f32.Valid) == 0 {
		t.Fatal("f32 run found no valid designs")
	}
	if f32.Best.Topo == nil || !f32.Best.Topo.FullyConnected() {
		t.Fatal("f32 best design not fully connected")
	}
	rel := math.Abs(f32.Best.AvgHops-legacy.Best.AvgHops) / legacy.Best.AvgHops
	if rel > 0.15 {
		t.Fatalf("f32 search quality drifted: best avg hops %v vs f64 %v (rel %.3f)",
			f32.Best.AvgHops, legacy.Best.AvgHops, rel)
	}
	t.Logf("best avg hops: f64 %v, f32 %v (rel drift %.4f)",
		legacy.Best.AvgHops, f32.Best.AvgHops, rel)
}

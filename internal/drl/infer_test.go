package drl

import (
	"testing"
	"time"

	"routerless/internal/infer"
	"routerless/internal/obs"
)

func assertResultsEqual(t *testing.T, a, b *Result) {
	t.Helper()
	if a.Episodes != b.Episodes || a.TreeSize != b.TreeSize {
		t.Fatalf("run shape differs: %d episodes/%d nodes vs %d/%d",
			a.Episodes, a.TreeSize, b.Episodes, b.TreeSize)
	}
	if len(a.ValueMSE) != len(b.ValueMSE) {
		t.Fatalf("value-MSE series lengths differ: %d vs %d", len(a.ValueMSE), len(b.ValueMSE))
	}
	for i := range a.ValueMSE {
		if a.ValueMSE[i] != b.ValueMSE[i] {
			t.Fatalf("episode %d value MSE differs: %v vs %v", i, a.ValueMSE[i], b.ValueMSE[i])
		}
	}
	if len(a.Valid) != len(b.Valid) {
		t.Fatalf("valid-design counts differ: %d vs %d", len(a.Valid), len(b.Valid))
	}
	for i := range a.Valid {
		da, db := a.Valid[i], b.Valid[i]
		if da.Episode != db.Episode || da.Loops != db.Loops || da.AvgHops != db.AvgHops ||
			da.Topo.Fingerprint() != db.Topo.Fingerprint() {
			t.Fatalf("valid design %d differs: ep %d/%d loops %d/%d hops %v/%v",
				i, da.Episode, db.Episode, da.Loops, db.Loops, da.AvgHops, db.AvgHops)
		}
	}
	if (a.Best.Topo == nil) != (b.Best.Topo == nil) {
		t.Fatal("one run found a best design, the other did not")
	}
	if a.Best.Topo != nil &&
		(a.Best.AvgHops != b.Best.AvgHops || a.Best.Topo.Fingerprint() != b.Best.Topo.Fingerprint()) {
		t.Fatalf("best designs differ: %.3f vs %.3f", a.Best.AvgHops, b.Best.AvgHops)
	}
}

// The determinism satellite: a single-threaded broker-routed search (batch
// forwards of size 1, cache hits and all) must produce a Result identical
// to the legacy per-worker Forward path — same designs, same per-episode
// value errors, same tree. This holds because ForwardBatch(B=1) is
// byte-identical to Forward, every weight sync also carries the BatchNorm
// running statistics, and cached evaluations equal re-evaluations within a
// weight generation.
func TestSearchBrokerMatchesLegacySingleThread(t *testing.T) {
	legacy := MustNew(quickCfg(4, 6, 6)).Run()

	cfg := quickCfg(4, 6, 6)
	cfg.InferBatch = 8
	brokered := MustNew(cfg).Run()
	assertResultsEqual(t, legacy, brokered)

	// Disabling the cache must not change results either (it only changes
	// whether repeated fingerprints recompute).
	cfg = quickCfg(4, 6, 6)
	cfg.InferBatch = 8
	cfg.InferCacheSize = -1
	uncached := MustNew(cfg).Run()
	assertResultsEqual(t, legacy, uncached)
}

// Broker-routed multithreaded search completes and reports broker activity
// through the shared metrics registry. The flush window is set so the
// FlushWait plumbing (Config.InferFlush → infer.Config.FlushWait) is
// exercised on the timer top-up path rather than quiescence drains.
func TestSearchBrokerMultiThread(t *testing.T) {
	cfg := quickCfg(4, 6, 12)
	cfg.Threads = 4
	cfg.InferBatch = 4
	cfg.InferFlush = 200 * time.Microsecond
	reg := obs.NewRegistry()
	cfg.Metrics = reg
	s := MustNew(cfg)
	res := s.Run()
	if res.Episodes != 12 {
		t.Fatalf("episodes = %d", res.Episodes)
	}
	if len(res.Valid) == 0 {
		t.Fatal("broker-routed multithreaded search found nothing")
	}
	if s.InferStats() != (infer.Stats{}) {
		t.Fatal("InferStats should be zero after Run closes the broker")
	}
	snap := reg.Snapshot()
	if snap.Counters["infer.requests"] == 0 {
		t.Fatal("no inference requests reached the broker")
	}
	if snap.Counters["infer.batches"] == 0 {
		t.Fatal("broker evaluated no batches")
	}
	if snap.Counters["infer.cache_invalidations"] == 0 {
		t.Fatal("per-episode weight syncs should have invalidated the cache")
	}
}

// Package drl is the paper's core contribution: the deep-reinforcement-
// learning design-space exploration framework (§4). Each exploration cycle
// starts from a blank routerless NoC; a deep two-headed policy/value
// network proposes an initial loop, a Monte Carlo tree search guides the
// following additions (with an ε-greedy override running Algorithm 1),
// rewards penalize repetitive/invalid/illegal loops, and the finished
// design's hop count relative to mesh trains both the network (advantage
// actor-critic) and the tree. Multi-threaded exploration (§4.6) shares a
// parameter server and the search tree across learner goroutines.
package drl

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"routerless/internal/infer"
	"routerless/internal/mcts"
	"routerless/internal/nn"
	"routerless/internal/obs"
	"routerless/internal/rl"
	"routerless/internal/topo"
)

// Config parameterizes a search.
type Config struct {
	// N is the NoC side; OverlapCap the wiring constraint (>0).
	N, OverlapCap int
	// Episodes is the total number of exploration cycles across all
	// threads; Threads the learner goroutine count (§4.6).
	Episodes, Threads int
	// Epsilon is the ε-greedy probability of deferring to Algorithm 1
	// (Table 1 explores 0.05–0.3).
	Epsilon float64
	// CPuct is the exploration constant c of Eq. 22.
	CPuct float64
	// UseDNN and UseMCTS toggle the framework's two halves; disabling
	// one yields the ablation baselines of EXPERIMENTS.md.
	UseDNN, UseMCTS bool
	// NN sizes the policy/value network; a zero value selects a
	// reduced-width network appropriate for the overall budget.
	NN nn.Config
	// LR/GradClip/Gamma drive actor-critic training (Eqs. 17–20).
	LR, GradClip, Gamma float64
	// TrainBatch is the tile size of the batched trajectory update: each
	// worker's A2C pass evaluates up to this many trajectory steps per fused
	// ForwardBatchTrain/BackwardBatch cycle instead of one Forward/Backward
	// per step. Both paths accumulate bit-identical gradients and BatchNorm
	// statistics, so this is purely a throughput knob. Zero selects the
	// rl.DefaultA2C tile; negative values force the per-step sequential
	// path (the byte-identity oracle).
	TrainBatch int
	// MaxPenalties bounds consecutive non-valid actions before the
	// episode falls back to the greedy action.
	MaxPenalties int
	// GuidedActions is the number of valid loop additions chosen by the
	// DNN/MCTS policy before the episode switches to Algorithm 1 to
	// complete the design (Fig. 4: "additional actions can be taken, if
	// necessary, to complete the design"). The guided prefix defines the
	// design-space region being explored; completion makes the design
	// evaluable. The per-worker value self-paces between 1 and this cap:
	// episodes that dead-end shorten it, successes restore it. Zero means
	// pure greedy completion with no guided exploration.
	GuidedActions int
	// MinGain/NoGainStreak end an episode early once the design is fully
	// connected and successive additions stop improving average hops,
	// trimming useless loop additions (§3.2).
	MinGain      float64
	NoGainStreak int
	// IllegalPenalty overrides the environment's −5N illegal-action
	// reward when nonzero (the reward-shaping ablation).
	IllegalPenalty float64
	// MaxLoopLen, when > 0, restricts loop perimeters — the additional
	// design constraint of §6.2.
	MaxLoopLen int
	// InferBatch, when > 0, routes policy/value evaluations through a
	// shared batched-inference broker (internal/infer): learner goroutines
	// submit fingerprint-keyed requests that are coalesced, batched up to
	// this size, evaluated in one batch forward, and fronted by an LRU
	// cache invalidated on every parameter-server sync. Zero keeps the
	// legacy per-worker Forward path (the single-thread determinism
	// oracle).
	InferBatch int
	// InferCacheSize sizes the broker's evaluation cache (0 = broker
	// default, negative = caching disabled). Ignored when InferBatch == 0.
	InferCacheSize int
	// InferF32 routes brokered evaluations through the float32 inference
	// engine (nn.InferNet, re-quantized from the f64 weights on every
	// sync): about half the inference working set in exchange for ≤1e-4
	// relative drift on priors and value. Training and the legacy
	// per-worker path stay f64. Ignored when InferBatch == 0.
	InferF32 bool
	// InferFlush, when > 0, is the broker's batch top-up window: after the
	// first request of a batch arrives the collector waits up to this long
	// for more before flushing. Zero flushes on quiescence. Longer waits
	// raise batch occupancy (amortizing the forward) at the cost of
	// latency on the first request of each batch. Ignored when
	// InferBatch == 0.
	InferFlush time.Duration
	// TreeStripes overrides the MCTS tree's lock-stripe count: 0 selects
	// mcts.DefaultStripes, 1 keeps the whole node map under one mutex (the
	// pre-striping whole-lock oracle). Purely a concurrency knob — the
	// stripe count never changes results at Threads == 1.
	TreeStripes int
	// ParamChunk is the parameter server's lock-chunk length in weights:
	// 0 selects the server default, negative keeps the whole weight vector
	// under one lock (the pre-striping oracle). Single-threaded runs are
	// bit-identical at every chunk length; multi-threaded runs relax to
	// hogwild-over-stripes (see server.go).
	ParamChunk int
	// Seed makes single-threaded runs fully deterministic.
	Seed int64
	// InitWeights, when non-nil, warm-starts the policy/value network
	// (e.g. from a model saved by a previous search).
	InitWeights []float64
	// Metrics, when non-nil, receives search telemetry: per-worker episode
	// counters, episode reward / value-MSE gauges, gradient norms pre/post
	// clip, the update counter, and MCTS tree size.
	Metrics *obs.Registry
	// Events, when non-nil, receives structured run events: run_start and
	// run_stop at info level plus one episode event per exploration cycle
	// at debug level.
	Events *obs.Logger
	// Trace, when non-nil, records hierarchical spans: drl.run on the Run
	// goroutine, and per worker one track of drl.episode spans containing
	// mcts.select / mcts.expand / mcts.backup / drl.train plus the
	// inference spans (infer.submit or nn.forward). A nil tracer costs one
	// nil check per span site and zero allocation.
	Trace *obs.Tracer
}

// DefaultConfig returns a balanced configuration for an n×n search under
// the given overlap cap.
func DefaultConfig(n, overlapCap int) Config {
	return Config{
		N: n, OverlapCap: overlapCap,
		Episodes: 30, Threads: 1,
		Epsilon: 0.1, CPuct: 1.5,
		UseDNN: true, UseMCTS: true,
		NN: nn.Config{N: n, BaseChannels: 4, Pools: 3},
		LR: 1e-3, GradClip: 1.0, Gamma: 0.99,
		MaxPenalties:  8,
		GuidedActions: max(2, n/2),
		MinGain:       1e-9, NoGainStreak: 2,
		Seed: 1,
	}
}

// Design is one fully connected design discovered during search.
type Design struct {
	Topo    *topo.Topology
	AvgHops float64
	Loops   int
	Episode int
}

// Result summarizes a search.
type Result struct {
	// Best is the minimum-hop fully connected design (nil Topo when the
	// search never completed a design).
	Best Design
	// Valid lists every fully connected design, in discovery order.
	Valid []Design
	// Episodes actually run.
	Episodes int
	// ValueMSE per episode (training-progress signal; empty without DNN).
	ValueMSE []float64
	// TreeSize is the number of distinct designs recorded by the MCTS.
	TreeSize int
}

// Searcher runs the framework.
type Searcher struct {
	cfg  Config
	tree *mcts.Tree

	server *paramServer
	// broker is the shared batched-inference service, non-nil only while a
	// Run with cfg.InferBatch > 0 is in progress.
	broker *infer.Broker

	mu      sync.Mutex
	result  Result
	episode int
}

// New validates the configuration and builds a searcher.
func New(cfg Config) (*Searcher, error) {
	if cfg.N < 2 {
		return nil, fmt.Errorf("drl: NoC size %d too small", cfg.N)
	}
	if cfg.OverlapCap < 1 {
		return nil, fmt.Errorf("drl: search requires a node overlapping cap (got %d)", cfg.OverlapCap)
	}
	if cfg.Threads < 1 {
		cfg.Threads = 1
	}
	if cfg.Episodes < 1 {
		cfg.Episodes = 1
	}
	if cfg.NN.N == 0 {
		cfg.NN = nn.Config{N: cfg.N, BaseChannels: 4, Pools: 3}
	}
	if cfg.NN.N != cfg.N {
		return nil, fmt.Errorf("drl: NN config N=%d mismatches NoC N=%d", cfg.NN.N, cfg.N)
	}
	s := &Searcher{cfg: cfg, tree: mcts.NewTreeStripes(cfg.CPuct, cfg.TreeStripes)}
	if cfg.UseDNN {
		master := nn.NewPolicyValueNet(cfg.NN, cfg.Seed)
		init := cfg.InitWeights
		if init == nil {
			init = master.GetWeights()
		} else if len(init) != master.NumParams() {
			return nil, fmt.Errorf("drl: InitWeights has %d values, network needs %d",
				len(init), master.NumParams())
		}
		s.server = newParamServer(init, cfg.LR, cfg.GradClip, cfg.ParamChunk, cfg.Metrics)
	}
	return s, nil
}

// ModelWeights returns the parameter server's current weights (nil when
// the search runs without a DNN); save them with nn.MarshalModel via a
// network constructed from the same nn.Config to resume training later.
func (s *Searcher) ModelWeights() []float64 {
	if s.server == nil {
		return nil
	}
	return s.server.snapshot()
}

// MustNew is New that panics on error.
func MustNew(cfg Config) *Searcher {
	s, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// Progress reports the episodes completed and valid designs found so far;
// safe to call concurrently with Run (e.g. from a progress-printing
// goroutine).
func (s *Searcher) Progress() (episodes, valid int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.episode, len(s.result.Valid)
}

// Run executes the configured exploration cycles and returns the search
// result. With Threads == 1 the run is deterministic in Seed.
func (s *Searcher) Run() *Result {
	s.cfg.Events.Info(obs.EventRunStart, map[string]any{
		"n":        s.cfg.N,
		"cap":      s.cfg.OverlapCap,
		"episodes": s.cfg.Episodes,
		"threads":  s.cfg.Threads,
		"epsilon":  s.cfg.Epsilon,
		"use_dnn":  s.cfg.UseDNN,
		"use_mcts": s.cfg.UseMCTS,
	})
	run := s.cfg.Trace.Shard("drl.run").Start(obs.SpanSearchRun)
	defer run.End()
	if s.cfg.UseDNN && s.cfg.InferBatch > 0 {
		stop := s.startBroker()
		defer stop()
	}
	var wg sync.WaitGroup
	perThread := s.cfg.Episodes / s.cfg.Threads
	extra := s.cfg.Episodes % s.cfg.Threads
	for t := 0; t < s.cfg.Threads; t++ {
		n := perThread
		if t < extra {
			n++
		}
		if n == 0 {
			continue
		}
		wg.Add(1)
		go func(tid, episodes int) {
			defer wg.Done()
			s.worker(tid, episodes)
		}(t, n)
	}
	wg.Wait()
	s.mu.Lock()
	s.result.TreeSize = s.tree.Size()
	out := s.result
	s.mu.Unlock()
	// Contention telemetry: how often learners queued on a tree stripe or a
	// parameter chunk this run. Gauge handles are nil-safe no-ops without a
	// registry, so this costs nothing un-instrumented.
	reg := s.cfg.Metrics
	ts := s.tree.LockStats()
	reg.Gauge("mcts.lock_stripes").Set(float64(ts.Stripes))
	reg.Gauge("mcts.lock_acquires").Set(float64(ts.Acquires))
	reg.Gauge("mcts.lock_contended").Set(float64(ts.Contended))
	if s.server != nil {
		ss := s.server.lockStats()
		reg.Gauge("drl.server_lock_chunks").Set(float64(ss.Chunks))
		reg.Gauge("drl.server_lock_acquires").Set(float64(ss.Acquires))
		reg.Gauge("drl.server_lock_contended").Set(float64(ss.Contended))
	}
	stop := map[string]any{
		"episodes":  out.Episodes,
		"valid":     len(out.Valid),
		"tree_size": out.TreeSize,
	}
	if out.Best.Topo != nil {
		stop["best_hops"] = out.Best.AvgHops
		stop["best_loops"] = out.Best.Loops
	}
	s.cfg.Events.Info(obs.EventRunStop, stop)
	return &out
}

// startBroker builds the dedicated evaluator network from the parameter
// server's current weights and starts the shared inference broker. The
// returned stop function closes the broker after the workers have drained.
func (s *Searcher) startBroker() func() {
	net := nn.NewPolicyValueNet(s.cfg.NN, s.cfg.Seed)
	net.SetWeights(s.server.snapshot())
	prec := infer.F64
	if s.cfg.InferF32 {
		prec = infer.F32
	}
	br := infer.New(infer.Config{
		Net:       net,
		Batch:     s.cfg.InferBatch,
		FlushWait: s.cfg.InferFlush,
		CacheSize: s.cfg.InferCacheSize,
		Precision: prec,
		Metrics:   s.cfg.Metrics,
		Trace:     s.cfg.Trace,
	})
	s.mu.Lock()
	s.broker = br
	s.mu.Unlock()
	return func() {
		s.mu.Lock()
		s.broker = nil
		s.mu.Unlock()
		br.Close()
	}
}

// InferStats reports the inference broker's counters; the zero Stats when
// no broker is running (InferBatch == 0 or outside Run). Safe to call
// concurrently with Run, like Progress.
func (s *Searcher) InferStats() infer.Stats {
	s.mu.Lock()
	br := s.broker
	s.mu.Unlock()
	if br == nil {
		return infer.Stats{}
	}
	return br.Stats()
}

// worker is one learner thread (§4.6): it keeps a private copy of the DNN,
// refreshes weights from the parameter server before each episode, and
// pushes gradients back after each episode.
func (s *Searcher) worker(tid, episodes int) {
	rng := rand.New(rand.NewSource(s.cfg.Seed + int64(tid)*7919))
	var net *nn.PolicyValueNet
	var weights, grads, stats []float64
	if s.cfg.UseDNN {
		// Each worker owns its network — and with it the network's scratch
		// arena (im2col buffers, activation/gradient tensors), which is
		// not goroutine-safe. Only flat weight/grad vectors cross the
		// worker boundary, through these per-worker reusable buffers, so
		// the steady-state training loop performs no heap allocation.
		net = nn.NewPolicyValueNet(s.cfg.NN, s.cfg.Seed+int64(tid))
		weights = make([]float64, net.NumParams())
		grads = make([]float64, net.NumParams())
		s.server.snapshotInto(weights)
		net.SetWeights(weights)
		if s.broker != nil {
			// The broker's evaluator must track not just the weights but the
			// BatchNorm running statistics eval-mode inference reads (they
			// evolve during training forwards and are NOT part of the flat
			// weight vector).
			stats = make([]float64, net.NumStats())
			net.CopyStatsInto(stats)
			s.broker.Sync(weights, stats)
		}
	}
	a2c := rl.A2C{Gamma: s.cfg.Gamma, ValueCoeff: 0.5, TrainBatch: rl.DefaultA2C().TrainBatch}
	switch {
	case s.cfg.TrainBatch > 0:
		a2c.TrainBatch = s.cfg.TrainBatch
	case s.cfg.TrainBatch < 0:
		a2c.TrainBatch = 0 // sequential per-step oracle
	}
	ar := s.newArena()
	// One trace shard per worker goroutine (the ownership rule): all of
	// this worker's spans land on one track.
	ar.trace = s.cfg.Trace.Shard(fmt.Sprintf("drl.worker.%02d", tid))
	// Metric handles are resolved once per worker; all of them are no-ops
	// when the search runs without a registry.
	reg := s.cfg.Metrics
	epCounter := reg.Counter(fmt.Sprintf("drl.worker.%02d.episodes", tid))
	rewardGauge := reg.Gauge("drl.episode_reward")
	rewardHist := reg.Histogram("drl.episode_reward_hist")
	mseGauge := reg.Gauge("drl.value_mse")
	validCounter := reg.Counter("drl.valid_designs")
	treeGauge := reg.Gauge("drl.tree_size")
	// The guided-phase length self-paces: episodes that dead-end without
	// a complete design shorten the guided prefix (exploring closer to
	// the reliable completion heuristic); successes lengthen it back up
	// to the configured value, recovering exploration breadth.
	guided := s.cfg.GuidedActions
	for ep := 0; ep < episodes; ep++ {
		epSpan := ar.trace.Start(obs.SpanEpisode)
		traj, path, design := s.runEpisode(net, rng, guided, ar)
		if design == nil {
			if guided > 1 {
				guided--
			}
		} else if guided < s.cfg.GuidedActions {
			guided++
		}

		// Backup through the tree with discounted returns-to-go.
		if cap(ar.returns) < len(traj.Steps) {
			ar.returns = make([]float64, len(traj.Steps))
		}
		returns := ar.returns[:len(traj.Steps)]
		ar.returns = returns
		g := traj.Final
		for i := len(traj.Steps) - 1; i >= 0; i-- {
			g = traj.Steps[i].Reward + s.cfg.Gamma*g
			returns[i] = g
		}
		if s.cfg.UseMCTS {
			bk := ar.trace.Start(obs.SpanMCTSBackup)
			s.tree.Backup(path, returns)
			bk.End()
		}

		mse := 0.0
		if net != nil {
			tr := ar.trace.Start(obs.SpanTrain)
			net.ZeroGrads()
			mse = a2c.Accumulate(net, traj)
			net.CopyGradsInto(grads)
			// Fused push/pull: one chunk-walk clips, applies the SGD step,
			// and copies the updated weights back out — replacing the former
			// apply + snapshotInto pair (two lock acquisitions, three O(P)
			// sweeps per episode). Single-threaded this is bit-identical to
			// the pair; multi-threaded the fetch is exactly this worker's
			// post-update view per chunk.
			s.server.applyAndFetch(grads, weights)
			net.ZeroGrads()
			net.SetWeights(weights)
			if s.broker != nil {
				// Publish the refreshed weights (and the running statistics
				// the training forwards just advanced) to the shared
				// evaluator; this bumps the broker generation and drops
				// every cached evaluation computed under the old weights.
				net.CopyStatsInto(stats)
				s.broker.Sync(weights, stats)
			}
			tr.End()
		}

		s.mu.Lock()
		s.episode++
		epNum := s.episode
		s.result.Episodes = epNum
		if net != nil {
			s.result.ValueMSE = append(s.result.ValueMSE, mse)
		}
		if design != nil {
			design.Episode = epNum
			s.result.Valid = append(s.result.Valid, *design)
			if s.result.Best.Topo == nil || design.AvgHops < s.result.Best.AvgHops {
				s.result.Best = *design
			}
		}
		s.mu.Unlock()

		epCounter.Inc()
		rewardGauge.Set(traj.Final)
		rewardHist.Observe(traj.Final)
		if net != nil {
			mseGauge.Set(mse)
		}
		if design != nil {
			validCounter.Inc()
		}
		if s.cfg.UseMCTS {
			// treeGauge is a nil-safe no-op without a registry, like every
			// other handle in this loop — gate only on the tree existing.
			treeGauge.Set(float64(s.tree.Size()))
		}
		if s.cfg.Events.Enabled(obs.LevelDebug) {
			fields := map[string]any{
				"episode": epNum,
				"worker":  tid,
				"reward":  traj.Final,
				"steps":   len(traj.Steps),
				"valid":   design != nil,
			}
			if net != nil {
				fields["value_mse"] = mse
			}
			if design != nil {
				fields["avg_hops"] = design.AvgHops
				fields["loops"] = design.Loops
			}
			s.cfg.Events.Debug(obs.EventEpisode, fields)
		}
		epSpan.End()
	}
}

// episodeArena is one worker's reusable episode state. Every buffer an
// episode needs — the environment itself (with its topology and greedy
// score cache), the trajectory and tree path, one state matrix per
// decision point, the flat prior weights, and the backup returns — is
// allocated once per worker and recycled, so steady-state episodes touch
// the heap only for results that outlive them (valid designs, new tree
// nodes, fingerprint keys).
type episodeArena struct {
	env     *rl.Env
	traj    rl.Trajectory
	path    []mcts.PathStep
	returns []float64
	// states holds one reusable hop-matrix buffer per trajectory step;
	// StepRecord.State aliases these until the next episode overwrites
	// them, which is safe because training consumes the trajectory before
	// the worker starts its next episode.
	states [][]float64
	// priors holds the prior weight of each legal action, aligned with the
	// slice LegalActions returned.
	priors []float64
	// trace is the worker's span recorder (nil when tracing is off); owned
	// by the worker goroutine like every other arena buffer.
	trace *obs.TraceShard
}

// newArena builds a worker's arena with a configured environment.
func (s *Searcher) newArena() *episodeArena {
	env := rl.NewEnv(s.cfg.N, s.cfg.OverlapCap)
	if s.cfg.IllegalPenalty != 0 {
		env.IllegalPenalty = s.cfg.IllegalPenalty
	}
	env.MaxLoopLen = s.cfg.MaxLoopLen
	return &episodeArena{env: env}
}

// stateBuf returns the reusable state buffer for trajectory step i.
func (ar *episodeArena) stateBuf(i int) []float64 {
	for len(ar.states) <= i {
		ar.states = append(ar.states, nil)
	}
	return ar.states[i]
}

// runEpisode performs one exploration cycle (Fig. 4) and returns the
// trajectory of guided steps, the tree path, and the finished design when
// fully connected. The trajectory and path alias arena buffers valid until
// the next runEpisode call on the same arena.
//
// Each episode has two phases. The guided phase takes up to GuidedActions
// valid loop additions chosen by the DNN/MCTS policy (ε-greedy over
// Algorithm 1); it is the exploratory part that gets trained and backed
// up. The completion phase then adds loops with Algorithm 1 until the
// design cannot improve, making the episode's design evaluable ("additional
// actions ... to complete the design"). The final return reflects the
// whole design, so guided prefixes leading to poor completions are
// penalized through training.
func (s *Searcher) runEpisode(net *nn.PolicyValueNet, rng *rand.Rand, guided int, ar *episodeArena) (rl.Trajectory, []mcts.PathStep, *Design) {
	env := ar.env
	env.Reset()
	ar.traj.Steps = ar.traj.Steps[:0]
	ar.traj.Final = 0
	ar.path = ar.path[:0]

	maxSteps := guided + s.cfg.MaxPenalties*(guided+1) + 4
	penalties := 0
	valid := 0
	first := true
	for len(ar.traj.Steps) < maxSteps && valid < guided {
		fp := env.Fingerprint()
		step := len(ar.traj.Steps)
		state := env.StateInto(ar.stateBuf(step))
		ar.states[step] = state
		var a rl.Action
		var ok bool
		switch {
		case penalties > s.cfg.MaxPenalties:
			a, ok = rl.Greedy(env)
		case first && net != nil:
			// The DNN proposes the initial action raw (Fig. 4); it may
			// be penalized, teaching constraint compliance.
			a, ok = s.sampleRaw(net, fp, state, rng, ar.trace), true
		default:
			a, ok = s.chooseAction(net, env, fp, state, rng, ar)
		}
		first = false
		if !ok {
			break // no legal action remains
		}
		r, kind := env.Step(a)
		ar.traj.Steps = append(ar.traj.Steps, rl.StepRecord{State: state, Action: a, Reward: r})
		ar.path = append(ar.path, mcts.PathStep{Fingerprint: fp, Action: a})
		if kind == rl.Valid {
			penalties = 0
			valid++
		} else {
			penalties++
		}
	}

	s.complete(env)

	ar.traj.Final = env.FinalReward()
	var design *Design
	if env.FullyConnected() {
		design = &Design{
			Topo:    env.Topology().Clone(),
			AvgHops: env.AverageHops(),
			Loops:   env.Topology().NumLoops(),
		}
	}
	return ar.traj, ar.path, design
}

// complete drives Algorithm 1 until the design stops improving: while not
// fully connected every greedy addition helps; afterwards additions
// continue only while they reduce average hops (MinGain/NoGainStreak).
func (s *Searcher) complete(env *rl.Env) {
	rl.GreedyImprove(env, s.cfg.MinGain, s.cfg.NoGainStreak)
}

// chooseAction picks the next loop per the framework: ε-greedy Algorithm 1,
// otherwise tree selection at known states (Eq. 21), otherwise
// expansion+evaluation at leaves with DNN priors. state must be the
// current hop-matrix encoding (already computed by the caller for the
// trajectory record).
func (s *Searcher) chooseAction(net *nn.PolicyValueNet, env *rl.Env, fp string, state []float64, rng *rand.Rand, ar *episodeArena) (rl.Action, bool) {
	if rng.Float64() < s.cfg.Epsilon {
		if a, ok := rl.Greedy(env); ok {
			return a, true
		}
		return rl.Action{}, false
	}
	if s.cfg.UseMCTS {
		sel := ar.trace.Start(obs.SpanMCTSSelect)
		// Selected edges can be stale: the overlap cap constrains against
		// the evolving design, so an action recorded on one episode's path
		// may be forbidden on this one's. A stale selection is pruned from
		// the node and selection retries among the survivors — abandoning
		// the tree here would leak the dead edge (it stays the argmax and
		// shadows its siblings forever) and waste the node's statistics.
		for {
			a, ok := s.tree.Select(fp)
			if !ok {
				break
			}
			if env.Legal(a) {
				sel.End()
				return a, true
			}
			s.tree.Prune(fp, a)
		}
		sel.End()
	}
	ex := ar.trace.Start(obs.SpanMCTSExpand)
	legal := env.LegalActions()
	if len(legal) == 0 {
		ex.End()
		return rl.Action{}, false
	}
	priors := s.priorsInto(net, fp, state, legal, ar)
	if s.cfg.UseMCTS {
		s.tree.Expand(fp, legal, priors)
	}
	ex.End()
	return samplePriors(legal, priors, rng), true
}

// policyEval returns the policy heads (four coordinate softmax groups and
// the tanh direction) for the given state: through the shared inference
// broker when one is running — concurrent learners then batch into one
// forward and share cached evaluations keyed by the canonical topology
// fingerprint — or via the worker's own network on the legacy path. Both
// paths are byte-identical for equal weights and running statistics.
func (s *Searcher) policyEval(net *nn.PolicyValueNet, fp string, state []float64, sh *obs.TraceShard) (probs *[4][]float64, dir float64) {
	if s.broker != nil {
		sub := sh.Start(obs.SpanInferSubmit)
		ev := s.broker.Submit(fp, state)
		sub.End()
		return &ev.CoordProbs, ev.Dir
	}
	fw := sh.Start(obs.SpanNNForward)
	out := net.Forward(state, false)
	fw.End()
	return &out.CoordProbs, out.Dir
}

// priorsInto fills the arena's prior buffer with each legal action's
// (unnormalized) policy probability, aligned with legal; without a DNN,
// priors are uniform.
func (s *Searcher) priorsInto(net *nn.PolicyValueNet, fp string, state []float64, legal []rl.Action, ar *episodeArena) []float64 {
	if cap(ar.priors) < len(legal) {
		ar.priors = make([]float64, len(legal))
	}
	priors := ar.priors[:len(legal)]
	ar.priors = priors
	if net == nil {
		for i := range priors {
			priors[i] = 1
		}
		return priors
	}
	probs, dir := s.policyEval(net, fp, state, ar.trace)
	pcw := (1 + dir) / 2
	for i, a := range legal {
		p := probs[0][a.X1] * probs[1][a.Y1] *
			probs[2][a.X2] * probs[3][a.Y2]
		if a.Dir == topo.Clockwise {
			p *= pcw
		} else {
			p *= 1 - pcw
		}
		priors[i] = p
	}
	return priors
}

// sampleRaw draws an action directly from the DNN output heads, the
// paper's raw policy sample for the episode's initial action.
func (s *Searcher) sampleRaw(net *nn.PolicyValueNet, fp string, state []float64, rng *rand.Rand, sh *obs.TraceShard) rl.Action {
	probs, dirPCW := s.policyEval(net, fp, state, sh)
	pick := func(probs []float64) int {
		r := rng.Float64()
		acc := 0.0
		for i, p := range probs {
			acc += p
			if r < acc {
				return i
			}
		}
		return len(probs) - 1
	}
	dir := topo.Counterclockwise
	if rng.Float64() < (1+dirPCW)/2 {
		dir = topo.Clockwise
	}
	return rl.Action{
		X1: pick(probs[0]), Y1: pick(probs[1]),
		X2: pick(probs[2]), Y2: pick(probs[3]),
		Dir: dir,
	}
}

// samplePriors draws an action proportionally to the prior weights.
// actions arrives in LegalActions' canonical lexicographic order, so the
// draw is deterministic without any collection or sorting step.
func samplePriors(actions []rl.Action, priors []float64, rng *rand.Rand) rl.Action {
	total := 0.0
	for _, p := range priors {
		total += p
	}
	if total <= 0 {
		return actions[rng.Intn(len(actions))]
	}
	r := rng.Float64() * total
	acc := 0.0
	for i, a := range actions {
		acc += priors[i]
		if r < acc {
			return a
		}
	}
	return actions[len(actions)-1]
}

// Package drl is the paper's core contribution: the deep-reinforcement-
// learning design-space exploration framework (§4). Each exploration cycle
// starts from a blank routerless NoC; a deep two-headed policy/value
// network proposes an initial loop, a Monte Carlo tree search guides the
// following additions (with an ε-greedy override running Algorithm 1),
// rewards penalize repetitive/invalid/illegal loops, and the finished
// design's hop count relative to mesh trains both the network (advantage
// actor-critic) and the tree. Multi-threaded exploration (§4.6) shares a
// parameter server and the search tree across learner goroutines.
package drl

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"routerless/internal/mcts"
	"routerless/internal/nn"
	"routerless/internal/obs"
	"routerless/internal/rl"
	"routerless/internal/topo"
)

// Config parameterizes a search.
type Config struct {
	// N is the NoC side; OverlapCap the wiring constraint (>0).
	N, OverlapCap int
	// Episodes is the total number of exploration cycles across all
	// threads; Threads the learner goroutine count (§4.6).
	Episodes, Threads int
	// Epsilon is the ε-greedy probability of deferring to Algorithm 1
	// (Table 1 explores 0.05–0.3).
	Epsilon float64
	// CPuct is the exploration constant c of Eq. 22.
	CPuct float64
	// UseDNN and UseMCTS toggle the framework's two halves; disabling
	// one yields the ablation baselines of EXPERIMENTS.md.
	UseDNN, UseMCTS bool
	// NN sizes the policy/value network; a zero value selects a
	// reduced-width network appropriate for the overall budget.
	NN nn.Config
	// LR/GradClip/Gamma drive actor-critic training (Eqs. 17–20).
	LR, GradClip, Gamma float64
	// MaxPenalties bounds consecutive non-valid actions before the
	// episode falls back to the greedy action.
	MaxPenalties int
	// GuidedActions is the number of valid loop additions chosen by the
	// DNN/MCTS policy before the episode switches to Algorithm 1 to
	// complete the design (Fig. 4: "additional actions can be taken, if
	// necessary, to complete the design"). The guided prefix defines the
	// design-space region being explored; completion makes the design
	// evaluable. The per-worker value self-paces between 1 and this cap:
	// episodes that dead-end shorten it, successes restore it. Zero means
	// pure greedy completion with no guided exploration.
	GuidedActions int
	// MinGain/NoGainStreak end an episode early once the design is fully
	// connected and successive additions stop improving average hops,
	// trimming useless loop additions (§3.2).
	MinGain      float64
	NoGainStreak int
	// IllegalPenalty overrides the environment's −5N illegal-action
	// reward when nonzero (the reward-shaping ablation).
	IllegalPenalty float64
	// MaxLoopLen, when > 0, restricts loop perimeters — the additional
	// design constraint of §6.2.
	MaxLoopLen int
	// Seed makes single-threaded runs fully deterministic.
	Seed int64
	// InitWeights, when non-nil, warm-starts the policy/value network
	// (e.g. from a model saved by a previous search).
	InitWeights []float64
	// Metrics, when non-nil, receives search telemetry: per-worker episode
	// counters, episode reward / value-MSE gauges, gradient norms pre/post
	// clip, the update counter, and MCTS tree size.
	Metrics *obs.Registry
	// Events, when non-nil, receives structured run events: run_start and
	// run_stop at info level plus one episode event per exploration cycle
	// at debug level.
	Events *obs.Logger
}

// DefaultConfig returns a balanced configuration for an n×n search under
// the given overlap cap.
func DefaultConfig(n, overlapCap int) Config {
	return Config{
		N: n, OverlapCap: overlapCap,
		Episodes: 30, Threads: 1,
		Epsilon: 0.1, CPuct: 1.5,
		UseDNN: true, UseMCTS: true,
		NN: nn.Config{N: n, BaseChannels: 4, Pools: 3},
		LR: 1e-3, GradClip: 1.0, Gamma: 0.99,
		MaxPenalties:  8,
		GuidedActions: max(2, n/2),
		MinGain:       1e-9, NoGainStreak: 2,
		Seed: 1,
	}
}

// Design is one fully connected design discovered during search.
type Design struct {
	Topo    *topo.Topology
	AvgHops float64
	Loops   int
	Episode int
}

// Result summarizes a search.
type Result struct {
	// Best is the minimum-hop fully connected design (nil Topo when the
	// search never completed a design).
	Best Design
	// Valid lists every fully connected design, in discovery order.
	Valid []Design
	// Episodes actually run.
	Episodes int
	// ValueMSE per episode (training-progress signal; empty without DNN).
	ValueMSE []float64
	// TreeSize is the number of distinct designs recorded by the MCTS.
	TreeSize int
}

// Searcher runs the framework.
type Searcher struct {
	cfg  Config
	tree *mcts.Tree

	server *paramServer

	mu      sync.Mutex
	result  Result
	episode int
}

// New validates the configuration and builds a searcher.
func New(cfg Config) (*Searcher, error) {
	if cfg.N < 2 {
		return nil, fmt.Errorf("drl: NoC size %d too small", cfg.N)
	}
	if cfg.OverlapCap < 1 {
		return nil, fmt.Errorf("drl: search requires a node overlapping cap (got %d)", cfg.OverlapCap)
	}
	if cfg.Threads < 1 {
		cfg.Threads = 1
	}
	if cfg.Episodes < 1 {
		cfg.Episodes = 1
	}
	if cfg.NN.N == 0 {
		cfg.NN = nn.Config{N: cfg.N, BaseChannels: 4, Pools: 3}
	}
	if cfg.NN.N != cfg.N {
		return nil, fmt.Errorf("drl: NN config N=%d mismatches NoC N=%d", cfg.NN.N, cfg.N)
	}
	s := &Searcher{cfg: cfg, tree: mcts.NewTree(cfg.CPuct)}
	if cfg.UseDNN {
		master := nn.NewPolicyValueNet(cfg.NN, cfg.Seed)
		init := cfg.InitWeights
		if init == nil {
			init = master.GetWeights()
		} else if len(init) != master.NumParams() {
			return nil, fmt.Errorf("drl: InitWeights has %d values, network needs %d",
				len(init), master.NumParams())
		}
		s.server = newParamServer(init, cfg.LR, cfg.GradClip, cfg.Metrics)
	}
	return s, nil
}

// ModelWeights returns the parameter server's current weights (nil when
// the search runs without a DNN); save them with nn.MarshalModel via a
// network constructed from the same nn.Config to resume training later.
func (s *Searcher) ModelWeights() []float64 {
	if s.server == nil {
		return nil
	}
	return s.server.snapshot()
}

// MustNew is New that panics on error.
func MustNew(cfg Config) *Searcher {
	s, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// Progress reports the episodes completed and valid designs found so far;
// safe to call concurrently with Run (e.g. from a progress-printing
// goroutine).
func (s *Searcher) Progress() (episodes, valid int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.episode, len(s.result.Valid)
}

// Run executes the configured exploration cycles and returns the search
// result. With Threads == 1 the run is deterministic in Seed.
func (s *Searcher) Run() *Result {
	s.cfg.Events.Info(obs.EventRunStart, map[string]any{
		"n":        s.cfg.N,
		"cap":      s.cfg.OverlapCap,
		"episodes": s.cfg.Episodes,
		"threads":  s.cfg.Threads,
		"epsilon":  s.cfg.Epsilon,
		"use_dnn":  s.cfg.UseDNN,
		"use_mcts": s.cfg.UseMCTS,
	})
	var wg sync.WaitGroup
	perThread := s.cfg.Episodes / s.cfg.Threads
	extra := s.cfg.Episodes % s.cfg.Threads
	for t := 0; t < s.cfg.Threads; t++ {
		n := perThread
		if t < extra {
			n++
		}
		if n == 0 {
			continue
		}
		wg.Add(1)
		go func(tid, episodes int) {
			defer wg.Done()
			s.worker(tid, episodes)
		}(t, n)
	}
	wg.Wait()
	s.mu.Lock()
	s.result.TreeSize = s.tree.Size()
	out := s.result
	s.mu.Unlock()
	stop := map[string]any{
		"episodes":  out.Episodes,
		"valid":     len(out.Valid),
		"tree_size": out.TreeSize,
	}
	if out.Best.Topo != nil {
		stop["best_hops"] = out.Best.AvgHops
		stop["best_loops"] = out.Best.Loops
	}
	s.cfg.Events.Info(obs.EventRunStop, stop)
	return &out
}

// worker is one learner thread (§4.6): it keeps a private copy of the DNN,
// refreshes weights from the parameter server before each episode, and
// pushes gradients back after each episode.
func (s *Searcher) worker(tid, episodes int) {
	rng := rand.New(rand.NewSource(s.cfg.Seed + int64(tid)*7919))
	var net *nn.PolicyValueNet
	var weights, grads []float64
	if s.cfg.UseDNN {
		// Each worker owns its network — and with it the network's scratch
		// arena (im2col buffers, activation/gradient tensors), which is
		// not goroutine-safe. Only flat weight/grad vectors cross the
		// worker boundary, through these per-worker reusable buffers, so
		// the steady-state training loop performs no heap allocation.
		net = nn.NewPolicyValueNet(s.cfg.NN, s.cfg.Seed+int64(tid))
		weights = make([]float64, net.NumParams())
		grads = make([]float64, net.NumParams())
		s.server.snapshotInto(weights)
		net.SetWeights(weights)
	}
	a2c := rl.A2C{Gamma: s.cfg.Gamma, ValueCoeff: 0.5}
	// Metric handles are resolved once per worker; all of them are no-ops
	// when the search runs without a registry.
	reg := s.cfg.Metrics
	epCounter := reg.Counter(fmt.Sprintf("drl.worker.%02d.episodes", tid))
	rewardGauge := reg.Gauge("drl.episode_reward")
	rewardHist := reg.Histogram("drl.episode_reward_hist", rewardBuckets())
	mseGauge := reg.Gauge("drl.value_mse")
	validCounter := reg.Counter("drl.valid_designs")
	treeGauge := reg.Gauge("drl.tree_size")
	// The guided-phase length self-paces: episodes that dead-end without
	// a complete design shorten the guided prefix (exploring closer to
	// the reliable completion heuristic); successes lengthen it back up
	// to the configured value, recovering exploration breadth.
	guided := s.cfg.GuidedActions
	for ep := 0; ep < episodes; ep++ {
		traj, path, design := s.runEpisode(net, rng, guided)
		if design == nil {
			if guided > 1 {
				guided--
			}
		} else if guided < s.cfg.GuidedActions {
			guided++
		}

		// Backup through the tree with discounted returns-to-go.
		returns := make([]float64, len(traj.Steps))
		g := traj.Final
		for i := len(traj.Steps) - 1; i >= 0; i-- {
			g = traj.Steps[i].Reward + s.cfg.Gamma*g
			returns[i] = g
		}
		if s.cfg.UseMCTS {
			s.tree.Backup(path, returns)
		}

		mse := 0.0
		if net != nil {
			net.ZeroGrads()
			mse = a2c.Accumulate(net, traj)
			net.CopyGradsInto(grads)
			s.server.apply(grads)
			net.ZeroGrads()
			s.server.snapshotInto(weights)
			net.SetWeights(weights)
		}

		s.mu.Lock()
		s.episode++
		epNum := s.episode
		s.result.Episodes = epNum
		if net != nil {
			s.result.ValueMSE = append(s.result.ValueMSE, mse)
		}
		if design != nil {
			design.Episode = epNum
			s.result.Valid = append(s.result.Valid, *design)
			if s.result.Best.Topo == nil || design.AvgHops < s.result.Best.AvgHops {
				s.result.Best = *design
			}
		}
		s.mu.Unlock()

		epCounter.Inc()
		rewardGauge.Set(traj.Final)
		rewardHist.Observe(traj.Final)
		if net != nil {
			mseGauge.Set(mse)
		}
		if design != nil {
			validCounter.Inc()
		}
		if s.cfg.UseMCTS && reg != nil {
			treeGauge.Set(float64(s.tree.Size()))
		}
		if s.cfg.Events.Enabled(obs.LevelDebug) {
			fields := map[string]any{
				"episode": epNum,
				"worker":  tid,
				"reward":  traj.Final,
				"steps":   len(traj.Steps),
				"valid":   design != nil,
			}
			if net != nil {
				fields["value_mse"] = mse
			}
			if design != nil {
				fields["avg_hops"] = design.AvgHops
				fields["loops"] = design.Loops
			}
			s.cfg.Events.Debug(obs.EventEpisode, fields)
		}
	}
}

// rewardBuckets spans the final-reward range: large negative penalties for
// incomplete designs through small positive hop-improvement rewards.
func rewardBuckets() []float64 {
	return []float64{-1000, -300, -100, -30, -10, -3, -1, 0, 1, 3, 10, 30}
}

// runEpisode performs one exploration cycle (Fig. 4) and returns the
// trajectory of guided steps, the tree path, and the finished design when
// fully connected.
//
// Each episode has two phases. The guided phase takes up to GuidedActions
// valid loop additions chosen by the DNN/MCTS policy (ε-greedy over
// Algorithm 1); it is the exploratory part that gets trained and backed
// up. The completion phase then adds loops with Algorithm 1 until the
// design cannot improve, making the episode's design evaluable ("additional
// actions ... to complete the design"). The final return reflects the
// whole design, so guided prefixes leading to poor completions are
// penalized through training.
func (s *Searcher) runEpisode(net *nn.PolicyValueNet, rng *rand.Rand, guided int) (rl.Trajectory, []mcts.PathStep, *Design) {
	env := rl.NewEnv(s.cfg.N, s.cfg.OverlapCap)
	if s.cfg.IllegalPenalty != 0 {
		env.IllegalPenalty = s.cfg.IllegalPenalty
	}
	env.MaxLoopLen = s.cfg.MaxLoopLen
	var traj rl.Trajectory
	var path []mcts.PathStep

	maxSteps := guided + s.cfg.MaxPenalties*(guided+1) + 4
	penalties := 0
	valid := 0
	first := true
	for len(traj.Steps) < maxSteps && valid < guided {
		fp := env.Fingerprint()
		var a rl.Action
		var ok bool
		switch {
		case penalties > s.cfg.MaxPenalties:
			a, ok = rl.Greedy(env)
		case first && net != nil:
			// The DNN proposes the initial action raw (Fig. 4); it may
			// be penalized, teaching constraint compliance.
			a, ok = sampleRaw(net, env, rng), true
		default:
			a, ok = s.chooseAction(net, env, fp, rng)
		}
		first = false
		if !ok {
			break // no legal action remains
		}
		state := env.State()
		r, kind := env.Step(a)
		traj.Steps = append(traj.Steps, rl.StepRecord{State: state, Action: a, Reward: r})
		path = append(path, mcts.PathStep{Fingerprint: fp, Action: a})
		if kind == rl.Valid {
			penalties = 0
			valid++
		} else {
			penalties++
		}
	}

	s.complete(env)

	traj.Final = env.FinalReward()
	var design *Design
	if env.FullyConnected() {
		design = &Design{
			Topo:    env.Topology().Clone(),
			AvgHops: env.AverageHops(),
			Loops:   env.Topology().NumLoops(),
		}
	}
	return traj, path, design
}

// complete drives Algorithm 1 until the design stops improving: while not
// fully connected every greedy addition helps; afterwards additions
// continue only while they reduce average hops (MinGain/NoGainStreak).
func (s *Searcher) complete(env *rl.Env) {
	rl.GreedyImprove(env, s.cfg.MinGain, s.cfg.NoGainStreak)
}

// chooseAction picks the next loop per the framework: ε-greedy Algorithm 1,
// otherwise tree selection at known states (Eq. 21), otherwise
// expansion+evaluation at leaves with DNN priors.
func (s *Searcher) chooseAction(net *nn.PolicyValueNet, env *rl.Env, fp string, rng *rand.Rand) (rl.Action, bool) {
	if rng.Float64() < s.cfg.Epsilon {
		if a, ok := rl.Greedy(env); ok {
			return a, true
		}
		return rl.Action{}, false
	}
	if s.cfg.UseMCTS {
		if a, ok := s.tree.Select(fp); ok {
			// Selected edges can be stale (the cap may forbid them now);
			// verify and fall through to expansion if unplayable.
			if env.Legal(a) {
				return a, true
			}
		}
	}
	legal := env.LegalActions()
	if len(legal) == 0 {
		return rl.Action{}, false
	}
	priors := s.priors(net, env, legal)
	if s.cfg.UseMCTS {
		s.tree.Expand(fp, priors)
	}
	return samplePriors(priors, rng), true
}

// priors maps each legal action to its (unnormalized) policy probability;
// without a DNN, priors are uniform.
func (s *Searcher) priors(net *nn.PolicyValueNet, env *rl.Env, legal []rl.Action) map[rl.Action]float64 {
	priors := make(map[rl.Action]float64, len(legal))
	if net == nil {
		for _, a := range legal {
			priors[a] = 1
		}
		return priors
	}
	out := net.Forward(env.State(), false)
	pcw := (1 + out.Dir) / 2
	for _, a := range legal {
		p := out.CoordProbs[0][a.X1] * out.CoordProbs[1][a.Y1] *
			out.CoordProbs[2][a.X2] * out.CoordProbs[3][a.Y2]
		if a.Dir == topo.Clockwise {
			p *= pcw
		} else {
			p *= 1 - pcw
		}
		priors[a] = p
	}
	return priors
}

// sampleRaw draws an action directly from the DNN output heads, the
// paper's raw policy sample for the episode's initial action.
func sampleRaw(net *nn.PolicyValueNet, env *rl.Env, rng *rand.Rand) rl.Action {
	out := net.Forward(env.State(), false)
	pick := func(probs []float64) int {
		r := rng.Float64()
		acc := 0.0
		for i, p := range probs {
			acc += p
			if r < acc {
				return i
			}
		}
		return len(probs) - 1
	}
	dir := topo.Counterclockwise
	if rng.Float64() < (1+out.Dir)/2 {
		dir = topo.Clockwise
	}
	return rl.Action{
		X1: pick(out.CoordProbs[0]), Y1: pick(out.CoordProbs[1]),
		X2: pick(out.CoordProbs[2]), Y2: pick(out.CoordProbs[3]),
		Dir: dir,
	}
}

// samplePriors draws an action proportionally to the prior weights.
func samplePriors(priors map[rl.Action]float64, rng *rand.Rand) rl.Action {
	// Deterministic iteration: collect and sort by a stable key.
	actions := make([]rl.Action, 0, len(priors))
	total := 0.0
	for a, p := range priors {
		actions = append(actions, a)
		total += p
	}
	sortActions(actions)
	if total <= 0 {
		return actions[rng.Intn(len(actions))]
	}
	r := rng.Float64() * total
	acc := 0.0
	for _, a := range actions {
		acc += priors[a]
		if r < acc {
			return a
		}
	}
	return actions[len(actions)-1]
}

// sortActions orders actions lexicographically for deterministic sampling.
func sortActions(as []rl.Action) {
	sort.Slice(as, func(i, j int) bool {
		a, b := as[i], as[j]
		if a.X1 != b.X1 {
			return a.X1 < b.X1
		}
		if a.Y1 != b.Y1 {
			return a.Y1 < b.Y1
		}
		if a.X2 != b.X2 {
			return a.X2 < b.X2
		}
		if a.Y2 != b.Y2 {
			return a.Y2 < b.Y2
		}
		return a.Dir < b.Dir
	})
}

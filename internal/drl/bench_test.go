package drl

import (
	"fmt"
	"math/rand"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"

	"routerless/internal/nn"
	"routerless/internal/obs"
)

// BenchmarkDRLEpisode measures one full exploration cycle (Fig. 4): the
// guided DNN/MCTS prefix plus the Algorithm 1 completion phase and final
// reward. This is the unit of work Run repeats Episodes times per thread.
// Before/after numbers for PR 4 live in BENCH_PR4.json.
func BenchmarkDRLEpisode(b *testing.B) {
	for _, n := range []int{8, 10} {
		b.Run(strconv.Itoa(n)+"x"+strconv.Itoa(n), func(b *testing.B) {
			cfg := DefaultConfig(n, 2*(n-1))
			cfg.NN = nn.Config{N: n, BaseChannels: 2, Pools: 2}
			s := MustNew(cfg)
			net := nn.NewPolicyValueNet(cfg.NN, cfg.Seed)
			rng := rand.New(rand.NewSource(7))
			ar := s.newArena()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.runEpisode(net, rng, cfg.GuidedActions, ar)
			}
		})
	}
}

// BenchmarkDRLEpisodeTraced is BenchmarkDRLEpisode with span recording
// enabled: the worker owns a trace shard and every episode records its
// episode/MCTS/forward spans into the ring. The delta against
// BenchmarkDRLEpisode is the whole cost of -trace on the search hot path
// (`make bench-obs` compares both; BENCH_PR6.json records the numbers).
func BenchmarkDRLEpisodeTraced(b *testing.B) {
	for _, n := range []int{8, 10} {
		b.Run(strconv.Itoa(n)+"x"+strconv.Itoa(n), func(b *testing.B) {
			cfg := DefaultConfig(n, 2*(n-1))
			cfg.NN = nn.Config{N: n, BaseChannels: 2, Pools: 2}
			cfg.Trace = obs.NewTracer(1 << 14)
			s := MustNew(cfg)
			net := nn.NewPolicyValueNet(cfg.NN, cfg.Seed)
			rng := rand.New(rand.NewSource(7))
			ar := s.newArena()
			ar.trace = cfg.Trace.Shard("drl.worker.00")
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.runEpisode(net, rng, cfg.GuidedActions, ar)
			}
		})
	}
}

// BenchmarkDRLEpisodeBroker is BenchmarkDRLEpisode with evaluations routed
// through the shared inference broker: four concurrent workers split b.N
// episodes, their policy/value requests coalesce, batch, and hit the
// fingerprint-keyed cache. Like BenchmarkDRLEpisode it omits the training
// step between episodes, so the cache lives across episodes (the search/
// inference regime); in a training run each weight sync invalidates it.
// Reports the cache hit rate alongside ns/op. Before/after numbers for
// PR 5 live in BENCH_PR5.json.
func BenchmarkDRLEpisodeBroker(b *testing.B) {
	benchEpisodeBroker(b, false)
}

// BenchmarkDRLEpisodeBrokerF32 is BenchmarkDRLEpisodeBroker with the
// broker evaluating on the float32 inference engine — the end-to-end view
// of the f32 working-set reduction under real coalescing/caching. PR 7's
// before/after (against BenchmarkDRLEpisodeBroker and the PR 5 baseline)
// lives in BENCH_PR7.json.
func BenchmarkDRLEpisodeBrokerF32(b *testing.B) {
	benchEpisodeBroker(b, true)
}

// BenchmarkParamServerRoundTrip measures the per-episode parameter exchange
// at a realistic parameter count. "pair/whole-lock" is the pre-PR 10 worker
// path — apply then snapshotInto under one whole-vector mutex, two lock
// acquisitions and three O(P) sweeps; "fused" is applyAndFetch, which
// clips, steps, and copies out in one pass, at both the whole-vector and
// the default chunked lock shapes. Before/after numbers for PR 10 live in
// BENCH_PR10.json.
func BenchmarkParamServerRoundTrip(b *testing.B) {
	const dim = 1 << 16
	init := make([]float64, dim)
	grads := make([]float64, dim)
	for i := range grads {
		grads[i] = 0.01 * float64(i%7)
	}
	dst := make([]float64, dim)
	b.Run("pair/whole-lock", func(b *testing.B) {
		ps := newParamServer(init, 1e-3, 1.0, -1, nil)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ps.apply(grads)
			ps.snapshotInto(dst)
		}
	})
	b.Run("fused/whole-lock", func(b *testing.B) {
		ps := newParamServer(init, 1e-3, 1.0, -1, nil)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ps.applyAndFetch(grads, dst)
		}
	})
	b.Run("fused/chunked", func(b *testing.B) {
		ps := newParamServer(init, 1e-3, 1.0, 0, nil)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ps.applyAndFetch(grads, dst)
		}
	})
}

// BenchmarkParamServerContention measures concurrent workers pushing fused
// round-trips through the whole-vector lock (the "before" regime) versus
// the default chunk striping, where workers pipeline through the vector
// chunk by chunk. SetParallelism forces real goroutine multiplexing on a
// 1-CPU host; contended_frac is the portable signal there.
func BenchmarkParamServerContention(b *testing.B) {
	const dim = 1 << 16
	init := make([]float64, dim)
	grads := make([]float64, dim)
	for i := range grads {
		grads[i] = 0.01 * float64(i%7)
	}
	for _, tc := range []struct {
		name  string
		chunk int
	}{{"whole-lock", -1}, {"chunked", 0}} {
		b.Run(tc.name, func(b *testing.B) {
			ps := newParamServer(init, 1e-3, 1.0, tc.chunk, nil)
			b.SetParallelism(8)
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				dst := make([]float64, dim)
				for pb.Next() {
					ps.applyAndFetch(grads, dst)
				}
			})
			b.StopTimer()
			ls := ps.lockStats()
			if ls.Acquires > 0 {
				b.ReportMetric(float64(ls.Contended)/float64(ls.Acquires), "contended_frac")
			}
		})
	}
}

// BenchmarkDRLSearchThreads is the end-to-end §4.6 scaling row: one op is a
// complete 16-episode search (DNN + MCTS + parameter server) split across
// the given learner-thread count, exercising the striped tree and chunked
// server exactly as production Run does. On a multi-core host ns/op should
// fall with threads; on a 1-CPU bench host wall-clock is honestly flat and
// the contended_frac metrics (tree and server) carry the story.
func BenchmarkDRLSearchThreads(b *testing.B) {
	for _, threads := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("threads=%d", threads), func(b *testing.B) {
			b.ReportAllocs()
			var treeFrac, servFrac float64
			for i := 0; i < b.N; i++ {
				cfg := DefaultConfig(8, 14)
				cfg.NN = nn.Config{N: 8, BaseChannels: 2, Pools: 2}
				cfg.Episodes = 16
				cfg.Threads = threads
				s := MustNew(cfg)
				s.Run()
				ts := s.tree.LockStats()
				if ts.Acquires > 0 {
					treeFrac = float64(ts.Contended) / float64(ts.Acquires)
				}
				ss := s.server.lockStats()
				if ss.Acquires > 0 {
					servFrac = float64(ss.Contended) / float64(ss.Acquires)
				}
			}
			b.ReportMetric(treeFrac, "tree_contended_frac")
			b.ReportMetric(servFrac, "server_contended_frac")
		})
	}
}

func benchEpisodeBroker(b *testing.B, f32 bool) {
	const workers = 4
	for _, n := range []int{8, 10} {
		b.Run(strconv.Itoa(n)+"x"+strconv.Itoa(n), func(b *testing.B) {
			cfg := DefaultConfig(n, 2*(n-1))
			cfg.NN = nn.Config{N: n, BaseChannels: 2, Pools: 2}
			cfg.Threads = workers
			cfg.InferBatch = 8
			cfg.InferF32 = f32
			s := MustNew(cfg)
			stop := s.startBroker()
			defer stop()
			nets := make([]*nn.PolicyValueNet, workers)
			arenas := make([]*episodeArena, workers)
			for w := range nets {
				nets[w] = nn.NewPolicyValueNet(cfg.NN, cfg.Seed+int64(w))
				arenas[w] = s.newArena()
			}
			b.ReportAllocs()
			b.ResetTimer()
			var next atomic.Int64
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(7 + int64(w)))
					for next.Add(1) <= int64(b.N) {
						s.runEpisode(nets[w], rng, cfg.GuidedActions, arenas[w])
					}
				}(w)
			}
			wg.Wait()
			b.StopTimer()
			st := s.InferStats()
			if st.Requests > 0 {
				b.ReportMetric(float64(st.Hits)/float64(st.Requests), "cache_hit_rate")
			}
		})
	}
}

package drl

import (
	"math/rand"
	"strconv"
	"testing"

	"routerless/internal/nn"
)

// BenchmarkDRLEpisode measures one full exploration cycle (Fig. 4): the
// guided DNN/MCTS prefix plus the Algorithm 1 completion phase and final
// reward. This is the unit of work Run repeats Episodes times per thread.
// Before/after numbers for PR 4 live in BENCH_PR4.json.
func BenchmarkDRLEpisode(b *testing.B) {
	for _, n := range []int{8, 10} {
		b.Run(strconv.Itoa(n)+"x"+strconv.Itoa(n), func(b *testing.B) {
			cfg := DefaultConfig(n, 2*(n-1))
			cfg.NN = nn.Config{N: n, BaseChannels: 2, Pools: 2}
			s := MustNew(cfg)
			net := nn.NewPolicyValueNet(cfg.NN, cfg.Seed)
			rng := rand.New(rand.NewSource(7))
			ar := s.newArena()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.runEpisode(net, rng, cfg.GuidedActions, ar)
			}
		})
	}
}

package drl

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"routerless/internal/obs"
)

// TestParamServerClipBoundary pins the element-wise clipping behaviour at
// and around the ±clip boundary (Eqs. 19–20: gradients are clipped, then
// applied with -lr).
func TestParamServerClipBoundary(t *testing.T) {
	const lr, clip = 0.1, 1.0
	cases := []struct {
		name string
		grad float64
		want float64 // resulting weight after one update from 0
	}{
		{"inside", 0.5, -0.05},
		{"at +clip", clip, -0.1},
		{"just above +clip", clip + 1e-9, -0.1},
		{"far above +clip", 100, -0.1},
		{"at -clip", -clip, 0.1},
		{"just below -clip", -clip - 1e-9, 0.1},
		{"far below -clip", -100, 0.1},
		{"zero", 0, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ps := newParamServer([]float64{0}, lr, clip, 0, nil)
			ps.apply([]float64{tc.grad})
			got := ps.snapshot()[0]
			if math.Abs(got-tc.want) > 1e-12 {
				t.Fatalf("weight after grad %v = %v, want %v", tc.grad, got, tc.want)
			}
			if ps.updateCount() != 1 {
				t.Fatalf("updateCount = %d, want 1", ps.updateCount())
			}
		})
	}
}

// TestParamServerNoClip verifies clip <= 0 disables clipping entirely.
func TestParamServerNoClip(t *testing.T) {
	ps := newParamServer([]float64{0}, 1, 0, 0, nil)
	ps.apply([]float64{42})
	if got := ps.snapshot()[0]; got != -42 {
		t.Fatalf("weight = %v, want -42", got)
	}
}

// TestParamServerConcurrentSnapshotApply hammers snapshot/apply from many
// goroutines; run with -race to verify the lock discipline. The vector fits
// one chunk (whole-lock mode forced via a negative chunk), so every applied
// gradient moves all weights in lockstep and any snapshot must be uniform —
// the pre-striping atomicity contract this mode preserves.
func TestParamServerConcurrentSnapshotApply(t *testing.T) {
	const dim, workers, iters = 64, 8, 200
	ps := newParamServer(make([]float64, dim), 0.01, 1.0, -1, nil)
	grads := make([]float64, dim)
	for i := range grads {
		grads[i] = 0.5
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				ps.apply(grads)
				snap := ps.snapshot()
				for j := 1; j < dim; j++ {
					if snap[j] != snap[0] {
						t.Errorf("torn snapshot: w[%d]=%v != w[0]=%v", j, snap[j], snap[0])
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	if got := ps.updateCount(); got != workers*iters {
		t.Fatalf("updateCount = %d, want %d", got, workers*iters)
	}
	want := -0.01 * 0.5 * float64(workers*iters)
	if got := ps.snapshot()[0]; math.Abs(got-want) > 1e-9 {
		t.Fatalf("final weight = %v, want %v", got, want)
	}
}

// TestParamServerConcurrentChunked hammers the fused applyAndFetch and
// snapshotInto across a deliberately tiny chunk length (many chunks per
// vector) from many goroutines; run with -race in make ci. Every gradient
// element is the same constant, so although readers may observe chunks at
// different update counts mid-run (the documented hogwild-over-stripes
// relaxation), each element's final value is the exact same subtraction
// sequence regardless of interleaving — the chunk lock serializes the
// element's updates and all deltas are equal.
func TestParamServerConcurrentChunked(t *testing.T) {
	const dim, chunk, workers, iters = 130, 7, 8, 200
	ps := newParamServer(make([]float64, dim), 0.01, 1.0, chunk, nil)
	if got, want := len(ps.chunks), (dim+chunk-1)/chunk; got != want {
		t.Fatalf("chunks = %d, want %d", got, want)
	}
	grads := make([]float64, dim)
	for i := range grads {
		grads[i] = 0.5
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			dst := make([]float64, dim)
			for i := 0; i < iters; i++ {
				ps.applyAndFetch(grads, dst)
				ps.snapshotInto(dst)
			}
		}()
	}
	wg.Wait()
	if got := ps.updateCount(); got != workers*iters {
		t.Fatalf("updateCount = %d, want %d", got, workers*iters)
	}
	// Read the lock telemetry before the verification snapshot below adds
	// its own chunk walk: two walks per iteration per worker (applyAndFetch
	// + snapshotInto).
	ls := ps.lockStats()
	if ls.Chunks != (dim+chunk-1)/chunk {
		t.Fatalf("lockStats.Chunks = %d", ls.Chunks)
	}
	if want := int64(workers * iters * ls.Chunks * 2); ls.Acquires != want {
		t.Fatalf("lockStats.Acquires = %d, want %d", ls.Acquires, want)
	}
	// All updates subtract the identical lr*0.5 delta, so the final value is
	// exact for every element at every chunk length.
	ref := 0.0
	for i := 0; i < workers*iters; i++ {
		ref -= 0.01 * 0.5
	}
	for i, w := range ps.snapshot() {
		if w != ref {
			t.Fatalf("w[%d] = %v, want %v", i, w, ref)
		}
	}
}

// TestParamServerFusedMatchesPair is the byte-identity oracle for the fused
// round-trip: applyAndFetch must leave the server weights and fill the
// worker buffer with exactly the bits the former apply-then-snapshotInto
// pair produced, including the norm gauges, over randomized gradient
// sequences and both clip regimes.
func TestParamServerFusedMatchesPair(t *testing.T) {
	for _, clip := range []float64{0, 0.8} {
		regA, regB := obs.NewRegistry(), obs.NewRegistry()
		const dim = 257
		init := make([]float64, dim)
		rng := rand.New(rand.NewSource(42))
		for i := range init {
			init[i] = rng.NormFloat64()
		}
		pair := newParamServer(init, 0.05, clip, 0, regA)
		fused := newParamServer(init, 0.05, clip, 0, regB)
		grads := make([]float64, dim)
		dstPair := make([]float64, dim)
		dstFused := make([]float64, dim)
		for step := 0; step < 50; step++ {
			for i := range grads {
				grads[i] = 2 * rng.NormFloat64()
			}
			pair.apply(grads)
			pair.snapshotInto(dstPair)
			fused.applyAndFetch(grads, dstFused)
			for i := range dstPair {
				if dstPair[i] != dstFused[i] {
					t.Fatalf("clip %v step %d: fetched w[%d] = %v, pair fetched %v",
						clip, step, i, dstFused[i], dstPair[i])
				}
			}
		}
		sa, sb := regA.Snapshot(), regB.Snapshot()
		for _, g := range []string{"drl.grad_norm_preclip", "drl.grad_norm_postclip"} {
			if sa.Gauges[g] != sb.Gauges[g] {
				t.Fatalf("clip %v: gauge %s diverged: %v vs %v", clip, g, sa.Gauges[g], sb.Gauges[g])
			}
		}
	}
}

// TestParamServerChunkedMatchesWholeLock is the single-thread byte-identity
// oracle for weight striping: identical gradient sequences applied at chunk
// lengths 1, 3, 64, the default, and whole-vector must produce bit-equal
// weights after every step and bit-equal norm telemetry — chunking only
// changes which lock guards an element, never the update or the
// accumulation order (the norm sums thread through the chunk walk).
func TestParamServerChunkedMatchesWholeLock(t *testing.T) {
	const dim = 200
	rng := rand.New(rand.NewSource(7))
	init := make([]float64, dim)
	for i := range init {
		init[i] = rng.NormFloat64()
	}
	regOracle := obs.NewRegistry()
	oracle := newParamServer(init, 0.03, 0.9, -1, regOracle) // whole-lock
	type cand struct {
		ps  *paramServer
		reg *obs.Registry
		n   int
	}
	var cands []cand
	for _, chunk := range []int{1, 3, 64, 0} {
		reg := obs.NewRegistry()
		cands = append(cands, cand{newParamServer(init, 0.03, 0.9, chunk, reg), reg, chunk})
	}
	grads := make([]float64, dim)
	buf := make([]float64, dim)
	want := make([]float64, dim)
	for step := 0; step < 40; step++ {
		for i := range grads {
			grads[i] = 3 * rng.NormFloat64()
		}
		oracle.applyAndFetch(grads, want)
		so := regOracle.Snapshot()
		for _, c := range cands {
			c.ps.applyAndFetch(grads, buf)
			for i := range want {
				if buf[i] != want[i] {
					t.Fatalf("chunk %d step %d: w[%d] = %v, oracle %v", c.n, step, i, buf[i], want[i])
				}
			}
			sc := c.reg.Snapshot()
			for _, g := range []string{"drl.grad_norm_preclip", "drl.grad_norm_postclip"} {
				if sc.Gauges[g] != so.Gauges[g] {
					t.Fatalf("chunk %d step %d: gauge %s = %v, oracle %v",
						c.n, step, g, sc.Gauges[g], so.Gauges[g])
				}
			}
		}
	}
}

// TestParamServerGradNormGauges verifies the pre/post-clip L2 norms and
// update counter reach the registry.
func TestParamServerGradNormGauges(t *testing.T) {
	reg := obs.NewRegistry()
	ps := newParamServer(make([]float64, 2), 0.1, 1.0, 0, reg)
	ps.apply([]float64{3, -4}) // pre-clip norm 5; clipped to (1,-1), norm sqrt(2)
	s := reg.Snapshot()
	if got := s.Gauges["drl.grad_norm_preclip"]; math.Abs(got-5) > 1e-12 {
		t.Fatalf("preclip norm = %v, want 5", got)
	}
	if got := s.Gauges["drl.grad_norm_postclip"]; math.Abs(got-math.Sqrt2) > 1e-12 {
		t.Fatalf("postclip norm = %v, want sqrt(2)", got)
	}
	if s.Counters["drl.updates"] != 1 {
		t.Fatalf("updates = %d, want 1", s.Counters["drl.updates"])
	}
}

package drl

import (
	"math"
	"sync"
	"testing"

	"routerless/internal/obs"
)

// TestParamServerClipBoundary pins the element-wise clipping behaviour at
// and around the ±clip boundary (Eqs. 19–20: gradients are clipped, then
// applied with -lr).
func TestParamServerClipBoundary(t *testing.T) {
	const lr, clip = 0.1, 1.0
	cases := []struct {
		name string
		grad float64
		want float64 // resulting weight after one update from 0
	}{
		{"inside", 0.5, -0.05},
		{"at +clip", clip, -0.1},
		{"just above +clip", clip + 1e-9, -0.1},
		{"far above +clip", 100, -0.1},
		{"at -clip", -clip, 0.1},
		{"just below -clip", -clip - 1e-9, 0.1},
		{"far below -clip", -100, 0.1},
		{"zero", 0, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ps := newParamServer([]float64{0}, lr, clip, nil)
			ps.apply([]float64{tc.grad})
			got := ps.snapshot()[0]
			if math.Abs(got-tc.want) > 1e-12 {
				t.Fatalf("weight after grad %v = %v, want %v", tc.grad, got, tc.want)
			}
			if ps.updateCount() != 1 {
				t.Fatalf("updateCount = %d, want 1", ps.updateCount())
			}
		})
	}
}

// TestParamServerNoClip verifies clip <= 0 disables clipping entirely.
func TestParamServerNoClip(t *testing.T) {
	ps := newParamServer([]float64{0}, 1, 0, nil)
	ps.apply([]float64{42})
	if got := ps.snapshot()[0]; got != -42 {
		t.Fatalf("weight = %v, want -42", got)
	}
}

// TestParamServerConcurrentSnapshotApply hammers snapshot/apply from many
// goroutines; run with -race to verify the lock discipline. Every applied
// gradient moves all weights in lockstep, so any snapshot must be uniform.
func TestParamServerConcurrentSnapshotApply(t *testing.T) {
	const dim, workers, iters = 64, 8, 200
	ps := newParamServer(make([]float64, dim), 0.01, 1.0, nil)
	grads := make([]float64, dim)
	for i := range grads {
		grads[i] = 0.5
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				ps.apply(grads)
				snap := ps.snapshot()
				for j := 1; j < dim; j++ {
					if snap[j] != snap[0] {
						t.Errorf("torn snapshot: w[%d]=%v != w[0]=%v", j, snap[j], snap[0])
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	if got := ps.updateCount(); got != workers*iters {
		t.Fatalf("updateCount = %d, want %d", got, workers*iters)
	}
	want := -0.01 * 0.5 * float64(workers*iters)
	if got := ps.snapshot()[0]; math.Abs(got-want) > 1e-9 {
		t.Fatalf("final weight = %v, want %v", got, want)
	}
}

// TestParamServerGradNormGauges verifies the pre/post-clip L2 norms and
// update counter reach the registry.
func TestParamServerGradNormGauges(t *testing.T) {
	reg := obs.NewRegistry()
	ps := newParamServer(make([]float64, 2), 0.1, 1.0, reg)
	ps.apply([]float64{3, -4}) // pre-clip norm 5; clipped to (1,-1), norm sqrt(2)
	s := reg.Snapshot()
	if got := s.Gauges["drl.grad_norm_preclip"]; math.Abs(got-5) > 1e-12 {
		t.Fatalf("preclip norm = %v, want 5", got)
	}
	if got := s.Gauges["drl.grad_norm_postclip"]; math.Abs(got-math.Sqrt2) > 1e-12 {
		t.Fatalf("postclip norm = %v, want sqrt(2)", got)
	}
	if s.Counters["drl.updates"] != 1 {
		t.Fatalf("updates = %d, want 1", s.Counters["drl.updates"])
	}
}

package noc3d

import (
	"testing"

	"routerless/internal/search"
)

func TestCoordRoundTrip(t *testing.T) {
	n, layers := 4, 3
	for id := 0; id < n*n*layers; id++ {
		c := CoordFromID(id, n)
		if got := c.ID(n, layers); got != id {
			t.Fatalf("id %d round-trips to %d (coord %+v)", id, got, c)
		}
	}
}

func TestBaseMeshHops(t *testing.T) {
	// 2x2x1 is a 2x2 mesh: avg Manhattan distance over ordered pairs.
	d := NewDesign(2, 1, DefaultConstraints(2, 1))
	want := (1.0*8 + 2.0*4) / 12 // 8 pairs at dist 1, 4 diagonal at 2
	if got := d.AvgHops(); got != want {
		t.Fatalf("2x2 avg hops = %v, want %v", got, want)
	}
	// Adding a layer connects vertically.
	d2 := NewDesign(2, 2, DefaultConstraints(2, 2))
	if d2.Hop(0, 7) != 3 {
		t.Fatalf("corner-to-opposite 2x2x2 = %d, want 3", d2.Hop(0, 7))
	}
}

func TestAddLinkConstraints(t *testing.T) {
	cons := Constraints{ExtraPorts: 1, MaxLen: 2, Budget: 2}
	d := NewDesign(4, 1, cons)
	// Too long: (0,0) to (3,3) is distance 6 > 2.
	if err := d.AddLink(0, 15); err == nil {
		t.Fatal("over-length link accepted")
	}
	// Existing mesh link rejected.
	if err := d.AddLink(0, 1); err == nil {
		t.Fatal("duplicate mesh link accepted")
	}
	// Valid diagonal shortcut (0,0)-(1,1): distance 2.
	if err := d.AddLink(0, 5); err != nil {
		t.Fatal(err)
	}
	// Port cap: node 0 already used its one extra port.
	if err := d.AddLink(0, 4+2); err == nil {
		t.Fatal("port cap not enforced")
	}
	// Budget: one more allowed, then exhausted.
	if err := d.AddLink(10, 15); err != nil {
		t.Fatal(err)
	}
	if err := d.AddLink(2, 7); err == nil {
		t.Fatal("budget not enforced")
	}
}

func TestAddLinkReducesHops(t *testing.T) {
	cons := Constraints{ExtraPorts: 2, MaxLen: 6, Budget: 4}
	d := NewDesign(4, 1, cons)
	before := d.AvgHops()
	if err := d.AddLink(0, 15); err != nil {
		t.Fatal(err)
	}
	if after := d.AvgHops(); after >= before {
		t.Fatalf("corner shortcut did not help: %v -> %v", before, after)
	}
	if d.Hop(0, 15) != 1 {
		t.Fatalf("hop(0,15) = %d", d.Hop(0, 15))
	}
}

func TestCloneIndependent(t *testing.T) {
	d := NewDesign(3, 2, DefaultConstraints(3, 2))
	c := d.Clone()
	if err := c.AddLink(0, 4); err != nil {
		t.Fatal(err)
	}
	if len(d.Links()) != 0 || len(c.Links()) != 1 {
		t.Fatal("clone shares links")
	}
}

func TestExploreImprovesOnBaseMesh(t *testing.T) {
	cfg := search.DefaultConfig()
	cfg.Episodes = 8
	cfg.Epsilon = 0.3
	cfg.MaxSteps = 32
	cons := Constraints{ExtraPorts: 2, MaxLen: 4, Budget: 6}
	best, base, res := Explore(4, 2, cons, cfg)
	if best == nil {
		t.Fatal("no design found")
	}
	if best.AvgHops() >= base {
		t.Fatalf("explored design %.3f not below base mesh %.3f", best.AvgHops(), base)
	}
	if res.Best.Final <= 0 {
		t.Fatalf("best final reward %v", res.Best.Final)
	}
	// Constraints hold on the returned design.
	for _, l := range best.Links() {
		ca, cb := CoordFromID(l[0], 4), CoordFromID(l[1], 4)
		if Dist3D(ca, cb) > cons.MaxLen {
			t.Fatalf("link %v violates length cap", l)
		}
	}
	if len(best.Links()) > cons.Budget {
		t.Fatalf("budget exceeded: %d links", len(best.Links()))
	}
}

func TestGreedyPicksDistantPair(t *testing.T) {
	prob := Problem{N: 4, Layers: 1, Cons: Constraints{ExtraPorts: 2, MaxLen: 6, Budget: 3}}
	e := prob.NewEpisode()
	a, ok := prob.Greedy(e)
	if !ok {
		t.Fatal("no greedy action")
	}
	x, y := parseAction(a)
	// The most distant pair on a 4x4 mesh is a corner pair at distance 6.
	d := NewDesign(4, 1, prob.Cons)
	if d.Hop(x, y) != 6 {
		t.Fatalf("greedy chose pair at distance %d, want 6", d.Hop(x, y))
	}
}

// Package noc3d demonstrates the framework's broad applicability (§6.8):
// the paper's first suggested application is 3-D NoC design, where prior
// small-world approaches (Das et al.) inserted long-range links with a
// limited learning method. Here the same exploration machinery used for
// routerless loop placement — the generic searcher of internal/search —
// places long-range intra-layer links and inter-layer vias on a 3-D mesh
// under port, link-length and budget constraints, minimizing average hop
// count.
package noc3d

import (
	"fmt"
	"sort"
	"strings"

	"routerless/internal/search"
)

// Coord is a 3-D node position.
type Coord struct {
	X, Y, Z int
}

// ID linearizes the coordinate on an n×n×l grid.
func (c Coord) ID(n, layers int) int { return (c.Z*n+c.Y)*n + c.X }

// CoordFromID inverts ID.
func CoordFromID(id, n int) Coord {
	return Coord{X: id % n, Y: (id / n) % n, Z: id / (n * n)}
}

// Dist3D is the Manhattan distance including the vertical dimension.
func Dist3D(a, b Coord) int {
	return abs(a.X-b.X) + abs(a.Y-b.Y) + abs(a.Z-b.Z)
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// Constraints bound link insertion, mirroring the "strict constraints ...
// such as 3-D distance, to meet timing/manufacturing capabilities" the
// paper highlights as the framework's advantage.
type Constraints struct {
	// ExtraPorts caps additional links per node beyond the base mesh.
	ExtraPorts int
	// MaxLen caps a link's 3-D Manhattan length.
	MaxLen int
	// Budget caps the total number of inserted links.
	Budget int
}

// DefaultConstraints returns a modest insertion budget.
func DefaultConstraints(n, layers int) Constraints {
	return Constraints{ExtraPorts: 2, MaxLen: n, Budget: n * layers}
}

// Design is a 3-D mesh with inserted long-range links.
type Design struct {
	N, Layers int
	Cons      Constraints

	adj   [][]int // adjacency lists (base mesh + extras)
	extra []int   // per-node inserted-link count
	links [][2]int
	dirty bool
	dist  [][]int16
}

// NewDesign builds the base n×n×layers 3-D mesh.
func NewDesign(n, layers int, cons Constraints) *Design {
	if n < 2 || layers < 1 {
		panic(fmt.Sprintf("noc3d: invalid grid %dx%dx%d", n, n, layers))
	}
	v := n * n * layers
	d := &Design{
		N: n, Layers: layers, Cons: cons,
		adj:   make([][]int, v),
		extra: make([]int, v),
		dirty: true,
	}
	for id := 0; id < v; id++ {
		c := CoordFromID(id, n)
		for _, nb := range []Coord{
			{c.X + 1, c.Y, c.Z}, {c.X - 1, c.Y, c.Z},
			{c.X, c.Y + 1, c.Z}, {c.X, c.Y - 1, c.Z},
			{c.X, c.Y, c.Z + 1}, {c.X, c.Y, c.Z - 1},
		} {
			if nb.X < 0 || nb.X >= n || nb.Y < 0 || nb.Y >= n || nb.Z < 0 || nb.Z >= layers {
				continue
			}
			d.adj[id] = append(d.adj[id], nb.ID(n, layers))
		}
	}
	return d
}

// V returns the node count.
func (d *Design) V() int { return d.N * d.N * d.Layers }

// Links returns the inserted links.
func (d *Design) Links() [][2]int { return d.links }

// Clone deep-copies the design.
func (d *Design) Clone() *Design {
	c := &Design{
		N: d.N, Layers: d.Layers, Cons: d.Cons,
		adj:   make([][]int, len(d.adj)),
		extra: append([]int(nil), d.extra...),
		links: append([][2]int(nil), d.links...),
		dirty: true,
	}
	for i, a := range d.adj {
		c.adj[i] = append([]int(nil), a...)
	}
	return c
}

// CanAdd validates an insertion against the constraints.
func (d *Design) CanAdd(a, b int) error {
	if a == b {
		return fmt.Errorf("noc3d: self link")
	}
	if len(d.links) >= d.Cons.Budget {
		return fmt.Errorf("noc3d: link budget exhausted")
	}
	if d.extra[a] >= d.Cons.ExtraPorts || d.extra[b] >= d.Cons.ExtraPorts {
		return fmt.Errorf("noc3d: port cap reached")
	}
	ca, cb := CoordFromID(a, d.N), CoordFromID(b, d.N)
	if l := Dist3D(ca, cb); l > d.Cons.MaxLen {
		return fmt.Errorf("noc3d: link length %d exceeds cap %d", l, d.Cons.MaxLen)
	}
	for _, nb := range d.adj[a] {
		if nb == b {
			return fmt.Errorf("noc3d: link exists")
		}
	}
	return nil
}

// AddLink inserts a bidirectional link.
func (d *Design) AddLink(a, b int) error {
	if err := d.CanAdd(a, b); err != nil {
		return err
	}
	d.adj[a] = append(d.adj[a], b)
	d.adj[b] = append(d.adj[b], a)
	d.extra[a]++
	d.extra[b]++
	if a > b {
		a, b = b, a
	}
	d.links = append(d.links, [2]int{a, b})
	d.dirty = true
	return nil
}

// distances lazily recomputes all-pairs BFS hops.
func (d *Design) distances() [][]int16 {
	if !d.dirty {
		return d.dist
	}
	v := d.V()
	dist := make([][]int16, v)
	queue := make([]int, 0, v)
	for s := 0; s < v; s++ {
		row := make([]int16, v)
		for i := range row {
			row[i] = -1
		}
		row[s] = 0
		queue = queue[:0]
		queue = append(queue, s)
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, nb := range d.adj[u] {
				if row[nb] < 0 {
					row[nb] = row[u] + 1
					queue = append(queue, nb)
				}
			}
		}
		dist[s] = row
	}
	d.dist = dist
	d.dirty = false
	return dist
}

// AvgHops returns the mean shortest-path hop count over ordered pairs.
func (d *Design) AvgHops() float64 {
	dist := d.distances()
	total, pairs := 0, 0
	for s := range dist {
		for t, h := range dist[s] {
			if s == t {
				continue
			}
			total += int(h)
			pairs++
		}
	}
	return float64(total) / float64(pairs)
}

// Hop returns the shortest-path distance between two nodes.
func (d *Design) Hop(a, b int) int { return int(d.distances()[a][b]) }

// ---------------------------------------------------------------------------
// search.Problem instantiation

// env adapts Design to search.Environment.
type env struct {
	d *Design
}

func (e *env) Fingerprint() string {
	keys := make([]string, len(e.d.links))
	for i, l := range e.d.links {
		keys[i] = fmt.Sprintf("%d-%d", l[0], l[1])
	}
	sort.Strings(keys)
	return strings.Join(keys, ";")
}

func (e *env) Actions() []string {
	var out []string
	v := e.d.V()
	for a := 0; a < v; a++ {
		for b := a + 1; b < v; b++ {
			if e.d.CanAdd(a, b) == nil {
				out = append(out, fmt.Sprintf("%d-%d", a, b))
			}
		}
	}
	return out
}

func parseAction(s string) (int, int) {
	var a, b int
	fmt.Sscanf(s, "%d-%d", &a, &b)
	return a, b
}

func (e *env) Step(action string) float64 {
	a, b := parseAction(action)
	if err := e.d.AddLink(a, b); err != nil {
		return -1 // illegal insertion
	}
	return 0
}

func (e *env) Done() bool { return len(e.d.links) >= e.d.Cons.Budget }

func (e *env) FinalReward() float64 {
	// Reward = hop reduction relative to the base mesh; positive when the
	// inserted links shorten paths.
	base := NewDesign(e.d.N, e.d.Layers, e.d.Cons).AvgHops()
	return base - e.d.AvgHops()
}

// Problem is the search.Problem for 3-D link placement.
type Problem struct {
	N, Layers int
	Cons      Constraints
}

// NewEpisode implements search.Problem.
func (p Problem) NewEpisode() search.Environment {
	return &env{d: NewDesign(p.N, p.Layers, p.Cons)}
}

// Greedy implements search.Problem: insert the link joining the currently
// most distant reachable pair that the constraints allow.
func (p Problem) Greedy(se search.Environment) (string, bool) {
	e := se.(*env)
	dist := e.d.distances()
	bestA, bestB, bestGain := -1, -1, -1
	v := e.d.V()
	for a := 0; a < v; a++ {
		for b := a + 1; b < v; b++ {
			if int(dist[a][b]) <= 1 {
				continue
			}
			if e.d.CanAdd(a, b) != nil {
				continue
			}
			if g := int(dist[a][b]) - 1; g > bestGain {
				bestGain = g
				bestA, bestB = a, b
			}
		}
	}
	if bestA < 0 {
		return "", false
	}
	return fmt.Sprintf("%d-%d", bestA, bestB), true
}

// Priors implements search.Problem: weight candidate links by the path
// length they would shortcut, steering expansion toward useful insertions.
func (p Problem) Priors(se search.Environment, actions []string) []float64 {
	e := se.(*env)
	dist := e.d.distances()
	out := make([]float64, len(actions))
	for i, s := range actions {
		a, b := parseAction(s)
		out[i] = float64(dist[a][b])
	}
	return out
}

// Explore runs the generic searcher on the 3-D problem and returns the
// best design found plus the base-mesh hop count for comparison.
func Explore(n, layers int, cons Constraints, cfg search.Config) (*Design, float64, *search.Result) {
	prob := Problem{N: n, Layers: layers, Cons: cons}
	s := search.New(cfg, prob)
	var best *Design
	s.OnBest(func(se search.Environment, _ search.Outcome) {
		best = se.(*env).d.Clone()
	})
	res := s.Run()
	base := NewDesign(n, layers, cons).AvgHops()
	return best, base, res
}

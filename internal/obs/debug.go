package obs

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
)

// DebugServer is the live-probe HTTP endpoint the CLIs enable with
// -debug-addr. It serves:
//
//	/metrics       the registry snapshot as JSON
//	/debug/vars    expvar (cmdline, memstats, plus published vars)
//	/debug/pprof/  runtime profiles (CPU, heap, goroutine, ...)
type DebugServer struct {
	// Addr is the bound address (useful with ":0").
	Addr string

	ln  net.Listener
	srv *http.Server
}

// StartDebug binds addr and serves the debug endpoints in a background
// goroutine until Close. reg may be nil (the /metrics endpoint then serves
// an empty snapshot).
func StartDebug(addr string, reg *Registry) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: debug listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		reg.WriteJSON(w)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	d := &DebugServer{Addr: ln.Addr().String(), ln: ln, srv: &http.Server{Handler: mux}}
	go d.srv.Serve(ln)
	return d, nil
}

// Close stops the server.
func (d *DebugServer) Close() error {
	if d == nil || d.srv == nil {
		return nil
	}
	return d.srv.Close()
}

package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
)

// DebugServer is the live-probe HTTP endpoint the CLIs enable with
// -debug-addr. It serves:
//
//	/metrics       the registry snapshot as JSON
//	/debug/vars    expvar (cmdline, memstats, plus published vars)
//	/debug/pprof/  runtime profiles (CPU, heap, goroutine, ...)
//	/debug/spans   aggregated self/total time per span kind (text;
//	               ?format=json for the raw rows) when a tracer is wired
type DebugServer struct {
	// Addr is the bound address (useful with ":0").
	Addr string

	ln  net.Listener
	srv *http.Server
}

// StartDebug binds addr and serves the debug endpoints in a background
// goroutine until Close. reg and tr may be nil (/metrics then serves an
// empty snapshot and /debug/spans an empty table).
func StartDebug(addr string, reg *Registry, tr *Tracer) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: debug listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		reg.WriteJSON(w)
	})
	mux.HandleFunc("/debug/spans", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			stats := tr.Aggregate()
			if stats == nil {
				stats = []SpanStat{}
			}
			json.NewEncoder(w).Encode(stats)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, tr.AggregateTable())
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	d := &DebugServer{Addr: ln.Addr().String(), ln: ln, srv: &http.Server{Handler: mux}}
	go d.srv.Serve(ln)
	return d, nil
}

// Close stops the server.
func (d *DebugServer) Close() error {
	if d == nil || d.srv == nil {
		return nil
	}
	return d.srv.Close()
}

package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// This file is the structured tracing half of the observability layer: a
// span recorder that attributes wall time to logical phases of the stack
// (episode, MCTS select/expand/backup, broker queue-wait/batch, sim
// warmup/measure/drain, experiment points) instead of functions, the way a
// CPU profile cannot.
//
// Design rules (see DESIGN.md):
//
//   - One TraceShard per goroutine. A shard's ring buffer and span stack
//     are written without locks by exactly one owning goroutine; shards
//     are handed out by Tracer.Shard (cold path, mutex-protected). In the
//     exported Chrome trace each shard becomes one track.
//   - Disabled tracing is free. A nil *Tracer hands out nil shards, and
//     Start/End/Record on a nil shard are a single pointer check with zero
//     allocation, so instrumented hot paths keep their AllocsPerRun == 0
//     pins without branching on "is tracing on".
//   - Aggregates are always readable. Per-kind count/total/self tallies
//     are atomic, so /debug/spans and progress lines can be served while
//     learner goroutines are mid-span. The raw ring buffers are exported
//     only after the run quiesces (WriteTrace documents this).

// SpanKind identifies a logical phase of the stack. Kinds are a closed
// enum (not free strings) so recording a span writes plain-old-data: no
// interning, no map lookups, no allocation.
type SpanKind uint8

const (
	SpanNone SpanKind = iota

	// DRL search phases.
	SpanSearchRun // one drl.Searcher.Run, all episodes and workers
	SpanEpisode   // one exploration cycle incl. backup and training
	SpanMCTSSelect
	SpanMCTSExpand
	SpanMCTSBackup
	SpanTrain // A2C accumulate + parameter-server apply + resync

	// Inference phases.
	SpanNNForward          // legacy per-worker Forward
	SpanInferSubmit        // worker-side Submit (blocks for the Eval)
	SpanInferQueueWait     // request enqueue -> batch pickup (broker side)
	SpanInferBatchAssemble // first request -> batch complete
	SpanInferForward       // one nn.ForwardBatch

	// Simulator phases.
	SpanSimRun
	SpanSimWarmup
	SpanSimMeasure
	SpanSimDrain

	// Experiment harness.
	SpanExpPoint // one experiment point on a RunParallel worker

	numSpanKinds
)

var spanKindNames = [numSpanKinds]string{
	SpanNone:               "none",
	SpanSearchRun:          "drl.run",
	SpanEpisode:            "drl.episode",
	SpanMCTSSelect:         "mcts.select",
	SpanMCTSExpand:         "mcts.expand",
	SpanMCTSBackup:         "mcts.backup",
	SpanTrain:              "drl.train",
	SpanNNForward:          "nn.forward",
	SpanInferSubmit:        "infer.submit",
	SpanInferQueueWait:     "infer.queue_wait",
	SpanInferBatchAssemble: "infer.batch_assemble",
	SpanInferForward:       "infer.forward_batch",
	SpanSimRun:             "sim.run",
	SpanSimWarmup:          "sim.warmup",
	SpanSimMeasure:         "sim.measure",
	SpanSimDrain:           "sim.drain",
	SpanExpPoint:           "exp.point",
}

// String implements fmt.Stringer.
func (k SpanKind) String() string {
	if int(k) < len(spanKindNames) {
		return spanKindNames[k]
	}
	return "unknown"
}

// spanCat maps a kind to its Chrome trace category (the dotted prefix).
func spanCat(k SpanKind) string {
	name := k.String()
	if i := strings.IndexByte(name, '.'); i > 0 {
		return name[:i]
	}
	return name
}

// spanRec is one closed span: plain old data, 24 bytes, no pointers.
type spanRec struct {
	Kind       SpanKind
	Depth      uint8
	Start, End int64 // ns since the tracer's base time
}

// openSpan is one in-progress span on a shard's stack.
type openSpan struct {
	kind    SpanKind
	start   int64
	childNS int64 // accumulated duration of closed children
}

// kindAgg is one kind's running tally, atomically readable mid-run.
type kindAgg struct {
	count atomic.Int64
	total atomic.Int64 // wall ns, including children
	self  atomic.Int64 // wall ns minus closed children
}

// Tracer owns the trace: a base timestamp, the shard list, and the ring
// capacity new shards get. A nil *Tracer is the disabled tracer — Shard
// returns nil and every derived operation is a no-op.
type Tracer struct {
	base  time.Time
	nowNS func() int64 // overridable for deterministic tests

	mu     sync.Mutex
	shards []*TraceShard
	cap    int
}

// NewTracer builds a tracer whose shards each keep the most recent
// spansPerShard spans (older records are overwritten ring-style; the
// per-kind aggregates keep counting). Capacities below 256 are raised.
func NewTracer(spansPerShard int) *Tracer {
	if spansPerShard < 256 {
		spansPerShard = 256
	}
	t := &Tracer{base: time.Now(), cap: spansPerShard}
	t.nowNS = func() int64 { return int64(time.Since(t.base)) }
	return t
}

// Now returns nanoseconds since the tracer's base time (0 on nil); pair it
// with TraceShard.Record for retroactive spans.
func (t *Tracer) Now() int64 {
	if t == nil {
		return 0
	}
	return t.nowNS()
}

// Shard hands out a new single-goroutine span recorder, shown as one track
// named name in the exported trace. The caller goroutine owns it
// exclusively: Start/End/Record must never be called from two goroutines.
// A nil tracer returns a nil (no-op) shard.
func (t *Tracer) Shard(name string) *TraceShard {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	sh := &TraceShard{
		t:     t,
		name:  name,
		id:    len(t.shards) + 1,
		recs:  make([]spanRec, t.cap),
		stack: make([]openSpan, 0, 64),
	}
	t.shards = append(t.shards, sh)
	return sh
}

// TraceShard is one goroutine's span recorder: a fixed-capacity ring of
// POD span records plus per-kind atomic aggregates. All record operations
// are lock-free and allocation-free; only the owning goroutine may call
// them.
type TraceShard struct {
	t    *Tracer
	name string
	id   int

	recs  []spanRec
	n     int // total records ever written; next slot is n % len(recs)
	stack []openSpan

	agg [numSpanKinds]kindAgg
}

// Span is an open span handle. It is a two-word value, so Start/End pairs
// never allocate; the zero Span (from a nil shard) is a no-op.
type Span struct {
	sh *TraceShard
}

// Start opens a span of the given kind on the shard's stack. Spans must be
// closed in LIFO order (strict nesting); crossing goroutines is not
// allowed — record cross-goroutine intervals with Record instead.
func (sh *TraceShard) Start(kind SpanKind) Span {
	if sh == nil {
		return Span{}
	}
	sh.stack = append(sh.stack, openSpan{kind: kind, start: sh.t.nowNS()})
	return Span{sh: sh}
}

// End closes the most recently started span: writes its record, updates
// the kind's aggregate, and charges its duration to the parent's
// child-time so the parent's self time stays accurate.
func (sp Span) End() {
	sh := sp.sh
	if sh == nil {
		return
	}
	top := len(sh.stack) - 1
	o := sh.stack[top]
	sh.stack = sh.stack[:top]
	end := sh.t.nowNS()
	dur := end - o.start
	sh.push(spanRec{Kind: o.kind, Depth: uint8(top), Start: o.start, End: end})
	a := &sh.agg[o.kind]
	a.count.Add(1)
	a.total.Add(dur)
	a.self.Add(dur - o.childNS)
	if top > 0 {
		sh.stack[top-1].childNS += dur
	}
}

// Record writes a retroactive flat span from startNS to endNS (tracer
// nanoseconds, see Tracer.Now). It does not participate in the nesting
// accounting — no parent is charged and the span's self time equals its
// total — which makes it safe for intervals that began on another
// goroutine, like a broker request's queue wait.
func (sh *TraceShard) Record(kind SpanKind, startNS, endNS int64) {
	if sh == nil {
		return
	}
	if endNS < startNS {
		startNS, endNS = endNS, startNS
	}
	sh.push(spanRec{Kind: kind, Depth: uint8(len(sh.stack)), Start: startNS, End: endNS})
	a := &sh.agg[kind]
	a.count.Add(1)
	a.total.Add(endNS - startNS)
	a.self.Add(endNS - startNS)
}

func (sh *TraceShard) push(r spanRec) {
	sh.recs[sh.n%len(sh.recs)] = r
	sh.n++
}

// SpanStat is one row of the aggregated self/total-time table.
type SpanStat struct {
	Kind    string `json:"kind"`
	Count   int64  `json:"count"`
	TotalNS int64  `json:"total_ns"`
	SelfNS  int64  `json:"self_ns"`
}

// Aggregate sums the per-kind tallies across all shards, sorted by self
// time descending. Safe to call while spans are being recorded (the
// tallies are atomic); a nil tracer returns nil.
func (t *Tracer) Aggregate() []SpanStat {
	if t == nil {
		return nil
	}
	var count, total, self [numSpanKinds]int64
	t.mu.Lock()
	shards := append([]*TraceShard(nil), t.shards...)
	t.mu.Unlock()
	for _, sh := range shards {
		for k := range sh.agg {
			count[k] += sh.agg[k].count.Load()
			total[k] += sh.agg[k].total.Load()
			self[k] += sh.agg[k].self.Load()
		}
	}
	var out []SpanStat
	for k := 1; k < int(numSpanKinds); k++ {
		if count[k] == 0 {
			continue
		}
		out = append(out, SpanStat{
			Kind:    SpanKind(k).String(),
			Count:   count[k],
			TotalNS: total[k],
			SelfNS:  self[k],
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].SelfNS != out[j].SelfNS {
			return out[i].SelfNS > out[j].SelfNS
		}
		return out[i].Kind < out[j].Kind
	})
	return out
}

// AggregateTable renders the span table as aligned text (the /debug/spans
// and end-of-run format). Empty string when no spans were recorded.
func (t *Tracer) AggregateTable() string {
	stats := t.Aggregate()
	if len(stats) == 0 {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-22s %10s %14s %14s %6s\n", "span", "count", "total", "self", "self%")
	var selfSum int64
	for _, s := range stats {
		selfSum += s.SelfNS
	}
	for _, s := range stats {
		pct := 0.0
		if selfSum > 0 {
			pct = 100 * float64(s.SelfNS) / float64(selfSum)
		}
		fmt.Fprintf(&b, "%-22s %10d %14s %14s %5.1f%%\n",
			s.Kind, s.Count,
			time.Duration(s.TotalNS).Round(time.Microsecond),
			time.Duration(s.SelfNS).Round(time.Microsecond), pct)
	}
	return b.String()
}

// SummaryLine compresses the aggregate into one progress-line suffix: the
// top k kinds by self time. Empty string when nothing was recorded.
func (t *Tracer) SummaryLine(k int) string {
	stats := t.Aggregate()
	if len(stats) == 0 {
		return ""
	}
	if k > len(stats) {
		k = len(stats)
	}
	parts := make([]string, 0, k)
	for _, s := range stats[:k] {
		parts = append(parts, fmt.Sprintf("%s %s", s.Kind, time.Duration(s.SelfNS).Round(time.Millisecond)))
	}
	return "spans(self): " + strings.Join(parts, ", ")
}

// traceEvent is one Chrome trace-event JSON record.
type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"` // microseconds
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteTrace exports every shard's ring contents as Chrome trace-event
// JSON, loadable in Perfetto or chrome://tracing: one track (tid) per
// shard, complete ("X") events with microsecond timestamps, and a
// thread_name metadata record per track. Ring overwrites drop the oldest
// spans of a shard, never the newest.
//
// The ring buffers are written without synchronization by their owning
// goroutines, so WriteTrace must only run after those goroutines have
// quiesced (e.g. after Searcher.Run returns). The atomic aggregate table
// has no such restriction.
func (t *Tracer) WriteTrace(w io.Writer) error {
	if t == nil {
		_, err := io.WriteString(w, `{"traceEvents":[]}`)
		return err
	}
	t.mu.Lock()
	shards := append([]*TraceShard(nil), t.shards...)
	t.mu.Unlock()

	if _, err := io.WriteString(w, `{"traceEvents":[`+"\n"); err != nil {
		return err
	}
	first := true
	emit := func(ev traceEvent) error {
		if !first {
			if _, err := io.WriteString(w, ",\n"); err != nil {
				return err
			}
		}
		first = false
		data, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		_, err = w.Write(data)
		return err
	}
	for _, sh := range shards {
		if err := emit(traceEvent{
			Name: "thread_name", Ph: "M", Pid: 1, Tid: sh.id,
			Args: map[string]any{"name": sh.name},
		}); err != nil {
			return err
		}
		n := sh.n
		start := 0
		if n > len(sh.recs) {
			start = n - len(sh.recs)
		}
		for i := start; i < n; i++ {
			r := sh.recs[i%len(sh.recs)]
			if err := emit(traceEvent{
				Name: r.Kind.String(), Cat: spanCat(r.Kind), Ph: "X",
				Ts:  float64(r.Start) / 1e3,
				Dur: float64(r.End-r.Start) / 1e3,
				Pid: 1, Tid: sh.id,
			}); err != nil {
				return err
			}
		}
	}
	_, err := io.WriteString(w, "\n],\"displayTimeUnit\":\"ms\"}\n")
	return err
}

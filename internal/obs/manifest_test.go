package obs

import (
	"bufio"
	"encoding/json"
	"os"
	"path/filepath"
	"runtime"
	"testing"
)

func TestManifestRoundTrip(t *testing.T) {
	m := NewManifest("nocexplore")
	m.Seed = 42
	m.Set("n", 8)
	m.Set("episodes", 100)

	reg := NewRegistry()
	reg.Counter("drl.episodes").Add(100)
	reg.Gauge("drl.best_reward").Set(12.5)
	reg.Histogram("drl.episode_reward_hist").Observe(3)
	m.Finish(reg)

	if m.WallSecs < 0 {
		t.Fatal("negative wall time")
	}
	if m.GoVersion != runtime.Version() || m.GOMAXPROCS < 1 {
		t.Fatalf("toolchain fields not stamped: %+v", m)
	}

	path := filepath.Join(t.TempDir(), "manifests.jsonl")
	if err := m.AppendFile(path); err != nil {
		t.Fatal(err)
	}
	// Appends accumulate lines, one JSON object each.
	if err := m.AppendFile(path); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	lines := 0
	for sc.Scan() {
		var got Manifest
		if err := json.Unmarshal(sc.Bytes(), &got); err != nil {
			t.Fatalf("manifest line not JSON: %v", err)
		}
		if got.Tool != "nocexplore" || got.Seed != 42 {
			t.Fatalf("manifest round-trip mismatch: %+v", got)
		}
		if got.Config["episodes"] != float64(100) {
			t.Fatalf("config lost: %+v", got.Config)
		}
		hist, ok := got.Metrics["drl.episode_reward_hist"].(map[string]any)
		if !ok || hist["count"] != float64(1) {
			t.Fatalf("histogram summary lost: %+v", got.Metrics)
		}
		lines++
	}
	if lines != 2 {
		t.Fatalf("got %d manifest lines, want 2", lines)
	}
}

func TestManifestNilSafe(t *testing.T) {
	var m *Manifest
	m.Set("k", 1)
	m.Finish(nil)
	if err := m.AppendFile(filepath.Join(t.TempDir(), "x.jsonl")); err != nil {
		t.Fatal(err)
	}
}

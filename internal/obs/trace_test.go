package obs

import (
	"bytes"
	"encoding/json"
	"sort"
	"strings"
	"sync"
	"testing"
)

// fixedClockTracer returns a tracer whose clock advances only when tick is
// called, making span timestamps deterministic for golden tests.
func fixedClockTracer(capPerShard int) (*Tracer, func(ns int64)) {
	t := NewTracer(capPerShard)
	var now int64
	t.nowNS = func() int64 { return now }
	return t, func(ns int64) { now += ns }
}

func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	sh := tr.Shard("w0")
	if sh != nil {
		t.Fatal("nil tracer must hand out nil shards")
	}
	sp := sh.Start(SpanEpisode)
	sp.End()
	sh.Record(SpanInferQueueWait, 0, 10)
	if tr.Now() != 0 {
		t.Fatal("nil tracer Now must be 0")
	}
	if tr.Aggregate() != nil {
		t.Fatal("nil tracer Aggregate must be nil")
	}
	if tr.AggregateTable() != "" || tr.SummaryLine(3) != "" {
		t.Fatal("nil tracer tables must be empty")
	}
	var buf bytes.Buffer
	if err := tr.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatalf("nil tracer trace not JSON: %s", buf.Bytes())
	}
}

func TestSpanNestingSelfAndTotal(t *testing.T) {
	tr, tick := fixedClockTracer(256)
	sh := tr.Shard("w0")

	ep := sh.Start(SpanEpisode) // t=0
	tick(10)
	sel := sh.Start(SpanMCTSSelect) // t=10
	tick(30)
	sel.End() // t=40, select total=self=30
	tick(5)
	ex := sh.Start(SpanMCTSExpand) // t=45
	tick(20)
	ex.End() // t=65, expand total=self=20
	tick(15)
	ep.End() // t=80, episode total=80, self=80-30-20=30

	stats := tr.Aggregate()
	byKind := map[string]SpanStat{}
	for _, s := range stats {
		byKind[s.Kind] = s
	}
	if s := byKind["drl.episode"]; s.Count != 1 || s.TotalNS != 80 || s.SelfNS != 30 {
		t.Fatalf("episode agg = %+v", s)
	}
	if s := byKind["mcts.select"]; s.TotalNS != 30 || s.SelfNS != 30 {
		t.Fatalf("select agg = %+v", s)
	}
	if s := byKind["mcts.expand"]; s.TotalNS != 20 || s.SelfNS != 20 {
		t.Fatalf("expand agg = %+v", s)
	}
	if table := tr.AggregateTable(); !strings.Contains(table, "drl.episode") {
		t.Fatalf("table missing kind:\n%s", table)
	}
	if line := tr.SummaryLine(2); !strings.HasPrefix(line, "spans(self): ") {
		t.Fatalf("summary line = %q", line)
	}
}

// TestWriteTraceGolden checks the Chrome trace export is well-formed and
// that child spans nest strictly inside their parents on each track.
func TestWriteTraceGolden(t *testing.T) {
	tr, tick := fixedClockTracer(256)
	sh := tr.Shard("drl.worker.00")

	run := sh.Start(SpanEpisode)
	tick(1000)
	sel := sh.Start(SpanMCTSSelect)
	tick(2000)
	sel.End()
	tick(500)
	run.End()
	sh.Record(SpanInferQueueWait, 100, 600)

	qsh := tr.Shard("infer.queue")
	qsh.Record(SpanInferQueueWait, 200, 900)

	var buf bytes.Buffer
	if err := tr.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Cat  string         `json:"cat"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace not JSON: %v\n%s", err, buf.String())
	}

	names := map[int]string{}
	type ev struct{ ts, dur float64 }
	tracks := map[int][]ev{}
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "M":
			if e.Name != "thread_name" {
				t.Fatalf("unexpected metadata event %q", e.Name)
			}
			names[e.Tid] = e.Args["name"].(string)
		case "X":
			tracks[e.Tid] = append(tracks[e.Tid], ev{e.Ts, e.Dur})
		default:
			t.Fatalf("unexpected phase %q", e.Ph)
		}
	}
	if len(names) != 2 || len(tracks) != 2 {
		t.Fatalf("tracks = %v, names = %v", tracks, names)
	}
	found := map[string]bool{}
	for tid, n := range names {
		found[n] = len(tracks[tid]) > 0
	}
	if !found["drl.worker.00"] || !found["infer.queue"] {
		t.Fatalf("missing tracks or spans: %v", found)
	}
	// Strict nesting per track: sorted by start, any two spans either
	// disjoint or one contains the other.
	for tid, evs := range tracks {
		sort.Slice(evs, func(i, j int) bool { return evs[i].ts < evs[j].ts })
		for i := 0; i < len(evs); i++ {
			for j := i + 1; j < len(evs); j++ {
				a, b := evs[i], evs[j]
				aEnd, bEnd := a.ts+a.dur, b.ts+b.dur
				disjoint := b.ts >= aEnd
				contained := bEnd <= aEnd
				if !disjoint && !contained {
					t.Fatalf("track %d (%s): span [%v,%v] straddles [%v,%v]",
						tid, names[tid], b.ts, bEnd, a.ts, aEnd)
				}
			}
		}
	}
	// The worker track's episode span must contain the select span.
	var worker []ev
	for tid, n := range names {
		if n == "drl.worker.00" {
			worker = tracks[tid]
		}
	}
	sort.Slice(worker, func(i, j int) bool { return worker[i].dur > worker[j].dur })
	if len(worker) < 2 || worker[0].dur < worker[1].dur {
		t.Fatalf("worker track spans = %+v", worker)
	}
}

func TestRingBufferWrapKeepsNewest(t *testing.T) {
	tr, tick := fixedClockTracer(256) // capacity floors at 256
	sh := tr.Shard("w0")
	const total = 700
	for i := 0; i < total; i++ {
		sp := sh.Start(SpanMCTSSelect)
		tick(10)
		sp.End()
	}
	// Aggregates keep counting past the wrap.
	stats := tr.Aggregate()
	if len(stats) != 1 || stats[0].Count != total {
		t.Fatalf("aggregate = %+v, want count %d", stats, total)
	}
	var buf bytes.Buffer
	if err := tr.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Ph string  `json:"ph"`
			Ts float64 `json:"ts"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace not JSON after wrap: %v", err)
	}
	var spans int
	var maxTs float64
	for _, e := range doc.TraceEvents {
		if e.Ph == "X" {
			spans++
			if e.Ts > maxTs {
				maxTs = e.Ts
			}
		}
	}
	if spans != 256 {
		t.Fatalf("exported %d spans after wrap, want ring capacity 256", spans)
	}
	// The newest span (start = (total-1)*10 ns = 6.99 µs) must survive.
	if wantTs := float64((total-1)*10) / 1e3; maxTs != wantTs {
		t.Fatalf("newest span ts = %v, want %v", maxTs, wantTs)
	}
}

// TestTracerConcurrentShards drives one shard per goroutine under -race:
// shard operations are unsynchronized by design, so this passing proves
// the per-goroutine ownership rule gives race-free recording, while
// Aggregate runs concurrently against the atomic tallies.
func TestTracerConcurrentShards(t *testing.T) {
	tr := NewTracer(512)
	var wg sync.WaitGroup
	const workers, spans = 8, 400
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sh := tr.Shard("worker")
			for i := 0; i < spans; i++ {
				ep := sh.Start(SpanEpisode)
				sel := sh.Start(SpanMCTSSelect)
				sel.End()
				ep.End()
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			tr.Aggregate()
			tr.SummaryLine(3)
		}
	}()
	wg.Wait()
	<-done
	byKind := map[string]SpanStat{}
	for _, s := range tr.Aggregate() {
		byKind[s.Kind] = s
	}
	if got := byKind["drl.episode"].Count; got != workers*spans {
		t.Fatalf("episode count = %d, want %d", got, workers*spans)
	}
	if got := byKind["mcts.select"].Count; got != workers*spans {
		t.Fatalf("select count = %d, want %d", got, workers*spans)
	}
}

func TestSpanZeroAlloc(t *testing.T) {
	// Disabled path: nil shard.
	var nilShard *TraceShard
	if n := testing.AllocsPerRun(1000, func() {
		sp := nilShard.Start(SpanEpisode)
		sp.End()
		nilShard.Record(SpanInferQueueWait, 0, 5)
	}); n != 0 {
		t.Fatalf("nil shard span ops allocate %v/op, want 0", n)
	}
	// Enabled path: warmed shard (stack and ring preallocated).
	tr := NewTracer(1024)
	sh := tr.Shard("w0")
	sp := sh.Start(SpanEpisode)
	sp.End()
	if n := testing.AllocsPerRun(1000, func() {
		ep := sh.Start(SpanEpisode)
		sel := sh.Start(SpanMCTSSelect)
		sel.End()
		ep.End()
		sh.Record(SpanInferQueueWait, 1, 7)
	}); n != 0 {
		t.Fatalf("enabled shard span ops allocate %v/op, want 0", n)
	}
}

func BenchmarkTraceSpan(b *testing.B) {
	b.Run("disabled", func(b *testing.B) {
		var sh *TraceShard
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sp := sh.Start(SpanMCTSSelect)
			sp.End()
		}
	})
	b.Run("enabled", func(b *testing.B) {
		tr := NewTracer(4096)
		sh := tr.Shard("bench")
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sp := sh.Start(SpanMCTSSelect)
			sp.End()
		}
	})
}

package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Level orders event severities. Debug events are high-volume (per episode
// / per probe interval); Info events mark run lifecycle milestones.
type Level int

const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
)

// String implements fmt.Stringer.
func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	}
	return "unknown"
}

// Well-known event kinds emitted across the stack. Fields are free-form
// per kind; the README documents the schema each producer uses.
const (
	EventRunStart   = "run_start"   // sim or search begins
	EventRunStop    = "run_stop"    // sim or search ends, with summary fields
	EventSweepPoint = "sweep_point" // one injection-rate point of a sweep
	EventEpisode    = "episode"     // one DRL exploration cycle
	EventInterval   = "interval"    // periodic sim probe sample
	EventCheckpoint = "checkpoint"  // model/state persisted to disk
)

// Event is one structured log record. Fields are flattened into the JSON
// object alongside the envelope keys (ts, level, event).
type Event struct {
	Time   time.Time
	Level  Level
	Kind   string
	Fields map[string]any
}

// MarshalJSON flattens the envelope and fields into a single object.
// Envelope keys win on collision.
func (e Event) MarshalJSON() ([]byte, error) {
	m := make(map[string]any, len(e.Fields)+3)
	for k, v := range e.Fields {
		m[k] = v
	}
	m["ts"] = e.Time.UTC().Format(time.RFC3339Nano)
	m["level"] = e.Level.String()
	m["event"] = e.Kind
	return json.Marshal(m)
}

// Logger writes events as JSON lines to an io.Writer. A nil *Logger is the
// nop logger: every method returns immediately, so instrumented code can
// log unconditionally. Writes are serialized by an internal mutex, making
// one Logger safe to share across learner goroutines.
//
// High-volume Debug events are buffered (32 KiB) to keep per-episode and
// per-interval logging off the syscall path; Info and Warn events flush
// the buffer, so lifecycle milestones like run_stop always reach the file
// immediately. Call Close (or at least Flush) when the run stops so
// trailing Debug events are never lost — all three CLIs do.
type Logger struct {
	mu     sync.Mutex
	buf    *bufio.Writer
	under  io.Writer
	min    Level
	closed bool
	now    func() time.Time // overridable for tests
}

// NewLogger builds a logger writing events at or above min to w. A nil w
// returns the nop (nil) logger.
func NewLogger(w io.Writer, min Level) *Logger {
	if w == nil {
		return nil
	}
	return &Logger{buf: bufio.NewWriterSize(w, 32<<10), under: w, min: min, now: time.Now}
}

// Enabled reports whether events at level lv would be written; use it to
// skip expensive field construction.
func (l *Logger) Enabled(lv Level) bool {
	return l != nil && lv >= l.min
}

// Log writes one event. Fields may be nil. Errors from the underlying
// writer are dropped: telemetry must never fail the run it observes.
func (l *Logger) Log(lv Level, kind string, fields map[string]any) {
	if !l.Enabled(lv) {
		return
	}
	e := Event{Time: l.now(), Level: lv, Kind: kind, Fields: fields}
	data, err := json.Marshal(e)
	if err != nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return
	}
	l.buf.Write(append(data, '\n'))
	if lv >= LevelInfo {
		l.buf.Flush()
	}
}

// Flush forces buffered events to the underlying writer. Nil-safe and
// idempotent.
func (l *Logger) Flush() {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.closed {
		l.buf.Flush()
	}
}

// Close flushes buffered events and, when the underlying writer is an
// io.Closer (e.g. the CLI's *os.File), closes it. Further Log calls are
// dropped. Nil-safe and idempotent.
func (l *Logger) Close() error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	err := l.buf.Flush()
	if c, ok := l.under.(io.Closer); ok {
		if cerr := c.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// Info logs at LevelInfo.
func (l *Logger) Info(kind string, fields map[string]any) { l.Log(LevelInfo, kind, fields) }

// Debug logs at LevelDebug.
func (l *Logger) Debug(kind string, fields map[string]any) { l.Log(LevelDebug, kind, fields) }

// Warn logs at LevelWarn.
func (l *Logger) Warn(kind string, fields map[string]any) { l.Log(LevelWarn, kind, fields) }

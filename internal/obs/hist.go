package obs

import (
	"math"
	"sync/atomic"
)

// Histogram is a log-scaled (HDR-style) histogram: values are bucketed by
// binary octave with histSub log-linear sub-buckets per octave, so every
// bucket's width is 1/histSub of its lower bound and any quantile is
// reported with bounded relative error (≤ 1/histSub ≈ 3.1%) regardless of
// the value range. No bucket layout is configured up front — one layout
// serves cycle counts, rewards, and occupancies alike, which is what lets
// sim.Run derive p50/p95/p99 from the histogram instead of sorting the
// raw latency slice.
//
// Observe is lock-free: a frexp, two shifts, and three atomic adds.
// Negative values land in a mirrored bucket array and zero (and NaN) in a
// dedicated zero bucket, so reward distributions spanning −1000..30 are
// as accurate as latency distributions.
const (
	histSubBits = 5
	histSub     = 1 << histSubBits // sub-buckets per octave
	histMinExp  = -25              // smallest distinct frexp exponent (~3e-8)
	histMaxExp  = 39               // largest distinct frexp exponent (~5.5e11)
	histOctaves = histMaxExp - histMinExp + 1
	histLen     = histOctaves * histSub // buckets per sign
)

// histIndex maps v > 0 to its bucket. Out-of-range magnitudes clamp to the
// end buckets (their counts stay right, their bounds saturate).
func histIndex(v float64) int {
	frac, exp := math.Frexp(v) // v = frac * 2^exp, frac in [0.5, 1)
	if exp < histMinExp {
		return 0
	}
	if exp > histMaxExp {
		return histLen - 1
	}
	sub := int((frac - 0.5) * (2 * histSub))
	if sub >= histSub {
		sub = histSub - 1
	}
	return (exp-histMinExp)<<histSubBits | sub
}

// histBounds returns bucket i's [lo, hi) value range.
func histBounds(i int) (lo, hi float64) {
	exp := histMinExp + i>>histSubBits
	sub := i & (histSub - 1)
	lo = math.Ldexp(0.5+float64(sub)/(2*histSub), exp)
	hi = math.Ldexp(0.5+float64(sub+1)/(2*histSub), exp)
	return lo, hi
}

// Histogram counts observations into log-scaled buckets. The zero value is
// not usable — construct with NewHistogram or Registry.Histogram.
type Histogram struct {
	count atomic.Int64
	sum   Gauge
	zero  atomic.Int64
	pos   []atomic.Int64 // histLen buckets for v > 0
	neg   []atomic.Int64 // histLen buckets for v < 0, indexed by |v|
}

// NewHistogram returns an empty histogram, usable standalone (e.g. as a
// run-local accumulator later Merge-d into a registry's histogram).
func NewHistogram() *Histogram {
	return &Histogram{
		pos: make([]atomic.Int64, histLen),
		neg: make([]atomic.Int64, histLen),
	}
}

// Observe records one sample. NaN counts toward Count in the zero bucket
// but is excluded from Sum so Mean stays finite.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	switch {
	case v > 0:
		h.pos[histIndex(v)].Add(1)
		h.sum.Add(v)
	case v < 0:
		h.neg[histIndex(-v)].Add(1)
		h.sum.Add(v)
	default:
		h.zero.Add(1)
	}
	h.count.Add(1)
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum.Value()
}

// Merge adds src's buckets into h. Both sides may keep observing
// concurrently; the merge is atomic per bucket, not across the histogram.
func (h *Histogram) Merge(src *Histogram) {
	if h == nil || src == nil {
		return
	}
	for i := range src.pos {
		if n := src.pos[i].Load(); n != 0 {
			h.pos[i].Add(n)
		}
		if n := src.neg[i].Load(); n != 0 {
			h.neg[i].Add(n)
		}
	}
	if n := src.zero.Load(); n != 0 {
		h.zero.Add(n)
	}
	h.count.Add(src.count.Load())
	h.sum.Add(src.sum.Value())
}

// Bucket is one non-empty histogram bucket in a snapshot: Count
// observations fell in [Lo, Hi). The zero bucket has Lo == Hi == 0.
type Bucket struct {
	Lo    float64 `json:"lo"`
	Hi    float64 `json:"hi"`
	Count int64   `json:"count"`
}

// HistogramSnapshot is a point-in-time copy of a histogram: only the
// non-empty buckets, in ascending value order (negatives first).
type HistogramSnapshot struct {
	Count   int64    `json:"count"`
	Sum     float64  `json:"sum"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// SnapshotHist copies the histogram's current state. Safe concurrently
// with Observe; an empty snapshot on nil.
func (h *Histogram) SnapshotHist() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{Count: h.count.Load(), Sum: h.sum.Value()}
	for i := histLen - 1; i >= 0; i-- {
		if n := h.neg[i].Load(); n != 0 {
			lo, hi := histBounds(i)
			s.Buckets = append(s.Buckets, Bucket{Lo: -hi, Hi: -lo, Count: n})
		}
	}
	if n := h.zero.Load(); n != 0 {
		s.Buckets = append(s.Buckets, Bucket{Count: n})
	}
	for i := 0; i < histLen; i++ {
		if n := h.pos[i].Load(); n != 0 {
			lo, hi := histBounds(i)
			s.Buckets = append(s.Buckets, Bucket{Lo: lo, Hi: hi, Count: n})
		}
	}
	return s
}

// Mean returns the mean of the observations (0 when empty). NaN samples
// are counted as zero.
func (h HistogramSnapshot) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / float64(h.Count)
}

// Quantile returns the q-th quantile (0..1) by linear interpolation inside
// the bucket containing the rank; the bucket width bounds the relative
// error at ≈ 1/32. Returns 0 when the histogram is empty.
func (h HistogramSnapshot) Quantile(q float64) float64 {
	if h.Count == 0 || len(h.Buckets) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(h.Count)
	acc := int64(0)
	for _, b := range h.Buckets {
		prev := acc
		acc += b.Count
		if float64(acc) >= rank {
			frac := 0.0
			if b.Count > 0 {
				frac = (rank - float64(prev)) / float64(b.Count)
			}
			return b.Lo + frac*(b.Hi-b.Lo)
		}
	}
	last := h.Buckets[len(h.Buckets)-1]
	return last.Hi
}

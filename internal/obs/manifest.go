package obs

import (
	"encoding/json"
	"os"
	"runtime"
	"runtime/debug"
	"time"
)

// Manifest is the provenance record for one search, simulation, or
// experiment run: enough to re-run it (config, seed) and to trust it (git
// revision, toolchain, host shape, wall time, final metrics). Written as
// one JSONL line per run so archives append cheaply; the ROADMAP item-1
// design store keys archived designs by these records.
type Manifest struct {
	Tool       string         `json:"tool"` // nocexplore | nocsim | benchtab
	StartedAt  time.Time      `json:"started_at"`
	WallSecs   float64        `json:"wall_secs,omitempty"`
	GoVersion  string         `json:"go_version"`
	GitRev     string         `json:"git_rev,omitempty"`
	GitDirty   bool           `json:"git_dirty,omitempty"`
	GOOS       string         `json:"goos"`
	GOARCH     string         `json:"goarch"`
	GOMAXPROCS int            `json:"gomaxprocs"`
	Seed       int64          `json:"seed,omitempty"`
	Config     map[string]any `json:"config,omitempty"`  // CLI flags / run parameters
	Metrics    map[string]any `json:"metrics,omitempty"` // final metrics snapshot
}

// NewManifest starts a manifest for the named tool, stamping toolchain and
// VCS provenance from the build info (git_rev is empty for non-VCS builds
// like `go run` of a dirty checkout without stamping).
func NewManifest(tool string) *Manifest {
	m := &Manifest{
		Tool:       tool,
		StartedAt:  time.Now().UTC(),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Config:     map[string]any{},
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				m.GitRev = s.Value
			case "vcs.modified":
				m.GitDirty = s.Value == "true"
			}
		}
	}
	return m
}

// Set records one config key (a CLI flag value, grid size, episode count).
// Nil-safe so instrumentation can stay unconditional.
func (m *Manifest) Set(key string, v any) {
	if m == nil {
		return
	}
	m.Config[key] = v
}

// Finish stamps the wall time and attaches the final metrics snapshot
// (counters and gauges verbatim; histograms reduced to count/mean/p50/
// p95/p99 so the record stays one line). reg may be nil.
func (m *Manifest) Finish(reg *Registry) {
	if m == nil {
		return
	}
	m.WallSecs = time.Since(m.StartedAt).Seconds()
	if reg == nil {
		return
	}
	s := reg.Snapshot()
	m.Metrics = make(map[string]any, len(s.Counters)+len(s.Gauges)+len(s.Histograms))
	for k, v := range s.Counters {
		m.Metrics[k] = v
	}
	for k, v := range s.Gauges {
		m.Metrics[k] = v
	}
	for k, h := range s.Histograms {
		m.Metrics[k] = map[string]any{
			"count": h.Count,
			"mean":  h.Mean(),
			"p50":   h.Quantile(0.50),
			"p95":   h.Quantile(0.95),
			"p99":   h.Quantile(0.99),
		}
	}
}

// AppendFile appends the manifest as one JSON line to path, creating the
// file if needed. Nil-safe; returns any file or encoding error.
func (m *Manifest) AppendFile(path string) error {
	if m == nil {
		return nil
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	data, err := json.Marshal(m)
	if err != nil {
		return err
	}
	_, err = f.Write(append(data, '\n'))
	return err
}

// Package obs is the observability layer shared by the simulator, the DRL
// search, and the CLIs: a concurrency-safe metrics registry (counters,
// gauges, log-scaled histograms), a structured JSONL event logger, a
// per-goroutine span tracer with Chrome trace export, run manifests, and
// an optional debug HTTP endpoint (expvar + pprof + spans). It is
// stdlib-only.
//
// Every type is nil-safe: a nil *Registry hands out nil metrics, and every
// metric method on a nil receiver is a no-op. Instrumented code therefore
// never branches on "is telemetry enabled" — it just calls Add/Set/Observe
// on whatever the registry gave it, and pays a single nil check when
// telemetry is off.
package obs

import (
	"encoding/json"
	"expvar"
	"io"
	"math"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing int64.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 that can be set to arbitrary values.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adds d to the gauge (CAS loop; safe under concurrency).
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value (0 on a nil gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Snapshot is a consistent-enough copy of a registry's metrics (each value
// is read atomically; the set of metrics is read under the registry lock).
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Registry names and owns metrics. Metric lookup takes a mutex — callers
// on hot paths should look metrics up once and keep the pointer; the
// metric operations themselves are atomic and lock-free.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use. A nil
// registry returns a nil (no-op) counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. A nil registry
// returns a nil (no-op) gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use. The
// log-scaled layout needs no bucket configuration. A nil registry returns
// a nil (no-op) histogram.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = NewHistogram()
		r.histograms[name] = h
	}
	return h
}

// Snapshot copies every metric's current value. Safe to call concurrently
// with metric updates. A nil registry returns an empty snapshot.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.histograms {
		s.Histograms[name] = h.SnapshotHist()
	}
	return s
}

// WriteJSON renders the snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// ExpvarVar returns the registry as an expvar-compatible variable whose
// String() is the JSON snapshot; publish it with expvar.Publish or serve
// it from a custom /debug/vars map.
func (r *Registry) ExpvarVar() expvar.Var {
	return expvar.Func(func() any { return r.Snapshot() })
}

// Package obs is the observability layer shared by the simulator, the DRL
// search, and the CLIs: a concurrency-safe metrics registry (counters,
// gauges, fixed-bucket histograms), a structured JSONL event logger, and
// an optional debug HTTP endpoint (expvar + pprof). It is stdlib-only.
//
// Every type is nil-safe: a nil *Registry hands out nil metrics, and every
// metric method on a nil receiver is a no-op. Instrumented code therefore
// never branches on "is telemetry enabled" — it just calls Add/Set/Observe
// on whatever the registry gave it, and pays a single nil check when
// telemetry is off.
package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing int64.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 that can be set to arbitrary values.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adds d to the gauge (CAS loop; safe under concurrency).
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value (0 on a nil gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into fixed buckets. Buckets are defined by
// ascending upper bounds; an implicit +Inf bucket catches the overflow.
// Observe is lock-free: a binary search over the bounds plus two atomic
// adds.
type Histogram struct {
	bounds []float64      // ascending upper bounds (each bucket: v <= bound)
	counts []atomic.Int64 // len(bounds)+1; last is the +Inf bucket
	count  atomic.Int64
	sum    Gauge
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum.Value()
}

// Bucket is one histogram bucket in a snapshot. UpperBound is +Inf for the
// overflow bucket (serialized as the string "+Inf").
type Bucket struct {
	UpperBound float64 `json:"le"`
	Count      int64   `json:"count"`
}

// MarshalJSON renders +Inf as a string, since JSON has no infinity.
func (b Bucket) MarshalJSON() ([]byte, error) {
	le := "+Inf"
	if !math.IsInf(b.UpperBound, 1) {
		le = fmt.Sprintf("%g", b.UpperBound)
	}
	return json.Marshal(struct {
		Le    string `json:"le"`
		Count int64  `json:"count"`
	}{le, b.Count})
}

// HistogramSnapshot is a point-in-time copy of a histogram.
type HistogramSnapshot struct {
	Count   int64    `json:"count"`
	Sum     float64  `json:"sum"`
	Buckets []Bucket `json:"buckets"`
}

// Mean returns the mean of the observations (0 when empty).
func (h HistogramSnapshot) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / float64(h.Count)
}

// Quantile approximates the q-th quantile (0..1) by linear interpolation
// within the bucket containing it; the overflow bucket reports its lower
// bound. Returns 0 when the histogram is empty.
func (h HistogramSnapshot) Quantile(q float64) float64 {
	if h.Count == 0 || len(h.Buckets) == 0 {
		return 0
	}
	rank := q * float64(h.Count)
	acc := int64(0)
	lower := 0.0
	for _, b := range h.Buckets {
		prev := acc
		acc += b.Count
		if float64(acc) >= rank {
			if math.IsInf(b.UpperBound, 1) || b.Count == 0 {
				return lower
			}
			frac := (rank - float64(prev)) / float64(b.Count)
			return lower + frac*(b.UpperBound-lower)
		}
		if !math.IsInf(b.UpperBound, 1) {
			lower = b.UpperBound
		}
	}
	return lower
}

// Snapshot is a consistent-enough copy of a registry's metrics (each value
// is read atomically; the set of metrics is read under the registry lock).
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Registry names and owns metrics. Metric lookup takes a mutex — callers
// on hot paths should look metrics up once and keep the pointer; the
// metric operations themselves are atomic and lock-free.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use. A nil
// registry returns a nil (no-op) counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. A nil registry
// returns a nil (no-op) gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// ascending upper bounds on first use (later bounds are ignored — the
// first creation wins). A nil registry returns a nil (no-op) histogram.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		bs := append([]float64(nil), bounds...)
		sort.Float64s(bs)
		h = &Histogram{bounds: bs, counts: make([]atomic.Int64, len(bs)+1)}
		r.histograms[name] = h
	}
	return h
}

// Snapshot copies every metric's current value. Safe to call concurrently
// with metric updates. A nil registry returns an empty snapshot.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.histograms {
		hs := HistogramSnapshot{
			Count:   h.Count(),
			Sum:     h.Sum(),
			Buckets: make([]Bucket, len(h.counts)),
		}
		for i := range h.counts {
			ub := math.Inf(1)
			if i < len(h.bounds) {
				ub = h.bounds[i]
			}
			hs.Buckets[i] = Bucket{UpperBound: ub, Count: h.counts[i].Load()}
		}
		s.Histograms[name] = hs
	}
	return s
}

// WriteJSON renders the snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// ExpvarVar returns the registry as an expvar-compatible variable whose
// String() is the JSON snapshot; publish it with expvar.Publish or serve
// it from a custom /debug/vars map.
func (r *Registry) ExpvarVar() expvar.Var {
	return expvar.Func(func() any { return r.Snapshot() })
}

// LatencyBuckets is the default bucket layout for packet-latency
// histograms: roughly exponential from a few cycles to deep saturation.
func LatencyBuckets() []float64 {
	return []float64{5, 10, 20, 40, 80, 160, 320, 640, 1280, 2560, 5120, 10240}
}

package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

func TestDebugServerEndpoints(t *testing.T) {
	r := NewRegistry()
	r.Counter("sim.flits_injected").Add(42)
	tr := NewTracer(256)
	sh := tr.Shard("test")
	sp := sh.Start(SpanSimRun)
	sp.End()
	d, err := StartDebug("127.0.0.1:0", r, tr)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	get := func(path string) []byte {
		t.Helper()
		resp, err := http.Get("http://" + d.Addr + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return body
	}

	var snap struct {
		Counters map[string]int64 `json:"counters"`
	}
	if err := json.Unmarshal(get("/metrics"), &snap); err != nil {
		t.Fatalf("/metrics not JSON: %v", err)
	}
	if snap.Counters["sim.flits_injected"] != 42 {
		t.Fatalf("metrics snapshot = %+v", snap)
	}
	if !json.Valid(get("/debug/vars")) {
		t.Fatal("/debug/vars not JSON")
	}
	if len(get("/debug/pprof/")) == 0 {
		t.Fatal("/debug/pprof/ empty")
	}
	if body := string(get("/debug/spans")); !strings.Contains(body, "sim.run") {
		t.Fatalf("/debug/spans missing recorded span kind: %q", body)
	}
	var stats []SpanStat
	if err := json.Unmarshal(get("/debug/spans?format=json"), &stats); err != nil {
		t.Fatalf("/debug/spans?format=json not JSON: %v", err)
	}
	if len(stats) != 1 || stats[0].Kind != "sim.run" || stats[0].Count != 1 {
		t.Fatalf("span stats = %+v", stats)
	}
}

func TestDebugServerNilRegistryAndClose(t *testing.T) {
	d, err := StartDebug("127.0.0.1:0", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + d.Addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !json.Valid(body) {
		t.Fatalf("nil-registry /metrics not JSON: %s", body)
	}
	resp, err = http.Get("http://" + d.Addr + "/debug/spans")
	if err != nil {
		t.Fatal(err)
	}
	io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("nil-tracer /debug/spans status %d", resp.StatusCode)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	var nilServer *DebugServer
	if err := nilServer.Close(); err != nil {
		t.Fatal(err)
	}
}

package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("flits")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("flits") != c {
		t.Fatal("counter lookup not idempotent")
	}
	g := r.Gauge("inflight")
	g.Set(3.5)
	g.Add(-1.5)
	if got := g.Value(); got != 2 {
		t.Fatalf("gauge = %v, want 2", got)
	}
}

func TestNilRegistryAndMetricsAreNops(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("y")
	h := r.Histogram("z")
	c.Inc()
	c.Add(7)
	g.Set(1)
	g.Add(2)
	h.Observe(1.5)
	h.Merge(NewHistogram())
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil metrics must read as zero")
	}
	if hs := h.SnapshotHist(); hs.Count != 0 || len(hs.Buckets) != 0 {
		t.Fatal("nil histogram snapshot must be empty")
	}
	s := r.Snapshot()
	if len(s.Counters) != 0 || len(s.Gauges) != 0 || len(s.Histograms) != 0 {
		t.Fatal("nil registry snapshot must be empty")
	}
}

func TestHistogramBucketsAndSum(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat")
	vals := []float64{1, 9, 10, 11, 25, 100}
	for _, v := range vals {
		h.Observe(v)
	}
	s := r.Snapshot().Histograms["lat"]
	if s.Count != int64(len(vals)) {
		t.Fatalf("count = %d, want %d", s.Count, len(vals))
	}
	if want := 1.0 + 9 + 10 + 11 + 25 + 100; s.Sum != want {
		t.Fatalf("sum = %v, want %v", s.Sum, want)
	}
	if got := s.Mean(); math.Abs(got-156.0/6) > 1e-12 {
		t.Fatalf("mean = %v", got)
	}
	// Every value must land in a bucket whose [Lo, Hi) range contains it,
	// buckets must be ascending, and counts must add up.
	var total int64
	for i, b := range s.Buckets {
		total += b.Count
		if b.Hi < b.Lo {
			t.Fatalf("bucket %d: hi %v < lo %v", i, b.Hi, b.Lo)
		}
		if i > 0 && b.Lo < s.Buckets[i-1].Hi-1e-12 {
			t.Fatalf("buckets out of order at %d: %v after %v", i, b.Lo, s.Buckets[i-1].Hi)
		}
	}
	if total != s.Count {
		t.Fatalf("bucket counts sum to %d, want %d", total, s.Count)
	}
	for _, v := range vals {
		found := false
		for _, b := range s.Buckets {
			if v >= b.Lo && v < b.Hi {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("value %v not covered by any bucket", v)
		}
	}
}

// TestHistogramQuantileBoundedError is the accuracy contract the sim's
// p50/p95/p99 reporting relies on: every quantile of a log-scaled
// histogram is within the bucket relative width (1/32) of the exact
// sample quantile.
func TestHistogramQuantileBoundedError(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	h := NewHistogram()
	vals := make([]float64, 20000)
	for i := range vals {
		// Log-uniform over ~5 decades plus a heavy tail, like saturated
		// latency distributions.
		v := math.Exp(rng.Float64()*11) * 0.05
		vals[i] = v
		h.Observe(v)
	}
	sort.Float64s(vals)
	s := h.SnapshotHist()
	for _, q := range []float64{0.01, 0.25, 0.5, 0.9, 0.95, 0.99, 0.999} {
		exact := vals[int(q*float64(len(vals)-1))]
		got := s.Quantile(q)
		// One bucket width of slack on top of the 1/histSub contract for
		// the sample-vs-interpolated rank difference at the tails.
		if rel := math.Abs(got-exact) / exact; rel > 1.1/histSub {
			t.Fatalf("q%v: got %v, exact %v, rel err %.4f > %.4f", q, got, exact, rel, 1.1/histSub)
		}
	}
}

func TestHistogramNegativeAndZero(t *testing.T) {
	h := NewHistogram()
	for _, v := range []float64{-1000, -31.4, 0, 0, 5, 30} {
		h.Observe(v)
	}
	s := h.SnapshotHist()
	if s.Count != 6 {
		t.Fatalf("count = %d, want 6", s.Count)
	}
	if got, want := s.Sum, -1000.0-31.4+5+30; math.Abs(got-want) > 1e-9 {
		t.Fatalf("sum = %v, want %v", got, want)
	}
	// Ascending order: negatives, then the zero bucket, then positives.
	if s.Buckets[0].Hi > 0 {
		t.Fatalf("first bucket should be negative: %+v", s.Buckets[0])
	}
	sawZero := false
	for i, b := range s.Buckets {
		if b.Lo == 0 && b.Hi == 0 {
			sawZero = true
			if b.Count != 2 {
				t.Fatalf("zero bucket count = %d, want 2", b.Count)
			}
		}
		if i > 0 && b.Lo < s.Buckets[i-1].Lo {
			t.Fatalf("buckets not ascending at %d", i)
		}
	}
	if !sawZero {
		t.Fatal("zero bucket missing")
	}
	if q := s.Quantile(0.05); q > -900 {
		t.Fatalf("q5 = %v, want near -1000", q)
	}
	if q := s.Quantile(0.99); q < 25 {
		t.Fatalf("q99 = %v, want near 30", q)
	}
}

func TestHistogramMerge(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	for i := 1; i <= 100; i++ {
		a.Observe(float64(i))
	}
	for i := 101; i <= 200; i++ {
		b.Observe(float64(i))
	}
	b.Observe(-3)
	b.Observe(0)
	a.Merge(b)
	s := a.SnapshotHist()
	if s.Count != 202 {
		t.Fatalf("merged count = %d, want 202", s.Count)
	}
	want := float64(200*201)/2 - 3
	if math.Abs(s.Sum-want) > 1e-9 {
		t.Fatalf("merged sum = %v, want %v", s.Sum, want)
	}
	if q := s.Quantile(0.5); math.Abs(q-100)/100 > 2.0/histSub {
		t.Fatalf("merged median = %v, want ~100", q)
	}
}

func TestRegistryConcurrentUse(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("n")
			h := r.Histogram("h")
			for i := 0; i < per; i++ {
				c.Inc()
				r.Gauge("g").Set(float64(i))
				h.Observe(float64(i % 2))
				r.Snapshot()
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("n").Value(); got != workers*per {
		t.Fatalf("counter = %d, want %d", got, workers*per)
	}
	if got := r.Histogram("h").Count(); got != workers*per {
		t.Fatalf("histogram count = %d, want %d", got, workers*per)
	}
}

func TestSnapshotJSONAndExpvar(t *testing.T) {
	r := NewRegistry()
	r.Counter("a").Add(2)
	r.Gauge("b").Set(1.5)
	r.Histogram("c").Observe(3)

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var s struct {
		Counters   map[string]int64   `json:"counters"`
		Gauges     map[string]float64 `json:"gauges"`
		Histograms map[string]struct {
			Count   int64 `json:"count"`
			Buckets []struct {
				Lo    float64 `json:"lo"`
				Hi    float64 `json:"hi"`
				Count int64   `json:"count"`
			} `json:"buckets"`
		} `json:"histograms"`
	}
	if err := json.Unmarshal(buf.Bytes(), &s); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v\n%s", err, buf.String())
	}
	if s.Counters["a"] != 2 || s.Gauges["b"] != 1.5 || s.Histograms["c"].Count != 1 {
		t.Fatalf("snapshot mismatch: %s", buf.String())
	}
	bs := s.Histograms["c"].Buckets
	if len(bs) != 1 || bs[0].Count != 1 || !(bs[0].Lo <= 3 && 3 < bs[0].Hi) {
		t.Fatalf("histogram buckets mismatch: %+v", bs)
	}

	ev := r.ExpvarVar().String()
	if !json.Valid([]byte(ev)) {
		t.Fatalf("expvar string is not valid JSON: %s", ev)
	}
	if !strings.Contains(ev, `"a":2`) {
		t.Fatalf("expvar output missing counter: %s", ev)
	}
}

func TestHistogramObserveZeroAlloc(t *testing.T) {
	h := NewHistogram()
	if n := testing.AllocsPerRun(1000, func() { h.Observe(37.5) }); n != 0 {
		t.Fatalf("Histogram.Observe allocates %v/op, want 0", n)
	}
}

// BenchmarkHistogram measures the log-scaled histogram's hot operations:
// Observe (per-packet on the sim stats path) and the quantile read taken
// at run end. Observe must stay allocation-free and in the low-ns range
// (`make bench-obs` gates it alongside the span benchmarks).
func BenchmarkHistogram(b *testing.B) {
	b.Run("observe", func(b *testing.B) {
		h := NewHistogram()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			h.Observe(float64(i%1000) + 0.5)
		}
	})
	b.Run("quantile", func(b *testing.B) {
		h := NewHistogram()
		for i := 0; i < 100000; i++ {
			h.Observe(float64(i % 5000))
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s := h.SnapshotHist()
			if q := s.Quantile(0.99); q <= 0 {
				b.Fatal("bad quantile", q)
			}
		}
	})
}

package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("flits")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("flits") != c {
		t.Fatal("counter lookup not idempotent")
	}
	g := r.Gauge("inflight")
	g.Set(3.5)
	g.Add(-1.5)
	if got := g.Value(); got != 2 {
		t.Fatalf("gauge = %v, want 2", got)
	}
}

func TestNilRegistryAndMetricsAreNops(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("y")
	h := r.Histogram("z", []float64{1, 2})
	c.Inc()
	c.Add(7)
	g.Set(1)
	g.Add(2)
	h.Observe(1.5)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil metrics must read as zero")
	}
	s := r.Snapshot()
	if len(s.Counters) != 0 || len(s.Gauges) != 0 || len(s.Histograms) != 0 {
		t.Fatal("nil registry snapshot must be empty")
	}
}

func TestHistogramBucketsAndQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []float64{10, 20, 40})
	for _, v := range []float64{1, 9, 10, 11, 25, 100} {
		h.Observe(v)
	}
	s := r.Snapshot().Histograms["lat"]
	if s.Count != 6 {
		t.Fatalf("count = %d, want 6", s.Count)
	}
	if want := 1.0 + 9 + 10 + 11 + 25 + 100; s.Sum != want {
		t.Fatalf("sum = %v, want %v", s.Sum, want)
	}
	counts := []int64{3, 1, 1, 1} // (<=10, <=20, <=40, +Inf)
	for i, b := range s.Buckets {
		if b.Count != counts[i] {
			t.Fatalf("bucket %d = %d, want %d", i, b.Count, counts[i])
		}
	}
	if !math.IsInf(s.Buckets[3].UpperBound, 1) {
		t.Fatal("last bucket must be +Inf")
	}
	if got := s.Mean(); math.Abs(got-156.0/6) > 1e-12 {
		t.Fatalf("mean = %v", got)
	}
	if q := s.Quantile(0.5); q <= 0 || q > 10 {
		t.Fatalf("median = %v, want in (0, 10]", q)
	}
	if q := s.Quantile(1.0); q != 40 {
		// The overflow bucket reports its lower bound.
		t.Fatalf("q100 = %v, want 40", q)
	}
}

func TestRegistryConcurrentUse(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("n")
			h := r.Histogram("h", []float64{0.5})
			for i := 0; i < per; i++ {
				c.Inc()
				r.Gauge("g").Set(float64(i))
				h.Observe(float64(i % 2))
				r.Snapshot()
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("n").Value(); got != workers*per {
		t.Fatalf("counter = %d, want %d", got, workers*per)
	}
	if got := r.Histogram("h", nil).Count(); got != workers*per {
		t.Fatalf("histogram count = %d, want %d", got, workers*per)
	}
}

func TestSnapshotJSONAndExpvar(t *testing.T) {
	r := NewRegistry()
	r.Counter("a").Add(2)
	r.Gauge("b").Set(1.5)
	r.Histogram("c", []float64{1}).Observe(3)

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var s struct {
		Counters   map[string]int64   `json:"counters"`
		Gauges     map[string]float64 `json:"gauges"`
		Histograms map[string]struct {
			Count   int64 `json:"count"`
			Buckets []struct {
				Le    string `json:"le"`
				Count int64  `json:"count"`
			} `json:"buckets"`
		} `json:"histograms"`
	}
	if err := json.Unmarshal(buf.Bytes(), &s); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v\n%s", err, buf.String())
	}
	if s.Counters["a"] != 2 || s.Gauges["b"] != 1.5 || s.Histograms["c"].Count != 1 {
		t.Fatalf("snapshot mismatch: %s", buf.String())
	}
	if got := s.Histograms["c"].Buckets[1].Le; got != "+Inf" {
		t.Fatalf("overflow bucket le = %q, want +Inf", got)
	}

	ev := r.ExpvarVar().String()
	if !json.Valid([]byte(ev)) {
		t.Fatalf("expvar string is not valid JSON: %s", ev)
	}
	if !strings.Contains(ev, `"a":2`) {
		t.Fatalf("expvar output missing counter: %s", ev)
	}
}

package obs

import (
	"fmt"
	"os"
	"runtime/pprof"
)

// StartCPUProfile begins writing a CPU profile to path and returns a stop
// function that flushes and closes it. The stop function is idempotent, so
// callers can both defer it (normal return) and call it explicitly before
// an os.Exit path that would skip defers. It is the shared implementation
// behind every binary's -cpuprofile flag; bracket only the section worth
// profiling (the search, the sweep), not flag parsing or report printing.
func StartCPUProfile(path string) (func(), error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("create cpu profile: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("start cpu profile: %w", err)
	}
	stopped := false
	return func() {
		if stopped {
			return
		}
		stopped = true
		pprof.StopCPUProfile()
		f.Close()
	}, nil
}

package obs

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// StartCPUProfile begins writing a CPU profile to path and returns a stop
// function that flushes and closes it. The stop function is idempotent, so
// callers can both defer it (normal return) and call it explicitly before
// an os.Exit path that would skip defers. It is the shared implementation
// behind every binary's -cpuprofile flag; bracket only the section worth
// profiling (the search, the sweep), not flag parsing or report printing.
func StartCPUProfile(path string) (func(), error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("create cpu profile: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("start cpu profile: %w", err)
	}
	stopped := false
	return func() {
		if stopped {
			return
		}
		stopped = true
		pprof.StopCPUProfile()
		f.Close()
	}, nil
}

// DefaultMutexFraction is the mutex-profile sampling fraction
// StartMutexProfile selects when rate <= 0: one in five contended lock
// acquisitions is recorded, cheap enough to leave on for a whole search.
const DefaultMutexFraction = 5

// StartMutexProfile enables mutex-contention profiling (recording 1/rate of
// contended lock events; rate <= 0 selects DefaultMutexFraction) and
// returns a stop function that writes the accumulated profile to path,
// restores the previous sampling fraction, and closes the file. Like
// StartCPUProfile's stop it is idempotent, so callers can both defer it and
// call it explicitly before an os.Exit path; unlike the CPU variant it
// returns an error because the profile body is written at stop time. The
// profile answers "which locks did goroutines wait on, and for how long" —
// the direct measure of search-tree stripe and parameter-chunk contention.
func StartMutexProfile(path string, rate int) (func() error, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("create mutex profile: %w", err)
	}
	if rate <= 0 {
		rate = DefaultMutexFraction
	}
	prev := runtime.SetMutexProfileFraction(rate)
	stopped := false
	return func() error {
		if stopped {
			return nil
		}
		stopped = true
		runtime.SetMutexProfileFraction(prev)
		err := pprof.Lookup("mutex").WriteTo(f, 0)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return fmt.Errorf("write mutex profile: %w", err)
		}
		return nil
	}, nil
}

// StartBlockProfile enables goroutine blocking profiling (one sample per
// rate nanoseconds blocked; rate <= 0 records every blocking event) and
// returns a stop function with the same contract as StartMutexProfile's.
// Where the mutex profile attributes waiting to the lock holder, the block
// profile attributes it to the waiter — channel operations included — so
// the pair brackets the de-serialization story from both sides.
func StartBlockProfile(path string, rate int) (func() error, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("create block profile: %w", err)
	}
	if rate <= 0 {
		rate = 1
	}
	runtime.SetBlockProfileRate(rate)
	stopped := false
	return func() error {
		if stopped {
			return nil
		}
		stopped = true
		runtime.SetBlockProfileRate(0)
		err := pprof.Lookup("block").WriteTo(f, 0)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return fmt.Errorf("write block profile: %w", err)
		}
		return nil
	}, nil
}

// StartContentionProfiles starts the mutex and/or block profiler for each
// non-empty path (an empty path skips that profiler, both empty is a no-op)
// at the default rates, returning one idempotent stop function that writes
// whatever was started and reports the first error. It is the shared
// implementation behind every binary's -mutexprofile/-blockprofile flags.
func StartContentionProfiles(mutexPath, blockPath string) (func() error, error) {
	var stops []func() error
	if mutexPath != "" {
		stop, err := StartMutexProfile(mutexPath, 0)
		if err != nil {
			return nil, err
		}
		stops = append(stops, stop)
	}
	if blockPath != "" {
		stop, err := StartBlockProfile(blockPath, 0)
		if err != nil {
			if len(stops) > 0 {
				stops[0]() // release the mutex profiler we already armed
			}
			return nil, err
		}
		stops = append(stops, stop)
	}
	return func() error {
		var first error
		for _, stop := range stops {
			if err := stop(); err != nil && first == nil {
				first = err
			}
		}
		return first
	}, nil
}

package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func TestNopLoggerIsSafe(t *testing.T) {
	var l *Logger
	if l.Enabled(LevelWarn) {
		t.Fatal("nil logger must report disabled")
	}
	l.Info(EventRunStart, map[string]any{"x": 1})
	l.Debug(EventEpisode, nil)
	l.Warn("anything", nil)
	l.Flush()
	if err := l.Close(); err != nil {
		t.Fatal("nil logger Close must be a no-op")
	}
	if got := NewLogger(nil, LevelDebug); got != nil {
		t.Fatal("NewLogger(nil, ...) must return the nop logger")
	}
}

// closeRecorder counts Close calls to verify Close is idempotent and
// reaches the underlying writer.
type closeRecorder struct {
	bytes.Buffer
	closes int
}

func (c *closeRecorder) Close() error { c.closes++; return nil }

func TestLoggerFlushAndCloseSemantics(t *testing.T) {
	var cr closeRecorder
	l := NewLogger(&cr, LevelDebug)
	l.Debug(EventEpisode, map[string]any{"i": 1})
	if cr.Len() != 0 {
		t.Fatal("debug event should be buffered, not written")
	}
	l.Info(EventRunStop, nil)
	if cr.Len() == 0 {
		t.Fatal("info event must flush the buffer")
	}
	before := cr.Len()
	l.Debug(EventEpisode, map[string]any{"i": 2})
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if cr.Len() <= before {
		t.Fatal("Close must flush trailing buffered events")
	}
	if cr.closes != 1 {
		t.Fatalf("underlying Close called %d times, want 1", cr.closes)
	}
	l.Debug(EventEpisode, nil) // dropped after Close
	l.Flush()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if cr.closes != 1 {
		t.Fatalf("Close not idempotent: %d underlying closes", cr.closes)
	}
}

func TestLoggerWritesJSONL(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, LevelDebug)
	l.now = func() time.Time { return time.Unix(1700000000, 0) }
	l.Info(EventRunStart, map[string]any{"nodes": 64, "pattern": "uniform_random"})
	l.Debug(EventEpisode, map[string]any{"episode": 1, "reward": -2.5})
	l.Flush() // Debug events are buffered until a Flush/Close or an Info event

	sc := bufio.NewScanner(&buf)
	var lines []map[string]any
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("line is not JSON: %v: %s", err, sc.Text())
		}
		lines = append(lines, m)
	}
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2", len(lines))
	}
	if lines[0]["event"] != EventRunStart || lines[0]["level"] != "info" {
		t.Fatalf("bad envelope: %v", lines[0])
	}
	if lines[0]["nodes"] != float64(64) {
		t.Fatalf("fields not flattened: %v", lines[0])
	}
	if lines[1]["reward"] != -2.5 {
		t.Fatalf("bad episode event: %v", lines[1])
	}
	if _, err := time.Parse(time.RFC3339Nano, lines[0]["ts"].(string)); err != nil {
		t.Fatalf("bad timestamp: %v", err)
	}
}

func TestLoggerLevelFiltering(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, LevelInfo)
	l.Debug(EventInterval, nil)
	l.Flush()
	if buf.Len() != 0 {
		t.Fatal("debug event written despite info level")
	}
	if l.Enabled(LevelDebug) {
		t.Fatal("Enabled(debug) at info level")
	}
	l.Info(EventRunStop, nil)
	if buf.Len() == 0 {
		t.Fatal("info event dropped")
	}
}

func TestLoggerConcurrentWritesStayLineAtomic(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, LevelDebug)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				l.Debug(EventEpisode, map[string]any{"worker": w, "i": i})
			}
		}(w)
	}
	wg.Wait()
	l.Flush()
	sc := bufio.NewScanner(&buf)
	n := 0
	for sc.Scan() {
		if !json.Valid(sc.Bytes()) {
			t.Fatalf("interleaved write produced invalid JSON: %s", sc.Text())
		}
		n++
	}
	if n != 8*200 {
		t.Fatalf("got %d lines, want %d", n, 8*200)
	}
}

package obs

import (
	"compress/gzip"
	"io"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// contend generates genuine lock contention so the mutex and block
// profilers have events to record.
func contend() {
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				mu.Lock()
				for j := 0; j < 50; j++ {
					_ = j * j
				}
				mu.Unlock() //nolint:staticcheck // intentional hold-and-release loop
			}
		}()
	}
	wg.Wait()
}

// checkPprof asserts the file at path is a non-empty, well-formed pprof
// profile: the output of pprof's WriteTo(_, 0) is gzip-compressed protobuf,
// so it must carry the gzip magic and decompress to a non-empty body.
func checkPprof(t *testing.T, path string) {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatalf("open profile: %v", err)
	}
	defer f.Close()
	zr, err := gzip.NewReader(f)
	if err != nil {
		t.Fatalf("profile at %s is not gzip-compressed pprof: %v", path, err)
	}
	body, err := io.ReadAll(zr)
	if err != nil {
		t.Fatalf("decompress profile: %v", err)
	}
	if len(body) == 0 {
		t.Fatalf("profile at %s has an empty body", path)
	}
}

func TestStartMutexProfile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "mutex.pprof")
	stop, err := StartMutexProfile(path, 1) // sample every contended event
	if err != nil {
		t.Fatalf("StartMutexProfile: %v", err)
	}
	contend()
	if err := stop(); err != nil {
		t.Fatalf("stop: %v", err)
	}
	if err := stop(); err != nil {
		t.Fatalf("second stop not idempotent: %v", err)
	}
	checkPprof(t, path)
}

func TestStartBlockProfile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "block.pprof")
	stop, err := StartBlockProfile(path, 1)
	if err != nil {
		t.Fatalf("StartBlockProfile: %v", err)
	}
	contend()
	if err := stop(); err != nil {
		t.Fatalf("stop: %v", err)
	}
	if err := stop(); err != nil {
		t.Fatalf("second stop not idempotent: %v", err)
	}
	checkPprof(t, path)
}

func TestStartContentionProfiles(t *testing.T) {
	dir := t.TempDir()
	mp, bp := filepath.Join(dir, "m.pprof"), filepath.Join(dir, "b.pprof")
	stop, err := StartContentionProfiles(mp, bp)
	if err != nil {
		t.Fatalf("StartContentionProfiles: %v", err)
	}
	contend()
	if err := stop(); err != nil {
		t.Fatalf("stop: %v", err)
	}
	checkPprof(t, mp)
	checkPprof(t, bp)

	// Both paths empty: a usable no-op.
	stop, err = StartContentionProfiles("", "")
	if err != nil {
		t.Fatalf("empty StartContentionProfiles: %v", err)
	}
	if err := stop(); err != nil {
		t.Fatalf("empty stop: %v", err)
	}
}

func TestStartMutexProfileBadPath(t *testing.T) {
	if _, err := StartMutexProfile(filepath.Join(t.TempDir(), "no", "such", "dir", "x.pprof"), 0); err == nil {
		t.Fatal("no error for uncreatable path")
	}
	if _, err := StartBlockProfile(filepath.Join(t.TempDir(), "no", "such", "dir", "x.pprof"), 0); err == nil {
		t.Fatal("no error for uncreatable path")
	}
}

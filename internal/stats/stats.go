// Package stats provides the small statistical utilities used across the
// simulator, the DRL search, and the benchmark harness: running means,
// standard deviations, histograms, and saturation detection on
// latency-vs-injection curves.
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}

// Min returns the minimum of xs, or 0 for an empty slice (matching Mean;
// callers that must distinguish "no samples" should check len first).
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs, or 0 for an empty slice (matching Mean;
// callers that must distinguish "no samples" should check len first).
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Percentile returns the p-th percentile (0..100) of xs using linear
// interpolation, or 0 for an empty slice.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	rank := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s[lo]
	}
	frac := rank - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Welford accumulates a running mean and variance without storing samples.
type Welford struct {
	n    int
	mean float64
	m2   float64
}

// Add folds x into the accumulator.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the sample count.
func (w *Welford) N() int { return w.n }

// Mean returns the running mean.
func (w *Welford) Mean() float64 { return w.mean }

// Var returns the running population variance.
func (w *Welford) Var() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n)
}

// StdDev returns the running population standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Var()) }

// CurvePoint is one (injection rate, average latency, accepted throughput)
// sample on a load-latency curve.
type CurvePoint struct {
	InjectionRate float64 // offered, flits/node/cycle
	Latency       float64 // average packet latency, cycles
	Throughput    float64 // accepted, flits/node/cycle
}

// SaturationThroughput estimates the network saturation point from a
// load-latency curve: the throughput at the first point whose latency
// exceeds latencyCap times the zero-load latency (the curve's first
// sample). When no point exceeds the cap, the last point's throughput is
// returned. This mirrors the paper's methodology of sweeping injection
// rates "until the network saturates".
func SaturationThroughput(curve []CurvePoint, latencyCap float64) float64 {
	if len(curve) == 0 {
		return 0
	}
	zeroLoad := curve[0].Latency
	best := 0.0
	for _, p := range curve {
		if p.Latency > latencyCap*zeroLoad {
			return best
		}
		if p.Throughput > best {
			best = p.Throughput
		}
	}
	return best
}

// ZeroLoadLatency returns the latency of the curve's first point, or 0.
func ZeroLoadLatency(curve []CurvePoint) float64 {
	if len(curve) == 0 {
		return 0
	}
	return curve[0].Latency
}

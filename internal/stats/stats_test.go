package stats

import (
	"math"
	"math/rand"
	"testing"
)

func almost(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil) != 0")
	}
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Fatalf("mean = %v", got)
	}
}

func TestStdDev(t *testing.T) {
	if StdDev([]float64{5}) != 0 {
		t.Fatal("single sample SD != 0")
	}
	got := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if !almost(got, 2, 1e-12) {
		t.Fatalf("SD = %v, want 2", got)
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	if Min(xs) != -1 || Max(xs) != 7 {
		t.Fatalf("min/max = %v/%v", Min(xs), Max(xs))
	}
}

// Empty slices must not panic: like Mean, the order statistics degrade to
// 0 so report rows for searches that found nothing stay printable.
func TestEmptySlicesReturnZero(t *testing.T) {
	if Min(nil) != 0 || Max(nil) != 0 {
		t.Fatalf("min/max on empty = %v/%v", Min(nil), Max(nil))
	}
	if Percentile(nil, 50) != 0 || Percentile([]float64{}, 99) != 0 {
		t.Fatal("percentile on empty != 0")
	}
	if Min([]float64{5}) != 5 || Max([]float64{5}) != 5 {
		t.Fatal("single-element min/max wrong")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if Percentile(xs, 0) != 1 || Percentile(xs, 100) != 5 {
		t.Fatal("extremes wrong")
	}
	if got := Percentile(xs, 50); got != 3 {
		t.Fatalf("median = %v", got)
	}
	if got := Percentile(xs, 25); got != 2 {
		t.Fatalf("p25 = %v", got)
	}
}

func TestWelfordMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	xs := make([]float64, 1000)
	var w Welford
	for i := range xs {
		xs[i] = rng.NormFloat64()*3 + 10
		w.Add(xs[i])
	}
	if w.N() != 1000 {
		t.Fatalf("n = %d", w.N())
	}
	if !almost(w.Mean(), Mean(xs), 1e-9) {
		t.Fatalf("mean %v vs %v", w.Mean(), Mean(xs))
	}
	if !almost(w.StdDev(), StdDev(xs), 1e-9) {
		t.Fatalf("sd %v vs %v", w.StdDev(), StdDev(xs))
	}
}

func TestWelfordEmpty(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Var() != 0 {
		t.Fatal("empty Welford not zero")
	}
}

func TestSaturationThroughput(t *testing.T) {
	curve := []CurvePoint{
		{0.01, 10, 0.01},
		{0.05, 11, 0.05},
		{0.10, 13, 0.10},
		{0.15, 25, 0.14},
		{0.20, 90, 0.14}, // saturated: latency blew past 3x zero-load
	}
	got := SaturationThroughput(curve, 3)
	if got != 0.14 {
		t.Fatalf("saturation = %v, want 0.14 (last pre-saturation point)", got)
	}
}

func TestSaturationNeverExceedsCap(t *testing.T) {
	curve := []CurvePoint{{0.01, 10, 0.01}, {0.05, 12, 0.05}}
	if got := SaturationThroughput(curve, 3); got != 0.05 {
		t.Fatalf("unsaturated curve: %v", got)
	}
	if SaturationThroughput(nil, 3) != 0 {
		t.Fatal("empty curve should return 0")
	}
}

func TestZeroLoadLatency(t *testing.T) {
	if ZeroLoadLatency(nil) != 0 {
		t.Fatal("nil curve")
	}
	if got := ZeroLoadLatency([]CurvePoint{{0.005, 9.9, 0.005}}); got != 9.9 {
		t.Fatalf("zero load = %v", got)
	}
}

package nn

import (
	"math"
	"math/rand"
	"testing"

	"routerless/internal/tensor"
)

// numericGrad estimates dLoss/dx[i] by central differences.
func numericGrad(f func() float64, x *tensor.Tensor, i int) float64 {
	const h = 1e-5
	orig := x.Data[i]
	x.Data[i] = orig + h
	up := f()
	x.Data[i] = orig - h
	down := f()
	x.Data[i] = orig
	return (up - down) / (2 * h)
}

// checkLayerGradients validates input and parameter gradients of a layer
// against numerical differentiation using loss = sum(out * lossW).
func checkLayerGradients(t *testing.T, l Layer, x *tensor.Tensor, tol float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(99))
	out := l.Forward(x, true)
	lossW := make([]float64, out.Size())
	for i := range lossW {
		lossW[i] = rng.NormFloat64()
	}
	loss := func() float64 {
		o := l.Forward(x, true)
		s := 0.0
		for i, v := range o.Data {
			s += v * lossW[i]
		}
		return s
	}
	// Analytic gradients.
	for _, p := range l.Params() {
		p.G.Fill(0)
	}
	_ = out
	grad := tensor.FromSlice(append([]float64(nil), lossW...), out.Shape...)
	l.Forward(x, true) // refresh caches
	dx := l.Backward(grad)

	// Check input gradient at sampled positions.
	for k := 0; k < 10 && k < x.Size(); k++ {
		i := rng.Intn(x.Size())
		want := numericGrad(loss, x, i)
		if math.Abs(dx.Data[i]-want) > tol*(1+math.Abs(want)) {
			t.Fatalf("input grad[%d]: analytic %v, numeric %v", i, dx.Data[i], want)
		}
	}
	// Check parameter gradients at sampled positions.
	for _, p := range l.Params() {
		for k := 0; k < 6 && k < p.W.Size(); k++ {
			i := rng.Intn(p.W.Size())
			want := numericGrad(loss, p.W, i)
			got := p.G.Data[i]
			if math.Abs(got-want) > tol*(1+math.Abs(want)) {
				t.Fatalf("param %s grad[%d]: analytic %v, numeric %v", p.Name, i, got, want)
			}
		}
	}
}

func TestConv2DGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	l := NewConv2D(rng, "c", 2, 3, 3)
	x := tensor.Randn(rng, 1, 2, 5, 5)
	checkLayerGradients(t, l, x, 1e-4)
}

func TestConv2DShape(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	l := NewConv2D(rng, "c", 1, 4, 5)
	x := tensor.Randn(rng, 1, 1, 8, 8)
	out := l.Forward(x, true)
	if out.Shape[0] != 4 || out.Shape[1] != 8 || out.Shape[2] != 8 {
		t.Fatalf("shape = %v", out.Shape)
	}
}

func TestDenseGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	l := NewDense(rng, "d", 12, 7)
	x := tensor.Randn(rng, 1, 12)
	checkLayerGradients(t, l, x, 1e-5)
}

func TestReLUGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	l := NewReLU()
	x := tensor.Randn(rng, 1, 3, 4, 4)
	// Avoid kink points.
	for i := range x.Data {
		if math.Abs(x.Data[i]) < 1e-3 {
			x.Data[i] = 0.5
		}
	}
	checkLayerGradients(t, l, x, 1e-6)
}

func TestMaxPoolGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	l := NewMaxPool()
	x := tensor.Randn(rng, 1, 2, 6, 6)
	checkLayerGradients(t, l, x, 1e-6)
}

func TestMaxPoolShapeOddInput(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	l := NewMaxPool()
	x := tensor.Randn(rng, 1, 1, 5, 7)
	out := l.Forward(x, true)
	if out.Shape[1] != 2 || out.Shape[2] != 3 {
		t.Fatalf("shape = %v", out.Shape)
	}
}

func TestBatchNormGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	l := NewBatchNorm("bn", 3)
	x := tensor.Randn(rng, 1, 3, 4, 4)
	checkLayerGradients(t, l, x, 1e-3)
}

func TestBatchNormNormalizes(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	l := NewBatchNorm("bn", 2)
	x := tensor.Randn(rng, 3, 2, 8, 8)
	for i := range x.Data {
		x.Data[i] += 5 // offset mean
	}
	out := l.Forward(x, true)
	for c := 0; c < 2; c++ {
		ch := out.Data[c*64 : (c+1)*64]
		mean := 0.0
		for _, v := range ch {
			mean += v
		}
		mean /= 64
		if math.Abs(mean) > 1e-9 {
			t.Fatalf("channel %d mean = %v after BN", c, mean)
		}
	}
}

func TestBatchNormEvalUsesRunningStats(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	l := NewBatchNorm("bn", 1)
	// Train on shifted data to move the running stats.
	for i := 0; i < 50; i++ {
		x := tensor.Randn(rng, 1, 1, 4, 4)
		for j := range x.Data {
			x.Data[j] += 3
		}
		l.Forward(x, true)
	}
	// Eval on the same distribution: output should be near zero-mean.
	x := tensor.Randn(rng, 0.01, 1, 4, 4)
	for j := range x.Data {
		x.Data[j] += 3
	}
	out := l.Forward(x, false)
	mean := 0.0
	for _, v := range out.Data {
		mean += v
	}
	mean /= float64(len(out.Data))
	if math.Abs(mean) > 0.5 {
		t.Fatalf("eval-mode mean = %v, running stats not used", mean)
	}
}

func TestResidualGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	l := NewResidual(rng, "res", 2)
	x := tensor.Randn(rng, 1, 2, 4, 4)
	checkLayerGradients(t, l, x, 1e-3)
}

func TestResidualShortcutCarriesSignal(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	l := NewResidual(rng, "res", 2)
	// Zero the body's final BN gamma so F(x) == beta == 0; the output must
	// then be ReLU(x).
	for _, p := range l.Params() {
		if p.Name == "res.bn2.gamma" {
			p.W.Fill(0)
		}
	}
	x := tensor.Randn(rng, 1, 2, 4, 4)
	out := l.Forward(x, true)
	for i, v := range x.Data {
		want := v
		if want < 0 {
			want = 0
		}
		if math.Abs(out.Data[i]-want) > 1e-9 {
			t.Fatalf("shortcut broken at %d: out %v, want relu(x) %v", i, out.Data[i], want)
		}
	}
}

func TestSequentialGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	l := NewSequential(
		NewConv2D(rng, "c1", 1, 2, 3),
		NewReLU(),
		NewMaxPool(),
		NewDense(rng, "d", 2*2*2, 3),
	)
	x := tensor.Randn(rng, 1, 1, 4, 4)
	checkLayerGradients(t, l, x, 1e-4)
}

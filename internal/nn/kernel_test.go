package nn

// Tests pinning the im2col + GEMM convolution path against the retained
// naive reference (NaiveForward/NaiveBackward), checking its gradients by
// central differences, and guarding the zero-allocation steady state of
// the whole network.

import (
	"math"
	"math/rand"
	"testing"

	"routerless/internal/tensor"
)

// convParityShapes covers odd/even spatial extents, K ∈ {1,3,5}, InC≠OutC,
// and non-square maps.
var convParityShapes = []struct{ inC, outC, k, h, w int }{
	{1, 1, 1, 2, 3},
	{1, 3, 1, 4, 5},
	{2, 5, 3, 6, 6},
	{3, 2, 3, 5, 8},
	{4, 4, 3, 7, 7},
	{2, 3, 5, 9, 6},
	{1, 2, 5, 4, 4}, // kernel wider than half the map
}

func maxAbsDiffT(a, b *tensor.Tensor) float64 {
	d := 0.0
	for i := range a.Data {
		if v := math.Abs(a.Data[i] - b.Data[i]); v > d {
			d = v
		}
	}
	return d
}

func TestConvForwardParityWithNaive(t *testing.T) {
	for _, sh := range convParityShapes {
		rng := rand.New(rand.NewSource(int64(sh.inC*100 + sh.k)))
		l := NewConv2D(rng, "c", sh.inC, sh.outC, sh.k)
		// Non-zero bias so the bias path is covered too.
		for i := range l.Bias.W.Data {
			l.Bias.W.Data[i] = rng.NormFloat64()
		}
		x := tensor.Randn(rng, 1, sh.inC, sh.h, sh.w)
		fast := l.Forward(x, true)
		naive := l.NaiveForward(x)
		if fast.Size() != naive.Size() {
			t.Fatalf("%+v: size %d vs %d", sh, fast.Size(), naive.Size())
		}
		if d := maxAbsDiffT(fast, naive); d > 1e-9 {
			t.Fatalf("%+v: forward diff %g > 1e-9", sh, d)
		}
	}
}

func TestConvBackwardParityWithNaive(t *testing.T) {
	for _, sh := range convParityShapes {
		rng := rand.New(rand.NewSource(int64(sh.outC*100 + sh.h)))
		l := NewConv2D(rng, "c", sh.inC, sh.outC, sh.k)
		x := tensor.Randn(rng, 1, sh.inC, sh.h, sh.w)
		grad := tensor.Randn(rng, 1, sh.outC, sh.h, sh.w)

		l.Forward(x, true)
		for _, p := range l.Params() {
			p.G.Fill(0)
		}
		dxFast := l.Backward(grad).Clone()
		dwFast := l.Weight.G.Clone()
		dbFast := l.Bias.G.Clone()

		l.NaiveForward(x)
		for _, p := range l.Params() {
			p.G.Fill(0)
		}
		dxNaive := l.NaiveBackward(grad)

		if d := maxAbsDiffT(dxFast, dxNaive); d > 1e-9 {
			t.Fatalf("%+v: dX diff %g > 1e-9", sh, d)
		}
		if d := maxAbsDiffT(dwFast, l.Weight.G); d > 1e-9 {
			t.Fatalf("%+v: dW diff %g > 1e-9", sh, d)
		}
		if d := maxAbsDiffT(dbFast, l.Bias.G); d > 1e-9 {
			t.Fatalf("%+v: dB diff %g > 1e-9", sh, d)
		}
	}
}

// TestConvGradientCheckSmall runs the central-difference check on small
// conv layers through the GEMM path, including K=1 and a non-square map
// (TestConv2DGradients in layer_test.go covers the 3×3 case).
func TestConvGradientCheckSmall(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, sh := range []struct{ inC, outC, k, h, w int }{
		{1, 2, 1, 3, 4},
		{2, 3, 3, 4, 5},
	} {
		l := NewConv2D(rng, "c", sh.inC, sh.outC, sh.k)
		x := tensor.Randn(rng, 1, sh.inC, sh.h, sh.w)
		checkLayerGradients(t, l, x, 1e-4)
	}
}

// TestNetworkSteadyStateAllocs asserts the warmed-up hot path allocates
// nothing: every tensor, im2col matrix, and output slice is arena-owned
// and reused. The bound is exactly 0 allocations per Forward+Backward
// cycle; raise it only with a comment justifying each new allocation.
func TestNetworkSteadyStateAllocs(t *testing.T) {
	net := NewPolicyValueNet(TestConfig(4), 1)
	in := randomHopMatrix(rand.New(rand.NewSource(5)), 4)
	var dl [4][]float64
	for g := range dl {
		dl[g] = make([]float64, 4)
		dl[g][g] = 0.3
	}
	// Warm up: size every scratch buffer in the arena.
	for i := 0; i < 3; i++ {
		net.Forward(in, true)
		net.Backward(dl, 0.2, -0.4)
	}
	const maxAllocs = 0.0
	avg := testing.AllocsPerRun(20, func() {
		net.Forward(in, true)
		net.Backward(dl, 0.2, -0.4)
	})
	if avg > maxAllocs {
		t.Fatalf("steady-state forward+backward allocates %.1f times per run, want <= %v",
			avg, maxAllocs)
	}
}

// TestWorkerLoopSteadyStateAllocs covers the surrounding training-step
// machinery the drl workers run per episode: gradient extraction and
// weight loading must also be allocation-free.
func TestWorkerLoopSteadyStateAllocs(t *testing.T) {
	net := NewPolicyValueNet(TestConfig(4), 1)
	grads := make([]float64, net.NumParams())
	weights := net.GetWeights()
	avg := testing.AllocsPerRun(20, func() {
		net.CopyGradsInto(grads)
		net.SetWeights(weights)
		net.ZeroGrads()
	})
	if avg > 0 {
		t.Fatalf("grad/weight sync allocates %.1f times per run, want 0", avg)
	}
}

func TestScratchFootprintReported(t *testing.T) {
	net := NewPolicyValueNet(TestConfig(4), 1)
	in := randomHopMatrix(rand.New(rand.NewSource(6)), 4)
	net.Forward(in, true)
	if net.Scratch().ScratchFloats() == 0 {
		t.Fatal("arena reports no scratch after a forward pass")
	}
	before := net.Scratch().ScratchFloats()
	net.Forward(in, true)
	if got := net.Scratch().ScratchFloats(); got != before {
		t.Fatalf("scratch grew across identical forwards: %d -> %d", before, got)
	}
}

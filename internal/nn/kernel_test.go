package nn

// Tests pinning the im2col + GEMM convolution path against the retained
// naive reference (NaiveForward/NaiveBackward), checking its gradients by
// central differences, and guarding the zero-allocation steady state of
// the whole network.

import (
	"math"
	"math/rand"
	"testing"

	"routerless/internal/tensor"
)

// convParityShapes covers odd/even spatial extents, K ∈ {1,3,5}, InC≠OutC,
// and non-square maps.
var convParityShapes = []struct{ inC, outC, k, h, w int }{
	{1, 1, 1, 2, 3},
	{1, 3, 1, 4, 5},
	{2, 5, 3, 6, 6},
	{3, 2, 3, 5, 8},
	{4, 4, 3, 7, 7},
	{2, 3, 5, 9, 6},
	{1, 2, 5, 4, 4}, // kernel wider than half the map
}

func maxAbsDiffT(a, b *tensor.Tensor) float64 {
	d := 0.0
	for i := range a.Data {
		if v := math.Abs(a.Data[i] - b.Data[i]); v > d {
			d = v
		}
	}
	return d
}

func TestConvForwardParityWithNaive(t *testing.T) {
	for _, sh := range convParityShapes {
		rng := rand.New(rand.NewSource(int64(sh.inC*100 + sh.k)))
		l := NewConv2D(rng, "c", sh.inC, sh.outC, sh.k)
		// Non-zero bias so the bias path is covered too.
		for i := range l.Bias.W.Data {
			l.Bias.W.Data[i] = rng.NormFloat64()
		}
		x := tensor.Randn(rng, 1, sh.inC, sh.h, sh.w)
		fast := l.Forward(x, true)
		naive := l.NaiveForward(x)
		if fast.Size() != naive.Size() {
			t.Fatalf("%+v: size %d vs %d", sh, fast.Size(), naive.Size())
		}
		if d := maxAbsDiffT(fast, naive); d > 1e-9 {
			t.Fatalf("%+v: forward diff %g > 1e-9", sh, d)
		}
	}
}

func TestConvBackwardParityWithNaive(t *testing.T) {
	for _, sh := range convParityShapes {
		rng := rand.New(rand.NewSource(int64(sh.outC*100 + sh.h)))
		l := NewConv2D(rng, "c", sh.inC, sh.outC, sh.k)
		x := tensor.Randn(rng, 1, sh.inC, sh.h, sh.w)
		grad := tensor.Randn(rng, 1, sh.outC, sh.h, sh.w)

		l.Forward(x, true)
		for _, p := range l.Params() {
			p.G.Fill(0)
		}
		dxFast := l.Backward(grad).Clone()
		dwFast := l.Weight.G.Clone()
		dbFast := l.Bias.G.Clone()

		l.NaiveForward(x)
		for _, p := range l.Params() {
			p.G.Fill(0)
		}
		dxNaive := l.NaiveBackward(grad)

		if d := maxAbsDiffT(dxFast, dxNaive); d > 1e-9 {
			t.Fatalf("%+v: dX diff %g > 1e-9", sh, d)
		}
		if d := maxAbsDiffT(dwFast, l.Weight.G); d > 1e-9 {
			t.Fatalf("%+v: dW diff %g > 1e-9", sh, d)
		}
		if d := maxAbsDiffT(dbFast, l.Bias.G); d > 1e-9 {
			t.Fatalf("%+v: dB diff %g > 1e-9", sh, d)
		}
	}
}

// TestConvGradientCheckSmall runs the central-difference check on small
// conv layers through the GEMM path, including K=1 and a non-square map
// (TestConv2DGradients in layer_test.go covers the 3×3 case).
func TestConvGradientCheckSmall(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, sh := range []struct{ inC, outC, k, h, w int }{
		{1, 2, 1, 3, 4},
		{2, 3, 3, 4, 5},
	} {
		l := NewConv2D(rng, "c", sh.inC, sh.outC, sh.k)
		x := tensor.Randn(rng, 1, sh.inC, sh.h, sh.w)
		checkLayerGradients(t, l, x, 1e-4)
	}
}

// TestTrainBatchGradientCheck validates the batched training path against
// ground truth rather than against the sequential oracle: parameter
// gradients accumulated by one ForwardBatchTrain + BackwardBatch must match
// central differences of a scalar loss over the batch. The loss reads each
// head through an invertible link — Σ c·log p for the softmax groups (so
// dL/dlogit_j = c_j − p_j·Σc), c·atanh(Dir) for the tanh direction head (so
// dL/dz = c at the pre-activation BackwardBatch expects), and c·V for the
// linear value head — making the exact head gradients computable from the
// forward outputs alone. Train-mode BatchNorm only advances its running EMA
// (per-sample batch statistics feed the normalization), so the repeated
// numeric evaluations do not perturb what is being differentiated.
func TestTrainBatchGradientCheck(t *testing.T) {
	net := NewPolicyValueNet(TestConfig(4), 11)
	perturbNet(net, 13)
	rng := rand.New(rand.NewSource(17))
	const nb = 3
	nc := net.Cfg.N
	states := randStates(rng, 4, nb)
	cw := make([]float64, nb*4*nc)
	cd := make([]float64, nb)
	cv := make([]float64, nb)
	for i := range cw {
		cw[i] = rng.NormFloat64()
	}
	for b := 0; b < nb; b++ {
		cd[b], cv[b] = rng.NormFloat64(), rng.NormFloat64()
	}

	outs := make([]Output, nb)
	loss := func() float64 {
		net.ForwardBatchTrain(states, outs)
		s := 0.0
		for b := range outs {
			o := &outs[b]
			for g := 0; g < 4; g++ {
				for i, p := range o.CoordProbs[g] {
					s += cw[b*4*nc+g*nc+i] * math.Log(p)
				}
			}
			s += cd[b]*math.Atanh(o.Dir) + cv[b]*o.Value
		}
		return s
	}

	net.ZeroGrads()
	net.ForwardBatchTrain(states, outs)
	flat := make([]float64, nb*4*nc)
	for b := range outs {
		for g := 0; g < 4; g++ {
			row := cw[b*4*nc+g*nc : b*4*nc+(g+1)*nc]
			tot := 0.0
			for _, c := range row {
				tot += c
			}
			for j, p := range outs[b].CoordProbs[g] {
				flat[b*4*nc+g*nc+j] = row[j] - p*tot
			}
		}
	}
	net.BackwardBatch(flat, cd, cv)
	grads := net.GetGrads()

	weights := net.GetWeights()
	const eps = 1e-5
	for k := 0; k < 60; k++ {
		i := rng.Intn(len(weights))
		orig := weights[i]
		weights[i] = orig + eps
		net.SetWeights(weights)
		lp := loss()
		weights[i] = orig - eps
		net.SetWeights(weights)
		lm := loss()
		weights[i] = orig
		net.SetWeights(weights)
		want := (lp - lm) / (2 * eps)
		if math.Abs(grads[i]-want) > 1e-4*(1+math.Abs(want)) {
			t.Fatalf("weight %d: analytic grad %v, central difference %v", i, grads[i], want)
		}
	}
}

// TestNetworkSteadyStateAllocs asserts the warmed-up hot path allocates
// nothing: every tensor, im2col matrix, and output slice is arena-owned
// and reused. The bound is exactly 0 allocations per Forward+Backward
// cycle; raise it only with a comment justifying each new allocation.
func TestNetworkSteadyStateAllocs(t *testing.T) {
	net := NewPolicyValueNet(TestConfig(4), 1)
	in := randomHopMatrix(rand.New(rand.NewSource(5)), 4)
	var dl [4][]float64
	for g := range dl {
		dl[g] = make([]float64, 4)
		dl[g][g] = 0.3
	}
	// Warm up: size every scratch buffer in the arena.
	for i := 0; i < 3; i++ {
		net.Forward(in, true)
		net.Backward(dl, 0.2, -0.4)
	}
	const maxAllocs = 0.0
	avg := testing.AllocsPerRun(20, func() {
		net.Forward(in, true)
		net.Backward(dl, 0.2, -0.4)
	})
	if avg > maxAllocs {
		t.Fatalf("steady-state forward+backward allocates %.1f times per run, want <= %v",
			avg, maxAllocs)
	}
}

// TestWorkerLoopSteadyStateAllocs covers the surrounding training-step
// machinery the drl workers run per episode: gradient extraction and
// weight loading must also be allocation-free.
func TestWorkerLoopSteadyStateAllocs(t *testing.T) {
	net := NewPolicyValueNet(TestConfig(4), 1)
	grads := make([]float64, net.NumParams())
	weights := net.GetWeights()
	avg := testing.AllocsPerRun(20, func() {
		net.CopyGradsInto(grads)
		net.SetWeights(weights)
		net.ZeroGrads()
	})
	if avg > 0 {
		t.Fatalf("grad/weight sync allocates %.1f times per run, want 0", avg)
	}
}

func TestScratchFootprintReported(t *testing.T) {
	net := NewPolicyValueNet(TestConfig(4), 1)
	in := randomHopMatrix(rand.New(rand.NewSource(6)), 4)
	net.Forward(in, true)
	if net.Scratch().ScratchFloats() == 0 {
		t.Fatal("arena reports no scratch after a forward pass")
	}
	before := net.Scratch().ScratchFloats()
	net.Forward(in, true)
	if got := net.Scratch().ScratchFloats(); got != before {
		t.Fatalf("scratch grew across identical forwards: %d -> %d", before, got)
	}
}

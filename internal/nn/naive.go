package nn

import (
	"fmt"

	"routerless/internal/tensor"
)

// The direct 6-loop convolution the package originally shipped, retained
// as the exported reference implementation: parity tests pin the im2col +
// GEMM fast path against it to 1e-9, and BenchmarkIm2colConv measures the
// speedup over it.

// NaiveForward computes the convolution by direct summation, allocating a
// fresh output tensor. It caches x, so NaiveBackward (or Backward) may
// follow it.
func (c *Conv2D) NaiveForward(x *tensor.Tensor) *tensor.Tensor {
	if len(x.Shape) != 3 || x.Shape[0] != c.InC {
		panic(fmt.Sprintf("nn: Conv2D input shape %v, want (%d,H,W)", x.Shape, c.InC))
	}
	c.x = x
	h, w := x.Shape[1], x.Shape[2]
	pad := (c.K - 1) / 2
	out := tensor.New(c.OutC, h, w)
	for oc := 0; oc < c.OutC; oc++ {
		b := c.Bias.W.Data[oc]
		for oy := 0; oy < h; oy++ {
			for ox := 0; ox < w; ox++ {
				s := b
				for ic := 0; ic < c.InC; ic++ {
					for ky := 0; ky < c.K; ky++ {
						iy := oy + ky - pad
						if iy < 0 || iy >= h {
							continue
						}
						for kx := 0; kx < c.K; kx++ {
							ix := ox + kx - pad
							if ix < 0 || ix >= w {
								continue
							}
							s += c.Weight.W.Data[((oc*c.InC+ic)*c.K+ky)*c.K+kx] *
								x.Data[(ic*h+iy)*w+ix]
						}
					}
				}
				out.Data[(oc*h+oy)*w+ox] = s
			}
		}
	}
	return out
}

// NaiveBackward back-propagates by direct summation from the most recent
// (Naive)Forward, accumulating into Weight.G/Bias.G and returning a fresh
// dX tensor.
func (c *Conv2D) NaiveBackward(grad *tensor.Tensor) *tensor.Tensor {
	x := c.x
	h, w := x.Shape[1], x.Shape[2]
	pad := (c.K - 1) / 2
	dx := x.ZerosLike()
	for oc := 0; oc < c.OutC; oc++ {
		for oy := 0; oy < h; oy++ {
			for ox := 0; ox < w; ox++ {
				g := grad.Data[(oc*h+oy)*w+ox]
				if g == 0 {
					continue
				}
				c.Bias.G.Data[oc] += g
				for ic := 0; ic < c.InC; ic++ {
					for ky := 0; ky < c.K; ky++ {
						iy := oy + ky - pad
						if iy < 0 || iy >= h {
							continue
						}
						for kx := 0; kx < c.K; kx++ {
							ix := ox + kx - pad
							if ix < 0 || ix >= w {
								continue
							}
							wi := ((oc*c.InC+ic)*c.K+ky)*c.K + kx
							xi := (ic*h+iy)*w + ix
							c.Weight.G.Data[wi] += g * x.Data[xi]
							dx.Data[xi] += g * c.Weight.W.Data[wi]
						}
					}
				}
			}
		}
	}
	return dx
}

package nn

import (
	"math"
	"math/rand"
	"strconv"
	"testing"
)

// assertOutputsClose is the tolerance twin of assertOutputsEqual for the
// f32 inference path: every field must match the f64 reference within tol
// relative (absolute below magnitude 1).
func assertOutputsClose(t *testing.T, tag string, got, want *Output, tol float64) {
	t.Helper()
	close := func(name string, g, w float64) {
		t.Helper()
		if diff := math.Abs(g - w); diff > tol*math.Max(1, math.Abs(w)) {
			t.Fatalf("%s: %s: got %v want %v (diff %v)", tag, name, g, w, diff)
		}
	}
	for g := 0; g < 4; g++ {
		if len(got.CoordProbs[g]) != len(want.CoordProbs[g]) {
			t.Fatalf("%s: prob group %d length %d want %d",
				tag, g, len(got.CoordProbs[g]), len(want.CoordProbs[g]))
		}
		for i := range want.CoordProbs[g] {
			close("logit["+strconv.Itoa(g)+"]["+strconv.Itoa(i)+"]",
				got.CoordLogits[g][i], want.CoordLogits[g][i])
			close("prob["+strconv.Itoa(g)+"]["+strconv.Itoa(i)+"]",
				got.CoordProbs[g][i], want.CoordProbs[g][i])
		}
	}
	close("dirPre", got.DirPre, want.DirPre)
	close("dir", got.Dir, want.Dir)
	close("value", got.Value, want.Value)
}

// The f32 parity contract: on randomized weights, statistics and states,
// the quantized inference engine tracks the f64 net within 1e-4 relative on
// priors, direction and value, across every layer type the architecture
// uses and across batch sizes including B=1, an odd size that exercises the
// depth-block tile remainder, and batches beyond the broker's default.
func TestInferNetToleranceParity(t *testing.T) {
	for _, n := range []int{4, 5} {
		t.Run(strconv.Itoa(n)+"x"+strconv.Itoa(n), func(t *testing.T) {
			net := NewPolicyValueNet(TestConfig(n), 3)
			perturbNet(net, 17)
			inf := NewInferNet(net)
			rng := rand.New(rand.NewSource(23))
			for _, bs := range []int{1, 7, 8, 32} {
				states := randStates(rng, n, bs)
				want := make([]Output, bs)
				net.ForwardBatch(states, want)
				got := make([]Output, bs)
				inf.ForwardBatch(states, got)
				for i := range got {
					assertOutputsClose(t, "B="+strconv.Itoa(bs)+" sample "+strconv.Itoa(i),
						&got[i], &want[i], 1e-4)
				}
			}
		})
	}
}

// Depth-blocking invariance: shrinking the tile budget (down to one sample
// per tile) and the conv column budget must reproduce the untiled f32
// output bit-for-bit — the scheduling is a pure performance knob. Exact
// equality is intentional (assertOutputsEqual, not the tolerance helper):
// every f32 kernel's reduction order is independent of the batch/column
// count.
func TestInferNetTilingInvariance(t *testing.T) {
	net := NewPolicyValueNet(TestConfig(4), 5)
	perturbNet(net, 29)
	inf := NewInferNet(net)
	rng := rand.New(rand.NewSource(31))
	states := randStates(rng, 4, 9)

	defer func(old int) { inferTileBudget = old }(inferTileBudget)
	inferTileBudget = 1 << 30 // one tile for the whole batch
	if got := inf.TileSize(len(states)); got != len(states) {
		t.Fatalf("untiled TileSize = %d, want %d", got, len(states))
	}
	want := make([]Output, len(states))
	inf.ForwardBatch(states, want)

	defer func(old int) { batchColsBudget = old }(batchColsBudget)
	for _, budget := range []int{1, inf.perSample, 3 * inf.perSample} { // tile = 1, 1, 3
		inferTileBudget = budget
		for _, cols := range []int{1, 4096, 1 << 19} { // conv chunk = 1, small, default
			batchColsBudget = cols
			got := make([]Output, len(states))
			inf.ForwardBatch(states, got)
			for i := range got {
				assertOutputsEqual(t,
					"tileBudget "+strconv.Itoa(budget)+" colsBudget "+strconv.Itoa(cols)+
						" sample "+strconv.Itoa(i),
					&got[i], &want[i])
			}
		}
	}
}

// The 0-alloc satellite, f32 edition: after Warm, steady-state batched f32
// inference allocates nothing — including smaller batches reusing the same
// scratch and multi-tile schedules.
func TestInferForwardBatchZeroAllocWarm(t *testing.T) {
	net := NewPolicyValueNet(TestConfig(4), 9)
	perturbNet(net, 41)
	inf := NewInferNet(net)
	rng := rand.New(rand.NewSource(43))
	states := randStates(rng, 4, 8)
	outs := make([]Output, 8)
	inf.Warm(8)
	inf.ForwardBatch(states, outs) // populate the output slices too
	if allocs := testing.AllocsPerRun(50, func() {
		inf.ForwardBatch(states, outs)
	}); allocs != 0 {
		t.Fatalf("warmed f32 ForwardBatch allocates %.0f times per batch, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(50, func() {
		inf.ForwardBatch(states[:3], outs[:3])
	}); allocs != 0 {
		t.Fatalf("warmed f32 ForwardBatch(B=3) allocates %.0f times per batch, want 0", allocs)
	}
	// Re-quantizing after a weight update is also allocation-free, and a
	// forced multi-tile schedule reuses the single-tile scratch.
	if allocs := testing.AllocsPerRun(10, func() {
		inf.Sync()
	}); allocs != 0 {
		t.Fatalf("warmed Sync allocates %.0f times, want 0", allocs)
	}
	defer func(old int) { inferTileBudget = old }(inferTileBudget)
	inferTileBudget = 2 * inf.perSample
	if allocs := testing.AllocsPerRun(50, func() {
		inf.ForwardBatch(states, outs)
	}); allocs != 0 {
		t.Fatalf("warmed tiled f32 ForwardBatch allocates %.0f times per batch, want 0", allocs)
	}
}

// Sync is the only channel from the f64 net to the f32 shadow: after the
// source's weights and BatchNorm statistics move, stale f32 outputs must
// keep reflecting the old parameters until Sync re-quantizes, after which
// parity with the updated f64 net holds again.
func TestInferNetSyncTracksSource(t *testing.T) {
	net := NewPolicyValueNet(TestConfig(4), 11)
	perturbNet(net, 47)
	inf := NewInferNet(net)
	rng := rand.New(rand.NewSource(53))
	states := randStates(rng, 4, 4)

	stale := make([]Output, len(states))
	inf.ForwardBatch(states, stale)

	perturbNet(net, 59) // move weights and running statistics

	got := make([]Output, len(states))
	inf.ForwardBatch(states, got)
	for i := range got {
		// Still the old parameters: bit-identical to the pre-update outputs.
		assertOutputsEqual(t, "pre-sync sample "+strconv.Itoa(i), &got[i], &stale[i])
	}

	inf.Sync()
	want := make([]Output, len(states))
	net.ForwardBatch(states, want)
	inf.ForwardBatch(states, got)
	for i := range got {
		assertOutputsClose(t, "post-sync sample "+strconv.Itoa(i), &got[i], &want[i], 1e-4)
	}
}

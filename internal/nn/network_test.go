package nn

import (
	"math"
	"math/rand"
	"testing"
)

func randomHopMatrix(rng *rand.Rand, n int) []float64 {
	side := n * n
	m := make([]float64, side*side)
	for i := range m {
		m[i] = float64(rng.Intn(5 * n))
	}
	return m
}

func TestNetworkOutputShapes(t *testing.T) {
	net := NewPolicyValueNet(TestConfig(4), 1)
	out := net.Forward(randomHopMatrix(rand.New(rand.NewSource(2)), 4), false)
	for g := 0; g < 4; g++ {
		if len(out.CoordProbs[g]) != 4 {
			t.Fatalf("group %d length %d", g, len(out.CoordProbs[g]))
		}
		sum := 0.0
		for _, p := range out.CoordProbs[g] {
			if p < 0 || p > 1 {
				t.Fatalf("prob out of range: %v", p)
			}
			sum += p
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("group %d probs sum %v", g, sum)
		}
	}
	if out.Dir <= -1 || out.Dir >= 1 {
		t.Fatalf("dir = %v, want in (-1,1)", out.Dir)
	}
	if math.IsNaN(out.Value) {
		t.Fatal("NaN value")
	}
}

func TestNetworkRejectsBadInput(t *testing.T) {
	net := NewPolicyValueNet(TestConfig(4), 1)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on wrong input size")
		}
	}()
	net.Forward(make([]float64, 10), false)
}

func TestNetworkDeterministicPerSeed(t *testing.T) {
	in := randomHopMatrix(rand.New(rand.NewSource(3)), 4)
	a := NewPolicyValueNet(TestConfig(4), 7).Forward(in, false)
	b := NewPolicyValueNet(TestConfig(4), 7).Forward(in, false)
	if a.Value != b.Value || a.Dir != b.Dir {
		t.Fatal("same seed, different outputs")
	}
	c := NewPolicyValueNet(TestConfig(4), 8).Forward(in, false)
	if a.Value == c.Value {
		t.Fatal("different seeds produced identical value (suspicious)")
	}
}

func TestWeightsRoundTrip(t *testing.T) {
	a := NewPolicyValueNet(TestConfig(4), 1)
	b := NewPolicyValueNet(TestConfig(4), 2)
	in := randomHopMatrix(rand.New(rand.NewSource(4)), 4)
	if a.Forward(in, false).Value == b.Forward(in, false).Value {
		t.Fatal("nets should differ before sync")
	}
	b.SetWeights(a.GetWeights())
	// Running stats are not weights; use train=false after syncing BN run
	// stats too... they start identical (fresh nets), so eval matches.
	av := a.Forward(in, false)
	bv := b.Forward(in, false)
	if av.Value != bv.Value || av.Dir != bv.Dir {
		t.Fatalf("weight sync failed: %v vs %v", av.Value, bv.Value)
	}
	if a.NumParams() != len(a.GetWeights()) {
		t.Fatalf("NumParams %d != flat weights %d", a.NumParams(), len(a.GetWeights()))
	}
}

// End-to-end gradient check through the full two-headed network: loss =
// sum of logits*w + dirPre*wd + value*wv, differentiated w.r.t. a few
// parameters.
func TestNetworkBackwardGradientCheck(t *testing.T) {
	net := NewPolicyValueNet(Config{N: 3, BaseChannels: 1, Pools: 1}, 5)
	rng := rand.New(rand.NewSource(6))
	in := randomHopMatrix(rng, 3)

	var lw [4][]float64
	for g := range lw {
		lw[g] = make([]float64, 3)
		for i := range lw[g] {
			lw[g][i] = rng.NormFloat64()
		}
	}
	wd, wv := rng.NormFloat64(), rng.NormFloat64()

	loss := func() float64 {
		o := net.Forward(in, true)
		s := 0.0
		for g := 0; g < 4; g++ {
			for i, w := range lw[g] {
				s += o.CoordLogits[g][i] * w
			}
		}
		return s + o.DirPre*wd + o.Value*wv
	}

	net.ZeroGrads()
	net.Forward(in, true)
	net.Backward(lw, wd, wv)

	checked := 0
	for _, p := range net.Params() {
		if p.W.Size() == 0 {
			continue
		}
		i := rng.Intn(p.W.Size())
		const h = 1e-5
		orig := p.W.Data[i]
		p.W.Data[i] = orig + h
		up := loss()
		p.W.Data[i] = orig - h
		down := loss()
		p.W.Data[i] = orig
		want := (up - down) / (2 * h)
		got := p.G.Data[i]
		if math.Abs(got-want) > 2e-3*(1+math.Abs(want)) {
			t.Fatalf("param %s grad[%d]: analytic %v numeric %v", p.Name, i, got, want)
		}
		checked++
	}
	if checked < 10 {
		t.Fatalf("only %d params checked", checked)
	}
}

// Policy-gradient sanity: pushing the gradient of -log π(a) for a fixed
// action must increase that action's probability.
func TestPolicyGradientIncreasesActionProbability(t *testing.T) {
	net := NewPolicyValueNet(TestConfig(4), 9)
	in := randomHopMatrix(rand.New(rand.NewSource(10)), 4)
	action := [4]int{1, 2, 3, 0}

	prob := func() float64 {
		o := net.Forward(in, false)
		p := 1.0
		for g := 0; g < 4; g++ {
			p *= o.CoordProbs[g][action[g]]
		}
		return p
	}
	before := prob()
	sgd := SGD{LR: 0.05}
	for step := 0; step < 20; step++ {
		o := net.Forward(in, true)
		var dLogits [4][]float64
		for g := 0; g < 4; g++ {
			dLogits[g] = make([]float64, 4)
			for i := 0; i < 4; i++ {
				// d(-log p_a)/d logit_i = p_i - 1{i==a}
				dLogits[g][i] = o.CoordProbs[g][i]
				if i == action[g] {
					dLogits[g][i] -= 1
				}
			}
		}
		net.ZeroGrads()
		net.Backward(dLogits, 0, 0)
		sgd.Step(net)
	}
	after := prob()
	if after <= before {
		t.Fatalf("action probability did not increase: %v -> %v", before, after)
	}
}

// Value-head regression sanity: training V toward a target reduces error.
func TestValueHeadLearnsTarget(t *testing.T) {
	net := NewPolicyValueNet(TestConfig(4), 11)
	in := randomHopMatrix(rand.New(rand.NewSource(12)), 4)
	target := -2.5
	sgd := SGD{LR: 0.02}
	var zero [4][]float64
	for g := range zero {
		zero[g] = make([]float64, 4)
	}
	first := math.Abs(net.Forward(in, false).Value - target)
	for step := 0; step < 300; step++ {
		o := net.Forward(in, true)
		// loss = (target - V)^2, dL/dV = 2(V - target)
		net.ZeroGrads()
		net.Backward(zero, 0, 2*(o.Value-target))
		sgd.Step(net)
	}
	last := math.Abs(net.Forward(in, false).Value - target)
	if last >= first {
		t.Fatalf("value error did not shrink: %v -> %v", first, last)
	}
	if last > 0.5 {
		t.Fatalf("value error still large: %v", last)
	}
}

func TestApplyGradsMatchesSGDStep(t *testing.T) {
	a := NewPolicyValueNet(TestConfig(4), 20)
	b := NewPolicyValueNet(TestConfig(4), 21)
	b.SetWeights(a.GetWeights())
	in := randomHopMatrix(rand.New(rand.NewSource(22)), 4)
	var dl [4][]float64
	for g := range dl {
		dl[g] = []float64{0.1, -0.2, 0.3, 0}
	}
	// a: local SGD step.
	a.ZeroGrads()
	a.Forward(in, true)
	a.Backward(dl, 0.5, -1)
	grads := a.GetGrads()
	SGD{LR: 0.01}.Step(a)
	// b: apply the extracted flat gradients (the parameter-server path).
	b.ApplyGrads(grads, 0.01, 0)
	wa, wb := a.GetWeights(), b.GetWeights()
	for i := range wa {
		if math.Abs(wa[i]-wb[i]) > 1e-12 {
			t.Fatalf("weight %d differs: %v vs %v", i, wa[i], wb[i])
		}
	}
}

func TestPoolsClampedForSmallInputs(t *testing.T) {
	// N=2 -> input 4x4; three pools would erase it. Must not panic.
	net := NewPolicyValueNet(Config{N: 2, BaseChannels: 1, Pools: 3}, 1)
	out := net.Forward(randomHopMatrix(rand.New(rand.NewSource(1)), 2), false)
	if len(out.CoordProbs[0]) != 2 {
		t.Fatalf("bad output for N=2")
	}
}

package nn

import (
	"fmt"
	"math"

	"routerless/internal/tensor"
)

// Batched inference path. Spatial activations use a channel-major batched
// layout (C, B, H, W): all B samples of a channel are contiguous, so a
// batched convolution is one wide GEMM of the (OutC, InC·K·K) weight matrix
// against the (InC·K·K, B·H·W) column matrix from tensor.Im2colBatch, and
// per-channel layers (BatchNorm, bias add) sweep one contiguous row per
// channel. Fully connected head layers repack to sample-major (B, features)
// rows and run tensor.MatVecBatch.
//
// The path is inference-only: BatchNorm reads running statistics (so
// samples are independent), and no training caches (ReLU masks, BatchNorm
// x̂, MaxPool argmax, im2col columns for Backward) are written — that is a
// real fraction of the per-sample Forward cost. Every per-sample result is
// bit-identical to Forward on that sample: the conv GEMM's per-element
// reduction order depends only on the k index (never the column count),
// MatVecBatch replicates GemmNN's n==1 dot-product order, and the
// remaining layers are elementwise with unchanged expressions. The legacy
// Forward therefore stays the determinism oracle for this path.
//
// All batch scratch comes from the network's Arena through separate
// per-layer handles (bout/bcols/bsum …), so a warmed-up ForwardBatch
// allocates nothing and interleaving with training Forward/Backward on the
// same net never aliases buffers.

// batchColsBudget bounds, in float64s, the im2col column panel one batched
// convolution materializes at a time (4 MiB by default). Wide stem
// convolutions split the batch into chunks under this budget so the GEMM
// operands stay cache-resident instead of scaling the working set by B; a
// package variable so tests can force the chunked path.
var batchColsBudget = 1 << 19

// batchLayer is implemented by every layer that supports the batched
// inference layout.
type batchLayer interface {
	ForwardBatch(x *tensor.Tensor) *tensor.Tensor
}

// ForwardBatch applies the chain in the batched layout.
func (s *Sequential) ForwardBatch(x *tensor.Tensor) *tensor.Tensor {
	for _, l := range s.Layers {
		bl, ok := l.(batchLayer)
		if !ok {
			panic(fmt.Sprintf("nn: layer %T has no batched forward", l))
		}
		x = bl.ForwardBatch(x)
	}
	return x
}

// ForwardBatch implements batchLayer: x is (InC, B, H, W), the result
// (OutC, B, H, W). The batch is processed in chunks whose column matrix
// fits batchColsBudget; a full-batch chunk writes its GEMM output directly
// into the result tensor, partial chunks go through a scatter buffer.
func (c *Conv2D) ForwardBatch(x *tensor.Tensor) *tensor.Tensor {
	if len(x.Shape) != 4 || x.Shape[0] != c.InC {
		panic(fmt.Sprintf("nn: Conv2D batched input shape %v, want (%d,B,H,W)", x.Shape, c.InC))
	}
	nb, h, w := x.Shape[1], x.Shape[2], x.Shape[3]
	hw := h * w
	ickk := c.InC * c.K * c.K
	a := ensureArena(&c.arena)
	out := a.tensorFor(&c.bout, c.OutC, nb, h, w)
	chunk := nb
	if m := batchColsBudget / (ickk * hw); m < chunk {
		chunk = max(1, m)
	}
	cols := a.slice(&c.bcols, ickk*chunk*hw)
	var tmp []float64
	if chunk < nb {
		tmp = a.slice(&c.btmp, c.OutC*chunk*hw)
	}
	for s0 := 0; s0 < nb; s0 += chunk {
		cb := min(chunk, nb-s0)
		tensor.Im2colBatch(x.Data, c.InC, nb, s0, cb, h, w, c.K, (c.K-1)/2, cols)
		if cb == nb {
			tensor.GemmNN(c.OutC, cb*hw, ickk, c.Weight.W.Data, cols, out.Data, false)
		} else {
			tensor.GemmNN(c.OutC, cb*hw, ickk, c.Weight.W.Data, cols, tmp, false)
			for oc := 0; oc < c.OutC; oc++ {
				copy(out.Data[(oc*nb+s0)*hw:(oc*nb+s0+cb)*hw], tmp[oc*cb*hw:(oc+1)*cb*hw])
			}
		}
	}
	for oc := 0; oc < c.OutC; oc++ {
		b := c.Bias.W.Data[oc]
		if b == 0 {
			continue
		}
		row := out.Data[oc*nb*hw : (oc+1)*nb*hw]
		for i := range row {
			row[i] += b
		}
	}
	return out
}

// ForwardBatch implements batchLayer in evaluation mode: each channel is an
// affine transform by the running statistics, applied over one contiguous
// (B·H·W) row. The per-element expression matches Forward's eval path
// exactly; no x̂ cache is written.
func (b *BatchNorm) ForwardBatch(x *tensor.Tensor) *tensor.Tensor {
	if len(x.Shape) != 4 || x.Shape[0] != b.C {
		panic(fmt.Sprintf("nn: BatchNorm batched input %v, want (%d,B,H,W)", x.Shape, b.C))
	}
	n := x.Shape[1] * x.Shape[2] * x.Shape[3]
	out := ensureArena(&b.arena).tensorFor(&b.bout, x.Shape...)
	for c := 0; c < b.C; c++ {
		mean := b.RunMean[c]
		inv := 1 / math.Sqrt(b.RunVar[c]+b.Eps)
		g, beta := b.Gamma.W.Data[c], b.Beta.W.Data[c]
		src := x.Data[c*n : (c+1)*n]
		dst := out.Data[c*n : (c+1)*n]
		for i, v := range src {
			dst[i] = g*((v-mean)*inv) + beta
		}
	}
	return out
}

// ForwardBatch implements batchLayer; shape-generic and elementwise, with
// no backward mask written.
func (r *ReLU) ForwardBatch(x *tensor.Tensor) *tensor.Tensor {
	out := ensureArena(&r.arena).tensorFor(&r.bout, x.Shape...)
	for i, v := range x.Data {
		if v <= 0 {
			out.Data[i] = 0
		} else {
			out.Data[i] = v
		}
	}
	return out
}

// ForwardBatch implements batchLayer: 2×2/stride-2 pooling per (channel,
// sample) plane, with no argmax recorded.
func (p *MaxPool) ForwardBatch(x *tensor.Tensor) *tensor.Tensor {
	if len(x.Shape) != 4 {
		panic(fmt.Sprintf("nn: MaxPool batched input %v, want (C,B,H,W)", x.Shape))
	}
	c, nb, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	oh, ow := h/2, w/2
	if oh < 1 || ow < 1 {
		panic(fmt.Sprintf("nn: MaxPool input %v too small", x.Shape))
	}
	out := ensureArena(&p.arena).tensorFor(&p.bout, c, nb, oh, ow)
	for plane := 0; plane < c*nb; plane++ {
		src := x.Data[plane*h*w : (plane+1)*h*w]
		dst := out.Data[plane*oh*ow : (plane+1)*oh*ow]
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				best := src[2*oy*w+2*ox]
				for dy := 0; dy < 2; dy++ {
					for dx := 0; dx < 2; dx++ {
						if v := src[(2*oy+dy)*w+2*ox+dx]; v > best {
							best = v
						}
					}
				}
				dst[oy*ow+ox] = best
			}
		}
	}
	return out
}

// ForwardBatch implements batchLayer: out = ReLU(F(x) + x), elementwise as
// in the per-sample path.
func (r *Residual) ForwardBatch(x *tensor.Tensor) *tensor.Tensor {
	f := r.Body.ForwardBatch(x)
	sum := ensureArena(&r.arena).tensorFor(&r.bsum, x.Shape...)
	copy(sum.Data, f.Data)
	sum.AddInPlace(x)
	return r.relu.ForwardBatch(sum)
}

// ForwardBatchRows evaluates the FC layer on sample-major rows: x is
// (B, In), the result (B, Out). It routes through tensor.MatVecBatch so
// each weight row streams once across the batch with the per-sample
// dot-product order unchanged.
func (d *Dense) ForwardBatchRows(x *tensor.Tensor) *tensor.Tensor {
	nb := x.Shape[0]
	if x.Size() != nb*d.In {
		panic(fmt.Sprintf("nn: Dense batched input %v, want (%d,%d)", x.Shape, nb, d.In))
	}
	y := ensureArena(&d.arena).tensorFor(&d.bout, nb, d.Out)
	tensor.MatVecBatch(d.Out, d.In, nb, d.Weight.W.Data, x.Data, y.Data)
	for bi := 0; bi < nb; bi++ {
		row := y.Data[bi*d.Out : (bi+1)*d.Out]
		for o := range row {
			row[o] += d.Bias.W.Data[o]
		}
	}
	return y
}

// packSamples transposes a channel-major (C, B, H, W) activation into
// sample-major (B, C·H·W) rows — each row is exactly the flattening
// Dense.Forward sees per sample — with one contiguous copy per (channel,
// sample) plane.
func packSamples(a *Arena, p **tensor.Tensor, src *tensor.Tensor) *tensor.Tensor {
	c, nb := src.Shape[0], src.Shape[1]
	hw := src.Shape[2] * src.Shape[3]
	dst := a.tensorFor(p, nb, c*hw)
	for ci := 0; ci < c; ci++ {
		for bi := 0; bi < nb; bi++ {
			copy(dst.Data[bi*c*hw+ci*hw:bi*c*hw+(ci+1)*hw],
				src.Data[(ci*nb+bi)*hw:(ci*nb+bi+1)*hw])
		}
	}
	return dst
}

// ForwardBatch evaluates len(states) hop-count matrices in inference mode,
// filling outs[i] with the result for states[i]; outs must have at least
// len(states) elements. Per-sample results are bit-identical to
// Forward(states[i], false) — see the package comment in this file for why
// that holds. Output slices already present in outs are reused, so after
// WarmBatch a steady-state call allocates nothing. Unlike Forward, the
// filled Outputs do not alias network buffers and stay valid until the
// caller reuses them.
func (n *PolicyValueNet) ForwardBatch(states [][]float64, outs []Output) {
	nb := len(states)
	if nb == 0 {
		return
	}
	if len(outs) < nb {
		panic(fmt.Sprintf("nn: ForwardBatch got %d outputs for %d states", len(outs), nb))
	}
	side := n.Cfg.N * n.Cfg.N
	x := n.arena.tensorFor(&n.bin, 1, nb, side, side)
	norm := 5 * float64(n.Cfg.N)
	for bi, st := range states {
		if len(st) != side*side {
			panic(fmt.Sprintf("nn: input length %d, want %d", len(st), side*side))
		}
		dst := x.Data[bi*side*side : (bi+1)*side*side]
		for i, v := range st {
			dst[i] = v / norm
		}
	}
	tb := n.trunk.ForwardBatch(x)

	// Policy coordinates.
	pc := n.pConv.ForwardBatch(tb)
	h1 := n.pReLU.ForwardBatch(n.pFC1.ForwardBatchRows(packSamples(n.arena, &n.bpX, pc)))
	logits := n.pFC2.ForwardBatchRows(h1)
	// Direction.
	dpre := n.dFC.ForwardBatchRows(packSamples(n.arena, &n.bdX, n.dConv.ForwardBatch(tb)))
	// Value.
	val := n.vFC.ForwardBatchRows(packSamples(n.arena, &n.bvX, n.vConv.ForwardBatch(tb)))

	nc := n.Cfg.N
	for bi := 0; bi < nb; bi++ {
		out := &outs[bi]
		lrow := logits.Data[bi*4*nc : (bi+1)*4*nc]
		for g := 0; g < 4; g++ {
			if cap(out.CoordLogits[g]) < nc {
				out.CoordLogits[g] = make([]float64, nc)
				out.CoordProbs[g] = make([]float64, nc)
			}
			out.CoordLogits[g] = out.CoordLogits[g][:nc]
			out.CoordProbs[g] = out.CoordProbs[g][:nc]
			copy(out.CoordLogits[g], lrow[g*nc:(g+1)*nc])
			tensor.SoftmaxInto(out.CoordProbs[g], out.CoordLogits[g])
		}
		out.DirPre = dpre.Data[bi]
		out.Dir = math.Tanh(out.DirPre)
		out.Value = val.Data[bi]
	}
}

// WarmBatch runs one throwaway batched forward of b blank states so the
// arena's batch scratch is sized for batches up to b; subsequent
// ForwardBatch calls of any size ≤ b are allocation-free.
func (n *PolicyValueNet) WarmBatch(b int) {
	if b < 1 {
		return
	}
	side := n.Cfg.N * n.Cfg.N
	states := make([][]float64, b)
	for i := range states {
		states[i] = make([]float64, side*side)
	}
	n.ForwardBatch(states, make([]Output, b))
}

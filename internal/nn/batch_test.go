package nn

import (
	"math/rand"
	"strconv"
	"testing"
)

// perturbNet gives weights and BatchNorm running statistics nontrivial
// values so the parity checks exercise real affine transforms, not the
// mean-0/var-1 initialization.
func perturbNet(net *PolicyValueNet, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	w := net.GetWeights()
	for i := range w {
		w[i] += 0.05 * rng.NormFloat64()
	}
	net.SetWeights(w)
	st := make([]float64, net.NumStats())
	net.CopyStatsInto(st)
	for _, bn := range net.bns {
		for c := range bn.RunMean {
			bn.RunMean[c] = 0.3 * rng.NormFloat64()
			bn.RunVar[c] = 0.5 + rng.Float64()
		}
	}
	if len(st) == 0 {
		panic("test net has no BatchNorm stats")
	}
}

func randStates(rng *rand.Rand, n, count int) [][]float64 {
	states := make([][]float64, count)
	for i := range states {
		s := make([]float64, n*n*n*n)
		for j := range s {
			s[j] = float64(rng.Intn(5 * n)) // hop-matrix-like magnitudes
		}
		states[i] = s
	}
	return states
}

func assertOutputsEqual(t *testing.T, tag string, got, want *Output) {
	t.Helper()
	for g := 0; g < 4; g++ {
		for i := range want.CoordLogits[g] {
			if got.CoordLogits[g][i] != want.CoordLogits[g][i] {
				t.Fatalf("%s: coord logit group %d idx %d: got %v want %v",
					tag, g, i, got.CoordLogits[g][i], want.CoordLogits[g][i])
			}
			if got.CoordProbs[g][i] != want.CoordProbs[g][i] {
				t.Fatalf("%s: coord prob group %d idx %d: got %v want %v",
					tag, g, i, got.CoordProbs[g][i], want.CoordProbs[g][i])
			}
		}
	}
	if got.DirPre != want.DirPre || got.Dir != want.Dir {
		t.Fatalf("%s: dir got (%v,%v) want (%v,%v)", tag, got.DirPre, got.Dir, want.DirPre, want.Dir)
	}
	if got.Value != want.Value {
		t.Fatalf("%s: value got %v want %v", tag, got.Value, want.Value)
	}
}

func copyOutput(out *Output) *Output {
	cp := &Output{DirPre: out.DirPre, Dir: out.Dir, Value: out.Value}
	for g := 0; g < 4; g++ {
		cp.CoordLogits[g] = append([]float64(nil), out.CoordLogits[g]...)
		cp.CoordProbs[g] = append([]float64(nil), out.CoordProbs[g]...)
	}
	return cp
}

// The byte-identity satellite: ForwardBatch over B stacked states must
// reproduce B independent Forward calls bit-for-bit — policy logits and
// softmax groups, pre-tanh direction, and value — across batch sizes,
// including B=1 and batches larger than the conv chunk budget.
func TestForwardBatchMatchesForwardByteIdentical(t *testing.T) {
	for _, n := range []int{4, 5} {
		t.Run(strconv.Itoa(n)+"x"+strconv.Itoa(n), func(t *testing.T) {
			net := NewPolicyValueNet(TestConfig(n), 3)
			perturbNet(net, 17)
			rng := rand.New(rand.NewSource(23))
			for _, bs := range []int{1, 3, 8} {
				states := randStates(rng, n, bs)
				want := make([]*Output, bs)
				for i, s := range states {
					want[i] = copyOutput(net.Forward(s, false))
				}
				outs := make([]Output, bs)
				net.ForwardBatch(states, outs)
				for i := range outs {
					assertOutputsEqual(t, "B="+strconv.Itoa(bs)+" sample "+strconv.Itoa(i),
						&outs[i], want[i])
				}
			}
		})
	}
}

// Forcing a tiny im2col budget exercises the chunked conv path (partial
// chunks routed through the scatter buffer); results must not change.
func TestForwardBatchChunkedConvByteIdentical(t *testing.T) {
	net := NewPolicyValueNet(TestConfig(4), 5)
	perturbNet(net, 29)
	rng := rand.New(rand.NewSource(31))
	states := randStates(rng, 4, 5)
	want := make([]*Output, len(states))
	for i, s := range states {
		want[i] = copyOutput(net.Forward(s, false))
	}
	defer func(old int) { batchColsBudget = old }(batchColsBudget)
	for _, budget := range []int{1, 4096, 20000} { // chunk = 1, small, mixed
		batchColsBudget = budget
		outs := make([]Output, len(states))
		net.ForwardBatch(states, outs)
		for i := range outs {
			assertOutputsEqual(t, "budget "+strconv.Itoa(budget)+" sample "+strconv.Itoa(i),
				&outs[i], want[i])
		}
	}
}

// Interleaving batched inference with a training step must not corrupt
// either path: the batch scratch is disjoint from the training caches.
func TestForwardBatchDoesNotDisturbTraining(t *testing.T) {
	cfg := TestConfig(4)
	ref := NewPolicyValueNet(cfg, 7)
	mix := NewPolicyValueNet(cfg, 7)
	rng := rand.New(rand.NewSource(37))
	states := randStates(rng, 4, 4)
	var dl [4][]float64
	for g := range dl {
		dl[g] = make([]float64, cfg.N)
		dl[g][g%cfg.N] = 0.5
	}
	outs := make([]Output, len(states))
	for step := 0; step < 3; step++ {
		// ref: pure training. mix: batched inference wedged mid-cycle.
		ref.Forward(states[0], true)
		mix.Forward(states[0], true)
		mix.ForwardBatch(states, outs)
		ref.Backward(dl, 0.1, -0.2)
		mix.Backward(dl, 0.1, -0.2)
		refG := ref.GetGrads()
		mixG := mix.GetGrads()
		for i := range refG {
			if refG[i] != mixG[i] {
				t.Fatalf("step %d grad %d diverged: %v vs %v", step, i, refG[i], mixG[i])
			}
		}
		SGD{LR: 0.01}.Step(ref)
		SGD{LR: 0.01}.Step(mix)
	}
}

// The 0-alloc satellite: a warmed-up batched forward allocates nothing.
func TestForwardBatchZeroAllocWarm(t *testing.T) {
	net := NewPolicyValueNet(TestConfig(4), 9)
	perturbNet(net, 41)
	rng := rand.New(rand.NewSource(43))
	states := randStates(rng, 4, 8)
	outs := make([]Output, 8)
	net.WarmBatch(8)
	net.ForwardBatch(states, outs) // populate the output slices too
	if allocs := testing.AllocsPerRun(50, func() {
		net.ForwardBatch(states, outs)
	}); allocs != 0 {
		t.Fatalf("warmed ForwardBatch allocates %.0f times per batch, want 0", allocs)
	}
	// Smaller batches reuse the same warmed scratch.
	if allocs := testing.AllocsPerRun(50, func() {
		net.ForwardBatch(states[:3], outs[:3])
	}); allocs != 0 {
		t.Fatalf("warmed ForwardBatch(B=3) allocates %.0f times per batch, want 0", allocs)
	}
}

// Running-statistics round trip: the flat vector restores eval-mode
// behavior exactly on a fresh net.
func TestStatsRoundTripReproducesEval(t *testing.T) {
	cfg := TestConfig(4)
	src := NewPolicyValueNet(cfg, 11)
	perturbNet(src, 47)
	dst := NewPolicyValueNet(cfg, 999) // different init everywhere
	dst.SetWeights(src.GetWeights())
	st := make([]float64, src.NumStats())
	src.CopyStatsInto(st)
	dst.SetStats(st)
	rng := rand.New(rand.NewSource(53))
	for _, s := range randStates(rng, 4, 3) {
		want := copyOutput(src.Forward(s, false))
		got := dst.Forward(s, false)
		assertOutputsEqual(t, "stats round trip", got, want)
	}
}

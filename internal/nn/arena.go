package nn

import (
	"fmt"

	"routerless/internal/tensor"
)

// Arena owns a network's scratch memory: im2col column matrices, layer
// outputs, and gradient tensors. Buffers are handed out through layer-held
// handles and reused across steps, so a warmed-up Forward/Backward cycle
// performs no heap allocation. An arena (and therefore a network and its
// layers) is NOT safe for concurrent use: the ownership rule throughout
// the framework is one arena per learner goroutine — each drl worker
// builds its own network, which builds its own arena, so race-detected
// multi-threaded searches never share scratch.
type Arena struct {
	floats int // total float64 capacity handed out (high-water bookkeeping)
}

// NewArena returns an empty arena.
func NewArena() *Arena { return &Arena{} }

// ScratchFloats reports the total float64 scratch capacity this arena has
// allocated, an observability hook for sizing the steady-state footprint.
func (a *Arena) ScratchFloats() int { return a.floats }

// slice resizes *p to length n, allocating only when capacity is
// insufficient. Contents are unspecified: callers must fully overwrite or
// zero the result.
func (a *Arena) slice(p *[]float64, n int) []float64 {
	s := *p
	if cap(s) < n {
		s = make([]float64, n)
		a.floats += n
	}
	s = s[:n]
	*p = s
	return s
}

// tensorFor reshapes *p to the given shape, reusing its backing array when
// capacity allows. Contents are unspecified, as with slice. The shape
// slice must not be handed to fmt (or anything else that boxes it): that
// would force every variadic call site to heap-allocate its dimension
// list, defeating the arena.
func (a *Arena) tensorFor(p **tensor.Tensor, shape ...int) *tensor.Tensor {
	n := 1
	for _, s := range shape {
		if s <= 0 {
			panicBadDim(s)
		}
		n *= s
	}
	t := *p
	if t == nil {
		t = &tensor.Tensor{}
		*p = t
	}
	if cap(t.Data) < n {
		t.Data = make([]float64, n)
		a.floats += n
	}
	t.Data = t.Data[:n]
	if cap(t.Shape) < len(shape) {
		t.Shape = make([]int, len(shape))
	}
	t.Shape = t.Shape[:len(shape)]
	copy(t.Shape, shape)
	return t
}

//go:noinline
func panicBadDim(s int) {
	panic(fmt.Sprintf("nn: arena tensor with invalid dimension %d", s))
}

// ints resizes *p to n (contents unspecified).
func (a *Arena) ints(p *[]int, n int) []int {
	s := *p
	if cap(s) < n {
		s = make([]int, n)
	}
	s = s[:n]
	*p = s
	return s
}

// bools resizes *p to n (contents unspecified).
func (a *Arena) bools(p *[]bool, n int) []bool {
	s := *p
	if cap(s) < n {
		s = make([]bool, n)
	}
	s = s[:n]
	*p = s
	return s
}

// ensureArena lazily gives a standalone layer its own private arena; layers
// assembled into a PolicyValueNet share the network's arena instead (see
// attachArena).
func ensureArena(pp **Arena) *Arena {
	if *pp == nil {
		*pp = NewArena()
	}
	return *pp
}

// attachArena points every layer in the tree at the network-owned arena.
// Layers keep per-field buffer handles, so sharing one arena only shares
// the bookkeeping, never the buffers themselves.
func attachArena(a *Arena, l Layer) {
	switch v := l.(type) {
	case *Conv2D:
		v.arena = a
	case *BatchNorm:
		v.arena = a
	case *ReLU:
		v.arena = a
	case *MaxPool:
		v.arena = a
	case *Dense:
		v.arena = a
	case *Sequential:
		for _, inner := range v.Layers {
			attachArena(a, inner)
		}
	case *Residual:
		v.arena = a
		attachArena(a, v.Body)
		attachArena(a, v.relu)
	}
}

package nn

import (
	"math/rand"
	"strconv"
	"testing"
)

// headGrads builds deterministic per-sample head gradients for the parity
// tests: distinct values per sample and logit so accumulation-order bugs
// can't cancel.
func headGrads(net *PolicyValueNet, nb int, seed int64) (flat []float64, dDir, dVal []float64) {
	rng := rand.New(rand.NewSource(seed))
	nc := net.Cfg.N
	flat = make([]float64, nb*4*nc)
	for i := range flat {
		flat[i] = rng.NormFloat64()
	}
	dDir = make([]float64, nb)
	dVal = make([]float64, nb)
	for i := 0; i < nb; i++ {
		dDir[i] = rng.NormFloat64()
		dVal[i] = rng.NormFloat64()
	}
	return flat, dDir, dVal
}

// runSequentialSteps drives the per-sample training loop: Forward(train) +
// Backward per sample in order, with the given head gradients. Returns the
// per-sample outputs.
func runSequentialSteps(net *PolicyValueNet, states [][]float64, flat, dDir, dVal []float64) []*Output {
	nc := net.Cfg.N
	outs := make([]*Output, len(states))
	var dl [4][]float64
	for t, s := range states {
		outs[t] = copyOutput(net.Forward(s, true))
		for g := 0; g < 4; g++ {
			dl[g] = flat[t*4*nc+g*nc : t*4*nc+(g+1)*nc]
		}
		net.Backward(dl, dDir[t], dVal[t])
	}
	return outs
}

func assertStatsEqual(t *testing.T, tag string, a, b *PolicyValueNet) {
	t.Helper()
	sa := make([]float64, a.NumStats())
	sb := make([]float64, b.NumStats())
	a.CopyStatsInto(sa)
	b.CopyStatsInto(sb)
	for i := range sa {
		if sa[i] != sb[i] {
			t.Fatalf("%s: BatchNorm running stat %d diverged: %v vs %v", tag, i, sa[i], sb[i])
		}
	}
}

func assertGradsEqual(t *testing.T, tag string, a, b *PolicyValueNet) {
	t.Helper()
	ga := a.GetGrads()
	gb := b.GetGrads()
	off := 0
	for _, p := range a.params {
		for i := 0; i < p.W.Size(); i++ {
			if ga[off+i] != gb[off+i] {
				t.Fatalf("%s: param %s grad %d diverged: %v vs %v",
					tag, p.Name, i, ga[off+i], gb[off+i])
			}
		}
		off += p.W.Size()
	}
}

// The tentpole byte-identity gate, forward half: ForwardBatchTrain over B
// stacked states must reproduce B in-order Forward(·, true) calls
// bit-for-bit — head outputs AND the BatchNorm running-statistics EMA
// trajectory (per-sample statistics, ascending sample order).
func TestForwardBatchTrainMatchesForwardByteIdentical(t *testing.T) {
	for _, n := range []int{4, 5} {
		t.Run(strconv.Itoa(n)+"x"+strconv.Itoa(n), func(t *testing.T) {
			for _, bs := range []int{1, 3, 8} {
				seq := NewPolicyValueNet(TestConfig(n), 3)
				bat := NewPolicyValueNet(TestConfig(n), 3)
				perturbNet(seq, 17)
				perturbNet(bat, 17)
				rng := rand.New(rand.NewSource(23 + int64(bs)))
				states := randStates(rng, n, bs)
				want := make([]*Output, bs)
				for i, s := range states {
					want[i] = copyOutput(seq.Forward(s, true))
				}
				outs := make([]Output, bs)
				bat.ForwardBatchTrain(states, outs)
				for i := range outs {
					assertOutputsEqual(t, "B="+strconv.Itoa(bs)+" sample "+strconv.Itoa(i),
						&outs[i], want[i])
				}
				assertStatsEqual(t, "B="+strconv.Itoa(bs), bat, seq)
			}
		})
	}
}

// The tentpole byte-identity gate, backward half: one ForwardBatchTrain +
// BackwardBatch must accumulate parameter gradients bit-identical to the
// sequential per-step loop over the same samples in the same order —
// including across repeated batches on live (non-zeroed) gradient buffers,
// which pins the trajectory-order reduction contract.
func TestBackwardBatchByteIdenticalGradients(t *testing.T) {
	for _, n := range []int{4, 5} {
		t.Run(strconv.Itoa(n)+"x"+strconv.Itoa(n), func(t *testing.T) {
			for _, bs := range []int{1, 2, 7} {
				seq := NewPolicyValueNet(TestConfig(n), 3)
				bat := NewPolicyValueNet(TestConfig(n), 3)
				perturbNet(seq, 19)
				perturbNet(bat, 19)
				rng := rand.New(rand.NewSource(29 + int64(bs)))
				outs := make([]Output, bs)
				for round := 0; round < 2; round++ { // accumulate across batches
					states := randStates(rng, n, bs)
					flat, dDir, dVal := headGrads(seq, bs, 31+int64(round))
					runSequentialSteps(seq, states, flat, dDir, dVal)
					bat.ForwardBatchTrain(states, outs)
					bat.BackwardBatch(flat, dDir, dVal)
					tag := "B=" + strconv.Itoa(bs) + " round " + strconv.Itoa(round)
					assertGradsEqual(t, tag, bat, seq)
					assertStatsEqual(t, tag, bat, seq)
				}
			}
		})
	}
}

// The train path runs the fused padded-plane conv kernels and never lowers
// a column matrix, so unlike the inference batch path there is no
// batchColsBudget chunking to exercise; the kernel-level equivalence to the
// lowered path is pinned by tensor's TestConvFusedMatchesLowered, and the
// odd-size shapes here (B=5 on a 4×4 grid) cover the partial-group edges.
func TestTrainBatchFusedConvByteIdentical(t *testing.T) {
	seq := NewPolicyValueNet(TestConfig(4), 5)
	bat := NewPolicyValueNet(TestConfig(4), 5)
	perturbNet(seq, 37)
	perturbNet(bat, 37)
	rng := rand.New(rand.NewSource(41))
	states := randStates(rng, 4, 5)
	flat, dDir, dVal := headGrads(seq, len(states), 43)
	want := runSequentialSteps(seq, states, flat, dDir, dVal)
	outs := make([]Output, len(states))
	bat.ForwardBatchTrain(states, outs)
	bat.BackwardBatch(flat, dDir, dVal)
	for i := range outs {
		assertOutputsEqual(t, "sample "+strconv.Itoa(i), &outs[i], want[i])
	}
	assertGradsEqual(t, "fused", bat, seq)
	assertStatsEqual(t, "fused", bat, seq)
}

// Interleaving a batched inference ForwardBatch between ForwardBatchTrain
// and BackwardBatch must not disturb the pending training caches: the
// t-prefixed train scratch is disjoint from the inference-batch handles.
func TestTrainBatchSurvivesInterleavedInference(t *testing.T) {
	cfg := TestConfig(4)
	ref := NewPolicyValueNet(cfg, 7)
	mix := NewPolicyValueNet(cfg, 7)
	perturbNet(ref, 47)
	perturbNet(mix, 47)
	rng := rand.New(rand.NewSource(53))
	states := randStates(rng, 4, 4)
	inferStates := randStates(rng, 4, 6)
	flat, dDir, dVal := headGrads(ref, len(states), 59)
	outs := make([]Output, len(states))
	inferOuts := make([]Output, len(inferStates))
	for step := 0; step < 3; step++ {
		ref.ForwardBatchTrain(states, outs)
		ref.BackwardBatch(flat, dDir, dVal)
		mix.ForwardBatchTrain(states, outs)
		mix.ForwardBatch(inferStates, inferOuts) // wedged mid-cycle
		mix.BackwardBatch(flat, dDir, dVal)
		assertGradsEqual(t, "step "+strconv.Itoa(step), mix, ref)
		SGD{LR: 0.01}.Step(ref)
		SGD{LR: 0.01}.Step(mix)
	}
}

// The 0-alloc pin for the batched train step: once warmed, a full
// ForwardBatchTrain + BackwardBatch cycle allocates nothing, including for
// smaller batches reusing the same scratch.
func TestTrainBatchZeroAllocWarm(t *testing.T) {
	net := NewPolicyValueNet(TestConfig(4), 9)
	perturbNet(net, 61)
	rng := rand.New(rand.NewSource(67))
	states := randStates(rng, 4, 8)
	flat, dDir, dVal := headGrads(net, 8, 71)
	outs := make([]Output, 8)
	net.ForwardBatchTrain(states, outs) // warm
	net.BackwardBatch(flat, dDir, dVal)
	if allocs := testing.AllocsPerRun(20, func() {
		net.ForwardBatchTrain(states, outs)
		net.BackwardBatch(flat, dDir, dVal)
	}); allocs != 0 {
		t.Fatalf("warmed batched train step allocates %.0f times, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(20, func() {
		net.ForwardBatchTrain(states[:3], outs[:3])
		net.BackwardBatch(flat[:3*4*net.Cfg.N], dDir[:3], dVal[:3])
	}); allocs != 0 {
		t.Fatalf("warmed batched train step (B=3) allocates %.0f times, want 0", allocs)
	}
}

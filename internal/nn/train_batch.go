package nn

import (
	"fmt"
	"math"

	"routerless/internal/tensor"
)

// Batched training path — the training-mode twin of the batched inference
// path in batch.go. Spatial activations use the same channel-major batched
// layout (C, B, H, W); fully connected head layers run on sample-major
// (B, features) rows. Unlike ForwardBatch, every layer writes its training
// caches (im2col columns, BatchNorm x̂ and per-sample statistics, ReLU
// masks, MaxPool argmax) so BackwardBatch can back-propagate the whole
// batch in one pass.
//
// Two contracts keep the path exactly equivalent to running the per-sample
// Forward/Backward loop over the batch in order (sample index bi plays the
// role of the trajectory step t):
//
//  1. Forward activations are bit-identical to per-sample Forward. Batched
//     convolution runs tensor.ConvFwdPad, the fused padded-plane kernel
//     whose per-element reduction chains replicate Im2col + GemmNN exactly
//     (pinned by tensor's TestConvFusedMatchesLowered); BatchNorm in
//     batch-train mode keeps PER-SAMPLE statistics — each sample is
//     normalized over its own spatial extent, exactly as B=1 training
//     does, with the running-statistics EMA applied in ascending sample
//     order per channel — batch statistics would silently change the model
//     being trained.
//
//  2. Accumulated gradients are bit-identical, preserving the sequential
//     per-step reduction order for every parameter. Conv dW and dX run one
//     sample at a time in ascending bi through tensor.ConvDWPad and
//     tensor.ConvDXPad, fused kernels bit-identical to the sequential
//     GemmNT-over-cols and GemmTN + Col2im calls; Dense heads accumulate
//     per-sample rank-1 updates in bi order through the same k==1/n==1
//     GemmNT/GemmTN fast paths Dense.Backward uses; BatchNorm and bias
//     sums accumulate per (channel, sample) plane in bi order.
//     internal/rl keeps the per-step loop alive as accumulateSequential,
//     the parity oracle for all of this.
//
// All scratch comes from the network's Arena through dedicated t-prefixed
// handles, disjoint from both the per-sample training buffers and the
// inference-batch buffers, so the three paths can interleave on one net
// and a warmed-up train step allocates nothing.

// trainBatchLayer is implemented by every layer that supports batched
// training in the channel-major layout. BackwardBatch consumes dL/d(out),
// accumulates parameter gradients, and returns dL/d(in); when needDX is
// false the layer may skip computing dL/d(in) and return nil (used for the
// trunk's first layer, whose input gradient nobody consumes — the
// sequential path computes and discards it, so skipping is exact).
type trainBatchLayer interface {
	ForwardBatchTrain(x *tensor.Tensor) *tensor.Tensor
	BackwardBatch(grad *tensor.Tensor, needDX bool) *tensor.Tensor
}

// ForwardBatchTrain applies the chain in the batched layout, training mode.
func (s *Sequential) ForwardBatchTrain(x *tensor.Tensor) *tensor.Tensor {
	for _, l := range s.Layers {
		tl, ok := l.(trainBatchLayer)
		if !ok {
			panic(fmt.Sprintf("nn: layer %T has no batched train forward", l))
		}
		x = tl.ForwardBatchTrain(x)
	}
	return x
}

// BackwardBatch implements trainBatchLayer: layers run in reverse; only the
// first layer inherits needDX (every other layer's dX is its predecessor's
// incoming gradient).
func (s *Sequential) BackwardBatch(grad *tensor.Tensor, needDX bool) *tensor.Tensor {
	for i := len(s.Layers) - 1; i >= 0; i-- {
		grad = s.Layers[i].(trainBatchLayer).BackwardBatch(grad, needDX || i > 0)
	}
	return grad
}

// ForwardBatchTrain implements trainBatchLayer: x is (InC, B, H, W), the
// result (OutC, B, H, W). Unlike the inference batch path, no column matrix
// is lowered: the input is copied once into zero-padded planes (kept for
// BackwardBatch) and each sample runs tensor.ConvFwdPad, which is
// bit-identical to Im2col + GemmNN but touches K²× less memory — at paper
// scale the cols matrix is megabytes per sample, and eliminating it is
// where the batched path's speedup over the sequential loop comes from.
func (c *Conv2D) ForwardBatchTrain(x *tensor.Tensor) *tensor.Tensor {
	if len(x.Shape) != 4 || x.Shape[0] != c.InC {
		panic(fmt.Sprintf("nn: Conv2D batched train input shape %v, want (%d,B,H,W)", x.Shape, c.InC))
	}
	nb, h, w := x.Shape[1], x.Shape[2], x.Shape[3]
	hw := h * w
	hpwp := (h + c.K - 1) * (w + c.K - 1)
	a := ensureArena(&c.arena)
	c.tx = x
	out := a.tensorFor(&c.tout, c.OutC, nb, h, w)
	xp := a.slice(&c.tpad, c.InC*nb*hpwp)
	for ic := 0; ic < c.InC; ic++ {
		for bi := 0; bi < nb; bi++ {
			plane := (ic*nb + bi)
			tensor.PadPlane(x.Data[plane*hw:(plane+1)*hw], h, w, c.K, xp[plane*hpwp:(plane+1)*hpwp])
		}
	}
	pout := a.slice(&c.tpout, (h-1)*(w+c.K-1)+w)
	for bi := 0; bi < nb; bi++ {
		tensor.ConvFwdPad(c.Weight.W.Data, c.OutC, c.InC,
			xp[bi*hpwp:], nb*hpwp, h, w, c.K,
			out.Data[bi*hw:], nb*hw, pout)
	}
	for oc := 0; oc < c.OutC; oc++ {
		b := c.Bias.W.Data[oc]
		if b == 0 {
			continue
		}
		row := out.Data[oc*nb*hw : (oc+1)*nb*hw]
		for i := range row {
			row[i] += b
		}
	}
	return out
}

// BackwardBatch implements trainBatchLayer: one sample at a time, in
// ascending sample (= trajectory) order, through the fused padded-plane
// kernels — tensor.ConvDWPad accumulates dW bit-identical to the sequential
// per-step GemmNT calls, and tensor.ConvDXPad produces dX bit-identical to
// GemmTN + Col2im, with neither the cols nor the dcols matrix ever
// materialized. Bias gradients accumulate per (channel, sample) plane in
// sample order.
func (c *Conv2D) BackwardBatch(grad *tensor.Tensor, needDX bool) *tensor.Tensor {
	x := c.tx
	nb, h, w := x.Shape[1], x.Shape[2], x.Shape[3]
	hw := h * w
	hpwp := (h + c.K - 1) * (w + c.K - 1)
	a := ensureArena(&c.arena)
	for oc := 0; oc < c.OutC; oc++ {
		for bi := 0; bi < nb; bi++ {
			s := 0.0
			for _, g := range grad.Data[(oc*nb+bi)*hw : (oc*nb+bi+1)*hw] {
				s += g
			}
			c.Bias.G.Data[oc] += s
		}
	}
	wpad := w + c.K - 1
	lead := c.K - 1 - (c.K-1)/2 // gradient planes lead with the larger border
	rowBuf := a.slice(&c.trow, hw)
	gpad := a.slice(&c.tgp, c.OutC*hpwp)
	var dx *tensor.Tensor
	var srow []float64
	if needDX {
		dx = a.tensorFor(&c.tdx, x.Shape...)
		srow = a.slice(&c.tsrow, w)
	}
	// The interior rows of the padded gradient planes, viewed from the first
	// pixel at stride wpad, are exactly the zero-gapped span ConvDWPad walks.
	gp := gpad[lead*wpad+lead:]
	for bi := 0; bi < nb; bi++ {
		for oc := 0; oc < c.OutC; oc++ {
			tensor.PadPlaneLead(grad.Data[(oc*nb+bi)*hw:], h, w, c.K, lead, gpad[oc*hpwp:])
		}
		tensor.ConvDWPad(grad.Data[bi*hw:], nb*hw, gp, hpwp,
			c.tpad[bi*hpwp:], nb*hpwp,
			c.OutC, c.InC, h, w, c.K, c.Weight.G.Data, rowBuf)
		if needDX {
			tensor.ConvDXPad(c.Weight.W.Data, c.OutC, c.InC,
				gpad, hpwp, h, w, c.K,
				dx.Data[bi*hw:], nb*hw, srow)
		}
	}
	return dx
}

// ForwardBatchTrain implements trainBatchLayer in batch-train mode: each
// (channel, sample) plane is normalized over its own spatial extent with
// freshly computed statistics — exactly the B=1 training rule — and the
// running-statistics EMA advances once per sample, in ascending sample
// order per channel, reproducing the sequential update sequence.
func (b *BatchNorm) ForwardBatchTrain(x *tensor.Tensor) *tensor.Tensor {
	if len(x.Shape) != 4 || x.Shape[0] != b.C {
		panic(fmt.Sprintf("nn: BatchNorm batched train input %v, want (%d,B,H,W)", x.Shape, b.C))
	}
	nb := x.Shape[1]
	n := x.Shape[2] * x.Shape[3]
	a := ensureArena(&b.arena)
	out := a.tensorFor(&b.tout, x.Shape...)
	xhat := a.slice(&b.txhat, x.Size())
	a.slice(&b.tmean, b.C*nb)
	a.slice(&b.tinvSD, b.C*nb)
	for c := 0; c < b.C; c++ {
		g, beta := b.Gamma.W.Data[c], b.Beta.W.Data[c]
		for bi := 0; bi < nb; bi++ {
			p := (c*nb + bi) * n
			ch := x.Data[p : p+n]
			var mean, varc float64
			for _, v := range ch {
				mean += v
			}
			mean /= float64(n)
			for _, v := range ch {
				d := v - mean
				varc += d * d
			}
			varc /= float64(n)
			b.RunMean[c] = b.Momentum*b.RunMean[c] + (1-b.Momentum)*mean
			b.RunVar[c] = b.Momentum*b.RunVar[c] + (1-b.Momentum)*varc
			inv := 1 / math.Sqrt(varc+b.Eps)
			b.tmean[c*nb+bi], b.tinvSD[c*nb+bi] = mean, inv
			for i, v := range ch {
				xh := (v - mean) * inv
				xhat[p+i] = xh
				out.Data[p+i] = g*xh + beta
			}
		}
	}
	return out
}

// BackwardBatch implements trainBatchLayer: the per-sample training-mode
// gradient applied plane by plane, with Gamma/Beta accumulating in
// ascending sample order per channel.
func (b *BatchNorm) BackwardBatch(grad *tensor.Tensor, _ bool) *tensor.Tensor {
	nb := grad.Shape[1]
	n := grad.Shape[2] * grad.Shape[3]
	dx := ensureArena(&b.arena).tensorFor(&b.tdx, grad.Shape...)
	for c := 0; c < b.C; c++ {
		g := b.Gamma.W.Data[c]
		for bi := 0; bi < nb; bi++ {
			p := (c*nb + bi) * n
			var sumDy, sumDyXhat float64
			for i := 0; i < n; i++ {
				dy := grad.Data[p+i]
				sumDy += dy
				sumDyXhat += dy * b.txhat[p+i]
			}
			b.Gamma.G.Data[c] += sumDyXhat
			b.Beta.G.Data[c] += sumDy
			inv := b.tinvSD[c*nb+bi]
			for i := 0; i < n; i++ {
				dy := grad.Data[p+i]
				xh := b.txhat[p+i]
				dx.Data[p+i] = g * inv / float64(n) *
					(float64(n)*dy - sumDy - xh*sumDyXhat)
			}
		}
	}
	return dx
}

// ForwardBatchTrain implements trainBatchLayer; shape-generic and
// elementwise (it also serves the sample-major head rows), recording the
// backward mask.
func (r *ReLU) ForwardBatchTrain(x *tensor.Tensor) *tensor.Tensor {
	a := ensureArena(&r.arena)
	out := a.tensorFor(&r.tout, x.Shape...)
	mask := a.bools(&r.tmask, x.Size())
	for i, v := range x.Data {
		if v <= 0 {
			out.Data[i] = 0
			mask[i] = false
		} else {
			out.Data[i] = v
			mask[i] = true
		}
	}
	return out
}

// BackwardBatch implements trainBatchLayer.
func (r *ReLU) BackwardBatch(grad *tensor.Tensor, _ bool) *tensor.Tensor {
	dx := ensureArena(&r.arena).tensorFor(&r.tdx, grad.Shape...)
	for i, v := range grad.Data {
		if r.tmask[i] {
			dx.Data[i] = v
		} else {
			dx.Data[i] = 0
		}
	}
	return dx
}

// ForwardBatchTrain implements trainBatchLayer: 2×2/stride-2 pooling per
// (channel, sample) plane, recording argmax for backward.
func (p *MaxPool) ForwardBatchTrain(x *tensor.Tensor) *tensor.Tensor {
	if len(x.Shape) != 4 {
		panic(fmt.Sprintf("nn: MaxPool batched train input %v, want (C,B,H,W)", x.Shape))
	}
	c, nb, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	oh, ow := h/2, w/2
	if oh < 1 || ow < 1 {
		panic(fmt.Sprintf("nn: MaxPool input %v too small", x.Shape))
	}
	a := ensureArena(&p.arena)
	out := a.tensorFor(&p.tout, c, nb, oh, ow)
	argmax := a.ints(&p.targmax, out.Size())
	inSh := a.ints(&p.tinSh, 4)
	copy(inSh, x.Shape)
	for plane := 0; plane < c*nb; plane++ {
		src := x.Data[plane*h*w : (plane+1)*h*w]
		pbase := plane * oh * ow
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				bestIdx := 2*oy*w + 2*ox
				best := src[bestIdx]
				for dy := 0; dy < 2; dy++ {
					for dx := 0; dx < 2; dx++ {
						idx := (2*oy+dy)*w + 2*ox + dx
						if src[idx] > best {
							best = src[idx]
							bestIdx = idx
						}
					}
				}
				oi := pbase + oy*ow + ox
				out.Data[oi] = best
				argmax[oi] = plane*h*w + bestIdx
			}
		}
	}
	return out
}

// BackwardBatch implements trainBatchLayer.
func (p *MaxPool) BackwardBatch(grad *tensor.Tensor, _ bool) *tensor.Tensor {
	dx := ensureArena(&p.arena).tensorFor(&p.tdx, p.tinSh...)
	dx.Fill(0)
	for oi, idx := range p.targmax {
		dx.Data[idx] += grad.Data[oi]
	}
	return dx
}

// ForwardBatchTrain implements trainBatchLayer: out = ReLU(F(x) + x) with
// every inner layer in batch-train mode.
func (r *Residual) ForwardBatchTrain(x *tensor.Tensor) *tensor.Tensor {
	f := r.Body.ForwardBatchTrain(x)
	sum := ensureArena(&r.arena).tensorFor(&r.tsum, x.Shape...)
	copy(sum.Data, f.Data)
	sum.AddInPlace(x)
	return r.relu.ForwardBatchTrain(sum)
}

// BackwardBatch implements trainBatchLayer; as in the sequential path, the
// post-sum ReLU gradient g feeds both the body and the shortcut, and lives
// in a buffer no body layer writes.
func (r *Residual) BackwardBatch(grad *tensor.Tensor, _ bool) *tensor.Tensor {
	g := r.relu.BackwardBatch(grad, true)
	dxBody := r.Body.BackwardBatch(g, true)
	dx := ensureArena(&r.arena).tensorFor(&r.tdx, g.Shape...)
	copy(dx.Data, dxBody.Data)
	dx.AddInPlace(g)
	return dx
}

// ForwardBatchTrainRows evaluates the FC layer on sample-major rows in
// training mode: x is (B, In), the result (B, Out), with the input cached
// for BackwardBatchRows. Routed through MatVecBatch, so each sample's row
// is bit-identical to Dense.Forward on that sample.
func (d *Dense) ForwardBatchTrainRows(x *tensor.Tensor) *tensor.Tensor {
	nb := x.Shape[0]
	if x.Size() != nb*d.In {
		panic(fmt.Sprintf("nn: Dense batched train input %v, want (%d,%d)", x.Shape, nb, d.In))
	}
	d.tx = x
	y := ensureArena(&d.arena).tensorFor(&d.tout, nb, d.Out)
	tensor.MatVecBatch(d.Out, d.In, nb, d.Weight.W.Data, x.Data, y.Data)
	for bi := 0; bi < nb; bi++ {
		row := y.Data[bi*d.Out : (bi+1)*d.Out]
		for o := range row {
			row[o] += d.Bias.W.Data[o]
		}
	}
	return y
}

// BackwardBatchRows back-propagates sample-major rows: per sample, in
// ascending order, dW accumulates the same rank-1 GemmNT update and dX the
// same n==1 GemmTN as Dense.Backward, so head gradients stay byte-identical
// to the sequential loop.
func (d *Dense) BackwardBatchRows(grad *tensor.Tensor) *tensor.Tensor {
	nb := grad.Shape[0]
	dx := ensureArena(&d.arena).tensorFor(&d.tdx, nb, d.In)
	for bi := 0; bi < nb; bi++ {
		grow := grad.Data[bi*d.Out : (bi+1)*d.Out]
		xrow := d.tx.Data[bi*d.In : (bi+1)*d.In]
		tensor.GemmNT(d.Out, d.In, 1, grow, xrow, d.Weight.G.Data, true)
		for o := 0; o < d.Out; o++ {
			d.Bias.G.Data[o] += grow[o]
		}
		tensor.GemmTN(d.In, 1, d.Out, d.Weight.W.Data, grow, dx.Data[bi*d.In:(bi+1)*d.In], false)
	}
	return dx
}

// unpackSamples is the inverse of packSamples: it transposes sample-major
// (B, C·H·W) rows back into a channel-major (C, B, H, W) activation, one
// contiguous copy per (channel, sample) plane.
func unpackSamples(a *Arena, p **tensor.Tensor, rows *tensor.Tensor, c, nb, h, w int) *tensor.Tensor {
	hw := h * w
	dst := a.tensorFor(p, c, nb, h, w)
	for ci := 0; ci < c; ci++ {
		for bi := 0; bi < nb; bi++ {
			copy(dst.Data[(ci*nb+bi)*hw:(ci*nb+bi+1)*hw],
				rows.Data[bi*c*hw+ci*hw:bi*c*hw+(ci+1)*hw])
		}
	}
	return dst
}

// ForwardBatchTrain evaluates len(states) hop-count matrices in training
// mode, filling outs[i] with the result for states[i] and leaving every
// layer's caches positioned for one BackwardBatch over the same batch.
// Per-sample outputs are bit-identical to Forward(states[i], true),
// including the BatchNorm running-statistics updates (per-sample EMA in
// ascending sample order). Output slices already present in outs are
// reused, so a warmed-up call allocates nothing.
func (n *PolicyValueNet) ForwardBatchTrain(states [][]float64, outs []Output) {
	nb := len(states)
	if nb == 0 {
		return
	}
	if len(outs) < nb {
		panic(fmt.Sprintf("nn: ForwardBatchTrain got %d outputs for %d states", len(outs), nb))
	}
	side := n.Cfg.N * n.Cfg.N
	x := n.arena.tensorFor(&n.tbin, 1, nb, side, side)
	norm := 5 * float64(n.Cfg.N)
	for bi, st := range states {
		if len(st) != side*side {
			panic(fmt.Sprintf("nn: input length %d, want %d", len(st), side*side))
		}
		dst := x.Data[bi*side*side : (bi+1)*side*side]
		for i, v := range st {
			dst[i] = v / norm
		}
	}
	tb := n.trunk.ForwardBatchTrain(x)

	// Policy coordinates.
	pc := n.pConv.ForwardBatchTrain(tb)
	n.tbpOut = pc
	h1 := n.pReLU.ForwardBatchTrain(n.pFC1.ForwardBatchTrainRows(packSamples(n.arena, &n.tpX, pc)))
	logits := n.pFC2.ForwardBatchTrainRows(h1)
	// Direction.
	dc := n.dConv.ForwardBatchTrain(tb)
	n.tbdOut = dc
	dpre := n.dFC.ForwardBatchTrainRows(packSamples(n.arena, &n.tdX, dc))
	// Value.
	vc := n.vConv.ForwardBatchTrain(tb)
	n.tbvOut = vc
	val := n.vFC.ForwardBatchTrainRows(packSamples(n.arena, &n.tvX, vc))

	nc := n.Cfg.N
	for bi := 0; bi < nb; bi++ {
		out := &outs[bi]
		lrow := logits.Data[bi*4*nc : (bi+1)*4*nc]
		for g := 0; g < 4; g++ {
			if cap(out.CoordLogits[g]) < nc {
				out.CoordLogits[g] = make([]float64, nc)
				out.CoordProbs[g] = make([]float64, nc)
			}
			out.CoordLogits[g] = out.CoordLogits[g][:nc]
			out.CoordProbs[g] = out.CoordProbs[g][:nc]
			copy(out.CoordLogits[g], lrow[g*nc:(g+1)*nc])
			tensor.SoftmaxInto(out.CoordProbs[g], out.CoordLogits[g])
		}
		out.DirPre = dpre.Data[bi]
		out.Dir = math.Tanh(out.DirPre)
		out.Value = val.Data[bi]
	}
}

// BackwardBatch back-propagates head gradients for the whole batch from
// the most recent ForwardBatchTrain. dLogits holds sample-major rows of
// dL/d(coordinate logits) — nb rows of 4N — and dDirPre/dValue one scalar
// per sample. Parameter-gradient accumulation is byte-identical to calling
// Backward once per sample in ascending order (see the file comment).
func (n *PolicyValueNet) BackwardBatch(dLogits []float64, dDirPre, dValue []float64) {
	nb := len(dDirPre)
	if len(dValue) != nb || len(dLogits) != nb*4*n.Cfg.N {
		panic(fmt.Sprintf("nn: BackwardBatch got %d logit rows, %d dirs, %d values",
			len(dLogits)/(4*n.Cfg.N), nb, len(dValue)))
	}
	flat := n.arena.tensorFor(&n.tflat, nb, 4*n.Cfg.N)
	copy(flat.Data, dLogits)

	// Policy head: FC rows back to the conv head's channel-major layout.
	gp := n.pFC2.BackwardBatchRows(flat)
	gp = n.pReLU.BackwardBatch(gp, true)
	gp = n.pFC1.BackwardBatchRows(gp)
	pc := n.tbpOut
	gTrunk := n.pConv.BackwardBatch(
		unpackSamples(n.arena, &n.tpUn, gp, pc.Shape[0], pc.Shape[1], pc.Shape[2], pc.Shape[3]), true)

	// Direction head.
	dDirT := n.arena.tensorFor(&n.tdDirT, nb, 1)
	copy(dDirT.Data, dDirPre)
	gd := n.dFC.BackwardBatchRows(dDirT)
	dc := n.tbdOut
	gTrunk.AddInPlace(n.dConv.BackwardBatch(
		unpackSamples(n.arena, &n.tdUn, gd, dc.Shape[0], dc.Shape[1], dc.Shape[2], dc.Shape[3]), true))

	// Value head.
	dValT := n.arena.tensorFor(&n.tdValT, nb, 1)
	copy(dValT.Data, dValue)
	gv := n.vFC.BackwardBatchRows(dValT)
	vc := n.tbvOut
	gTrunk.AddInPlace(n.vConv.BackwardBatch(
		unpackSamples(n.arena, &n.tvUn, gv, vc.Shape[0], vc.Shape[1], vc.Shape[2], vc.Shape[3]), true))

	// The trunk's first layer (the stem conv) has no consumer for its input
	// gradient; the sequential path computes and discards it, so needDX=false
	// skips that work exactly.
	n.trunk.BackwardBatch(gTrunk, false)
}

// Package nn is a from-scratch neural-network library implementing exactly
// the components the paper's DNN needs (Fig. 6): 2-D convolutions, batch
// normalization, max pooling, ReLU, fully connected layers, residual
// blocks, softmax/tanh heads, and plain SGD. Feature maps are tensors with
// shape (channels, height, width); training operates on single examples,
// matching the paper's per-step actor-critic updates.
package nn

import (
	"fmt"
	"math"
	"math/rand"

	"routerless/internal/tensor"
)

// Param couples a learnable weight tensor with its gradient accumulator.
type Param struct {
	Name string
	W    *tensor.Tensor
	G    *tensor.Tensor
}

func newParam(name string, w *tensor.Tensor) *Param {
	return &Param{Name: name, W: w, G: w.ZerosLike()}
}

// Layer is a differentiable module. Backward consumes dL/d(output),
// accumulates parameter gradients, and returns dL/d(input). Layers cache
// their most recent Forward inputs; they are not reentrant.
type Layer interface {
	Forward(x *tensor.Tensor, train bool) *tensor.Tensor
	Backward(grad *tensor.Tensor) *tensor.Tensor
	Params() []*Param
}

// ---------------------------------------------------------------------------
// Conv2D

// Conv2D is a 2-D convolution with stride 1 and zero "same" padding.
type Conv2D struct {
	InC, OutC, K int
	Weight       *Param // shape (OutC, InC, K, K)
	Bias         *Param // shape (OutC)

	x *tensor.Tensor // cached input
}

// NewConv2D builds a conv layer with He-initialized weights.
func NewConv2D(rng *rand.Rand, name string, inC, outC, k int) *Conv2D {
	std := math.Sqrt(2.0 / float64(inC*k*k))
	return &Conv2D{
		InC: inC, OutC: outC, K: k,
		Weight: newParam(name+".w", tensor.Randn(rng, std, outC, inC, k, k)),
		Bias:   newParam(name+".b", tensor.New(outC)),
	}
}

// Params implements Layer.
func (c *Conv2D) Params() []*Param { return []*Param{c.Weight, c.Bias} }

// Forward implements Layer.
func (c *Conv2D) Forward(x *tensor.Tensor, _ bool) *tensor.Tensor {
	if len(x.Shape) != 3 || x.Shape[0] != c.InC {
		panic(fmt.Sprintf("nn: Conv2D input shape %v, want (%d,H,W)", x.Shape, c.InC))
	}
	c.x = x
	h, w := x.Shape[1], x.Shape[2]
	pad := (c.K - 1) / 2
	out := tensor.New(c.OutC, h, w)
	for oc := 0; oc < c.OutC; oc++ {
		b := c.Bias.W.Data[oc]
		for oy := 0; oy < h; oy++ {
			for ox := 0; ox < w; ox++ {
				s := b
				for ic := 0; ic < c.InC; ic++ {
					for ky := 0; ky < c.K; ky++ {
						iy := oy + ky - pad
						if iy < 0 || iy >= h {
							continue
						}
						for kx := 0; kx < c.K; kx++ {
							ix := ox + kx - pad
							if ix < 0 || ix >= w {
								continue
							}
							s += c.Weight.W.Data[((oc*c.InC+ic)*c.K+ky)*c.K+kx] *
								x.Data[(ic*h+iy)*w+ix]
						}
					}
				}
				out.Data[(oc*h+oy)*w+ox] = s
			}
		}
	}
	return out
}

// Backward implements Layer.
func (c *Conv2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	x := c.x
	h, w := x.Shape[1], x.Shape[2]
	pad := (c.K - 1) / 2
	dx := x.ZerosLike()
	for oc := 0; oc < c.OutC; oc++ {
		for oy := 0; oy < h; oy++ {
			for ox := 0; ox < w; ox++ {
				g := grad.Data[(oc*h+oy)*w+ox]
				if g == 0 {
					continue
				}
				c.Bias.G.Data[oc] += g
				for ic := 0; ic < c.InC; ic++ {
					for ky := 0; ky < c.K; ky++ {
						iy := oy + ky - pad
						if iy < 0 || iy >= h {
							continue
						}
						for kx := 0; kx < c.K; kx++ {
							ix := ox + kx - pad
							if ix < 0 || ix >= w {
								continue
							}
							wi := ((oc*c.InC+ic)*c.K+ky)*c.K + kx
							xi := (ic*h+iy)*w + ix
							c.Weight.G.Data[wi] += g * x.Data[xi]
							dx.Data[xi] += g * c.Weight.W.Data[wi]
						}
					}
				}
			}
		}
	}
	return dx
}

// ---------------------------------------------------------------------------
// BatchNorm (per-channel over spatial dims; batch of one)

// BatchNorm normalizes each channel over its spatial extent, with learnable
// scale/shift and running statistics for evaluation mode.
type BatchNorm struct {
	C     int
	Gamma *Param
	Beta  *Param

	Momentum float64
	RunMean  []float64
	RunVar   []float64
	Eps      float64

	x     *tensor.Tensor
	xhat  []float64
	mean  []float64
	invSD []float64
}

// NewBatchNorm builds a batch-norm layer for c channels.
func NewBatchNorm(name string, c int) *BatchNorm {
	g := tensor.New(c)
	g.Fill(1)
	bn := &BatchNorm{
		C:        c,
		Gamma:    newParam(name+".gamma", g),
		Beta:     newParam(name+".beta", tensor.New(c)),
		Momentum: 0.9,
		RunMean:  make([]float64, c),
		RunVar:   make([]float64, c),
		Eps:      1e-5,
	}
	for i := range bn.RunVar {
		bn.RunVar[i] = 1
	}
	return bn
}

// Params implements Layer.
func (b *BatchNorm) Params() []*Param { return []*Param{b.Gamma, b.Beta} }

// Forward implements Layer.
func (b *BatchNorm) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if len(x.Shape) != 3 || x.Shape[0] != b.C {
		panic(fmt.Sprintf("nn: BatchNorm input %v, want (%d,H,W)", x.Shape, b.C))
	}
	h, w := x.Shape[1], x.Shape[2]
	n := h * w
	out := x.ZerosLike()
	b.x = x
	b.xhat = make([]float64, x.Size())
	b.mean = make([]float64, b.C)
	b.invSD = make([]float64, b.C)
	for c := 0; c < b.C; c++ {
		ch := x.Data[c*n : (c+1)*n]
		var mean, varc float64
		if train {
			for _, v := range ch {
				mean += v
			}
			mean /= float64(n)
			for _, v := range ch {
				d := v - mean
				varc += d * d
			}
			varc /= float64(n)
			b.RunMean[c] = b.Momentum*b.RunMean[c] + (1-b.Momentum)*mean
			b.RunVar[c] = b.Momentum*b.RunVar[c] + (1-b.Momentum)*varc
		} else {
			mean, varc = b.RunMean[c], b.RunVar[c]
		}
		inv := 1 / math.Sqrt(varc+b.Eps)
		b.mean[c], b.invSD[c] = mean, inv
		g, beta := b.Gamma.W.Data[c], b.Beta.W.Data[c]
		for i, v := range ch {
			xh := (v - mean) * inv
			b.xhat[c*n+i] = xh
			out.Data[c*n+i] = g*xh + beta
		}
	}
	return out
}

// Backward implements Layer (training-mode gradient).
func (b *BatchNorm) Backward(grad *tensor.Tensor) *tensor.Tensor {
	h, w := b.x.Shape[1], b.x.Shape[2]
	n := h * w
	dx := b.x.ZerosLike()
	for c := 0; c < b.C; c++ {
		g := b.Gamma.W.Data[c]
		var sumDy, sumDyXhat float64
		for i := 0; i < n; i++ {
			dy := grad.Data[c*n+i]
			sumDy += dy
			sumDyXhat += dy * b.xhat[c*n+i]
		}
		b.Gamma.G.Data[c] += sumDyXhat
		b.Beta.G.Data[c] += sumDy
		inv := b.invSD[c]
		for i := 0; i < n; i++ {
			dy := grad.Data[c*n+i]
			xh := b.xhat[c*n+i]
			dx.Data[c*n+i] = g * inv / float64(n) *
				(float64(n)*dy - sumDy - xh*sumDyXhat)
		}
	}
	return dx
}

// ---------------------------------------------------------------------------
// ReLU

// ReLU is the rectified linear activation.
type ReLU struct {
	mask []bool
}

// NewReLU builds a ReLU layer.
func NewReLU() *ReLU { return &ReLU{} }

// Params implements Layer.
func (r *ReLU) Params() []*Param { return nil }

// Forward implements Layer.
func (r *ReLU) Forward(x *tensor.Tensor, _ bool) *tensor.Tensor {
	out := x.Clone()
	r.mask = make([]bool, len(out.Data))
	for i, v := range out.Data {
		if v <= 0 {
			out.Data[i] = 0
		} else {
			r.mask[i] = true
		}
	}
	return out
}

// Backward implements Layer.
func (r *ReLU) Backward(grad *tensor.Tensor) *tensor.Tensor {
	dx := grad.Clone()
	for i := range dx.Data {
		if !r.mask[i] {
			dx.Data[i] = 0
		}
	}
	return dx
}

// ---------------------------------------------------------------------------
// MaxPool 2x2 stride 2

// MaxPool halves spatial dimensions with 2×2 windows (odd trailing
// rows/columns are dropped, as in the paper's "pool, /2" stages).
type MaxPool struct {
	argmax []int
	inSh   []int
}

// NewMaxPool builds the pooling layer.
func NewMaxPool() *MaxPool { return &MaxPool{} }

// Params implements Layer.
func (p *MaxPool) Params() []*Param { return nil }

// Forward implements Layer.
func (p *MaxPool) Forward(x *tensor.Tensor, _ bool) *tensor.Tensor {
	c, h, w := x.Shape[0], x.Shape[1], x.Shape[2]
	oh, ow := h/2, w/2
	if oh < 1 || ow < 1 {
		panic(fmt.Sprintf("nn: MaxPool input %v too small", x.Shape))
	}
	out := tensor.New(c, oh, ow)
	p.argmax = make([]int, out.Size())
	p.inSh = x.Shape
	for ci := 0; ci < c; ci++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				// Initialize from the first window element so NaN inputs
				// (diverged training) degrade gracefully instead of
				// leaving the argmax unset.
				bestIdx := (ci*h+2*oy)*w + 2*ox
				best := x.Data[bestIdx]
				for dy := 0; dy < 2; dy++ {
					for dx := 0; dx < 2; dx++ {
						idx := (ci*h+2*oy+dy)*w + 2*ox + dx
						if x.Data[idx] > best {
							best = x.Data[idx]
							bestIdx = idx
						}
					}
				}
				oi := (ci*oh+oy)*ow + ox
				out.Data[oi] = best
				p.argmax[oi] = bestIdx
			}
		}
	}
	return out
}

// Backward implements Layer.
func (p *MaxPool) Backward(grad *tensor.Tensor) *tensor.Tensor {
	dx := tensor.New(p.inSh...)
	for oi, idx := range p.argmax {
		dx.Data[idx] += grad.Data[oi]
	}
	return dx
}

// ---------------------------------------------------------------------------
// Dense (fully connected)

// Dense is a fully connected layer on flattened inputs.
type Dense struct {
	In, Out int
	Weight  *Param // (Out, In)
	Bias    *Param // (Out)

	x *tensor.Tensor
}

// NewDense builds an FC layer with Xavier-initialized weights.
func NewDense(rng *rand.Rand, name string, in, out int) *Dense {
	std := math.Sqrt(1.0 / float64(in))
	return &Dense{
		In: in, Out: out,
		Weight: newParam(name+".w", tensor.Randn(rng, std, out, in)),
		Bias:   newParam(name+".b", tensor.New(out)),
	}
}

// Params implements Layer.
func (d *Dense) Params() []*Param { return []*Param{d.Weight, d.Bias} }

// Forward implements Layer; the input is flattened regardless of shape.
func (d *Dense) Forward(x *tensor.Tensor, _ bool) *tensor.Tensor {
	if x.Size() != d.In {
		panic(fmt.Sprintf("nn: Dense input size %d, want %d", x.Size(), d.In))
	}
	d.x = x
	y := tensor.MatVec(d.Weight.W, x.Data)
	for i := range y {
		y[i] += d.Bias.W.Data[i]
	}
	return tensor.FromSlice(y, d.Out)
}

// Backward implements Layer.
func (d *Dense) Backward(grad *tensor.Tensor) *tensor.Tensor {
	for o := 0; o < d.Out; o++ {
		g := grad.Data[o]
		d.Bias.G.Data[o] += g
		if g == 0 {
			continue
		}
		row := d.Weight.G.Data[o*d.In : (o+1)*d.In]
		for i, xv := range d.x.Data {
			row[i] += g * xv
		}
	}
	dx := tensor.MatVecT(d.Weight.W, grad.Data)
	return tensor.FromSlice(dx, d.x.Shape...)
}

// ---------------------------------------------------------------------------
// Sequential & residual block

// Sequential chains layers.
type Sequential struct {
	Layers []Layer
}

// NewSequential builds a chain.
func NewSequential(layers ...Layer) *Sequential { return &Sequential{Layers: layers} }

// Params implements Layer.
func (s *Sequential) Params() []*Param {
	var ps []*Param
	for _, l := range s.Layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// Forward implements Layer.
func (s *Sequential) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	for _, l := range s.Layers {
		x = l.Forward(x, train)
	}
	return x
}

// Backward implements Layer.
func (s *Sequential) Backward(grad *tensor.Tensor) *tensor.Tensor {
	for i := len(s.Layers) - 1; i >= 0; i-- {
		grad = s.Layers[i].Backward(grad)
	}
	return grad
}

// Residual is the paper's residual building block (Fig. 6(a)/(b)):
// out = ReLU(F(x) + x) where F is conv-BN-ReLU-conv-BN with matching
// channel counts.
type Residual struct {
	Body *Sequential
	relu *ReLU
	x    *tensor.Tensor
}

// NewResidual builds a residual block of two 3×3 convolutions on c
// channels.
func NewResidual(rng *rand.Rand, name string, c int) *Residual {
	return &Residual{
		Body: NewSequential(
			NewConv2D(rng, name+".conv1", c, c, 3),
			NewBatchNorm(name+".bn1", c),
			NewReLU(),
			NewConv2D(rng, name+".conv2", c, c, 3),
			NewBatchNorm(name+".bn2", c),
		),
		relu: NewReLU(),
	}
}

// Params implements Layer.
func (r *Residual) Params() []*Param { return r.Body.Params() }

// Forward implements Layer.
func (r *Residual) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	r.x = x
	f := r.Body.Forward(x, train)
	sum := f.Clone()
	sum.AddInPlace(x)
	return r.relu.Forward(sum, train)
}

// Backward implements Layer.
func (r *Residual) Backward(grad *tensor.Tensor) *tensor.Tensor {
	g := r.relu.Backward(grad)
	dxBody := r.Body.Backward(g.Clone())
	dx := dxBody.Clone()
	dx.AddInPlace(g) // shortcut path
	return dx
}

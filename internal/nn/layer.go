// Package nn is a from-scratch neural-network library implementing exactly
// the components the paper's DNN needs (Fig. 6): 2-D convolutions, batch
// normalization, max pooling, ReLU, fully connected layers, residual
// blocks, softmax/tanh heads, and plain SGD. Feature maps are tensors with
// shape (channels, height, width); training operates on single examples,
// matching the paper's per-step actor-critic updates.
//
// The compute core is kernelized: convolutions run as im2col + cache-
// blocked GEMM (tensor.Im2col / tensor.GemmNN and friends) and fully
// connected layers route through the same GEMM kernels. Every layer draws
// its outputs, gradients, and im2col scratch from an Arena, so steady-state
// Forward/Backward cycles allocate nothing; the tensors a layer returns are
// owned by the layer and valid until its next Forward/Backward call.
package nn

import (
	"fmt"
	"math"
	"math/rand"

	"routerless/internal/tensor"
)

// Param couples a learnable weight tensor with its gradient accumulator.
type Param struct {
	Name string
	W    *tensor.Tensor
	G    *tensor.Tensor
}

func newParam(name string, w *tensor.Tensor) *Param {
	return &Param{Name: name, W: w, G: w.ZerosLike()}
}

// Layer is a differentiable module. Backward consumes dL/d(output),
// accumulates parameter gradients, and returns dL/d(input). Layers cache
// their most recent Forward inputs and reuse their output/gradient buffers
// across calls; they are not reentrant and not goroutine-safe.
type Layer interface {
	Forward(x *tensor.Tensor, train bool) *tensor.Tensor
	Backward(grad *tensor.Tensor) *tensor.Tensor
	Params() []*Param
}

// ---------------------------------------------------------------------------
// Conv2D

// Conv2D is a 2-D convolution with stride 1 and zero "same" padding,
// computed as im2col + GEMM. NaiveForward/NaiveBackward retain the direct
// 6-loop formulation as the parity reference.
type Conv2D struct {
	InC, OutC, K int
	Weight       *Param // shape (OutC, InC, K, K)
	Bias         *Param // shape (OutC)

	arena *Arena
	x     *tensor.Tensor // cached input
	cols  []float64      // im2col(x), kept for Backward
	dcols []float64
	out   *tensor.Tensor
	dx    *tensor.Tensor
	// Batched-inference scratch (see batch.go); separate from the training
	// buffers so ForwardBatch never clobbers state a pending Backward needs.
	bcols []float64
	btmp  []float64
	bout  *tensor.Tensor
	// Batched-training scratch (train_batch.go); separate from both the
	// per-sample training buffers and the inference-batch buffers so an
	// interleaved ForwardBatch can never clobber a pending BackwardBatch.
	// The batched train path runs the fused padded-plane kernels
	// (tensor.ConvFwdPad/ConvDWPad/ConvDXPad) instead of im2col + GEMM, so
	// its scratch is the padded input copy rather than a column matrix.
	tx    *tensor.Tensor // cached batched input
	tpad  []float64      // zero-padded input planes, kept for BackwardBatch
	tpout []float64      // gapped output accumulation row (ConvFwdPad)
	tgp   []float64      // zero-padded gradient planes, rebuilt per sample
	trow  []float64      // gathered cols row (ConvDWPad leftover columns)
	tsrow []float64      // one-output-row scratch (ConvDXPad, outC > 4)
	tout  *tensor.Tensor
	tdx   *tensor.Tensor
}

// NewConv2D builds a conv layer with He-initialized weights.
func NewConv2D(rng *rand.Rand, name string, inC, outC, k int) *Conv2D {
	std := math.Sqrt(2.0 / float64(inC*k*k))
	return &Conv2D{
		InC: inC, OutC: outC, K: k,
		Weight: newParam(name+".w", tensor.Randn(rng, std, outC, inC, k, k)),
		Bias:   newParam(name+".b", tensor.New(outC)),
	}
}

// Params implements Layer.
func (c *Conv2D) Params() []*Param { return []*Param{c.Weight, c.Bias} }

// Forward implements Layer: out = W·im2col(x) + b, one GEMM of the
// (OutC, InC·K·K) weight matrix against the (InC·K·K, H·W) column matrix.
func (c *Conv2D) Forward(x *tensor.Tensor, _ bool) *tensor.Tensor {
	if len(x.Shape) != 3 || x.Shape[0] != c.InC {
		panic(fmt.Sprintf("nn: Conv2D input shape %v, want (%d,H,W)", x.Shape, c.InC))
	}
	c.x = x
	h, w := x.Shape[1], x.Shape[2]
	hw := h * w
	ickk := c.InC * c.K * c.K
	a := ensureArena(&c.arena)
	cols := a.slice(&c.cols, ickk*hw)
	tensor.Im2col(x.Data, c.InC, h, w, c.K, (c.K-1)/2, cols)
	out := a.tensorFor(&c.out, c.OutC, h, w)
	tensor.GemmNN(c.OutC, hw, ickk, c.Weight.W.Data, cols, out.Data, false)
	for oc := 0; oc < c.OutC; oc++ {
		b := c.Bias.W.Data[oc]
		if b == 0 {
			continue
		}
		row := out.Data[oc*hw : (oc+1)*hw]
		for i := range row {
			row[i] += b
		}
	}
	return out
}

// Backward implements Layer: dW += dY·im2col(x)ᵀ, db += row-sums of dY,
// and dX = col2im(Wᵀ·dY), reusing the column matrix cached by Forward.
func (c *Conv2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	x := c.x
	h, w := x.Shape[1], x.Shape[2]
	hw := h * w
	ickk := c.InC * c.K * c.K
	for oc := 0; oc < c.OutC; oc++ {
		s := 0.0
		for _, g := range grad.Data[oc*hw : (oc+1)*hw] {
			s += g
		}
		c.Bias.G.Data[oc] += s
	}
	tensor.GemmNT(c.OutC, ickk, hw, grad.Data, c.cols, c.Weight.G.Data, true)
	a := ensureArena(&c.arena)
	dcols := a.slice(&c.dcols, ickk*hw)
	tensor.GemmTN(ickk, hw, c.OutC, c.Weight.W.Data, grad.Data, dcols, false)
	dx := a.tensorFor(&c.dx, x.Shape...)
	tensor.Col2im(dcols, c.InC, h, w, c.K, (c.K-1)/2, dx.Data)
	return dx
}

// ---------------------------------------------------------------------------
// BatchNorm (per-channel over spatial dims; batch of one)

// BatchNorm normalizes each channel over its spatial extent, with learnable
// scale/shift and running statistics for evaluation mode.
type BatchNorm struct {
	C     int
	Gamma *Param
	Beta  *Param

	Momentum float64
	RunMean  []float64
	RunVar   []float64
	Eps      float64

	arena *Arena
	x     *tensor.Tensor
	xhat  []float64
	mean  []float64
	invSD []float64
	out   *tensor.Tensor
	dx    *tensor.Tensor
	bout  *tensor.Tensor // batched-inference scratch (batch.go)
	// Batched-training scratch (train_batch.go): per-(channel, sample)
	// statistics and normalized activations.
	txhat  []float64
	tmean  []float64
	tinvSD []float64
	tout   *tensor.Tensor
	tdx    *tensor.Tensor
}

// NewBatchNorm builds a batch-norm layer for c channels.
func NewBatchNorm(name string, c int) *BatchNorm {
	g := tensor.New(c)
	g.Fill(1)
	bn := &BatchNorm{
		C:        c,
		Gamma:    newParam(name+".gamma", g),
		Beta:     newParam(name+".beta", tensor.New(c)),
		Momentum: 0.9,
		RunMean:  make([]float64, c),
		RunVar:   make([]float64, c),
		Eps:      1e-5,
	}
	for i := range bn.RunVar {
		bn.RunVar[i] = 1
	}
	return bn
}

// Params implements Layer.
func (b *BatchNorm) Params() []*Param { return []*Param{b.Gamma, b.Beta} }

// Forward implements Layer.
func (b *BatchNorm) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if len(x.Shape) != 3 || x.Shape[0] != b.C {
		panic(fmt.Sprintf("nn: BatchNorm input %v, want (%d,H,W)", x.Shape, b.C))
	}
	h, w := x.Shape[1], x.Shape[2]
	n := h * w
	a := ensureArena(&b.arena)
	out := a.tensorFor(&b.out, x.Shape...)
	b.x = x
	xhat := a.slice(&b.xhat, x.Size())
	a.slice(&b.mean, b.C)
	a.slice(&b.invSD, b.C)
	for c := 0; c < b.C; c++ {
		ch := x.Data[c*n : (c+1)*n]
		var mean, varc float64
		if train {
			for _, v := range ch {
				mean += v
			}
			mean /= float64(n)
			for _, v := range ch {
				d := v - mean
				varc += d * d
			}
			varc /= float64(n)
			b.RunMean[c] = b.Momentum*b.RunMean[c] + (1-b.Momentum)*mean
			b.RunVar[c] = b.Momentum*b.RunVar[c] + (1-b.Momentum)*varc
		} else {
			mean, varc = b.RunMean[c], b.RunVar[c]
		}
		inv := 1 / math.Sqrt(varc+b.Eps)
		b.mean[c], b.invSD[c] = mean, inv
		g, beta := b.Gamma.W.Data[c], b.Beta.W.Data[c]
		for i, v := range ch {
			xh := (v - mean) * inv
			xhat[c*n+i] = xh
			out.Data[c*n+i] = g*xh + beta
		}
	}
	return out
}

// Backward implements Layer (training-mode gradient).
func (b *BatchNorm) Backward(grad *tensor.Tensor) *tensor.Tensor {
	h, w := b.x.Shape[1], b.x.Shape[2]
	n := h * w
	dx := ensureArena(&b.arena).tensorFor(&b.dx, b.x.Shape...)
	for c := 0; c < b.C; c++ {
		g := b.Gamma.W.Data[c]
		var sumDy, sumDyXhat float64
		for i := 0; i < n; i++ {
			dy := grad.Data[c*n+i]
			sumDy += dy
			sumDyXhat += dy * b.xhat[c*n+i]
		}
		b.Gamma.G.Data[c] += sumDyXhat
		b.Beta.G.Data[c] += sumDy
		inv := b.invSD[c]
		for i := 0; i < n; i++ {
			dy := grad.Data[c*n+i]
			xh := b.xhat[c*n+i]
			dx.Data[c*n+i] = g * inv / float64(n) *
				(float64(n)*dy - sumDy - xh*sumDyXhat)
		}
	}
	return dx
}

// ---------------------------------------------------------------------------
// ReLU

// ReLU is the rectified linear activation.
type ReLU struct {
	arena *Arena
	mask  []bool
	out   *tensor.Tensor
	dx    *tensor.Tensor
	bout  *tensor.Tensor // batched-inference scratch (batch.go)
	// Batched-training scratch (train_batch.go).
	tmask []bool
	tout  *tensor.Tensor
	tdx   *tensor.Tensor
}

// NewReLU builds a ReLU layer.
func NewReLU() *ReLU { return &ReLU{} }

// Params implements Layer.
func (r *ReLU) Params() []*Param { return nil }

// Forward implements Layer.
func (r *ReLU) Forward(x *tensor.Tensor, _ bool) *tensor.Tensor {
	a := ensureArena(&r.arena)
	out := a.tensorFor(&r.out, x.Shape...)
	mask := a.bools(&r.mask, x.Size())
	for i, v := range x.Data {
		if v <= 0 {
			out.Data[i] = 0
			mask[i] = false
		} else {
			out.Data[i] = v
			mask[i] = true
		}
	}
	return out
}

// Backward implements Layer.
func (r *ReLU) Backward(grad *tensor.Tensor) *tensor.Tensor {
	dx := ensureArena(&r.arena).tensorFor(&r.dx, grad.Shape...)
	for i, v := range grad.Data {
		if r.mask[i] {
			dx.Data[i] = v
		} else {
			dx.Data[i] = 0
		}
	}
	return dx
}

// ---------------------------------------------------------------------------
// MaxPool 2x2 stride 2

// MaxPool halves spatial dimensions with 2×2 windows (odd trailing
// rows/columns are dropped, as in the paper's "pool, /2" stages).
type MaxPool struct {
	arena  *Arena
	argmax []int
	inSh   []int
	out    *tensor.Tensor
	dx     *tensor.Tensor
	bout   *tensor.Tensor // batched-inference scratch (batch.go)
	// Batched-training scratch (train_batch.go).
	targmax []int
	tinSh   []int
	tout    *tensor.Tensor
	tdx     *tensor.Tensor
}

// NewMaxPool builds the pooling layer.
func NewMaxPool() *MaxPool { return &MaxPool{} }

// Params implements Layer.
func (p *MaxPool) Params() []*Param { return nil }

// Forward implements Layer.
func (p *MaxPool) Forward(x *tensor.Tensor, _ bool) *tensor.Tensor {
	c, h, w := x.Shape[0], x.Shape[1], x.Shape[2]
	oh, ow := h/2, w/2
	if oh < 1 || ow < 1 {
		panic(fmt.Sprintf("nn: MaxPool input %v too small", x.Shape))
	}
	a := ensureArena(&p.arena)
	out := a.tensorFor(&p.out, c, oh, ow)
	argmax := a.ints(&p.argmax, out.Size())
	inSh := a.ints(&p.inSh, 3)
	copy(inSh, x.Shape)
	for ci := 0; ci < c; ci++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				// Initialize from the first window element so NaN inputs
				// (diverged training) degrade gracefully instead of
				// leaving the argmax unset.
				bestIdx := (ci*h+2*oy)*w + 2*ox
				best := x.Data[bestIdx]
				for dy := 0; dy < 2; dy++ {
					for dx := 0; dx < 2; dx++ {
						idx := (ci*h+2*oy+dy)*w + 2*ox + dx
						if x.Data[idx] > best {
							best = x.Data[idx]
							bestIdx = idx
						}
					}
				}
				oi := (ci*oh+oy)*ow + ox
				out.Data[oi] = best
				argmax[oi] = bestIdx
			}
		}
	}
	return out
}

// Backward implements Layer.
func (p *MaxPool) Backward(grad *tensor.Tensor) *tensor.Tensor {
	dx := ensureArena(&p.arena).tensorFor(&p.dx, p.inSh...)
	dx.Fill(0)
	for oi, idx := range p.argmax {
		dx.Data[idx] += grad.Data[oi]
	}
	return dx
}

// ---------------------------------------------------------------------------
// Dense (fully connected)

// Dense is a fully connected layer on flattened inputs, routed through the
// same GEMM kernels as the convolutions (n=1 column).
type Dense struct {
	In, Out int
	Weight  *Param // (Out, In)
	Bias    *Param // (Out)

	arena *Arena
	x     *tensor.Tensor
	out   *tensor.Tensor
	dx    *tensor.Tensor
	bout  *tensor.Tensor // batched-inference scratch (batch.go)
	// Batched-training scratch (train_batch.go): sample-major rows.
	tx   *tensor.Tensor
	tout *tensor.Tensor
	tdx  *tensor.Tensor
}

// NewDense builds an FC layer with Xavier-initialized weights.
func NewDense(rng *rand.Rand, name string, in, out int) *Dense {
	std := math.Sqrt(1.0 / float64(in))
	return &Dense{
		In: in, Out: out,
		Weight: newParam(name+".w", tensor.Randn(rng, std, out, in)),
		Bias:   newParam(name+".b", tensor.New(out)),
	}
}

// Params implements Layer.
func (d *Dense) Params() []*Param { return []*Param{d.Weight, d.Bias} }

// Forward implements Layer; the input is flattened regardless of shape.
func (d *Dense) Forward(x *tensor.Tensor, _ bool) *tensor.Tensor {
	if x.Size() != d.In {
		panic(fmt.Sprintf("nn: Dense input size %d, want %d", x.Size(), d.In))
	}
	d.x = x
	y := ensureArena(&d.arena).tensorFor(&d.out, d.Out)
	tensor.GemmNN(d.Out, 1, d.In, d.Weight.W.Data, x.Data, y.Data, false)
	for i := range y.Data {
		y.Data[i] += d.Bias.W.Data[i]
	}
	return y
}

// Backward implements Layer: dW += dY·xᵀ (outer product), db += dY,
// dX = Wᵀ·dY, shaped like the cached input.
func (d *Dense) Backward(grad *tensor.Tensor) *tensor.Tensor {
	tensor.GemmNT(d.Out, d.In, 1, grad.Data, d.x.Data, d.Weight.G.Data, true)
	for o := 0; o < d.Out; o++ {
		d.Bias.G.Data[o] += grad.Data[o]
	}
	dx := ensureArena(&d.arena).tensorFor(&d.dx, d.x.Shape...)
	tensor.GemmTN(d.In, 1, d.Out, d.Weight.W.Data, grad.Data, dx.Data, false)
	return dx
}

// ---------------------------------------------------------------------------
// Sequential & residual block

// Sequential chains layers.
type Sequential struct {
	Layers []Layer
}

// NewSequential builds a chain.
func NewSequential(layers ...Layer) *Sequential { return &Sequential{Layers: layers} }

// Params implements Layer.
func (s *Sequential) Params() []*Param {
	var ps []*Param
	for _, l := range s.Layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// Forward implements Layer.
func (s *Sequential) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	for _, l := range s.Layers {
		x = l.Forward(x, train)
	}
	return x
}

// Backward implements Layer.
func (s *Sequential) Backward(grad *tensor.Tensor) *tensor.Tensor {
	for i := len(s.Layers) - 1; i >= 0; i-- {
		grad = s.Layers[i].Backward(grad)
	}
	return grad
}

// Residual is the paper's residual building block (Fig. 6(a)/(b)):
// out = ReLU(F(x) + x) where F is conv-BN-ReLU-conv-BN with matching
// channel counts.
type Residual struct {
	Body  *Sequential
	relu  *ReLU
	arena *Arena
	x     *tensor.Tensor
	sum   *tensor.Tensor
	dx    *tensor.Tensor
	bsum  *tensor.Tensor // batched-inference scratch (batch.go)
	// Batched-training scratch (train_batch.go).
	tsum *tensor.Tensor
	tdx  *tensor.Tensor
}

// NewResidual builds a residual block of two 3×3 convolutions on c
// channels.
func NewResidual(rng *rand.Rand, name string, c int) *Residual {
	return &Residual{
		Body: NewSequential(
			NewConv2D(rng, name+".conv1", c, c, 3),
			NewBatchNorm(name+".bn1", c),
			NewReLU(),
			NewConv2D(rng, name+".conv2", c, c, 3),
			NewBatchNorm(name+".bn2", c),
		),
		relu: NewReLU(),
	}
}

// Params implements Layer.
func (r *Residual) Params() []*Param { return r.Body.Params() }

// Forward implements Layer.
func (r *Residual) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	r.x = x
	f := r.Body.Forward(x, train)
	sum := ensureArena(&r.arena).tensorFor(&r.sum, x.Shape...)
	copy(sum.Data, f.Data)
	sum.AddInPlace(x)
	return r.relu.Forward(sum, train)
}

// Backward implements Layer. The post-sum ReLU gradient g feeds both the
// body and the shortcut; g lives in r.relu's buffer, which no body layer
// writes, so it can be passed through and reread without copying.
func (r *Residual) Backward(grad *tensor.Tensor) *tensor.Tensor {
	g := r.relu.Backward(grad)
	dxBody := r.Body.Backward(g)
	dx := ensureArena(&r.arena).tensorFor(&r.dx, r.x.Shape...)
	copy(dx.Data, dxBody.Data)
	dx.AddInPlace(g) // shortcut path
	return dx
}

package nn

import (
	"encoding/json"
	"fmt"
	"math"
)

// Momentum is SGD with classical momentum, useful for the longer searches
// where plain SGD (the paper's Eqs. 19–20) converges slowly.
type Momentum struct {
	LR    float64
	Beta  float64 // momentum coefficient, e.g. 0.9
	Clip  float64
	vel   [][]float64
	bound *PolicyValueNet
}

// NewMomentum builds the optimizer for a specific network.
func NewMomentum(net *PolicyValueNet, lr, beta, clip float64) *Momentum {
	m := &Momentum{LR: lr, Beta: beta, Clip: clip, bound: net}
	for _, p := range net.Params() {
		m.vel = append(m.vel, make([]float64, p.W.Size()))
	}
	return m
}

// Step applies accumulated gradients with momentum and clears them.
func (m *Momentum) Step(net *PolicyValueNet) {
	if net != m.bound {
		panic("nn: Momentum optimizer bound to a different network")
	}
	for i, p := range net.Params() {
		v := m.vel[i]
		for j := range p.W.Data {
			g := p.G.Data[j]
			if m.Clip > 0 {
				if g > m.Clip {
					g = m.Clip
				} else if g < -m.Clip {
					g = -m.Clip
				}
			}
			v[j] = m.Beta*v[j] + g
			p.W.Data[j] -= m.LR * v[j]
		}
	}
	net.ZeroGrads()
}

// Adam is the adaptive-moment optimizer; provided for completeness of the
// training toolkit (the paper itself uses plain SGD).
type Adam struct {
	LR, Beta1, Beta2, Eps float64
	t                     int
	m, v                  [][]float64
	bound                 *PolicyValueNet
}

// NewAdam builds Adam with standard defaults for the network.
func NewAdam(net *PolicyValueNet, lr float64) *Adam {
	a := &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8, bound: net}
	for _, p := range net.Params() {
		a.m = append(a.m, make([]float64, p.W.Size()))
		a.v = append(a.v, make([]float64, p.W.Size()))
	}
	return a
}

// Step applies accumulated gradients and clears them.
func (a *Adam) Step(net *PolicyValueNet) {
	if net != a.bound {
		panic("nn: Adam optimizer bound to a different network")
	}
	a.t++
	c1 := 1 - math.Pow(a.Beta1, float64(a.t))
	c2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for i, p := range net.Params() {
		for j := range p.W.Data {
			g := p.G.Data[j]
			a.m[i][j] = a.Beta1*a.m[i][j] + (1-a.Beta1)*g
			a.v[i][j] = a.Beta2*a.v[i][j] + (1-a.Beta2)*g*g
			mh := a.m[i][j] / c1
			vh := a.v[i][j] / c2
			p.W.Data[j] -= a.LR * mh / (math.Sqrt(vh) + a.Eps)
		}
	}
	net.ZeroGrads()
}

// ---------------------------------------------------------------------------
// Model serialization

// modelJSON is the on-disk network format.
type modelJSON struct {
	Config  Config    `json:"config"`
	Weights []float64 `json:"weights"`
	// RunStats holds the batch-norm running statistics, which are state
	// but not weights.
	RunStats [][]float64 `json:"run_stats"`
}

// MarshalModel serializes the network (architecture + weights + BN
// running statistics) to JSON, so long searches can resume across runs of
// cmd/nocexplore.
func MarshalModel(net *PolicyValueNet) ([]byte, error) {
	m := modelJSON{Config: net.Cfg, Weights: net.GetWeights()}
	for _, bn := range net.batchNorms() {
		m.RunStats = append(m.RunStats, append([]float64(nil), bn.RunMean...))
		m.RunStats = append(m.RunStats, append([]float64(nil), bn.RunVar...))
	}
	return json.Marshal(m)
}

// UnmarshalModel reconstructs a network from MarshalModel output.
func UnmarshalModel(data []byte) (*PolicyValueNet, error) {
	var m modelJSON
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, err
	}
	net := NewPolicyValueNet(m.Config, 0)
	if len(m.Weights) != net.NumParams() {
		return nil, fmt.Errorf("nn: model has %d weights, architecture needs %d",
			len(m.Weights), net.NumParams())
	}
	net.SetWeights(m.Weights)
	bns := net.batchNorms()
	if len(m.RunStats) != 2*len(bns) {
		return nil, fmt.Errorf("nn: model has %d BN stat vectors, want %d",
			len(m.RunStats), 2*len(bns))
	}
	for i, bn := range bns {
		copy(bn.RunMean, m.RunStats[2*i])
		copy(bn.RunVar, m.RunStats[2*i+1])
	}
	return net, nil
}

// batchNorms walks the network collecting BatchNorm layers in a stable
// order.
func (n *PolicyValueNet) batchNorms() []*BatchNorm {
	var out []*BatchNorm
	var walk func(l Layer)
	walk = func(l Layer) {
		switch v := l.(type) {
		case *BatchNorm:
			out = append(out, v)
		case *Sequential:
			for _, inner := range v.Layers {
				walk(inner)
			}
		case *Residual:
			walk(v.Body)
		}
	}
	walk(n.trunk)
	walk(n.pConv)
	walk(n.dConv)
	walk(n.vConv)
	return out
}

package nn

import (
	"encoding/json"
	"math"
	"math/rand"
	"testing"
)

var (
	jsonMarshal   = json.Marshal
	jsonUnmarshal = json.Unmarshal
)

// trainValueWith drives the value head toward a target with the given
// stepper and returns the final absolute error.
func trainValueWith(t *testing.T, step func(*PolicyValueNet), net *PolicyValueNet, target float64, iters int) float64 {
	t.Helper()
	in := randomHopMatrix(rand.New(rand.NewSource(31)), 4)
	var zero [4][]float64
	for g := range zero {
		zero[g] = make([]float64, 4)
	}
	for i := 0; i < iters; i++ {
		o := net.Forward(in, true)
		net.ZeroGrads()
		net.Backward(zero, 0, 2*(o.Value-target))
		step(net)
	}
	return math.Abs(net.Forward(in, false).Value - target)
}

func TestMomentumConverges(t *testing.T) {
	net := NewPolicyValueNet(TestConfig(4), 41)
	opt := NewMomentum(net, 5e-3, 0.9, 1)
	err := trainValueWith(t, opt.Step, net, -1.5, 120)
	if err > 0.5 {
		t.Fatalf("momentum error = %v", err)
	}
}

func TestAdamConverges(t *testing.T) {
	net := NewPolicyValueNet(TestConfig(4), 42)
	opt := NewAdam(net, 5e-3)
	err := trainValueWith(t, opt.Step, net, -1.5, 120)
	if err > 0.5 {
		t.Fatalf("adam error = %v", err)
	}
}

func TestMomentumBeatsPlainSGDOnSameBudget(t *testing.T) {
	mkErr := func(useMomentum bool) float64 {
		net := NewPolicyValueNet(TestConfig(4), 43)
		if useMomentum {
			opt := NewMomentum(net, 2e-3, 0.9, 1)
			return trainValueWith(t, opt.Step, net, -3, 60)
		}
		sgd := SGD{LR: 2e-3, Clip: 1}
		return trainValueWith(t, sgd.Step, net, -3, 60)
	}
	plain, mom := mkErr(false), mkErr(true)
	if mom >= plain {
		t.Logf("momentum %v vs sgd %v (not strictly better; acceptable)", mom, plain)
	}
	if mom > 2.5 {
		t.Fatalf("momentum made little progress: %v", mom)
	}
}

func TestOptimizerBoundToNetwork(t *testing.T) {
	a := NewPolicyValueNet(TestConfig(4), 1)
	b := NewPolicyValueNet(TestConfig(4), 2)
	opt := NewMomentum(a, 1e-3, 0.9, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for mismatched network")
		}
	}()
	opt.Step(b)
}

func TestModelRoundTrip(t *testing.T) {
	net := NewPolicyValueNet(TestConfig(4), 17)
	// Touch BN running stats so they are nontrivial.
	in := randomHopMatrix(rand.New(rand.NewSource(18)), 4)
	for i := 0; i < 5; i++ {
		net.Forward(in, true)
	}
	want := net.Forward(in, false)

	data, err := MarshalModel(net)
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalModel(data)
	if err != nil {
		t.Fatal(err)
	}
	got := back.Forward(in, false)
	if got.Value != want.Value || got.Dir != want.Dir {
		t.Fatalf("round trip changed outputs: %v/%v vs %v/%v",
			got.Value, got.Dir, want.Value, want.Dir)
	}
	for g := 0; g < 4; g++ {
		for i := range want.CoordProbs[g] {
			if got.CoordProbs[g][i] != want.CoordProbs[g][i] {
				t.Fatal("policy probs differ after round trip")
			}
		}
	}
}

func TestUnmarshalModelRejectsCorrupt(t *testing.T) {
	if _, err := UnmarshalModel([]byte("{")); err == nil {
		t.Fatal("accepted malformed JSON")
	}
	net := NewPolicyValueNet(TestConfig(4), 1)
	data, _ := MarshalModel(net)
	// Truncate the weights array by re-marshalling a tampered struct.
	var m map[string]interface{}
	if err := jsonUnmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	m["weights"] = []float64{1, 2, 3}
	bad, _ := jsonMarshal(m)
	if _, err := UnmarshalModel(bad); err == nil {
		t.Fatal("accepted weight-count mismatch")
	}
}

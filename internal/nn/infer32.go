package nn

import (
	"fmt"
	"math"

	"routerless/internal/tensor"
)

// Float32 inference engine. An InferNet is a read-only float32 shadow of a
// PolicyValueNet built for the batched-inference broker (internal/infer):
// half the working set of the f64 path, which is exactly what
// BENCH_PR5.json showed falling out of cache at B ≥ 8 on 8×8 nets.
//
// Precision policy: f64 is the training and oracle arithmetic — every
// byte-identity guarantee (ForwardBatch == Forward, brokered search ==
// legacy search) lives there and is untouched by this file. The f32 engine
// is inference-only and one-way: Sync quantizes the source net's current
// f64 parameters into the f32 shadows (BatchNorm folds γ/β/RunMean/RunVar
// into one fused per-channel scale+shift, so eval-mode BN becomes a single
// multiply-add), and nothing ever flows back. Its contract is tolerance
// parity (≤1e-4 relative on priors and value against the f64 net), pinned
// by the parity tests in infer32_test.go.
//
// Scheduling: the batch is depth-blocked — split into tiles of at most
// inferTileBudget/perSample samples, and each tile streams through the
// whole layer chain before the next tile starts. Activation scratch is
// sized by the tile, not the batch, so B×activations never exceeds the
// cache budget no matter how large the broker's batch grows. Convolution
// column panels are bounded separately by batchColsBudget (the same 4 MiB
// chunking machinery as the f64 batch path). Tiling is invisible in the
// results: every kernel's per-element reduction order is independent of
// the batch/column count (see tensor/gemm32.go), so the tiled forward is
// bit-for-bit identical to the untiled one — TestInferNetTilingInvariance
// pins this.
//
// Ownership mirrors the f64 arena rule: an InferNet is not goroutine-safe
// and is owned by whoever owns its source net (the broker's evaluation
// goroutine). After Warm, steady-state ForwardBatch calls allocate
// nothing.

// inferTileBudget bounds, in float32 scalars, the per-tile activation
// working set of the depth-blocked f32 forward (default 1<<20 scalars =
// 4 MiB). A package variable so tests can force specific tile shapes.
var inferTileBudget = 1 << 20

// inferOp is one layer's f32 inference mirror. forward reads a
// channel-major (C, B, H, W) activation and returns the op-owned output;
// sync re-quantizes parameters from the f64 source layer; plan reports the
// output shape and the op's per-sample scratch footprint in scalars.
type inferOp interface {
	sync()
	forward(x *act32) *act32
	plan(c, h, w int) (oc, oh, ow, scalars int)
}

// act32 is a channel-major (C, B, H, W) float32 activation with reusable
// backing storage.
type act32 struct {
	data       []float32
	c, nb, h, w int
}

func (a *act32) reshape(c, nb, h, w int) {
	n := c * nb * h * w
	if cap(a.data) < n {
		a.data = make([]float32, n)
	}
	a.data = a.data[:n]
	a.c, a.nb, a.h, a.w = c, nb, h, w
}

// grow32 resizes *p to length n, allocating only when capacity is
// insufficient; contents are unspecified (callers fully overwrite).
func grow32(p *[]float32, n int) []float32 {
	s := *p
	if cap(s) < n {
		s = make([]float32, n)
	}
	s = s[:n]
	*p = s
	return s
}

// quant32 quantizes src into *p (resized to match).
func quant32(p *[]float32, src []float64) []float32 {
	d := grow32(p, len(src))
	for i, v := range src {
		d[i] = float32(v)
	}
	return d
}

// ---------------------------------------------------------------------------
// Layer mirrors

type conv32 struct {
	src       *Conv2D
	w, b      []float32
	cols, tmp []float32
	out       act32
}

func (o *conv32) sync() {
	quant32(&o.w, o.src.Weight.W.Data)
	quant32(&o.b, o.src.Bias.W.Data)
}

func (o *conv32) plan(c, h, w int) (int, int, int, int) {
	return o.src.OutC, h, w, o.src.OutC * h * w
}

func (o *conv32) forward(x *act32) *act32 {
	nb, h, w := x.nb, x.h, x.w
	hw := h * w
	k := o.src.K
	ickk := o.src.InC * k * k
	outC := o.src.OutC
	o.out.reshape(outC, nb, h, w)
	chunk := nb
	if m := batchColsBudget / (ickk * hw); m < chunk {
		chunk = max(1, m)
	}
	cols := grow32(&o.cols, ickk*chunk*hw)
	var tmp []float32
	if chunk < nb {
		tmp = grow32(&o.tmp, outC*chunk*hw)
	}
	for s0 := 0; s0 < nb; s0 += chunk {
		cb := min(chunk, nb-s0)
		tensor.Im2colBatch32(x.data, o.src.InC, nb, s0, cb, h, w, k, (k-1)/2, cols)
		if cb == nb {
			tensor.GemmNN32(outC, cb*hw, ickk, o.w, cols, o.out.data, false)
		} else {
			tensor.GemmNN32(outC, cb*hw, ickk, o.w, cols, tmp, false)
			for oc := 0; oc < outC; oc++ {
				copy(o.out.data[(oc*nb+s0)*hw:(oc*nb+s0+cb)*hw], tmp[oc*cb*hw:(oc+1)*cb*hw])
			}
		}
	}
	for oc := 0; oc < outC; oc++ {
		bv := o.b[oc]
		if bv == 0 {
			continue
		}
		row := o.out.data[oc*nb*hw : (oc+1)*nb*hw]
		for i := range row {
			row[i] += bv
		}
	}
	return &o.out
}

// bn32 is eval-mode BatchNorm folded to one affine transform per channel:
// scale = γ/√(RunVar+ε), shift = β − RunMean·scale, both computed in f64 at
// sync time and quantized once — the per-element cost drops from
// subtract/scale/scale/add to a single fused multiply-add.
type bn32 struct {
	src          *BatchNorm
	scale, shift []float32
	out          act32
}

func (o *bn32) sync() {
	c := o.src.C
	scale := grow32(&o.scale, c)
	shift := grow32(&o.shift, c)
	for i := 0; i < c; i++ {
		ginv := o.src.Gamma.W.Data[i] / math.Sqrt(o.src.RunVar[i]+o.src.Eps)
		scale[i] = float32(ginv)
		shift[i] = float32(o.src.Beta.W.Data[i] - o.src.RunMean[i]*ginv)
	}
}

func (o *bn32) plan(c, h, w int) (int, int, int, int) {
	return c, h, w, c * h * w
}

func (o *bn32) forward(x *act32) *act32 {
	n := x.nb * x.h * x.w
	o.out.reshape(x.c, x.nb, x.h, x.w)
	for c := 0; c < x.c; c++ {
		s, sh := o.scale[c], o.shift[c]
		src := x.data[c*n : (c+1)*n]
		dst := o.out.data[c*n : (c+1)*n]
		for i, v := range src {
			dst[i] = s*v + sh
		}
	}
	return &o.out
}

type relu32 struct {
	out act32
}

func (o *relu32) sync() {}

func (o *relu32) plan(c, h, w int) (int, int, int, int) {
	return c, h, w, c * h * w
}

func (o *relu32) forward(x *act32) *act32 {
	o.out.reshape(x.c, x.nb, x.h, x.w)
	for i, v := range x.data {
		if v <= 0 {
			o.out.data[i] = 0
		} else {
			o.out.data[i] = v
		}
	}
	return &o.out
}

type pool32 struct {
	out act32
}

func (o *pool32) sync() {}

func (o *pool32) plan(c, h, w int) (int, int, int, int) {
	return c, h / 2, w / 2, c * (h / 2) * (w / 2)
}

func (o *pool32) forward(x *act32) *act32 {
	c, nb, h, w := x.c, x.nb, x.h, x.w
	oh, ow := h/2, w/2
	if oh < 1 || ow < 1 {
		panic(fmt.Sprintf("nn: f32 MaxPool input (%d,%d,%d,%d) too small", c, nb, h, w))
	}
	o.out.reshape(c, nb, oh, ow)
	for plane := 0; plane < c*nb; plane++ {
		src := x.data[plane*h*w : (plane+1)*h*w]
		dst := o.out.data[plane*oh*ow : (plane+1)*oh*ow]
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				best := src[2*oy*w+2*ox]
				for dy := 0; dy < 2; dy++ {
					for dx := 0; dx < 2; dx++ {
						if v := src[(2*oy+dy)*w+2*ox+dx]; v > best {
							best = v
						}
					}
				}
				dst[oy*ow+ox] = best
			}
		}
	}
	return &o.out
}

// residual32 fuses the shortcut add and the trailing ReLU:
// out = max(0, F(x)+x) elementwise, matching the f64 expression.
type residual32 struct {
	body []inferOp
	out  act32
}

func (o *residual32) sync() {
	for _, op := range o.body {
		op.sync()
	}
}

func (o *residual32) plan(c, h, w int) (int, int, int, int) {
	total := c * h * w // fused sum+relu output
	bc, bh, bw := c, h, w
	for _, op := range o.body {
		var s int
		bc, bh, bw, s = op.plan(bc, bh, bw)
		total += s
	}
	if bc != c || bh != h || bw != w {
		panic("nn: residual body changes shape")
	}
	return c, h, w, total
}

func (o *residual32) forward(x *act32) *act32 {
	f := x
	for _, op := range o.body {
		f = op.forward(f)
	}
	o.out.reshape(x.c, x.nb, x.h, x.w)
	for i, v := range f.data {
		s := v + x.data[i]
		if s <= 0 {
			s = 0
		}
		o.out.data[i] = s
	}
	return &o.out
}

// dense32 evaluates an FC layer on sample-major (B, In) rows through
// MatVecBatch32, whose per-sample dot-product order matches the f32
// matrix–vector fast path regardless of the batch size.
type dense32 struct {
	src  *Dense
	w, b []float32
	out  []float32
}

func (d *dense32) sync() {
	quant32(&d.w, d.src.Weight.W.Data)
	quant32(&d.b, d.src.Bias.W.Data)
}

func (d *dense32) rows(x []float32, nb int) []float32 {
	m := d.src.Out
	out := grow32(&d.out, nb*m)
	tensor.MatVecBatch32(m, d.src.In, nb, d.w, x, out)
	for bi := 0; bi < nb; bi++ {
		row := out[bi*m : (bi+1)*m]
		for o := range row {
			row[o] += d.b[o]
		}
	}
	return out
}

// pack32 transposes a channel-major (C, B, H, W) activation into
// sample-major (B, C·H·W) rows, the flattening the Dense heads expect.
func pack32(p *[]float32, src *act32) []float32 {
	c, nb := src.c, src.nb
	hw := src.h * src.w
	dst := grow32(p, nb*c*hw)
	for ci := 0; ci < c; ci++ {
		for bi := 0; bi < nb; bi++ {
			copy(dst[bi*c*hw+ci*hw:bi*c*hw+(ci+1)*hw],
				src.data[(ci*nb+bi)*hw:(ci*nb+bi+1)*hw])
		}
	}
	return dst
}

// ---------------------------------------------------------------------------
// InferNet

// InferNet is the float32 inference shadow of a PolicyValueNet; see the
// package comment at the top of this file for the precision policy and
// scheduling. Construct with NewInferNet, refresh with Sync after the
// source net's weights or BatchNorm statistics change, and evaluate with
// ForwardBatch.
type InferNet struct {
	Cfg Config
	src *PolicyValueNet

	trunk               []inferOp
	pConv, dConv, vConv []inferOp
	pFC1, pFC2          *dense32
	dFC, vFC            *dense32

	in         act32
	px, dx, vx []float32
	// perSample is the per-sample activation scratch footprint in scalars,
	// computed once from the layer plan; it sizes the depth-block tiles.
	perSample int
}

// buildOps mirrors the f64 layer tree into f32 inference ops.
func buildOps(l Layer, dst []inferOp) []inferOp {
	switch v := l.(type) {
	case *Sequential:
		for _, inner := range v.Layers {
			dst = buildOps(inner, dst)
		}
	case *Conv2D:
		dst = append(dst, &conv32{src: v})
	case *BatchNorm:
		dst = append(dst, &bn32{src: v})
	case *ReLU:
		dst = append(dst, &relu32{})
	case *MaxPool:
		dst = append(dst, &pool32{})
	case *Residual:
		dst = append(dst, &residual32{body: buildOps(v.Body, nil)})
	default:
		panic(fmt.Sprintf("nn: layer %T has no f32 inference mirror", l))
	}
	return dst
}

// NewInferNet builds the f32 shadow of src and performs the initial Sync.
// The InferNet keeps references into src's layers: it must not outlive the
// source net, and Sync must be called whenever src's parameters change.
func NewInferNet(src *PolicyValueNet) *InferNet {
	n := &InferNet{
		Cfg:   src.Cfg,
		src:   src,
		trunk: buildOps(src.trunk, nil),
		pConv: buildOps(src.pConv, nil),
		dConv: buildOps(src.dConv, nil),
		vConv: buildOps(src.vConv, nil),
		pFC1:  &dense32{src: src.pFC1},
		pFC2:  &dense32{src: src.pFC2},
		dFC:   &dense32{src: src.dFC},
		vFC:   &dense32{src: src.vFC},
	}
	// Per-sample footprint: the converted input plus every op output along
	// the trunk, plus the three head branches (conv ops, sample-major pack,
	// dense rows). Column panels are excluded — they are bounded globally
	// by batchColsBudget, not scaled by the tile.
	side := src.Cfg.N * src.Cfg.N
	c, h, w := 1, side, side
	total := side * side
	for _, op := range n.trunk {
		var s int
		c, h, w, s = op.plan(c, h, w)
		total += s
	}
	for _, head := range [][]inferOp{n.pConv, n.dConv, n.vConv} {
		hc, hh, hw := c, h, w
		for _, op := range head {
			var s int
			hc, hh, hw, s = op.plan(hc, hh, hw)
			total += s
		}
		total += hc * hh * hw // pack buffer
	}
	total += n.pFC1.src.Out + n.pFC2.src.Out + n.dFC.src.Out + n.vFC.src.Out
	n.perSample = total
	n.Sync()
	return n
}

// Sync re-quantizes every parameter from the source net: weights and
// biases one-way f64→f32, BatchNorm running statistics folded into fused
// scale+shift. Call after each weight/statistics update on the source net;
// allocation-free after the first call.
func (n *InferNet) Sync() {
	for _, ops := range [][]inferOp{n.trunk, n.pConv, n.dConv, n.vConv} {
		for _, op := range ops {
			op.sync()
		}
	}
	n.pFC1.sync()
	n.pFC2.sync()
	n.dFC.sync()
	n.vFC.sync()
}

// TileSize reports the depth-block tile the engine would use for a batch
// of nb samples under the current budget (an observability/testing hook).
func (n *InferNet) TileSize(nb int) int {
	tile := nb
	if t := inferTileBudget / n.perSample; t < tile {
		tile = max(1, t)
	}
	return tile
}

// ForwardBatch evaluates len(states) hop-count matrices in f32 inference
// mode, filling outs[i] for states[i]; the contract mirrors the f64
// PolicyValueNet.ForwardBatch (outputs do not alias network buffers,
// output slices are reused, warmed calls allocate nothing) except that
// results carry f32 tolerance parity rather than byte identity. The batch
// is processed in depth-block tiles; results are independent of the
// tiling.
func (n *InferNet) ForwardBatch(states [][]float64, outs []Output) {
	nb := len(states)
	if nb == 0 {
		return
	}
	if len(outs) < nb {
		panic(fmt.Sprintf("nn: InferNet.ForwardBatch got %d outputs for %d states", len(outs), nb))
	}
	tile := n.TileSize(nb)
	for s0 := 0; s0 < nb; s0 += tile {
		cb := min(tile, nb-s0)
		n.forwardTile(states[s0:s0+cb], outs[s0:s0+cb])
	}
}

func (n *InferNet) forwardTile(states [][]float64, outs []Output) {
	cb := len(states)
	side := n.Cfg.N * n.Cfg.N
	n.in.reshape(1, cb, side, side)
	norm := 5 * float64(n.Cfg.N)
	for bi, st := range states {
		if len(st) != side*side {
			panic(fmt.Sprintf("nn: input length %d, want %d", len(st), side*side))
		}
		dst := n.in.data[bi*side*side : (bi+1)*side*side]
		for i, v := range st {
			dst[i] = float32(v / norm)
		}
	}
	x := &n.in
	for _, op := range n.trunk {
		x = op.forward(x)
	}

	// Policy coordinates; the hidden ReLU runs in place on the dense rows.
	pc := x
	for _, op := range n.pConv {
		pc = op.forward(pc)
	}
	h1 := n.pFC1.rows(pack32(&n.px, pc), cb)
	for i, v := range h1 {
		if v <= 0 {
			h1[i] = 0
		}
	}
	logits := n.pFC2.rows(h1, cb)
	// Direction.
	dc := x
	for _, op := range n.dConv {
		dc = op.forward(dc)
	}
	dpre := n.dFC.rows(pack32(&n.dx, dc), cb)
	// Value.
	vc := x
	for _, op := range n.vConv {
		vc = op.forward(vc)
	}
	val := n.vFC.rows(pack32(&n.vx, vc), cb)

	nc := n.Cfg.N
	for bi := 0; bi < cb; bi++ {
		out := &outs[bi]
		lrow := logits[bi*4*nc : (bi+1)*4*nc]
		for g := 0; g < 4; g++ {
			if cap(out.CoordLogits[g]) < nc {
				out.CoordLogits[g] = make([]float64, nc)
				out.CoordProbs[g] = make([]float64, nc)
			}
			out.CoordLogits[g] = out.CoordLogits[g][:nc]
			out.CoordProbs[g] = out.CoordProbs[g][:nc]
			for i := 0; i < nc; i++ {
				out.CoordLogits[g][i] = float64(lrow[g*nc+i])
			}
			tensor.SoftmaxInto(out.CoordProbs[g], out.CoordLogits[g])
		}
		out.DirPre = float64(dpre[bi])
		out.Dir = math.Tanh(out.DirPre)
		out.Value = float64(val[bi])
	}
}

// Warm runs one throwaway batched forward of b blank states so the f32
// scratch is sized for batches up to b (one depth-block tile's worth of
// activations plus the per-conv column panels); subsequent ForwardBatch
// calls of any size ≤ b are allocation-free.
func (n *InferNet) Warm(b int) {
	if b < 1 {
		return
	}
	side := n.Cfg.N * n.Cfg.N
	states := make([][]float64, b)
	for i := range states {
		states[i] = make([]float64, side*side)
	}
	n.ForwardBatch(states, make([]Output, b))
}

package nn

import (
	"fmt"
	"math"
	"math/rand"

	"routerless/internal/tensor"
)

// Config sizes the two-headed policy/value network of Fig. 6(c).
type Config struct {
	// N is the NoC side length; the input is an N²×N² hop-count matrix.
	N int
	// BaseChannels is the width of the first stage (paper: 16); later
	// stages use 2×, 4× and 8× that width. Tests shrink this.
	BaseChannels int
	// Pools is how many 2× max-pool stages to apply (paper: 3). It is
	// clamped so the spatial extent never vanishes.
	Pools int
}

// DefaultConfig returns the paper's architecture for an N×N NoC.
func DefaultConfig(n int) Config { return Config{N: n, BaseChannels: 16, Pools: 3} }

// TestConfig returns a narrow variant for fast tests.
func TestConfig(n int) Config { return Config{N: n, BaseChannels: 2, Pools: 2} }

// Output is one forward pass's result.
type Output struct {
	// CoordLogits/CoordProbs hold the four softmax groups for
	// (x1, y1, x2, y2), each of length N.
	CoordLogits [4][]float64
	CoordProbs  [4][]float64
	// DirPre is the pre-tanh direction logit; Dir is tanh(DirPre) in
	// (-1, 1): > 0 means clockwise (§4.4).
	DirPre, Dir float64
	// Value is the predicted cumulative return.
	Value float64
}

// PolicyValueNet is the deep residual two-headed network (Fig. 6(c)):
// a convolutional trunk shared by a policy head (four coordinate softmax
// groups plus a tanh loop-direction output) and a value head.
type PolicyValueNet struct {
	Cfg Config

	trunk *Sequential
	// policy coordinate head
	pConv *Sequential
	pFC1  *Dense
	pReLU *ReLU
	pFC2  *Dense // -> 4N logits
	// direction head
	dConv *Sequential
	dFC   *Dense // -> 1 (pre-tanh)
	// value head
	vConv *Sequential
	vFC   *Dense // -> 1

	trunkOut *tensor.Tensor
	pConvOut *tensor.Tensor
	dConvOut *tensor.Tensor
	vConvOut *tensor.Tensor

	params []*Param

	// Scratch owned by this network instance (one arena per network; one
	// network per learner goroutine — see Arena). in and out are the
	// reusable input tensor and output struct, flat/dDirT/dValT back the
	// head-gradient tensors fed into Backward.
	arena *Arena
	in    *tensor.Tensor
	out   Output
	flat  *tensor.Tensor
	dDirT *tensor.Tensor
	dValT *tensor.Tensor

	// Batched-inference scratch (batch.go): the (1, B, N², N²) input tensor
	// and the sample-major head repack buffers.
	bin *tensor.Tensor
	bpX *tensor.Tensor
	bdX *tensor.Tensor
	bvX *tensor.Tensor

	// Batched-training scratch (train_batch.go): input tensor, sample-major
	// head repack/unpack buffers, and the head-gradient row tensors fed into
	// BackwardBatch. Disjoint from both the per-sample and inference-batch
	// handles so the three paths can interleave on one net.
	tbin   *tensor.Tensor
	tpX    *tensor.Tensor
	tdX    *tensor.Tensor
	tvX    *tensor.Tensor
	tpUn   *tensor.Tensor
	tdUn   *tensor.Tensor
	tvUn   *tensor.Tensor
	tflat  *tensor.Tensor
	tdDirT *tensor.Tensor
	tdValT *tensor.Tensor
	// Head conv outputs of the last ForwardBatchTrain (references, not
	// handles): BackwardBatch reads their shapes to unpack the FC row
	// gradients back into the channel-major layout.
	tbpOut *tensor.Tensor
	tbdOut *tensor.Tensor
	tbvOut *tensor.Tensor

	// bns lists every BatchNorm in construction order, backing the running-
	// statistics vector (NumStats/CopyStatsInto/SetStats) that inference
	// evaluators sync alongside the weights.
	bns []*BatchNorm
}

// NewPolicyValueNet constructs the network with the given seed.
func NewPolicyValueNet(cfg Config, seed int64) *PolicyValueNet {
	if cfg.N < 2 {
		panic("nn: NoC size too small")
	}
	if cfg.BaseChannels < 1 {
		cfg.BaseChannels = 16
	}
	rng := rand.New(rand.NewSource(seed))
	side := cfg.N * cfg.N
	// Clamp pools so the final spatial side stays >= 2.
	pools := cfg.Pools
	for pools > 0 && side>>(uint(pools)) < 2 {
		pools--
	}
	cfg.Pools = pools

	c1 := cfg.BaseChannels
	c2, c3, c4 := 2*c1, 4*c1, 8*c1

	var trunk []Layer
	// "NxN conv, 16" — the stem kernel matches the NoC dimension.
	trunk = append(trunk,
		NewConv2D(rng, "stem", 1, c1, cfg.N|1), // odd kernel for same padding
		NewBatchNorm("stem.bn", c1),
		NewReLU(),
		NewResidual(rng, "res1", c1),
	)
	stage := 0
	addPool := func() bool {
		if stage < pools {
			trunk = append(trunk, NewMaxPool())
			stage++
			return true
		}
		return false
	}
	addPool()
	trunk = append(trunk,
		NewConv2D(rng, "conv2", c1, c2, 3),
		NewBatchNorm("conv2.bn", c2),
		NewReLU(),
	)
	addPool()
	trunk = append(trunk, NewResidual(rng, "res2", c2),
		NewConv2D(rng, "conv3", c2, c3, 3),
		NewBatchNorm("conv3.bn", c3),
		NewReLU(),
	)
	addPool()
	trunk = append(trunk, NewResidual(rng, "res3", c3),
		NewConv2D(rng, "conv4", c3, c4, 3),
		NewBatchNorm("conv4.bn", c4),
		NewReLU(),
		NewResidual(rng, "res4", c4),
	)

	finalSide := side >> uint(pools)
	hw := finalSide * finalSide

	net := &PolicyValueNet{
		Cfg:   cfg,
		trunk: NewSequential(trunk...),
		pConv: NewSequential(NewConv2D(rng, "p.conv", c4, 2, 3), NewReLU()),
		pFC1:  NewDense(rng, "p.fc1", 2*hw, 32),
		pReLU: NewReLU(),
		pFC2:  NewDense(rng, "p.fc2", 32, 4*cfg.N),
		dConv: NewSequential(NewConv2D(rng, "d.conv", c4, 2, 3), NewReLU()),
		dFC:   NewDense(rng, "d.fc", 2*hw, 1),
		vConv: NewSequential(NewConv2D(rng, "v.conv", c4, 1, 3), NewReLU()),
		vFC:   NewDense(rng, "v.fc", hw, 1),
	}
	net.params = append(net.params, net.trunk.Params()...)
	net.params = append(net.params, net.pConv.Params()...)
	net.params = append(net.params, net.pFC1.Params()...)
	net.params = append(net.params, net.pFC2.Params()...)
	net.params = append(net.params, net.dConv.Params()...)
	net.params = append(net.params, net.dFC.Params()...)
	net.params = append(net.params, net.vConv.Params()...)
	net.params = append(net.params, net.vFC.Params()...)

	// Thread one scratch arena through every layer and pre-size the
	// persistent input/output/head-gradient buffers, so steady-state
	// Forward/Backward cycles allocate nothing.
	net.arena = NewArena()
	for _, l := range []Layer{net.trunk, net.pConv, net.pFC1, net.pReLU,
		net.pFC2, net.dConv, net.dFC, net.vConv, net.vFC} {
		attachArena(net.arena, l)
		collectBatchNorms(l, &net.bns)
	}
	net.in = tensor.New(1, side, side)
	for g := 0; g < 4; g++ {
		net.out.CoordLogits[g] = make([]float64, cfg.N)
		net.out.CoordProbs[g] = make([]float64, cfg.N)
	}
	net.flat = tensor.New(4 * cfg.N)
	net.dDirT = tensor.New(1)
	net.dValT = tensor.New(1)
	return net
}

// Scratch returns the network's arena, an observability handle for the
// steady-state scratch footprint.
func (n *PolicyValueNet) Scratch() *Arena { return n.arena }

// Params returns every learnable parameter.
func (n *PolicyValueNet) Params() []*Param { return n.params }

// NumParams returns the total scalar parameter count.
func (n *PolicyValueNet) NumParams() int {
	total := 0
	for _, p := range n.params {
		total += p.W.Size()
	}
	return total
}

// Forward evaluates the network on a hop-count matrix (flattened N²×N²,
// as produced by topo.HopMatrix). Inputs are normalized by 5N so values
// lie in [0, 1].
//
// The returned Output (and its logit/probability slices) is owned by the
// network and overwritten by the next Forward call; callers that retain it
// across evaluations must copy what they need.
func (n *PolicyValueNet) Forward(hopMatrix []float64, train bool) *Output {
	side := n.Cfg.N * n.Cfg.N
	if len(hopMatrix) != side*side {
		panic(fmt.Sprintf("nn: input length %d, want %d", len(hopMatrix), side*side))
	}
	x := n.in
	norm := 5 * float64(n.Cfg.N)
	for i, v := range hopMatrix {
		x.Data[i] = v / norm
	}
	n.trunkOut = n.trunk.Forward(x, train)

	out := &n.out
	// Policy coordinates.
	n.pConvOut = n.pConv.Forward(n.trunkOut, train)
	h1 := n.pReLU.Forward(n.pFC1.Forward(n.pConvOut, train), train)
	logits := n.pFC2.Forward(h1, train)
	for g := 0; g < 4; g++ {
		copy(out.CoordLogits[g], logits.Data[g*n.Cfg.N:(g+1)*n.Cfg.N])
		tensor.SoftmaxInto(out.CoordProbs[g], out.CoordLogits[g])
	}
	// Direction.
	n.dConvOut = n.dConv.Forward(n.trunkOut, train)
	dpre := n.dFC.Forward(n.dConvOut, train)
	out.DirPre = dpre.Data[0]
	out.Dir = math.Tanh(out.DirPre)
	// Value.
	n.vConvOut = n.vConv.Forward(n.trunkOut, train)
	out.Value = n.vFC.Forward(n.vConvOut, train).Data[0]
	return out
}

// Backward back-propagates head gradients from the most recent Forward:
// dLogits are dL/d(coordinate logits) (4 groups of N), dDirPre is
// dL/d(pre-tanh direction), dValue is dL/d(value).
func (n *PolicyValueNet) Backward(dLogits [4][]float64, dDirPre, dValue float64) {
	for g := 0; g < 4; g++ {
		copy(n.flat.Data[g*n.Cfg.N:], dLogits[g])
	}
	// Dense.Backward returns gradients already shaped like the cached
	// input (the conv-head output), so no reshaping is needed. gTrunk is
	// the p-head conv's dx buffer; the d/v head backward passes write
	// their own buffers, so accumulating into it is alias-free.
	gp := n.pFC2.Backward(n.flat)
	gp = n.pReLU.Backward(gp)
	gp = n.pFC1.Backward(gp)
	gTrunk := n.pConv.Backward(gp)

	n.dDirT.Data[0] = dDirPre
	gTrunk.AddInPlace(n.dConv.Backward(n.dFC.Backward(n.dDirT)))

	n.dValT.Data[0] = dValue
	gTrunk.AddInPlace(n.vConv.Backward(n.vFC.Backward(n.dValT)))

	n.trunk.Backward(gTrunk)
}

// ZeroGrads clears every parameter gradient.
func (n *PolicyValueNet) ZeroGrads() {
	for _, p := range n.params {
		p.G.Fill(0)
	}
}

// GetWeights flattens all parameters into one slice (for the parameter
// server of §4.6).
func (n *PolicyValueNet) GetWeights() []float64 {
	var out []float64
	for _, p := range n.params {
		out = append(out, p.W.Data...)
	}
	return out
}

// SetWeights loads a flat slice previously produced by GetWeights.
func (n *PolicyValueNet) SetWeights(w []float64) {
	off := 0
	for _, p := range n.params {
		copy(p.W.Data, w[off:off+p.W.Size()])
		off += p.W.Size()
	}
	if off != len(w) {
		panic(fmt.Sprintf("nn: SetWeights length %d, want %d", len(w), off))
	}
}

// collectBatchNorms appends every BatchNorm under l in a deterministic
// construction-order walk (mirroring attachArena's traversal).
func collectBatchNorms(l Layer, dst *[]*BatchNorm) {
	switch v := l.(type) {
	case *BatchNorm:
		*dst = append(*dst, v)
	case *Sequential:
		for _, inner := range v.Layers {
			collectBatchNorms(inner, dst)
		}
	case *Residual:
		collectBatchNorms(v.Body, dst)
	}
}

// NumStats returns the number of BatchNorm running-statistic scalars
// (running mean and variance per channel). These are NOT covered by
// GetWeights/SetWeights — they evolve on each worker's private net during
// training forwards — so inference evaluators that must reproduce a
// worker's eval-mode outputs sync them separately via CopyStatsInto/
// SetStats.
func (n *PolicyValueNet) NumStats() int {
	total := 0
	for _, bn := range n.bns {
		total += 2 * bn.C
	}
	return total
}

// CopyStatsInto flattens the BatchNorm running statistics (mean then
// variance per layer, in construction order) into dst, which must have
// length NumStats.
func (n *PolicyValueNet) CopyStatsInto(dst []float64) {
	off := 0
	for _, bn := range n.bns {
		off += copy(dst[off:], bn.RunMean)
		off += copy(dst[off:], bn.RunVar)
	}
	if off != len(dst) {
		panic(fmt.Sprintf("nn: CopyStatsInto length %d, want %d", len(dst), off))
	}
}

// SetStats loads a flat vector previously produced by CopyStatsInto.
func (n *PolicyValueNet) SetStats(src []float64) {
	off := 0
	for _, bn := range n.bns {
		off += copy(bn.RunMean, src[off:off+bn.C])
		off += copy(bn.RunVar, src[off:off+bn.C])
	}
	if off != len(src) {
		panic(fmt.Sprintf("nn: SetStats length %d, want %d", len(src), off))
	}
}

// GetGrads flattens all gradients.
func (n *PolicyValueNet) GetGrads() []float64 {
	out := make([]float64, n.NumParams())
	n.CopyGradsInto(out)
	return out
}

// CopyGradsInto writes the flattened gradients into dst, which must have
// length NumParams. It is the allocation-free variant of GetGrads for the
// per-worker training loop.
func (n *PolicyValueNet) CopyGradsInto(dst []float64) {
	off := 0
	for _, p := range n.params {
		off += copy(dst[off:], p.G.Data)
	}
	if off != len(dst) {
		panic(fmt.Sprintf("nn: CopyGradsInto length %d, want %d", len(dst), off))
	}
}

// ApplyGrads performs an SGD step with the given flat gradient and
// learning rate, clipping each component to clip (0 disables clipping).
func (n *PolicyValueNet) ApplyGrads(grads []float64, lr, clip float64) {
	off := 0
	for _, p := range n.params {
		w := p.W.Data
		g := grads[off : off+len(w)]
		if clip > 0 {
			for i, gv := range g {
				w[i] -= lr * min(max(gv, -clip), clip)
			}
		} else {
			for i, gv := range g {
				w[i] -= lr * gv
			}
		}
		off += len(w)
	}
}

// SGD is the plain stochastic-gradient optimizer (Eqs. 19–20).
type SGD struct {
	LR   float64
	Clip float64
}

// Step applies accumulated gradients to the network's own parameters and
// clears them.
func (s SGD) Step(n *PolicyValueNet) {
	lr, clip := s.LR, s.Clip
	for _, p := range n.params {
		w := p.W.Data
		g := p.G.Data[:len(w)]
		// The clip test is hoisted out of the per-element loop; min/max
		// compile to MINSD/MAXSD, keeping the update branch-free.
		if clip > 0 {
			for i, gv := range g {
				w[i] -= lr * min(max(gv, -clip), clip)
			}
		} else {
			for i, gv := range g {
				w[i] -= lr * gv
			}
		}
		clear(p.G.Data)
	}
}

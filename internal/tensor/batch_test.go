package tensor

import (
	"math/rand"
	"strconv"
	"testing"
)

// Im2colBatch must reproduce, for every sample in the chunk, exactly the
// column block Im2col produces for that sample alone — this is the
// foundation of the batched forward's byte-identity guarantee.
func TestIm2colBatchMatchesPerSample(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const (
		inC, nb, h, w = 3, 5, 6, 7
		k             = 3
		pad           = (k - 1) / 2
	)
	hw := h * w
	ickk := inC * k * k
	// Channel-major batched input: sample bi of channel ic at (ic*nb+bi)*hw.
	x := make([]float64, inC*nb*hw)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	single := make([]float64, inC*hw)
	want := make([]float64, ickk*hw)
	for s0 := 0; s0 < nb; s0++ {
		for cb := 1; s0+cb <= nb; cb++ {
			cols := make([]float64, ickk*cb*hw)
			Im2colBatch(x, inC, nb, s0, cb, h, w, k, pad, cols)
			for bi := 0; bi < cb; bi++ {
				for ic := 0; ic < inC; ic++ {
					copy(single[ic*hw:(ic+1)*hw], x[(ic*nb+s0+bi)*hw:(ic*nb+s0+bi+1)*hw])
				}
				Im2col(single, inC, h, w, k, pad, want)
				for r := 0; r < ickk; r++ {
					got := cols[r*cb*hw+bi*hw : r*cb*hw+(bi+1)*hw]
					for j, v := range got {
						if v != want[r*hw+j] {
							t.Fatalf("s0=%d cb=%d sample %d row %d col %d: got %v want %v",
								s0, cb, bi, r, j, v, want[r*hw+j])
						}
					}
				}
			}
		}
	}
}

// Col2imBatch must reproduce, for every sample in the chunk, exactly the
// map Col2im produces from that sample's column block alone — the batched
// conv backward's dX byte-identity rests on this.
func TestCol2imBatchMatchesPerSample(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	const (
		inC, nb, h, w = 3, 5, 6, 7
		k             = 3
		pad           = (k - 1) / 2
	)
	hw := h * w
	ickk := inC * k * k
	x := make([]float64, inC*nb*hw)
	single := make([]float64, ickk*hw)
	want := make([]float64, inC*hw)
	for s0 := 0; s0 < nb; s0++ {
		for cb := 1; s0+cb <= nb; cb++ {
			cols := make([]float64, ickk*cb*hw)
			for i := range cols {
				cols[i] = rng.NormFloat64()
			}
			// Poison x so the clear inside Col2imBatch is exercised.
			for i := range x {
				x[i] = 1e30
			}
			Col2imBatch(cols, inC, nb, s0, cb, h, w, k, pad, x)
			for bi := 0; bi < cb; bi++ {
				for r := 0; r < ickk; r++ {
					copy(single[r*hw:(r+1)*hw], cols[r*cb*hw+bi*hw:r*cb*hw+(bi+1)*hw])
				}
				Col2im(single, inC, h, w, k, pad, want)
				for ic := 0; ic < inC; ic++ {
					got := x[(ic*nb+s0+bi)*hw : (ic*nb+s0+bi+1)*hw]
					for j, v := range got {
						if v != want[ic*hw+j] {
							t.Fatalf("s0=%d cb=%d sample %d chan %d idx %d: got %v want %v",
								s0, cb, bi, ic, j, v, want[ic*hw+j])
						}
					}
				}
			}
		}
	}
}

// GemmNTStrided with dense strides (lda = ldb = k) must be bit-identical to
// GemmNT, and with batched strides it must reproduce per-sample GemmNT
// calls exactly — the contract that keeps the batched conv dW accumulation
// byte-identical to the sequential trajectory loop.
func TestGemmNTStridedMatchesGemmNT(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	for _, sz := range []struct{ m, n, k int }{
		{2, 81, 37}, {4, 18, 100}, {1, 1, 1}, {16, 144, 256}, {3, 7, 1}, {5, 9, 4096},
	} {
		t.Run(strconv.Itoa(sz.m)+"x"+strconv.Itoa(sz.n)+"x"+strconv.Itoa(sz.k), func(t *testing.T) {
			a := make([]float64, sz.m*sz.k)
			b := make([]float64, sz.n*sz.k)
			for i := range a {
				a[i] = rng.NormFloat64()
			}
			for i := range b {
				b[i] = rng.NormFloat64()
			}
			want := make([]float64, sz.m*sz.n)
			got := make([]float64, sz.m*sz.n)
			for i := range want {
				want[i] = rng.NormFloat64()
				got[i] = want[i]
			}
			GemmNT(sz.m, sz.n, sz.k, a, b, want, true)
			GemmNTStrided(sz.m, sz.n, sz.k, a, sz.k, b, sz.k, got, true)
			for i, v := range got {
				if v != want[i] {
					t.Fatalf("dense strides elem %d: got %v want %v", i, v, want[i])
				}
			}

			// Strided operands: embed each row at a wider pitch and check
			// against the dense call.
			lda, ldb := sz.k+5, sz.k+11
			as := make([]float64, sz.m*lda)
			bs := make([]float64, sz.n*ldb)
			for i := range as {
				as[i] = 1e30 // poison the gaps
			}
			for i := range bs {
				bs[i] = 1e30
			}
			for i := 0; i < sz.m; i++ {
				copy(as[i*lda:i*lda+sz.k], a[i*sz.k:(i+1)*sz.k])
			}
			for j := 0; j < sz.n; j++ {
				copy(bs[j*ldb:j*ldb+sz.k], b[j*sz.k:(j+1)*sz.k])
			}
			clear(got)
			GemmNTStrided(sz.m, sz.n, sz.k, as, lda, bs, ldb, got, false)
			clear(want)
			GemmNT(sz.m, sz.n, sz.k, a, b, want, false)
			for i, v := range got {
				if v != want[i] {
					t.Fatalf("wide strides elem %d: got %v want %v", i, v, want[i])
				}
			}
		})
	}
}

// MatVecBatch must be bit-identical, per sample, to GemmNN's n==1
// matrix–vector fast path (the kernel Dense.Forward uses).
func TestMatVecBatchMatchesGemmNN(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for _, sz := range []struct{ m, k, nb int }{
		{7, 13, 4}, {1, 1, 1}, {32, 50, 8}, {4, 3, 5},
	} {
		t.Run(strconv.Itoa(sz.m)+"x"+strconv.Itoa(sz.k)+"b"+strconv.Itoa(sz.nb), func(t *testing.T) {
			a := make([]float64, sz.m*sz.k)
			x := make([]float64, sz.nb*sz.k)
			for i := range a {
				a[i] = rng.NormFloat64()
			}
			for i := range x {
				x[i] = rng.NormFloat64()
			}
			y := make([]float64, sz.nb*sz.m)
			MatVecBatch(sz.m, sz.k, sz.nb, a, x, y)
			want := make([]float64, sz.m)
			for bi := 0; bi < sz.nb; bi++ {
				GemmNN(sz.m, 1, sz.k, a, x[bi*sz.k:(bi+1)*sz.k], want, false)
				for i, v := range want {
					if y[bi*sz.m+i] != v {
						t.Fatalf("sample %d out %d: got %v want %v", bi, i, y[bi*sz.m+i], v)
					}
				}
			}
		})
	}
}

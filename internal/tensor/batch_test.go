package tensor

import (
	"math/rand"
	"strconv"
	"testing"
)

// Im2colBatch must reproduce, for every sample in the chunk, exactly the
// column block Im2col produces for that sample alone — this is the
// foundation of the batched forward's byte-identity guarantee.
func TestIm2colBatchMatchesPerSample(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const (
		inC, nb, h, w = 3, 5, 6, 7
		k             = 3
		pad           = (k - 1) / 2
	)
	hw := h * w
	ickk := inC * k * k
	// Channel-major batched input: sample bi of channel ic at (ic*nb+bi)*hw.
	x := make([]float64, inC*nb*hw)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	single := make([]float64, inC*hw)
	want := make([]float64, ickk*hw)
	for s0 := 0; s0 < nb; s0++ {
		for cb := 1; s0+cb <= nb; cb++ {
			cols := make([]float64, ickk*cb*hw)
			Im2colBatch(x, inC, nb, s0, cb, h, w, k, pad, cols)
			for bi := 0; bi < cb; bi++ {
				for ic := 0; ic < inC; ic++ {
					copy(single[ic*hw:(ic+1)*hw], x[(ic*nb+s0+bi)*hw:(ic*nb+s0+bi+1)*hw])
				}
				Im2col(single, inC, h, w, k, pad, want)
				for r := 0; r < ickk; r++ {
					got := cols[r*cb*hw+bi*hw : r*cb*hw+(bi+1)*hw]
					for j, v := range got {
						if v != want[r*hw+j] {
							t.Fatalf("s0=%d cb=%d sample %d row %d col %d: got %v want %v",
								s0, cb, bi, r, j, v, want[r*hw+j])
						}
					}
				}
			}
		}
	}
}

// MatVecBatch must be bit-identical, per sample, to GemmNN's n==1
// matrix–vector fast path (the kernel Dense.Forward uses).
func TestMatVecBatchMatchesGemmNN(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for _, sz := range []struct{ m, k, nb int }{
		{7, 13, 4}, {1, 1, 1}, {32, 50, 8}, {4, 3, 5},
	} {
		t.Run(strconv.Itoa(sz.m)+"x"+strconv.Itoa(sz.k)+"b"+strconv.Itoa(sz.nb), func(t *testing.T) {
			a := make([]float64, sz.m*sz.k)
			x := make([]float64, sz.nb*sz.k)
			for i := range a {
				a[i] = rng.NormFloat64()
			}
			for i := range x {
				x[i] = rng.NormFloat64()
			}
			y := make([]float64, sz.nb*sz.m)
			MatVecBatch(sz.m, sz.k, sz.nb, a, x, y)
			want := make([]float64, sz.m)
			for bi := 0; bi < sz.nb; bi++ {
				GemmNN(sz.m, 1, sz.k, a, x[bi*sz.k:(bi+1)*sz.k], want, false)
				for i, v := range want {
					if y[bi*sz.m+i] != v {
						t.Fatalf("sample %d out %d: got %v want %v", bi, i, y[bi*sz.m+i], v)
					}
				}
			}
		})
	}
}

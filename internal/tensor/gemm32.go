package tensor

import "fmt"

// Float32 mirrors of the blocked GEMM kernels, backing the inference-only
// f32 engine in internal/nn. The panel/accumulator structure is identical
// to the f64 kernels — same j/k tiling, same four-way unrolled reduction —
// so the per-element reduction order again depends only on the k index and
// never on the column count. That property is what lets the f32 batch path
// split batches into depth-blocked tiles (and convolutions into column
// chunks) while staying bit-for-bit identical to the untiled evaluation.
//
// A float32 panel is half the bytes of its f64 twin, so the same
// gemmNC/gemmKC tile counts leave twice the headroom in L1/L2 — the
// working-set reduction, not fancier arithmetic, is where the batched
// inference speedup comes from (plus the compiler vectorizing the wider
// 4-lane f32 inner loops).
//
// These kernels are inference-only by policy: training, its gradients, and
// every byte-identity oracle stay on the f64 kernels.

func gemmCheck32(name string, a, b, c []float32, la, lb, lc int) {
	if len(a) < la || len(b) < lb || len(c) < lc {
		panic(fmt.Sprintf("tensor: %s buffer lengths (%d,%d,%d), need at least (%d,%d,%d)",
			name, len(a), len(b), len(c), la, lb, lc))
	}
}

// GemmNN32 computes C = A·B, or C += A·B when acc is true.
// A is m×k, B is k×n, C is m×n, all row-major float32.
func GemmNN32(m, n, k int, a, b, c []float32, acc bool) {
	gemmCheck32("GemmNN32", a, b, c, m*k, k*n, m*n)
	if !acc {
		clear(c[:m*n])
	}
	if n == 1 {
		// Matrix–vector fast path: one four-accumulator dot product per
		// output row, mirroring GemmNN's n==1 path.
		for i := 0; i < m; i++ {
			arow := a[i*k : i*k+k]
			var s0, s1, s2, s3 float32
			kk := 0
			for ; kk+3 < k; kk += 4 {
				s0 += arow[kk] * b[kk]
				s1 += arow[kk+1] * b[kk+1]
				s2 += arow[kk+2] * b[kk+2]
				s3 += arow[kk+3] * b[kk+3]
			}
			s := s0 + s1 + s2 + s3
			for ; kk < k; kk++ {
				s += arow[kk] * b[kk]
			}
			c[i] += s
		}
		return
	}
	for j0 := 0; j0 < n; j0 += gemmNC {
		j1 := min(j0+gemmNC, n)
		for k0 := 0; k0 < k; k0 += gemmKC {
			k1 := min(k0+gemmKC, k)
			for i := 0; i < m; i++ {
				arow := a[i*k : i*k+k]
				crow := c[i*n+j0 : i*n+j1]
				kk := k0
				for ; kk+3 < k1; kk += 4 {
					a0, a1, a2, a3 := arow[kk], arow[kk+1], arow[kk+2], arow[kk+3]
					b0 := b[kk*n+j0 : kk*n+j1]
					b1 := b[(kk+1)*n+j0 : (kk+1)*n+j1]
					b2 := b[(kk+2)*n+j0 : (kk+2)*n+j1]
					b3 := b[(kk+3)*n+j0 : (kk+3)*n+j1]
					for j := range crow {
						crow[j] += a0*b0[j] + a1*b1[j] + a2*b2[j] + a3*b3[j]
					}
				}
				for ; kk < k1; kk++ {
					av := arow[kk]
					brow := b[kk*n+j0 : kk*n+j1]
					for j := range crow {
						crow[j] += av * brow[j]
					}
				}
			}
		}
	}
}

// MatVecBatch32 computes Y = X·Aᵀ for a batch of row vectors: A is m×k
// row-major, X is nb×k, Y is nb×m. Row bi of Y is bit-identical to
// GemmNN32(m, 1, k, a, x_bi, y_bi, false) — the four-accumulator dot
// product order is replicated exactly — while each weight row streams once
// across the whole batch. This is the batched f32 Dense-layer kernel.
func MatVecBatch32(m, k, nb int, a, x, y []float32) {
	gemmCheck32("MatVecBatch32", a, x, y, m*k, nb*k, nb*m)
	for i := 0; i < m; i++ {
		arow := a[i*k : i*k+k]
		for bi := 0; bi < nb; bi++ {
			xrow := x[bi*k : bi*k+k]
			var s0, s1, s2, s3 float32
			kk := 0
			for ; kk+3 < k; kk += 4 {
				s0 += arow[kk] * xrow[kk]
				s1 += arow[kk+1] * xrow[kk+1]
				s2 += arow[kk+2] * xrow[kk+2]
				s3 += arow[kk+3] * xrow[kk+3]
			}
			s := s0 + s1 + s2 + s3
			for ; kk < k; kk++ {
				s += arow[kk] * xrow[kk]
			}
			y[bi*m+i] = s
		}
	}
}

// GemmNT32 computes C = A·Bᵀ, or C += A·Bᵀ when acc is true.
// A is m×k, B is n×k (used transposed), C is m×n, all row-major float32.
// Structure mirrors GemmNT: B-row panels reused across the i sweep, four C
// elements per A-row pass.
func GemmNT32(m, n, k int, a, b, c []float32, acc bool) {
	gemmCheck32("GemmNT32", a, b, c, m*k, n*k, m*n)
	if !acc {
		clear(c[:m*n])
	}
	if k == 1 {
		for i := 0; i < m; i++ {
			av := a[i]
			crow := c[i*n : i*n+n]
			for j, bv := range b[:n] {
				crow[j] += av * bv
			}
		}
		return
	}
	// Same panel sizing rule as the f64 kernel (counted in elements, so the
	// f32 panel is half the bytes).
	jc := max(4, 32768/k)
	for j0 := 0; j0 < n; j0 += jc {
		j1 := min(j0+jc, n)
		for i := 0; i < m; i++ {
			arow := a[i*k : i*k+k]
			crow := c[i*n : i*n+n]
			j := j0
			for ; j+3 < j1; j += 4 {
				b0 := b[j*k : j*k+k]
				b1 := b[(j+1)*k : (j+1)*k+k]
				b2 := b[(j+2)*k : (j+2)*k+k]
				b3 := b[(j+3)*k : (j+3)*k+k]
				var s0, s1, s2, s3 float32
				for kk, av := range arow {
					s0 += av * b0[kk]
					s1 += av * b1[kk]
					s2 += av * b2[kk]
					s3 += av * b3[kk]
				}
				crow[j] += s0
				crow[j+1] += s1
				crow[j+2] += s2
				crow[j+3] += s3
			}
			for ; j < j1; j++ {
				brow := b[j*k : j*k+k]
				var s0, s1, s2, s3 float32
				kk := 0
				for ; kk+3 < k; kk += 4 {
					s0 += arow[kk] * brow[kk]
					s1 += arow[kk+1] * brow[kk+1]
					s2 += arow[kk+2] * brow[kk+2]
					s3 += arow[kk+3] * brow[kk+3]
				}
				s := s0 + s1 + s2 + s3
				for ; kk < k; kk++ {
					s += arow[kk] * brow[kk]
				}
				crow[j] += s
			}
		}
	}
}

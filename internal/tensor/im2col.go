package tensor

import "fmt"

// Im2col/Col2im lower stride-1, zero-padded 2-D convolution to matrix
// multiplication: each output position becomes one column holding the
// receptive-field patch feeding it, so conv forward is a single GEMM of the
// (outC, inC·k·k) weight matrix against the (inC·k·k, h·w) column matrix.
// Interior spans are bulk-copied; only the padded borders are filled
// element-free with explicit zeroing.

func im2colCheck(name string, x, cols []float64, inC, h, w, k, pad int) {
	if inC < 1 || h < 1 || w < 1 || k < 1 || pad < 0 {
		panic(fmt.Sprintf("tensor: %s invalid geometry inC=%d h=%d w=%d k=%d pad=%d",
			name, inC, h, w, k, pad))
	}
	if len(x) < inC*h*w || len(cols) < inC*k*k*h*w {
		panic(fmt.Sprintf("tensor: %s buffers (%d,%d), need (%d,%d)",
			name, len(x), len(cols), inC*h*w, inC*k*k*h*w))
	}
}

// Im2col unrolls the (inC, h, w) feature map x into the (inC·k·k, h·w)
// column matrix cols for a stride-1 convolution with the given zero
// padding (output spatial size equals input size when pad == (k-1)/2).
// Row (ic·k+ky)·k+kx of cols holds, for every output position (oy, ox),
// x[ic, oy+ky-pad, ox+kx-pad], or zero when that index falls outside the
// map.
func Im2col(x []float64, inC, h, w, k, pad int, cols []float64) {
	im2colCheck("Im2col", x, cols, inC, h, w, k, pad)
	hw := h * w
	r := 0
	for ic := 0; ic < inC; ic++ {
		xc := x[ic*hw : (ic+1)*hw]
		for ky := 0; ky < k; ky++ {
			for kx := 0; kx < k; kx++ {
				dst := cols[r*hw : (r+1)*hw]
				// Output columns whose sampled ix = ox+kx-pad is in range.
				ox0 := max(0, pad-kx)
				ox1 := min(w, w+pad-kx)
				for oy := 0; oy < h; oy++ {
					iy := oy + ky - pad
					drow := dst[oy*w : (oy+1)*w]
					if iy < 0 || iy >= h || ox0 >= ox1 {
						clear(drow)
						continue
					}
					clear(drow[:ox0])
					copy(drow[ox0:ox1], xc[iy*w+ox0+kx-pad:iy*w+ox1+kx-pad])
					clear(drow[ox1:])
				}
				r++
			}
		}
	}
}

// Im2colBatch unrolls cb consecutive samples (starting at s0) of a batched
// channel-major feature map into one wide column matrix, lowering a batched
// convolution to a single GEMM over the batch dimension. x is laid out
// (inC, nb, h, w) — sample bi of channel ic starts at (ic·nb+bi)·h·w — and
// cols is (inC·k·k, cb·h·w), with sample bi's columns occupying the
// contiguous block [bi·h·w, (bi+1)·h·w) of every row. Each sample's column
// block is exactly what Im2col would produce for that sample alone, which
// is what keeps batched convolution outputs bit-identical to the
// per-sample path (GemmNN's per-element reduction order depends only on
// the k index, never on the column count).
func Im2colBatch(x []float64, inC, nb, s0, cb, h, w, k, pad int, cols []float64) {
	if inC < 1 || h < 1 || w < 1 || k < 1 || pad < 0 || nb < 1 || cb < 1 ||
		s0 < 0 || s0+cb > nb {
		panic(fmt.Sprintf("tensor: Im2colBatch invalid geometry inC=%d nb=%d s0=%d cb=%d h=%d w=%d k=%d pad=%d",
			inC, nb, s0, cb, h, w, k, pad))
	}
	hw := h * w
	if len(x) < inC*nb*hw || len(cols) < inC*k*k*cb*hw {
		panic(fmt.Sprintf("tensor: Im2colBatch buffers (%d,%d), need (%d,%d)",
			len(x), len(cols), inC*nb*hw, inC*k*k*cb*hw))
	}
	r := 0
	for ic := 0; ic < inC; ic++ {
		for ky := 0; ky < k; ky++ {
			for kx := 0; kx < k; kx++ {
				rowBase := r * cb * hw
				ox0 := max(0, pad-kx)
				ox1 := min(w, w+pad-kx)
				for bi := 0; bi < cb; bi++ {
					xc := x[(ic*nb+s0+bi)*hw : (ic*nb+s0+bi+1)*hw]
					dst := cols[rowBase+bi*hw : rowBase+(bi+1)*hw]
					for oy := 0; oy < h; oy++ {
						iy := oy + ky - pad
						drow := dst[oy*w : (oy+1)*w]
						if iy < 0 || iy >= h || ox0 >= ox1 {
							clear(drow)
							continue
						}
						clear(drow[:ox0])
						copy(drow[ox0:ox1], xc[iy*w+ox0+kx-pad:iy*w+ox1+kx-pad])
						clear(drow[ox1:])
					}
				}
				r++
			}
		}
	}
}

// Col2imBatch is the adjoint of Im2colBatch: it scatter-adds the
// (inC·k·k, cb·h·w) column matrix cols back into samples s0..s0+cb of the
// channel-major batched map x (laid out (inC, nb, h, w)), overwriting those
// sample planes. Each sample's scatter order matches Col2im exactly — for a
// fixed (channel, sample) plane, contributions land in ascending
// (ky, kx, oy) order — so the batched conv backward's dX stays bit-identical
// to running Col2im per sample.
func Col2imBatch(cols []float64, inC, nb, s0, cb, h, w, k, pad int, x []float64) {
	if inC < 1 || h < 1 || w < 1 || k < 1 || pad < 0 || nb < 1 || cb < 1 ||
		s0 < 0 || s0+cb > nb {
		panic(fmt.Sprintf("tensor: Col2imBatch invalid geometry inC=%d nb=%d s0=%d cb=%d h=%d w=%d k=%d pad=%d",
			inC, nb, s0, cb, h, w, k, pad))
	}
	hw := h * w
	if len(x) < inC*nb*hw || len(cols) < inC*k*k*cb*hw {
		panic(fmt.Sprintf("tensor: Col2imBatch buffers (%d,%d), need (%d,%d)",
			len(x), len(cols), inC*nb*hw, inC*k*k*cb*hw))
	}
	for ic := 0; ic < inC; ic++ {
		clear(x[(ic*nb+s0)*hw : (ic*nb+s0+cb)*hw])
	}
	r := 0
	for ic := 0; ic < inC; ic++ {
		for ky := 0; ky < k; ky++ {
			for kx := 0; kx < k; kx++ {
				rowBase := r * cb * hw
				ox0 := max(0, pad-kx)
				ox1 := min(w, w+pad-kx)
				for bi := 0; bi < cb; bi++ {
					src := cols[rowBase+bi*hw : rowBase+(bi+1)*hw]
					xc := x[(ic*nb+s0+bi)*hw : (ic*nb+s0+bi+1)*hw]
					for oy := 0; oy < h; oy++ {
						iy := oy + ky - pad
						if iy < 0 || iy >= h || ox0 >= ox1 {
							continue
						}
						srow := src[oy*w+ox0 : oy*w+ox1]
						xrow := xc[iy*w+ox0+kx-pad : iy*w+ox1+kx-pad]
						for j, v := range srow {
							xrow[j] += v
						}
					}
				}
				r++
			}
		}
	}
}

// Col2im is the adjoint of Im2col: it scatter-adds the (inC·k·k, h·w)
// column matrix cols back into the (inC, h, w) map x, overwriting x. It
// maps column-matrix gradients back to input-map gradients in the conv
// backward pass.
func Col2im(cols []float64, inC, h, w, k, pad int, x []float64) {
	im2colCheck("Col2im", x, cols, inC, h, w, k, pad)
	hw := h * w
	clear(x[:inC*hw])
	r := 0
	for ic := 0; ic < inC; ic++ {
		xc := x[ic*hw : (ic+1)*hw]
		for ky := 0; ky < k; ky++ {
			for kx := 0; kx < k; kx++ {
				src := cols[r*hw : (r+1)*hw]
				ox0 := max(0, pad-kx)
				ox1 := min(w, w+pad-kx)
				for oy := 0; oy < h; oy++ {
					iy := oy + ky - pad
					if iy < 0 || iy >= h || ox0 >= ox1 {
						continue
					}
					srow := src[oy*w+ox0 : oy*w+ox1]
					xrow := xc[iy*w+ox0+kx-pad : iy*w+ox1+kx-pad]
					for j, v := range srow {
						xrow[j] += v
					}
				}
				r++
			}
		}
	}
}

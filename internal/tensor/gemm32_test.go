package tensor

import (
	"math"
	"math/rand"
	"strconv"
	"testing"
)

func randF32F64(rng *rand.Rand, n int) ([]float32, []float64) {
	f32 := make([]float32, n)
	f64 := make([]float64, n)
	for i := range f32 {
		v := float32(rng.NormFloat64())
		f32[i] = v
		f64[i] = float64(v) // both precisions see the exact same values
	}
	return f32, f64
}

// assertTol32 compares an f32 result against the f64 reference with a
// relative tolerance scaled by sqrt(k) accumulation error.
func assertTol32(t *testing.T, tag string, got []float32, want []float64, k int) {
	t.Helper()
	tol := 1e-5 * math.Sqrt(float64(max(k, 1)))
	for i := range want {
		diff := math.Abs(float64(got[i]) - want[i])
		if diff > tol*math.Max(1, math.Abs(want[i])) {
			t.Fatalf("%s: element %d: got %v want %v (diff %v, tol %v)",
				tag, i, got[i], want[i], diff, tol)
		}
	}
}

// The f32 GEMM kernels must agree with the f64 kernels to float32
// accumulation accuracy on identical inputs, across the blocked path, the
// fast paths, and the accumulate flag.
func TestGemmNN32MatchesF64(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for _, sz := range []struct{ m, n, k int }{
		{3, 1, 7},    // n==1 matrix–vector fast path
		{5, 9, 4},    // small blocked
		{16, 600, 5}, // crosses the gemmNC column-panel boundary
		{4, 17, 131}, // crosses the gemmKC reduction-panel boundary
	} {
		tag := strconv.Itoa(sz.m) + "x" + strconv.Itoa(sz.n) + "x" + strconv.Itoa(sz.k)
		a32, a64 := randF32F64(rng, sz.m*sz.k)
		b32, b64 := randF32F64(rng, sz.k*sz.n)
		c32, c64 := randF32F64(rng, sz.m*sz.n)
		GemmNN32(sz.m, sz.n, sz.k, a32, b32, c32, false)
		GemmNN(sz.m, sz.n, sz.k, a64, b64, c64, false)
		assertTol32(t, "GemmNN "+tag, c32, c64, sz.k)

		// acc=true accumulates on top of the previous result.
		GemmNN32(sz.m, sz.n, sz.k, a32, b32, c32, true)
		GemmNN(sz.m, sz.n, sz.k, a64, b64, c64, true)
		assertTol32(t, "GemmNN+acc "+tag, c32, c64, 2*sz.k)
	}
}

func TestGemmNT32MatchesF64(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	for _, sz := range []struct{ m, n, k int }{
		{4, 6, 1},  // k==1 rank-1 fast path
		{5, 9, 13}, // remainder columns after the 4-wide pass
		{8, 40, 70},
	} {
		tag := strconv.Itoa(sz.m) + "x" + strconv.Itoa(sz.n) + "x" + strconv.Itoa(sz.k)
		a32, a64 := randF32F64(rng, sz.m*sz.k)
		b32, b64 := randF32F64(rng, sz.n*sz.k)
		c32 := make([]float32, sz.m*sz.n)
		c64 := make([]float64, sz.m*sz.n)
		GemmNT32(sz.m, sz.n, sz.k, a32, b32, c32, false)
		GemmNT(sz.m, sz.n, sz.k, a64, b64, c64, false)
		assertTol32(t, "GemmNT "+tag, c32, c64, sz.k)
	}
}

// MatVecBatch32 must be bit-identical, per sample, to GemmNN32's n==1
// matrix–vector fast path — the f32 twin of TestMatVecBatchMatchesGemmNN,
// and the property that makes batched f32 Dense layers independent of the
// batch tiling.
func TestMatVecBatch32MatchesGemmNN32(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	for _, sz := range []struct{ m, k, nb int }{
		{7, 13, 4}, {1, 1, 1}, {32, 50, 8}, {4, 3, 5},
	} {
		t.Run(strconv.Itoa(sz.m)+"x"+strconv.Itoa(sz.k)+"b"+strconv.Itoa(sz.nb), func(t *testing.T) {
			a, _ := randF32F64(rng, sz.m*sz.k)
			x, _ := randF32F64(rng, sz.nb*sz.k)
			y := make([]float32, sz.nb*sz.m)
			MatVecBatch32(sz.m, sz.k, sz.nb, a, x, y)
			want := make([]float32, sz.m)
			for bi := 0; bi < sz.nb; bi++ {
				GemmNN32(sz.m, 1, sz.k, a, x[bi*sz.k:(bi+1)*sz.k], want, false)
				for i, v := range want {
					if y[bi*sz.m+i] != v {
						t.Fatalf("sample %d out %d: got %v want %v", bi, i, y[bi*sz.m+i], v)
					}
				}
			}
		})
	}
}

// Im2col32 is pure data movement: its output must equal the f64 Im2col
// output element-for-element (exact, not tolerance) on identical inputs.
func TestIm2col32MatchesF64Exactly(t *testing.T) {
	rng := rand.New(rand.NewSource(64))
	const (
		inC, h, w = 3, 6, 7
		k         = 3
		pad       = (k - 1) / 2
	)
	x32, x64 := randF32F64(rng, inC*h*w)
	cols32 := make([]float32, inC*k*k*h*w)
	cols64 := make([]float64, inC*k*k*h*w)
	Im2col32(x32, inC, h, w, k, pad, cols32)
	Im2col(x64, inC, h, w, k, pad, cols64)
	for i := range cols64 {
		if float64(cols32[i]) != cols64[i] {
			t.Fatalf("col %d: got %v want %v", i, cols32[i], cols64[i])
		}
	}
}

// Im2colBatch32 must reproduce, for every sample in the chunk, exactly the
// column block Im2col32 produces for that sample alone — the foundation of
// the f32 batch path's tiling invariance (f32 twin of
// TestIm2colBatchMatchesPerSample).
func TestIm2colBatch32MatchesPerSample(t *testing.T) {
	rng := rand.New(rand.NewSource(65))
	const (
		inC, nb, h, w = 3, 5, 6, 7
		k             = 3
		pad           = (k - 1) / 2
	)
	hw := h * w
	ickk := inC * k * k
	x := make([]float32, inC*nb*hw)
	for i := range x {
		x[i] = float32(rng.NormFloat64())
	}
	single := make([]float32, inC*hw)
	want := make([]float32, ickk*hw)
	for s0 := 0; s0 < nb; s0++ {
		for cb := 1; s0+cb <= nb; cb++ {
			cols := make([]float32, ickk*cb*hw)
			Im2colBatch32(x, inC, nb, s0, cb, h, w, k, pad, cols)
			for bi := 0; bi < cb; bi++ {
				for ic := 0; ic < inC; ic++ {
					copy(single[ic*hw:(ic+1)*hw], x[(ic*nb+s0+bi)*hw:(ic*nb+s0+bi+1)*hw])
				}
				Im2col32(single, inC, h, w, k, pad, want)
				for r := 0; r < ickk; r++ {
					got := cols[r*cb*hw+bi*hw : r*cb*hw+(bi+1)*hw]
					for j, v := range got {
						if v != want[r*hw+j] {
							t.Fatalf("s0=%d cb=%d sample %d row %d col %d: got %v want %v",
								s0, cb, bi, r, j, v, want[r*hw+j])
						}
					}
				}
			}
		}
	}
}

// GemmNN32's per-element reduction order must not depend on the column
// count: evaluating a wide B column-block-by-column-block (as the depth-
// blocked conv path does via Im2colBatch32 chunks) gives bit-identical
// results to one wide call. The guarantee covers the blocked path (n ≥ 2);
// n == 1 takes the matrix–vector fast path with its own accumulator order,
// which the conv path never hits (its column count is ≥ the spatial map
// size, at least 4).
func TestGemmNN32ColumnChunkInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(66))
	const m, k, n = 5, 37, 24
	a, _ := randF32F64(rng, m*k)
	b, _ := randF32F64(rng, k*n)
	wide := make([]float32, m*n)
	GemmNN32(m, n, k, a, b, wide, false)
	for _, chunk := range []int{2, 5, 8, n} {
		got := make([]float32, m*n)
		bcol := make([]float32, k*chunk)
		ccol := make([]float32, m*chunk)
		for j0 := 0; j0 < n; j0 += chunk {
			cb := min(chunk, n-j0)
			for kk := 0; kk < k; kk++ {
				copy(bcol[kk*cb:(kk+1)*cb], b[kk*n+j0:kk*n+j0+cb])
			}
			GemmNN32(m, cb, k, a, bcol, ccol, false)
			for i := 0; i < m; i++ {
				copy(got[i*n+j0:i*n+j0+cb], ccol[i*cb:(i+1)*cb])
			}
		}
		for i := range wide {
			if got[i] != wide[i] {
				t.Fatalf("chunk %d: element %d: got %v want %v", chunk, i, got[i], wide[i])
			}
		}
	}
}

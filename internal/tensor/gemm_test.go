package tensor

import (
	"math"
	"math/rand"
	"testing"
)

// naiveMatMul computes C += Aᵒᵖ·Bᵒᵖ the slow, obviously-correct way.
func naiveMatMul(m, n, k int, a, b, c []float64, transA, transB bool) {
	at := func(i, l int) float64 {
		if transA {
			return a[l*m+i]
		}
		return a[i*k+l]
	}
	bt := func(l, j int) float64 {
		if transB {
			return b[j*k+l]
		}
		return b[l*n+j]
	}
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			s := 0.0
			for l := 0; l < k; l++ {
				s += at(i, l) * bt(l, j)
			}
			c[i*n+j] += s
		}
	}
}

func randSlice(rng *rand.Rand, n int) []float64 {
	s := make([]float64, n)
	for i := range s {
		s[i] = rng.NormFloat64()
	}
	return s
}

func maxAbsDiff(a, b []float64) float64 {
	d := 0.0
	for i := range a {
		if v := math.Abs(a[i] - b[i]); v > d {
			d = v
		}
	}
	return d
}

func TestGemmVariantsMatchNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	// Shapes straddle the blocking panels (gemmNC=512, gemmKC=128) and
	// include degenerate vector cases (n=1, k=1) used by the Dense layer.
	shapes := []struct{ m, n, k int }{
		{1, 1, 1}, {3, 1, 7}, {1, 5, 1}, {2, 3, 4},
		{7, 13, 5}, {16, 600, 9}, {5, 17, 130}, {9, 520, 131},
		{32, 1, 64}, {1, 64, 32},
	}
	for _, sh := range shapes {
		a := randSlice(rng, sh.m*sh.k)
		at := randSlice(rng, sh.k*sh.m)
		b := randSlice(rng, sh.k*sh.n)
		bt := randSlice(rng, sh.n*sh.k)
		for _, acc := range []bool{false, true} {
			base := randSlice(rng, sh.m*sh.n)
			check := func(name string, got, want []float64) {
				t.Helper()
				if d := maxAbsDiff(got, want); d > 1e-12 {
					t.Fatalf("%s %+v acc=%v: max diff %g", name, sh, acc, d)
				}
			}
			prep := func() (got, want []float64) {
				got = append([]float64(nil), base...)
				want = append([]float64(nil), base...)
				if !acc {
					for i := range want {
						want[i] = 0
					}
				}
				return got, want
			}

			got, want := prep()
			GemmNN(sh.m, sh.n, sh.k, a, b, got, acc)
			naiveMatMul(sh.m, sh.n, sh.k, a, b, want, false, false)
			check("GemmNN", got, want)

			got, want = prep()
			GemmNT(sh.m, sh.n, sh.k, a, bt, got, acc)
			naiveMatMul(sh.m, sh.n, sh.k, a, bt, want, false, true)
			check("GemmNT", got, want)

			got, want = prep()
			GemmTN(sh.m, sh.n, sh.k, at, b, got, acc)
			naiveMatMul(sh.m, sh.n, sh.k, at, b, want, true, false)
			check("GemmTN", got, want)
		}
	}
}

func TestGemmPanicsOnShortBuffers(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on short C buffer")
		}
	}()
	GemmNN(2, 2, 2, make([]float64, 4), make([]float64, 4), make([]float64, 3), false)
}

// naiveIm2col is the gather definition the fast path must match.
func naiveIm2col(x []float64, inC, h, w, k, pad int) []float64 {
	cols := make([]float64, inC*k*k*h*w)
	for ic := 0; ic < inC; ic++ {
		for ky := 0; ky < k; ky++ {
			for kx := 0; kx < k; kx++ {
				r := (ic*k+ky)*k + kx
				for oy := 0; oy < h; oy++ {
					for ox := 0; ox < w; ox++ {
						iy, ix := oy+ky-pad, ox+kx-pad
						if iy < 0 || iy >= h || ix < 0 || ix >= w {
							continue
						}
						cols[r*h*w+oy*w+ox] = x[(ic*h+iy)*w+ix]
					}
				}
			}
		}
	}
	return cols
}

var im2colShapes = []struct{ inC, h, w, k, pad int }{
	{1, 1, 1, 1, 0},
	{1, 4, 4, 3, 1},
	{2, 5, 7, 3, 1},
	{3, 6, 4, 5, 2},
	{2, 3, 3, 5, 2}, // kernel larger than the map
	{1, 8, 8, 1, 0},
	{4, 7, 7, 3, 0}, // no padding: border columns are all-zero
}

func TestIm2colMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, sh := range im2colShapes {
		x := randSlice(rng, sh.inC*sh.h*sh.w)
		cols := randSlice(rng, sh.inC*sh.k*sh.k*sh.h*sh.w) // garbage: must be fully overwritten
		Im2col(x, sh.inC, sh.h, sh.w, sh.k, sh.pad, cols)
		want := naiveIm2col(x, sh.inC, sh.h, sh.w, sh.k, sh.pad)
		if d := maxAbsDiff(cols, want); d != 0 {
			t.Fatalf("Im2col %+v: max diff %g", sh, d)
		}
	}
}

func TestCol2imIsIm2colAdjoint(t *testing.T) {
	// <Im2col(x), c> == <x, Col2im(c)> for random x, c: the defining
	// property of the adjoint, which is exactly what backprop needs.
	rng := rand.New(rand.NewSource(3))
	for _, sh := range im2colShapes {
		nx := sh.inC * sh.h * sh.w
		nc := sh.inC * sh.k * sh.k * sh.h * sh.w
		x := randSlice(rng, nx)
		c := randSlice(rng, nc)
		cols := make([]float64, nc)
		Im2col(x, sh.inC, sh.h, sh.w, sh.k, sh.pad, cols)
		back := randSlice(rng, nx) // garbage: Col2im must overwrite
		Col2im(c, sh.inC, sh.h, sh.w, sh.k, sh.pad, back)
		var lhs, rhs float64
		for i := range cols {
			lhs += cols[i] * c[i]
		}
		for i := range x {
			rhs += x[i] * back[i]
		}
		if math.Abs(lhs-rhs) > 1e-9*(1+math.Abs(lhs)) {
			t.Fatalf("adjoint mismatch %+v: %g vs %g", sh, lhs, rhs)
		}
	}
}

func TestSoftmaxIntoMatchesSoftmax(t *testing.T) {
	xs := []float64{-2, 0.5, 3, 3, -7}
	dst := make([]float64, len(xs))
	SoftmaxInto(dst, xs)
	if d := maxAbsDiff(dst, Softmax(xs)); d != 0 {
		t.Fatalf("SoftmaxInto differs from Softmax by %g", d)
	}
}

package tensor

import "fmt"

// Float32 mirrors of the im2col lowering for the inference-only f32 engine.
// Both routines only move data (bulk copies plus border zeroing, no
// arithmetic), so their outputs are exactly the element-wise float32
// conversion of their f64 twins' outputs, and the batched variant's
// per-sample column blocks match Im2col32 on that sample bit-for-bit.
// Col2im has no f32 mirror: gradients stay f64-only.

func im2colCheck32(name string, x, cols []float32, inC, h, w, k, pad int) {
	if inC < 1 || h < 1 || w < 1 || k < 1 || pad < 0 {
		panic(fmt.Sprintf("tensor: %s invalid geometry inC=%d h=%d w=%d k=%d pad=%d",
			name, inC, h, w, k, pad))
	}
	if len(x) < inC*h*w || len(cols) < inC*k*k*h*w {
		panic(fmt.Sprintf("tensor: %s buffers (%d,%d), need (%d,%d)",
			name, len(x), len(cols), inC*h*w, inC*k*k*h*w))
	}
}

// Im2col32 unrolls the (inC, h, w) float32 feature map x into the
// (inC·k·k, h·w) column matrix cols for a stride-1 convolution with the
// given zero padding; see Im2col for the row/column layout.
func Im2col32(x []float32, inC, h, w, k, pad int, cols []float32) {
	im2colCheck32("Im2col32", x, cols, inC, h, w, k, pad)
	hw := h * w
	r := 0
	for ic := 0; ic < inC; ic++ {
		xc := x[ic*hw : (ic+1)*hw]
		for ky := 0; ky < k; ky++ {
			for kx := 0; kx < k; kx++ {
				dst := cols[r*hw : (r+1)*hw]
				ox0 := max(0, pad-kx)
				ox1 := min(w, w+pad-kx)
				for oy := 0; oy < h; oy++ {
					iy := oy + ky - pad
					drow := dst[oy*w : (oy+1)*w]
					if iy < 0 || iy >= h || ox0 >= ox1 {
						clear(drow)
						continue
					}
					clear(drow[:ox0])
					copy(drow[ox0:ox1], xc[iy*w+ox0+kx-pad:iy*w+ox1+kx-pad])
					clear(drow[ox1:])
				}
				r++
			}
		}
	}
}

// Im2colBatch32 unrolls cb consecutive samples (starting at s0) of a
// channel-major (inC, nb, h, w) float32 batch into one wide column matrix;
// see Im2colBatch for the layout. Sample bi's column block is exactly what
// Im2col32 would produce for that sample alone, which keeps batched f32
// convolutions bit-identical across batch tilings.
func Im2colBatch32(x []float32, inC, nb, s0, cb, h, w, k, pad int, cols []float32) {
	if inC < 1 || h < 1 || w < 1 || k < 1 || pad < 0 || nb < 1 || cb < 1 ||
		s0 < 0 || s0+cb > nb {
		panic(fmt.Sprintf("tensor: Im2colBatch32 invalid geometry inC=%d nb=%d s0=%d cb=%d h=%d w=%d k=%d pad=%d",
			inC, nb, s0, cb, h, w, k, pad))
	}
	hw := h * w
	if len(x) < inC*nb*hw || len(cols) < inC*k*k*cb*hw {
		panic(fmt.Sprintf("tensor: Im2colBatch32 buffers (%d,%d), need (%d,%d)",
			len(x), len(cols), inC*nb*hw, inC*k*k*cb*hw))
	}
	r := 0
	for ic := 0; ic < inC; ic++ {
		for ky := 0; ky < k; ky++ {
			for kx := 0; kx < k; kx++ {
				rowBase := r * cb * hw
				ox0 := max(0, pad-kx)
				ox1 := min(w, w+pad-kx)
				for bi := 0; bi < cb; bi++ {
					xc := x[(ic*nb+s0+bi)*hw : (ic*nb+s0+bi+1)*hw]
					dst := cols[rowBase+bi*hw : rowBase+(bi+1)*hw]
					for oy := 0; oy < h; oy++ {
						iy := oy + ky - pad
						drow := dst[oy*w : (oy+1)*w]
						if iy < 0 || iy >= h || ox0 >= ox1 {
							clear(drow)
							continue
						}
						clear(drow[:ox0])
						copy(drow[ox0:ox1], xc[iy*w+ox0+kx-pad:iy*w+ox1+kx-pad])
						clear(drow[ox1:])
					}
				}
				r++
			}
		}
	}
}

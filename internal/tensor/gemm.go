package tensor

import "fmt"

// Cache-blocked f64 GEMM kernels over row-major slices. These back the
// im2col convolution path in internal/nn; all three transpose variants the
// conv forward/backward passes need are provided. The kernels write into
// caller-owned output buffers so steady-state training performs no heap
// allocation.
//
// Blocking: the j (column) dimension is tiled so the C and B panels
// touched by the inner loops stay cache-resident, and the k (reduction)
// dimension is processed in panels of four with an unrolled inner loop, so
// each pass over a C row amortizes four contiguous B rows.

const (
	// gemmNC is the column-panel width: a 512-column f64 panel of C is
	// 4 KiB, comfortably L1-resident alongside the four B rows streamed
	// against it.
	gemmNC = 512
	// gemmKC is the reduction-panel depth bounding the B panel working set
	// (gemmKC × gemmNC × 8 B = 512 KiB worst case, L2-resident).
	gemmKC = 128
)

func gemmCheck(name string, a, b, c []float64, la, lb, lc int) {
	if len(a) < la || len(b) < lb || len(c) < lc {
		panic(fmt.Sprintf("tensor: %s buffer lengths (%d,%d,%d), need at least (%d,%d,%d)",
			name, len(a), len(b), len(c), la, lb, lc))
	}
}

// GemmNN computes C = A·B, or C += A·B when acc is true.
// A is m×k, B is k×n, C is m×n, all row-major.
func GemmNN(m, n, k int, a, b, c []float64, acc bool) {
	gemmCheck("GemmNN", a, b, c, m*k, k*n, m*n)
	if !acc {
		clear(c[:m*n])
	}
	if n == 1 {
		// Matrix–vector fast path (Dense layers): one four-accumulator
		// dot product per output row instead of width-1 panel sweeps.
		for i := 0; i < m; i++ {
			arow := a[i*k : i*k+k]
			var s0, s1, s2, s3 float64
			kk := 0
			for ; kk+3 < k; kk += 4 {
				s0 += arow[kk] * b[kk]
				s1 += arow[kk+1] * b[kk+1]
				s2 += arow[kk+2] * b[kk+2]
				s3 += arow[kk+3] * b[kk+3]
			}
			s := s0 + s1 + s2 + s3
			for ; kk < k; kk++ {
				s += arow[kk] * b[kk]
			}
			c[i] += s
		}
		return
	}
	for j0 := 0; j0 < n; j0 += gemmNC {
		j1 := min(j0+gemmNC, n)
		for k0 := 0; k0 < k; k0 += gemmKC {
			k1 := min(k0+gemmKC, k)
			for i := 0; i < m; i++ {
				arow := a[i*k : i*k+k]
				crow := c[i*n+j0 : i*n+j1]
				kk := k0
				for ; kk+3 < k1; kk += 4 {
					a0, a1, a2, a3 := arow[kk], arow[kk+1], arow[kk+2], arow[kk+3]
					b0 := b[kk*n+j0 : kk*n+j1]
					b1 := b[(kk+1)*n+j0 : (kk+1)*n+j1]
					b2 := b[(kk+2)*n+j0 : (kk+2)*n+j1]
					b3 := b[(kk+3)*n+j0 : (kk+3)*n+j1]
					for j := range crow {
						crow[j] += a0*b0[j] + a1*b1[j] + a2*b2[j] + a3*b3[j]
					}
				}
				for ; kk < k1; kk++ {
					av := arow[kk]
					brow := b[kk*n+j0 : kk*n+j1]
					for j := range crow {
						crow[j] += av * brow[j]
					}
				}
			}
		}
	}
}

// MatVecBatch computes Y = X·Aᵀ for a batch of row vectors: A is m×k
// row-major (one weight row per output), X is nb×k (one input row per
// sample), Y is nb×m. Each output element is evaluated with exactly the
// four-accumulator dot product of GemmNN's n==1 matrix–vector fast path,
// so row bi of Y is bit-identical to GemmNN(m, 1, k, a, x_bi, y_bi, false);
// the output-row-outer/sample-inner nest streams each weight row once
// across the whole batch instead of once per sample. This is the batched
// Dense-layer kernel.
func MatVecBatch(m, k, nb int, a, x, y []float64) {
	gemmCheck("MatVecBatch", a, x, y, m*k, nb*k, nb*m)
	for i := 0; i < m; i++ {
		arow := a[i*k : i*k+k]
		for bi := 0; bi < nb; bi++ {
			xrow := x[bi*k : bi*k+k]
			var s0, s1, s2, s3 float64
			kk := 0
			for ; kk+3 < k; kk += 4 {
				s0 += arow[kk] * xrow[kk]
				s1 += arow[kk+1] * xrow[kk+1]
				s2 += arow[kk+2] * xrow[kk+2]
				s3 += arow[kk+3] * xrow[kk+3]
			}
			s := s0 + s1 + s2 + s3
			for ; kk < k; kk++ {
				s += arow[kk] * xrow[kk]
			}
			y[bi*m+i] = s
		}
	}
}

// GemmNT computes C = A·Bᵀ, or C += A·Bᵀ when acc is true.
// A is m×k, B is n×k (used transposed), C is m×n, all row-major. Each C
// element is a dot product of two contiguous rows, evaluated with four
// independent accumulators.
func GemmNT(m, n, k int, a, b, c []float64, acc bool) {
	gemmCheck("GemmNT", a, b, c, m*k, n*k, m*n)
	if !acc {
		clear(c[:m*n])
	}
	if k == 1 {
		// Rank-1 update fast path (Dense dW with a single column): a plain
		// outer product, so the inner loop streams b and c contiguously
		// instead of issuing length-1 dot products.
		for i := 0; i < m; i++ {
			av := a[i]
			crow := c[i*n : i*n+n]
			for j, bv := range b[:n] {
				crow[j] += av * bv
			}
		}
		return
	}
	// Panel the B rows so one panel is reused across the whole i sweep;
	// ~256 KiB of B per panel.
	jc := max(4, 32768/k)
	for j0 := 0; j0 < n; j0 += jc {
		j1 := min(j0+jc, n)
		for i := 0; i < m; i++ {
			arow := a[i*k : i*k+k]
			crow := c[i*n : i*n+n]
			j := j0
			// Four C elements per A-row pass: the conv dW reductions here
			// have short k (k = H·W after pooling, as low as 16), so the
			// dominant cost is loop setup and A-row traffic, both of which
			// this amortizes 4×.
			for ; j+3 < j1; j += 4 {
				b0 := b[j*k : j*k+k]
				b1 := b[(j+1)*k : (j+1)*k+k]
				b2 := b[(j+2)*k : (j+2)*k+k]
				b3 := b[(j+3)*k : (j+3)*k+k]
				var s0, s1, s2, s3 float64
				for kk, av := range arow {
					s0 += av * b0[kk]
					s1 += av * b1[kk]
					s2 += av * b2[kk]
					s3 += av * b3[kk]
				}
				crow[j] += s0
				crow[j+1] += s1
				crow[j+2] += s2
				crow[j+3] += s3
			}
			for ; j < j1; j++ {
				brow := b[j*k : j*k+k]
				var s0, s1, s2, s3 float64
				kk := 0
				for ; kk+3 < k; kk += 4 {
					s0 += arow[kk] * brow[kk]
					s1 += arow[kk+1] * brow[kk+1]
					s2 += arow[kk+2] * brow[kk+2]
					s3 += arow[kk+3] * brow[kk+3]
				}
				s := s0 + s1 + s2 + s3
				for ; kk < k; kk++ {
					s += arow[kk] * brow[kk]
				}
				crow[j] += s
			}
		}
	}
}

// GemmNTStrided is GemmNT with explicit row strides: row i of A starts at
// a[i*lda], row j of B at b[j*ldb] (both rows still contiguous and k long);
// C is m×n row-major as in GemmNT. The panel structure and per-element
// accumulator pattern are copied verbatim from GemmNT, so for equal
// (m, n, k) the result is bit-identical to GemmNT on densely packed
// operands — this is what lets the batched conv backward accumulate dW one
// sample at a time, in trajectory order, straight out of the channel-major
// batched gradient and column matrices (row strides nb·h·w and cb·h·w)
// while staying byte-identical to the sequential per-step GemmNT calls.
func GemmNTStrided(m, n, k int, a []float64, lda int, b []float64, ldb int, c []float64, acc bool) {
	if lda < k || ldb < k {
		panic(fmt.Sprintf("tensor: GemmNTStrided strides (%d,%d) below k=%d", lda, ldb, k))
	}
	gemmCheck("GemmNTStrided", a, b, c, (m-1)*lda+k, (n-1)*ldb+k, m*n)
	if !acc {
		clear(c[:m*n])
	}
	if k == 1 {
		for i := 0; i < m; i++ {
			av := a[i*lda]
			crow := c[i*n : i*n+n]
			for j := range crow {
				crow[j] += av * b[j*ldb]
			}
		}
		return
	}
	jc := max(4, 32768/k)
	for j0 := 0; j0 < n; j0 += jc {
		j1 := min(j0+jc, n)
		for i := 0; i < m; i++ {
			arow := a[i*lda : i*lda+k]
			crow := c[i*n : i*n+n]
			j := j0
			for ; j+3 < j1; j += 4 {
				b0 := b[j*ldb : j*ldb+k]
				b1 := b[(j+1)*ldb : (j+1)*ldb+k]
				b2 := b[(j+2)*ldb : (j+2)*ldb+k]
				b3 := b[(j+3)*ldb : (j+3)*ldb+k]
				var s0, s1, s2, s3 float64
				for kk, av := range arow {
					s0 += av * b0[kk]
					s1 += av * b1[kk]
					s2 += av * b2[kk]
					s3 += av * b3[kk]
				}
				crow[j] += s0
				crow[j+1] += s1
				crow[j+2] += s2
				crow[j+3] += s3
			}
			for ; j < j1; j++ {
				brow := b[j*ldb : j*ldb+k]
				var s0, s1, s2, s3 float64
				kk := 0
				for ; kk+3 < k; kk += 4 {
					s0 += arow[kk] * brow[kk]
					s1 += arow[kk+1] * brow[kk+1]
					s2 += arow[kk+2] * brow[kk+2]
					s3 += arow[kk+3] * brow[kk+3]
				}
				s := s0 + s1 + s2 + s3
				for ; kk < k; kk++ {
					s += arow[kk] * brow[kk]
				}
				crow[j] += s
			}
		}
	}
}

// GemmTN computes C = Aᵀ·B, or C += Aᵀ·B when acc is true.
// A is k×m (used transposed), B is k×n, C is m×n, all row-major. The
// reduction runs over rows of A and B, so the inner loop streams
// contiguous B and C rows; only the four per-panel A loads are strided.
func GemmTN(m, n, k int, a, b, c []float64, acc bool) {
	gemmCheck("GemmTN", a, b, c, k*m, k*n, m*n)
	if !acc {
		clear(c[:m*n])
	}
	if n == 1 {
		// Transposed matrix–vector fast path (Dense dX): accumulate scaled
		// rows of A so every load is contiguous instead of striding down
		// A's columns one element at a time.
		for l := 0; l < k; l++ {
			bv := b[l]
			arow := a[l*m : l*m+m]
			for i, av := range arow {
				c[i] += av * bv
			}
		}
		return
	}
	for j0 := 0; j0 < n; j0 += gemmNC {
		j1 := min(j0+gemmNC, n)
		l := 0
		for ; l+3 < k; l += 4 {
			b0 := b[l*n+j0 : l*n+j1]
			b1 := b[(l+1)*n+j0 : (l+1)*n+j1]
			b2 := b[(l+2)*n+j0 : (l+2)*n+j1]
			b3 := b[(l+3)*n+j0 : (l+3)*n+j1]
			for i := 0; i < m; i++ {
				a0, a1, a2, a3 := a[l*m+i], a[(l+1)*m+i], a[(l+2)*m+i], a[(l+3)*m+i]
				crow := c[i*n+j0 : i*n+j1]
				for j := range crow {
					crow[j] += a0*b0[j] + a1*b1[j] + a2*b2[j] + a3*b3[j]
				}
			}
		}
		for ; l < k; l++ {
			brow := b[l*n+j0 : l*n+j1]
			for i := 0; i < m; i++ {
				av := a[l*m+i]
				crow := c[i*n+j0 : i*n+j1]
				for j := range crow {
					crow[j] += av * brow[j]
				}
			}
		}
	}
}

package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewAndSize(t *testing.T) {
	x := New(2, 3, 4)
	if x.Size() != 24 || len(x.Data) != 24 {
		t.Fatalf("size = %d", x.Size())
	}
}

func TestNewPanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for zero dimension")
		}
	}()
	New(2, 0)
}

func TestFromSliceValidatesLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for mismatched length")
		}
	}()
	FromSlice([]float64{1, 2, 3}, 2, 2)
}

func TestAtSetRoundTrip(t *testing.T) {
	x := New(2, 3)
	x.Set(7.5, 1, 2)
	if got := x.At(1, 2); got != 7.5 {
		t.Fatalf("got %v", got)
	}
	if x.Data[5] != 7.5 {
		t.Fatal("row-major layout broken")
	}
}

func TestAtPanicsOutOfRange(t *testing.T) {
	x := New(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	x.At(2, 0)
}

func TestReshapeSharesData(t *testing.T) {
	x := New(4)
	v := x.Reshape(2, 2)
	v.Set(3, 1, 1)
	if x.Data[3] != 3 {
		t.Fatal("reshape copied data")
	}
}

func TestCloneIsIndependent(t *testing.T) {
	x := New(3)
	c := x.Clone()
	c.Data[0] = 9
	if x.Data[0] != 0 {
		t.Fatal("clone aliases data")
	}
}

func TestArithmeticInPlace(t *testing.T) {
	x := FromSlice([]float64{1, 2}, 2)
	y := FromSlice([]float64{10, 20}, 2)
	x.AddInPlace(y)
	x.ScaleInPlace(2)
	x.AxpyInPlace(-1, y)
	if x.Data[0] != 12 || x.Data[1] != 24 {
		t.Fatalf("data = %v", x.Data)
	}
}

func TestClip(t *testing.T) {
	x := FromSlice([]float64{-5, 0.5, 5}, 3)
	x.ClipInPlace(1)
	if x.Data[0] != -1 || x.Data[1] != 0.5 || x.Data[2] != 1 {
		t.Fatalf("clip = %v", x.Data)
	}
}

func TestNorm(t *testing.T) {
	x := FromSlice([]float64{3, 4}, 2)
	if x.Norm() != 5 {
		t.Fatalf("norm = %v", x.Norm())
	}
}

func TestMatVec(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	y := MatVec(a, []float64{1, 0, -1})
	if y[0] != -2 || y[1] != -2 {
		t.Fatalf("y = %v", y)
	}
}

// Property: MatVecT is the adjoint of MatVec: <Ax, y> == <x, Aᵀy>.
func TestMatVecAdjointQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m, n := 1+r.Intn(5), 1+r.Intn(5)
		a := Randn(r, 1, m, n)
		x := make([]float64, n)
		y := make([]float64, m)
		for i := range x {
			x[i] = r.NormFloat64()
		}
		for i := range y {
			y[i] = r.NormFloat64()
		}
		ax := MatVec(a, x)
		aty := MatVecT(a, y)
		var lhs, rhs float64
		for i := range y {
			lhs += ax[i] * y[i]
		}
		for i := range x {
			rhs += x[i] * aty[i]
		}
		return math.Abs(lhs-rhs) < 1e-9*(1+math.Abs(lhs))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

func TestSoftmax(t *testing.T) {
	p := Softmax([]float64{1, 1, 1, 1})
	for _, v := range p {
		if math.Abs(v-0.25) > 1e-12 {
			t.Fatalf("uniform softmax = %v", p)
		}
	}
	// Numerically stable for huge logits.
	p = Softmax([]float64{1000, 999})
	if math.IsNaN(p[0]) || p[0] < p[1] {
		t.Fatalf("softmax overflow: %v", p)
	}
	sum := p[0] + p[1]
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("sum = %v", sum)
	}
}

func TestRandnDeterministicPerSeed(t *testing.T) {
	a := Randn(rand.New(rand.NewSource(5)), 1, 10)
	b := Randn(rand.New(rand.NewSource(5)), 1, 10)
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatal("Randn not deterministic")
		}
	}
}

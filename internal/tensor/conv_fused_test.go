package tensor

import (
	"math/rand"
	"strconv"
	"testing"
)

// TestConvFusedMatchesLowered pins the fused conv kernels to the lowered
// im2col/GEMM path bit-for-bit, across kernel sizes (including the even
// stem-sized kernels), channel counts that exercise both GEMM dot flavors
// and the four-lane group leftovers, and spatial sizes where w is not a
// multiple of four (the 10×10 net's 25×25 pooled planes).
func TestConvFusedMatchesLowered(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for _, sz := range []struct{ inC, outC, h, w, k int }{
		{1, 2, 16, 16, 8},  // 8×8 stem: even kernel, single input channel
		{1, 2, 15, 15, 10}, // 10×10-style stem on an odd plane
		{2, 4, 12, 12, 3},
		{4, 8, 6, 7, 3}, // non-square, w ≡ 3 (mod 4)
		{8, 16, 5, 5, 3},
		{16, 2, 5, 5, 3}, // head conv shape: outC below the 4-lane group
		{3, 3, 4, 4, 1},  // 1×1 conv
		{5, 1, 9, 9, 3},  // single output channel: all-leftover GemmTN rows
		{2, 4, 2, 33, 5}, // ickk=50 ≡ 2 (mod 4): trailing singles in GemmNN
	} {
		name := strconv.Itoa(sz.inC) + "c" + strconv.Itoa(sz.outC) + "_" +
			strconv.Itoa(sz.h) + "x" + strconv.Itoa(sz.w) + "k" + strconv.Itoa(sz.k)
		t.Run(name, func(t *testing.T) {
			h, w, k := sz.h, sz.w, sz.k
			hw := h * w
			pad := (k - 1) / 2
			ickk := sz.inC * k * k
			hp, wp := h+k-1, w+k-1
			x := make([]float64, sz.inC*hw)
			weights := make([]float64, sz.outC*ickk)
			grad := make([]float64, sz.outC*hw)
			for i := range x {
				x[i] = rng.NormFloat64()
			}
			for i := range weights {
				weights[i] = rng.NormFloat64()
			}
			for i := range grad {
				grad[i] = rng.NormFloat64()
			}

			// Lowered oracles.
			cols := make([]float64, ickk*hw)
			Im2col(x, sz.inC, h, w, k, pad, cols)
			wantOut := make([]float64, sz.outC*hw)
			GemmNN(sz.outC, hw, ickk, weights, cols, wantOut, false)
			wantDW := make([]float64, sz.outC*ickk)
			for i := range wantDW {
				wantDW[i] = rng.NormFloat64() // pre-fill: dW accumulates
			}
			gotDW := append([]float64(nil), wantDW...)
			GemmNT(sz.outC, ickk, hw, grad, cols, wantDW, true)
			dcols := make([]float64, ickk*hw)
			GemmTN(ickk, hw, sz.outC, weights, grad, dcols, false)
			wantDX := make([]float64, sz.inC*hw)
			Col2im(dcols, sz.inC, h, w, k, pad, wantDX)

			// Fused kernels on padded planes, with non-trivial strides.
			xpStride := hp*wp + 3
			xp := make([]float64, sz.inC*xpStride)
			for i := range xp {
				xp[i] = 1e30 // poison the stride gaps
			}
			for ic := 0; ic < sz.inC; ic++ {
				PadPlane(x[ic*hw:(ic+1)*hw], h, w, k, xp[ic*xpStride:ic*xpStride+hp*wp])
			}
			oStride := hw + 5
			gotOut := make([]float64, sz.outC*oStride)
			gs := make([]float64, sz.outC*oStride)
			for oc := 0; oc < sz.outC; oc++ {
				copy(gs[oc*oStride:oc*oStride+hw], grad[oc*hw:(oc+1)*hw])
			}
			pout := make([]float64, (h-1)*wp+w)
			for i := range pout {
				pout[i] = 1e30 // scratch must be clobbered, not trusted
			}
			ConvFwdPad(weights, sz.outC, sz.inC, xp, xpStride, h, w, k, gotOut, oStride, pout)
			lead := k - 1 - pad
			gpadStride := hp*wp + 2
			gpad := make([]float64, sz.outC*gpadStride)
			for i := range gpad {
				gpad[i] = 1e30 // PadPlaneLead must overwrite rows AND borders
			}
			for oc := 0; oc < sz.outC; oc++ {
				PadPlaneLead(gs[oc*oStride:], h, w, k, lead, gpad[oc*gpadStride:])
			}
			// The gapped view ConvDWPad walks is the padded planes' interior.
			gp := gpad[lead*wp+lead:]
			rowBuf := make([]float64, hw)
			ConvDWPad(gs, oStride, gp, gpadStride, xp, xpStride, sz.outC, sz.inC, h, w, k, gotDW, rowBuf)
			dxStride := hw + 7
			gotDX := make([]float64, sz.inC*dxStride)
			for i := range gotDX {
				gotDX[i] = 1e30 // ConvDXPad must overwrite its planes
			}
			srow := make([]float64, w)
			ConvDXPad(weights, sz.outC, sz.inC, gpad, gpadStride, h, w, k, gotDX, dxStride, srow)

			for oc := 0; oc < sz.outC; oc++ {
				for i := 0; i < hw; i++ {
					if gotOut[oc*oStride+i] != wantOut[oc*hw+i] {
						t.Fatalf("forward oc=%d i=%d: got %v want %v", oc, i, gotOut[oc*oStride+i], wantOut[oc*hw+i])
					}
				}
			}
			for i := range wantDW {
				if gotDW[i] != wantDW[i] {
					t.Fatalf("dW elem %d: got %v want %v", i, gotDW[i], wantDW[i])
				}
			}
			for ic := 0; ic < sz.inC; ic++ {
				for i := 0; i < hw; i++ {
					if gotDX[ic*dxStride+i] != wantDX[ic*hw+i] {
						t.Fatalf("dX ic=%d i=%d: got %v want %v", ic, i, gotDX[ic*dxStride+i], wantDX[ic*hw+i])
					}
				}
			}
		})
	}
}

package tensor

import "fmt"

// Fused (materialization-free) convolution kernels for the batched training
// path. The im2col formulation moves K²× the input volume through cols/dcols
// buffers that are megabytes per sample at paper scale; these kernels read a
// zero-padded copy of the input plane instead, so every value the GEMM would
// have loaded from a cols row is loaded from the padded plane at a computed
// offset — the same value, in the same place in the same per-element
// reduction chain. That makes each kernel bit-identical to its lowered
// counterpart:
//
//	ConvFwdPad  ≡ Im2col + GemmNN      (conv forward)
//	ConvDWPad   ≡ GemmNT over cols     (conv weight gradient)
//	ConvDXPad   ≡ GemmTN + Col2im      (conv input gradient)
//
// The equivalences are pinned by TestConvFusedMatchesLowered, which runs the
// lowered kernels as oracles. Four structural facts carry the proofs:
//
//  1. Pad zeros participate. The padded plane holds explicit +0 entries
//     where im2col writes zeros, so grouped expressions such as
//     a0·b0+a1·b1+a2·b2+a3·b3 see exactly the operands the GEMM saw —
//     nothing is skipped, no sign-of-zero or grouping difference can arise.
//
//  2. Only loop nests are reordered, never per-element chains. A C element's
//     accumulation order in the lowered kernels depends only on the
//     reduction index (GemmNN: aligned 4-term groups within gemmKC panels;
//     GemmNT: position of the output column within its jc panel selects the
//     sequential or the four-lane dot; GemmTN: aligned 4-lane groups over
//     the reduction dim), all of which these kernels reproduce exactly.
//     ConvDXPad blocks by output row so the accumulating row stays
//     cache-resident; per element that changes nothing.
//
//  3. Zero terms may be inserted into a chain. ConvDWPad walks the gradient
//     plane as one (h-1)·wp+w span whose k-1 inter-row gap elements are
//     exact zeros (a view into the padded plane), and ConvDXPad gathers
//     from positions Col2im would have clipped, which read pad zeros. Both
//     add av·b = ±0 to a running accumulator — and an accumulator that
//     starts at +0 can never hold -0 under round-to-nearest (x+(-x) = +0;
//     -0 only arises from (-0)+(-0)), so s + (±0) returns s bit-for-bit.
//
//  4. A dcols value's sign of zero never reaches dX (the accumulating dX
//     element is never -0, and t+(+0) == t+(-0) for such t), which licenses
//     evaluating the grouped-outC expression straight into dX for outC ≤ 4
//     and assigning the first group into the outC > 4 scratch row instead
//     of adding it to a cleared one.
//
// The zero-term argument assumes finite inputs: a gap term is av·b with one
// operand exactly ±0, which is ±0 only when the other operand is finite
// (0·Inf = NaN). Training data, weights, and gradients are finite by
// invariant — the lowered path produces garbage on non-finite values anyway.
//
// All kernels require h·w > 1: at h·w == 1 the lowered path would take the
// GEMM matrix–vector fast paths, whose accumulator patterns differ. The
// networks in internal/nn never pool below 2×2.

// PadPlane copies an (h, w) plane into an (h+k-1, w+k-1) plane with a zero
// border sized for a stride-1 "same" convolution with a k×k kernel and
// pad = (k-1)/2: source pixel (y, x) lands at (y+pad, x+pad). dst is fully
// overwritten. The border is (k-1)/2 on the leading sides and k-1-(k-1)/2 on
// the trailing sides, covering even k exactly as Im2col's bounds do.
func PadPlane(src []float64, h, w, k int, dst []float64) {
	PadPlaneLead(src, h, w, k, (k-1)/2, dst)
}

// PadPlaneLead is PadPlane with an explicit leading border: source pixel
// (y, x) lands at (y+lead, x+lead) in the (h+k-1, w+k-1) destination. The
// gradient planes use lead = k-1-pad, which orients the plane for the
// gather formulation of col2im (ConvDXPad) while its interior rows, viewed
// from offset lead·wp+lead at stride wp, double as the zero-gapped span
// ConvDWPad's long dots walk.
func PadPlaneLead(src []float64, h, w, k, lead int, dst []float64) {
	hp, wp := h+k-1, w+k-1
	if len(src) < h*w || len(dst) < hp*wp {
		panic(fmt.Sprintf("tensor: PadPlaneLead buffers (%d,%d), need (%d,%d)", len(src), len(dst), h*w, hp*wp))
	}
	clear(dst[:lead*wp])
	for y := 0; y < h; y++ {
		row := dst[(y+lead)*wp : (y+lead+1)*wp]
		clear(row[:lead])
		copy(row[lead:lead+w], src[y*w:(y+1)*w])
		clear(row[lead+w:])
	}
	clear(dst[(h+lead)*wp : hp*wp])
}

// ConvFwdPad computes the stride-1 "same" convolution out = W∗x directly
// from padded input planes, bit-identical to GemmNN(outC, h·w, inC·k²,
// weights, im2col(x), out, false): per output element, reduction indices are
// consumed in aligned four-term grouped expressions within gemmKC panels,
// exactly as GemmNN's inner loops emit them. Each output channel accumulates
// into the gapped scratch row pout (length ≥ (h-1)·(w+k-1)+w, clobbered) in
// single long sweeps — the gap elements collect garbage cross-products that
// the final interior copy discards. No bias is applied.
//
// xp holds inC padded planes of (h+k-1)×(w+k-1); plane ic starts at
// xp[ic*xpStride]. out receives outC rows of h·w; row oc starts at
// out[oc*outStride] and is overwritten.
func ConvFwdPad(weights []float64, outC, inC int, xp []float64, xpStride int, h, w, k int, out []float64, outStride int, pout []float64) {
	hw := h * w
	if hw <= 1 {
		panic("tensor: ConvFwdPad requires h*w > 1")
	}
	kk2 := k * k
	ickk := inC * kk2
	wp := w + k - 1
	span := (h-1)*wp + w
	if len(weights) < outC*ickk || len(xp) < (inC-1)*xpStride+(h+k-1)*wp ||
		len(out) < (outC-1)*outStride+hw || len(pout) < span {
		panic("tensor: ConvFwdPad buffer lengths too short")
	}
	// base(r) is the padded-plane offset of reduction index r = (ic, ky, kx)
	// at output pixel (0, 0); gapped position t = oy*wp + ox adds t.
	base := func(r int) int {
		ic, rem := r/kk2, r%kk2
		return ic*xpStride + (rem/k)*wp + rem%k
	}
	pp := pout[:span]
	for oc := 0; oc < outC; oc++ {
		wrow := weights[oc*ickk : (oc+1)*ickk]
		clear(pp)
		for k0 := 0; k0 < ickk; k0 += gemmKC {
			k1 := min(k0+gemmKC, ickk)
			kk := k0
			for ; kk+3 < k1; kk += 4 {
				a0, a1, a2, a3 := wrow[kk], wrow[kk+1], wrow[kk+2], wrow[kk+3]
				p0 := xp[base(kk):][:span]
				p1 := xp[base(kk+1):][:span]
				p2 := xp[base(kk+2):][:span]
				p3 := xp[base(kk+3):][:span]
				for t := range pp {
					pp[t] += a0*p0[t] + a1*p1[t] + a2*p2[t] + a3*p3[t]
				}
			}
			for ; kk < k1; kk++ {
				av := wrow[kk]
				prow := xp[base(kk):][:span]
				for t := range pp {
					pp[t] += av * prow[t]
				}
			}
		}
		orow := out[oc*outStride : oc*outStride+hw]
		for oy := 0; oy < h; oy++ {
			copy(orow[oy*w:(oy+1)*w], pp[oy*wp:oy*wp+w])
		}
	}
}

// ConvDWPad accumulates the convolution weight gradient dW += dY·im2col(x)ᵀ
// directly from padded input planes, bit-identical to GemmNT(outC, inC·k²,
// h·w, grad, im2col(x), wGrad, true). GemmNT evaluates most output columns
// with a strictly sequential single-accumulator dot (the four-wide column
// panels) and the ≤3 leftover columns of each jc panel with the four-lane
// interleaved dot; which flavor an element gets depends only on its column's
// position within its panel, which this kernel reproduces. The four-wide
// dots run one long loop over the zero-gapped gradient span gp (gap terms
// add ±0 — no-ops); the leftover columns gather their cols row into rowBuf
// (h·w scratch) and run the exact four-lane dot over the compact row, whose
// lane phase the gapped layout would shift.
//
// grad holds outC compact rows of h·w starting at grad[oc*gStride]; gp holds
// the same gradient rows at stride wp = w+k-1 with exact zeros in the k-1
// gap elements between rows (the interior view of a PadPlaneLead plane),
// channel oc starting at gp[oc*gpStride]; xp as in ConvFwdPad; wGrad is the
// dense (outC, inC·k²) gradient, accumulated.
func ConvDWPad(grad []float64, gStride int, gp []float64, gpStride int, xp []float64, xpStride int, outC, inC, h, w, k int, wGrad []float64, rowBuf []float64) {
	hw := h * w
	if hw <= 1 {
		panic("tensor: ConvDWPad requires h*w > 1")
	}
	kk2 := k * k
	ickk := inC * kk2
	wp := w + k - 1
	span := (h-1)*wp + w
	if len(grad) < (outC-1)*gStride+hw || len(gp) < (outC-1)*gpStride+span ||
		len(xp) < (inC-1)*xpStride+(h+k-1)*wp ||
		len(wGrad) < outC*ickk || len(rowBuf) < hw {
		panic("tensor: ConvDWPad buffer lengths too short")
	}
	base := func(r int) int {
		ic, rem := r/kk2, r%kk2
		return ic*xpStride + (rem/k)*wp + rem%k
	}
	jc := max(4, 32768/hw)
	for j0 := 0; j0 < ickk; j0 += jc {
		j1 := min(j0+jc, ickk)
		for i := 0; i < outC; i++ {
			crow := wGrad[i*ickk : (i+1)*ickk]
			gprow := gp[i*gpStride : i*gpStride+span]
			j := j0
			for ; j+3 < j1; j += 4 {
				// The four-wide panel flavor: per element, one accumulator
				// over the reduction in ascending order — four independent
				// chains interleaved exactly as GemmNT's panel loop, which
				// is what keeps four FP adds in flight.
				p0 := xp[base(j):][:span]
				p1 := xp[base(j+1):][:span]
				p2 := xp[base(j+2):][:span]
				p3 := xp[base(j+3):][:span]
				var s0, s1, s2, s3 float64
				for t, av := range gprow {
					s0 += av * p0[t]
					s1 += av * p1[t]
					s2 += av * p2[t]
					s3 += av * p3[t]
				}
				crow[j] += s0
				crow[j+1] += s1
				crow[j+2] += s2
				crow[j+3] += s3
			}
			if j >= j1 {
				continue
			}
			arow := grad[i*gStride : i*gStride+hw]
			for ; j < j1; j++ {
				// The leftover flavor: the four-lane interleaved dot. Gather
				// the cols row once so the lane phase matches the dense
				// layout even when w is not a multiple of four.
				rb := base(j)
				for oy := 0; oy < h; oy++ {
					copy(rowBuf[oy*w:(oy+1)*w], xp[rb+oy*wp:][:w])
				}
				var s0, s1, s2, s3 float64
				kk := 0
				for ; kk+3 < hw; kk += 4 {
					s0 += arow[kk] * rowBuf[kk]
					s1 += arow[kk+1] * rowBuf[kk+1]
					s2 += arow[kk+2] * rowBuf[kk+2]
					s3 += arow[kk+3] * rowBuf[kk+3]
				}
				s := s0 + s1 + s2 + s3
				for ; kk < hw; kk++ {
					s += arow[kk] * rowBuf[kk]
				}
				crow[j] += s
			}
		}
	}
}

// ConvDXPad computes the convolution input gradient dX = col2im(Wᵀ·dY)
// without materializing the (inC·k², h·w) dcols matrix, bit-identical to
// GemmTN(inC·k², h·w, outC, weights, grad, dcols, false) followed by
// Col2im(dcols, ...). It runs col2im as a gather: a dX element's lowered
// chain is "for r ascending, add the grouped-outC dcols value", and that
// dcols value lives at a fixed offset in the zero-padded gradient planes —
// so each w-length dX row accumulates all k² reduction indices of its plane
// while cache-hot. Positions Col2im would have clipped read pad zeros and
// add ±0 (no-ops); each grouped value is GemmTN's exact per-element pattern
// (aligned four-lane groups over outC plus leftover singles), evaluated
// straight into dX for outC ≤ 4 and via the w-length scratch row srow for
// outC > 4 (see the package comment for the sign-of-zero licenses).
//
// gpad holds outC gradient planes padded by PadPlaneLead with
// lead = k-1-(k-1)/2, plane oc starting at gpad[oc*gpadStride]; dx receives
// inC compact planes of h·w starting at dx[ic*dxStride], overwritten.
func ConvDXPad(weights []float64, outC, inC int, gpad []float64, gpadStride int, h, w, k int, dx []float64, dxStride int, srow []float64) {
	hw := h * w
	if hw <= 1 {
		panic("tensor: ConvDXPad requires h*w > 1")
	}
	kk2 := k * k
	ickk := inC * kk2
	wp := w + k - 1
	if len(weights) < outC*ickk || len(gpad) < (outC-1)*gpadStride+(h+k-1)*wp ||
		len(dx) < (inC-1)*dxStride+hw || len(srow) < w {
		panic("tensor: ConvDXPad buffer lengths too short")
	}
	sr := srow[:w]
	for ic := 0; ic < inC; ic++ {
		for y := 0; y < h; y++ {
			drow := dx[ic*dxStride+y*w : ic*dxStride+(y+1)*w]
			clear(drow)
			ky, kx := 0, 0
			for rr := 0; rr < kk2; rr++ {
				r := ic*kk2 + rr
				// dcols row r at output row oy = y+pad-ky reads the padded
				// gradient at plane row oy+lead = y+(k-1)-ky, column offset
				// pad-kx+lead = (k-1)-kx: always in bounds, zeros where the
				// lowered path had no contribution.
				gbase := (y+k-1-ky)*wp + (k - 1 - kx)
				if kx++; kx == k {
					kx, ky = 0, ky+1
				}
				switch {
				case outC == 1:
					a0 := weights[r]
					g0 := gpad[gbase:][:w]
					for x := range drow {
						drow[x] += a0 * g0[x]
					}
				case outC == 2:
					a0, a1 := weights[r], weights[ickk+r]
					g0 := gpad[gbase:][:w]
					g1 := gpad[gpadStride+gbase:][:w]
					for x := range drow {
						drow[x] += a0*g0[x] + a1*g1[x]
					}
				case outC == 3:
					a0, a1, a2 := weights[r], weights[ickk+r], weights[2*ickk+r]
					g0 := gpad[gbase:][:w]
					g1 := gpad[gpadStride+gbase:][:w]
					g2 := gpad[2*gpadStride+gbase:][:w]
					for x := range drow {
						drow[x] += a0*g0[x] + a1*g1[x] + a2*g2[x]
					}
				case outC == 4:
					a0, a1, a2, a3 := weights[r], weights[ickk+r], weights[2*ickk+r], weights[3*ickk+r]
					g0 := gpad[gbase:][:w]
					g1 := gpad[gpadStride+gbase:][:w]
					g2 := gpad[2*gpadStride+gbase:][:w]
					g3 := gpad[3*gpadStride+gbase:][:w]
					for x := range drow {
						drow[x] += a0*g0[x] + a1*g1[x] + a2*g2[x] + a3*g3[x]
					}
				default:
					// GemmTN's aligned four-lane groups over outC, then
					// leftover singles. The first group assigns; outC >= 5
					// here, so it always exists.
					l := 0
					for ; l+3 < outC; l += 4 {
						a0 := weights[l*ickk+r]
						a1 := weights[(l+1)*ickk+r]
						a2 := weights[(l+2)*ickk+r]
						a3 := weights[(l+3)*ickk+r]
						g0 := gpad[l*gpadStride+gbase:][:w]
						g1 := gpad[(l+1)*gpadStride+gbase:][:w]
						g2 := gpad[(l+2)*gpadStride+gbase:][:w]
						g3 := gpad[(l+3)*gpadStride+gbase:][:w]
						if l == 0 {
							for x := range sr {
								sr[x] = a0*g0[x] + a1*g1[x] + a2*g2[x] + a3*g3[x]
							}
						} else {
							for x := range sr {
								sr[x] += a0*g0[x] + a1*g1[x] + a2*g2[x] + a3*g3[x]
							}
						}
					}
					for ; l < outC; l++ {
						av := weights[l*ickk+r]
						grow := gpad[l*gpadStride+gbase:][:w]
						for x := range sr {
							sr[x] += av * grow[x]
						}
					}
					for x := range drow {
						drow[x] += sr[x]
					}
				}
			}
		}
	}
}

// Package tensor implements the dense float64 tensors underlying the
// neural-network package. Only the operations the DRL framework needs are
// provided; everything is written against the standard library.
package tensor

import (
	"fmt"
	"math"
	"math/rand"
)

// Tensor is a dense row-major float64 tensor.
type Tensor struct {
	Shape []int
	Data  []float64
}

// New allocates a zero tensor with the given shape.
func New(shape ...int) *Tensor {
	n := 1
	for _, s := range shape {
		if s <= 0 {
			panic(fmt.Sprintf("tensor: invalid dimension %d in %v", s, shape))
		}
		n *= s
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: make([]float64, n)}
}

// FromSlice wraps data with the given shape; data length must match.
func FromSlice(data []float64, shape ...int) *Tensor {
	t := &Tensor{Shape: append([]int(nil), shape...), Data: data}
	if len(data) != t.Size() {
		panic(fmt.Sprintf("tensor: data length %d != shape %v", len(data), shape))
	}
	return t
}

// Randn fills a new tensor with N(0, std²) samples.
func Randn(rng *rand.Rand, std float64, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.Data {
		t.Data[i] = rng.NormFloat64() * std
	}
	return t
}

// Size returns the element count.
func (t *Tensor) Size() int {
	n := 1
	for _, s := range t.Shape {
		n *= s
	}
	return n
}

// Clone deep-copies the tensor.
func (t *Tensor) Clone() *Tensor {
	c := New(t.Shape...)
	copy(c.Data, t.Data)
	return c
}

// ZerosLike returns a zero tensor with t's shape.
func (t *Tensor) ZerosLike() *Tensor { return New(t.Shape...) }

// Reshape returns a view with a new shape of equal size.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	v := &Tensor{Shape: append([]int(nil), shape...), Data: t.Data}
	if v.Size() != t.Size() {
		panic(fmt.Sprintf("tensor: reshape %v -> %v changes size", t.Shape, shape))
	}
	return v
}

// At reads the element at the given indices.
func (t *Tensor) At(idx ...int) float64 { return t.Data[t.offset(idx)] }

// Set writes the element at the given indices.
func (t *Tensor) Set(v float64, idx ...int) { t.Data[t.offset(idx)] = v }

func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.Shape) {
		panic(fmt.Sprintf("tensor: %d indices for shape %v", len(idx), t.Shape))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.Shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of shape %v", idx, t.Shape))
		}
		off = off*t.Shape[i] + x
	}
	return off
}

// AddInPlace accumulates o into t elementwise.
func (t *Tensor) AddInPlace(o *Tensor) {
	if t.Size() != o.Size() {
		panic("tensor: size mismatch in AddInPlace")
	}
	for i, v := range o.Data {
		t.Data[i] += v
	}
}

// ScaleInPlace multiplies every element by s.
func (t *Tensor) ScaleInPlace(s float64) {
	for i := range t.Data {
		t.Data[i] *= s
	}
}

// AxpyInPlace computes t += a*o.
func (t *Tensor) AxpyInPlace(a float64, o *Tensor) {
	if t.Size() != o.Size() {
		panic("tensor: size mismatch in AxpyInPlace")
	}
	for i, v := range o.Data {
		t.Data[i] += a * v
	}
}

// Fill sets every element to v.
func (t *Tensor) Fill(v float64) {
	if v == 0 {
		clear(t.Data) // compiles to memclr; Fill(0) is the ZeroGrads hot path
		return
	}
	for i := range t.Data {
		t.Data[i] = v
	}
}

// Norm returns the L2 norm of the tensor.
func (t *Tensor) Norm() float64 {
	s := 0.0
	for _, v := range t.Data {
		s += v * v
	}
	return math.Sqrt(s)
}

// ClipInPlace clamps every element to [-c, c].
func (t *Tensor) ClipInPlace(c float64) {
	for i, v := range t.Data {
		if v > c {
			t.Data[i] = c
		} else if v < -c {
			t.Data[i] = -c
		}
	}
}

// MatVec computes y = A·x for a 2-D tensor A (m×n) and a vector x (n).
func MatVec(a *Tensor, x []float64) []float64 {
	if len(a.Shape) != 2 || a.Shape[1] != len(x) {
		panic(fmt.Sprintf("tensor: MatVec shapes %v · %d", a.Shape, len(x)))
	}
	m, n := a.Shape[0], a.Shape[1]
	y := make([]float64, m)
	for i := 0; i < m; i++ {
		s := 0.0
		row := a.Data[i*n : (i+1)*n]
		for j, w := range row {
			s += w * x[j]
		}
		y[i] = s
	}
	return y
}

// MatVecT computes y = Aᵀ·x for a 2-D tensor A (m×n) and vector x (m).
func MatVecT(a *Tensor, x []float64) []float64 {
	if len(a.Shape) != 2 || a.Shape[0] != len(x) {
		panic(fmt.Sprintf("tensor: MatVecT shapes %vᵀ · %d", a.Shape, len(x)))
	}
	m, n := a.Shape[0], a.Shape[1]
	y := make([]float64, n)
	for i := 0; i < m; i++ {
		xi := x[i]
		if xi == 0 {
			continue
		}
		row := a.Data[i*n : (i+1)*n]
		for j, w := range row {
			y[j] += w * xi
		}
	}
	return y
}

// Softmax returns the softmax of xs (numerically stable).
func Softmax(xs []float64) []float64 {
	out := make([]float64, len(xs))
	SoftmaxInto(out, xs)
	return out
}

// SoftmaxInto writes the softmax of xs into dst (len(dst) == len(xs)),
// allocation-free for hot paths that reuse dst.
func SoftmaxInto(dst, xs []float64) {
	if len(dst) != len(xs) {
		panic(fmt.Sprintf("tensor: SoftmaxInto dst length %d, want %d", len(dst), len(xs)))
	}
	max := xs[0]
	for _, v := range xs[1:] {
		if v > max {
			max = v
		}
	}
	sum := 0.0
	for i, v := range xs {
		e := math.Exp(v - max)
		dst[i] = e
		sum += e
	}
	for i := range dst {
		dst[i] /= sum
	}
}

package topo

// RoutingTable is the per-source loop-selection table a routerless NoC
// keeps at each node interface: for every destination, the loop (by index
// into Topology.Loops) that minimizes hop count from this source. Entries
// for unreachable destinations and for the source itself are -1.
//
// Real hardware stores a few bits per destination (§6.6); this table is the
// behavioural equivalent consumed by the simulator.
type RoutingTable struct {
	cols  int
	loops [][]int // [srcID][dstID] = loop index or -1
	dist  [][]int // [srcID][dstID] = hop count or -1
}

// BuildRoutingTable computes the minimum-hop loop selection for every
// ordered pair.
func BuildRoutingTable(t *Topology) *RoutingTable {
	return BuildRoutingTableExcluding(t, nil)
}

// BuildRoutingTableExcluding computes the routing table while treating the
// loops whose indices are set in failed as unusable — the degraded-mode
// routing used by the reliability analysis (§6.7). failed is indexed by
// loop; nil (or short) means no exclusions. Pairs connected only by failed
// loops become unreachable.
func BuildRoutingTableExcluding(t *Topology, failed []bool) *RoutingTable {
	n := t.N()
	rt := &RoutingTable{
		cols:  t.Cols(),
		loops: make([][]int, n),
		dist:  make([][]int, n),
	}
	for s := 0; s < n; s++ {
		rt.loops[s] = make([]int, n)
		rt.dist[s] = make([]int, n)
		src := NodeFromID(s, t.Cols())
		for d := 0; d < n; d++ {
			if s == d {
				rt.loops[s][d] = -1
				rt.dist[s][d] = 0
				continue
			}
			li, h := bestLoopExcluding(t, src, NodeFromID(d, t.Cols()), failed)
			rt.loops[s][d] = li
			rt.dist[s][d] = h
		}
	}
	return rt
}

// bestLoopExcluding is Topology.BestLoop skipping failed loop indices.
func bestLoopExcluding(t *Topology, src, dst Node, failed []bool) (loopIdx, dist int) {
	loopIdx, dist = -1, -1
	for _, li := range t.byNode[src.ID(t.cols)] {
		if li < len(failed) && failed[li] {
			continue
		}
		d := t.loops[li].Dist(src, dst)
		if d > 0 && (dist < 0 || d < dist) {
			dist = d
			loopIdx = li
		}
	}
	return loopIdx, dist
}

// Loop returns the loop index to use from src to dst, or -1.
func (rt *RoutingTable) Loop(src, dst Node) int {
	return rt.loops[src.ID(rt.cols)][dst.ID(rt.cols)]
}

// Dist returns the hop count from src to dst along the selected loop,
// or -1 when unreachable.
func (rt *RoutingTable) Dist(src, dst Node) int {
	return rt.dist[src.ID(rt.cols)][dst.ID(rt.cols)]
}

// Reachable reports whether dst can be reached from src.
func (rt *RoutingTable) Reachable(src, dst Node) bool {
	return src == dst || rt.loops[src.ID(rt.cols)][dst.ID(rt.cols)] >= 0
}

// LoopID is Loop over raw node IDs, avoiding the Node round-trip on the
// simulator's injection path.
func (rt *RoutingTable) LoopID(src, dst int) int { return rt.loops[src][dst] }

// DistID is Dist over raw node IDs.
func (rt *RoutingTable) DistID(src, dst int) int { return rt.dist[src][dst] }

package topo

import (
	"encoding/json"
	"math/rand"
	"testing"
)

// paperExample builds the 4x4 example from Figure 2(a)/(b) of the paper:
// three loops leaving node (0,1)=F... Here we use a simplified variant with
// known connectivity properties.
func twoByTwo() *Topology {
	t := NewSquare(2, 0)
	if err := t.AddLoop(MustLoop(0, 0, 1, 1, Clockwise)); err != nil {
		panic(err)
	}
	return t
}

func TestTwoByTwoSingleLoop(t *testing.T) {
	tp := twoByTwo()
	if !tp.FullyConnected() {
		t.Fatal("2x2 single loop should be fully connected")
	}
	mean, un := tp.AverageHops()
	if un != 0 {
		t.Fatalf("unconnected = %d", un)
	}
	// Clockwise 4-cycle: distances 1,2,3 from each node; mean = 2.
	if mean != 2 {
		t.Fatalf("mean hops = %v, want 2", mean)
	}
	if tp.MaxOverlap() != 1 {
		t.Fatalf("overlap = %d, want 1", tp.MaxOverlap())
	}
}

func TestAddLoopRejectsDuplicates(t *testing.T) {
	tp := NewSquare(4, 0)
	l := MustLoop(0, 0, 3, 3, Clockwise)
	if err := tp.AddLoop(l); err != nil {
		t.Fatal(err)
	}
	if err := tp.AddLoop(l); err != ErrRepetitive {
		t.Fatalf("duplicate add: err = %v, want ErrRepetitive", err)
	}
	// Same rectangle, other direction, is a different loop.
	if err := tp.AddLoop(MustLoop(0, 0, 3, 3, Counterclockwise)); err != nil {
		t.Fatalf("opposite direction rejected: %v", err)
	}
}

func TestAddLoopRejectsOutOfBounds(t *testing.T) {
	tp := NewSquare(4, 0)
	if err := tp.AddLoop(MustLoop(0, 0, 4, 4, Clockwise)); err != ErrOutOfBounds {
		t.Fatalf("err = %v, want ErrOutOfBounds", err)
	}
}

func TestAddLoopEnforcesOverlapCap(t *testing.T) {
	tp := NewSquare(4, 2)
	if err := tp.AddLoop(MustLoop(0, 0, 3, 3, Clockwise)); err != nil {
		t.Fatal(err)
	}
	if err := tp.AddLoop(MustLoop(0, 0, 3, 3, Counterclockwise)); err != nil {
		t.Fatal(err)
	}
	// Third loop through corner (0,0) exceeds the cap of 2.
	if err := tp.AddLoop(MustLoop(0, 0, 2, 2, Clockwise)); err != ErrIllegal {
		t.Fatalf("err = %v, want ErrIllegal", err)
	}
	// A loop avoiding saturated nodes is fine.
	if err := tp.AddLoop(MustLoop(1, 1, 2, 2, Clockwise)); err != nil {
		t.Fatalf("legal loop rejected: %v", err)
	}
}

func TestCheckAddDoesNotMutate(t *testing.T) {
	tp := NewSquare(4, 1)
	if err := tp.AddLoop(MustLoop(0, 0, 3, 3, Clockwise)); err != nil {
		t.Fatal(err)
	}
	before := tp.TotalWiring()
	if err := tp.CheckAdd(MustLoop(0, 0, 2, 2, Clockwise)); err != ErrIllegal {
		t.Fatalf("err = %v", err)
	}
	if tp.TotalWiring() != before {
		t.Fatal("CheckAdd mutated the topology")
	}
}

// Figure 2(a) scenario: isolated node cannot communicate.
func TestIsolatedNodeDetected(t *testing.T) {
	tp := NewSquare(4, 0)
	// Loops that avoid node (1,1).
	mustAdd(t, tp, MustLoop(0, 0, 3, 3, Clockwise))
	mustAdd(t, tp, MustLoop(2, 0, 3, 3, Clockwise))
	if tp.FullyConnected() {
		t.Fatal("topology with isolated interior node reported connected")
	}
	pairs := tp.UnconnectedPairs(0)
	found := false
	for _, p := range pairs {
		if p[0] == (Node{1, 1}) || p[1] == (Node{1, 1}) {
			found = true
		}
	}
	if !found {
		t.Fatal("isolated node (1,1) not in unconnected pairs")
	}
}

// Figure 2(b) scenario: in a routerless design, two loops sharing a node do
// NOT connect their other nodes (no ring switching).
func TestNoRingSwitching(t *testing.T) {
	tp := NewSquare(4, 0)
	mustAdd(t, tp, MustLoop(0, 0, 1, 1, Clockwise)) // loop through A-area
	mustAdd(t, tp, MustLoop(1, 1, 3, 3, Clockwise)) // loop sharing node (1,1)
	// (0,0) and (3,3) share no loop even though both reach (1,1).
	if d := tp.Dist(Node{0, 0}, Node{3, 3}); d != -1 {
		t.Fatalf("dist = %d, want -1 (no ring switching allowed)", d)
	}
}

func TestDistPicksShortestLoop(t *testing.T) {
	tp := NewSquare(4, 0)
	big := MustLoop(0, 0, 3, 3, Clockwise)   // dist (0,0)->(0,1) = 1, ->(1,0) = 11
	small := MustLoop(0, 0, 1, 1, Clockwise) // dist (0,0)->(1,0) = 3
	mustAdd(t, tp, big)
	mustAdd(t, tp, small)
	if d := tp.Dist(Node{0, 0}, Node{1, 0}); d != 3 {
		t.Fatalf("dist = %d, want 3 via small loop", d)
	}
	li, d := tp.BestLoop(Node{0, 0}, Node{1, 0})
	if d != 3 || !tp.Loops()[li].Equal(small) {
		t.Fatalf("BestLoop = loop %d dist %d", li, d)
	}
}

func TestRemoveLoopReindexes(t *testing.T) {
	tp := NewSquare(4, 0)
	mustAdd(t, tp, MustLoop(0, 0, 3, 3, Clockwise))
	mustAdd(t, tp, MustLoop(0, 0, 1, 1, Clockwise))
	mustAdd(t, tp, MustLoop(2, 2, 3, 3, Clockwise))
	tp.RemoveLoop(1)
	if tp.NumLoops() != 2 {
		t.Fatalf("loops = %d", tp.NumLoops())
	}
	if tp.Overlap(Node{1, 1}) != 0 {
		t.Fatalf("overlap at (1,1) = %d after removal", tp.Overlap(Node{1, 1}))
	}
	if d := tp.Dist(Node{2, 2}, Node{3, 3}); d != 2 {
		t.Fatalf("dist = %d", d)
	}
}

func TestCloneIsDeep(t *testing.T) {
	tp := NewSquare(4, 6)
	mustAdd(t, tp, MustLoop(0, 0, 3, 3, Clockwise))
	c := tp.Clone()
	mustAdd(t, c, MustLoop(0, 0, 1, 1, Clockwise))
	if tp.NumLoops() != 1 || c.NumLoops() != 2 {
		t.Fatal("clone shares state with original")
	}
	if tp.Overlap(Node{0, 0}) != 1 || c.Overlap(Node{0, 0}) != 2 {
		t.Fatal("overlap counters shared")
	}
}

func TestFingerprintOrderIndependent(t *testing.T) {
	a := NewSquare(4, 0)
	b := NewSquare(4, 0)
	l1 := MustLoop(0, 0, 3, 3, Clockwise)
	l2 := MustLoop(0, 0, 1, 1, Counterclockwise)
	mustAdd(t, a, l1)
	mustAdd(t, a, l2)
	mustAdd(t, b, l2)
	mustAdd(t, b, l1)
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("fingerprints differ for same loop set")
	}
	mustAdd(t, b, MustLoop(1, 1, 2, 2, Clockwise))
	if a.Fingerprint() == b.Fingerprint() {
		t.Fatal("fingerprints equal for different loop sets")
	}
}

func TestPathDiversity(t *testing.T) {
	tp := NewSquare(2, 0)
	mustAdd(t, tp, MustLoop(0, 0, 1, 1, Clockwise))
	mustAdd(t, tp, MustLoop(0, 0, 1, 1, Counterclockwise))
	if pc := tp.PathCount(Node{0, 0}, Node{1, 1}); pc != 2 {
		t.Fatalf("path count = %d, want 2", pc)
	}
	if div := tp.AveragePathDiversity(); div != 2 {
		t.Fatalf("diversity = %v, want 2", div)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	tp := NewSquare(4, 6)
	mustAdd(t, tp, MustLoop(0, 0, 3, 3, Clockwise))
	mustAdd(t, tp, MustLoop(1, 1, 2, 3, Counterclockwise))
	b, err := json.Marshal(tp)
	if err != nil {
		t.Fatal(err)
	}
	var back Topology
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Fingerprint() != tp.Fingerprint() {
		t.Fatalf("round trip mismatch:\n%s\n%s", back.Fingerprint(), tp.Fingerprint())
	}
	if back.OverlapCap() != 6 || back.Rows() != 4 || back.Cols() != 4 {
		t.Fatal("metadata lost in round trip")
	}
}

func TestHopMatrix2x2(t *testing.T) {
	tp := twoByTwo()
	m := tp.HopMatrix()
	h, w := tp.HopMatrixDims()
	if h != 4 || w != 4 {
		t.Fatalf("dims = %dx%d", h, w)
	}
	// Figure 5 of the paper: clockwise loop on 2x2. Submatrix for (0,0)
	// is [[0 1],[3 2]].
	want := []float64{
		0, 1 /**/, 3, 0,
		3, 2 /**/, 2, 1,
		/* row block 1 */
		1, 2 /**/, 2, 3,
		0, 3 /**/, 1, 0,
	}
	for i, v := range want {
		if m[i] != v {
			t.Fatalf("m[%d] = %v, want %v\nfull: %v", i, m[i], v, m)
		}
	}
}

func TestHopMatrixUnconnectedSentinel(t *testing.T) {
	tp := NewSquare(4, 0)
	mustAdd(t, tp, MustLoop(0, 0, 1, 1, Clockwise))
	m := tp.HopMatrix()
	_, w := tp.HopMatrixDims()
	// (0,0) -> (3,3) unconnected: entry at block (0,0), inner (3,3).
	v := m[(0*4+3)*w+(0*4+3)]
	if v != UnconnectedHops(4, 4) {
		t.Fatalf("sentinel = %v, want %v", v, UnconnectedHops(4, 4))
	}
	if UnconnectedHops(4, 4) != 20 {
		t.Fatalf("UnconnectedHops(4,4) = %v", UnconnectedHops(4, 4))
	}
}

// Property: HopMatrix entries match Dist for random topologies.
func TestHopMatrixMatchesDist(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		n := 3 + rng.Intn(3)
		tp := NewSquare(n, 0)
		for k := 0; k < 5; k++ {
			r1, c1 := rng.Intn(n-1), rng.Intn(n-1)
			r2 := r1 + 1 + rng.Intn(n-1-r1)
			c2 := c1 + 1 + rng.Intn(n-1-c1)
			l := MustLoop(r1, c1, r2, c2, Direction(rng.Intn(2)))
			if tp.HasLoop(l) {
				continue
			}
			mustAdd(t, tp, l)
		}
		m := tp.HopMatrix()
		_, w := tp.HopMatrixDims()
		for s := 0; s < tp.N(); s++ {
			for d := 0; d < tp.N(); d++ {
				src, dst := NodeFromID(s, n), NodeFromID(d, n)
				want := float64(tp.Dist(src, dst))
				if want < 0 {
					want = UnconnectedHops(n, n)
				}
				got := m[(src.Row*n+dst.Row)*w+(src.Col*n+dst.Col)]
				if got != want {
					t.Fatalf("n=%d %v->%v: matrix %v, dist %v", n, src, dst, got, want)
				}
			}
		}
	}
}

func TestRoutingTable(t *testing.T) {
	tp := NewSquare(4, 0)
	mustAdd(t, tp, MustLoop(0, 0, 3, 3, Clockwise))
	mustAdd(t, tp, MustLoop(0, 0, 1, 1, Clockwise))
	rt := BuildRoutingTable(tp)
	if li := rt.Loop(Node{0, 0}, Node{1, 0}); li != 1 {
		t.Fatalf("loop = %d, want 1 (small loop)", li)
	}
	if d := rt.Dist(Node{0, 0}, Node{1, 0}); d != 3 {
		t.Fatalf("dist = %d", d)
	}
	if !rt.Reachable(Node{0, 0}, Node{0, 0}) {
		t.Fatal("self not reachable")
	}
	if rt.Reachable(Node{1, 1}, Node{2, 2}) {
		t.Fatal("(1,1)->(2,2) should be unreachable")
	}
	if d := rt.Dist(Node{1, 1}, Node{2, 2}); d != -1 {
		t.Fatalf("unreachable dist = %d", d)
	}
}

func TestAverageHopsCountsUnconnected(t *testing.T) {
	tp := NewSquare(3, 0)
	mustAdd(t, tp, MustLoop(0, 0, 1, 1, Clockwise))
	_, un := tp.AverageHops()
	// 9 nodes, 72 ordered pairs; the 4-node loop connects 12 pairs.
	if un != 60 {
		t.Fatalf("unconnected = %d, want 60", un)
	}
	if cc := tp.ConnectedCount(); cc != 12 {
		t.Fatalf("connected = %d, want 12", cc)
	}
}

func mustAdd(t *testing.T, tp *Topology, l Loop) {
	t.Helper()
	if err := tp.AddLoop(l); err != nil {
		t.Fatalf("AddLoop(%v): %v", l, err)
	}
}

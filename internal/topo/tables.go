package topo

import "sync"

// GridTables is the precomputed rectangle geometry of one grid size: every
// non-degenerate rectangle that fits the grid, each rectangle's perimeter
// node IDs in traversal order, and, per node, the rectangles whose
// perimeter contains it. One table is built per (rows, cols) pair, cached
// for the process lifetime, and shared by every Topology (and every
// concurrent search environment) on that grid — all fields are immutable
// after construction, so no synchronization is needed to read them.
//
// The tables are what turn the O(N⁴)-rectangle scans of Algorithm 1 into
// incremental work: rectangle enumeration order matches the greedy scan,
// RectsAt answers "which rectangles does this node dirty" in O(1), and the
// perimeter ID lists remove every per-rectangle Nodes() allocation from the
// hot path.
type GridTables struct {
	rows, cols int
	rects      []Rect
	// rectID maps corner pair -> rectangle index: entry
	// (r1*cols+c1)*n + (r2*cols+c2) for the normalized corners, -1 for
	// non-rectangles.
	rectID []int32
	// at[nodeID] lists the indices of rectangles whose perimeter includes
	// the node.
	at [][]int32
	// pairRects[u*n+v] lists the rectangles whose perimeter includes both
	// u and v — the rectangles whose greedy score depends on dist(u,v).
	// It is the inverted index driving precise dirty-set maintenance; nil
	// on grids above pairIndexMaxNodes, where callers fall back to the
	// coarser (but still correct) per-node lists.
	pairRects [][]int32
}

// pairIndexMaxNodes bounds the pair→rectangles index to grids where its
// O(Σ perimeter²) footprint stays in the low megabytes (14×14 ≈ 7 MB).
const pairIndexMaxNodes = 196

// Rect is one precomputed rectangle.
type Rect struct {
	R1, C1, R2, C2 int
	// Nodes holds the perimeter node IDs in clockwise traversal order
	// starting at the top-left corner — the Loop.Nodes order for
	// Dir == Clockwise. Counterclockwise distances follow from the same
	// list: distCCW(i→j) = L − distCW(i→j) for i ≠ j.
	Nodes []int32
}

// Len returns the perimeter length (node count) of the rectangle.
func (r *Rect) Len() int { return len(r.Nodes) }

// Loop returns the rectangle as a Loop in the given direction.
func (r *Rect) Loop(dir Direction) Loop {
	return Loop{R1: r.R1, C1: r.C1, R2: r.R2, C2: r.C2, Dir: dir}
}

var (
	tablesMu    sync.Mutex
	tablesCache = map[[2]int]*GridTables{}
)

// Tables returns the shared precomputed rectangle tables for a rows×cols
// grid, building them on first use. The result is immutable and safe for
// unsynchronized concurrent use.
func Tables(rows, cols int) *GridTables {
	key := [2]int{rows, cols}
	tablesMu.Lock()
	defer tablesMu.Unlock()
	if g, ok := tablesCache[key]; ok {
		return g
	}
	g := buildTables(rows, cols)
	tablesCache[key] = g
	return g
}

func buildTables(rows, cols int) *GridTables {
	n := rows * cols
	g := &GridTables{
		rows:   rows,
		cols:   cols,
		rectID: make([]int32, n*n),
		at:     make([][]int32, n),
	}
	for i := range g.rectID {
		g.rectID[i] = -1
	}
	// Enumeration order matches the greedy scan of Algorithm 1:
	// (x1, y1, x2, y2) ascending.
	for r1 := 0; r1 < rows-1; r1++ {
		for c1 := 0; c1 < cols-1; c1++ {
			for r2 := r1 + 1; r2 < rows; r2++ {
				for c2 := c1 + 1; c2 < cols; c2++ {
					idx := int32(len(g.rects))
					g.rectID[(r1*cols+c1)*n+(r2*cols+c2)] = idx
					g.rects = append(g.rects, Rect{
						R1: r1, C1: c1, R2: r2, C2: c2,
						Nodes: perimeterIDs(r1, c1, r2, c2, cols),
					})
					for _, id := range g.rects[idx].Nodes {
						g.at[id] = append(g.at[id], idx)
					}
				}
			}
		}
	}
	if n <= pairIndexMaxNodes {
		g.pairRects = make([][]int32, n*n)
		for idx := range g.rects {
			ids := g.rects[idx].Nodes
			for _, u := range ids {
				row := int(u) * n
				for _, v := range ids {
					if u == v {
						continue
					}
					g.pairRects[row+int(v)] = append(g.pairRects[row+int(v)], int32(idx))
				}
			}
		}
	}
	return g
}

// perimeterIDs lists the rectangle's perimeter node IDs clockwise from the
// top-left corner, mirroring Loop.Nodes for a clockwise loop.
func perimeterIDs(r1, c1, r2, c2, cols int) []int32 {
	h, w := r2-r1+1, c2-c1+1
	out := make([]int32, 0, 2*(h+w-2))
	for c := c1; c < c2; c++ {
		out = append(out, int32(r1*cols+c))
	}
	for r := r1; r < r2; r++ {
		out = append(out, int32(r*cols+c2))
	}
	for c := c2; c > c1; c-- {
		out = append(out, int32(r2*cols+c))
	}
	for r := r2; r > r1; r-- {
		out = append(out, int32(r*cols+c1))
	}
	return out
}

// NumRects returns the number of rectangles on the grid.
func (g *GridTables) NumRects() int { return len(g.rects) }

// Rects exposes the rectangle list in greedy-scan enumeration order. The
// returned slice and everything it references must not be mutated.
func (g *GridTables) Rects() []Rect { return g.rects }

// RectIndex returns the index of the rectangle with l's corners, or -1
// when the corners do not form a grid rectangle.
func (g *GridTables) RectIndex(l Loop) int {
	n := g.rows * g.cols
	a := l.R1*g.cols + l.C1
	b := l.R2*g.cols + l.C2
	if a < 0 || b < 0 || a >= n || b >= n || l.R2 >= g.rows || l.C2 >= g.cols {
		return -1
	}
	return int(g.rectID[a*n+b])
}

// RectsAt lists the rectangles whose perimeter contains the node. The
// returned slice must not be mutated.
func (g *GridTables) RectsAt(nodeID int) []int32 { return g.at[nodeID] }

// RectsAtPair lists the rectangles whose perimeter contains both nodes of
// the packed pair key u*N+v — exactly the rectangles whose greedy score
// reads dist(u,v). Returns nil slices per pair when the pair index is
// disabled for this grid size (check HasPairIndex first). The returned
// slice must not be mutated.
func (g *GridTables) RectsAtPair(packed int32) []int32 { return g.pairRects[packed] }

// HasPairIndex reports whether the pair→rectangles index was built for
// this grid (it is skipped on very large grids to bound memory).
func (g *GridTables) HasPairIndex() bool { return g.pairRects != nil }

// NodesOf returns the clockwise perimeter node IDs of l's rectangle, or
// nil when l is not a rectangle of this grid. The slice must not be
// mutated.
func (g *GridTables) NodesOf(l Loop) []int32 {
	ri := g.RectIndex(l)
	if ri < 0 {
		return nil
	}
	return g.rects[ri].Nodes
}

package topo

import (
	"errors"
	"fmt"
	"sort"
)

// ErrIllegal is returned when adding a loop would violate the node
// overlapping cap (the paper's "illegal action").
var ErrIllegal = errors.New("topo: loop violates node overlapping cap")

// ErrRepetitive is returned when adding a loop that is already present
// (the paper's "repetitive action").
var ErrRepetitive = errors.New("topo: duplicate loop")

// ErrOutOfBounds is returned when a loop does not fit on the grid.
var ErrOutOfBounds = errors.New("topo: loop out of grid bounds")

// Topology is a routerless NoC: an N×M node grid plus a set of
// unidirectional rectangular loops. The zero value is unusable; construct
// with New.
type Topology struct {
	rows, cols int
	overlapCap int // 0 means unconstrained
	loops      []Loop
	// overlap[nodeID] = number of loops whose perimeter includes the node.
	overlap []int
	// byNode[nodeID] = indices into loops of loops passing through the node.
	byNode [][]int
	// dist caches the minimum directed loop distance between every node
	// pair (row-major [src*N+dst]), maintained incrementally by AddLoop;
	// -1 means unconnected. It makes Dist O(1), which the greedy search
	// of Algorithm 1 and the simulator's routing tables rely on.
	dist []int16
}

// New returns an empty topology on a rows×cols grid. overlapCap limits the
// number of loops that may pass through any single node; pass 0 for
// unconstrained.
func New(rows, cols, overlapCap int) *Topology {
	if rows < 1 || cols < 1 {
		panic(fmt.Sprintf("topo: invalid grid %dx%d", rows, cols))
	}
	n := rows * cols
	t := &Topology{
		rows:       rows,
		cols:       cols,
		overlapCap: overlapCap,
		overlap:    make([]int, n),
		byNode:     make([][]int, n),
		dist:       make([]int16, n*n),
	}
	for i := range t.dist {
		t.dist[i] = -1
	}
	for i := 0; i < n; i++ {
		t.dist[i*n+i] = 0
	}
	return t
}

// NewSquare is New(n, n, cap).
func NewSquare(n, overlapCap int) *Topology { return New(n, n, overlapCap) }

// Rows returns the number of grid rows.
func (t *Topology) Rows() int { return t.rows }

// Cols returns the number of grid columns.
func (t *Topology) Cols() int { return t.cols }

// N returns the total node count.
func (t *Topology) N() int { return t.rows * t.cols }

// OverlapCap returns the node overlapping constraint (0 = unconstrained).
func (t *Topology) OverlapCap() int { return t.overlapCap }

// SetOverlapCap changes the constraint for future AddLoop calls. It does
// not retroactively validate existing loops.
func (t *Topology) SetOverlapCap(cap int) { t.overlapCap = cap }

// Loops returns the loop set. The returned slice must not be mutated.
func (t *Topology) Loops() []Loop { return t.loops }

// NumLoops returns the number of loops.
func (t *Topology) NumLoops() int { return len(t.loops) }

// Overlap returns the number of loops passing through node n.
func (t *Topology) Overlap(n Node) int { return t.overlap[n.ID(t.cols)] }

// MaxOverlap returns the maximum node overlapping across the grid.
func (t *Topology) MaxOverlap() int {
	m := 0
	for _, v := range t.overlap {
		if v > m {
			m = v
		}
	}
	return m
}

// LoopsAt returns indices (into Loops()) of loops through node n.
func (t *Topology) LoopsAt(n Node) []int { return t.byNode[n.ID(t.cols)] }

// HasLoop reports whether an identical loop is already present.
func (t *Topology) HasLoop(l Loop) bool {
	for _, e := range t.loops {
		if e.Equal(l) {
			return true
		}
	}
	return false
}

// fits reports whether the loop lies within the grid.
func (t *Topology) fits(l Loop) bool {
	return l.R1 >= 0 && l.C1 >= 0 && l.R2 < t.rows && l.C2 < t.cols
}

// CheckAdd validates adding loop l without mutating the topology. It
// returns nil when the addition is legal, or one of ErrOutOfBounds,
// ErrRepetitive, ErrIllegal.
func (t *Topology) CheckAdd(l Loop) error {
	if !t.fits(l) {
		return ErrOutOfBounds
	}
	if t.HasLoop(l) {
		return ErrRepetitive
	}
	if t.overlapCap > 0 {
		for _, n := range l.Nodes() {
			if t.overlap[n.ID(t.cols)]+1 > t.overlapCap {
				return ErrIllegal
			}
		}
	}
	return nil
}

// AddLoop appends loop l, enforcing bounds, duplication and the overlap cap.
func (t *Topology) AddLoop(l Loop) error {
	if err := t.CheckAdd(l); err != nil {
		return err
	}
	t.addUnchecked(l)
	return nil
}

// addUnchecked appends l and updates the per-node indices and the
// pairwise-distance cache.
func (t *Topology) addUnchecked(l Loop) {
	idx := len(t.loops)
	t.loops = append(t.loops, l)
	nodes := l.Nodes()
	for _, n := range nodes {
		id := n.ID(t.cols)
		t.overlap[id]++
		t.byNode[id] = append(t.byNode[id], idx)
	}
	n := t.N()
	ll := len(nodes)
	for i, u := range nodes {
		uid := u.ID(t.cols)
		for j, v := range nodes {
			if i == j {
				continue
			}
			// nodes is already in traversal order for the loop's
			// direction, so the index gap is the directed distance.
			d := j - i
			if d < 0 {
				d += ll
			}
			vid := v.ID(t.cols)
			cur := t.dist[uid*n+vid]
			if cur < 0 || int16(d) < cur {
				t.dist[uid*n+vid] = int16(d)
			}
		}
	}
}

// RemoveLoop removes the loop at index i. It is used by evolutionary
// baselines (IMR) and failure-injection tests.
func (t *Topology) RemoveLoop(i int) {
	if i < 0 || i >= len(t.loops) {
		panic(fmt.Sprintf("topo: RemoveLoop index %d out of range", i))
	}
	t.loops = append(t.loops[:i:i], t.loops[i+1:]...)
	t.reindex()
}

func (t *Topology) reindex() {
	for i := range t.overlap {
		t.overlap[i] = 0
		t.byNode[i] = nil
	}
	for i := range t.dist {
		t.dist[i] = -1
	}
	for i := 0; i < t.N(); i++ {
		t.dist[i*t.N()+i] = 0
	}
	loops := t.loops
	t.loops = nil
	for _, l := range loops {
		t.addUnchecked(l)
	}
}

// Clone returns a deep copy.
func (t *Topology) Clone() *Topology {
	c := New(t.rows, t.cols, t.overlapCap)
	c.loops = append([]Loop(nil), t.loops...)
	copy(c.overlap, t.overlap)
	copy(c.dist, t.dist)
	for i, bs := range t.byNode {
		c.byNode[i] = append([]int(nil), bs...)
	}
	return c
}

// Dist returns the minimum hop count from src to dst over all loops that
// contain both, or -1 when the pair is unconnected. The source node itself
// has distance 0. It reads the incremental cache and costs O(1).
func (t *Topology) Dist(src, dst Node) int {
	return int(t.dist[src.ID(t.cols)*t.N()+dst.ID(t.cols)])
}

// BestLoop returns the index of the loop giving the minimum src→dst
// distance, and that distance. It returns (-1, -1) when unconnected.
func (t *Topology) BestLoop(src, dst Node) (loopIdx, dist int) {
	loopIdx, dist = -1, -1
	for _, li := range t.byNode[src.ID(t.cols)] {
		d := t.loops[li].Dist(src, dst)
		if d > 0 && (dist < 0 || d < dist) {
			dist = d
			loopIdx = li
		}
	}
	return loopIdx, dist
}

// FullyConnected reports whether every ordered pair of distinct nodes is
// joined by at least one loop.
func (t *Topology) FullyConnected() bool {
	return len(t.UnconnectedPairs(1)) == 0
}

// UnconnectedPairs returns up to max ordered pairs lacking a connecting
// loop; pass max <= 0 for all.
func (t *Topology) UnconnectedPairs(max int) [][2]Node {
	var out [][2]Node
	for s := 0; s < t.N(); s++ {
		src := NodeFromID(s, t.cols)
		for d := 0; d < t.N(); d++ {
			if s == d {
				continue
			}
			dst := NodeFromID(d, t.cols)
			if t.Dist(src, dst) < 0 {
				out = append(out, [2]Node{src, dst})
				if max > 0 && len(out) >= max {
					return out
				}
			}
		}
	}
	return out
}

// ConnectedCount returns the number of ordered (src,dst) pairs, src != dst,
// joined by at least one loop. A fully connected N-node topology returns
// N*(N-1).
func (t *Topology) ConnectedCount() int {
	n := t.N()
	count := 0
	for s := 0; s < n; s++ {
		src := NodeFromID(s, t.cols)
		for d := 0; d < n; d++ {
			if s != d && t.Dist(src, NodeFromID(d, t.cols)) > 0 {
				count++
			}
		}
	}
	return count
}

// AverageHops returns the mean loop distance over all connected ordered
// pairs and the number of unconnected pairs. The paper's "average hop
// count" metric is this mean on a fully connected topology.
func (t *Topology) AverageHops() (mean float64, unconnected int) {
	n := t.N()
	total, pairs := 0, 0
	for s := 0; s < n; s++ {
		src := NodeFromID(s, t.cols)
		for d := 0; d < n; d++ {
			if s == d {
				continue
			}
			h := t.Dist(src, NodeFromID(d, t.cols))
			if h < 0 {
				unconnected++
				continue
			}
			total += h
			pairs++
		}
	}
	if pairs == 0 {
		return 0, unconnected
	}
	return float64(total) / float64(pairs), unconnected
}

// PathCount returns the number of distinct loops connecting src to dst.
// The paper (§6.7) uses the average of this over all pairs as a
// reliability/path-diversity metric.
func (t *Topology) PathCount(src, dst Node) int {
	if src == dst {
		return 0
	}
	c := 0
	for _, li := range t.byNode[src.ID(t.cols)] {
		if t.loops[li].Dist(src, dst) > 0 {
			c++
		}
	}
	return c
}

// AveragePathDiversity returns the mean PathCount over all ordered pairs
// of distinct nodes.
func (t *Topology) AveragePathDiversity() float64 {
	n := t.N()
	total := 0
	for s := 0; s < n; s++ {
		src := NodeFromID(s, t.cols)
		for d := 0; d < n; d++ {
			if s != d {
				total += t.PathCount(src, NodeFromID(d, t.cols))
			}
		}
	}
	return float64(total) / float64(n*(n-1))
}

// TotalWiring returns the total number of node-loop incidences (the sum of
// node overlapping over all nodes), a proxy for wiring resources.
func (t *Topology) TotalWiring() int {
	s := 0
	for _, v := range t.overlap {
		s += v
	}
	return s
}

// Fingerprint returns a canonical string for the loop multiset, used as a
// state key by the MCTS. Loop order is normalized.
func (t *Topology) Fingerprint() string {
	keys := make([]string, len(t.loops))
	for i, l := range t.loops {
		keys[i] = l.String()
	}
	sort.Strings(keys)
	out := make([]byte, 0, len(keys)*12)
	for _, k := range keys {
		out = append(out, k...)
		out = append(out, ';')
	}
	return string(out)
}

package topo

import (
	"errors"
	"fmt"
	"strconv"
)

// ErrIllegal is returned when adding a loop would violate the node
// overlapping cap (the paper's "illegal action").
var ErrIllegal = errors.New("topo: loop violates node overlapping cap")

// ErrRepetitive is returned when adding a loop that is already present
// (the paper's "repetitive action").
var ErrRepetitive = errors.New("topo: duplicate loop")

// ErrOutOfBounds is returned when a loop does not fit on the grid.
var ErrOutOfBounds = errors.New("topo: loop out of grid bounds")

// Topology is a routerless NoC: an N×M node grid plus a set of
// unidirectional rectangular loops. The zero value is unusable; construct
// with New.
//
// Every aggregate a search loop polls — pairwise distances, connected-pair
// count, hop total, the DNN state matrix, the canonical fingerprint — is
// maintained incrementally by AddLoop, so the per-query cost is O(1) (or a
// flat copy) instead of an O(N²) rescan.
type Topology struct {
	rows, cols int
	overlapCap int // 0 means unconstrained
	tab        *GridTables
	loops      []Loop
	// loopSet mirrors loops for O(1) duplicate checks.
	loopSet map[Loop]struct{}
	// overlap[nodeID] = number of loops whose perimeter includes the node.
	overlap []int
	// byNode[nodeID] = indices into loops of loops passing through the node.
	byNode [][]int
	// dist caches the minimum directed loop distance between every node
	// pair (row-major [src*N+dst]), maintained incrementally by AddLoop;
	// -1 means unconnected. It makes Dist O(1), which the greedy search
	// of Algorithm 1 and the simulator's routing tables rely on.
	dist []int16
	// connPairs counts ordered pairs of distinct nodes with dist >= 0, and
	// hopTotal sums their distances; together they answer AverageHops,
	// ConnectedCount and FullyConnected without scanning dist.
	connPairs int
	hopTotal  int
	// hopM is the paper's state-matrix encoding (HopMatrix), materialized
	// on first request and updated in place as dist entries improve.
	hopM []float64
	// fpLoops holds the loop multiset in canonical order; fpStr caches the
	// rendered fingerprint, rebuilt lazily into fpBuf when fpDirty.
	fpLoops []Loop
	fpBuf   []byte
	fpStr   string
	fpDirty bool
	// changedPairs, newPairs and satNodes record the most recent AddLoop's
	// exact perturbation: packed src*N+dst keys of dist entries that
	// improved, the subset of those that went from unconnected to
	// connected, and nodes whose overlap reached the cap during that add.
	// Incremental consumers (the greedy score cache) invalidate only what
	// these name. All are reused buffers, valid until the next mutation.
	changedPairs []int32
	newPairs     []int32
	satNodes     []int32
}

// New returns an empty topology on a rows×cols grid. overlapCap limits the
// number of loops that may pass through any single node; pass 0 for
// unconstrained.
func New(rows, cols, overlapCap int) *Topology {
	if rows < 1 || cols < 1 {
		panic(fmt.Sprintf("topo: invalid grid %dx%d", rows, cols))
	}
	n := rows * cols
	t := &Topology{
		rows:       rows,
		cols:       cols,
		overlapCap: overlapCap,
		tab:        Tables(rows, cols),
		loopSet:    make(map[Loop]struct{}),
		overlap:    make([]int, n),
		byNode:     make([][]int, n),
		dist:       make([]int16, n*n),
	}
	for i := range t.dist {
		t.dist[i] = -1
	}
	for i := 0; i < n; i++ {
		t.dist[i*n+i] = 0
	}
	return t
}

// NewSquare is New(n, n, cap).
func NewSquare(n, overlapCap int) *Topology { return New(n, n, overlapCap) }

// Rows returns the number of grid rows.
func (t *Topology) Rows() int { return t.rows }

// Cols returns the number of grid columns.
func (t *Topology) Cols() int { return t.cols }

// N returns the total node count.
func (t *Topology) N() int { return t.rows * t.cols }

// OverlapCap returns the node overlapping constraint (0 = unconstrained).
func (t *Topology) OverlapCap() int { return t.overlapCap }

// SetOverlapCap changes the constraint for future AddLoop calls. It does
// not retroactively validate existing loops.
func (t *Topology) SetOverlapCap(cap int) { t.overlapCap = cap }

// Tables returns the shared precomputed rectangle tables for this grid.
func (t *Topology) Tables() *GridTables { return t.tab }

// Loops returns the loop set. The returned slice must not be mutated.
func (t *Topology) Loops() []Loop { return t.loops }

// NumLoops returns the number of loops.
func (t *Topology) NumLoops() int { return len(t.loops) }

// Overlap returns the number of loops passing through node n.
func (t *Topology) Overlap(n Node) int { return t.overlap[n.ID(t.cols)] }

// OverlapID is Overlap for a linear node ID.
func (t *Topology) OverlapID(id int) int { return t.overlap[id] }

// MaxOverlap returns the maximum node overlapping across the grid.
func (t *Topology) MaxOverlap() int {
	m := 0
	for _, v := range t.overlap {
		if v > m {
			m = v
		}
	}
	return m
}

// LoopsAt returns indices (into Loops()) of loops through node n.
func (t *Topology) LoopsAt(n Node) []int { return t.byNode[n.ID(t.cols)] }

// HasLoop reports whether an identical loop is already present. It is an
// O(1) set lookup.
func (t *Topology) HasLoop(l Loop) bool {
	_, ok := t.loopSet[l]
	return ok
}

// fits reports whether the loop lies within the grid.
func (t *Topology) fits(l Loop) bool {
	return l.R1 >= 0 && l.C1 >= 0 && l.R2 < t.rows && l.C2 < t.cols
}

// CheckAdd validates adding loop l without mutating the topology. It
// returns nil when the addition is legal, or one of ErrOutOfBounds,
// ErrRepetitive, ErrIllegal.
func (t *Topology) CheckAdd(l Loop) error {
	if !t.fits(l) {
		return ErrOutOfBounds
	}
	if t.HasLoop(l) {
		return ErrRepetitive
	}
	if t.overlapCap > 0 {
		for _, id := range t.tab.NodesOf(l) {
			if t.overlap[id]+1 > t.overlapCap {
				return ErrIllegal
			}
		}
	}
	return nil
}

// AddLoop appends loop l, enforcing bounds, duplication and the overlap cap.
func (t *Topology) AddLoop(l Loop) error {
	if err := t.CheckAdd(l); err != nil {
		return err
	}
	t.addUnchecked(l)
	return nil
}

// addUnchecked appends l and updates every incremental structure: per-node
// indices, the pairwise-distance cache with its connected-pair count and
// hop total, the materialized state matrix (when present), and the
// canonical fingerprint order.
func (t *Topology) addUnchecked(l Loop) {
	idx := len(t.loops)
	t.loops = append(t.loops, l)
	t.loopSet[l] = struct{}{}
	t.changedPairs = t.changedPairs[:0]
	t.newPairs = t.newPairs[:0]
	t.satNodes = t.satNodes[:0]
	ids := t.tab.NodesOf(l)
	for _, id := range ids {
		t.overlap[id]++
		if t.overlap[id] == t.overlapCap {
			t.satNodes = append(t.satNodes, id)
		}
		t.byNode[id] = append(t.byNode[id], idx)
	}
	n := t.N()
	ll := len(ids)
	ccw := l.Dir == Counterclockwise
	for i, u := range ids {
		row := int(u) * n
		for j, v := range ids {
			if i == j {
				continue
			}
			// ids is the clockwise traversal; the index gap is the
			// directed distance, complemented for counterclockwise loops.
			d := j - i
			if d < 0 {
				d += ll
			}
			if ccw {
				d = ll - d
			}
			cur := t.dist[row+int(v)]
			if cur >= 0 && int16(d) >= cur {
				continue
			}
			if cur < 0 {
				t.connPairs++
				t.hopTotal += d
				t.newPairs = append(t.newPairs, int32(row)+v)
			} else {
				t.hopTotal += d - int(cur)
			}
			t.dist[row+int(v)] = int16(d)
			t.changedPairs = append(t.changedPairs, int32(row)+v)
			if t.hopM != nil {
				t.setHopM(int(u), int(v), float64(d))
			}
		}
	}
	t.fpInsert(l)
}

// Reset removes every loop in place, retaining all allocated capacity so a
// reused Topology accepts a fresh loop sequence without heap allocation.
func (t *Topology) Reset() {
	t.loops = t.loops[:0]
	clear(t.loopSet)
	for i := range t.overlap {
		t.overlap[i] = 0
	}
	for i := range t.byNode {
		t.byNode[i] = t.byNode[i][:0]
	}
	n := t.N()
	for i := range t.dist {
		t.dist[i] = -1
	}
	for i := 0; i < n; i++ {
		t.dist[i*n+i] = 0
	}
	t.connPairs, t.hopTotal = 0, 0
	if t.hopM != nil {
		t.fillHopM()
	}
	t.fpLoops = t.fpLoops[:0]
	t.fpStr = ""
	t.fpDirty = false
	t.changedPairs = t.changedPairs[:0]
	t.newPairs = t.newPairs[:0]
	t.satNodes = t.satNodes[:0]
}

// RemoveLoop removes the loop at index i. It is used by evolutionary
// baselines (IMR) and failure-injection tests.
func (t *Topology) RemoveLoop(i int) {
	if i < 0 || i >= len(t.loops) {
		panic(fmt.Sprintf("topo: RemoveLoop index %d out of range", i))
	}
	t.loops = append(t.loops[:i:i], t.loops[i+1:]...)
	t.reindex()
}

func (t *Topology) reindex() {
	loops := append([]Loop(nil), t.loops...)
	t.Reset()
	for _, l := range loops {
		t.addUnchecked(l)
	}
}

// Clone returns a deep copy. The immutable grid tables are shared.
func (t *Topology) Clone() *Topology {
	c := New(t.rows, t.cols, t.overlapCap)
	c.loops = append([]Loop(nil), t.loops...)
	for l := range t.loopSet {
		c.loopSet[l] = struct{}{}
	}
	copy(c.overlap, t.overlap)
	copy(c.dist, t.dist)
	for i, bs := range t.byNode {
		c.byNode[i] = append([]int(nil), bs...)
	}
	c.connPairs, c.hopTotal = t.connPairs, t.hopTotal
	if t.hopM != nil {
		c.hopM = append([]float64(nil), t.hopM...)
	}
	c.fpLoops = append([]Loop(nil), t.fpLoops...)
	c.fpStr, c.fpDirty = t.fpStr, t.fpDirty
	return c
}

// Dist returns the minimum hop count from src to dst over all loops that
// contain both, or -1 when the pair is unconnected. The source node itself
// has distance 0. It reads the incremental cache and costs O(1).
func (t *Topology) Dist(src, dst Node) int {
	return int(t.dist[src.ID(t.cols)*t.N()+dst.ID(t.cols)])
}

// DistID is Dist for linear node IDs.
func (t *Topology) DistID(src, dst int) int {
	return int(t.dist[src*t.N()+dst])
}

// DistData exposes the raw pairwise-distance cache, row-major [src*N+dst]
// with -1 meaning unconnected, for read-only hot-loop access. Callers must
// not mutate it.
func (t *Topology) DistData() []int16 { return t.dist }

// LastAddChangedPairs returns the packed src*N+dst keys of the dist
// entries improved by the most recent AddLoop. The slice is a reused
// buffer, valid only until the next mutation, and must not be mutated.
func (t *Topology) LastAddChangedPairs() []int32 { return t.changedPairs }

// LastAddNewPairs returns the subset of LastAddChangedPairs whose dist
// entry went from unconnected (-1) to connected — the pairs that lower
// CheckCount for every rectangle containing both endpoints. Same reuse
// caveats as LastAddChangedPairs.
func (t *Topology) LastAddNewPairs() []int32 { return t.newPairs }

// LastAddSaturatedNodes returns the nodes whose overlap count reached the
// cap during the most recent AddLoop — the only nodes through which
// rectangle legality can have flipped. Same reuse caveats as
// LastAddChangedPairs.
func (t *Topology) LastAddSaturatedNodes() []int32 { return t.satNodes }

// BestLoop returns the index of the loop giving the minimum src→dst
// distance, and that distance. It returns (-1, -1) when unconnected.
func (t *Topology) BestLoop(src, dst Node) (loopIdx, dist int) {
	loopIdx, dist = -1, -1
	for _, li := range t.byNode[src.ID(t.cols)] {
		d := t.loops[li].Dist(src, dst)
		if d > 0 && (dist < 0 || d < dist) {
			dist = d
			loopIdx = li
		}
	}
	return loopIdx, dist
}

// FullyConnected reports whether every ordered pair of distinct nodes is
// joined by at least one loop. It reads the incremental pair count: O(1).
func (t *Topology) FullyConnected() bool {
	n := t.N()
	return t.connPairs == n*(n-1)
}

// UnconnectedPairs returns up to max ordered pairs lacking a connecting
// loop; pass max <= 0 for all.
func (t *Topology) UnconnectedPairs(max int) [][2]Node {
	var out [][2]Node
	for s := 0; s < t.N(); s++ {
		src := NodeFromID(s, t.cols)
		for d := 0; d < t.N(); d++ {
			if s == d {
				continue
			}
			dst := NodeFromID(d, t.cols)
			if t.Dist(src, dst) < 0 {
				out = append(out, [2]Node{src, dst})
				if max > 0 && len(out) >= max {
					return out
				}
			}
		}
	}
	return out
}

// ConnectedCount returns the number of ordered (src,dst) pairs, src != dst,
// joined by at least one loop. A fully connected N-node topology returns
// N*(N-1). It reads the incremental pair count: O(1).
func (t *Topology) ConnectedCount() int { return t.connPairs }

// AverageHops returns the mean loop distance over all connected ordered
// pairs and the number of unconnected pairs. The paper's "average hop
// count" metric is this mean on a fully connected topology. Both values
// come from incrementally maintained totals: O(1).
func (t *Topology) AverageHops() (mean float64, unconnected int) {
	n := t.N()
	unconnected = n*(n-1) - t.connPairs
	if t.connPairs == 0 {
		return 0, unconnected
	}
	return float64(t.hopTotal) / float64(t.connPairs), unconnected
}

// PathCount returns the number of distinct loops connecting src to dst.
// The paper (§6.7) uses the average of this over all pairs as a
// reliability/path-diversity metric.
func (t *Topology) PathCount(src, dst Node) int {
	if src == dst {
		return 0
	}
	c := 0
	for _, li := range t.byNode[src.ID(t.cols)] {
		if t.loops[li].Dist(src, dst) > 0 {
			c++
		}
	}
	return c
}

// AveragePathDiversity returns the mean PathCount over all ordered pairs
// of distinct nodes.
func (t *Topology) AveragePathDiversity() float64 {
	n := t.N()
	total := 0
	for s := 0; s < n; s++ {
		src := NodeFromID(s, t.cols)
		for d := 0; d < n; d++ {
			if s != d {
				total += t.PathCount(src, NodeFromID(d, t.cols))
			}
		}
	}
	return float64(total) / float64(n*(n-1))
}

// TotalWiring returns the total number of node-loop incidences (the sum of
// node overlapping over all nodes), a proxy for wiring resources.
func (t *Topology) TotalWiring() int {
	s := 0
	for _, v := range t.overlap {
		s += v
	}
	return s
}

// fpInsert places l at its canonical position, keeping fpLoops sorted so
// Fingerprint never sorts. The binary search is hand-rolled to keep
// AddLoop allocation-free.
func (t *Topology) fpInsert(l Loop) {
	lo, hi := 0, len(t.fpLoops)
	for lo < hi {
		mid := (lo + hi) / 2
		if loopLess(t.fpLoops[mid], l) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	t.fpLoops = append(t.fpLoops, Loop{})
	copy(t.fpLoops[lo+1:], t.fpLoops[lo:])
	t.fpLoops[lo] = l
	t.fpDirty = true
}

// loopLess is the canonical fingerprint order: corner coordinates, then
// direction.
func loopLess(a, b Loop) bool {
	if a.R1 != b.R1 {
		return a.R1 < b.R1
	}
	if a.C1 != b.C1 {
		return a.C1 < b.C1
	}
	if a.R2 != b.R2 {
		return a.R2 < b.R2
	}
	if a.C2 != b.C2 {
		return a.C2 < b.C2
	}
	return a.Dir < b.Dir
}

// Fingerprint returns a canonical string for the loop multiset, used as a
// state key by the MCTS. The canonical order is maintained incrementally
// by AddLoop and the rendered string is cached, so repeated calls on an
// unchanged topology are allocation-free.
func (t *Topology) Fingerprint() string {
	if !t.fpDirty {
		return t.fpStr
	}
	b := t.fpBuf[:0]
	for _, l := range t.fpLoops {
		b = append(b, '(')
		b = strconv.AppendInt(b, int64(l.R1), 10)
		b = append(b, ',')
		b = strconv.AppendInt(b, int64(l.C1), 10)
		b = append(b, ")-("...)
		b = strconv.AppendInt(b, int64(l.R2), 10)
		b = append(b, ',')
		b = strconv.AppendInt(b, int64(l.C2), 10)
		b = append(b, ')', '/')
		if l.Dir == Clockwise {
			b = append(b, "CW"...)
		} else {
			b = append(b, "CCW"...)
		}
		b = append(b, ';')
	}
	t.fpBuf = b
	t.fpStr = string(b)
	t.fpDirty = false
	return t.fpStr
}

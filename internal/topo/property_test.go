package topo

import (
	"math/rand"
	"testing"
)

// bruteDist recomputes the pairwise distance directly from the loop list,
// bypassing the incremental cache.
func bruteDist(t *Topology, src, dst Node) int {
	if src == dst {
		return 0
	}
	best := -1
	for _, l := range t.Loops() {
		d := l.Dist(src, dst)
		if d > 0 && (best < 0 || d < best) {
			best = d
		}
	}
	return best
}

// Property: the incremental distance cache always matches a brute-force
// recomputation, through arbitrary interleavings of AddLoop and RemoveLoop.
func TestDistCacheMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 30; trial++ {
		n := 3 + rng.Intn(4)
		tp := NewSquare(n, 0)
		for op := 0; op < 25; op++ {
			if tp.NumLoops() > 0 && rng.Float64() < 0.25 {
				tp.RemoveLoop(rng.Intn(tp.NumLoops()))
			} else {
				r1, c1 := rng.Intn(n-1), rng.Intn(n-1)
				r2 := r1 + 1 + rng.Intn(n-1-r1)
				c2 := c1 + 1 + rng.Intn(n-1-c1)
				l := MustLoop(r1, c1, r2, c2, Direction(rng.Intn(2)))
				if !tp.HasLoop(l) {
					if err := tp.AddLoop(l); err != nil {
						t.Fatal(err)
					}
				}
			}
			// Spot-check a handful of random pairs plus the extremes.
			for k := 0; k < 8; k++ {
				s := NodeFromID(rng.Intn(n*n), n)
				d := NodeFromID(rng.Intn(n*n), n)
				want := bruteDist(tp, s, d)
				if got := tp.Dist(s, d); got != want {
					t.Fatalf("n=%d after %d ops: Dist(%v,%v) cache %d, brute %d",
						n, op, s, d, got, want)
				}
			}
		}
	}
}

// Property: overlap bookkeeping equals a recount from the loop list.
func TestOverlapMatchesRecount(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 5
	tp := NewSquare(n, 0)
	for op := 0; op < 40; op++ {
		r1, c1 := rng.Intn(n-1), rng.Intn(n-1)
		r2 := r1 + 1 + rng.Intn(n-1-r1)
		c2 := c1 + 1 + rng.Intn(n-1-c1)
		l := MustLoop(r1, c1, r2, c2, Direction(rng.Intn(2)))
		if tp.HasLoop(l) {
			continue
		}
		if err := tp.AddLoop(l); err != nil {
			t.Fatal(err)
		}
		for id := 0; id < n*n; id++ {
			node := NodeFromID(id, n)
			count := 0
			for _, lp := range tp.Loops() {
				if lp.Contains(node) {
					count++
				}
			}
			if got := tp.Overlap(node); got != count {
				t.Fatalf("overlap(%v) = %d, recount %d", node, got, count)
			}
		}
	}
}

// Property: TotalWiring equals the sum of loop perimeters.
func TestTotalWiringEqualsPerimeterSum(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	tp := NewSquare(6, 0)
	want := 0
	for op := 0; op < 20; op++ {
		r1, c1 := rng.Intn(5), rng.Intn(5)
		r2 := r1 + 1 + rng.Intn(5-r1)
		c2 := c1 + 1 + rng.Intn(5-c1)
		l := MustLoop(r1, c1, r2, c2, Direction(rng.Intn(2)))
		if tp.HasLoop(l) {
			continue
		}
		if err := tp.AddLoop(l); err != nil {
			t.Fatal(err)
		}
		want += l.Len()
		if got := tp.TotalWiring(); got != want {
			t.Fatalf("wiring %d, want %d", got, want)
		}
	}
}

// Property: a clone's caches behave identically to a freshly rebuilt
// topology for all pair queries.
func TestCloneCacheConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tp := NewSquare(5, 0)
	for op := 0; op < 10; op++ {
		r1, c1 := rng.Intn(4), rng.Intn(4)
		r2 := r1 + 1 + rng.Intn(4-r1)
		c2 := c1 + 1 + rng.Intn(4-c1)
		l := MustLoop(r1, c1, r2, c2, Direction(rng.Intn(2)))
		if !tp.HasLoop(l) {
			if err := tp.AddLoop(l); err != nil {
				t.Fatal(err)
			}
		}
	}
	c := tp.Clone()
	for s := 0; s < 25; s++ {
		for d := 0; d < 25; d++ {
			a := tp.Dist(NodeFromID(s, 5), NodeFromID(d, 5))
			b := c.Dist(NodeFromID(s, 5), NodeFromID(d, 5))
			if a != b {
				t.Fatalf("clone dist differs at (%d,%d): %d vs %d", s, d, a, b)
			}
		}
	}
}

package topo

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewLoopNormalizesCorners(t *testing.T) {
	l, err := NewLoop(3, 2, 1, 0, Clockwise)
	if err != nil {
		t.Fatal(err)
	}
	if l.R1 != 1 || l.C1 != 0 || l.R2 != 3 || l.C2 != 2 {
		t.Fatalf("got %v, want (1,0)-(3,2)", l)
	}
}

func TestNewLoopRejectsDegenerate(t *testing.T) {
	cases := [][4]int{
		{0, 0, 0, 3}, // single row
		{0, 0, 3, 0}, // single column
		{2, 2, 2, 2}, // single node
	}
	for _, c := range cases {
		if _, err := NewLoop(c[0], c[1], c[2], c[3], Clockwise); err == nil {
			t.Errorf("NewLoop(%v) accepted degenerate rectangle", c)
		}
	}
}

func TestNewLoopRejectsNegative(t *testing.T) {
	if _, err := NewLoop(-1, 0, 2, 2, Clockwise); err == nil {
		t.Fatal("accepted negative corner")
	}
}

func TestLoopLen(t *testing.T) {
	cases := []struct {
		l    Loop
		want int
	}{
		{MustLoop(0, 0, 1, 1, Clockwise), 4},
		{MustLoop(0, 0, 3, 3, Clockwise), 12},
		{MustLoop(0, 0, 2, 5, Counterclockwise), 14},
	}
	for _, c := range cases {
		if got := c.l.Len(); got != c.want {
			t.Errorf("%v.Len() = %d, want %d", c.l, got, c.want)
		}
	}
}

func TestLoopNodesOrderClockwise(t *testing.T) {
	l := MustLoop(0, 0, 2, 2, Clockwise)
	want := []Node{
		{0, 0}, {0, 1}, {0, 2},
		{1, 2}, {2, 2},
		{2, 1}, {2, 0},
		{1, 0},
	}
	got := l.Nodes()
	if len(got) != len(want) {
		t.Fatalf("len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("node[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestLoopNodesOrderCounterclockwise(t *testing.T) {
	l := MustLoop(0, 0, 2, 2, Counterclockwise)
	want := []Node{
		{0, 0}, {1, 0}, {2, 0},
		{2, 1}, {2, 2},
		{1, 2}, {0, 2},
		{0, 1},
	}
	got := l.Nodes()
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("node[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

// Property: IndexOf agrees with the position in Nodes() for every
// perimeter node, in both directions.
func TestLoopIndexOfMatchesNodes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		r1, c1 := rng.Intn(6), rng.Intn(6)
		h, w := 1+rng.Intn(5), 1+rng.Intn(5)
		dir := Direction(rng.Intn(2))
		l, err := NewLoop(r1, c1, r1+h, c1+w, dir)
		if err != nil {
			t.Fatal(err)
		}
		for i, n := range l.Nodes() {
			if got := l.IndexOf(n); got != i {
				t.Fatalf("loop %v: IndexOf(%v) = %d, want %d", l, n, got, i)
			}
		}
	}
}

func TestLoopIndexOfOffLoop(t *testing.T) {
	l := MustLoop(0, 0, 3, 3, Clockwise)
	if got := l.IndexOf(Node{1, 1}); got != -1 {
		t.Fatalf("interior node index = %d, want -1", got)
	}
	if got := l.IndexOf(Node{5, 5}); got != -1 {
		t.Fatalf("outside node index = %d, want -1", got)
	}
}

// Property: Dist(src,dst) + Dist(dst,src) == Len for distinct perimeter
// nodes, and Next applied Dist times reaches dst.
func TestLoopDistProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		h, w := 1+rng.Intn(4), 1+rng.Intn(4)
		dir := Direction(rng.Intn(2))
		l := MustLoop(0, 0, h, w, dir)
		nodes := l.Nodes()
		src := nodes[rng.Intn(len(nodes))]
		dst := nodes[rng.Intn(len(nodes))]
		d := l.Dist(src, dst)
		if src == dst {
			if d != 0 {
				t.Fatalf("Dist(x,x) = %d", d)
			}
			continue
		}
		back := l.Dist(dst, src)
		if d+back != l.Len() {
			t.Fatalf("loop %v: %v->%v dist %d + reverse %d != len %d", l, src, dst, d, back, l.Len())
		}
		cur := src
		for i := 0; i < d; i++ {
			cur = l.Next(cur)
		}
		if cur != dst {
			t.Fatalf("loop %v: walking %d hops from %v reached %v, want %v", l, d, src, cur, dst)
		}
	}
}

func TestLoopContains(t *testing.T) {
	l := MustLoop(1, 1, 3, 4, Clockwise)
	if !l.Contains(Node{1, 2}) || !l.Contains(Node{3, 4}) || !l.Contains(Node{2, 1}) {
		t.Fatal("perimeter nodes not contained")
	}
	if l.Contains(Node{2, 2}) || l.Contains(Node{0, 0}) {
		t.Fatal("non-perimeter node contained")
	}
}

func TestDirectionReverse(t *testing.T) {
	if Clockwise.Reverse() != Counterclockwise || Counterclockwise.Reverse() != Clockwise {
		t.Fatal("Reverse broken")
	}
}

// quick-check: reversing direction reverses pairwise distances.
func TestLoopReverseDistQuick(t *testing.T) {
	f := func(h8, w8, i8, j8 uint8) bool {
		h := int(h8%4) + 1
		w := int(w8%4) + 1
		cw := MustLoop(0, 0, h, w, Clockwise)
		ccw := MustLoop(0, 0, h, w, Counterclockwise)
		nodes := cw.Nodes()
		src := nodes[int(i8)%len(nodes)]
		dst := nodes[int(j8)%len(nodes)]
		if src == dst {
			return cw.Dist(src, dst) == 0 && ccw.Dist(src, dst) == 0
		}
		return cw.Dist(src, dst) == ccw.Dist(dst, src)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestNodeIDRoundTrip(t *testing.T) {
	for cols := 1; cols <= 8; cols++ {
		for id := 0; id < 4*cols; id++ {
			if got := NodeFromID(id, cols).ID(cols); got != id {
				t.Fatalf("cols=%d id=%d round-trips to %d", cols, id, got)
			}
		}
	}
}

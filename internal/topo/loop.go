// Package topo models routerless network-on-chip topologies built from
// unidirectional rectangular loops on an N×M grid of nodes.
//
// It provides the state representation used by the DRL framework (hop-count
// matrices), connectivity and node-overlapping accounting, and the
// source-routing tables consumed by the cycle-accurate simulator.
package topo

import (
	"fmt"
)

// Direction is the circulation direction of packets within a loop.
type Direction uint8

const (
	// Clockwise circulation (dir = 1 in the paper's action encoding).
	Clockwise Direction = iota
	// Counterclockwise circulation (dir = 0).
	Counterclockwise
)

// String returns "CW" or "CCW".
func (d Direction) String() string {
	if d == Clockwise {
		return "CW"
	}
	return "CCW"
}

// Reverse returns the opposite direction.
func (d Direction) Reverse() Direction {
	if d == Clockwise {
		return Counterclockwise
	}
	return Clockwise
}

// Node identifies a grid node by row and column.
type Node struct {
	Row, Col int
}

// ID returns the linear index of the node on an N-column grid.
func (n Node) ID(cols int) int { return n.Row*cols + n.Col }

// NodeFromID is the inverse of Node.ID.
func NodeFromID(id, cols int) Node { return Node{Row: id / cols, Col: id % cols} }

// String renders the node as "(r,c)".
func (n Node) String() string { return fmt.Sprintf("(%d,%d)", n.Row, n.Col) }

// Loop is a rectangular unidirectional ring identified by two diagonal
// corners and a circulation direction. The rectangle spans rows
// [R1, R2] and columns [C1, C2] with R1 < R2 and C1 < C2 after
// normalization; degenerate (single-row or single-column) rectangles are
// not valid loops.
type Loop struct {
	R1, C1, R2, C2 int
	Dir            Direction
}

// NewLoop builds a normalized loop from two diagonal corners. It returns an
// error when the rectangle is degenerate (the paper's "invalid action").
func NewLoop(r1, c1, r2, c2 int, dir Direction) (Loop, error) {
	l := Loop{R1: r1, C1: c1, R2: r2, C2: c2, Dir: dir}
	l.normalize()
	if l.R1 == l.R2 || l.C1 == l.C2 {
		return Loop{}, fmt.Errorf("topo: degenerate loop (%d,%d)-(%d,%d)", r1, c1, r2, c2)
	}
	if l.R1 < 0 || l.C1 < 0 {
		return Loop{}, fmt.Errorf("topo: negative loop corner (%d,%d)-(%d,%d)", r1, c1, r2, c2)
	}
	return l, nil
}

// MustLoop is NewLoop that panics on error; for tests and literals.
func MustLoop(r1, c1, r2, c2 int, dir Direction) Loop {
	l, err := NewLoop(r1, c1, r2, c2, dir)
	if err != nil {
		panic(err)
	}
	return l
}

func (l *Loop) normalize() {
	if l.R1 > l.R2 {
		l.R1, l.R2 = l.R2, l.R1
	}
	if l.C1 > l.C2 {
		l.C1, l.C2 = l.C2, l.C1
	}
}

// Height is the number of rows the loop spans.
func (l Loop) Height() int { return l.R2 - l.R1 + 1 }

// Width is the number of columns the loop spans.
func (l Loop) Width() int { return l.C2 - l.C1 + 1 }

// Len is the number of nodes (and links) on the loop perimeter.
func (l Loop) Len() int { return 2 * (l.Height() + l.Width() - 2) }

// Contains reports whether node n lies on the loop perimeter.
func (l Loop) Contains(n Node) bool {
	if n.Row < l.R1 || n.Row > l.R2 || n.Col < l.C1 || n.Col > l.C2 {
		return false
	}
	return n.Row == l.R1 || n.Row == l.R2 || n.Col == l.C1 || n.Col == l.C2
}

// String renders the loop as "(r1,c1)-(r2,c2)/DIR".
func (l Loop) String() string {
	return fmt.Sprintf("(%d,%d)-(%d,%d)/%s", l.R1, l.C1, l.R2, l.C2, l.Dir)
}

// Nodes returns the perimeter nodes in traversal order starting from the
// top-left corner, following the loop's circulation direction.
func (l Loop) Nodes() []Node {
	h, w := l.Height(), l.Width()
	out := make([]Node, 0, l.Len())
	// Clockwise order starting at (R1, C1): right along the top, down the
	// right side, left along the bottom, up the left side.
	for c := l.C1; c < l.C2; c++ {
		out = append(out, Node{l.R1, c})
	}
	for r := l.R1; r < l.R2; r++ {
		out = append(out, Node{r, l.C2})
	}
	for c := l.C2; c > l.C1; c-- {
		out = append(out, Node{l.R2, c})
	}
	for r := l.R2; r > l.R1; r-- {
		out = append(out, Node{r, l.C1})
	}
	if l.Dir == Counterclockwise {
		// Reverse traversal order, keeping the start node first.
		rev := make([]Node, 0, len(out))
		rev = append(rev, out[0])
		for i := len(out) - 1; i >= 1; i-- {
			rev = append(rev, out[i])
		}
		out = rev
	}
	_ = h
	_ = w
	return out
}

// IndexOf returns the position of node n along the loop traversal order, or
// -1 when n is not on the loop.
func (l Loop) IndexOf(n Node) int {
	if !l.Contains(n) {
		return -1
	}
	// Clockwise index from the top-left corner.
	h, w := l.Height(), l.Width()
	var cw int
	switch {
	case n.Row == l.R1: // top edge (includes both top corners)
		cw = n.Col - l.C1
	case n.Col == l.C2: // right edge below top-right corner
		cw = (w - 1) + (n.Row - l.R1)
	case n.Row == l.R2: // bottom edge left of bottom-right corner
		cw = (w - 1) + (h - 1) + (l.C2 - n.Col)
	default: // left edge between bottom-left and top-left corners
		cw = 2*(w-1) + (h - 1) + (l.R2 - n.Row)
	}
	if l.Dir == Clockwise {
		return cw
	}
	if cw == 0 {
		return 0
	}
	return l.Len() - cw
}

// Dist returns the number of hops from src to dst traveling along the loop
// in its circulation direction, or -1 when either node is off the loop.
func (l Loop) Dist(src, dst Node) int {
	i, j := l.IndexOf(src), l.IndexOf(dst)
	if i < 0 || j < 0 {
		return -1
	}
	d := j - i
	if d < 0 {
		d += l.Len()
	}
	return d
}

// Next returns the node that follows n along the loop circulation.
// It panics if n is not on the loop.
func (l Loop) Next(n Node) Node {
	i := l.IndexOf(n)
	if i < 0 {
		panic(fmt.Sprintf("topo: %v not on loop %v", n, l))
	}
	nodes := l.Nodes()
	return nodes[(i+1)%len(nodes)]
}

// Equal reports whether two loops have identical geometry and direction.
func (l Loop) Equal(o Loop) bool {
	return l.R1 == o.R1 && l.C1 == o.C1 && l.R2 == o.R2 && l.C2 == o.C2 && l.Dir == o.Dir
}

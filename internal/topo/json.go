package topo

import (
	"encoding/json"
	"fmt"
)

// topologyJSON is the on-disk representation used by the cmd tools.
type topologyJSON struct {
	Rows       int        `json:"rows"`
	Cols       int        `json:"cols"`
	OverlapCap int        `json:"overlap_cap,omitempty"`
	Loops      []loopJSON `json:"loops"`
}

type loopJSON struct {
	R1  int    `json:"r1"`
	C1  int    `json:"c1"`
	R2  int    `json:"r2"`
	C2  int    `json:"c2"`
	Dir string `json:"dir"`
}

// MarshalJSON encodes the topology with its loop list.
func (t *Topology) MarshalJSON() ([]byte, error) {
	j := topologyJSON{Rows: t.rows, Cols: t.cols, OverlapCap: t.overlapCap}
	for _, l := range t.loops {
		j.Loops = append(j.Loops, loopJSON{l.R1, l.C1, l.R2, l.C2, l.Dir.String()})
	}
	return json.Marshal(j)
}

// UnmarshalJSON decodes a topology previously written by MarshalJSON.
func (t *Topology) UnmarshalJSON(b []byte) error {
	var j topologyJSON
	if err := json.Unmarshal(b, &j); err != nil {
		return err
	}
	if j.Rows < 1 || j.Cols < 1 {
		return fmt.Errorf("topo: invalid grid %dx%d", j.Rows, j.Cols)
	}
	*t = *New(j.Rows, j.Cols, j.OverlapCap)
	for _, lj := range j.Loops {
		var dir Direction
		switch lj.Dir {
		case "CW":
			dir = Clockwise
		case "CCW":
			dir = Counterclockwise
		default:
			return fmt.Errorf("topo: unknown direction %q", lj.Dir)
		}
		l, err := NewLoop(lj.R1, lj.C1, lj.R2, lj.C2, dir)
		if err != nil {
			return err
		}
		t.addUnchecked(l)
	}
	return nil
}

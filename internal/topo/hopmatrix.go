package topo

// UnconnectedHops returns the sentinel hop value used for unconnected node
// pairs in the state encoding: 5*N for an N×N NoC (§4.2 of the paper).
// For rectangular grids the larger dimension is used.
func UnconnectedHops(rows, cols int) float64 {
	n := rows
	if cols > n {
		n = cols
	}
	return 5 * float64(n)
}

// HopMatrix encodes the topology as the paper's state representation: a
// matrix tiled from R×C submatrices, where submatrix (r,c) holds the hop
// count from node (r,c) to every node in the network. Submatrix (sr,sc)
// occupies block row sr and block column sc, so the full matrix is
// (R²)×(C²); for the paper's square N×N NoCs this is the N²×N² hop-count
// matrix fed to the DNN. Unconnected pairs encode as UnconnectedHops; a
// node's distance to itself is 0.
//
// The returned slice is row-major with height R² and width C².
func (t *Topology) HopMatrix() []float64 {
	r, c := t.rows, t.cols
	h, w := r*r, c*c
	def := UnconnectedHops(r, c)
	m := make([]float64, h*w)
	for s := 0; s < t.N(); s++ {
		src := NodeFromID(s, c)
		for d := 0; d < t.N(); d++ {
			dst := NodeFromID(d, c)
			hops := t.Dist(src, dst)
			v := def
			if hops >= 0 {
				v = float64(hops)
			}
			row := src.Row*r + dst.Row
			col := src.Col*c + dst.Col
			m[row*w+col] = v
		}
	}
	return m
}

// HopMatrixDims returns the (height, width) of HopMatrix: (Rows², Cols²).
func (t *Topology) HopMatrixDims() (int, int) { return t.rows * t.rows, t.cols * t.cols }

package topo

// UnconnectedHops returns the sentinel hop value used for unconnected node
// pairs in the state encoding: 5*N for an N×N NoC (§4.2 of the paper).
// For rectangular grids the larger dimension is used.
func UnconnectedHops(rows, cols int) float64 {
	n := rows
	if cols > n {
		n = cols
	}
	return 5 * float64(n)
}

// HopMatrix encodes the topology as the paper's state representation: a
// matrix tiled from R×C submatrices, where submatrix (r,c) holds the hop
// count from node (r,c) to every node in the network. Submatrix (sr,sc)
// occupies block row sr and block column sc, so the full matrix is
// (R²)×(C²); for the paper's square N×N NoCs this is the N²×N² hop-count
// matrix fed to the DNN. Unconnected pairs encode as UnconnectedHops; a
// node's distance to itself is 0.
//
// The returned slice is row-major with height R² and width C². The matrix
// is materialized once and maintained incrementally by AddLoop, so each
// call costs one allocation plus a flat copy; use HopMatrixInto to skip
// the allocation too.
func (t *Topology) HopMatrix() []float64 { return t.HopMatrixInto(nil) }

// HopMatrixInto writes the state matrix into dst, reallocating only when
// dst lacks capacity, and returns the (resliced) destination. On a
// topology whose matrix is already materialized this performs a single
// copy and no allocation.
func (t *Topology) HopMatrixInto(dst []float64) []float64 {
	if t.hopM == nil {
		t.hopM = make([]float64, t.rows*t.rows*t.cols*t.cols)
		t.fillHopM()
	}
	if cap(dst) < len(t.hopM) {
		dst = make([]float64, len(t.hopM))
	}
	dst = dst[:len(t.hopM)]
	copy(dst, t.hopM)
	return dst
}

// HopMatrixDims returns the (height, width) of HopMatrix: (Rows², Cols²).
func (t *Topology) HopMatrixDims() (int, int) { return t.rows * t.rows, t.cols * t.cols }

// fillHopM rebuilds the materialized state matrix from the distance cache.
func (t *Topology) fillHopM() {
	def := UnconnectedHops(t.rows, t.cols)
	for i := range t.hopM {
		t.hopM[i] = def
	}
	n := t.N()
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			if h := t.dist[s*n+d]; h >= 0 {
				t.setHopM(s, d, float64(h))
			}
		}
	}
}

// setHopM writes one (src, dst) entry of the materialized state matrix.
// The tiling maps source (sr,sc) and destination (dr,dc) to matrix cell
// (sr*R + dr, sc*C + dc).
func (t *Topology) setHopM(src, dst int, v float64) {
	c := t.cols
	row := (src/c)*t.rows + dst/c
	col := (src%c)*c + dst%c
	t.hopM[row*(c*c)+col] = v
}

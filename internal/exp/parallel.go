package exp

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"routerless/internal/obs"
	"routerless/internal/sim"
)

// This file is the parallel experiment harness. Experiment points —
// (topology, pattern, rate, seed) tuples — are independent: each one
// builds its own network and injector, so they fan out across worker
// goroutines with no shared mutable state (the freelist ownership rule:
// one packet pool per run, one network per worker — see DESIGN.md).
// Results are always placed by input index, so parallel output is
// byte-identical to sequential output for a fixed seed.

// jobs resolves the worker-pool width for these options: Workers when
// set, else GOMAXPROCS.
func (o Options) jobs() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// RunParallel evaluates fn(0..n-1) across up to j worker goroutines and
// returns the results in input order. fn must be safe for concurrent
// calls and deterministic per index (every experiment helper in this
// package is: each call constructs its own network and seeded injector).
// Each worker counts completed points into the registry's
// "exp.worker.<w>.points" counter; reg may be nil.
func RunParallel[T any](n, j int, reg *obs.Registry, fn func(i int) T) []T {
	return RunParallelTraced(n, j, reg, nil, func(i int, _ *obs.TraceShard) T { return fn(i) })
}

// RunParallelTraced is RunParallel with span recording: each worker owns
// one trace shard ("exp.worker.<w>") and every point is wrapped in an
// exp.point span. fn receives the worker's shard so the point's inner
// phases (e.g. sim.Run via RunConfig.Trace) nest under it. tr may be nil.
func RunParallelTraced[T any](n, j int, reg *obs.Registry, tr *obs.Tracer, fn func(i int, sh *obs.TraceShard) T) []T {
	out := make([]T, n)
	if n == 0 {
		return out
	}
	if j > n {
		j = n
	}
	if j <= 1 {
		c := reg.Counter("exp.worker.0.points")
		sh := tr.Shard("exp.worker.0")
		for i := 0; i < n; i++ {
			sp := sh.Start(obs.SpanExpPoint)
			out[i] = fn(i, sh)
			sp.End()
			c.Inc()
		}
		return out
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < j; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := reg.Counter(fmt.Sprintf("exp.worker.%d.points", w))
			sh := tr.Shard(fmt.Sprintf("exp.worker.%d", w))
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				sp := sh.Start(obs.SpanExpPoint)
				out[i] = fn(i, sh)
				sp.End()
				c.Inc()
			}
		}(w)
	}
	wg.Wait()
	return out
}

// runAll evaluates independent simulation jobs across the options'
// worker pool, preserving input order. The figure/table generators use
// it to fan their cells out while keeping row order deterministic.
func runAll(o Options, jobs []func() sim.Result) []sim.Result {
	return RunParallelTraced(len(jobs), o.jobs(), o.Metrics, o.Trace,
		func(i int, _ *obs.TraceShard) sim.Result { return jobs[i]() })
}

// sweepState carries Sweep's stop conditions so the sequential and
// speculative sweeps share them exactly: the zero-load baseline is the
// first point that actually delivered packets, and the sweep stops on
// saturation or once latency exceeds 3x that baseline.
type sweepState struct{ zeroLoad float64 }

// stop folds one in-order result into the state and reports whether the
// sweep ends after this point.
func (s *sweepState) stop(res sim.Result) bool {
	if s.zeroLoad == 0 && res.PacketsDone > 0 {
		s.zeroLoad = res.AvgLatency
	}
	return res.Saturated || (s.zeroLoad > 0 && res.AvgLatency > 3*s.zeroLoad)
}

// ParallelSweep is Sweep with speculative parallelism: rates are run in
// batches of j across the worker pool, then scanned in order under the
// same stop conditions as Sweep. Points past a stop are discarded, so
// for a deterministic run function the result is identical to
// Sweep(run, rates) — the speculation only trades (at most one batch of)
// wasted simulation for wall-clock time. j <= 1 falls back to Sweep.
func ParallelSweep(run func(rate float64) sim.Result, rates []float64, j int) []sim.SweepPoint {
	if j <= 1 || len(rates) <= 1 {
		return Sweep(run, rates)
	}
	pts := make([]sim.SweepPoint, 0, len(rates))
	var st sweepState
	for start := 0; start < len(rates); start += j {
		end := start + j
		if end > len(rates) {
			end = len(rates)
		}
		batch := rates[start:end]
		results := RunParallel(len(batch), j, nil, func(i int) sim.Result { return run(batch[i]) })
		for i, res := range results {
			pts = append(pts, sim.SweepPoint{Rate: batch[i], Result: res})
			if st.stop(res) {
				return pts
			}
		}
	}
	return pts
}

// Package exp reproduces every table and figure of the paper's evaluation
// (§6). Each experiment builds its workloads, runs the DRL search and/or
// the cycle-accurate simulator, and returns a Report whose rows mirror the
// published artifact. The same functions back cmd/benchtab and the
// repository-level benchmarks; EXPERIMENTS.md records paper-vs-measured.
package exp

import (
	"fmt"
	"strings"
	"sync"

	"routerless/internal/drl"
	"routerless/internal/imr"
	"routerless/internal/obs"
	"routerless/internal/rec"
	"routerless/internal/rl"
	"routerless/internal/sim"
	"routerless/internal/stats"
	"routerless/internal/topo"
	"routerless/internal/traffic"
	"routerless/internal/viz"
)

// Options tunes experiment budgets.
type Options struct {
	// Quick selects reduced budgets for test/bench runs; the full budgets
	// approximate the paper's sweeps and take minutes per experiment.
	Quick bool
	// Seed drives every stochastic component.
	Seed int64
	// Workers is the worker-pool width for the parallel experiment paths
	// (RunParallel/ParallelSweep): 0 selects GOMAXPROCS, 1 forces the
	// sequential path. Parallel and sequential runs of the same seed
	// produce identical reports.
	Workers int
	// Metrics/Events, when non-nil, are threaded into the DRL searches the
	// experiments run, so benchtab's -metrics/-events/-debug-addr flags
	// observe the long-running search phases.
	Metrics *obs.Registry
	Events  *obs.Logger
	// Trace, when non-nil, records exp.point spans (one per experiment
	// point on the parallel harness) and is threaded into the DRL searches
	// the experiments run, so benchtab's -trace flag covers the search,
	// inference, and simulation phases.
	Trace *obs.Tracer
}

// instrument attaches the options' telemetry sinks to a search config.
func (o Options) instrument(cfg *drl.Config) {
	cfg.Metrics = o.Metrics
	cfg.Events = o.Events
	cfg.Trace = o.Trace
}

// Report is one regenerated artifact.
type Report struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// String renders the report as an aligned text table.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	rows := append([][]string{r.Header}, r.Rows...)
	b.WriteString(viz.Table(rows))
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Add appends a formatted row.
func (r *Report) Add(cells ...string) { r.Rows = append(r.Rows, cells) }

// f formats a float compactly.
func f(v float64) string { return fmt.Sprintf("%.3f", v) }

// ---------------------------------------------------------------------------
// Design cache: experiments share searched designs.

var (
	designMu    sync.Mutex
	designCache = map[string]*topo.Topology{}
)

// searchEpisodes returns the DRL episode budget for a NoC size.
func searchEpisodes(n int, quick bool) int {
	if quick {
		switch {
		case n <= 4:
			return 10
		case n <= 8:
			return 8
		default:
			return 4
		}
	}
	switch {
	case n <= 4:
		return 60
	case n <= 8:
		return 40
	default:
		return 16
	}
}

// DRLDesign searches (and caches) the best DRL design for an n×n NoC under
// the cap. When the search finds no fully connected design in budget it
// falls back to the greedy completion; nil is returned only when even that
// cannot connect the NoC under the cap.
func DRLDesign(n, cap int, o Options) *topo.Topology {
	key := fmt.Sprintf("drl/%d/%d/%v/%d", n, cap, o.Quick, o.Seed)
	designMu.Lock()
	if t, ok := designCache[key]; ok {
		designMu.Unlock()
		return t
	}
	designMu.Unlock()

	cfg := drl.DefaultConfig(n, cap)
	cfg.Episodes = searchEpisodes(n, o.Quick)
	cfg.Seed = o.Seed
	o.instrument(&cfg)
	if n > 10 {
		// The full-resolution DNN input (N²×N²) is prohibitive beyond
		// 10x10 within experiment budgets; the framework runs in its
		// MCTS+greedy configuration there (documented in EXPERIMENTS.md).
		cfg.UseDNN = false
	}
	res := drl.MustNew(cfg).Run()
	t := res.Best.Topo
	if t == nil {
		// Budget exhausted without a complete design: constructive
		// fallbacks. Plain greedy first; under tight caps (where myopic
		// greedy exhausts wiring) seed with the lite recursive layering
		// and let greedy spend the remaining slack.
		env := rl.NewEnv(n, cap)
		rl.GreedyImprove(env, 1e-9, 2)
		if env.FullyConnected() {
			t = env.Topology()
		} else if lite, err := rec.GenerateLite(n); err == nil && lite.MaxOverlap() <= cap {
			env := rl.NewEnvFrom(lite, cap)
			rl.GreedyImprove(env, 1e-9, 2)
			if env.FullyConnected() {
				t = env.Topology()
			}
		}
	}
	designMu.Lock()
	designCache[key] = t
	designMu.Unlock()
	return t
}

// IMRDesign returns the cached best individual of the IMR genetic
// algorithm for an n×n NoC.
func IMRDesign(n int, o Options) *topo.Topology {
	key := fmt.Sprintf("imr/%d/%v/%d", n, o.Quick, o.Seed)
	designMu.Lock()
	if t, ok := designCache[key]; ok {
		designMu.Unlock()
		return t
	}
	designMu.Unlock()
	cfg := imr.DefaultConfig(n)
	cfg.Seed = o.Seed
	if o.Quick {
		cfg.Population = 30
		cfg.Generations = 40
	}
	t := imr.Run(cfg).Best.Topo
	designMu.Lock()
	designCache[key] = t
	designMu.Unlock()
	return t
}

// RECDesign returns the cached REC baseline.
func RECDesign(n int) *topo.Topology {
	key := fmt.Sprintf("rec/%d", n)
	designMu.Lock()
	defer designMu.Unlock()
	if t, ok := designCache[key]; ok {
		return t
	}
	t := rec.MustGenerate(n)
	designCache[key] = t
	return t
}

// avgHops is a nil-safe average hop count.
func avgHops(t *topo.Topology) float64 {
	if t == nil {
		return 0
	}
	m, _ := t.AverageHops()
	return m
}

// ---------------------------------------------------------------------------
// Simulation helpers.

// runCfg returns measurement windows matched to the budget.
func runCfg(o Options) sim.RunConfig {
	if o.Quick {
		return sim.RunConfig{WarmupCycles: 800, MeasureCycles: 4000, DrainCycles: 8000}
	}
	return sim.RunConfig{WarmupCycles: 5000, MeasureCycles: 20000, DrainCycles: 40000}
}

// RingRun simulates one synthetic point on a routerless topology.
func RingRun(t *topo.Topology, p traffic.Pattern, rate float64, o Options) sim.Result {
	net := sim.NewRing(t, sim.DefaultRingConfig())
	src := traffic.NewInjector(t.Rows(), t.Cols(), p, rate, 128, o.Seed+17)
	return sim.Run(net, src, runCfg(o))
}

// MeshRun simulates one synthetic point on an n×n mesh with the given
// router pipeline depth.
func MeshRun(n, delay int, p traffic.Pattern, rate float64, o Options) sim.Result {
	net := sim.NewMesh(n, n, sim.MeshN(delay))
	src := traffic.NewInjector(n, n, p, rate, 256, o.Seed+17)
	return sim.Run(net, src, runCfg(o))
}

// Sweep runs increasing injection rates until saturation (latency beyond
// 3× zero-load or undelivered packets), returning the load-latency curve.
// The zero-load baseline is taken from the first point that delivered any
// packets — a first point with zero completions (possible at very light
// load under short Quick windows) must not freeze the baseline at 0 and
// end the sweep on its successor. A saturated first point still stops the
// sweep immediately. ParallelSweep applies the same conditions.
func Sweep(run func(rate float64) sim.Result, rates []float64) []sim.SweepPoint {
	var pts []sim.SweepPoint
	var st sweepState
	for _, r := range rates {
		res := run(r)
		pts = append(pts, sim.SweepPoint{Rate: r, Result: res})
		if st.stop(res) {
			break
		}
	}
	return pts
}

// SweepRates returns the paper's injection grid (start 0.005, step 0.005
// per §5), coarsened under Quick budgets.
func SweepRates(o Options) []float64 {
	step := 0.005
	max := 0.5
	if o.Quick {
		step = 0.02
	}
	var out []float64
	for r := 0.005; r <= max; r += step {
		out = append(out, r)
	}
	return out
}

// SatThroughput extracts saturation throughput from sweep points.
func SatThroughput(pts []sim.SweepPoint) float64 {
	return stats.SaturationThroughput(sim.Curve(pts), 3)
}

// ZeroLoad extracts the zero-load latency from sweep points.
func ZeroLoad(pts []sim.SweepPoint) float64 {
	return stats.ZeroLoadLatency(sim.Curve(pts))
}

// AppRun simulates a PARSEC-like profile on a routerless topology.
func AppRun(t *topo.Topology, prof traffic.AppProfile, o Options) sim.Result {
	net := sim.NewRing(t, sim.DefaultRingConfig())
	src := traffic.NewAppInjector(prof, t.Rows(), t.Cols(), 128, o.Seed+29)
	return sim.Run(net, src, runCfg(o))
}

// AppRunMesh simulates a PARSEC-like profile on a mesh.
func AppRunMesh(n, delay int, prof traffic.AppProfile, o Options) sim.Result {
	net := sim.NewMesh(n, n, sim.MeshN(delay))
	src := traffic.NewAppInjector(prof, n, n, 256, o.Seed+29)
	return sim.Run(net, src, runCfg(o))
}

// ParsecSuite returns the modelled benchmark list, trimmed under Quick.
func ParsecSuite(o Options) []traffic.AppProfile {
	all := traffic.Parsec()
	if o.Quick {
		// Keep the suite's extremes: a NoC-sensitive benchmark, an
		// insensitive one, and two mid-range ones.
		names := map[string]bool{"blackscholes": true, "canneal": true,
			"fluidanimate": true, "streamcluster": true}
		var out []traffic.AppProfile
		for _, p := range all {
			if names[p.Name] {
				out = append(out, p)
			}
		}
		return out
	}
	return all
}

package exp

import (
	"reflect"
	"testing"

	"routerless/internal/obs"
	"routerless/internal/sim"
	"routerless/internal/traffic"
)

func TestRunParallelOrderAndWorkerCounters(t *testing.T) {
	reg := obs.NewRegistry()
	out := RunParallel(100, 8, reg, func(i int) int { return i * i })
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*i)
		}
	}
	var points int64
	for name, v := range reg.Snapshot().Counters {
		if len(name) > 11 && name[:11] == "exp.worker." {
			points += v
		}
	}
	if points != 100 {
		t.Fatalf("worker point counters sum to %d, want 100", points)
	}
}

// TestRunParallelSimsUnderRace exercises the worker pool with real
// simulations and a shared metrics registry; `make ci` runs this package
// under -race, so any sharing between worker networks or in the obs
// layer fails there.
func TestRunParallelSimsUnderRace(t *testing.T) {
	reg := obs.NewRegistry()
	tpo := RECDesign(4)
	res := RunParallel(16, 8, reg, func(i int) sim.Result {
		return RingRun(tpo, traffic.UniformRandom, 0.02+0.005*float64(i%4), testOpts)
	})
	for i, r := range res {
		if r.PacketsDone == 0 {
			t.Fatalf("job %d delivered nothing", i)
		}
	}
}

// TestParallelSweepMatchesSequential pins the harness determinism
// contract: speculative batching changes wall-clock, never output.
func TestParallelSweepMatchesSequential(t *testing.T) {
	tpo := RECDesign(4)
	run := func(rate float64) sim.Result {
		return RingRun(tpo, traffic.UniformRandom, rate, testOpts)
	}
	rates := []float64{0.005, 0.05, 0.1, 0.2, 0.3, 0.45, 0.6, 0.8, 0.9}
	seq := Sweep(run, rates)
	for _, j := range []int{2, 4, 8, 16} {
		par := ParallelSweep(run, rates, j)
		if !reflect.DeepEqual(seq, par) {
			t.Fatalf("j=%d: parallel sweep diverges from sequential\nseq: %v\npar: %v", j, seq, par)
		}
	}
}

// TestSweepZeroLoadBaselineGuard: a first point that delivers no packets
// (AvgLatency 0) must not become the zero-load baseline — the old code
// froze zeroLoad at 0 and the `latency > 3*zeroLoad` test ended the
// sweep at the second point.
func TestSweepZeroLoadBaselineGuard(t *testing.T) {
	results := []sim.Result{
		{PacketsDone: 0, AvgLatency: 0},
		{PacketsDone: 50, AvgLatency: 20},
		{PacketsDone: 50, AvgLatency: 25},
		{PacketsDone: 50, AvgLatency: 90}, // > 3x the 20-cycle baseline
		{PacketsDone: 50, AvgLatency: 95},
	}
	run := func(rate float64) sim.Result { return results[int(rate)] }
	pts := Sweep(run, []float64{0, 1, 2, 3, 4})
	if len(pts) != 4 {
		t.Fatalf("sweep kept %d points, want 4 (stop at the 3x-baseline point)", len(pts))
	}
	if pts[3].Result.AvgLatency != 90 {
		t.Fatalf("last point latency %.0f, want 90", pts[3].Result.AvgLatency)
	}
}

// TestSweepSaturatedFirstPointStops: saturation on the very first point
// ends the sweep immediately, after recording that point.
func TestSweepSaturatedFirstPointStops(t *testing.T) {
	run := func(rate float64) sim.Result {
		return sim.Result{PacketsDone: 10, AvgLatency: 500, Saturated: true}
	}
	for _, j := range []int{1, 4} {
		pts := ParallelSweep(run, []float64{0.1, 0.2, 0.3}, j)
		if len(pts) != 1 {
			t.Fatalf("j=%d: %d points, want 1", j, len(pts))
		}
	}
}

// TestReportsParallelIdenticalToSequential is the end-to-end determinism
// smoke: a figure and a table rendered with 8 workers are byte-identical
// to the sequential rendering for the same seed.
func TestReportsParallelIdenticalToSequential(t *testing.T) {
	seqOpts := Options{Quick: true, Seed: 1, Workers: 1}
	parOpts := Options{Quick: true, Seed: 1, Workers: 8}
	if seq, par := Figure12ParsecHops(seqOpts).String(), Figure12ParsecHops(parOpts).String(); seq != par {
		t.Fatalf("Figure 12 diverges with 8 workers:\n--- sequential\n%s\n--- parallel\n%s", seq, par)
	}
	if seq, par := Table5ParsecExecTime(seqOpts).String(), Table5ParsecExecTime(parOpts).String(); seq != par {
		t.Fatalf("Table 5 diverges with 8 workers:\n--- sequential\n%s\n--- parallel\n%s", seq, par)
	}
}

// TestParallelSparseMatchesDenseUnderRace runs a concurrent sweep where
// every point simulates the same workload twice — active-set sparse
// stepping and the dense reference — on worker goroutines sharing a
// metrics registry. `make ci` runs this package under -race, so it both
// pins the dense-vs-sparse oracle at sweep granularity and proves the
// sparse bookkeeping introduces no cross-worker sharing.
func TestParallelSparseMatchesDenseUnderRace(t *testing.T) {
	reg := obs.NewRegistry()
	tpo := RECDesign(4)
	cfg := sim.RunConfig{WarmupCycles: 200, MeasureCycles: 800, DrainCycles: 4000}
	type pair struct{ sparse, dense sim.Result }
	res := RunParallel(16, 8, reg, func(i int) pair {
		rate := 0.01 + 0.02*float64(i%4)
		seed := int64(100 + i)
		runOne := func(dense bool) sim.Result {
			rc := sim.DefaultRingConfig()
			rc.DenseStep = dense
			net := sim.NewRing(tpo, rc)
			src := traffic.NewInjector(4, 4, traffic.UniformRandom, rate, 128, seed)
			return sim.Run(net, src, cfg)
		}
		return pair{sparse: runOne(false), dense: runOne(true)}
	})
	for i, p := range res {
		if p.sparse != p.dense {
			t.Fatalf("point %d: sparse diverges from dense\n sparse: %+v\n dense:  %+v", i, p.sparse, p.dense)
		}
		if p.sparse.PacketsDone == 0 {
			t.Fatalf("point %d delivered nothing", i)
		}
	}
}

package exp

import (
	"fmt"
	"strings"
	"testing"

	"routerless/internal/sim"
	"routerless/internal/traffic"
)

var testOpts = Options{Quick: true, Seed: 1}

func TestReportString(t *testing.T) {
	r := &Report{ID: "X", Title: "demo", Header: []string{"a", "b"}}
	r.Add("1", "2")
	r.Notes = append(r.Notes, "hello")
	s := r.String()
	for _, want := range []string{"X", "demo", "a", "1", "note: hello"} {
		if !strings.Contains(s, want) {
			t.Fatalf("missing %q in:\n%s", want, s)
		}
	}
}

func TestDesignCachesAndFallbacks(t *testing.T) {
	a := DRLDesign(4, 6, testOpts)
	b := DRLDesign(4, 6, testOpts)
	if a != b {
		t.Fatal("design cache miss on identical key")
	}
	if a == nil || !a.FullyConnected() {
		t.Fatal("cached design invalid")
	}
	if RECDesign(4) != RECDesign(4) {
		t.Fatal("REC cache broken")
	}
	if IMRDesign(4, testOpts) == nil {
		t.Fatal("IMR design nil")
	}
}

func TestSweepStopsAtSaturation(t *testing.T) {
	tpo := RECDesign(4)
	pts := Sweep(func(rate float64) sim.Result {
		return RingRun(tpo, traffic.UniformRandom, rate, testOpts)
	}, []float64{0.005, 0.1, 0.3, 0.6, 0.9})
	if len(pts) == 0 {
		t.Fatal("no sweep points")
	}
	if len(pts) == 5 {
		t.Log("sweep never saturated (acceptable on small NoCs)")
	}
	if SatThroughput(pts) <= 0 || ZeroLoad(pts) <= 0 {
		t.Fatal("sweep metrics nonpositive")
	}
}

func TestParsecSuiteTrimming(t *testing.T) {
	q := ParsecSuite(Options{Quick: true})
	full := ParsecSuite(Options{Quick: false})
	if len(q) != 4 || len(full) != 7 {
		t.Fatalf("suite sizes: quick=%d full=%d", len(q), len(full))
	}
}

func TestByIDUnknown(t *testing.T) {
	if _, err := ByID("nope", testOpts); err == nil {
		t.Fatal("unknown id accepted")
	}
}

// The cheap experiments run end-to-end in tests; heavyweight ones are
// exercised by the benchmarks.
func TestFigure15AreaValues(t *testing.T) {
	r := Figure15Area(testOpts)
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	if r.Rows[0][1] != "45278.000" {
		t.Fatalf("mesh area cell = %q", r.Rows[0][1])
	}
}

func TestFigure9Runs(t *testing.T) {
	r := Figure9Topology(testOpts)
	if len(r.Rows) == 0 {
		t.Fatal("empty report")
	}
	if r.Rows[0][0] == "status" {
		t.Fatal("4x4 search failed even with greedy fallback")
	}
}

func TestTable5ShapeHolds(t *testing.T) {
	r := Table5ParsecExecTime(testOpts)
	if len(r.Rows) == 0 {
		t.Fatal("empty table")
	}
	// Column order: workload, Mesh-2, Mesh-1, REC, DRL. DRL must be the
	// smallest (or tied) in every row — the paper's headline.
	for _, row := range r.Rows {
		var vals [4]float64
		for i := 0; i < 4; i++ {
			if _, err := fmt.Sscanf(row[1+i], "%f", &vals[i]); err != nil {
				t.Fatalf("unparseable cell %q", row[1+i])
			}
		}
		drl := vals[3]
		for i := 0; i < 3; i++ {
			if drl > vals[i]+1e-9 {
				t.Fatalf("%s: DRL %v not <= column %d (%v)", row[0], drl, i, vals[i])
			}
		}
	}
}

func TestFigure12OrderingHolds(t *testing.T) {
	r := Figure12ParsecHops(testOpts)
	for _, row := range r.Rows {
		var meshH, recH, drlH float64
		fmt.Sscanf(row[2], "%f", &meshH)
		fmt.Sscanf(row[3], "%f", &recH)
		fmt.Sscanf(row[4], "%f", &drlH)
		// Paper shape: mesh < DRL < REC per benchmark.
		if !(meshH <= drlH && drlH <= recH) {
			t.Fatalf("%s %s: ordering mesh %v <= DRL %v <= REC %v violated",
				row[0], row[1], meshH, drlH, recH)
		}
	}
}

func TestSection67Reliability(t *testing.T) {
	r := Section67Reliability(testOpts)
	if len(r.Rows) != 2 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row[1] == "N/A" {
			t.Fatalf("%s diversity missing", row[0])
		}
	}
}

package exp

import (
	"fmt"

	"routerless/internal/drl"
	"routerless/internal/rec"
	"routerless/internal/sim"
	"routerless/internal/stats"
)

// Table1Epsilon reproduces Table 1: the ε hyperparameter exploration on an
// 8×8 NoC — number of valid designs found under a fixed exploration
// budget, the minimum hop count, and the hop-count standard deviation.
func Table1Epsilon(o Options) *Report {
	r := &Report{
		ID:     "T1",
		Title:  "Hyperparameter exploration (8x8, fixed budget)",
		Header: []string{"epsilon", "valid designs", "min hops", "SD hops"},
		Notes: []string{
			"paper (5h budget): eps=0.05: 25/5.59/0.140, 0.10: 27/5.60/0.065, 0.20: 11/5.61/0.050, 0.30: 2/5.53/0.040",
		},
	}
	n, cap := 8, 14
	episodes := 10
	if !o.Quick {
		episodes = 60
	}
	for _, eps := range []float64{0.05, 0.10, 0.20, 0.30} {
		cfg := drl.DefaultConfig(n, cap)
		cfg.Episodes = episodes
		cfg.Epsilon = eps
		cfg.Seed = o.Seed
		o.instrument(&cfg)
		res := drl.MustNew(cfg).Run()
		var hops []float64
		for _, d := range res.Valid {
			hops = append(hops, d.AvgHops)
		}
		// Min/StdDev return 0 on an empty slice, matching the "no valid
		// design" row the paper tables print.
		r.Add(f(eps), fmt.Sprintf("%d/%d", len(res.Valid), episodes),
			f(stats.Min(hops)), fmt.Sprintf("%.4f", stats.StdDev(hops)))
	}
	return r
}

// Table2LargerNoCs reproduces Table 2: with node overlapping fixed at 18,
// REC cannot exist beyond 10×10 while DRL still generates fully connected
// designs whose hop count stays near N.
func Table2LargerNoCs(o Options) *Report {
	r := &Report{
		ID:     "T2",
		Title:  "Larger NoCs under node overlapping 18",
		Header: []string{"size", "REC hops", "DRL hops"},
		Notes: []string{
			"paper: 10x10 REC 9.64 vs DRL 7.94; DRL 12x12 12.25, 14x14 15.11, 16x16 18.03, 18x18 21.01",
			"REC requires overlapping 2(N-1): impossible (N/A) beyond 10x10 at cap 18",
		},
	}
	sizes := []int{10, 12}
	if !o.Quick {
		sizes = []int{10, 12, 14, 16, 18}
	}
	const cap = 18
	for _, n := range sizes {
		recCell := "N/A"
		if rec.MaxOverlap(n) <= cap {
			recCell = f(avgHops(RECDesign(n)))
		}
		drlCell := "N/A"
		if t := DRLDesign(n, cap, o); t != nil && t.FullyConnected() {
			drlCell = f(avgHops(t))
		}
		r.Add(fmt.Sprintf("%dx%d", n, n), recCell, drlCell)
	}
	return r
}

// overlapSweep implements Tables 3 and 4: hop count versus node
// overlapping at a fixed NoC size, with REC pinned at its only possible
// cap.
func overlapSweep(id string, n int, caps []int, o Options) *Report {
	recCap := rec.MaxOverlap(n)
	recHops := avgHops(RECDesign(n))
	r := &Report{
		ID:     id,
		Title:  fmt.Sprintf("Wiring-resource utilization, %dx%d", n, n),
		Header: []string{"topology", "node overlapping", "hop count", "improve over REC"},
	}
	r.Add("REC", fmt.Sprintf("%d", recCap), f(recHops), "N/A")
	for _, cap := range caps {
		t := DRLDesign(n, cap, o)
		if t == nil || !t.FullyConnected() {
			r.Add("DRL", fmt.Sprintf("%d", cap), "N/A", "N/A")
			continue
		}
		h := avgHops(t)
		r.Add("DRL", fmt.Sprintf("%d", cap), f(h),
			fmt.Sprintf("%.2f%%", 100*(recHops-h)/recHops))
	}
	return r
}

// Table3Overlap8x8 reproduces Table 3 (8×8; caps 14–20).
func Table3Overlap8x8(o Options) *Report {
	r := overlapSweep("T3", 8, []int{14, 16, 18, 20}, o)
	r.Notes = append(r.Notes,
		"paper: REC@14 7.33; DRL 14/16/18/20 -> 6.22/5.94/5.82/5.80 (15.1-20.9% better)")
	return r
}

// Table4Overlap10x10 reproduces Table 4 (10×10; caps 18–24).
func Table4Overlap10x10(o Options) *Report {
	r := overlapSweep("T4", 10, []int{18, 20, 22, 24}, o)
	r.Notes = append(r.Notes,
		"paper: REC@18 9.64; DRL 18/20/22/24 -> 7.94/7.67/7.59/7.55 (17.6-21.7% better)")
	return r
}

// Table5ParsecExecTime reproduces Table 5: modelled 8×8 PARSEC execution
// times (ms) on Mesh-2, Mesh-1, REC and DRL.
func Table5ParsecExecTime(o Options) *Report {
	r := &Report{
		ID:     "T5",
		Title:  "8x8 PARSEC workload execution time (ms)",
		Header: []string{"workload", "Mesh-2", "Mesh-1", "REC", "DRL"},
		Notes: []string{
			"paper highlights: fluidanimate 35.3/29.2/25.2/24.4; streamcluster flat at 11.0; DRL smallest everywhere",
			"application models substitute full-system PARSEC (DESIGN.md); absolute times are modelled",
		},
	}
	n := 8
	recT := RECDesign(n)
	drlT := DRLDesign(n, rec.MaxOverlap(n), o)
	suite := ParsecSuite(o)
	var jobs []func() sim.Result
	for _, prof := range suite {
		jobs = append(jobs,
			func() sim.Result { return AppRunMesh(n, 2, prof, o) },
			func() sim.Result { return AppRunMesh(n, 1, prof, o) },
			func() sim.Result { return AppRun(recT, prof, o) },
			func() sim.Result { return AppRun(drlT, prof, o) })
	}
	res := runAll(o, jobs)
	for i, prof := range suite {
		m2 := res[4*i].AvgLatency
		m1 := res[4*i+1].AvgLatency
		rc := res[4*i+2].AvgLatency
		dr := res[4*i+3].AvgLatency
		// The reference latency for the execution-time model is the best
		// achieved latency: that network runs the benchmark at BaseTime.
		ideal := min4(m2, m1, rc, dr)
		r.Add(prof.Name,
			fmt.Sprintf("%.1f", prof.ExecutionTimeMS(m2, ideal)),
			fmt.Sprintf("%.1f", prof.ExecutionTimeMS(m1, ideal)),
			fmt.Sprintf("%.1f", prof.ExecutionTimeMS(rc, ideal)),
			fmt.Sprintf("%.1f", prof.ExecutionTimeMS(dr, ideal)))
	}
	return r
}

func min4(a, b, c, d float64) float64 {
	m := a
	for _, v := range []float64{b, c, d} {
		if v < m {
			m = v
		}
	}
	return m
}

package exp

import (
	"fmt"
	"runtime"
	"time"

	"routerless/internal/chiplet"
	"routerless/internal/drl"
	"routerless/internal/noc3d"
	"routerless/internal/rec"
	"routerless/internal/rl"
	"routerless/internal/search"
	"routerless/internal/stats"
	"routerless/internal/topo"
	"routerless/internal/traffic"
)

// Section61Threads reproduces the §6.1 multi-threading study: for an
// equal episode budget on a 10×10 NoC, single- versus multi-threaded
// search compared on wall time, valid designs found, and hop-count SD.
// The paper ran wall-clock-bounded searches (6 vs 49 designs in 10h, 44%
// lower SD); with an episode budget the headline is the wall-time speedup
// plus at-least-parity on design quality.
func Section61Threads(o Options) *Report {
	n, cap := 10, 18
	episodes := 6
	if !o.Quick {
		episodes = 24
	}
	r := &Report{
		ID:     "S6.1",
		Title:  "Multi-threaded exploration efficacy (10x10)",
		Header: []string{"threads", "episodes", "wall time", "valid", "min hops", "SD hops"},
		Notes: []string{
			"paper (10h wall budget): 1 thread -> 6 valid designs; multi-threaded -> 49, with 44% lower hop SD",
			fmt.Sprintf("host has %d CPU core(s): wall-time speedup requires >1; equal-episode budgets isolate search quality", runtime.NumCPU()),
		},
	}
	for _, threads := range []int{1, 4} {
		cfg := drl.DefaultConfig(n, cap)
		cfg.Episodes = episodes
		cfg.Threads = threads
		cfg.Seed = o.Seed
		o.instrument(&cfg)
		start := time.Now()
		res := drl.MustNew(cfg).Run()
		elapsed := time.Since(start).Round(time.Millisecond)
		var hops []float64
		for _, d := range res.Valid {
			hops = append(hops, d.AvgHops)
		}
		r.Add(fmt.Sprintf("%d", threads), fmt.Sprintf("%d", episodes),
			elapsed.String(), fmt.Sprintf("%d", len(res.Valid)),
			f(stats.Min(hops)), fmt.Sprintf("%.4f", stats.StdDev(hops)))
	}
	return r
}

// Section67Reliability reproduces the §6.7 reliability analysis: average
// path diversity (loops per node pair) for REC versus DRL at equal
// overlapping, plus the damage a single loop failure causes (a failed
// link breaks its whole unidirectional loop).
func Section67Reliability(o Options) *Report {
	n := 8
	r := &Report{
		ID:     "S6.7",
		Title:  "Reliability: path diversity and single-loop-failure damage (8x8)",
		Header: []string{"design", "avg paths/pair", "worst-failure disconnected pairs", "failures tolerated (avg)"},
		Notes: []string{
			"paper: REC 2.77 paths between any two nodes on average; DRL 3.79 at equal overlapping",
		},
	}
	recT := RECDesign(n)
	drlT := DRLDesign(n, rec.MaxOverlap(n), o)
	for _, row := range []struct {
		name string
		t    *topo.Topology
	}{{"REC", recT}, {"DRL", drlT}} {
		if row.t == nil {
			r.Add(row.name, "N/A", "N/A", "N/A")
			continue
		}
		div := row.t.AveragePathDiversity()
		worst := 0
		for i := 0; i < row.t.NumLoops(); i++ {
			c := row.t.Clone()
			c.RemoveLoop(i)
			if un := len(c.UnconnectedPairs(0)); un > worst {
				worst = un
			}
		}
		r.Add(row.name, f(div), fmt.Sprintf("%d", worst), f(div-1))
	}
	return r
}

// AblationNoDNN compares the full framework against its pure-MCTS (no
// DNN), DNN-only (no tree), greedy-only (Algorithm 1 alone) and weak-
// penalty variants on an 8×8 search — the design-choice ablations listed
// in DESIGN.md (A1–A3).
func AblationNoDNN(o Options) *Report {
	n, cap := 8, 14
	episodes := 8
	if !o.Quick {
		episodes = 40
	}
	r := &Report{
		ID:     "A1-A3",
		Title:  "Framework ablations (8x8, equal episode budget)",
		Header: []string{"variant", "valid", "best hops", "mean hops"},
		Notes: []string{
			"greedy-only is deterministic: a single design, no exploration",
		},
	}
	run := func(name string, mutate func(*drl.Config)) {
		cfg := drl.DefaultConfig(n, cap)
		cfg.Episodes = episodes
		cfg.Seed = o.Seed
		o.instrument(&cfg)
		mutate(&cfg)
		res := drl.MustNew(cfg).Run()
		var hops []float64
		for _, d := range res.Valid {
			hops = append(hops, d.AvgHops)
		}
		r.Add(name, fmt.Sprintf("%d/%d", len(res.Valid), episodes),
			f(stats.Min(hops)), f(stats.Mean(hops)))
	}
	run("full DRL", func(c *drl.Config) {})
	run("no DNN (A1)", func(c *drl.Config) { c.UseDNN = false })
	run("no MCTS (A2a)", func(c *drl.Config) { c.UseMCTS = false })
	run("weak illegal penalty (A3)", func(c *drl.Config) { c.IllegalPenalty = -0.1 })

	env := rl.NewEnv(n, cap)
	rl.GreedyComplete(env)
	g := "N/A"
	if env.FullyConnected() {
		g = f(env.AverageHops())
	}
	r.Add("greedy only (A2b)", "1/1", g, g)
	return r
}

// IMRComparison quantifies §6.7's "Comparison with IMR" discussion: the
// GA baseline against REC and DRL on hop count and zero-load latency.
func IMRComparison(o Options) *Report {
	n := 8
	r := &Report{
		ID:     "S6.7-IMR",
		Title:  "IMR genetic-algorithm baseline vs REC vs DRL (8x8)",
		Header: []string{"design", "avg hops", "zero-load latency", "loops"},
		Notes: []string{
			"paper (via Alazemi et al.): REC beats IMR by 1.25x zero-load latency and 1.61x throughput",
		},
	}
	recT := RECDesign(n)
	drlT := DRLDesign(n, rec.MaxOverlap(n), o)
	imrT := IMRDesign(n, o)
	for _, row := range []struct {
		name string
		t    *topo.Topology
	}{{"IMR", imrT}, {"REC", recT}, {"DRL", drlT}} {
		if row.t == nil {
			r.Add(row.name, "N/A", "N/A", "N/A")
			continue
		}
		hops, un := row.t.AverageHops()
		hopCell := f(hops)
		latCell := "N/A"
		if un == 0 {
			res := RingRun(row.t, traffic.UniformRandom, 0.005, o)
			latCell = fmt.Sprintf("%.1f", res.AvgLatency)
		} else {
			// The GA failed to reach full connectivity in budget — the
			// §3.1 critique of random-mutation search, reproduced.
			hopCell += fmt.Sprintf(" (%d pairs unconnected)", un)
		}
		r.Add(row.name, hopCell, latCell, fmt.Sprintf("%d", row.t.NumLoops()))
	}
	return r
}

// Section68Broad exercises the §6.8 broad-applicability instantiations:
// the generic framework exploring 3-D NoC link insertion and chiplet
// interposer placement, reporting hop improvements over each baseline.
func Section68Broad(o Options) *Report {
	r := &Report{
		ID:     "S6.8",
		Title:  "Broad applicability: generic framework on 3-D NoC and chiplet problems",
		Header: []string{"problem", "baseline hops", "explored hops", "improvement"},
		Notes: []string{
			"the paper discusses these as future applications (§6.8); implemented via internal/search",
		},
	}
	episodes := 8
	if !o.Quick {
		episodes = 40
	}

	cfg := search.DefaultConfig()
	cfg.Episodes = episodes
	cfg.Epsilon = 0.3
	cfg.MaxSteps = 64
	cfg.Seed = o.Seed
	cons := noc3d.DefaultConstraints(4, 2)
	best3d, base3d, _ := noc3d.Explore(4, 2, cons, cfg)
	if best3d == nil {
		r.Add("3-D NoC 4x4x2", f(base3d), "N/A", "N/A")
	} else {
		h := best3d.AvgHops()
		r.Add("3-D NoC 4x4x2", f(base3d), f(h), fmt.Sprintf("%.1f%%", 100*(base3d-h)/base3d))
	}

	ccfg := search.DefaultConfig()
	ccfg.Episodes = episodes
	ccfg.Epsilon = 0.4
	ccfg.MaxSteps = 48
	ccfg.Seed = o.Seed
	sys := chiplet.DefaultSystem()
	bestC, _ := chiplet.Explore(sys, ccfg)
	// Baseline: chiplets joined by a single greedy link set from one
	// episode of pure greedy (epsilon 1).
	gcfg := ccfg
	gcfg.Episodes = 1
	gcfg.Epsilon = 1
	greedyC, _ := chiplet.Explore(sys, gcfg)
	if bestC == nil || greedyC == nil {
		r.Add("chiplet 2x2 of 3x3", "N/A", "N/A", "N/A")
		return r
	}
	gb := greedyC.AvgInterChipletHops(1000)
	eb := bestC.AvgInterChipletHops(1000)
	r.Add("chiplet 2x2 of 3x3", f(gb), f(eb), fmt.Sprintf("%.1f%%", 100*(gb-eb)/gb))
	return r
}

// All runs every experiment in publication order.
func All(o Options) []*Report {
	return []*Report{
		Table1Epsilon(o),
		Table2LargerNoCs(o),
		Table3Overlap8x8(o),
		Table4Overlap10x10(o),
		Table5ParsecExecTime(o),
		Figure9Topology(o),
		Figure10SyntheticLatency(o),
		Figure11ParsecLatency(o),
		Figure12ParsecHops(o),
		Figure13PowerPerf(o),
		Figure14ParsecPower(o),
		Figure15Area(o),
		Figure16Scaling(o),
		Section61Threads(o),
		Section67Reliability(o),
		Section68Broad(o),
		AblationNoDNN(o),
		IMRComparison(o),
	}
}

// ByID resolves one experiment by its report ID.
func ByID(id string, o Options) (*Report, error) {
	fns := map[string]func(Options) *Report{
		"T1": Table1Epsilon, "T2": Table2LargerNoCs, "T3": Table3Overlap8x8,
		"T4": Table4Overlap10x10, "T5": Table5ParsecExecTime,
		"F9": Figure9Topology, "F10": Figure10SyntheticLatency,
		"F11": Figure11ParsecLatency, "F12": Figure12ParsecHops,
		"F13": Figure13PowerPerf, "F14": Figure14ParsecPower,
		"F15": Figure15Area, "F16": Figure16Scaling,
		"S6.1": Section61Threads, "S6.7": Section67Reliability,
		"S6.8": Section68Broad,
		"A":    AblationNoDNN, "IMR": IMRComparison,
	}
	fn, ok := fns[id]
	if !ok {
		return nil, fmt.Errorf("exp: unknown experiment %q", id)
	}
	return fn(o), nil
}

package mcts

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"routerless/internal/rl"
	"routerless/internal/topo"
)

func TestNewTreeStripesRounding(t *testing.T) {
	cases := []struct{ in, want int }{
		{-1, DefaultStripes},
		{0, DefaultStripes},
		{1, 1},
		{2, 2},
		{3, 4},
		{60, 64},
		{64, 64},
		{65, 128},
	}
	for _, tc := range cases {
		if got := NewTreeStripes(1.5, tc.in).Stripes(); got != tc.want {
			t.Fatalf("NewTreeStripes(%d): stripes = %d, want %d", tc.in, got, tc.want)
		}
	}
	if got := NewTree(1.5).Stripes(); got != DefaultStripes {
		t.Fatalf("NewTree stripes = %d, want %d", got, DefaultStripes)
	}
}

// stripeFingerprints returns count fingerprints that all land on the same
// stripe as base (colliding) and count that each land elsewhere
// (non-colliding), by brute-forcing synthetic fingerprint strings.
func stripeFingerprints(t *testing.T, tr *Tree, base string, count int) (colliding, others []string) {
	t.Helper()
	home := tr.stripeFor(base)
	for i := 0; len(colliding) < count || len(others) < count; i++ {
		fp := fmt.Sprintf("fp-%d", i)
		if tr.stripeFor(fp) == home {
			if len(colliding) < count {
				colliding = append(colliding, fp)
			}
		} else if len(others) < count {
			others = append(others, fp)
		}
		if i > 1<<20 {
			t.Fatal("could not find colliding/non-colliding fingerprints")
		}
	}
	return colliding, others
}

// TestTreeConcurrentStripes hammers Select/Expand/Backup/Prune from many
// goroutines over fingerprints that deliberately collide on one stripe and
// fingerprints spread across the others (run under -race in make ci). Every
// worker replays the same op mix, so the final visit counts are exact.
func TestTreeConcurrentStripes(t *testing.T) {
	tr := NewTreeStripes(1.5, 8)
	colliding, others := stripeFingerprints(t, tr, "base", 4)
	fps := append(append([]string{}, colliding...), others...)

	a := act(0, 0, 1, 1, topo.Clockwise)
	b := act(0, 0, 2, 2, topo.Clockwise)
	doomed := act(1, 1, 3, 3, topo.Counterclockwise)

	const workers, iters = 8, 100
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			path := make([]PathStep, 1)
			ret := []float64{1}
			for i := 0; i < iters; i++ {
				for _, fp := range fps {
					tr.Expand(fp, []rl.Action{a, b}, []float64{3, 1})
					path[0] = PathStep{Fingerprint: fp, Action: a}
					tr.Backup(path, ret)
					tr.Select(fp)
					tr.Known(fp)
					// Churn an extra edge in and out to exercise
					// Prune against concurrent Backups of edge a.
					tr.Expand(fp, []rl.Action{doomed}, []float64{1})
					tr.Prune(fp, doomed)
				}
			}
		}(w)
	}
	wg.Wait()

	st := tr.Stats()
	if st.Nodes != len(fps) {
		t.Fatalf("nodes = %d, want %d", st.Nodes, len(fps))
	}
	wantVisits := workers * iters * len(fps)
	if st.Visits != wantVisits {
		t.Fatalf("visits = %d, want %d", st.Visits, wantVisits)
	}
	for _, fp := range fps {
		es := tr.EdgeStats(fp)
		if es[a].N != workers*iters {
			t.Fatalf("%s: N(a) = %d, want %d", fp, es[a].N, workers*iters)
		}
		if _, ok := es[doomed]; ok {
			t.Fatalf("%s: doomed edge survived", fp)
		}
	}
	ls := tr.LockStats()
	if ls.Stripes != 8 {
		t.Fatalf("LockStats.Stripes = %d, want 8", ls.Stripes)
	}
	// Every Expand/Backup/Select/Known/Prune acquisition is counted; exact
	// totals depend on scheduling only through contention, which acquires
	// excludes.
	minAcquires := int64(workers * iters * len(fps) * 6)
	if ls.Acquires < minAcquires {
		t.Fatalf("LockStats.Acquires = %d, want >= %d", ls.Acquires, minAcquires)
	}
}

// randomAction draws from a small deterministic pool so trees collide on
// both states and actions.
func randomAction(rng *rand.Rand) rl.Action {
	d := topo.Clockwise
	if rng.Intn(2) == 1 {
		d = topo.Counterclockwise
	}
	return rl.Action{
		X1: rng.Intn(3), Y1: rng.Intn(3),
		X2: 3 + rng.Intn(3), Y2: 3 + rng.Intn(3),
		Dir: d,
	}
}

// TestStripedMatchesWholeLockTrace is the single-thread byte-identity
// oracle for striping: an arbitrary operation sequence applied to a
// 64-stripe tree and to the whole-lock (1-stripe) tree must produce
// identical observable traces — every Select result, every Prune result,
// every Known answer, and at the end identical per-state edge statistics
// and aggregate counters. Striping only changes which mutex guards a
// state, never what happens under it.
func TestStripedMatchesWholeLockTrace(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		striped := NewTreeStripes(1.5, 64)
		whole := NewTreeStripes(1.5, 1)
		rng := rand.New(rand.NewSource(seed))
		fps := make([]string, 24)
		for i := range fps {
			fps[i] = fmt.Sprintf("state-%d-%d", seed, i)
		}
		actions := make([]rl.Action, 8)
		arng := rand.New(rand.NewSource(seed * 977))
		for i := range actions {
			actions[i] = randomAction(arng)
		}
		for op := 0; op < 2000; op++ {
			fp := fps[rng.Intn(len(fps))]
			switch rng.Intn(5) {
			case 0:
				k := 1 + rng.Intn(len(actions))
				acts := actions[:k]
				priors := make([]float64, k)
				for i := range priors {
					priors[i] = rng.Float64()
				}
				striped.Expand(fp, acts, priors)
				whole.Expand(fp, acts, priors)
			case 1:
				steps := 1 + rng.Intn(3)
				path := make([]PathStep, steps)
				rets := make([]float64, steps)
				for i := range path {
					path[i] = PathStep{Fingerprint: fps[rng.Intn(len(fps))], Action: actions[rng.Intn(len(actions))]}
					rets[i] = rng.NormFloat64()
				}
				striped.Backup(path, rets)
				whole.Backup(path, rets)
			case 2:
				a1, ok1 := striped.Select(fp)
				a2, ok2 := whole.Select(fp)
				if a1 != a2 || ok1 != ok2 {
					t.Fatalf("seed %d op %d: Select(%q) diverged: (%v,%v) vs (%v,%v)",
						seed, op, fp, a1, ok1, a2, ok2)
				}
			case 3:
				a := actions[rng.Intn(len(actions))]
				if p1, p2 := striped.Prune(fp, a), whole.Prune(fp, a); p1 != p2 {
					t.Fatalf("seed %d op %d: Prune(%q,%v) diverged: %v vs %v", seed, op, fp, a, p1, p2)
				}
			case 4:
				if k1, k2 := striped.Known(fp), whole.Known(fp); k1 != k2 {
					t.Fatalf("seed %d op %d: Known(%q) diverged: %v vs %v", seed, op, fp, k1, k2)
				}
			}
		}
		if s1, s2 := striped.Stats(), whole.Stats(); s1 != s2 {
			t.Fatalf("seed %d: stats diverged: %+v vs %+v", seed, s1, s2)
		}
		for _, fp := range fps {
			e1, e2 := striped.EdgeStats(fp), whole.EdgeStats(fp)
			if len(e1) != len(e2) {
				t.Fatalf("seed %d: %q edge counts diverged: %d vs %d", seed, fp, len(e1), len(e2))
			}
			for a, st1 := range e1 {
				if st2 := e2[a]; st1 != st2 {
					t.Fatalf("seed %d: %q/%v edge stats diverged: %+v vs %+v", seed, fp, a, st1, st2)
				}
			}
		}
	}
}

// TestLockStatsSingleThread pins the telemetry semantics: a single
// goroutine never contends, and acquisitions are counted per operation
// (Backup once per path step).
func TestLockStatsSingleThread(t *testing.T) {
	tr := NewTree(1.5)
	a := act(0, 0, 1, 1, topo.Clockwise)
	tr.Expand("s1", []rl.Action{a}, []float64{1}) // 1 acquisition
	tr.Expand("s2", []rl.Action{a}, []float64{1}) // 1
	tr.Backup([]PathStep{{"s1", a}, {"s2", a}, {"s1", a}}, []float64{1, 2, 3}) // 3
	tr.Select("s1") // 1
	tr.Known("s2")  // 1
	ls := tr.LockStats()
	if ls.Acquires != 7 {
		t.Fatalf("Acquires = %d, want 7", ls.Acquires)
	}
	if ls.Contended != 0 {
		t.Fatalf("Contended = %d on a single goroutine", ls.Contended)
	}
	if ls.MaxStripeNodes < 1 {
		t.Fatalf("MaxStripeNodes = %d, want >= 1", ls.MaxStripeNodes)
	}
}

// Package mcts implements the Monte Carlo tree search of §4.5: nodes are
// previously seen routerless NoC designs (keyed by canonical loop-set
// fingerprints), edges are loop additions, and each edge tracks the prior
// P(a;s) supplied by the DNN policy, the visit count N(a;s), and the mean
// cumulative return V of the subtree it leads to. Selection follows the
// upper-confidence rule of Eqs. 21–22; an ε-greedy override defers to the
// greedy search of Algorithm 1 (implemented in package rl).
//
// The tree is shared by the multi-threaded learners of §4.6, so its node
// map is split into hash-striped shards (FNV-1a over the fingerprint), each
// with its own mutex: operations on different states proceed concurrently,
// and only learners touching the same stripe serialize. Striping is purely
// a locking decomposition — per-node edge logic is identical at every
// stripe count, so single-threaded runs are byte-identical whether the
// tree has 1 stripe (the pre-striping whole-lock oracle) or 64.
package mcts

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"routerless/internal/rl"
)

// Edge is the statistics triple for one action out of one state.
type Edge struct {
	P float64 // prior probability from the policy network
	N int     // visit count
	W float64 // cumulative backed-up return
}

// V returns the mean return of the edge (0 before any visit).
func (e *Edge) V() float64 {
	if e.N == 0 {
		return 0
	}
	return e.W / float64(e.N)
}

// EdgeEntry pairs an action with its edge statistics in a node's flat edge
// list.
type EdgeEntry struct {
	Action rl.Action
	Edge
}

// Node is a previously explored design. Its edges live in one slice sorted
// by rl.ActionLess rather than a map: Select's argmax is a linear scan whose
// lexicographic tie-break falls out of the order (no per-candidate ActionLess
// calls, no map iteration-order hazard), lookups are binary searches over
// contiguous memory, and a node costs one allocation instead of one per edge.
type Node struct {
	Edges []EdgeEntry
	// SumN caches Σ_j N(a_j; s) for the U term.
	SumN int
}

// find returns the index of action a in the sorted edge slice, or
// (insertion point, false) when absent.
func (n *Node) find(a rl.Action) (int, bool) {
	i := sort.Search(len(n.Edges), func(i int) bool {
		return !rl.ActionLess(n.Edges[i].Action, a)
	})
	return i, i < len(n.Edges) && n.Edges[i].Action == a
}

// insert places a new edge for action a at sorted position i (as returned by
// find) and returns a pointer to it, valid until the next insert.
func (n *Node) insert(i int, a rl.Action, e Edge) *Edge {
	n.Edges = append(n.Edges, EdgeEntry{})
	copy(n.Edges[i+1:], n.Edges[i:])
	n.Edges[i] = EdgeEntry{Action: a, Edge: e}
	return &n.Edges[i].Edge
}

// DefaultStripes is the stripe count NewTree selects: enough that eight
// learners rendezvousing on the same stripe is rare, small enough that the
// per-stripe maps stay warm.
const DefaultStripes = 64

// stripe is one shard of the node map with its own lock. A fingerprint's
// owning stripe is fixed by its FNV-1a hash, so every operation on a state
// contends only with operations on states sharing its stripe.
type stripe struct {
	mu    sync.Mutex
	nodes map[string]*Node

	// Lock telemetry, maintained with the TryLock-first pattern: acquires
	// counts every acquisition, contended the subset that found the stripe
	// already held and had to queue. Atomic so LockStats never takes locks.
	acquires  atomic.Int64
	contended atomic.Int64
}

// lock acquires the stripe mutex, counting the acquisition and whether it
// contended. The uncontended path is one CAS (TryLock) plus one atomic add.
func (s *stripe) lock() {
	if !s.mu.TryLock() {
		s.contended.Add(1)
		s.mu.Lock()
	}
	s.acquires.Add(1)
}

// Tree is the shared search tree. All methods are safe for concurrent use
// by the multi-threaded learners of §4.6.
type Tree struct {
	// C is the exploration constant c of Eq. 22.
	C float64

	stripes []stripe
	mask    uint64

	// Aggregate counters maintained alongside the maps so telemetry reads
	// (Size, Stats) never take a stripe lock or walk the node maps —
	// learners polling them per episode cannot serialize against each
	// other's expansions and backups.
	nodeCount  atomic.Int64
	edgeCount  atomic.Int64
	visitCount atomic.Int64
}

// NewTree builds an empty tree with exploration constant c and the default
// stripe count.
func NewTree(c float64) *Tree { return NewTreeStripes(c, 0) }

// NewTreeStripes builds an empty tree with n lock stripes (rounded up to a
// power of two so stripe selection is a mask; n <= 0 selects
// DefaultStripes). n == 1 degenerates to a single global mutex — the
// whole-lock locking regime the striped tree is tested against. The stripe
// count never changes results, only which operations can overlap in time:
// per-node logic is identical, and within one goroutine operations happen
// in program order regardless of how the map is sharded.
func NewTreeStripes(c float64, n int) *Tree {
	if n <= 0 {
		n = DefaultStripes
	}
	pow := 1
	for pow < n {
		pow <<= 1
	}
	t := &Tree{C: c, stripes: make([]stripe, pow), mask: uint64(pow - 1)}
	for i := range t.stripes {
		t.stripes[i].nodes = make(map[string]*Node)
	}
	return t
}

// Stripes returns the tree's lock-stripe count.
func (t *Tree) Stripes() int { return len(t.stripes) }

// stripeFor returns the stripe owning fingerprint fp: FNV-1a over the
// canonical fingerprint bytes, masked to the stripe count. The fingerprint
// is canonical per design (package topo), so every learner resolves a
// state to the same stripe.
func (t *Tree) stripeFor(fp string) *stripe {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(fp); i++ {
		h ^= uint64(fp[i])
		h *= prime64
	}
	return &t.stripes[h&t.mask]
}

// Size returns the number of stored states. Lock-free.
func (t *Tree) Size() int {
	return int(t.nodeCount.Load())
}

// TreeStats summarizes the tree for telemetry: stored states, total edges,
// and the total visit count across all edges.
type TreeStats struct {
	Nodes  int
	Edges  int
	Visits int
}

// Stats returns the current tree statistics. The totals are maintained
// incrementally by Expand and Backup, so this is a lock-free read rather
// than a walk of the node maps; concurrent mutation may make the three
// counters reflect slightly different instants.
func (t *Tree) Stats() TreeStats {
	return TreeStats{
		Nodes:  int(t.nodeCount.Load()),
		Edges:  int(t.edgeCount.Load()),
		Visits: int(t.visitCount.Load()),
	}
}

// LockStats aggregates the per-stripe lock telemetry: total acquisitions,
// how many of them contended (found the stripe held), and the node count of
// the fullest stripe (a quick skew check on the FNV-1a distribution —
// with a healthy hash MaxStripeNodes ≈ Nodes/Stripes once the tree has
// grown past the stripe count). Acquires/Contended are lock-free reads;
// MaxStripeNodes briefly takes each stripe lock.
type LockStats struct {
	Stripes        int
	Acquires       int64
	Contended      int64
	MaxStripeNodes int
}

// LockStats returns the tree's lock-contention telemetry.
func (t *Tree) LockStats() LockStats {
	ls := LockStats{Stripes: len(t.stripes)}
	for i := range t.stripes {
		s := &t.stripes[i]
		ls.Acquires += s.acquires.Load()
		ls.Contended += s.contended.Load()
		// Raw mutex, not s.lock(): the telemetry walk must not count its
		// own acquisitions as tree traffic.
		s.mu.Lock()
		if n := len(s.nodes); n > ls.MaxStripeNodes {
			ls.MaxStripeNodes = n
		}
		s.mu.Unlock()
	}
	return ls
}

// Known reports whether the state has been expanded.
func (t *Tree) Known(fp string) bool {
	s := t.stripeFor(fp)
	s.lock()
	defer s.mu.Unlock()
	_, ok := s.nodes[fp]
	return ok
}

// Expand registers a leaf state with its actions and matching (unnormalized)
// prior weights; priors[i] belongs to actions[i] and normalization happens
// here. Expanding an existing node refreshes priors for new actions only,
// so concurrent learners cannot erase each other's statistics.
func (t *Tree) Expand(fp string, actions []rl.Action, priors []float64) {
	if len(actions) != len(priors) {
		panic("mcts: actions/priors length mismatch")
	}
	sum := 0.0
	for _, p := range priors {
		sum += p
	}
	s := t.stripeFor(fp)
	s.lock()
	defer s.mu.Unlock()
	node, ok := s.nodes[fp]
	if !ok {
		node = &Node{Edges: make([]EdgeEntry, 0, len(actions))}
		s.nodes[fp] = node
		t.nodeCount.Add(1)
	}
	// LegalActions enumerates in canonical order, so on a fresh node every
	// insertion point is the tail and this loop is one append per action;
	// re-expansions binary-search the existing edges.
	for i, a := range actions {
		if at, exists := node.find(a); !exists {
			np := priors[i]
			if sum > 0 {
				np = np / sum
			} else {
				np = 1 / float64(len(actions))
			}
			node.insert(at, a, Edge{P: np})
			t.edgeCount.Add(1)
		}
	}
}

// Select applies Eq. 21 at the state: argmax over edges of
// U(s,a) + V(s_next) with U = C·P(a;s)·√(Σ_j N_j)/(1+N(a;s)).
// The edge slice is sorted by rl.ActionLess and the strict > keeps the first
// maximum, so exact score ties break toward the lexicographically smallest
// action by construction. The boolean is false when the state is unknown or
// has no edges.
func (t *Tree) Select(fp string) (rl.Action, bool) {
	s := t.stripeFor(fp)
	s.lock()
	defer s.mu.Unlock()
	node, ok := s.nodes[fp]
	if !ok || len(node.Edges) == 0 {
		return rl.Action{}, false
	}
	sqrtSum := math.Sqrt(float64(node.SumN) + 1)
	best := 0
	bestScore := math.Inf(-1)
	for i := range node.Edges {
		e := &node.Edges[i].Edge
		score := t.C*e.P*sqrtSum/(1+float64(e.N)) + e.V()
		if score > bestScore {
			bestScore = score
			best = i
		}
	}
	return node.Edges[best].Action, true
}

// Prune removes the edge for action a from the state, unwinding its
// contribution to the node's visit sum and the telemetry counters, and
// reports whether an edge was removed. Learners call it when a selected edge
// turns out to be unplayable under the current constraints (the overlap cap
// evolves with the design, so edges recorded on one episode's path can be
// forbidden on another's), then re-Select among the survivors.
func (t *Tree) Prune(fp string, a rl.Action) bool {
	s := t.stripeFor(fp)
	s.lock()
	defer s.mu.Unlock()
	node, ok := s.nodes[fp]
	if !ok {
		return false
	}
	i, ok := node.find(a)
	if !ok {
		return false
	}
	visits := node.Edges[i].N
	node.Edges = append(node.Edges[:i], node.Edges[i+1:]...)
	node.SumN -= visits
	t.edgeCount.Add(-1)
	t.visitCount.Add(-int64(visits))
	return true
}

// PathStep identifies one traversed (state, action) pair for Backup.
type PathStep struct {
	Fingerprint string
	Action      rl.Action
}

// Backup propagates the episode's returns through the traversed edges
// (§4.5 phase 3): each edge's visit count increments and its cumulative
// return accumulates the discounted return-to-go from that step.
// returns[i] must be the return-to-go at path[i]. The lock is taken per
// path step (each step's state owns its own stripe), so a long backup does
// not stall selections and expansions on unrelated states; concurrent
// backups interleave at step granularity, which is safe because each step's
// update is self-contained.
func (t *Tree) Backup(path []PathStep, returns []float64) {
	if len(path) != len(returns) {
		panic("mcts: path/returns length mismatch")
	}
	for i, ps := range path {
		s := t.stripeFor(ps.Fingerprint)
		s.lock()
		node, ok := s.nodes[ps.Fingerprint]
		if !ok {
			s.mu.Unlock()
			continue
		}
		at, found := node.find(ps.Action)
		var e *Edge
		if found {
			e = &node.Edges[at].Edge
		} else {
			e = node.insert(at, ps.Action, Edge{P: 0})
			t.edgeCount.Add(1)
		}
		e.N++
		node.SumN++
		t.visitCount.Add(1)
		e.W += returns[i]
		s.mu.Unlock()
	}
}

// EdgeStats returns a copy of the edge statistics for a state, for tests
// and diagnostics.
func (t *Tree) EdgeStats(fp string) map[rl.Action]Edge {
	s := t.stripeFor(fp)
	s.lock()
	defer s.mu.Unlock()
	node, ok := s.nodes[fp]
	if !ok {
		return nil
	}
	out := make(map[rl.Action]Edge, len(node.Edges))
	for i := range node.Edges {
		out[node.Edges[i].Action] = node.Edges[i].Edge
	}
	return out
}

// Package mcts implements the Monte Carlo tree search of §4.5: nodes are
// previously seen routerless NoC designs (keyed by canonical loop-set
// fingerprints), edges are loop additions, and each edge tracks the prior
// P(a;s) supplied by the DNN policy, the visit count N(a;s), and the mean
// cumulative return V of the subtree it leads to. Selection follows the
// upper-confidence rule of Eqs. 21–22; an ε-greedy override defers to the
// greedy search of Algorithm 1 (implemented in package rl).
package mcts

import (
	"math"
	"sync"

	"routerless/internal/rl"
)

// Edge is the statistics triple for one action out of one state.
type Edge struct {
	P float64 // prior probability from the policy network
	N int     // visit count
	W float64 // cumulative backed-up return
}

// V returns the mean return of the edge (0 before any visit).
func (e *Edge) V() float64 {
	if e.N == 0 {
		return 0
	}
	return e.W / float64(e.N)
}

// Node is a previously explored design.
type Node struct {
	Edges map[rl.Action]*Edge
	// SumN caches Σ_j N(a_j; s) for the U term.
	SumN int
}

// Tree is the shared search tree. All methods are safe for concurrent use
// by the multi-threaded learners of §4.6.
type Tree struct {
	// C is the exploration constant c of Eq. 22.
	C float64

	mu    sync.Mutex
	nodes map[string]*Node
}

// NewTree builds an empty tree with exploration constant c.
func NewTree(c float64) *Tree {
	return &Tree{C: c, nodes: make(map[string]*Node)}
}

// Size returns the number of stored states.
func (t *Tree) Size() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.nodes)
}

// TreeStats summarizes the tree for telemetry: stored states, total edges,
// and the total visit count across all edges.
type TreeStats struct {
	Nodes  int
	Edges  int
	Visits int
}

// Stats returns the current tree statistics in one lock acquisition.
func (t *Tree) Stats() TreeStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := TreeStats{Nodes: len(t.nodes)}
	for _, n := range t.nodes {
		s.Edges += len(n.Edges)
		s.Visits += n.SumN
	}
	return s
}

// Known reports whether the state has been expanded.
func (t *Tree) Known(fp string) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	_, ok := t.nodes[fp]
	return ok
}

// Expand registers a leaf state with its action priors (normalized here).
// Expanding an existing node refreshes priors for new actions only, so
// concurrent learners cannot erase each other's statistics.
func (t *Tree) Expand(fp string, priors map[rl.Action]float64) {
	sum := 0.0
	for _, p := range priors {
		sum += p
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	node, ok := t.nodes[fp]
	if !ok {
		node = &Node{Edges: make(map[rl.Action]*Edge, len(priors))}
		t.nodes[fp] = node
	}
	for a, p := range priors {
		if _, exists := node.Edges[a]; !exists {
			np := p
			if sum > 0 {
				np = p / sum
			} else {
				np = 1 / float64(len(priors))
			}
			node.Edges[a] = &Edge{P: np}
		}
	}
}

// Select applies Eq. 21 at the state: argmax over edges of
// U(s,a) + V(s_next) with U = C·P(a;s)·√(Σ_j N_j)/(1+N(a;s)).
// The boolean is false when the state is unknown or has no edges.
func (t *Tree) Select(fp string) (rl.Action, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	node, ok := t.nodes[fp]
	if !ok || len(node.Edges) == 0 {
		return rl.Action{}, false
	}
	sqrtSum := math.Sqrt(float64(node.SumN) + 1)
	best := rl.Action{}
	bestScore := math.Inf(-1)
	found := false
	for a, e := range node.Edges {
		u := t.C * e.P * sqrtSum / (1 + float64(e.N))
		score := u + e.V()
		if score > bestScore {
			bestScore = score
			best = a
			found = true
		}
	}
	return best, found
}

// PathStep identifies one traversed (state, action) pair for Backup.
type PathStep struct {
	Fingerprint string
	Action      rl.Action
}

// Backup propagates the episode's returns through the traversed edges
// (§4.5 phase 3): each edge's visit count increments and its cumulative
// return accumulates the discounted return-to-go from that step.
// returns[i] must be the return-to-go at path[i].
func (t *Tree) Backup(path []PathStep, returns []float64) {
	if len(path) != len(returns) {
		panic("mcts: path/returns length mismatch")
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for i, s := range path {
		node, ok := t.nodes[s.Fingerprint]
		if !ok {
			continue
		}
		e, ok := node.Edges[s.Action]
		if !ok {
			e = &Edge{P: 0}
			node.Edges[s.Action] = e
		}
		e.N++
		node.SumN++
		e.W += returns[i]
	}
}

// EdgeStats returns a copy of the edge statistics for a state, for tests
// and diagnostics.
func (t *Tree) EdgeStats(fp string) map[rl.Action]Edge {
	t.mu.Lock()
	defer t.mu.Unlock()
	node, ok := t.nodes[fp]
	if !ok {
		return nil
	}
	out := make(map[rl.Action]Edge, len(node.Edges))
	for a, e := range node.Edges {
		out[a] = *e
	}
	return out
}

// Package mcts implements the Monte Carlo tree search of §4.5: nodes are
// previously seen routerless NoC designs (keyed by canonical loop-set
// fingerprints), edges are loop additions, and each edge tracks the prior
// P(a;s) supplied by the DNN policy, the visit count N(a;s), and the mean
// cumulative return V of the subtree it leads to. Selection follows the
// upper-confidence rule of Eqs. 21–22; an ε-greedy override defers to the
// greedy search of Algorithm 1 (implemented in package rl).
package mcts

import (
	"math"
	"sync"
	"sync/atomic"

	"routerless/internal/rl"
)

// Edge is the statistics triple for one action out of one state.
type Edge struct {
	P float64 // prior probability from the policy network
	N int     // visit count
	W float64 // cumulative backed-up return
}

// V returns the mean return of the edge (0 before any visit).
func (e *Edge) V() float64 {
	if e.N == 0 {
		return 0
	}
	return e.W / float64(e.N)
}

// Node is a previously explored design.
type Node struct {
	Edges map[rl.Action]*Edge
	// SumN caches Σ_j N(a_j; s) for the U term.
	SumN int
}

// Tree is the shared search tree. All methods are safe for concurrent use
// by the multi-threaded learners of §4.6.
type Tree struct {
	// C is the exploration constant c of Eq. 22.
	C float64

	mu    sync.Mutex
	nodes map[string]*Node

	// Aggregate counters maintained alongside the map so telemetry reads
	// (Size, Stats) never take the tree lock or walk the node map —
	// learners polling them per episode cannot serialize against each
	// other's expansions and backups.
	nodeCount  atomic.Int64
	edgeCount  atomic.Int64
	visitCount atomic.Int64
}

// NewTree builds an empty tree with exploration constant c.
func NewTree(c float64) *Tree {
	return &Tree{C: c, nodes: make(map[string]*Node)}
}

// Size returns the number of stored states. Lock-free.
func (t *Tree) Size() int {
	return int(t.nodeCount.Load())
}

// TreeStats summarizes the tree for telemetry: stored states, total edges,
// and the total visit count across all edges.
type TreeStats struct {
	Nodes  int
	Edges  int
	Visits int
}

// Stats returns the current tree statistics. The totals are maintained
// incrementally by Expand and Backup, so this is a lock-free read rather
// than a walk of the node map; concurrent mutation may make the three
// counters reflect slightly different instants.
func (t *Tree) Stats() TreeStats {
	return TreeStats{
		Nodes:  int(t.nodeCount.Load()),
		Edges:  int(t.edgeCount.Load()),
		Visits: int(t.visitCount.Load()),
	}
}

// Known reports whether the state has been expanded.
func (t *Tree) Known(fp string) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	_, ok := t.nodes[fp]
	return ok
}

// Expand registers a leaf state with its actions and matching (unnormalized)
// prior weights; priors[i] belongs to actions[i] and normalization happens
// here. Expanding an existing node refreshes priors for new actions only,
// so concurrent learners cannot erase each other's statistics.
func (t *Tree) Expand(fp string, actions []rl.Action, priors []float64) {
	if len(actions) != len(priors) {
		panic("mcts: actions/priors length mismatch")
	}
	sum := 0.0
	for _, p := range priors {
		sum += p
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	node, ok := t.nodes[fp]
	if !ok {
		node = &Node{Edges: make(map[rl.Action]*Edge, len(actions))}
		t.nodes[fp] = node
		t.nodeCount.Add(1)
	}
	for i, a := range actions {
		if _, exists := node.Edges[a]; !exists {
			np := priors[i]
			if sum > 0 {
				np = np / sum
			} else {
				np = 1 / float64(len(actions))
			}
			node.Edges[a] = &Edge{P: np}
			t.edgeCount.Add(1)
		}
	}
}

// Select applies Eq. 21 at the state: argmax over edges of
// U(s,a) + V(s_next) with U = C·P(a;s)·√(Σ_j N_j)/(1+N(a;s)).
// Exact score ties break toward the lexicographically smallest action, so
// selection is a pure function of the edge statistics rather than of map
// iteration order. The boolean is false when the state is unknown or has
// no edges.
func (t *Tree) Select(fp string) (rl.Action, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	node, ok := t.nodes[fp]
	if !ok || len(node.Edges) == 0 {
		return rl.Action{}, false
	}
	sqrtSum := math.Sqrt(float64(node.SumN) + 1)
	best := rl.Action{}
	bestScore := math.Inf(-1)
	found := false
	for a, e := range node.Edges {
		u := t.C * e.P * sqrtSum / (1 + float64(e.N))
		score := u + e.V()
		if score > bestScore || (score == bestScore && rl.ActionLess(a, best)) {
			bestScore = score
			best = a
			found = true
		}
	}
	return best, found
}

// PathStep identifies one traversed (state, action) pair for Backup.
type PathStep struct {
	Fingerprint string
	Action      rl.Action
}

// Backup propagates the episode's returns through the traversed edges
// (§4.5 phase 3): each edge's visit count increments and its cumulative
// return accumulates the discounted return-to-go from that step.
// returns[i] must be the return-to-go at path[i].
func (t *Tree) Backup(path []PathStep, returns []float64) {
	if len(path) != len(returns) {
		panic("mcts: path/returns length mismatch")
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for i, s := range path {
		node, ok := t.nodes[s.Fingerprint]
		if !ok {
			continue
		}
		e, ok := node.Edges[s.Action]
		if !ok {
			e = &Edge{P: 0}
			node.Edges[s.Action] = e
			t.edgeCount.Add(1)
		}
		e.N++
		node.SumN++
		t.visitCount.Add(1)
		e.W += returns[i]
	}
}

// EdgeStats returns a copy of the edge statistics for a state, for tests
// and diagnostics.
func (t *Tree) EdgeStats(fp string) map[rl.Action]Edge {
	t.mu.Lock()
	defer t.mu.Unlock()
	node, ok := t.nodes[fp]
	if !ok {
		return nil
	}
	out := make(map[rl.Action]Edge, len(node.Edges))
	for a, e := range node.Edges {
		out[a] = *e
	}
	return out
}

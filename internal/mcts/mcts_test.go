package mcts

import (
	"sync"
	"testing"

	"routerless/internal/rl"
	"routerless/internal/topo"
)

func act(x1, y1, x2, y2 int, d topo.Direction) rl.Action {
	return rl.Action{X1: x1, Y1: y1, X2: x2, Y2: y2, Dir: d}
}

func TestExpandNormalizesPriors(t *testing.T) {
	tr := NewTree(1.5)
	a, b := act(0, 0, 1, 1, topo.Clockwise), act(0, 0, 2, 2, topo.Clockwise)
	tr.Expand("s", []rl.Action{a, b}, []float64{3, 1})
	st := tr.EdgeStats("s")
	if len(st) != 2 {
		t.Fatalf("edges = %d", len(st))
	}
	if st[a].P != 0.75 || st[b].P != 0.25 {
		t.Fatalf("priors = %v / %v", st[a].P, st[b].P)
	}
}

func TestExpandZeroPriorsUniform(t *testing.T) {
	tr := NewTree(1.5)
	a, b := act(0, 0, 1, 1, topo.Clockwise), act(0, 0, 2, 2, topo.Clockwise)
	tr.Expand("s", []rl.Action{a, b}, []float64{0, 0})
	st := tr.EdgeStats("s")
	if st[a].P != 0.5 || st[b].P != 0.5 {
		t.Fatalf("priors = %v / %v", st[a].P, st[b].P)
	}
}

func TestExpandDoesNotEraseStats(t *testing.T) {
	tr := NewTree(1.5)
	a := act(0, 0, 1, 1, topo.Clockwise)
	tr.Expand("s", []rl.Action{a}, []float64{1})
	tr.Backup([]PathStep{{"s", a}}, []float64{2})
	tr.Expand("s", []rl.Action{a}, []float64{1}) // re-expansion
	if st := tr.EdgeStats("s")[a]; st.N != 1 || st.W != 2 {
		t.Fatalf("stats erased: %+v", st)
	}
}

func TestSelectUnknownState(t *testing.T) {
	tr := NewTree(1.5)
	if _, ok := tr.Select("nope"); ok {
		t.Fatal("selected from unknown state")
	}
}

func TestSelectPrefersPriorWhenUnvisited(t *testing.T) {
	tr := NewTree(1.5)
	hi, lo := act(0, 0, 3, 3, topo.Clockwise), act(0, 0, 1, 1, topo.Clockwise)
	tr.Expand("s", []rl.Action{hi, lo}, []float64{0.9, 0.1})
	a, ok := tr.Select("s")
	if !ok || a != hi {
		t.Fatalf("selected %v, want high-prior action", a)
	}
}

func TestSelectShiftsToHighReturn(t *testing.T) {
	tr := NewTree(0.1) // small exploration constant
	good, bad := act(0, 0, 3, 3, topo.Clockwise), act(0, 0, 1, 1, topo.Clockwise)
	tr.Expand("s", []rl.Action{good, bad}, []float64{0.1, 0.9})
	// Observed returns favour "good" strongly.
	for i := 0; i < 10; i++ {
		tr.Backup([]PathStep{{"s", good}}, []float64{5})
		tr.Backup([]PathStep{{"s", bad}}, []float64{-5})
	}
	a, ok := tr.Select("s")
	if !ok || a != good {
		t.Fatalf("selected %v despite returns favouring good", a)
	}
}

func TestBackupAccumulates(t *testing.T) {
	tr := NewTree(1)
	a := act(0, 0, 1, 1, topo.Clockwise)
	tr.Expand("s", []rl.Action{a}, []float64{1})
	tr.Backup([]PathStep{{"s", a}}, []float64{3})
	tr.Backup([]PathStep{{"s", a}}, []float64{1})
	st := tr.EdgeStats("s")[a]
	if st.N != 2 || st.W != 4 {
		t.Fatalf("stats = %+v", st)
	}
	if v := st.V(); v != 2 {
		t.Fatalf("V = %v", v)
	}
}

func TestBackupUnknownStateIgnored(t *testing.T) {
	tr := NewTree(1)
	tr.Backup([]PathStep{{"missing", act(0, 0, 1, 1, topo.Clockwise)}}, []float64{1})
	if tr.Size() != 0 {
		t.Fatal("backup created a node")
	}
}

func TestBackupLengthMismatchPanics(t *testing.T) {
	tr := NewTree(1)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	tr.Backup([]PathStep{{"s", act(0, 0, 1, 1, topo.Clockwise)}}, nil)
}

func TestTreeConcurrentAccess(t *testing.T) {
	tr := NewTree(1.5)
	a := act(0, 0, 1, 1, topo.Clockwise)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				tr.Expand("shared", []rl.Action{a}, []float64{1})
				tr.Backup([]PathStep{{"shared", a}}, []float64{1})
				tr.Select("shared")
			}
		}(w)
	}
	wg.Wait()
	st := tr.EdgeStats("shared")[a]
	if st.N != 1600 {
		t.Fatalf("N = %d, want 1600", st.N)
	}
}

func TestEdgeVZeroVisits(t *testing.T) {
	e := &Edge{P: 1}
	if e.V() != 0 {
		t.Fatal("unvisited V != 0")
	}
}

// TestSelectTieBreaksLexicographic pins deterministic selection: with
// identical priors and no visits every edge scores the same, and the
// argmax must resolve to the lexicographically smallest action instead of
// whatever the map iteration happens to visit last.
func TestSelectTieBreaksLexicographic(t *testing.T) {
	want := act(0, 0, 1, 1, topo.Clockwise)
	actions := []rl.Action{
		act(2, 2, 3, 3, topo.Clockwise),
		act(0, 1, 2, 2, topo.Counterclockwise),
		act(0, 0, 1, 1, topo.Counterclockwise),
		want,
		act(1, 0, 2, 1, topo.Clockwise),
	}
	priors := []float64{1, 1, 1, 1, 1}
	// Fresh trees get fresh map layouts; repeated trials would flush out a
	// map-order-dependent argmax.
	for trial := 0; trial < 50; trial++ {
		tr := NewTree(1.5)
		tr.Expand("s", actions, priors)
		a, ok := tr.Select("s")
		if !ok || a != want {
			t.Fatalf("trial %d: selected %v, want %v", trial, a, want)
		}
	}
}

// TestEdgesStaySorted pins the flat-node invariant: however edges arrive —
// batch expansion, out-of-order re-expansion, Backup on an unexpanded action
// — the node's edge slice stays sorted by the canonical action order.
func TestEdgesStaySorted(t *testing.T) {
	tr := NewTree(1.5)
	tr.Expand("s", []rl.Action{
		act(1, 1, 2, 2, topo.Clockwise),
		act(3, 3, 4, 4, topo.Clockwise),
	}, []float64{1, 1})
	tr.Expand("s", []rl.Action{act(0, 0, 1, 1, topo.Clockwise)}, []float64{1})
	tr.Backup([]PathStep{{"s", act(2, 2, 3, 3, topo.Counterclockwise)}}, []float64{1})
	st := tr.stripeFor("s")
	st.mu.Lock()
	edges := st.nodes["s"].Edges
	if len(edges) != 4 {
		t.Fatalf("edges = %d, want 4", len(edges))
	}
	for i := 1; i < len(edges); i++ {
		if !rl.ActionLess(edges[i-1].Action, edges[i].Action) {
			t.Fatalf("edges out of order at %d: %v !< %v", i, edges[i-1].Action, edges[i].Action)
		}
	}
	st.mu.Unlock()
}

// TestPruneRemovesEdge verifies Prune drops the edge, unwinds its visits
// from the node sum and the telemetry counters, and that Select then falls
// to the survivors.
func TestPruneRemovesEdge(t *testing.T) {
	tr := NewTree(1.5)
	doomed, keep := act(0, 0, 1, 1, topo.Clockwise), act(0, 0, 2, 2, topo.Clockwise)
	tr.Expand("s", []rl.Action{doomed, keep}, []float64{0.9, 0.1})
	tr.Backup([]PathStep{{"s", doomed}, {"s", keep}}, []float64{5, 1})
	if !tr.Prune("s", doomed) {
		t.Fatal("Prune reported no edge removed")
	}
	if tr.Prune("s", doomed) {
		t.Fatal("second Prune removed a ghost edge")
	}
	if tr.Prune("missing", keep) {
		t.Fatal("Prune on unknown state reported removal")
	}
	st := tr.Stats()
	if st.Edges != 1 || st.Visits != 1 {
		t.Fatalf("stats after prune = %+v, want {Edges:1 Visits:1}", st)
	}
	a, ok := tr.Select("s")
	if !ok || a != keep {
		t.Fatalf("selected %v after prune, want %v", a, keep)
	}
	sp := tr.stripeFor("s")
	sp.mu.Lock()
	if sum := sp.nodes["s"].SumN; sum != 1 {
		t.Fatalf("SumN after prune = %d, want 1", sum)
	}
	sp.mu.Unlock()
}

// TestStatsCounters verifies the incrementally maintained aggregates match
// what a walk of the tree would report, including edges created by Backup
// rather than Expand.
func TestStatsCounters(t *testing.T) {
	tr := NewTree(1)
	a := act(0, 0, 1, 1, topo.Clockwise)
	b := act(0, 0, 2, 2, topo.Clockwise)
	c := act(1, 1, 2, 2, topo.Clockwise)
	tr.Expand("s1", []rl.Action{a, b}, []float64{1, 1})
	tr.Expand("s2", []rl.Action{a}, []float64{1})
	tr.Expand("s1", []rl.Action{a}, []float64{1}) // re-expansion: no new edge
	tr.Backup([]PathStep{{"s1", a}, {"s2", a}}, []float64{1, 2})
	tr.Backup([]PathStep{{"s1", c}}, []float64{3}) // creates an edge
	if got := tr.Size(); got != 2 {
		t.Fatalf("Size = %d, want 2", got)
	}
	st := tr.Stats()
	if st.Nodes != 2 || st.Edges != 4 || st.Visits != 3 {
		t.Fatalf("stats = %+v, want {Nodes:2 Edges:4 Visits:3}", st)
	}
}

package mcts

import (
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"routerless/internal/rl"
	"routerless/internal/topo"
)

// BenchmarkTreeContention measures the shared tree under concurrent
// learner-style traffic (Select + Backup per op, the §4.6 hot mix) at the
// whole-lock stripe count (1 — the pre-PR 10 global mutex, the "before"
// column) and the default 64 stripes. SetParallelism raises the goroutine
// count above GOMAXPROCS so lock handoff happens even on a 1-CPU bench
// host; the contended_frac metric (contended acquisitions / total) is the
// portable contention signal when wall-clock is pinned by one core.
func BenchmarkTreeContention(b *testing.B) {
	for _, stripes := range []int{1, 64} {
		b.Run(fmt.Sprintf("stripes=%d", stripes), func(b *testing.B) {
			tr := NewTreeStripes(1.5, stripes)
			const states = 128
			fps := make([]string, states)
			acts := []rl.Action{
				act(0, 0, 1, 1, topo.Clockwise),
				act(0, 0, 2, 2, topo.Clockwise),
				act(1, 1, 3, 3, topo.Counterclockwise),
			}
			priors := []float64{3, 2, 1}
			for i := range fps {
				fps[i] = fmt.Sprintf("state-%04d", i)
				tr.Expand(fps[i], acts, priors)
			}
			b.SetParallelism(8)
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				path := make([]PathStep, 1)
				ret := []float64{1}
				for pb.Next() {
					fp := fps[i%states]
					a, _ := tr.Select(fp)
					path[0] = PathStep{Fingerprint: fp, Action: a}
					tr.Backup(path, ret)
					i++
				}
			})
			b.StopTimer()
			ls := tr.LockStats()
			if ls.Acquires > 0 {
				b.ReportMetric(float64(ls.Contended)/float64(ls.Acquires), "contended_frac")
			}
		})
	}
}

// BenchmarkTreeContentionPinned measures learner throughput while a peer
// goroutine repeatedly seizes one state's lock and is descheduled holding
// it (50µs held / 50µs free) — the situation striping exists for: on a
// multi-core host a peer is mid-operation on the tree at all times, and on
// any host the OS can deschedule a lock holder. The measured learners work
// states whose stripe homes are disjoint from the pinned state's, as real
// learners mostly are (each episode walks its own trajectory): under the
// whole lock (stripes=1) they all queue behind the pinned peer anyway;
// with 64 stripes they share no lock with it and keep running. Workers
// yield between operations the way production learners do at broker and
// trainer boundaries — without a scheduling point a 1-CPU host cannot
// rotate goroutines at sub-preemption granularity and the pinned peer
// would starve instead of interfering.
func BenchmarkTreeContentionPinned(b *testing.B) {
	const states = 128
	pinnedFp := "state-pinned"
	probe := NewTreeStripes(1.5, 64)
	pinStripe := probe.stripeFor(pinnedFp)
	fps := make([]string, 0, states)
	for i := 0; len(fps) < states; i++ {
		fp := fmt.Sprintf("state-%04d", i)
		if probe.stripeFor(fp) != pinStripe {
			fps = append(fps, fp)
		}
	}
	for _, stripes := range []int{1, 64} {
		b.Run(fmt.Sprintf("stripes=%d", stripes), func(b *testing.B) {
			tr := NewTreeStripes(1.5, stripes)
			acts := []rl.Action{
				act(0, 0, 1, 1, topo.Clockwise),
				act(0, 0, 2, 2, topo.Clockwise),
				act(1, 1, 3, 3, topo.Counterclockwise),
			}
			priors := []float64{3, 2, 1}
			tr.Expand(pinnedFp, acts, priors)
			for _, fp := range fps {
				tr.Expand(fp, acts, priors)
			}
			stop := make(chan struct{})
			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				pinned := tr.stripeFor(pinnedFp)
				for {
					select {
					case <-stop:
						return
					default:
					}
					pinned.mu.Lock()
					time.Sleep(50 * time.Microsecond)
					pinned.mu.Unlock()
					time.Sleep(50 * time.Microsecond)
				}
			}()
			b.SetParallelism(8)
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				path := make([]PathStep, 1)
				ret := []float64{1}
				for pb.Next() {
					fp := fps[i%states]
					a, _ := tr.Select(fp)
					path[0] = PathStep{Fingerprint: fp, Action: a}
					tr.Backup(path, ret)
					i++
					runtime.Gosched()
				}
			})
			b.StopTimer()
			close(stop)
			wg.Wait()
		})
	}
}

package imr

import (
	"testing"
)

func TestRunProducesResult(t *testing.T) {
	cfg := DefaultConfig(4)
	cfg.Population = 12
	cfg.Generations = 10
	res := Run(cfg)
	if res.Best.Topo == nil {
		t.Fatal("no best individual")
	}
	if len(res.History) != 11 {
		t.Fatalf("history length = %d", len(res.History))
	}
}

func TestEvolutionImprovesFitness(t *testing.T) {
	cfg := DefaultConfig(4)
	cfg.Population = 20
	cfg.Generations = 25
	res := Run(cfg)
	first, last := res.History[0], res.History[len(res.History)-1]
	if last > first {
		t.Fatalf("fitness worsened: %v -> %v (elitism broken)", first, last)
	}
	if last == first {
		t.Logf("warning: no improvement over %d generations", cfg.Generations)
	}
}

func TestElitismMonotone(t *testing.T) {
	cfg := DefaultConfig(4)
	cfg.Population = 10
	cfg.Generations = 15
	res := Run(cfg)
	for i := 1; i < len(res.History); i++ {
		if res.History[i] > res.History[i-1]+1e-9 {
			t.Fatalf("best fitness rose at gen %d: %v -> %v",
				i, res.History[i-1], res.History[i])
		}
	}
}

func TestGAOftenReachesConnectivitySmall(t *testing.T) {
	cfg := DefaultConfig(4)
	cfg.Population = 30
	cfg.Generations = 40
	cfg.Seed = 3
	res := Run(cfg)
	// On 4x4 with n²/2 = 8 rings the GA should connect everything (the
	// fitness strongly punishes unconnected pairs).
	if res.Best.Unconnected != 0 {
		t.Fatalf("best individual leaves %d pairs unconnected", res.Best.Unconnected)
	}
	if res.Best.AvgHops <= 0 {
		t.Fatalf("avg hops = %v", res.Best.AvgHops)
	}
}

func TestDeterministicPerSeed(t *testing.T) {
	cfg := DefaultConfig(4)
	cfg.Population = 10
	cfg.Generations = 8
	a, b := Run(cfg), Run(cfg)
	if a.Best.Fitness != b.Best.Fitness {
		t.Fatal("GA not deterministic for fixed seed")
	}
	cfg.Seed = 99
	c := Run(cfg)
	if c.Best.Fitness == a.Best.Fitness {
		t.Log("different seeds gave identical fitness (possible but unlikely)")
	}
}

func TestCapPenaltyCounted(t *testing.T) {
	cfg := DefaultConfig(4)
	cfg.Population = 10
	cfg.Generations = 5
	cfg.OverlapCap = 1 // absurdly tight: violations inevitable
	res := Run(cfg)
	if res.Best.CapViolations == 0 {
		t.Fatal("cap 1 with 8 rings should violate somewhere — IMR cannot enforce constraints (§3.1)")
	}
}

func TestRandomRingValid(t *testing.T) {
	cfg := DefaultConfig(6)
	cfg.Population = 4
	cfg.Generations = 2
	res := Run(cfg)
	for _, l := range res.Best.Rings {
		if l.R1 >= l.R2 || l.C1 >= l.C2 || l.R2 >= 6 || l.C2 >= 6 {
			t.Fatalf("malformed ring %v", l)
		}
	}
}

// Package imr implements the isolated multi-ring (IMR) evolutionary
// baseline (Liu et al., IEEE TPDS 2016), the genetic-algorithm approach the
// paper contrasts with REC and DRL (§3.1): ring selection is driven by
// random mutation and an objective over inter-core distance and ring
// length, with no memory of past experience.
//
// One deviation from the original is documented in DESIGN.md: rings are
// restricted to rectangles so that IMR, REC and DRL share one action
// space, making hop-count comparisons apples-to-apples. The search
// dynamics (population, crossover, random mutation, fitness-proportional
// survival) follow the evolutionary formulation.
package imr

import (
	"math/rand"
	"sort"

	"routerless/internal/topo"
)

// Config controls the genetic algorithm.
type Config struct {
	N           int // NoC side
	Rings       int // rings per individual (genome length)
	Population  int
	Generations int
	// MutationRate is the per-gene probability of replacing a ring with a
	// random one.
	MutationRate float64
	// RepairSteps bounds the memetic repair pass applied to unconnected
	// offspring: each step replaces a random gene with a ring covering a
	// missing pair and re-evaluates. Without repair, large NoCs rarely
	// converge to the full connectivity IMR requires.
	RepairSteps int
	// CrossoverRate is the probability an offspring mixes two parents
	// (otherwise it clones one).
	CrossoverRate float64
	// Elite individuals copied unchanged each generation.
	Elite int
	// OverlapCap, when > 0, adds a constraint penalty to the fitness.
	// IMR cannot enforce constraints structurally (§3.1) — they can only
	// be "built into the fitness function" and are "likely to be violated".
	OverlapCap int
	Seed       int64
}

// DefaultConfig returns a reasonable GA setup for an n×n NoC.
func DefaultConfig(n int) Config {
	return Config{
		N:             n,
		Rings:         n * n * 3 / 4,
		Population:    40,
		Generations:   60,
		MutationRate:  0.08,
		RepairSteps:   6,
		CrossoverRate: 0.7,
		Elite:         2,
		Seed:          1,
	}
}

// Individual is one genome with its evaluation.
type Individual struct {
	Rings   []topo.Loop
	Fitness float64 // lower is better
	Topo    *topo.Topology
	AvgHops float64
	// Unconnected counts node pairs without a shared ring.
	Unconnected int
	// CapViolations counts nodes above the overlap cap.
	CapViolations int
}

// Result is the GA outcome.
type Result struct {
	Best Individual
	// History records the best fitness per generation (monotone
	// non-increasing thanks to elitism).
	History []float64
}

// randomRing draws a uniform random rectangle with direction.
func randomRing(rng *rand.Rand, n int) topo.Loop {
	for {
		r1, r2 := rng.Intn(n), rng.Intn(n)
		c1, c2 := rng.Intn(n), rng.Intn(n)
		if r1 == r2 || c1 == c2 {
			continue
		}
		return topo.MustLoop(r1, c1, r2, c2, topo.Direction(rng.Intn(2)))
	}
}

// evaluate builds the phenotype topology and scores it. The fitness mixes
// the published IMR objectives — connectivity, inter-core distance, ring
// length — plus the optional soft cap penalty.
func evaluate(cfg Config, genes []topo.Loop) Individual {
	t := topo.NewSquare(cfg.N, 0)
	totalLen := 0
	for _, l := range genes {
		totalLen += l.Len()
		if !t.HasLoop(l) {
			if err := t.AddLoop(l); err != nil {
				// Unconstrained topology: only duplicates are possible
				// errors, and those are filtered above.
				panic(err)
			}
		}
	}
	mean, unconnected := t.AverageHops()
	ind := Individual{
		Rings:       genes,
		Topo:        t,
		AvgHops:     mean,
		Unconnected: unconnected,
	}
	sentinel := topo.UnconnectedHops(cfg.N, cfg.N)
	fitness := mean + sentinel*float64(unconnected)/float64(cfg.N*cfg.N)
	fitness += 0.01 * float64(totalLen) / float64(len(genes))
	if cfg.OverlapCap > 0 {
		for id := 0; id < t.N(); id++ {
			over := t.Overlap(topo.NodeFromID(id, cfg.N)) - cfg.OverlapCap
			if over > 0 {
				ind.CapViolations++
				fitness += 2 * float64(over)
			}
		}
	}
	ind.Fitness = fitness
	return ind
}

// Run executes the genetic algorithm.
func Run(cfg Config) Result {
	rng := rand.New(rand.NewSource(cfg.Seed))
	if cfg.Rings < 1 {
		cfg.Rings = cfg.N * cfg.N / 2
	}
	if cfg.Population < 2 {
		cfg.Population = 2
	}
	if cfg.Elite >= cfg.Population {
		cfg.Elite = cfg.Population - 1
	}

	pop := make([]Individual, cfg.Population)
	for i := range pop {
		genes := make([]topo.Loop, cfg.Rings)
		for g := range genes {
			genes[g] = randomRing(rng, cfg.N)
		}
		pop[i] = evaluate(cfg, genes)
	}

	res := Result{}
	for gen := 0; gen < cfg.Generations; gen++ {
		sort.Slice(pop, func(i, j int) bool { return pop[i].Fitness < pop[j].Fitness })
		res.History = append(res.History, pop[0].Fitness)

		next := make([]Individual, 0, cfg.Population)
		for e := 0; e < cfg.Elite; e++ {
			next = append(next, pop[e])
		}
		for len(next) < cfg.Population {
			a := tournament(rng, pop)
			genes := append([]topo.Loop(nil), a.Rings...)
			if rng.Float64() < cfg.CrossoverRate {
				b := tournament(rng, pop)
				cut := rng.Intn(len(genes))
				copy(genes[cut:], b.Rings[cut:])
			}
			for g := range genes {
				if rng.Float64() < cfg.MutationRate {
					genes[g] = randomRing(rng, cfg.N)
				}
			}
			child := evaluate(cfg, genes)
			for rep := 0; rep < cfg.RepairSteps && child.Unconnected > 0; rep++ {
				ring, ok := repairRing(rng, cfg.N, child.Topo)
				if !ok {
					break
				}
				genes[rng.Intn(len(genes))] = ring
				child = evaluate(cfg, genes)
			}
			next = append(next, child)
		}
		pop = next
	}
	sort.Slice(pop, func(i, j int) bool { return pop[i].Fitness < pop[j].Fitness })
	res.History = append(res.History, pop[0].Fitness)
	res.Best = pop[0]
	return res
}

// repairRing returns a rectangle whose perimeter covers one of the
// parent's unconnected pairs, or false when none can be built (e.g. the
// pair shares a row, where the enclosing rectangle must be widened).
func repairRing(rng *rand.Rand, n int, t *topo.Topology) (topo.Loop, bool) {
	pairs := t.UnconnectedPairs(16)
	if len(pairs) == 0 {
		return topo.Loop{}, false
	}
	p := pairs[rng.Intn(len(pairs))]
	r1, r2 := p[0].Row, p[1].Row
	c1, c2 := p[0].Col, p[1].Col
	if r1 > r2 {
		r1, r2 = r2, r1
	}
	if c1 > c2 {
		c1, c2 = c2, c1
	}
	// Degenerate spans are widened toward a neighbouring row/column.
	if r1 == r2 {
		if r2 < n-1 {
			r2++
		} else {
			r1--
		}
	}
	if c1 == c2 {
		if c2 < n-1 {
			c2++
		} else {
			c1--
		}
	}
	if r1 < 0 || c1 < 0 {
		return topo.Loop{}, false
	}
	return topo.MustLoop(r1, c1, r2, c2, topo.Direction(rng.Intn(2))), true
}

// tournament picks the better of two random individuals.
func tournament(rng *rand.Rand, pop []Individual) Individual {
	a, b := pop[rng.Intn(len(pop))], pop[rng.Intn(len(pop))]
	if a.Fitness <= b.Fitness {
		return a
	}
	return b
}

package routerless_test

import (
	"fmt"

	"routerless"
)

// ExampleGenerateREC builds the deterministic REC baseline and reports its
// published invariants.
func ExampleGenerateREC() {
	t, err := routerless.GenerateREC(4)
	if err != nil {
		panic(err)
	}
	hops, _ := t.AverageHops()
	fmt.Printf("loops=%d maxOverlap=%d connected=%v avgHops=%.3f\n",
		t.NumLoops(), t.MaxOverlap(), t.FullyConnected(), hops)
	// Output:
	// loops=10 maxOverlap=6 connected=true avgHops=3.017
}

// ExampleMeshAverageHops shows the reward reference the DRL environment
// compares designs against.
func ExampleMeshAverageHops() {
	fmt.Printf("%.3f\n", routerless.MeshAverageHops(8))
	// Output:
	// 5.333
}

// ExampleGenerateGreedy runs Algorithm 1 to completion under a wiring cap.
func ExampleGenerateGreedy() {
	t := routerless.GenerateGreedy(4, 6)
	fmt.Printf("connected=%v capRespected=%v\n",
		t.FullyConnected(), t.MaxOverlap() <= 6)
	// Output:
	// connected=true capRespected=true
}

// ExampleSimulate runs one cycle-accurate measurement on the REC baseline.
func ExampleSimulate() {
	t, _ := routerless.GenerateREC(4)
	res := routerless.Simulate(t, routerless.SimulateOptions{
		Pattern: routerless.Transpose, Rate: 0.05,
		WarmupCycles: 200, MeasureCycles: 2000, Seed: 1,
	})
	fmt.Printf("delivered=%v latencyBounded=%v\n",
		res.PacketsDone == res.PacketsSent, res.AvgLatency > 2 && res.AvgLatency < 30)
	// Output:
	// delivered=true latencyBounded=true
}

package routerless_test

import (
	"encoding/json"
	"testing"

	"routerless"
	"routerless/internal/drl"
	"routerless/internal/nn"
	"routerless/internal/rec"
	"routerless/internal/sim"
	"routerless/internal/topo"
	"routerless/internal/traffic"
)

// TestPipelineSearchSimulatePower exercises the full stack exactly the way
// the cmd tools chain it: DRL search -> JSON round trip -> cycle-accurate
// simulation -> power model.
func TestPipelineSearchSimulatePower(t *testing.T) {
	design, err := routerless.Explore(routerless.ExploreOptions{
		N: 4, OverlapCap: 6, Episodes: 6, Seed: 13,
	})
	if err != nil {
		t.Fatal(err)
	}

	// JSON round trip (nocgen -> nocsim contract).
	data, err := json.Marshal(design.Topology)
	if err != nil {
		t.Fatal(err)
	}
	var back topo.Topology
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Fingerprint() != design.Topology.Fingerprint() {
		t.Fatal("topology mutated across the JSON boundary")
	}

	// Simulate the deserialized topology under two patterns.
	for _, p := range []traffic.Pattern{traffic.UniformRandom, traffic.Transpose} {
		res := routerless.Simulate(&back, routerless.SimulateOptions{
			Pattern: p, Rate: 0.05, WarmupCycles: 200, MeasureCycles: 2000, Seed: 2,
		})
		if res.PacketsDone == 0 {
			t.Fatalf("%v: nothing delivered", p)
		}
		if res.AvgHops+0.001 < 1 {
			t.Fatalf("%v: avg hops %v", p, res.AvgHops)
		}
		pow := routerless.DefaultPowerParams().Routerless(6, routerless.ActivityOf(res))
		if pow.Total() <= 0 || pow.Total() > 5 {
			t.Fatalf("%v: implausible power %v mW", p, pow.Total())
		}
	}
}

// TestPipelineModelResume verifies warm-starting a search from a saved
// model (the nocexplore -save-model/-load-model path).
func TestPipelineModelResume(t *testing.T) {
	cfg := drl.DefaultConfig(4, 6)
	cfg.Episodes = 4
	cfg.NN = nn.Config{N: 4, BaseChannels: 2, Pools: 2}
	s := drl.MustNew(cfg)
	s.Run()
	w := s.ModelWeights()
	if w == nil {
		t.Fatal("no model weights after DNN search")
	}

	net := nn.NewPolicyValueNet(cfg.NN, 0)
	net.SetWeights(w)
	blob, err := nn.MarshalModel(net)
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := nn.UnmarshalModel(blob)
	if err != nil {
		t.Fatal(err)
	}

	cfg2 := cfg
	cfg2.Episodes = 3
	cfg2.InitWeights = loaded.GetWeights()
	s2, err := drl.New(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if res := s2.Run(); res.Episodes != 3 {
		t.Fatalf("resumed search ran %d episodes", res.Episodes)
	}

	// Mismatched warm-start weights must be rejected.
	cfg3 := cfg
	cfg3.InitWeights = []float64{1, 2, 3}
	if _, err := drl.New(cfg3); err == nil {
		t.Fatal("accepted wrong-size InitWeights")
	}
}

// TestPipelineFailureRecovery chains search -> failure injection ->
// degraded simulation.
func TestPipelineFailureRecovery(t *testing.T) {
	tp := rec.MustGenerate(4)
	ring := sim.NewRing(tp, sim.DefaultRingConfig())
	ring.FailLoop(0)
	rt := ring.Degraded()
	src := traffic.NewInjector(4, 4, traffic.UniformRandom, 0.05, 128, 7)
	sent := 0
	for i := 0; i < 1500; i++ {
		for _, req := range src.Tick() {
			if !rt.Reachable(topo.NodeFromID(req.Src, 4), topo.NodeFromID(req.Dst, 4)) {
				continue
			}
			ring.Inject(&sim.Packet{Src: req.Src, Dst: req.Dst, NumFlits: req.NumFlits, Done: -1})
			sent++
		}
		ring.Step()
	}
	for i := 0; i < 2000 && ring.InFlight() > 0; i++ {
		ring.Step()
	}
	if sent == 0 || ring.InFlight() != 0 {
		t.Fatalf("degraded pipeline stalled: sent=%d inflight=%d", sent, ring.InFlight())
	}
}

package routerless_test

import (
	"testing"

	"routerless"
)

func TestGenerateREC(t *testing.T) {
	tp, err := routerless.GenerateREC(4)
	if err != nil {
		t.Fatal(err)
	}
	if !tp.FullyConnected() || tp.MaxOverlap() != 6 {
		t.Fatalf("REC 4x4: connected=%v overlap=%d", tp.FullyConnected(), tp.MaxOverlap())
	}
	if _, err := routerless.GenerateREC(1); err == nil {
		t.Fatal("GenerateREC(1) should fail")
	}
}

func TestGenerateGreedy(t *testing.T) {
	tp := routerless.GenerateGreedy(4, 6)
	if !tp.FullyConnected() {
		t.Fatal("greedy 4x4 not connected")
	}
	if tp.MaxOverlap() > 6 {
		t.Fatalf("overlap %d exceeds cap", tp.MaxOverlap())
	}
}

func TestGenerateIMR(t *testing.T) {
	tp := routerless.GenerateIMR(4, 1)
	if tp == nil || tp.NumLoops() == 0 {
		t.Fatal("IMR produced nothing")
	}
}

func TestMeshAverageHops(t *testing.T) {
	if got := routerless.MeshAverageHops(8); got < 5.2 || got > 5.4 {
		t.Fatalf("mesh hops = %v", got)
	}
}

func TestExploreEndToEnd(t *testing.T) {
	design, err := routerless.Explore(routerless.ExploreOptions{
		N: 4, OverlapCap: 6, Episodes: 8, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !design.Topology.FullyConnected() {
		t.Fatal("explored design not connected")
	}
	if design.AvgHops <= 0 || design.Loops == 0 || design.ValidDesigns == 0 {
		t.Fatalf("bad design record: %+v", design)
	}
}

func TestExploreRejectsBadOptions(t *testing.T) {
	if _, err := routerless.Explore(routerless.ExploreOptions{N: 4}); err == nil {
		t.Fatal("missing overlap cap accepted")
	}
}

func TestSimulateAndSweep(t *testing.T) {
	tp, err := routerless.GenerateREC(4)
	if err != nil {
		t.Fatal(err)
	}
	res := routerless.Simulate(tp, routerless.SimulateOptions{
		Pattern: routerless.Transpose, Rate: 0.05,
		WarmupCycles: 200, MeasureCycles: 2000, Seed: 4,
	})
	if res.PacketsDone == 0 || res.AvgLatency <= 0 {
		t.Fatalf("bad sim result: %+v", res)
	}
	curve := routerless.SweepLatency(tp, routerless.SweepOptions{
		Pattern:       routerless.UniformRandom,
		Rates:         []float64{0.01, 0.1},
		MeasureCycles: 2000, Seed: 4,
	})
	if len(curve) != 2 || curve[0].Latency >= curve[1].Latency {
		t.Fatalf("curve not increasing: %+v", curve)
	}
	if routerless.SaturationThroughput(curve) <= 0 {
		t.Fatal("saturation throughput zero")
	}
}

func TestSimulateMeshDelays(t *testing.T) {
	opt := routerless.SimulateOptions{
		Pattern: routerless.UniformRandom, Rate: 0.02,
		WarmupCycles: 200, MeasureCycles: 2000, Seed: 9,
	}
	lat2 := routerless.SimulateMesh(4, 2, opt).AvgLatency
	lat0 := routerless.SimulateMesh(4, 0, opt).AvgLatency
	if lat0 >= lat2 {
		t.Fatalf("Mesh-0 latency %.2f not below Mesh-2 %.2f", lat0, lat2)
	}
}

func TestActivityOf(t *testing.T) {
	tp, _ := routerless.GenerateREC(4)
	res := routerless.Simulate(tp, routerless.SimulateOptions{
		Pattern: routerless.UniformRandom, Rate: 0.05,
		WarmupCycles: 200, MeasureCycles: 2000, Seed: 4,
	})
	a := routerless.ActivityOf(res)
	if a.FlitsPerNodeCycle <= 0 || a.FlitHopsPerNodeCycle <= a.FlitsPerNodeCycle {
		t.Fatalf("activity = %+v", a)
	}
	p := routerless.DefaultPowerParams()
	if p.Routerless(6, a).Total() <= 0 {
		t.Fatal("power model returned nonpositive total")
	}
}

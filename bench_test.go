// Benchmarks regenerating every table and figure in the paper's
// evaluation (§6), plus micro-benchmarks of the core components. Each
// experiment bench prints its report once (quick budgets) and reports its
// headline numbers as custom metrics; run
//
//	go test -bench=. -benchmem
//
// or use cmd/benchtab for the full-budget versions.
package routerless_test

import (
	"math/rand"
	"strconv"
	"sync"
	"testing"

	"routerless/internal/chiplet"
	"routerless/internal/exp"
	"routerless/internal/nn"
	"routerless/internal/noc3d"
	"routerless/internal/obs"
	"routerless/internal/rec"
	"routerless/internal/rl"
	"routerless/internal/search"
	"routerless/internal/sim"
	"routerless/internal/tensor"
	"routerless/internal/topo"
	"routerless/internal/traffic"
)

var (
	reportOnce sync.Map // experiment id -> struct{}
	benchOpts  = exp.Options{Quick: true, Seed: 1}
)

// runExperiment executes an experiment once per bench invocation and logs
// the regenerated table.
func runExperiment(b *testing.B, id string, fn func(exp.Options) *exp.Report) {
	b.Helper()
	var rep *exp.Report
	for i := 0; i < b.N; i++ {
		rep = fn(benchOpts)
	}
	if _, logged := reportOnce.LoadOrStore(id, struct{}{}); !logged {
		b.Log("\n" + rep.String())
	}
}

// --- One bench per table -------------------------------------------------

func BenchmarkTable1Epsilon(b *testing.B) {
	runExperiment(b, "T1", exp.Table1Epsilon)
}

func BenchmarkTable2LargerNoCs(b *testing.B) {
	runExperiment(b, "T2", exp.Table2LargerNoCs)
}

func BenchmarkTable3Overlap8x8(b *testing.B) {
	runExperiment(b, "T3", exp.Table3Overlap8x8)
}

func BenchmarkTable4Overlap10x10(b *testing.B) {
	runExperiment(b, "T4", exp.Table4Overlap10x10)
}

func BenchmarkTable5ParsecExecTime(b *testing.B) {
	runExperiment(b, "T5", exp.Table5ParsecExecTime)
}

// --- One bench per figure ------------------------------------------------

func BenchmarkFigure9Topology4x4(b *testing.B) {
	runExperiment(b, "F9", exp.Figure9Topology)
}

func BenchmarkFigure10SyntheticLatency(b *testing.B) {
	runExperiment(b, "F10", exp.Figure10SyntheticLatency)
}

func BenchmarkFigure11ParsecLatency(b *testing.B) {
	runExperiment(b, "F11", exp.Figure11ParsecLatency)
}

func BenchmarkFigure12ParsecHops(b *testing.B) {
	runExperiment(b, "F12", exp.Figure12ParsecHops)
}

func BenchmarkFigure13PowerPerf(b *testing.B) {
	runExperiment(b, "F13", exp.Figure13PowerPerf)
}

func BenchmarkFigure14ParsecPower(b *testing.B) {
	runExperiment(b, "F14", exp.Figure14ParsecPower)
}

func BenchmarkFigure15Area(b *testing.B) {
	runExperiment(b, "F15", exp.Figure15Area)
}

func BenchmarkFigure16Scaling(b *testing.B) {
	runExperiment(b, "F16", exp.Figure16Scaling)
}

// --- Section studies and ablations ----------------------------------------

func BenchmarkSection61Threads(b *testing.B) {
	runExperiment(b, "S6.1", exp.Section61Threads)
}

func BenchmarkSection67Reliability(b *testing.B) {
	runExperiment(b, "S6.7", exp.Section67Reliability)
}

func BenchmarkAblationNoDNN(b *testing.B) {
	runExperiment(b, "A", exp.AblationNoDNN)
}

func BenchmarkAblationGreedyOnly(b *testing.B) {
	// Covered inside the ablation table; kept as a direct measurement of
	// Algorithm 1's full-design cost.
	for i := 0; i < b.N; i++ {
		env := rl.NewEnv(8, 14)
		rl.GreedyComplete(env)
		if !env.FullyConnected() {
			b.Fatal("greedy failed to connect 8x8")
		}
	}
}

func BenchmarkAblationReward(b *testing.B) {
	runExperiment(b, "A3", exp.AblationNoDNN)
}

func BenchmarkIMRBaseline(b *testing.B) {
	runExperiment(b, "IMR", exp.IMRComparison)
}

// --- §6.8 broad-applicability instantiations --------------------------------

func BenchmarkBroad3DNoC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := search.DefaultConfig()
		cfg.Episodes = 6
		cfg.Epsilon = 0.3
		cfg.MaxSteps = 32
		cons := noc3d.Constraints{ExtraPorts: 2, MaxLen: 4, Budget: 6}
		best, base, _ := noc3d.Explore(4, 2, cons, cfg)
		if best == nil || best.AvgHops() >= base {
			b.Fatal("3-D exploration failed to improve on the base mesh")
		}
		b.ReportMetric(100*(base-best.AvgHops())/base, "%hop_reduction")
	}
}

func BenchmarkBroadChiplet(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := search.DefaultConfig()
		cfg.Episodes = 8
		cfg.Epsilon = 0.4
		cfg.MaxSteps = 32
		best, _ := chiplet.Explore(chiplet.DefaultSystem(), cfg)
		if best == nil || !best.Connected() {
			b.Fatal("chiplet exploration failed to connect the package")
		}
		b.ReportMetric(best.AvgInterChipletHops(1000), "interchiplet_hops")
	}
}

// --- Micro-benchmarks of the core components -------------------------------

func BenchmarkRingStep(b *testing.B) {
	for _, n := range []int{4, 8, 10} {
		b.Run(strconv.Itoa(n)+"x"+strconv.Itoa(n), func(b *testing.B) {
			t := rec.MustGenerate(n)
			net := sim.NewRing(t, sim.DefaultRingConfig())
			src := traffic.NewInjector(n, n, traffic.UniformRandom, 0.1, 128, 1)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, r := range src.Tick() {
					net.Inject(&sim.Packet{Src: r.Src, Dst: r.Dst, NumFlits: r.NumFlits, Done: -1})
				}
				net.Step()
			}
		})
	}
}

func BenchmarkMeshStep(b *testing.B) {
	net := sim.NewMesh(8, 8, sim.MeshN(2))
	src := traffic.NewInjector(8, 8, traffic.UniformRandom, 0.1, 256, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, r := range src.Tick() {
			net.Inject(&sim.Packet{Src: r.Src, Dst: r.Dst, NumFlits: r.NumFlits, Done: -1})
		}
		net.Step()
	}
}

// simRunRates is the injection-rate matrix for the SimRun benchmarks:
// 0.01 and 0.02 cover the below-saturation regime where nearly every
// figure-sweep point lives (and where active-set sparse stepping pays
// off), 0.1 the near-saturation path where it must not regress. The bare
// ring8x8/mesh8x8 names keep their historical meaning (rate 0.1) so
// BENCH_PR3.json comparisons stay valid.
var simRunRates = []struct {
	suffix string
	rate   float64
}{
	{"-r0.01", 0.01},
	{"-r0.02", 0.02},
	{"", 0.1},
}

// benchSimRun measures one full measurement point (warmup + measure +
// drain) — the unit of work every figure sweep repeats hundreds of times —
// across the rate matrix, in either sparse (default) or dense stepping.
func benchSimRun(b *testing.B, dense bool) {
	cfg := sim.RunConfig{WarmupCycles: 500, MeasureCycles: 2000, DrainCycles: 4000}
	for _, row := range simRunRates {
		row := row
		b.Run("ring8x8"+row.suffix, func(b *testing.B) {
			t := rec.MustGenerate(8)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rc := sim.DefaultRingConfig()
				rc.DenseStep = dense
				net := sim.NewRing(t, rc)
				src := traffic.NewInjector(8, 8, traffic.UniformRandom, row.rate, 128, 1)
				res := sim.Run(net, src, cfg)
				if res.PacketsDone == 0 {
					b.Fatal("no packets delivered")
				}
			}
		})
	}
	for _, row := range simRunRates {
		row := row
		b.Run("mesh8x8"+row.suffix, func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				mc := sim.MeshN(2)
				mc.DenseStep = dense
				net := sim.NewMesh(8, 8, mc)
				src := traffic.NewInjector(8, 8, traffic.UniformRandom, row.rate, 256, 1)
				res := sim.Run(net, src, cfg)
				if res.PacketsDone == 0 {
					b.Fatal("no packets delivered")
				}
			}
		})
	}
}

func BenchmarkSimRun(b *testing.B) { benchSimRun(b, false) }

// BenchmarkSimRunDense is BenchmarkSimRun on the dense-stepping oracle
// path — the "before" column for BENCH_PR8.json's sparse-vs-dense rows.
func BenchmarkSimRunDense(b *testing.B) { benchSimRun(b, true) }

// BenchmarkSimRunTraced is BenchmarkSimRun's ring8x8 case with span
// recording enabled: the run owns a trace shard and records its
// run/warmup/measure/drain phase spans. Phase spans are per-run (four End
// calls per Run), so the delta against BenchmarkSimRun is the whole cost
// of -trace on a measurement point (`make bench-obs`; BENCH_PR6.json).
func BenchmarkSimRunTraced(b *testing.B) {
	t := rec.MustGenerate(8)
	tr := obs.NewTracer(1 << 14)
	sh := tr.Shard("sim.bench")
	cfg := sim.RunConfig{WarmupCycles: 500, MeasureCycles: 2000, DrainCycles: 4000, Trace: sh}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net := sim.NewRing(t, sim.DefaultRingConfig())
		src := traffic.NewInjector(8, 8, traffic.UniformRandom, 0.1, 128, 1)
		res := sim.Run(net, src, cfg)
		if res.PacketsDone == 0 {
			b.Fatal("no packets delivered")
		}
	}
}

func BenchmarkDNNForward(b *testing.B) {
	for _, n := range []int{4, 8, 10} {
		b.Run(strconv.Itoa(n)+"x"+strconv.Itoa(n), func(b *testing.B) {
			net := nn.NewPolicyValueNet(nn.Config{N: n, BaseChannels: 4, Pools: 3}, 1)
			in := make([]float64, n*n*n*n)
			rng := rand.New(rand.NewSource(2))
			for i := range in {
				in[i] = rng.Float64() * 40
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				net.Forward(in, false)
			}
		})
	}
}

// BenchmarkDNNForwardBatch measures the batched inference path the
// internal/infer broker runs: one ForwardBatch over B stacked states,
// reported per batch (divide by B for the per-sample cost against
// BenchmarkDNNForward). Before/after numbers for PR 5 live in
// BENCH_PR5.json; the f64-vs-f32 comparison for PR 7 in BENCH_PR7.json.
func BenchmarkDNNForwardBatch(b *testing.B) {
	for _, n := range []int{4, 8, 10} {
		for _, bs := range []int{1, 8, 32} {
			b.Run(strconv.Itoa(n)+"x"+strconv.Itoa(n)+"/B"+strconv.Itoa(bs), func(b *testing.B) {
				net := nn.NewPolicyValueNet(nn.Config{N: n, BaseChannels: 4, Pools: 3}, 1)
				states := benchStates(n, bs)
				outs := make([]nn.Output, bs)
				net.WarmBatch(bs)
				net.ForwardBatch(states, outs) // populate the output slices
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					net.ForwardBatch(states, outs)
				}
				b.ReportMetric(b.Elapsed().Seconds()/float64(b.N)/float64(bs)*1e9, "ns/sample")
			})
		}
	}
}

func benchStates(n, bs int) [][]float64 {
	rng := rand.New(rand.NewSource(2))
	states := make([][]float64, bs)
	for s := range states {
		in := make([]float64, n*n*n*n)
		for i := range in {
			in[i] = rng.Float64() * 40
		}
		states[s] = in
	}
	return states
}

// BenchmarkDNNForwardBatchF32 is BenchmarkDNNForwardBatch on the float32
// inference engine (nn.InferNet: quantized weights, folded BatchNorm,
// depth-blocked scheduling) — the broker's Precision: F32 hot path. The
// PR 7 gate compares its ns/sample at B=8/32 against single-sample f64
// Forward on the 8×8 and 10×10 nets (BENCH_PR7.json).
func BenchmarkDNNForwardBatchF32(b *testing.B) {
	for _, n := range []int{4, 8, 10} {
		for _, bs := range []int{1, 8, 32} {
			b.Run(strconv.Itoa(n)+"x"+strconv.Itoa(n)+"/B"+strconv.Itoa(bs), func(b *testing.B) {
				net := nn.NewPolicyValueNet(nn.Config{N: n, BaseChannels: 4, Pools: 3}, 1)
				inf := nn.NewInferNet(net)
				states := benchStates(n, bs)
				outs := make([]nn.Output, bs)
				inf.Warm(bs)
				inf.ForwardBatch(states, outs) // populate the output slices
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					inf.ForwardBatch(states, outs)
				}
				b.ReportMetric(b.Elapsed().Seconds()/float64(b.N)/float64(bs)*1e9, "ns/sample")
			})
		}
	}
}

func BenchmarkDNNTrainStep(b *testing.B) {
	net := nn.NewPolicyValueNet(nn.Config{N: 4, BaseChannels: 4, Pools: 3}, 1)
	env := rl.NewEnv(4, 6)
	st := env.State()
	var dl [4][]float64
	for g := range dl {
		dl[g] = make([]float64, 4)
		dl[g][g%4] = 0.5
	}
	// Tiny learning rate with clipping: the bench repeats one gradient
	// thousands of times, which would diverge at training rates.
	sgd := nn.SGD{LR: 1e-6, Clip: 0.1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Forward(st, true)
		net.Backward(dl, 0.1, -0.5)
		sgd.Step(net)
	}
}

// BenchmarkGemm measures the blocked GEMM kernels on the shapes the conv
// layers actually produce: "stem8x8" is the 8×8 net's stem convolution
// (16 output channels, 9×9 kernel on a 64×64 map) and "conv2_8x8" its
// second stage; "square128" is a reference cube. Reports GFLOP/s.
func BenchmarkGemm(b *testing.B) {
	for _, sz := range []struct {
		name    string
		m, n, k int
	}{
		{"stem8x8_16x4096x81", 16, 4096, 81},
		{"conv2_8x8_32x1024x144", 32, 1024, 144},
		{"square128", 128, 128, 128},
	} {
		b.Run(sz.name, func(b *testing.B) {
			rng := rand.New(rand.NewSource(3))
			a := make([]float64, sz.m*sz.k)
			bb := make([]float64, sz.k*sz.n)
			c := make([]float64, sz.m*sz.n)
			for i := range a {
				a[i] = rng.NormFloat64()
			}
			for i := range bb {
				bb[i] = rng.NormFloat64()
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tensor.GemmNN(sz.m, sz.n, sz.k, a, bb, c, false)
			}
			flops := 2 * float64(sz.m) * float64(sz.n) * float64(sz.k)
			b.ReportMetric(flops*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOP/s")
		})
	}
}

// BenchmarkIm2colConv pits the im2col+GEMM convolution against the
// retained naive reference on one mid-sized layer (16→32 channels, 3×3
// kernel, 32×32 map), forward plus backward.
func BenchmarkIm2colConv(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	x := tensor.Randn(rng, 1, 16, 32, 32)
	grad := tensor.Randn(rng, 1, 32, 32, 32)
	b.Run("gemm", func(b *testing.B) {
		l := nn.NewConv2D(rng, "c", 16, 32, 3)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			l.Forward(x, true)
			l.Backward(grad)
		}
	})
	b.Run("naive", func(b *testing.B) {
		l := nn.NewConv2D(rng, "c", 16, 32, 3)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			l.NaiveForward(x)
			l.NaiveBackward(grad)
		}
	})
}

func BenchmarkGreedyScan(b *testing.B) {
	for _, n := range []int{4, 8} {
		b.Run(strconv.Itoa(n)+"x"+strconv.Itoa(n), func(b *testing.B) {
			env := rl.NewEnv(n, 2*(n-1))
			env.Step(rl.Action{X1: 0, Y1: 0, X2: n - 1, Y2: n - 1, Dir: topo.Clockwise})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, ok := rl.Greedy(env); !ok {
					b.Fatal("no action")
				}
			}
		})
	}
}

// BenchmarkGreedyComplete measures a full Algorithm 1 design construction
// from a blank grid — the episode completion phase every DRL exploration
// cycle runs (Fig. 4), and the unit the incremental score table speeds up.
// Before/after numbers for PR 4 live in BENCH_PR4.json.
func BenchmarkGreedyComplete(b *testing.B) {
	// Smallest caps under which Algorithm 1 reaches full connectivity.
	for _, g := range []struct{ n, cap int }{{8, 14}, {10, 20}} {
		n, cap := g.n, g.cap
		b.Run(strconv.Itoa(n)+"x"+strconv.Itoa(n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				env := rl.NewEnv(n, cap)
				rl.GreedyComplete(env)
				if !env.FullyConnected() {
					b.Fatal("greedy failed to connect the design")
				}
			}
		})
	}
}

// BenchmarkFingerprint measures the MCTS state key on a complete design —
// called once per episode step to look up tree nodes.
func BenchmarkFingerprint(b *testing.B) {
	t := rec.MustGenerate(8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(t.Fingerprint()) == 0 {
			b.Fatal("empty fingerprint")
		}
	}
}

func BenchmarkHopMatrix(b *testing.B) {
	t := rec.MustGenerate(8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.HopMatrix()
	}
}

func BenchmarkRoutingTableBuild(b *testing.B) {
	t := rec.MustGenerate(8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		topo.BuildRoutingTable(t)
	}
}

func BenchmarkRECGenerate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rec.MustGenerate(10)
	}
}

func BenchmarkTopologyAddLoop(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t := topo.NewSquare(8, 0)
		for _, l := range rec.MustGenerate(8).Loops() {
			if err := t.AddLoop(l); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// Package routerless is a Go implementation of the deep-reinforcement-
// learning framework for routerless network-on-chip design exploration
// from "A Deep Reinforcement Learning Framework for Architectural
// Exploration: A Routerless NoC Case Study" (HPCA 2020), together with
// everything needed to evaluate it: the REC and IMR baselines, a
// cycle-accurate NoC simulator for routerless rings and VC mesh routers,
// synthetic and application traffic models, and calibrated power/area
// models.
//
// # Quick start
//
//	design, err := routerless.Explore(routerless.ExploreOptions{
//		N: 4, OverlapCap: 6, Episodes: 20,
//	})
//	// design.Topology is a fully connected 4x4 routerless NoC.
//	curve := routerless.SweepLatency(design.Topology, routerless.SweepOptions{
//		Pattern: routerless.UniformRandom,
//		Rates:   []float64{0.01, 0.05, 0.1},
//	})
//
// The facade re-exports the most common entry points; the full surface
// lives in the internal packages and the cmd tools (nocgen, nocsim,
// nocexplore, benchtab).
package routerless

import (
	"fmt"

	"routerless/internal/drl"
	"routerless/internal/imr"
	"routerless/internal/mesh"
	"routerless/internal/nn"
	"routerless/internal/power"
	"routerless/internal/rec"
	"routerless/internal/rl"
	"routerless/internal/sim"
	"routerless/internal/stats"
	"routerless/internal/topo"
	"routerless/internal/traffic"
)

// Topology is a routerless NoC loop configuration.
type Topology = topo.Topology

// Node identifies a grid position.
type Node = topo.Node

// Loop is a unidirectional rectangular ring.
type Loop = topo.Loop

// Pattern selects a synthetic traffic pattern.
type Pattern = traffic.Pattern

// Traffic pattern names, re-exported for SweepOptions.
const (
	UniformRandom = traffic.UniformRandom
	Tornado       = traffic.Tornado
	BitComplement = traffic.BitComplement
	BitRotation   = traffic.BitRotation
	Shuffle       = traffic.Shuffle
	Transpose     = traffic.Transpose
)

// GenerateREC builds the deterministic REC baseline for an n×n NoC.
func GenerateREC(n int) (*Topology, error) { return rec.Generate(n) }

// GenerateIMR runs the evolutionary IMR baseline for an n×n NoC and
// returns its best individual's topology.
func GenerateIMR(n int, seed int64) *Topology {
	cfg := imr.DefaultConfig(n)
	cfg.Seed = seed
	return imr.Run(cfg).Best.Topo
}

// GenerateGreedy runs the pure Algorithm-1 heuristic under a wiring cap.
func GenerateGreedy(n, overlapCap int) *Topology {
	env := rl.NewEnv(n, overlapCap)
	rl.GreedyComplete(env)
	return env.Topology()
}

// MeshAverageHops returns the average hop count of an n×n mesh, the
// reference used by the DRL reward function.
func MeshAverageHops(n int) float64 { return mesh.AverageHops(n, n) }

// ExploreOptions configures a DRL design-space search.
type ExploreOptions struct {
	// N is the NoC side length; OverlapCap the wiring constraint.
	N, OverlapCap int
	// Episodes is the number of exploration cycles (default 30).
	Episodes int
	// Threads enables the multi-threaded learners of §4.6 (default 1,
	// which is fully deterministic in Seed).
	Threads int
	// Epsilon is the ε-greedy probability of an Algorithm-1 move.
	Epsilon float64
	// Seed fixes all randomness.
	Seed int64
	// FullDNN selects the paper's full-width network (16 base channels);
	// the default uses a narrow network suitable for interactive budgets.
	FullDNN bool
}

// Design is a search outcome.
type Design struct {
	Topology *Topology
	AvgHops  float64
	Loops    int
	// ValidDesigns is the number of fully connected designs the search
	// discovered in total.
	ValidDesigns int
}

// Explore runs the DRL framework and returns the best discovered design.
func Explore(opt ExploreOptions) (*Design, error) {
	cfg := drl.DefaultConfig(opt.N, opt.OverlapCap)
	if opt.Episodes > 0 {
		cfg.Episodes = opt.Episodes
	}
	if opt.Threads > 0 {
		cfg.Threads = opt.Threads
	}
	if opt.Epsilon > 0 {
		cfg.Epsilon = opt.Epsilon
	}
	if opt.Seed != 0 {
		cfg.Seed = opt.Seed
	}
	if opt.FullDNN {
		cfg.NN = nn.DefaultConfig(opt.N)
	}
	s, err := drl.New(cfg)
	if err != nil {
		return nil, err
	}
	res := s.Run()
	if res.Best.Topo == nil {
		return nil, fmt.Errorf("routerless: search found no fully connected design in %d episodes", res.Episodes)
	}
	return &Design{
		Topology:     res.Best.Topo,
		AvgHops:      res.Best.AvgHops,
		Loops:        res.Best.Loops,
		ValidDesigns: len(res.Valid),
	}, nil
}

// SimResult re-exports the simulator's measurement record.
type SimResult = sim.Result

// SimulateOptions configures one cycle-accurate run.
type SimulateOptions struct {
	Pattern traffic.Pattern
	// Rate is the offered load in flits/node/cycle.
	Rate float64
	// WarmupCycles/MeasureCycles default to 2000/10000.
	WarmupCycles, MeasureCycles int
	Seed                        int64
}

func (o SimulateOptions) runCfg() sim.RunConfig {
	cfg := sim.DefaultRunConfig()
	if o.WarmupCycles > 0 {
		cfg.WarmupCycles = o.WarmupCycles
	}
	if o.MeasureCycles > 0 {
		cfg.MeasureCycles = o.MeasureCycles
		cfg.DrainCycles = 2 * o.MeasureCycles
	}
	return cfg
}

// Simulate runs the routerless ring simulator on a topology.
func Simulate(t *Topology, opt SimulateOptions) SimResult {
	net := sim.NewRing(t, sim.DefaultRingConfig())
	src := traffic.NewInjector(t.Rows(), t.Cols(), opt.Pattern, opt.Rate, 128, opt.Seed+1)
	return sim.Run(net, src, opt.runCfg())
}

// SimulateMesh runs the VC mesh router simulator (routerDelay 0, 1 or 2 —
// the paper's Mesh-0/1/2).
func SimulateMesh(n, routerDelay int, opt SimulateOptions) SimResult {
	net := sim.NewMesh(n, n, sim.MeshN(routerDelay))
	src := traffic.NewInjector(n, n, opt.Pattern, opt.Rate, 256, opt.Seed+1)
	return sim.Run(net, src, opt.runCfg())
}

// SweepOptions configures a load-latency sweep.
type SweepOptions struct {
	Pattern traffic.Pattern
	Rates   []float64
	// Cycles per point (measure window); defaults to 10000.
	MeasureCycles int
	Seed          int64
}

// CurvePoint re-exports the load-latency sample type.
type CurvePoint = stats.CurvePoint

// SweepLatency sweeps injection rates on a routerless topology and returns
// the load-latency curve.
func SweepLatency(t *Topology, opt SweepOptions) []CurvePoint {
	var pts []sim.SweepPoint
	for _, r := range opt.Rates {
		res := Simulate(t, SimulateOptions{
			Pattern: opt.Pattern, Rate: r,
			MeasureCycles: opt.MeasureCycles, Seed: opt.Seed,
		})
		pts = append(pts, sim.SweepPoint{Rate: r, Result: res})
	}
	return sim.Curve(pts)
}

// SaturationThroughput estimates where a curve saturates (latency beyond
// 3× zero-load).
func SaturationThroughput(curve []CurvePoint) float64 {
	return stats.SaturationThroughput(curve, 3)
}

// PowerParams re-exports the calibrated 15nm power/area model.
type PowerParams = power.Params

// DefaultPowerParams returns constants anchored to the paper's published
// post-P&R numbers.
func DefaultPowerParams() PowerParams { return power.DefaultParams() }

// ActivityOf converts a simulation result into the power model's activity
// factors.
func ActivityOf(res SimResult) power.Activity {
	return power.Activity{
		FlitHopsPerNodeCycle: res.Throughput * res.AvgHops,
		FlitsPerNodeCycle:    res.Throughput,
	}
}

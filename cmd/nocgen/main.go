// Command nocgen generates routerless NoC topologies with any of the three
// approaches the paper studies — REC recursive layering, the IMR genetic
// algorithm, or the DRL framework — plus the pure Algorithm-1 greedy
// heuristic, and writes them as JSON for nocsim.
//
// Usage:
//
//	nocgen -method drl -n 8 -cap 14 -episodes 40 -o design.json
//	nocgen -method rec -n 10 -o rec10.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"routerless/internal/drl"
	"routerless/internal/imr"
	"routerless/internal/rec"
	"routerless/internal/rl"
	"routerless/internal/topo"
	"routerless/internal/viz"
)

func main() {
	method := flag.String("method", "drl", "generator: rec | imr | drl | greedy")
	n := flag.Int("n", 8, "NoC side length")
	cap := flag.Int("cap", 0, "node overlapping cap (default 2(n-1))")
	episodes := flag.Int("episodes", 30, "DRL exploration cycles")
	threads := flag.Int("threads", 1, "DRL learner threads")
	epsilon := flag.Float64("epsilon", 0.1, "DRL epsilon-greedy factor")
	seed := flag.Int64("seed", 1, "random seed")
	out := flag.String("o", "", "output JSON path (default stdout)")
	quiet := flag.Bool("q", false, "suppress the topology summary")
	flag.Parse()

	overlap := *cap
	if overlap == 0 {
		overlap = 2 * (*n - 1)
	}

	var t *topo.Topology
	var err error
	switch *method {
	case "rec":
		t, err = rec.Generate(*n)
	case "imr":
		cfg := imr.DefaultConfig(*n)
		cfg.Seed = *seed
		cfg.OverlapCap = overlap
		t = imr.Run(cfg).Best.Topo
	case "greedy":
		env := rl.NewEnv(*n, overlap)
		rl.GreedyComplete(env)
		t = env.Topology()
	case "drl":
		cfg := drl.DefaultConfig(*n, overlap)
		cfg.Episodes = *episodes
		cfg.Threads = *threads
		cfg.Epsilon = *epsilon
		cfg.Seed = *seed
		var s *drl.Searcher
		s, err = drl.New(cfg)
		if err == nil {
			res := s.Run()
			if res.Best.Topo == nil {
				err = fmt.Errorf("no fully connected design in %d episodes", res.Episodes)
			} else {
				t = res.Best.Topo
				if !*quiet {
					fmt.Fprintf(os.Stderr, "found %d valid designs; best avg hops %.3f\n",
						len(res.Valid), res.Best.AvgHops)
				}
			}
		}
	default:
		err = fmt.Errorf("unknown method %q", *method)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "nocgen:", err)
		os.Exit(1)
	}

	if !*quiet {
		fmt.Fprint(os.Stderr, viz.TopologySummary(t))
	}
	data, err := json.MarshalIndent(t, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "nocgen:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "nocgen:", err)
		os.Exit(1)
	}
}

// Command benchtab regenerates the paper's tables and figures. Each
// experiment id matches the index in DESIGN.md/EXPERIMENTS.md.
//
// Usage:
//
//	benchtab -exp T3            # one experiment, quick budget
//	benchtab -exp all -full     # everything at full budgets (slow)
//	benchtab -list
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"routerless/internal/exp"
	"routerless/internal/obs"
	"routerless/internal/viz"
)

func main() {
	id := flag.String("exp", "all", "experiment id (T1..T5, F9..F16, S6.1, S6.7, S6.8, A, IMR, all)")
	full := flag.Bool("full", false, "use full (paper-scale) budgets instead of quick ones")
	seed := flag.Int64("seed", 1, "random seed")
	csvPath := flag.String("csv", "", "also write the experiment rows as CSV to this path")
	list := flag.Bool("list", false, "list experiment ids")
	metricsPath := flag.String("metrics", "", "write a metrics snapshot as JSON to this path at exit")
	debugAddr := flag.String("debug-addr", "", "serve /metrics, /debug/vars and /debug/pprof/ on this address while running")
	eventsPath := flag.String("events", "", "write structured JSONL run events to this path")
	tracePath := flag.String("trace", "", "write a Chrome trace-event JSON file of the experiment run (load in Perfetto) to this path")
	manifestPath := flag.String("manifest", "", "append a JSONL run-provenance manifest to this path")
	jobs := flag.Int("j", runtime.GOMAXPROCS(0), "simulation points run in parallel per experiment (1 = sequential; reports are identical either way)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the experiment run to this file")
	mutexProfile := flag.String("mutexprofile", "", "write a mutex-contention pprof profile of the experiment run to this file")
	blockProfile := flag.String("blockprofile", "", "write a goroutine-blocking pprof profile of the experiment run to this file")
	flag.Parse()

	if *list {
		fmt.Println("T1   Table 1: epsilon hyperparameter exploration (8x8)")
		fmt.Println("T2   Table 2: larger NoCs under node overlapping 18")
		fmt.Println("T3   Table 3: 8x8 wiring-resource sweep")
		fmt.Println("T4   Table 4: 10x10 wiring-resource sweep")
		fmt.Println("T5   Table 5: PARSEC execution time")
		fmt.Println("F9   Figure 9: generated 4x4 topology")
		fmt.Println("F10  Figure 10: synthetic latency/throughput, 10x10")
		fmt.Println("F11  Figure 11: PARSEC packet latency")
		fmt.Println("F12  Figure 12: PARSEC hop count")
		fmt.Println("F13  Figure 13: power-performance tradeoff")
		fmt.Println("F14  Figure 14: PARSEC power")
		fmt.Println("F15  Figure 15: area comparison")
		fmt.Println("F16  Figure 16: synthetic scaling")
		fmt.Println("S6.1 multi-threaded search efficacy")
		fmt.Println("S6.7 reliability / path diversity")
		fmt.Println("S6.8 broad applicability (3-D NoC, chiplet)")
		fmt.Println("A    framework ablations")
		fmt.Println("IMR  IMR GA baseline comparison")
		return
	}

	var reg *obs.Registry
	if *metricsPath != "" || *debugAddr != "" || *manifestPath != "" {
		reg = obs.NewRegistry()
	}
	var events *obs.Logger
	if *eventsPath != "" {
		f, err := os.Create(*eventsPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchtab:", err)
			os.Exit(1)
		}
		events = obs.NewLogger(f, obs.LevelDebug)
		// Close flushes buffered events and closes the file on exit.
		defer events.Close()
	}
	var tracer *obs.Tracer
	if *tracePath != "" || *debugAddr != "" {
		tracer = obs.NewTracer(1 << 16)
	}
	if *debugAddr != "" {
		d, err := obs.StartDebug(*debugAddr, reg, tracer)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchtab:", err)
			os.Exit(1)
		}
		defer d.Close()
		fmt.Fprintf(os.Stderr, "benchtab: debug endpoint on http://%s\n", d.Addr)
	}
	var manifest *obs.Manifest
	if *manifestPath != "" {
		manifest = obs.NewManifest("benchtab")
		manifest.Seed = *seed
		manifest.Set("exp", *id)
		manifest.Set("full", *full)
		manifest.Set("jobs", *jobs)
	}
	// finishRun exports the trace (only after every experiment worker has
	// quiesced) and appends the provenance manifest.
	finishRun := func() {
		if *tracePath != "" {
			f, err := os.Create(*tracePath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "benchtab:", err)
				os.Exit(1)
			}
			err = tracer.WriteTrace(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				fmt.Fprintln(os.Stderr, "benchtab: write trace:", err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "benchtab: trace written to %s\n", *tracePath)
		}
		if manifest != nil {
			manifest.Finish(reg)
			if err := manifest.AppendFile(*manifestPath); err != nil {
				fmt.Fprintln(os.Stderr, "benchtab: write manifest:", err)
			}
		}
	}
	writeMetrics := func() {
		if *metricsPath == "" {
			return
		}
		f, err := os.Create(*metricsPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchtab:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := reg.WriteJSON(f); err != nil {
			fmt.Fprintln(os.Stderr, "benchtab:", err)
			os.Exit(1)
		}
		fmt.Printf("metrics written to %s\n", *metricsPath)
	}

	// Bracket only the experiment run; report/CSV generation is excluded.
	stopProfile := func() {}
	if *cpuProfile != "" {
		stop, err := obs.StartCPUProfile(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchtab:", err)
			os.Exit(1)
		}
		stopProfile = stop
	}
	// Contention profiles share the bracket; the combined stop keeps both
	// run paths below to a single call.
	if *mutexProfile != "" || *blockProfile != "" {
		stopContention, err := obs.StartContentionProfiles(*mutexProfile, *blockProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchtab:", err)
			os.Exit(1)
		}
		stopCPU := stopProfile
		stopProfile = func() {
			stopCPU()
			if err := stopContention(); err != nil {
				fmt.Fprintln(os.Stderr, "benchtab:", err)
				os.Exit(1)
			}
		}
	}
	o := exp.Options{Quick: !*full, Seed: *seed, Workers: *jobs, Metrics: reg, Events: events, Trace: tracer}
	if *id == "all" {
		rs := exp.All(o)
		stopProfile()
		finishRun()
		for _, r := range rs {
			fmt.Println(r)
		}
		writeMetrics()
		return
	}
	r, err := exp.ByID(*id, o)
	stopProfile()
	finishRun()
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchtab:", err)
		os.Exit(1)
	}
	fmt.Println(r)
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchtab:", err)
			os.Exit(1)
		}
		defer f.Close()
		rows := append([][]string{r.Header}, r.Rows...)
		if err := viz.CSV(f, rows); err != nil {
			fmt.Fprintln(os.Stderr, "benchtab:", err)
			os.Exit(1)
		}
		fmt.Printf("rows written to %s\n", *csvPath)
	}
	writeMetrics()
}

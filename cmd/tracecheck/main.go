// Command tracecheck validates a Chrome trace-event JSON file produced by
// the -trace flag of nocexplore/nocsim/benchtab (internal/obs.WriteTrace).
// It checks the file is well-formed, that complete ("X") events nest
// strictly within each track (tid), and — optionally — that a set of
// required span names is present. `make trace-smoke` uses it to gate the
// tracing pipeline end to end.
//
// Usage:
//
//	tracecheck trace.json
//	tracecheck -require drl.episode,mcts.select,infer.forward_batch trace.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
)

// traceEvent mirrors the subset of the Chrome trace-event format that
// obs.WriteTrace emits: "X" complete events and "M" thread_name metadata.
type traceEvent struct {
	Name  string          `json:"name"`
	Cat   string          `json:"cat"`
	Phase string          `json:"ph"`
	TS    float64         `json:"ts"`
	Dur   float64         `json:"dur"`
	PID   int             `json:"pid"`
	TID   int             `json:"tid"`
	Args  json.RawMessage `json:"args,omitempty"`
}

type traceFile struct {
	TraceEvents []traceEvent `json:"traceEvents"`
	// Extra top-level keys (displayTimeUnit, ...) are part of the format
	// and ignored.
}

func main() {
	require := flag.String("require", "", "comma-separated span names that must appear at least once")
	minSpans := flag.Int("min-spans", 1, "minimum number of complete (X) events")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: tracecheck [-require a,b,c] [-min-spans n] trace.json")
		os.Exit(2)
	}
	path := flag.Arg(0)

	data, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	var tf traceFile
	if err := json.Unmarshal(data, &tf); err != nil {
		fatal(fmt.Errorf("%s: not valid trace JSON: %w", path, err))
	}

	tracks := map[int][]traceEvent{} // X events per tid
	names := map[string]int{}        // span name -> count
	trackNames := map[int]string{}   // tid -> thread_name metadata
	for i, ev := range tf.TraceEvents {
		switch ev.Phase {
		case "X":
			if ev.Dur < 0 {
				fatal(fmt.Errorf("%s: event %d (%q) has negative dur %.3f", path, i, ev.Name, ev.Dur))
			}
			if ev.Name == "" {
				fatal(fmt.Errorf("%s: event %d has empty name", path, i))
			}
			tracks[ev.TID] = append(tracks[ev.TID], ev)
			names[ev.Name]++
		case "M":
			var args struct {
				Name string `json:"name"`
			}
			_ = json.Unmarshal(ev.Args, &args)
			trackNames[ev.TID] = args.Name
		default:
			fatal(fmt.Errorf("%s: event %d has unexpected phase %q", path, i, ev.Phase))
		}
	}

	total := 0
	for tid, evs := range tracks {
		total += len(evs)
		if err := checkNesting(evs); err != nil {
			fatal(fmt.Errorf("%s: track %d (%s): %w", path, tid, trackNames[tid], err))
		}
	}
	if total < *minSpans {
		fatal(fmt.Errorf("%s: only %d complete events, want at least %d", path, total, *minSpans))
	}
	if *require != "" {
		var missing []string
		for _, want := range strings.Split(*require, ",") {
			want = strings.TrimSpace(want)
			if want != "" && names[want] == 0 {
				missing = append(missing, want)
			}
		}
		if len(missing) > 0 {
			fatal(fmt.Errorf("%s: required span names missing: %s", path, strings.Join(missing, ", ")))
		}
	}

	fmt.Printf("tracecheck: %s ok — %d spans on %d tracks, %d distinct names\n",
		path, total, len(tracks), len(names))
}

// checkNesting verifies that within one track, event intervals form a
// strict hierarchy: any two either do not overlap or one contains the
// other. Spans are recorded per goroutine from a LIFO stack, so a partial
// overlap can only come from a corrupted export.
func checkNesting(evs []traceEvent) error {
	sort.SliceStable(evs, func(i, j int) bool {
		if evs[i].TS != evs[j].TS {
			return evs[i].TS < evs[j].TS
		}
		return evs[i].Dur > evs[j].Dur // parent before child at equal start
	})
	type open struct {
		name string
		end  float64
	}
	var stack []open
	for _, ev := range evs {
		start, end := ev.TS, ev.TS+ev.Dur
		for len(stack) > 0 && stack[len(stack)-1].end <= start {
			stack = stack[:len(stack)-1]
		}
		if len(stack) > 0 && end > stack[len(stack)-1].end {
			return fmt.Errorf("span %q [%.3f, %.3f] partially overlaps enclosing %q (ends %.3f)",
				ev.Name, start, end, stack[len(stack)-1].name, stack[len(stack)-1].end)
		}
		stack = append(stack, open{ev.Name, end})
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracecheck:", err)
	os.Exit(1)
}

// Command nocsim runs the cycle-accurate simulator on a topology produced
// by nocgen (routerless) or on a mesh baseline, sweeping injection rates
// under a synthetic pattern or replaying a PARSEC-like application model.
//
// Usage:
//
//	nocsim -topo design.json -pattern uniform_random -rates 0.01,0.05,0.1
//	nocsim -mesh 8 -delay 2 -pattern transpose -rates 0.02,0.04
//	nocsim -topo design.json -app fluidanimate
//	nocsim -mesh 8 -metrics out.json -events run.jsonl -debug-addr :6060
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"

	"routerless/internal/exp"
	"routerless/internal/obs"
	"routerless/internal/sim"
	"routerless/internal/stats"
	"routerless/internal/topo"
	"routerless/internal/traffic"
	"routerless/internal/viz"
)

func main() {
	topoPath := flag.String("topo", "", "routerless topology JSON (from nocgen)")
	meshN := flag.Int("mesh", 0, "simulate an NxN mesh instead of a routerless topology")
	delay := flag.Int("delay", 2, "mesh router pipeline delay (0|1|2)")
	pattern := flag.String("pattern", "uniform_random", "synthetic traffic pattern")
	app := flag.String("app", "", "PARSEC-like application model (overrides -pattern)")
	rates := flag.String("rates", "0.005,0.02,0.05,0.1", "comma-separated injection rates (flits/node/cycle)")
	warmup := flag.Int("warmup", 2000, "warm-up cycles")
	measure := flag.Int("measure", 10000, "measured cycles")
	seed := flag.Int64("seed", 1, "random seed")
	csvPath := flag.String("csv", "", "also write the sweep as CSV to this path")
	metricsPath := flag.String("metrics", "", "write a metrics snapshot as JSON to this path at exit")
	debugAddr := flag.String("debug-addr", "", "serve /metrics, /debug/vars and /debug/pprof/ on this address while running")
	eventsPath := flag.String("events", "", "write structured JSONL run events to this path")
	tracePath := flag.String("trace", "", "write a Chrome trace-event JSON file of the run (load in Perfetto) to this path")
	manifestPath := flag.String("manifest", "", "append a JSONL run-provenance manifest to this path")
	progress := flag.Int("progress", 0, "print a progress line to stderr every N simulated cycles (0 = off)")
	dense := flag.Bool("dense", false, "disable active-set sparse stepping (dense oracle walk; same results, slower below saturation)")
	jobs := flag.Int("j", runtime.GOMAXPROCS(0), "sweep points simulated in parallel (1 = sequential; output is identical either way)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the simulation to this file")
	mutexProfile := flag.String("mutexprofile", "", "write a mutex-contention pprof profile of the simulation to this file")
	blockProfile := flag.String("blockprofile", "", "write a goroutine-blocking pprof profile of the simulation to this file")
	flag.Parse()

	var reg *obs.Registry
	if *metricsPath != "" || *debugAddr != "" || *manifestPath != "" {
		reg = obs.NewRegistry()
	}
	var events *obs.Logger
	if *eventsPath != "" {
		f, err := os.Create(*eventsPath)
		if err != nil {
			fatal(err)
		}
		events = obs.NewLogger(f, obs.LevelDebug)
		// Flushes buffered events and closes the file on normal exit;
		// fatal() paths lose at most buffered debug events.
		defer events.Close()
	}
	var tracer *obs.Tracer
	if *tracePath != "" || *debugAddr != "" {
		tracer = obs.NewTracer(1 << 16)
	}
	if *debugAddr != "" {
		d, err := obs.StartDebug(*debugAddr, reg, tracer)
		if err != nil {
			fatal(err)
		}
		defer d.Close()
		fmt.Fprintf(os.Stderr, "nocsim: debug endpoint on http://%s\n", d.Addr)
	}
	var manifest *obs.Manifest
	if *manifestPath != "" {
		manifest = obs.NewManifest("nocsim")
		manifest.Seed = *seed
		manifest.Set("topo", *topoPath)
		manifest.Set("mesh", *meshN)
		manifest.Set("pattern", *pattern)
		manifest.Set("app", *app)
		manifest.Set("rates", *rates)
		manifest.Set("warmup", *warmup)
		manifest.Set("measure", *measure)
		manifest.Set("dense", *dense)
	}
	// finishRun writes the trace and manifest once simulation is done (the
	// trace only after all sweep workers have quiesced).
	finishRun := func() {
		if *tracePath != "" {
			f, err := os.Create(*tracePath)
			if err != nil {
				fatal(err)
			}
			err = tracer.WriteTrace(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "nocsim: trace written to %s\n", *tracePath)
		}
		if manifest != nil {
			manifest.Finish(reg)
			if err := manifest.AppendFile(*manifestPath); err != nil {
				fatal(err)
			}
		}
	}

	var mk func() sim.Network
	var rows, cols, linkBits int
	switch {
	case *meshN > 0:
		rows, cols, linkBits = *meshN, *meshN, 256
		mk = func() sim.Network {
			mc := sim.MeshN(*delay)
			mc.DenseStep = *dense
			return sim.NewMesh(rows, cols, mc)
		}
	case *topoPath != "":
		data, err := os.ReadFile(*topoPath)
		if err != nil {
			fatal(err)
		}
		var t topo.Topology
		if err := json.Unmarshal(data, &t); err != nil {
			fatal(err)
		}
		if !t.FullyConnected() {
			fatal(fmt.Errorf("topology %s is not fully connected", *topoPath))
		}
		rows, cols, linkBits = t.Rows(), t.Cols(), 128
		mk = func() sim.Network {
			rc := sim.DefaultRingConfig()
			rc.DenseStep = *dense
			return sim.NewRing(&t, rc)
		}
	default:
		fatal(fmt.Errorf("need -topo or -mesh"))
	}

	cfg := sim.RunConfig{
		WarmupCycles: *warmup, MeasureCycles: *measure, DrainCycles: 2 * *measure,
		Metrics: reg, Events: events,
	}
	// progressFn builds a per-run progress callback; each parallel sweep
	// point gets its own (the prefix identifies whose line it is).
	progressFn := func(prefix string) func(sim.IntervalStats) {
		if *progress <= 0 {
			return nil
		}
		return func(s sim.IntervalStats) {
			// act is the number of loops (ring) or routers (mesh) the
			// sparse stepper is visiting — how sparse the run is.
			act := s.ActiveLoops
			if act < 0 {
				act = s.ActiveRouters
			}
			fmt.Fprintf(os.Stderr, "nocsim: %s%s cycle=%d inflight=%d thr=%.4f buf=%d act=%d\n",
				prefix, s.Phase, s.Cycle, s.InFlight, s.Throughput, s.BufferOccupancy, act)
		}
	}
	if *progress > 0 {
		cfg.ProbeEvery = *progress
	}

	writeMetrics := func() {
		if *metricsPath == "" {
			return
		}
		f, err := os.Create(*metricsPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := reg.WriteJSON(f); err != nil {
			fatal(err)
		}
		fmt.Printf("metrics written to %s\n", *metricsPath)
	}

	// The profile brackets only the simulation itself (both run paths), not
	// flag parsing or report printing; fatal exits via os.Exit, so the stop
	// closure is also invoked before each post-profile section.
	stopProfile := func() {}
	if *cpuProfile != "" {
		stop, err := obs.StartCPUProfile(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		stopProfile = stop
	}
	// Contention profiles share the same bracket as the CPU profile; the
	// combined stop keeps both run paths below to a single call.
	if *mutexProfile != "" || *blockProfile != "" {
		stopContention, err := obs.StartContentionProfiles(*mutexProfile, *blockProfile)
		if err != nil {
			fatal(err)
		}
		stopCPU := stopProfile
		stopProfile = func() {
			stopCPU()
			if err := stopContention(); err != nil {
				fatal(err)
			}
		}
	}

	if *app != "" {
		profile, err := traffic.ParsecProfile(*app)
		if err != nil {
			fatal(err)
		}
		src := traffic.NewAppInjector(profile, rows, cols, linkBits, *seed)
		cfg.OnInterval = progressFn("")
		cfg.Trace = tracer.Shard("sim.main")
		res := sim.Run(mk(), src, cfg)
		stopProfile()
		fmt.Printf("app=%s %v\n", profile.Name, res)
		finishRun()
		writeMetrics()
		return
	}

	p, err := traffic.ParsePattern(*pattern)
	if err != nil {
		fatal(err)
	}
	var rateList []float64
	for _, rs := range strings.Split(*rates, ",") {
		r, err := strconv.ParseFloat(strings.TrimSpace(rs), 64)
		if err != nil {
			fatal(err)
		}
		rateList = append(rateList, r)
	}
	// The sweep points are independent (each builds its own network and
	// injector with the same seed), so fan them across -j workers; results
	// land by rate index and are printed/logged in order afterwards, so
	// stdout and the events JSONL are identical at any -j.
	results := exp.RunParallelTraced(len(rateList), *jobs, reg, tracer, func(i int, sh *obs.TraceShard) sim.Result {
		r := rateList[i]
		c := cfg
		c.OnInterval = progressFn(fmt.Sprintf("rate=%.4f ", r))
		c.Trace = sh
		src := traffic.NewInjector(rows, cols, p, r, linkBits, *seed)
		return sim.Run(mk(), src, c)
	})
	stopProfile()
	finishRun()
	var points []sim.SweepPoint
	fmt.Printf("%-10s %-10s %-12s %-10s %s\n", "rate", "latency", "throughput", "hops", "flags")
	for i, res := range results {
		r := rateList[i]
		points = append(points, sim.SweepPoint{Rate: r, Result: res})
		events.Info(obs.EventSweepPoint, map[string]any{
			"rate":        r,
			"avg_latency": res.AvgLatency,
			"p50_latency": res.LatencyP50,
			"p95_latency": res.LatencyP95,
			"p99_latency": res.LatencyP99,
			"throughput":  res.Throughput,
			"avg_hops":    res.AvgHops,
			"saturated":   res.Saturated,
		})
		flagStr := ""
		if res.Saturated {
			flagStr = "SATURATED"
		}
		fmt.Printf("%-10.4f %-10.2f %-12.4f %-10.2f %s\n",
			r, res.AvgLatency, res.Throughput, res.AvgHops, flagStr)
	}
	curve := sim.Curve(points)
	fmt.Printf("zero-load latency: %.2f cycles; saturation throughput: %.4f flits/node/cycle\n",
		stats.ZeroLoadLatency(curve), stats.SaturationThroughput(curve, 3))

	if *csvPath != "" {
		var rs, ls, ts []float64
		for _, p := range curve {
			rs = append(rs, p.InjectionRate)
			ls = append(ls, p.Latency)
			ts = append(ts, p.Throughput)
		}
		f, err := os.Create(*csvPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := viz.CurveCSV(f, rs, ls, ts); err != nil {
			fatal(err)
		}
		fmt.Printf("sweep written to %s\n", *csvPath)
	}
	writeMetrics()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "nocsim:", err)
	os.Exit(1)
}

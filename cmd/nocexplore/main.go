// Command nocexplore runs long-form DRL design-space searches with full
// control over the framework's hyperparameters (ε, exploration constant,
// threads, DNN width) and reports every valid design found — the
// interactive counterpart of Table 1's hyperparameter study.
//
// Usage:
//
//	nocexplore -n 8 -cap 14 -episodes 200 -threads 4 -epsilon 0.1
//	nocexplore -n 8 -episodes 500 -metrics search.json -events search.jsonl
//	nocexplore -n 8 -episodes 200 -cpuprofile search.pprof
//	nocexplore -n 8 -episodes 200 -threads 4 -infer-batch 8
//	nocexplore -n 8 -episodes 200 -threads 4 -infer-batch 16 -infer-f32 -infer-flush 200us
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"routerless/internal/drl"
	"routerless/internal/nn"
	"routerless/internal/obs"
	"routerless/internal/rec"
	"routerless/internal/stats"
	"routerless/internal/viz"
)

func main() {
	n := flag.Int("n", 8, "NoC side length")
	cap := flag.Int("cap", 0, "node overlapping cap (default 2(n-1))")
	episodes := flag.Int("episodes", 100, "exploration cycles")
	threads := flag.Int("threads", 1, "learner threads (§4.6)")
	inferBatch := flag.Int("infer-batch", 0, "route DNN evaluations through the shared batched-inference broker with this max batch size (0 = per-worker forwards)")
	inferF32 := flag.Bool("infer-f32", false, "evaluate brokered requests on the float32 inference engine (half the working set, ≤1e-4 relative drift; training stays float64)")
	inferFlush := flag.Duration("infer-flush", 0, "broker batch top-up window: wait up to this long for more requests before flushing a partial batch (0 = flush on quiescence; longer waits raise batch occupancy but add latency)")
	epsilon := flag.Float64("epsilon", 0.1, "ε-greedy factor")
	cpuct := flag.Float64("c", 1.5, "MCTS exploration constant")
	lr := flag.Float64("lr", 1e-3, "learning rate")
	seed := flag.Int64("seed", 1, "random seed")
	fullDNN := flag.Bool("full-dnn", false, "use the paper's full-width network")
	noDNN := flag.Bool("no-dnn", false, "ablation: disable the DNN")
	noMCTS := flag.Bool("no-mcts", false, "ablation: disable the search tree")
	saveModel := flag.String("save-model", "", "write the trained policy/value model to this path")
	loadModel := flag.String("load-model", "", "warm-start from a model saved by -save-model")
	verbose := flag.Bool("v", false, "print every valid design")
	metricsPath := flag.String("metrics", "", "write a metrics snapshot as JSON to this path at exit")
	debugAddr := flag.String("debug-addr", "", "serve /metrics, /debug/vars and /debug/pprof/ on this address while running")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the search to this file (offline alternative to -debug-addr's /debug/pprof/)")
	mutexProfile := flag.String("mutexprofile", "", "write a mutex-contention pprof profile of the search to this file (which locks learners waited on)")
	blockProfile := flag.String("blockprofile", "", "write a goroutine-blocking pprof profile of the search to this file")
	eventsPath := flag.String("events", "", "write structured JSONL run events to this path")
	tracePath := flag.String("trace", "", "write a Chrome trace-event JSON file of the search (load in Perfetto) to this path")
	manifestPath := flag.String("manifest", "", "append a JSONL run-provenance manifest (config, seed, git rev, wall time, metrics) to this path")
	progress := flag.Duration("progress", 10*time.Second, "interval between progress lines on stderr (0 = off)")
	flag.Parse()

	var reg *obs.Registry
	if *metricsPath != "" || *debugAddr != "" || *manifestPath != "" {
		reg = obs.NewRegistry()
	}
	var events *obs.Logger
	if *eventsPath != "" {
		f, err := os.Create(*eventsPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "nocexplore:", err)
			os.Exit(1)
		}
		events = obs.NewLogger(f, obs.LevelDebug)
		// Close flushes buffered events and the file even on the os.Exit
		// paths below (which skip defers), so it is also called explicitly
		// before each of them.
		defer events.Close()
	}
	var tracer *obs.Tracer
	if *tracePath != "" || *debugAddr != "" {
		tracer = obs.NewTracer(1 << 16)
	}
	if *debugAddr != "" {
		d, err := obs.StartDebug(*debugAddr, reg, tracer)
		if err != nil {
			fmt.Fprintln(os.Stderr, "nocexplore:", err)
			os.Exit(1)
		}
		defer d.Close()
		fmt.Fprintf(os.Stderr, "nocexplore: debug endpoint on http://%s\n", d.Addr)
	}

	overlap := *cap
	if overlap == 0 {
		overlap = 2 * (*n - 1)
	}
	cfg := drl.DefaultConfig(*n, overlap)
	cfg.Episodes = *episodes
	cfg.Threads = *threads
	cfg.InferBatch = *inferBatch
	cfg.InferF32 = *inferF32
	cfg.InferFlush = *inferFlush
	cfg.Epsilon = *epsilon
	cfg.CPuct = *cpuct
	cfg.LR = *lr
	cfg.Seed = *seed
	cfg.UseDNN = !*noDNN
	cfg.UseMCTS = !*noMCTS
	if *fullDNN {
		cfg.NN = nn.DefaultConfig(*n)
	}
	if *loadModel != "" {
		data, err := os.ReadFile(*loadModel)
		if err != nil {
			fmt.Fprintln(os.Stderr, "nocexplore:", err)
			os.Exit(1)
		}
		net, err := nn.UnmarshalModel(data)
		if err != nil {
			fmt.Fprintln(os.Stderr, "nocexplore:", err)
			os.Exit(1)
		}
		cfg.NN = net.Cfg
		cfg.InitWeights = net.GetWeights()
	}

	cfg.Metrics = reg
	cfg.Events = events
	cfg.Trace = tracer

	var manifest *obs.Manifest
	if *manifestPath != "" {
		manifest = obs.NewManifest("nocexplore")
		manifest.Seed = *seed
		manifest.Set("n", *n)
		manifest.Set("cap", overlap)
		manifest.Set("episodes", *episodes)
		manifest.Set("threads", *threads)
		manifest.Set("infer_batch", *inferBatch)
		manifest.Set("infer_f32", *inferF32)
		manifest.Set("infer_flush", inferFlush.String())
		manifest.Set("epsilon", *epsilon)
		manifest.Set("cpuct", *cpuct)
		manifest.Set("lr", *lr)
		manifest.Set("use_dnn", cfg.UseDNN)
		manifest.Set("use_mcts", cfg.UseMCTS)
	}

	s, err := drl.New(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nocexplore:", err)
		os.Exit(1)
	}
	if *progress > 0 {
		done := make(chan struct{})
		defer close(done)
		go func() {
			tick := time.NewTicker(*progress)
			defer tick.Stop()
			for {
				select {
				case <-done:
					return
				case <-tick.C:
					ep, valid := s.Progress()
					fmt.Fprintf(os.Stderr, "nocexplore: progress %d/%d episodes, %d valid designs\n",
						ep, *episodes, valid)
					if line := tracer.SummaryLine(4); line != "" {
						fmt.Fprintf(os.Stderr, "nocexplore: %s\n", line)
					}
				}
			}
		}()
	}
	// The profile brackets exactly the search (not flag parsing or report
	// generation) and is stopped explicitly: the no-valid-design path exits
	// with os.Exit, which would skip a deferred stop.
	stopProfile := func() {}
	if *cpuProfile != "" {
		stop, err := obs.StartCPUProfile(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "nocexplore:", err)
			os.Exit(1)
		}
		stopProfile = stop
	}
	// Contention profiles share the search bracket: they answer which locks
	// the learner goroutines queued on (mutex) and where goroutines blocked
	// (block) during exactly the profiled search.
	stopContention, err := obs.StartContentionProfiles(*mutexProfile, *blockProfile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nocexplore:", err)
		os.Exit(1)
	}
	res := s.Run()
	stopProfile()
	if err := stopContention(); err != nil {
		fmt.Fprintln(os.Stderr, "nocexplore:", err)
		os.Exit(1)
	}
	if *cpuProfile != "" {
		fmt.Fprintf(os.Stderr, "nocexplore: cpu profile written to %s\n", *cpuProfile)
	}
	if *mutexProfile != "" {
		fmt.Fprintf(os.Stderr, "nocexplore: mutex profile written to %s\n", *mutexProfile)
	}
	if *blockProfile != "" {
		fmt.Fprintf(os.Stderr, "nocexplore: block profile written to %s\n", *blockProfile)
	}

	// The trace is exported only after Run returns, when every worker
	// shard has quiesced (WriteTrace's safety requirement).
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "nocexplore:", err)
			os.Exit(1)
		}
		err = tracer.WriteTrace(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "nocexplore: write trace:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "nocexplore: trace written to %s\n", *tracePath)
	}
	if tracer != nil && *progress > 0 {
		if table := tracer.AggregateTable(); table != "" {
			fmt.Fprint(os.Stderr, table)
		}
	}
	if manifest != nil {
		manifest.Finish(reg)
		if err := manifest.AppendFile(*manifestPath); err != nil {
			fmt.Fprintln(os.Stderr, "nocexplore: write manifest:", err)
		}
	}

	writeMetrics := func() {
		if *metricsPath == "" {
			return
		}
		f, err := os.Create(*metricsPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "nocexplore:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := reg.WriteJSON(f); err != nil {
			fmt.Fprintln(os.Stderr, "nocexplore:", err)
			os.Exit(1)
		}
		fmt.Printf("metrics written to %s\n", *metricsPath)
	}

	if *saveModel != "" && cfg.UseDNN {
		net := nn.NewPolicyValueNet(cfg.NN, cfg.Seed)
		net.SetWeights(s.ModelWeights())
		data, err := nn.MarshalModel(net)
		if err == nil {
			err = os.WriteFile(*saveModel, data, 0o644)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "nocexplore: save model:", err)
		} else {
			events.Info(obs.EventCheckpoint, map[string]any{
				"path":     *saveModel,
				"episodes": res.Episodes,
			})
			fmt.Printf("model saved to %s\n", *saveModel)
		}
	}

	fmt.Printf("episodes: %d   tree states: %d   valid designs: %d\n",
		res.Episodes, res.TreeSize, len(res.Valid))
	writeMetrics()
	if len(res.Valid) == 0 {
		fmt.Println("no fully connected design found; increase -episodes or relax -cap")
		events.Close() // os.Exit skips the deferred Close
		os.Exit(2)
	}
	hops := make([]float64, len(res.Valid))
	for i, d := range res.Valid {
		hops[i] = d.AvgHops
		if *verbose {
			fmt.Printf("  episode %3d: %d loops, avg hops %.3f\n", d.Episode, d.Loops, d.AvgHops)
		}
	}
	fmt.Printf("hop count: min %.3f  mean %.3f  SD %.4f\n",
		stats.Min(hops), stats.Mean(hops), stats.StdDev(hops))
	if recT, err := rec.Generate(*n); err == nil && overlap >= rec.MaxOverlap(*n) {
		recHops, _ := recT.AverageHops()
		fmt.Printf("REC reference: %.3f avg hops (%d loops) -> improvement %.1f%%\n",
			recHops, recT.NumLoops(), 100*(recHops-res.Best.AvgHops)/recHops)
	}
	fmt.Println()
	fmt.Print(viz.TopologySummary(res.Best.Topo))
	fmt.Println("node overlapping:")
	fmt.Print(viz.OverlapGrid(res.Best.Topo))
}

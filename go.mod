module routerless

go 1.22
